// Replication: the engine-level seam between a durable primary and its
// read replicas. A primary exports its WAL — the log tail as a byte
// stream of framed records (ReplTail/ReplChanged) and the newest
// checkpoint as a bootstrap snapshot (ReplSnapshot) — and a follower
// (internal/repl.Follower) rebuilds an identical engine by loading the
// snapshot into NewReplicaEngine and applying the streamed records
// through ApplyTriples in epoch order. Because ApplyTriples at a given
// epoch sequence is deterministic down to the bits (the PR 7
// invariant), a replica at epoch N answers every query exactly as the
// primary did at epoch N.
package notable

import (
	"bytes"
	"errors"
	"fmt"
	"io"

	"repro/internal/search"
	"repro/internal/wal"
)

// ErrNotDurable is returned by replication exports on an engine without
// a write-ahead log: there is no durable record stream to ship.
var ErrNotDurable = errors.New("notable: engine has no write-ahead log to replicate")

// ErrEpochTruncated is returned by ReplTail when the requested stream
// position has been truncated behind a checkpoint: the follower cannot
// resume incrementally and must re-bootstrap from ReplSnapshot.
var ErrEpochTruncated = errors.New("notable: epoch truncated from replication log")

// NewReplicaEngine prepares an engine seeded from a primary's snapshot
// at a known epoch — the follower-side constructor. It is NewEngine
// with an explicit starting epoch: applied triples live only in memory
// (a replica's durability is the primary's WAL), and replaying the
// primary's record stream from epoch+1 republishes the primary's exact
// epoch sequence, bit for bit.
func NewReplicaEngine(g *Graph, opt Options, epoch uint64) *Engine {
	return newEngine(g, opt, epoch)
}

// DurableEpoch returns the newest epoch whose batch is guaranteed to
// survive a primary crash — the watermark replication streams ship up
// to. ErrNotDurable on an engine without a WAL.
func (e *Engine) DurableEpoch() (uint64, error) {
	l := e.wal.Load()
	if l == nil {
		return 0, ErrNotDurable
	}
	return l.DurableEpoch(), nil
}

// ReplTail returns the raw framed WAL bytes of every durable record
// with epoch in (from, durable], plus the durable epoch itself — one
// chunk of a replication stream, decodable with wal.NewFrameReader. An
// empty tail with durable == from means the follower is caught up; a
// truncated position returns an error wrapping ErrEpochTruncated and
// the follower must re-bootstrap from ReplSnapshot.
func (e *Engine) ReplTail(from uint64) ([]byte, uint64, error) {
	l := e.wal.Load()
	if l == nil {
		return nil, 0, ErrNotDurable
	}
	tail, durable, err := l.TailSince(from)
	if errors.Is(err, wal.ErrGone) {
		return nil, durable, fmt.Errorf("%w: %v", ErrEpochTruncated, err)
	}
	return tail, durable, err
}

// ReplChanged returns a channel closed the next time the durable epoch
// advances (or the log fails or closes) — what a live stream handler
// blocks on between ReplTail calls. Re-call after each wakeup.
func (e *Engine) ReplChanged() (<-chan struct{}, error) {
	l := e.wal.Load()
	if l == nil {
		return nil, ErrNotDurable
	}
	return l.Changed(), nil
}

// ReplSnapshot opens the bootstrap payload for a late-joining follower:
// the newest durable checkpoint when one exists (zero-copy off disk),
// otherwise a snapshot of the current view serialized on the spot. The
// returned epoch is the snapshot's; a follower streams records from
// exactly there. The caller closes rc.
//
// Both sources compose with ReplTail: the log retains every record past
// the previous checkpoint (≤ the served checkpoint's epoch), and a
// materialized view is at least as new as every durable record, so the
// stream that follows either snapshot has no gap to cross.
func (e *Engine) ReplSnapshot() (epoch uint64, rc io.ReadCloser, err error) {
	l := e.wal.Load()
	if l == nil {
		return 0, nil, ErrNotDurable
	}
	if epoch, rc, ok, err := l.OpenCheckpoint(); err != nil {
		return 0, nil, err
	} else if ok {
		return epoch, rc, nil
	}
	view := e.vg.View()
	var buf bytes.Buffer
	if err := view.G.WriteSnapshot(&buf); err != nil {
		return 0, nil, fmt.Errorf("notable: serializing view for replication: %w", err)
	}
	return view.Epoch, io.NopCloser(&buf), nil
}

// ResetGraph discards the replica's state and republishes g as a fresh
// view at epoch — the follower's full-resync path after its stream
// position was truncated away on the primary. Refused on a durable
// engine: a WAL-backed engine's history is its log, and rewriting the
// live graph underneath it would desynchronize the two. The epoch may
// only move forward (requests that pinned older views finish on them,
// as always); the name index is rebuilt for the new graph. Cache
// entries stay epoch-keyed and so stay correct: an identical epoch
// implies identical bits under the deterministic-replay invariant.
func (e *Engine) ResetGraph(g *Graph, epoch uint64) error {
	if e.wal.Load() != nil {
		return fmt.Errorf("%w: refusing to reset a durable engine's graph", ErrDurability)
	}
	if _, err := e.vg.Reset(g, epoch); err != nil {
		return err
	}
	e.idx.Store(search.NewIndex(g))
	e.selMemo.Store(nil)
	return nil
}
