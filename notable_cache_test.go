package notable

import (
	"testing"

	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/qcache"
	"repro/internal/topk"
)

// countingSelector is a score-based selector that counts how often its
// scoring pass actually runs — the observable for "a warm cache does zero
// mining and walking".
type countingSelector struct {
	scoreCalls  *int
	selectCalls *int
}

func (c countingSelector) Name() string { return "counting" }

func (c countingSelector) Scores(g *kg.Graph, query []kg.NodeID) []float64 {
	*c.scoreCalls++
	scores := make([]float64, g.NumNodes())
	for i := range scores {
		scores[i] = float64(i + 1)
	}
	return scores
}

func (c countingSelector) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	*c.selectCalls++
	return nil
}

func TestCachedSelectorRunsScoringOnce(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{})
	query, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	scoreCalls, selectCalls := 0, 0
	cs := e.cachedSelectorFor(countingSelector{&scoreCalls, &selectCalls}, e.opt, "e0")
	a := cs.Select(g, query, 5)
	b := cs.Select(g, query, 5)
	// Permuted queries canonicalize to the same entry.
	c := cs.Select(g, []NodeID{query[1], query[0]}, 5)
	if scoreCalls != 1 {
		t.Fatalf("scoring ran %d times across three selects, want 1", scoreCalls)
	}
	if selectCalls != 0 {
		t.Fatal("score-based selector's Select should never run under the cache")
	}
	if len(a) != 5 || len(b) != 5 || len(c) != 5 {
		t.Fatalf("select sizes: %d %d %d", len(a), len(b), len(c))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("cached select differs at %d: %v vs %v", i, a[i], b[i])
		}
	}
	// A different k reuses the cached score vector too.
	if d := cs.Select(g, query, 3); len(d) != 3 || scoreCalls != 1 {
		t.Fatalf("k=3 select: len %d, scoring ran %d times", len(d), scoreCalls)
	}
	if st := e.CacheStats(); st.Hits < 3 || st.Misses < 1 {
		t.Fatalf("cache stats = %+v", st)
	}
}

func TestCachedSelectorBypassesDuplicateQueries(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{})
	query, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	dup := []NodeID{query[0], query[0], query[1]}
	scoreCalls, selectCalls := 0, 0
	cs := e.cachedSelectorFor(countingSelector{&scoreCalls, &selectCalls}, e.opt, "e0")
	cs.Select(g, dup, 5)
	cs.Select(g, dup, 5)
	if scoreCalls != 0 || selectCalls != 2 {
		t.Fatalf("duplicate-node query must bypass the cache: scores=%d selects=%d",
			scoreCalls, selectCalls)
	}
}

func TestEngineSearchCachedMatchesUncached(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 8, Walks: 20000, Seed: 3}
	cached := NewEngine(g, opt)
	optOff := opt
	optOff.CacheSize = -1
	uncached := NewEngine(g, optOff)

	warm, err := cached.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	hit, err := cached.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	cold, err := uncached.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	for name, res := range map[string]Result{"warm-hit": hit, "cache-off": cold} {
		if len(res.Context) != len(warm.Context) {
			t.Fatalf("%s context size %d vs %d", name, len(res.Context), len(warm.Context))
		}
		for i := range warm.Context {
			if res.Context[i] != warm.Context[i] {
				t.Fatalf("%s context differs at %d", name, i)
			}
		}
		if len(res.Characteristics) != len(warm.Characteristics) {
			t.Fatalf("%s characteristic count differs", name)
		}
		for i := range warm.Characteristics {
			a, b := warm.Characteristics[i], res.Characteristics[i]
			if a.Name != b.Name || a.Score != b.Score || a.InstP != b.InstP || a.CardP != b.CardP {
				t.Fatalf("%s characteristic %d differs: %+v vs %+v", name, i, a, b)
			}
		}
	}
	st := cached.CacheStats()
	if st.Hits == 0 || st.Misses == 0 {
		t.Fatalf("expected one miss then hits, got %+v", st)
	}
	if off := uncached.CacheStats(); off != (qcache.Stats{}) {
		t.Fatalf("disabled cache reports %+v", off)
	}
}

func TestEngineContextSharesCacheWithSearch(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 8, Walks: 20000, Seed: 3})
	query, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.Search(query); err != nil {
		t.Fatal(err)
	}
	before := e.CacheStats()
	ctx := e.Context(query, 4)
	if len(ctx) == 0 {
		t.Fatal("empty context")
	}
	after := e.CacheStats()
	if after.Hits != before.Hits+1 {
		t.Fatalf("Context did not hit the Search-warmed cache: %+v -> %+v", before, after)
	}
}

// TestEngineWarmSearchSkipsTestingStage: a warm repeated Search serves
// the selector AND every label test from the cache — exactly one hit per
// tested label plus one for the score vector, and zero new misses.
func TestEngineWarmSearchSkipsTestingStage(t *testing.T) {
	g := buildLeaders()
	e := NewEngine(g, Options{ContextSize: 8, Walks: 20000, Seed: 3})
	names := []string{"Angela Merkel", "Barack Obama"}
	cold, err := e.SearchNames(names...)
	if err != nil {
		t.Fatal(err)
	}
	st := e.CacheStats()
	labels := uint64(len(cold.Characteristics))
	if st.Misses != labels+1 || st.Hits != 0 {
		t.Fatalf("cold search stats %+v, want %d misses (selector + labels), 0 hits",
			st, labels+1)
	}
	warm, err := e.SearchNames(names...)
	if err != nil {
		t.Fatal(err)
	}
	st2 := e.CacheStats()
	if st2.Misses != st.Misses {
		t.Fatalf("warm search recomputed something: %+v -> %+v", st, st2)
	}
	if st2.Hits != labels+1 {
		t.Fatalf("warm search hits = %d, want %d (selector + every label)",
			st2.Hits, labels+1)
	}
	for i := range cold.Characteristics {
		a, b := cold.Characteristics[i], warm.Characteristics[i]
		if a.Name != b.Name || a.Score != b.Score || a.InstP != b.InstP || a.CardP != b.CardP {
			t.Fatalf("warm result differs at %d: %+v vs %+v", i, a, b)
		}
	}
	// Compare shares the memo: an explicit-context run against the same
	// ranked context is fully warm too.
	before := e.CacheStats()
	query, err := e.Resolve(names...)
	if err != nil {
		t.Fatal(err)
	}
	e.Compare(query, cold.ContextIDs())
	after := e.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("Compare against the searched context missed: %+v -> %+v", before, after)
	}
}

// BenchmarkEngineWarmSearch measures repeated Engine.Search on the
// half-scale YAGO-like graph: the warm path (default cache) skips mining,
// walking, distribution building, and testing entirely; the cold path
// (cache disabled) repeats all of them every query.
func BenchmarkEngineWarmSearch(b *testing.B) {
	ds := gen.YAGOLike(gen.YAGOConfig{Seed: 42, Scale: 0.5})
	names := gen.Table1["actors"][:5]
	run := func(b *testing.B, cacheSize int) {
		engine := NewEngine(ds.Graph, Options{
			ContextSize: 100,
			Walks:       60000,
			Seed:        42,
			CacheSize:   cacheSize,
		})
		if _, err := engine.SearchNames(names...); err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if _, err := engine.SearchNames(names...); err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("warm", func(b *testing.B) { run(b, 0) })
	b.Run("cold", func(b *testing.B) { run(b, -1) })
}
