package notable

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/corr"
	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/stats"
)

// Integration tests: full pipeline runs over the generated datasets
// through the public API.

func TestIntegrationPoliticians(t *testing.T) {
	ds := gen.YAGOLike(gen.YAGOConfig{Seed: 21, Scale: 0.5})
	engine := NewEngine(ds.Graph, Options{
		ContextSize: 60,
		Walks:       60000,
		Seed:        21,
	})
	res, err := engine.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Context) == 0 {
		t.Fatal("no context")
	}
	// The planted Merkel facts must surface.
	notable := map[string]bool{}
	for _, c := range res.NotableOnly() {
		notable[c.Name] = true
	}
	for _, want := range []string{"hasChild", "studied", "hasDoctorate"} {
		if !notable[want] {
			t.Errorf("%s not notable; notable set: %v", want, notable)
		}
	}
	// Party membership is ordinary among politicians.
	if c, ok := res.ByName("memberOfParty"); ok && c.Notable() {
		t.Errorf("memberOfParty should not be notable: P inst=%v card=%v", c.InstP, c.CardP)
	}
}

func TestIntegrationMoviesLMDB(t *testing.T) {
	ds := gen.LinkedMDBLike(gen.LMDBConfig{Seed: 22, Scale: 0.5})
	engine := NewEngine(ds.Graph, Options{ContextSize: 50, Walks: 60000, Seed: 22})
	sc := ds.Scenario("actors")
	res, err := engine.SearchNames(sc.Query[:3]...)
	if err != nil {
		t.Fatal(err)
	}
	// Context should be dominated by actors (typed nodes), not films.
	actors := 0
	for _, id := range res.ContextIDs() {
		if ds.Graph.TypeName(ds.Graph.TypeOf(id)) == "actor" {
			actors++
		}
	}
	if actors < len(res.Context)/2 {
		t.Fatalf("only %d of %d context nodes are actors", actors, len(res.Context))
	}
}

func TestIntegrationProducts(t *testing.T) {
	ds := gen.Products(23)
	engine := NewEngine(ds.Graph, Options{ContextSize: 30, Walks: 40000, Seed: 23})
	res, err := engine.Search(ds.Query)
	if err != nil {
		t.Fatal(err)
	}
	c, ok := res.ByName("hasFeature")
	if !ok {
		t.Fatal("hasFeature not tested")
	}
	if !c.Notable() {
		t.Fatalf("hasFeature should be notable: P inst=%v card=%v", c.InstP, c.CardP)
	}
	for _, name := range []string{"brand", "mount"} {
		if ch, ok := res.ByName(name); ok && ch.Notable() {
			t.Errorf("%s should not be notable", name)
		}
	}
}

func TestIntegrationAuthorsPooled(t *testing.T) {
	ds := gen.Authors(24)
	engine := NewEngine(ds.Graph, Options{
		ContextSize: 30,
		Walks:       50000,
		Seed:        24,
		Policy:      PolicyPooled,
	})
	res, err := engine.Search(ds.Query)
	if err != nil {
		t.Fatal(err)
	}
	infl, ok := res.ByName("influences")
	if !ok || !infl.Notable() {
		t.Fatalf("influences should be notable: %+v", infl)
	}
	created, ok := res.ByName("created")
	if !ok {
		t.Fatal("created not tested")
	}
	if created.Notable() {
		t.Fatalf("created should not be notable under pooled policy: P inst=%v card=%v",
			created.InstP, created.CardP)
	}
}

func TestIntegrationCorrelationExtension(t *testing.T) {
	ds := gen.YAGOLike(gen.YAGOConfig{Seed: 25, Scale: 0.5})
	engine := NewEngine(ds.Graph, Options{ContextSize: 60, Walks: 60000, Seed: 25})
	res, err := engine.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	labels := ds.Graph.LabelsOf(append(res.Query, res.ContextIDs()...))
	pairs := corr.Find(ds.Graph, res.Query, res.ContextIDs(), labels, corr.Options{
		Test: stats.Multinomial{Seed: 25},
	})
	if len(pairs) == 0 {
		t.Fatal("correlation scan found no pairs at all")
	}
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Score > pairs[i-1].Score {
			t.Fatal("pairs unsorted")
		}
	}
}

func TestIntegrationSnapshotPreservesResults(t *testing.T) {
	// A search on a snapshot-round-tripped graph returns identical
	// characteristics.
	ds := gen.YAGOLike(gen.YAGOConfig{Seed: 26, Scale: 0.3})
	var buf bytes.Buffer
	if err := ds.Graph.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	restored, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	opt := Options{ContextSize: 30, Walks: 30000, Seed: 26}
	a, err := NewEngine(ds.Graph, opt).SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewEngine(restored, opt).SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Characteristics) != len(b.Characteristics) {
		t.Fatalf("characteristic counts differ: %d vs %d",
			len(a.Characteristics), len(b.Characteristics))
	}
	for i := range a.Characteristics {
		ca, cb := a.Characteristics[i], b.Characteristics[i]
		if ca.Name != cb.Name || ca.Score != cb.Score {
			t.Fatalf("characteristic %d differs: %s/%v vs %s/%v",
				i, ca.Name, ca.Score, cb.Name, cb.Score)
		}
	}
}

func TestIntegrationTripleExportImport(t *testing.T) {
	// Graph -> snapshot file -> load -> same notable search outcome as a
	// triple-level round trip through kg.FromStore semantics.
	ds := gen.Figure1()
	g := ds.Graph
	engine := NewEngine(g, Options{ContextSize: 3, Walks: 20000, Seed: 27})
	res, err := engine.Search(ds.Query)
	if err != nil {
		t.Fatal(err)
	}
	names := make([]string, 0, 2)
	for _, c := range res.NotableOnly() {
		names = append(names, c.Name)
	}
	joined := strings.Join(names, ",")
	if !strings.Contains(joined, "hasChild") || !strings.Contains(joined, "studied") {
		t.Fatalf("Figure 1 notables = %v, want hasChild and studied", names)
	}
	// And the context is exactly the figure's three leaders.
	want := map[kg.NodeID]bool{}
	for _, c := range ds.Context {
		want[c] = true
	}
	for _, id := range res.ContextIDs() {
		if !want[id] {
			t.Fatalf("unexpected context node %s", g.NodeName(id))
		}
	}
}
