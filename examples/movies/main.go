// Movies: the actors scenario on the LinkedMDB-like dataset, comparing
// ContextRW context selection against the RandomWalk baseline on the same
// query — the §4.1 experiment in miniature.
//
// ContextRW should return fellow film actors (high F1 against the planted
// ground truth); plain personalized PageRank drifts into films and other
// adjacent entities.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
	"repro/internal/kg"
)

func main() {
	fmt.Println("generating LinkedMDB-like dataset ...")
	ds := gen.LinkedMDBLike(gen.LMDBConfig{Seed: 7})
	g := ds.Graph
	fmt.Println("graph:", g.Stats())

	scenario := ds.Scenario("actors")
	const querySize = 5
	gt := scenario.GroundTruthIDs(g, querySize)

	for _, selector := range []string{notable.SelectorContextRW, notable.SelectorRandomWalk} {
		engine := notable.NewEngine(g, notable.Options{
			Selector: selector,
			Walks:    200000,
			Seed:     7,
		})
		query, err := engine.Resolve(scenario.Query[:querySize]...)
		if err != nil {
			log.Fatal(err)
		}
		context := engine.Context(query, 100)

		hits := 0
		for _, item := range context {
			if gt[kg.NodeID(item.ID)] {
				hits++
			}
		}
		precision := float64(hits) / float64(len(context))
		recall := float64(hits) / float64(len(gt))
		f1 := 0.0
		if precision+recall > 0 {
			f1 = 2 * precision * recall / (precision + recall)
		}
		fmt.Printf("\n%s: |C|=%d, ground-truth hits=%d, F1=%.3f\n",
			selector, len(context), hits, f1)
		for i, item := range context {
			if i >= 5 {
				break
			}
			fmt.Printf("  %2d. %s\n", i+1, g.NodeName(item.ID))
		}
	}
}
