// Quickstart: build the paper's Figure 1 graph through the public API and
// find the notable characteristics of {Angela Merkel, Barack Obama}.
//
// Expected output: the context is the three other leaders, and the two
// notable characteristics are hasChild (Merkel has none, everyone else
// does) and studied (Merkel studied Physics, the context studied Law).
package main

import (
	"context"
	"fmt"
	"log"

	"repro"
)

func main() {
	b := notable.NewBuilder(32)
	b.AddEdge("Angela Merkel", "studied", "Physics")
	for _, leader := range []string{"Barack Obama", "Vladimir Putin", "Matteo Renzi", "François Hollande"} {
		b.AddEdge(leader, "studied", "Law")
	}
	b.AddEdge("Barack Obama", "hasChild", "Malia")
	b.AddEdge("Vladimir Putin", "hasChild", "Mariya")
	b.AddEdge("Vladimir Putin", "hasChild", "Yecaterina")
	b.AddEdge("Matteo Renzi", "hasChild", "Francesca")
	b.AddEdge("Matteo Renzi", "hasChild", "Emanuele")
	b.AddEdge("Matteo Renzi", "hasChild", "Ester")
	b.AddEdge("François Hollande", "hasChild", "Thomas")
	b.AddEdge("François Hollande", "hasChild", "Clémence")
	b.AddEdge("François Hollande", "hasChild", "Julien")
	b.AddEdge("François Hollande", "hasChild", "Flora")
	g := b.Build()

	engine := notable.NewEngine(g, notable.Options{
		ContextSize: 3,
		Walks:       20000,
		Seed:        7,
	})
	// Resolve names to node IDs, then serve one request-scoped search.
	// The ctx cancels an in-flight search; per-request fields of
	// notable.Query (context size, selector, alpha, top-k, ...) override
	// the engine options for this call only.
	query, err := engine.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		log.Fatal(err)
	}
	res, err := engine.Do(context.Background(), notable.Query{Nodes: query})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("context:")
	for _, item := range res.Context {
		fmt.Printf("  %s (%.3f)\n", g.NodeName(item.ID), item.Score)
	}
	fmt.Println("notable characteristics:")
	for _, c := range res.NotableOnly() {
		fmt.Printf("  %s: score %.3f via %s test\n", c.Name, c.Score, c.Kind)
	}
}
