// Products: the e-commerce scenario from the paper's introduction —
// "imagine a user compares two cameras and wants to know what are the
// special features of these two with respect to all the others".
//
// The two query cameras share in-body stabilization and weather sealing,
// rare in their segment: hasFeature should be the notable characteristic,
// while brand/sensor/mount distributions match the segment and stay
// unremarkable.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/gen"
)

func main() {
	ds := gen.Products(11)
	g := ds.Graph
	fmt.Println("catalog graph:", g.Stats())

	engine := notable.NewEngine(g, notable.Options{
		ContextSize: 30,
		Walks:       50000,
		Seed:        11,
	})
	res, err := engine.SearchNames("Camera Alpha-7", "Camera X-Pro9")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\nmost similar cameras:")
	for i, item := range res.Context {
		if i >= 6 {
			break
		}
		fmt.Printf("  %2d. %s\n", i+1, g.NodeName(item.ID))
	}

	fmt.Println("\nwhat makes the two cameras special:")
	for _, c := range res.Characteristics {
		marker := "  "
		if c.Notable() {
			marker = "* "
		}
		fmt.Printf("%s%-12s score=%.4f  P(inst)=%.4f P(card)=%.4f\n",
			marker, c.Name, c.Score, c.InstP, c.CardP)
	}
}
