// Politicians: the paper's motivating scenario on the YAGO-like dataset —
// what makes Angela Merkel and Barack Obama special among world leaders?
//
// The engine selects ~100 peer leaders as context and should surface
// Merkel's doctorate, her Physics studies, and her missing hasChild edge,
// while shared properties (party membership, summit attendance) stay
// unremarkable. The example also demonstrates the correlation extension.
package main

import (
	"fmt"
	"log"

	"repro"
	"repro/internal/corr"
	"repro/internal/gen"
	"repro/internal/stats"
)

func main() {
	fmt.Println("generating YAGO-like dataset ...")
	ds := gen.YAGOLike(gen.YAGOConfig{Seed: 42})
	g := ds.Graph
	fmt.Println("graph:", g.Stats())

	engine := notable.NewEngine(g, notable.Options{
		ContextSize: 100,
		Walks:       200000,
		Seed:        42,
	})
	res, err := engine.SearchNames("Angela Merkel", "Barack Obama")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("\ntop context nodes:")
	for i, item := range res.Context {
		if i >= 8 {
			break
		}
		fmt.Printf("  %2d. %s\n", i+1, g.NodeName(item.ID))
	}

	fmt.Println("\nnotable characteristics:")
	for _, c := range res.NotableOnly() {
		fmt.Printf("  %-16s score=%.4f (%s)\n", c.Name, c.Score, c.Kind)
	}

	// Future-work extension: correlated attribute pairs.
	labels := g.LabelsOf(append(res.Query, res.ContextIDs()...))
	pairs := corr.Find(g, res.Query, res.ContextIDs(), labels, corr.Options{
		Test: stats.Multinomial{Seed: 42},
	})
	fmt.Println("\ncorrelated label pairs (extension):")
	shown := 0
	for _, p := range pairs {
		if !p.Notable() || shown >= 5 {
			continue
		}
		fmt.Printf("  %s × %s  P=%.4f  query cells=%v context cells=%v\n",
			p.AName, p.BName, p.P, p.QueryCells, p.ContextCells)
		shown++
	}
	if shown == 0 {
		fmt.Println("  (no significant pairs)")
	}
}
