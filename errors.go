package notable

import (
	"errors"
	"strings"
)

// ErrEmptyQuery is returned by Do, DoBatch, DoStream, and the deprecated
// Search entry points when a request carries no query nodes. Batch entry
// points wrap it with the offending index; match with errors.Is.
var ErrEmptyQuery = errors.New("notable: empty query")

// UnresolvedError reports entity names that Resolve could not map to
// graph nodes, exactly or fuzzily. Callers recover the names via
// errors.As and typically feed them to Engine.Suggest for
// did-you-mean output.
type UnresolvedError struct {
	// Missing holds the unresolved names, in input order.
	Missing []string
}

// Error implements error.
func (e *UnresolvedError) Error() string {
	return "notable: unresolved entities: " + strings.Join(e.Missing, ", ")
}
