package notable

import (
	"errors"
	"fmt"
	"strings"
)

// ErrEmptyQuery is returned by Do, DoBatch, DoStream, and the deprecated
// Search entry points when a request carries no query nodes. Batch entry
// points wrap it with the offending index; match with errors.Is.
var ErrEmptyQuery = errors.New("notable: empty query")

// ErrBadQuery is returned by Do, DoBatch, and DoStream when a Query
// carries an override that no engine configuration could make valid — a
// negative TopK, ContextSize, or TestSamples, or an Alpha outside (0, 1).
// The returned error wraps ErrBadQuery and names the offending field;
// match with errors.Is. (Zero values are not errors: they mean "inherit
// the engine's option".)
var ErrBadQuery = errors.New("notable: bad query")

// ErrBadTriple is returned by ApplyTriples when a mutation batch carries
// a malformed triple — an empty subject, predicate, or object. The batch
// is rejected whole: the graph, its epoch, and every cache stay exactly
// as they were. The returned error wraps ErrBadTriple and names the
// offending triple; match with errors.Is.
var ErrBadTriple = errors.New("notable: bad triple")

// ErrDurability is returned by ApplyTriples on a durable engine
// (NewDurableEngine) when the write-ahead log cannot make the batch
// durable — a failed append, fsync, or a closed log. The batch was NOT
// acknowledged: it may already be visible in memory, but it will not
// survive a restart, and the engine refuses further ingest (reads are
// unaffected) until restarted over the intact log. Match with errors.Is.
var ErrDurability = errors.New("notable: durability failure")

// DegradedError reports a request that opted into degraded mode
// (Query.Degrade) and was cut short by its deadline or cancellation during
// the comparison stage. The Do call that returned it also returned a
// usable partial Result: the selected context plus the labels tested
// before the cut, a prefix-consistent subset of the full report (each
// record bitwise identical to its slot in an uncut run). Unwrap yields the
// ctx error, so errors.Is(err, context.DeadlineExceeded) still matches.
type DegradedError struct {
	// Cause is the ctx error that cut the request short.
	Cause error
	// Tested and Total count labels tested before the cut vs. the full
	// report.
	Tested, Total int
}

// Error implements error.
func (e *DegradedError) Error() string {
	return fmt.Sprintf("notable: degraded result (%d/%d labels tested): %v", e.Tested, e.Total, e.Cause)
}

// Unwrap exposes the underlying ctx error to errors.Is.
func (e *DegradedError) Unwrap() error { return e.Cause }

// UnresolvedError reports entity names that Resolve could not map to
// graph nodes, exactly or fuzzily. Callers recover the names via
// errors.As and typically feed them to Engine.Suggest for
// did-you-mean output.
type UnresolvedError struct {
	// Missing holds the unresolved names, in input order.
	Missing []string
}

// Error implements error.
func (e *UnresolvedError) Error() string {
	return "notable: unresolved entities: " + strings.Join(e.Missing, ", ")
}
