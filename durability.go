// Durable ingest: the facade over internal/wal that makes an Engine's
// acknowledged ApplyTriples batches survive process death. See
// docs/durability.md for the log format, the sync policies, and the
// recovery semantics; the mechanics live in internal/wal.
package notable

import (
	"fmt"
	"io"
	"log"
	"time"

	"repro/internal/kg"
	"repro/internal/search"
	"repro/internal/wal"
)

// Sync policy names accepted by Durability.Sync.
const (
	// SyncBatch fsyncs the log inside every ApplyTriples call (the
	// default): minimum loss window, one fsync per acknowledged batch.
	SyncBatch = "batch"
	// SyncInterval group-commits: the log is fsync'd at most once per
	// Durability.GroupCommitInterval and every ApplyTriples landed since
	// the previous flush blocks for — and shares — that one fsync. Higher
	// ingest throughput at (bounded) added latency; an acknowledged batch
	// is still always durable.
	SyncInterval = "interval"
)

// Durability configures a durable engine's write-ahead log.
type Durability struct {
	// WALDir is the directory holding the log and its checkpoints.
	// Required; created if absent. One engine per directory.
	WALDir string
	// Sync is SyncBatch (default when empty) or SyncInterval.
	Sync string
	// GroupCommitInterval is the flush period under SyncInterval
	// (default 2ms). Ignored under SyncBatch.
	GroupCommitInterval time.Duration
	// Logf receives recovery, checkpoint, and checkpoint-failure lines
	// (default log.Printf).
	Logf func(format string, args ...any)

	// fs overrides the filesystem seam — the fault-injection hook for
	// this package's crash tests. Production always leaves it nil.
	fs wal.FS
}

// RecoveryInfo reports what NewDurableEngine reconstructed at boot.
type RecoveryInfo struct {
	// HasCheckpoint reports whether a checkpoint snapshot was restored;
	// CheckpointEpoch is its epoch (0 without one: the engine started
	// from the bootstrap graph).
	HasCheckpoint   bool
	CheckpointEpoch uint64
	// RecordsReplayed counts the WAL records re-applied over the
	// checkpoint (or bootstrap) state.
	RecordsReplayed int
	// TruncatedBytes counts torn-tail bytes dropped from the log — the
	// residue of a crash mid-append, never an acknowledged batch.
	TruncatedBytes int64
	// SkippedCheckpoints counts unreadable checkpoint files discarded in
	// favor of an older one.
	SkippedCheckpoints int
	// Epoch is the graph epoch current after recovery.
	Epoch uint64
}

// DurabilityStats is a point-in-time summary of a durable engine's WAL
// for observability endpoints; the zero value (Enabled false) is what a
// non-durable engine reports.
type DurabilityStats struct {
	Enabled bool
	// WALBytes and WALRecords describe the current log file.
	WALBytes   int64
	WALRecords int64
	// LastFsync is the duration of the most recent log fsync — the
	// disk-health signal behind /statsz's wal_last_fsync_ms.
	LastFsync time.Duration
	// CheckpointEpoch is the newest durable checkpoint's epoch.
	CheckpointEpoch uint64
	// RecoveredRecords is the boot-time replay count (constant after
	// construction).
	RecoveredRecords int
	// SkippedCheckpoints is the number of unreadable checkpoint files boot
	// recovery discarded in favor of an older one (constant after
	// construction). Non-zero means the durability directory is limping —
	// a signal health probes should see, not just a log line.
	SkippedCheckpoints int
}

// NewDurableEngine prepares an engine whose acknowledged ApplyTriples
// batches survive process death, backed by a write-ahead log in
// d.WALDir. On a fresh directory the engine starts from bootstrap at
// epoch 0, exactly like NewEngine, and logs every effective batch from
// then on. On an existing directory it recovers: the newest valid
// checkpoint snapshot replaces bootstrap (restarting at the checkpoint's
// epoch), the log tail past it is replayed batch by batch — republishing
// the exact epoch sequence the original process acknowledged — and the
// returned RecoveryInfo summarizes what happened. bootstrap must be the
// same graph across restarts (recovery without a checkpoint replays the
// log over it; a different graph diverges from what was acknowledged).
//
// A torn final record (a crash mid-append) is truncated and reported; it
// was never acknowledged. Anything worse — a mid-log checksum failure,
// an epoch gap, every checkpoint unreadable — refuses construction with
// an error wrapping wal.ErrCorrupt rather than serving a graph that
// silently lost acknowledged writes.
//
// Checkpoints ride compaction: whenever the store folds its overlay into
// a flat base (past Options.CompactThreshold, or via Compact), the flat
// graph is also written as a checkpoint snapshot and the log truncated
// behind it, bounding both recovery time and disk growth. Call Close on
// shutdown to flush and release the log.
func NewDurableEngine(bootstrap *Graph, opt Options, d Durability) (*Engine, *RecoveryInfo, error) {
	if d.WALDir == "" {
		return nil, nil, fmt.Errorf("notable: durability requires a WALDir")
	}
	if d.Logf == nil {
		d.Logf = log.Printf
	}
	var policy wal.SyncPolicy
	switch d.Sync {
	case "", SyncBatch:
		policy = wal.SyncEveryBatch
	case SyncInterval:
		policy = wal.SyncEveryInterval
	default:
		return nil, nil, fmt.Errorf("notable: unknown sync policy %q (want %q or %q)", d.Sync, SyncBatch, SyncInterval)
	}

	g := bootstrap
	l, recov, err := wal.Open(d.WALDir, wal.Options{
		FS:           d.fs,
		Sync:         policy,
		SyncInterval: d.GroupCommitInterval,
		Logf:         d.Logf,
	}, func(epoch uint64, payload io.Reader) error {
		cg, err := kg.ReadSnapshot(payload)
		if err != nil {
			return err
		}
		g = cg
		return nil
	})
	if err != nil {
		return nil, nil, err
	}

	e := newEngine(g, opt, recov.CheckpointEpoch)
	e.walLogf = d.Logf
	// The engine's registry (and so its fsync histogram) only exists now
	// that recovery has produced the boot graph; arm the log with it so
	// every post-boot fsync lands in nc_wal_fsync_seconds.
	l.SetFsyncObs(e.met.fsync)
	// Replay before arming the log: these batches are already in it, and
	// re-applying them must republish the exact epochs they carried. A
	// mismatch means the durable state does not reproduce what was
	// acknowledged — corruption, not a condition to paper over.
	for _, rec := range recov.Records {
		view, aerr := e.vg.Apply(rec.Adds, rec.Dels)
		if aerr == nil && view.Epoch != rec.Epoch {
			aerr = fmt.Errorf("batch landed on epoch %d", view.Epoch)
		}
		if aerr != nil {
			l.Close()
			return nil, nil, fmt.Errorf("%w: replaying record at epoch %d: %v", wal.ErrCorrupt, rec.Epoch, aerr)
		}
	}
	if view := e.vg.View(); e.idx.Load().NumNodes() < view.G.NumNodes() {
		e.idx.Store(search.NewIndex(view.G))
	}
	e.recovered = len(recov.Records)
	e.skippedCkpts = recov.SkippedCheckpoints
	e.wal.Store(l)

	info := &RecoveryInfo{
		HasCheckpoint:      recov.HasCheckpoint,
		CheckpointEpoch:    recov.CheckpointEpoch,
		RecordsReplayed:    len(recov.Records),
		TruncatedBytes:     recov.TruncatedBytes,
		SkippedCheckpoints: recov.SkippedCheckpoints,
		Epoch:              e.vg.View().Epoch,
	}
	return e, info, nil
}

// checkpointView is the store's OnCompact hook: a compaction just
// produced a flat graph at a known epoch, which is exactly a checkpoint
// payload. No-op on non-durable engines and during recovery replay (the
// log is armed only afterwards).
func (e *Engine) checkpointView(view *kg.View) {
	l := e.wal.Load()
	if l == nil {
		return
	}
	if err := l.Checkpoint(view.Epoch, view.G.WriteSnapshot); err != nil {
		// The log keeps every record a missing checkpoint would need, so
		// durability holds; recovery just replays more. Worth a loud line.
		e.walLogf("notable: checkpoint at epoch %d failed: %v", view.Epoch, err)
	}
}

// Checkpoint synchronously compacts the live graph and persists it as a
// checkpoint snapshot, truncating the log behind it. Normally
// checkpoints ride background compaction; an explicit call bounds
// recovery time before a planned restart. No-op on non-durable engines.
func (e *Engine) Checkpoint() error {
	l := e.wal.Load()
	if l == nil {
		return nil
	}
	view := e.vg.Compact() // fires checkpointView via OnCompact
	if view.Epoch == 0 {
		return nil // nothing applied yet: bootstrap reproduces epoch 0
	}
	// Cover the already-flat case (Compact found no overlay, so OnCompact
	// did not fire); a checkpoint this epoch already has is a no-op.
	return l.Checkpoint(view.Epoch, view.G.WriteSnapshot)
}

// DurabilityStats summarizes the engine's write-ahead log; Enabled is
// false (and everything else zero) on a non-durable engine.
func (e *Engine) DurabilityStats() DurabilityStats {
	l := e.wal.Load()
	if l == nil {
		return DurabilityStats{}
	}
	st := l.Stats()
	return DurabilityStats{
		Enabled:            true,
		WALBytes:           st.Bytes,
		WALRecords:         st.Records,
		LastFsync:          st.LastFsync,
		CheckpointEpoch:    st.CheckpointEpoch,
		RecoveredRecords:   e.recovered,
		SkippedCheckpoints: e.skippedCkpts,
	}
}

// Close waits for any in-flight background compaction, then flushes and
// closes the engine's write-ahead log. Idempotent; a no-op on
// non-durable engines. The engine keeps serving reads after Close, but
// further ApplyTriples calls fail (the durability contract can no longer
// be honored).
func (e *Engine) Close() error {
	e.vg.WaitCompaction()
	if l := e.wal.Load(); l != nil {
		return l.Close()
	}
	return nil
}
