// Request-scoped serving API: Query, Outcome, and the Do family.
//
// An Engine is configured once (Options) and then serves many
// individually-tuned requests: each Query carries its nodes plus
// per-request overrides, each call takes a context.Context, and
// cancellation propagates through every layer — the PageRank solve checks
// it between sweeps, the comparison stage between label tests — so a
// dropped request stops burning CPU mid-solve. DoStream turns a batch
// into a stream of Outcomes, releasing each query's result the moment it
// completes instead of barriering the whole batch.
package notable

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"repro/internal/core"
	"repro/internal/kg"
)

// Query is one request-scoped search: the query nodes plus per-request
// overrides of the engine's Options. Zero-valued override fields inherit
// the engine's configuration, so Query{Nodes: q} reproduces an
// engine-default Search exactly.
type Query struct {
	// Nodes is the query entity set Q. Required: an empty query yields
	// ErrEmptyQuery.
	Nodes []NodeID

	// ContextSize overrides Options.ContextSize when > 0.
	ContextSize int
	// Selector overrides Options.Selector when non-empty (one of the
	// Selector* constants).
	Selector string
	// Alpha overrides Options.Alpha when > 0.
	Alpha float64
	// TopK, when > 0, truncates Result.Characteristics to the TopK
	// highest-ranked records after testing (the full context is still
	// selected and every label still tested — TopK only bounds the
	// response payload). 0 keeps every tested label, like Search.
	TopK int
	// Policy overrides Options.Policy when non-empty (PolicyStrict or
	// PolicyPooled).
	Policy string
	// TestSamples overrides Options.TestSamples when > 0.
	TestSamples int
	// Parallelism overrides Options.Parallelism when > 0.
	Parallelism int
	// Walks overrides Options.Walks when > 0 (the ContextRW selector's
	// PathMining budget). The override folds into the selector cache key,
	// so results equal an engine configured with the same Walks — warm or
	// cold — and never collide with other budgets' entries.
	Walks int
	// Damping overrides Options.Damping when > 0 (the RandomWalk
	// selector's restart parameter, valid in (0, 1)). Folded into the
	// selector and seed-vector cache keys like Walks.
	Damping float64

	// Degrade opts this request into deadline-degraded mode: when ctx is
	// cut (deadline or cancellation) during the comparison stage, Do
	// returns the labels tested so far — a prefix-consistent subset of the
	// full report, context included — alongside a *DegradedError instead
	// of discarding the work with a bare ctx error. A cut before the
	// context is selected still fails whole. Only Do honors Degrade;
	// DoBatch and DoStream abandon cancelled work outright.
	Degrade bool
}

// validate rejects override values no engine configuration could make
// valid. Zero values are never errors — they mean "inherit the engine's
// option" — so validation only fires on explicit nonsense: negative
// sizes/counts and significance levels outside (0, 1).
func (q Query) validate() error {
	if len(q.Nodes) == 0 {
		return ErrEmptyQuery
	}
	switch {
	case q.TopK < 0:
		return fmt.Errorf("%w: TopK %d < 0", ErrBadQuery, q.TopK)
	case q.ContextSize < 0:
		return fmt.Errorf("%w: ContextSize %d < 0", ErrBadQuery, q.ContextSize)
	case q.Alpha != 0 && (q.Alpha <= 0 || q.Alpha >= 1):
		return fmt.Errorf("%w: Alpha %v outside (0, 1)", ErrBadQuery, q.Alpha)
	case q.TestSamples < 0:
		return fmt.Errorf("%w: TestSamples %d < 0", ErrBadQuery, q.TestSamples)
	case q.Walks < 0:
		return fmt.Errorf("%w: Walks %d < 0", ErrBadQuery, q.Walks)
	case q.Damping != 0 && (q.Damping <= 0 || q.Damping >= 1):
		return fmt.Errorf("%w: Damping %v outside (0, 1)", ErrBadQuery, q.Damping)
	}
	return nil
}

// apply returns o with q's non-zero overrides folded in.
func (o Options) apply(q Query) Options {
	if q.ContextSize > 0 {
		o.ContextSize = q.ContextSize
	}
	if q.Selector != "" {
		o.Selector = q.Selector
	}
	if q.Alpha > 0 {
		o.Alpha = q.Alpha
	}
	if q.Policy != "" {
		o.Policy = q.Policy
	}
	if q.TestSamples > 0 {
		o.TestSamples = q.TestSamples
	}
	if q.Parallelism > 0 {
		o.Parallelism = q.Parallelism
	}
	if q.Walks > 0 {
		o.Walks = q.Walks
	}
	if q.Damping > 0 {
		o.Damping = q.Damping
	}
	return o
}

// trim applies q's TopK cut to a finished result.
func (q Query) trim(res Result) Result {
	if q.TopK > 0 && len(res.Characteristics) > q.TopK {
		res.Characteristics = res.Characteristics[:q.TopK:q.TopK]
	}
	return res
}

// Outcome is one query's entry in a DoStream: the index of the query in
// the request slice, and its result or error. Exactly one of Result/Err
// is meaningful: Err is nil for a completed search, ctx.Err() for a
// query abandoned by cancellation, or a validation error (ErrEmptyQuery,
// ErrBadQuery) for a malformed query.
type Outcome struct {
	// Index locates the query in the DoStream request slice.
	Index int
	// Result is the completed search, valid when Err is nil.
	Result Result
	// Err is nil on success.
	Err error
}

// Do serves one request: the full pipeline (context selection +
// distribution comparison) for q.Nodes under q's overrides. A cancelled
// ctx aborts the search within one PageRank sweep or one label test and
// returns ctx.Err(); the engine's caches are never corrupted by an
// abandoned request (only complete vectors and records are stored).
// For equal engine options and overrides, Do's result is bitwise
// identical to the deprecated Search.
//
// With q.Degrade set, a cut that lands in the comparison stage returns
// the partial Result (context + labels tested so far, TopK-trimmed)
// alongside a *DegradedError instead; see Query.Degrade.
func (e *Engine) Do(ctx context.Context, q Query) (Result, error) {
	start := time.Now()
	res, err := e.doOne(ctx, q)
	e.met.do.Observe(time.Since(start))
	return res, err
}

// doOne is Do without the end-to-end request timer.
func (e *Engine) doOne(ctx context.Context, q Query) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if err := q.validate(); err != nil {
		return Result{}, err
	}
	view := e.vg.View() // pin: the whole request runs on this epoch
	copt := e.coreOptionsFor(e.opt.apply(q), view)
	copt.Partial = q.Degrade
	res, err := core.FindNC(ctx, view.G, q.Nodes, copt)
	var pe *core.PartialError
	if errors.As(err, &pe) {
		return q.trim(res), &DegradedError{Cause: pe.Cause, Tested: pe.Tested, Total: pe.Total}
	}
	if err != nil {
		return Result{}, err
	}
	return q.trim(res), nil
}

// DoBatch serves many requests in one batched pass and returns one
// Result per query, in order. Queries with identical effective options
// (engine options + overrides; TopK excluded, it is a per-query
// post-cut) share one deduplicated cold pass — per-query cache consults
// first, one multi-source PageRank solve for the misses, comparison
// stages fanned through the shared executor — and results are bitwise
// identical to calling Do per query for every batch size, override mix,
// and Parallelism. Batches whose overrides differ are grouped by
// effective options; deduplication applies within each group.
//
// Validation is up-front: any empty query fails the whole batch with an
// error wrapping ErrEmptyQuery and naming the index. A cancelled ctx
// stops every group within one sweep or label test and returns ctx.Err().
func (e *Engine) DoBatch(ctx context.Context, qs []Query) ([]Result, error) {
	start := time.Now()
	rs, err := e.doBatch(ctx, qs)
	e.met.doBatch.Observe(time.Since(start))
	return rs, err
}

// doBatch is DoBatch without the end-to-end request timer.
func (e *Engine) doBatch(ctx context.Context, qs []Query) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	view := e.vg.View() // pin: every group of the batch runs on this epoch
	groups, err := e.groupRequests(qs, view)
	if err != nil {
		return nil, err
	}
	results := make([]Result, len(qs))
	for _, grp := range groups {
		rs, err := core.FindNCBatch(ctx, view.G, grp.nodes, grp.copt)
		if err != nil {
			return nil, err
		}
		for j, i := range grp.idx {
			results[i] = qs[i].trim(rs[j])
		}
	}
	return results, nil
}

// DoStream serves many requests as a stream: it returns immediately with
// a channel carrying exactly one Outcome per query — in completion
// order, not index order — and closes it when the batch is done. Like
// DoBatch it deduplicates seeds across queries with identical effective
// options, but each query is released to its comparison stage the moment
// its PageRank sum folds and its Outcome is emitted as soon as the
// comparison finishes: the first result of an overlapping batch arrives
// in a fraction of the batch's total wall-clock, with every Result
// bitwise identical to a solo Do call.
//
// Cancelling ctx stops all workers within one PageRank sweep or one
// label test; queries not yet completed are flushed with Err = ctx.Err()
// and the channel closes. The channel is buffered for the whole batch,
// so a consumer that stops receiving (with or without cancelling) never
// blocks or leaks the workers. Malformed queries (empty node sets) yield
// an Outcome with Err wrapping ErrEmptyQuery instead of failing the
// batch.
func (e *Engine) DoStream(ctx context.Context, qs []Query) <-chan Outcome {
	if ctx == nil {
		ctx = context.Background()
	}
	ch := make(chan Outcome, len(qs))
	valid := make([]Query, 0, len(qs))
	origIdx := make([]int, 0, len(qs)) // maps valid-slice position → qs index
	for i, q := range qs {
		if err := q.validate(); err != nil {
			ch <- Outcome{Index: i, Err: fmt.Errorf("%w (batch index %d)", err, i)}
			continue
		}
		valid = append(valid, q)
		origIdx = append(origIdx, i)
	}
	view := e.vg.View()                       // pin: the stream's queries all run on this epoch
	groups, _ := e.groupRequests(valid, view) // already validated: err impossible
	start := time.Now()
	go func() {
		defer close(ch)
		// One observation per stream: first query in to last outcome out.
		defer func() { e.met.doStream.Observe(time.Since(start)) }()
		for _, grp := range groups {
			grp := grp
			core.FindNCStream(ctx, view.G, grp.nodes, grp.copt, func(j int, res Result, err error) {
				i := origIdx[grp.idx[j]]
				if err == nil {
					res = qs[i].trim(res)
				}
				ch <- Outcome{Index: i, Result: res, Err: err}
				// Yield so a consumer blocked on the channel observes the
				// outcome now: on a saturated (or single-P) runtime the
				// pipeline would otherwise keep every core and delay
				// delivery of finished results until the batch drains —
				// the barrier the stream exists to break.
				runtime.Gosched()
			})
		}
	}()
	return ch
}

// requestGroup is one DoBatch/DoStream partition: the indices (into the
// validated query slice) sharing one set of effective options, their node
// sets, and the translated core options.
type requestGroup struct {
	idx   []int
	nodes [][]NodeID
	copt  core.Options
}

// groupRequests validates qs and partitions it by effective options
// (first-appearance order, stable within a group) so each partition can
// share one deduplicated batch pass, all pinned to the caller's view.
// TopK never splits a group — it is applied per query after the fact.
func (e *Engine) groupRequests(qs []Query, view *kg.View) ([]*requestGroup, error) {
	byOpt := make(map[Options]*requestGroup)
	var groups []*requestGroup
	for i, q := range qs {
		if err := q.validate(); err != nil {
			return nil, fmt.Errorf("%w (batch index %d)", err, i)
		}
		eff := e.opt.apply(q)
		grp := byOpt[eff]
		if grp == nil {
			grp = &requestGroup{copt: e.coreOptionsFor(eff, view)}
			byOpt[eff] = grp
			groups = append(groups, grp)
		}
		grp.idx = append(grp.idx, i)
		grp.nodes = append(grp.nodes, q.Nodes)
	}
	return groups, nil
}
