package notable

import (
	"context"
	"errors"
	"reflect"
	"testing"
	"time"

	"repro/internal/gen"
)

// collectStream drains a DoStream channel into a per-index map, failing
// on duplicate emissions.
func collectStream(t *testing.T, ch <-chan Outcome) map[int]Outcome {
	t.Helper()
	got := make(map[int]Outcome)
	for out := range ch {
		if _, dup := got[out.Index]; dup {
			t.Fatalf("index %d emitted twice", out.Index)
		}
		got[out.Index] = out
	}
	return got
}

// TestDoStreamMatchesSearchBitwise: the stream yields exactly one Outcome
// per query, and every successful Result is bitwise identical to a solo
// Search on a fresh engine — across batch sizes, parallelism, and cache
// states (the duplicate-node query in the mix exercises the uncacheable
// path).
func TestDoStreamMatchesSearchBitwise(t *testing.T) {
	g := buildLeaders()
	base := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	for _, batchSize := range []int{1, 3, 8} {
		for _, par := range []int{1, 4} {
			for _, cacheSize := range []int{0, -1} {
				opt := base
				opt.Parallelism = par
				opt.CacheSize = cacheSize
				seqEng := NewEngine(g, opt)
				queries := leaderQueries(t, seqEng, batchSize)
				want := searchSequential(t, seqEng, queries)

				qs := make([]Query, len(queries))
				for i, q := range queries {
					qs[i] = Query{Nodes: q}
				}
				streamEng := NewEngine(g, opt)
				got := collectStream(t, streamEng.DoStream(context.Background(), qs))
				if len(got) != len(qs) {
					t.Fatalf("b=%d par=%d cache=%d: %d outcomes for %d queries",
						batchSize, par, cacheSize, len(got), len(qs))
				}
				for i := range qs {
					out := got[i]
					if out.Err != nil {
						t.Fatalf("b=%d par=%d cache=%d: query %d: %v", batchSize, par, cacheSize, i, out.Err)
					}
					if !reflect.DeepEqual(out.Result, want[i]) {
						t.Fatalf("b=%d par=%d cache=%d: stream result %d differs from Search",
							batchSize, par, cacheSize, i)
					}
				}
			}
		}
	}
}

// TestDoStreamWarmEngine: a fully warm stream emits everything (cache
// hits release before any solving) with identical results.
func TestDoStreamWarmEngine(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	queries := leaderQueries(t, e, 5)
	want := searchSequential(t, e, queries)
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{Nodes: q}
	}
	got := collectStream(t, e.DoStream(context.Background(), qs))
	for i := range qs {
		if got[i].Err != nil || !reflect.DeepEqual(got[i].Result, want[i]) {
			t.Fatalf("warm stream result %d differs", i)
		}
	}
}

// TestDoStreamMixedOverridesAndInvalid: overrides group the stream
// without changing per-query results, and malformed queries yield typed
// error Outcomes instead of failing the batch.
func TestDoStreamMixedOverridesAndInvalid(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	queries := leaderQueries(t, e, 4)
	qs := []Query{
		{Nodes: queries[0]},
		{}, // empty: typed error outcome
		{Nodes: queries[1], ContextSize: 4},
		{Nodes: queries[2], TopK: 1},
		{Nodes: queries[3]},
	}
	got := collectStream(t, e.DoStream(context.Background(), qs))
	if len(got) != len(qs) {
		t.Fatalf("%d outcomes for %d queries", len(got), len(qs))
	}
	if !errors.Is(got[1].Err, ErrEmptyQuery) {
		t.Fatalf("empty query outcome: %v, want ErrEmptyQuery", got[1].Err)
	}
	solo := NewEngine(g, opt)
	for i, q := range qs {
		if i == 1 {
			continue
		}
		want, err := solo.Do(context.Background(), q)
		if err != nil {
			t.Fatal(err)
		}
		if got[i].Err != nil || !reflect.DeepEqual(got[i].Result, want) {
			t.Fatalf("stream result %d differs from solo Do", i)
		}
	}
}

// TestDoStreamEarlyAbandon: a consumer that cancels after the first
// outcome still sees the channel close promptly, with every index
// emitted exactly once — completed queries with results, abandoned ones
// with ctx.Err() — and no goroutine left solving.
func TestDoStreamEarlyAbandon(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	queries := leaderQueries(t, e, 8)
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{Nodes: q}
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	ch := e.DoStream(ctx, qs)
	first, ok := <-ch
	if !ok {
		t.Fatal("stream closed before the first outcome")
	}
	cancel()
	seen := map[int]bool{first.Index: true}
	deadline := time.After(30 * time.Second)
	for {
		select {
		case out, ok := <-ch:
			if !ok {
				if len(seen) != len(qs) {
					t.Fatalf("stream closed after %d of %d outcomes", len(seen), len(qs))
				}
				return
			}
			if seen[out.Index] {
				t.Fatalf("index %d emitted twice", out.Index)
			}
			seen[out.Index] = true
			if out.Err != nil && !errors.Is(out.Err, context.Canceled) {
				t.Fatalf("index %d: err = %v, want nil or context.Canceled", out.Index, out.Err)
			}
		case <-deadline:
			t.Fatalf("stream did not close after cancellation (%d of %d outcomes)", len(seen), len(qs))
		}
	}
}

// TestDoStreamConsumerWalksAway: the channel is buffered for the whole
// batch, so a consumer that stops receiving without cancelling leaks
// nothing — the workers run the batch to completion and close the
// channel.
func TestDoStreamConsumerWalksAway(t *testing.T) {
	g := buildLeaders()
	opt := Options{ContextSize: 6, Selector: SelectorRandomWalk, Seed: 3, TestSamples: 500}
	e := NewEngine(g, opt)
	queries := leaderQueries(t, e, 4)
	qs := make([]Query, len(queries))
	for i, q := range queries {
		qs[i] = Query{Nodes: q}
	}
	ch := e.DoStream(context.Background(), qs)
	<-ch // take one outcome, then stop receiving
	// The stream must still finish and close on its own: poll until the
	// buffered channel holds the rest and closes.
	deadline := time.After(30 * time.Second)
	drained := 1
	for {
		select {
		case _, ok := <-ch:
			if !ok {
				if drained != len(qs) {
					t.Fatalf("drained %d of %d outcomes", drained, len(qs))
				}
				return
			}
			drained++
		case <-deadline:
			t.Fatal("abandoned stream never completed")
		}
	}
}

// BenchmarkSearchStream is the streaming path's acceptance benchmark on
// the same overlapping 8-query actors mix as BenchmarkSearchBatch:
// dobatch measures the barriered batch, stream/first the time until
// DoStream's first outcome, stream/total the full stream drain. The
// acceptance bound is stream/first ≤ 0.5x dobatch (time-to-first-result),
// with identical per-query payloads (pinned by the equivalence tests).
func BenchmarkSearchStream(b *testing.B) {
	d := gen.YAGOLike(gen.YAGOConfig{Seed: benchSeed, Scale: benchScale})
	g := d.Graph
	g.Transitions()
	opt := Options{
		ContextSize:    30,
		Selector:       SelectorRandomWalk,
		Seed:           benchSeed,
		CacheSize:      -1,
		TestSamples:    500,
		TestExactLimit: 5000,
	}
	e := NewEngine(g, opt)
	cohort, err := d.Scenario("actors").QueryIDs(g, 6)
	if err != nil {
		b.Fatal(err)
	}
	var qs []Query
	for drop := 0; drop < len(cohort); drop++ {
		q := make([]NodeID, 0, len(cohort)-1)
		for i, id := range cohort {
			if i != drop {
				q = append(q, id)
			}
		}
		qs = append(qs, Query{Nodes: q})
	}
	qs = append(qs, Query{Nodes: cohort}, Query{Nodes: cohort[:4]})
	ctx := context.Background()

	b.Run("dobatch", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			if _, err := e.DoBatch(ctx, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("stream", func(b *testing.B) {
		b.ReportAllocs()
		var firstNS, totalNS int64
		for i := 0; i < b.N; i++ {
			start := time.Now()
			ch := e.DoStream(ctx, qs)
			out, ok := <-ch
			if !ok || out.Err != nil {
				b.Fatalf("first outcome: ok=%v err=%v", ok, out.Err)
			}
			firstNS += time.Since(start).Nanoseconds()
			for out := range ch {
				if out.Err != nil {
					b.Fatal(out.Err)
				}
			}
			totalNS += time.Since(start).Nanoseconds()
		}
		b.ReportMetric(float64(firstNS)/float64(b.N), "ns/first-result")
		b.ReportMetric(float64(totalNS)/float64(b.N), "ns/total")
	})
}
