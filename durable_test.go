package notable

// Durable-ingest tests: NewDurableEngine end to end — restart recovery
// bitwise-identical to a from-scratch engine, checkpoint/truncate
// lifecycle through Checkpoint and compaction, the fault-injection crash
// matrix over the wal.FS seam, sticky ErrDurability, and the torn-tail
// vs. mid-log-corruption distinction.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"repro/internal/wal"
)

func durOpt() Options {
	return Options{ContextSize: 6, Walks: 5000, Seed: 3, CompactThreshold: -1}
}

func quietDur(dir string) Durability {
	return Durability{WALDir: dir, Logf: func(string, ...any) {}}
}

// durableBatch is the i-th deterministic mutation of the crash workload;
// every batch is effective, so batch i+1 always lands on epoch i+1.
func durableBatch(i int) (adds, dels []Triple) {
	adds = []Triple{
		{S: "Angela Merkel", P: "visited", O: countryName(i)},
		{S: "Barack Obama", P: "visited", O: countryName(i)},
	}
	if i%2 == 1 {
		dels = []Triple{{S: "Angela Merkel", P: "visited", O: countryName(i - 1)}}
	}
	return adds, dels
}

// applyBatches applies the first n workload batches, asserting the epoch
// sequence.
func applyBatches(t *testing.T, e *Engine, n int) {
	t.Helper()
	for i := 0; i < n; i++ {
		adds, dels := durableBatch(i)
		ep, err := e.ApplyTriples(context.Background(), adds, dels)
		if err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
		if ep != uint64(i+1) {
			t.Fatalf("batch %d landed on epoch %d", i, ep)
		}
	}
}

// oracleResult is the from-scratch answer at epoch n: a fresh engine
// over a full rebuild of the graph after the first n workload batches.
func oracleResult(t *testing.T, opt Options, n uint64) Result {
	t.Helper()
	e := NewEngine(buildLeaders(), opt)
	applyBatches(t, e, int(n))
	ref := referenceEngine(e, opt)
	q, err := ref.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	return mustDo(t, ref, Query{Nodes: q})
}

func durableDo(t *testing.T, e *Engine) Result {
	t.Helper()
	q, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	return mustDo(t, e, Query{Nodes: q})
}

func TestDurableEngineConfigErrors(t *testing.T) {
	if _, _, err := NewDurableEngine(buildLeaders(), durOpt(), Durability{}); err == nil {
		t.Fatal("empty WALDir accepted")
	}
	d := quietDur(t.TempDir())
	d.Sync = "always"
	if _, _, err := NewDurableEngine(buildLeaders(), durOpt(), d); err == nil {
		t.Fatal("unknown sync policy accepted")
	}
	// A non-durable engine reports durability off and no-ops Checkpoint
	// and Close.
	e := NewEngine(buildLeaders(), durOpt())
	if ds := e.DurabilityStats(); ds.Enabled {
		t.Fatalf("non-durable engine reports %+v", ds)
	}
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestDurableRestartMatchesFromScratch: a restart over the WAL directory
// recovers the acknowledged epoch, and its search results are bitwise
// identical to a from-scratch engine — under both sync policies.
func TestDurableRestartMatchesFromScratch(t *testing.T) {
	for _, sync := range []string{SyncBatch, SyncInterval} {
		t.Run(sync, func(t *testing.T) {
			dir := t.TempDir()
			opt := durOpt()
			d := quietDur(dir)
			d.Sync = sync
			e, info, err := NewDurableEngine(buildLeaders(), opt, d)
			if err != nil {
				t.Fatal(err)
			}
			if info.Epoch != 0 || info.HasCheckpoint || info.RecordsReplayed != 0 {
				t.Fatalf("fresh directory recovered %+v", info)
			}
			applyBatches(t, e, 3)
			want := durableDo(t, e)
			if err := e.Close(); err != nil {
				t.Fatal(err)
			}
			// Serving survives Close; ingest does not.
			if got := durableDo(t, e); !reflect.DeepEqual(got, want) {
				t.Fatal("reads differ after Close")
			}
			if _, err := e.ApplyTriples(context.Background(), []Triple{{S: "a", P: "b", O: "c"}}, nil); !errors.Is(err, ErrDurability) {
				t.Fatalf("ingest after Close: %v, want ErrDurability", err)
			}

			e2, info2, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
			if err != nil {
				t.Fatal(err)
			}
			defer e2.Close()
			if info2.Epoch != 3 || info2.RecordsReplayed != 3 || info2.HasCheckpoint {
				t.Fatalf("restart recovered %+v", info2)
			}
			if e2.Epoch() != 3 {
				t.Fatalf("engine epoch %d after recovery", e2.Epoch())
			}
			got := durableDo(t, e2)
			if !reflect.DeepEqual(got, want) {
				t.Fatal("recovered result differs from the pre-restart engine")
			}
			if oracle := oracleResult(t, opt, 3); !reflect.DeepEqual(got, oracle) {
				t.Fatal("recovered result differs from a from-scratch engine")
			}
			if ds := e2.DurabilityStats(); !ds.Enabled || ds.RecoveredRecords != 3 {
				t.Fatalf("stats after recovery: %+v", ds)
			}
			// Ingest resumes on the recovered epoch sequence.
			adds, dels := durableBatch(3)
			if ep, err := e2.ApplyTriples(context.Background(), adds, dels); err != nil || ep != 4 {
				t.Fatalf("post-recovery batch: epoch %d, err %v", ep, err)
			}
		})
	}
}

// TestDurableCheckpointLifecycle: explicit checkpoints persist the flat
// graph, truncate the log behind the previous checkpoint, and make the
// next restart a snapshot load instead of a replay.
func TestDurableCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	opt := durOpt()
	e, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, e, 2)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// First checkpoint: floor 0, nothing truncated yet.
	if ds := e.DurabilityStats(); ds.CheckpointEpoch != 2 || ds.WALRecords != 2 {
		t.Fatalf("after first checkpoint: %+v", ds)
	}
	applyBatches2(t, e, 2, 4)
	if err := e.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	// Second checkpoint: records at or below the previous one (epoch 2)
	// leave the log.
	if ds := e.DurabilityStats(); ds.CheckpointEpoch != 4 || ds.WALRecords != 2 {
		t.Fatalf("after second checkpoint: %+v", ds)
	}
	want := durableDo(t, e)
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}

	e2, info, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if !info.HasCheckpoint || info.CheckpointEpoch != 4 || info.RecordsReplayed != 0 || info.Epoch != 4 {
		t.Fatalf("restart after checkpoint recovered %+v", info)
	}
	if got := durableDo(t, e2); !reflect.DeepEqual(got, want) {
		t.Fatal("checkpoint-recovered result differs from the pre-restart engine")
	}
	if oracle := oracleResult(t, opt, 4); !reflect.DeepEqual(durableDo(t, e2), oracle) {
		t.Fatal("checkpoint-recovered result differs from a from-scratch engine")
	}
}

// applyBatches2 applies workload batches [from, to).
func applyBatches2(t *testing.T, e *Engine, from, to int) {
	t.Helper()
	for i := from; i < to; i++ {
		adds, dels := durableBatch(i)
		if _, err := e.ApplyTriples(context.Background(), adds, dels); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}

// TestDurableCompactionCheckpoints: a compaction swap persists a
// checkpoint through the OnCompact hook, without an explicit Checkpoint
// call. (Compact is the synchronous path to the same hook background
// threshold compaction fires; a background rebuild can lose its publish
// race and be discarded, so it cannot be asserted deterministically.)
func TestDurableCompactionCheckpoints(t *testing.T) {
	dir := t.TempDir()
	opt := durOpt()
	e, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, e, 4)
	e.Compact()
	if err := e.Close(); err != nil {
		t.Fatal(err)
	}
	_, info, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	if !info.HasCheckpoint {
		t.Fatalf("no checkpoint after threshold compaction: %+v", info)
	}
	if info.Epoch != 4 {
		t.Fatalf("recovered epoch %d, want 4", info.Epoch)
	}
}

// TestDurableNoopBatchNotLogged: an ineffective batch does not bump the
// epoch, so it must not reach the log either — logged epochs stay
// contiguous.
func TestDurableNoopBatchNotLogged(t *testing.T) {
	e, _, err := NewDurableEngine(buildLeaders(), durOpt(), quietDur(t.TempDir()))
	if err != nil {
		t.Fatal(err)
	}
	defer e.Close()
	applyBatches(t, e, 1)
	adds, _ := durableBatch(0) // identical again: a no-op
	if ep, err := e.ApplyTriples(context.Background(), adds, nil); err != nil || ep != 1 {
		t.Fatalf("no-op batch: epoch %d, err %v", ep, err)
	}
	if ds := e.DurabilityStats(); ds.WALRecords != 1 {
		t.Fatalf("no-op batch was logged: %+v", ds)
	}
}

// TestDurableStickyError: once the log fails, the failing ApplyTriples
// and every later one return ErrDurability — no batch is acknowledged
// past a lost one — while reads keep serving; a restart recovers the
// last epoch durable before the fault.
func TestDurableStickyError(t *testing.T) {
	dir := t.TempDir()
	opt := durOpt()
	ffs := wal.NewFaultFS(nil)
	d := quietDur(dir)
	d.fs = ffs
	e, _, err := NewDurableEngine(buildLeaders(), opt, d)
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, e, 1)
	ffs.CrashAfterWriteBytes(3) // the next record tears 3 bytes in
	adds, dels := durableBatch(1)
	if _, err := e.ApplyTriples(context.Background(), adds, dels); !errors.Is(err, ErrDurability) {
		t.Fatalf("crashing batch: %v, want ErrDurability", err)
	}
	adds, dels = durableBatch(2)
	if _, err := e.ApplyTriples(context.Background(), adds, dels); !errors.Is(err, ErrDurability) {
		t.Fatalf("batch after sticky failure: %v, want ErrDurability", err)
	}
	durableDo(t, e) // reads unaffected
	e.Close()

	e2, info, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if info.Epoch != 1 || info.TruncatedBytes != 3 {
		t.Fatalf("recovered %+v, want epoch 1 with 3 torn bytes", info)
	}
	if oracle := oracleResult(t, opt, 1); !reflect.DeepEqual(durableDo(t, e2), oracle) {
		t.Fatal("recovered result differs from a from-scratch engine at epoch 1")
	}
}

// TestDurableCrashRecoveryMatrix kills the ingest pipeline at every
// fault-injection point — short writes at several depths, fsync
// failures, a crash on either side of the checkpoint rename — and
// asserts the durability contract: a clean restart recovers every
// acknowledged epoch, and its search results are bitwise identical to a
// from-scratch engine at the recovered epoch.
func TestDurableCrashRecoveryMatrix(t *testing.T) {
	scenarios := []struct {
		name string
		arm  func(*wal.FaultFS)
	}{
		{"write-header", func(f *wal.FaultFS) { f.CrashAfterWriteBytes(6) }},
		{"write-first-record", func(f *wal.FaultFS) { f.CrashAfterWriteBytes(30) }},
		{"write-mid", func(f *wal.FaultFS) { f.CrashAfterWriteBytes(200) }},
		{"write-late", func(f *wal.FaultFS) { f.CrashAfterWriteBytes(450) }},
		{"sync-open", func(f *wal.FaultFS) { f.CrashOnSync(0) }},
		{"sync-early", func(f *wal.FaultFS) { f.CrashOnSync(2) }},
		{"sync-late", func(f *wal.FaultFS) { f.CrashOnSync(6) }},
		{"ckpt-rename-before", func(f *wal.FaultFS) { f.CrashBeforeRename(0) }},
		{"ckpt-rename-after", func(f *wal.FaultFS) { f.CrashAfterRename(0) }},
	}
	opt := durOpt()
	for _, sc := range scenarios {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := wal.NewFaultFS(nil)
			sc.arm(ffs)

			var acked uint64
			func() { // the doomed process
				d := quietDur(dir)
				d.fs = ffs
				e, _, err := NewDurableEngine(buildLeaders(), opt, d)
				if err != nil {
					return // died during open: nothing acknowledged
				}
				defer e.Close()
				for i := 0; i < 6; i++ {
					adds, dels := durableBatch(i)
					ep, err := e.ApplyTriples(context.Background(), adds, dels)
					if err != nil {
						return
					}
					acked = ep
					if i == 2 {
						// The first checkpoint: where the rename crash points
						// live. A failed checkpoint is survivable (the log
						// still covers everything), so keep ingesting.
						_ = e.Checkpoint()
					}
				}
			}()
			if !ffs.Crashed() {
				t.Fatalf("workload finished without hitting the %s fault", sc.name)
			}

			e2, info, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer e2.Close()
			if info.Epoch < acked {
				t.Fatalf("acknowledged epoch %d lost: recovered only %+v", acked, info)
			}
			if got, oracle := durableDo(t, e2), oracleResult(t, opt, info.Epoch); !reflect.DeepEqual(got, oracle) {
				t.Fatalf("recovered result at epoch %d differs from a from-scratch engine", info.Epoch)
			}
		})
	}
}

// TestDurableTornTail: a log ending mid-frame (the bytes a real crash
// leaves) is truncated to the last complete record and recovery proceeds
// one epoch short — exactly the unacknowledged batch.
func TestDurableTornTail(t *testing.T) {
	dir := t.TempDir()
	opt := durOpt()
	e, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, e, 3)
	e.Close()
	path := filepath.Join(dir, "wal.log")
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-4); err != nil {
		t.Fatal(err)
	}

	e2, info, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	defer e2.Close()
	if info.TruncatedBytes == 0 || info.Epoch != 2 {
		t.Fatalf("recovered %+v, want epoch 2 with torn bytes reported", info)
	}
	if oracle := oracleResult(t, opt, 2); !reflect.DeepEqual(durableDo(t, e2), oracle) {
		t.Fatal("recovered result differs from a from-scratch engine at epoch 2")
	}
}

// TestDurableMidLogCorruption: a checksum failure before the final
// record means acknowledged batches are unrecoverable; construction must
// refuse with wal.ErrCorrupt, not serve a graph missing writes.
func TestDurableMidLogCorruption(t *testing.T) {
	dir := t.TempDir()
	opt := durOpt()
	e, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir))
	if err != nil {
		t.Fatal(err)
	}
	applyBatches(t, e, 3)
	e.Close()
	path := filepath.Join(dir, "wal.log")
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[20] ^= 0x08 // inside the first record's payload
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := NewDurableEngine(buildLeaders(), opt, quietDur(dir)); !errors.Is(err, wal.ErrCorrupt) {
		t.Fatalf("mid-log corruption: %v, want wal.ErrCorrupt", err)
	}
}

// BenchmarkIngestDurable prices the durability tax on ApplyTriples: no
// WAL, per-batch fsync, and interval group commit. Each iteration is an
// effective single-triple batch (alternating add/delete of the same
// edge, so the overlay stays bounded without compaction noise).
func BenchmarkIngestDurable(b *testing.B) {
	run := func(b *testing.B, sync string) {
		opt := durOpt()
		var e *Engine
		if sync == "" {
			e = NewEngine(buildLeaders(), opt)
		} else {
			var err error
			e, _, err = NewDurableEngine(buildLeaders(), opt, Durability{
				WALDir: b.TempDir(), Sync: sync, Logf: func(string, ...any) {},
			})
			if err != nil {
				b.Fatal(err)
			}
			defer e.Close()
		}
		ctx := context.Background()
		tr := []Triple{{S: "Angela Merkel", P: "visited", O: "Wonderland"}}
		// Intern the new node up front so no iteration pays the one-off
		// search-index rebuild.
		if _, err := e.ApplyTriples(ctx, tr, nil); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			var err error
			if i%2 == 0 {
				_, err = e.ApplyTriples(ctx, nil, tr)
			} else {
				_, err = e.ApplyTriples(ctx, tr, nil)
			}
			if err != nil {
				b.Fatal(err)
			}
		}
	}
	b.Run("off", func(b *testing.B) { run(b, "") })
	b.Run("batch", func(b *testing.B) { run(b, SyncBatch) })
	b.Run("interval", func(b *testing.B) { run(b, SyncInterval) })
}
