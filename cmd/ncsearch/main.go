// Command ncsearch runs a notable-characteristics search from the command
// line.
//
//	ncsearch -dataset yago -q "Angela Merkel,Barack Obama" -k 100
//	ncsearch -graph facts.tsv -q "Camera Alpha-7,Camera X-Pro9"
//
// The query is resolved against node names (fuzzy matching included), the
// context is selected with ContextRW (or -selector randomwalk), and the
// notable characteristics are printed with their scores and significance
// probabilities.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/gen"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "triple file (.tsv/.nt) or snapshot (.kgsnap) to load")
		dataset   = flag.String("dataset", "", "built-in dataset: yago | lmdb | authors | products | figure1")
		queryStr  = flag.String("q", "", "comma-separated query entity names (required)")
		k         = flag.Int("k", 100, "context size |C|")
		selector  = flag.String("selector", "contextrw", "context selector: contextrw | randomwalk | simrank | jaccard")
		walks     = flag.Int("walks", 200000, "PathMining walk budget")
		alpha     = flag.Float64("alpha", 0.05, "significance level")
		policy    = flag.String("policy", "strict", "unseen-value policy: strict | pooled")
		seed      = flag.Int64("seed", 1, "random seed")
		showCtx   = flag.Int("show-context", 10, "context nodes to print")
		showAll   = flag.Bool("all", false, "print non-notable characteristics too")
	)
	flag.Parse()

	if *queryStr == "" {
		fmt.Fprintln(os.Stderr, "ncsearch: -q is required (comma-separated entity names)")
		flag.Usage()
		os.Exit(2)
	}
	g, err := loadGraph(*graphPath, *dataset, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsearch:", err)
		os.Exit(1)
	}
	fmt.Println("graph:", g.Stats())

	engine := notable.NewEngine(g, notable.Options{
		ContextSize: *k,
		Selector:    *selector,
		Walks:       *walks,
		Alpha:       *alpha,
		Policy:      *policy,
		Seed:        *seed,
	})

	var names []string
	for _, part := range strings.Split(*queryStr, ",") {
		if s := strings.TrimSpace(part); s != "" {
			names = append(names, s)
		}
	}
	query, err := engine.Resolve(names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsearch:", err)
		for _, n := range names {
			if hits := engine.Suggest(n, 3); len(hits) > 0 {
				fmt.Fprintf(os.Stderr, "  did you mean for %q:", n)
				for _, h := range hits {
					fmt.Fprintf(os.Stderr, " %q", h.Name)
				}
				fmt.Fprintln(os.Stderr)
			}
		}
		os.Exit(1)
	}
	fmt.Print("query:")
	for _, id := range query {
		fmt.Printf(" %q", g.NodeName(id))
	}
	fmt.Println()

	res, err := engine.Search(query)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsearch:", err)
		os.Exit(1)
	}

	fmt.Printf("\ncontext (top %d of %d):\n", min(*showCtx, len(res.Context)), len(res.Context))
	for i, item := range res.Context {
		if i >= *showCtx {
			break
		}
		fmt.Printf("  %2d. %-40s %.6f\n", i+1, g.NodeName(item.ID), item.Score)
	}

	fmt.Println("\nnotable characteristics:")
	printed := 0
	for _, c := range res.Characteristics {
		if !c.Notable() && !*showAll {
			continue
		}
		marker := " "
		if c.Notable() {
			marker = "*"
		}
		fmt.Printf("  %s %-24s score=%.4f via %-11s  P(inst)=%.4f P(card)=%.4f\n",
			marker, c.Name, c.Score, c.Kind, c.InstP, c.CardP)
		printed++
	}
	if printed == 0 {
		fmt.Println("  (none at this significance level; try -all to see every label)")
	}
}

func loadGraph(path, dataset string, seed int64) (*notable.Graph, error) {
	switch {
	case path != "":
		return notable.LoadGraphFile(path)
	case dataset == "yago" || dataset == "":
		return gen.YAGOLike(gen.YAGOConfig{Seed: seed}).Graph, nil
	case dataset == "lmdb":
		return gen.LinkedMDBLike(gen.LMDBConfig{Seed: seed}).Graph, nil
	case dataset == "authors":
		return gen.Authors(seed).Graph, nil
	case dataset == "products":
		return gen.Products(seed).Graph, nil
	case dataset == "figure1":
		return gen.Figure1().Graph, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
