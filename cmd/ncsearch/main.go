// Command ncsearch runs a notable-characteristics search from the command
// line.
//
//	ncsearch -dataset yago -q "Angela Merkel,Barack Obama" -k 100
//	ncsearch -graph facts.tsv -q "Camera Alpha-7,Camera X-Pro9"
//	ncsearch -dataset yago -queries sweep.txt -k 30
//	ncsearch -dataset yago -selector randomwalk -refine
//
// The query is resolved against node names (fuzzy matching included), the
// context is selected with ContextRW (or -selector randomwalk), and the
// notable characteristics are printed with their scores and significance
// probabilities.
//
// With -queries FILE, each non-empty line of FILE is one query
// (comma-separated entity names, # starts a comment); the whole file runs
// as one Engine.SearchBatch — amortizing graph traversal across the
// queries — and per-query plus aggregate timing is reported.
//
// With -refine, queries are read interactively from stdin — one per
// line — against a single warm engine, the intended exploratory loop:
// add or remove one entity and re-search. Each answer reports its
// latency and the per-layer cache-hit deltas, so the fast path (seed
// vectors with -selector randomwalk, memoized null distributions, warm
// selector entries) is directly observable from the terminal.
//
// Searches run under an interrupt-cancelled context: Ctrl-C aborts an
// in-flight search cleanly (the workers stop within one PageRank sweep
// or label test) instead of leaving it burning CPU.
package main

import (
	"bufio"
	"context"
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/qcache"
)

func main() {
	var (
		graphPath = flag.String("graph", "", "triple file (.tsv/.nt) or snapshot (.kgsnap) to load")
		dataset   = flag.String("dataset", "", "built-in dataset: yago | lmdb | authors | products | figure1")
		queryStr  = flag.String("q", "", "comma-separated query entity names")
		queryFile = flag.String("queries", "", "file with one query per line (comma-separated names): batch mode")
		refine    = flag.Bool("refine", false, "interactive mode: read one query per line from stdin against a single warm engine")
		k         = flag.Int("k", 100, "context size |C|")
		selector  = flag.String("selector", "contextrw", "context selector: contextrw | randomwalk | simrank | jaccard")
		walks     = flag.Int("walks", 200000, "PathMining walk budget")
		alpha     = flag.Float64("alpha", 0.05, "significance level")
		policy    = flag.String("policy", "strict", "unseen-value policy: strict | pooled")
		seed      = flag.Int64("seed", 1, "random seed")
		showCtx   = flag.Int("show-context", 10, "context nodes to print")
		showAll   = flag.Bool("all", false, "print non-notable characteristics too")
	)
	flag.Parse()

	if *queryStr == "" && *queryFile == "" && !*refine {
		fmt.Fprintln(os.Stderr, "ncsearch: -q, -queries, or -refine is required")
		flag.Usage()
		os.Exit(2)
	}
	// Ctrl-C cancels the in-flight search cleanly; a second interrupt
	// falls back to the default hard kill.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()
	g, err := loadGraph(*graphPath, *dataset, *seed)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsearch:", err)
		os.Exit(1)
	}
	engine := notable.NewEngine(g, notable.Options{
		ContextSize: *k,
		Selector:    *selector,
		Walks:       *walks,
		Alpha:       *alpha,
		Policy:      *policy,
		Seed:        *seed,
	})
	fmt.Printf("graph: %s (epoch %d)\n", g.Stats(), engine.Epoch())

	if *refine {
		if err := runRefine(ctx, engine, os.Stdin); err != nil {
			fail(err)
		}
		return
	}
	if *queryFile != "" {
		if err := runBatch(ctx, engine, g, *queryFile); err != nil {
			fail(err)
		}
		return
	}

	names := splitNames(*queryStr)
	query, err := engine.Resolve(names...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsearch:", err)
		for _, n := range unresolvedNames(err, names) {
			if hits := engine.Suggest(n, 3); len(hits) > 0 {
				fmt.Fprintf(os.Stderr, "  did you mean for %q:", n)
				for _, h := range hits {
					fmt.Fprintf(os.Stderr, " %q", h.Name)
				}
				fmt.Fprintln(os.Stderr)
			}
		}
		os.Exit(1)
	}
	fmt.Print("query:")
	for _, id := range query {
		fmt.Printf(" %q", g.NodeName(id))
	}
	fmt.Println()

	res, err := engine.Do(ctx, notable.Query{Nodes: query})
	if err != nil {
		fail(err)
	}

	fmt.Printf("\ncontext (top %d of %d):\n", min(*showCtx, len(res.Context)), len(res.Context))
	for i, item := range res.Context {
		if i >= *showCtx {
			break
		}
		fmt.Printf("  %2d. %-40s %.6f\n", i+1, g.NodeName(item.ID), item.Score)
	}

	fmt.Println("\nnotable characteristics:")
	printed := 0
	for _, c := range res.Characteristics {
		if !c.Notable() && !*showAll {
			continue
		}
		marker := " "
		if c.Notable() {
			marker = "*"
		}
		fmt.Printf("  %s %-24s score=%.4f via %-11s  P(inst)=%.4f P(card)=%.4f\n",
			marker, c.Name, c.Score, c.Kind, c.InstP, c.CardP)
		printed++
	}
	if printed == 0 {
		fmt.Println("  (none at this significance level; try -all to see every label)")
	}
}

// runBatch reads one query per line from path, resolves every name, runs
// the whole file as a single DoBatch, and reports per-query results with
// aggregate timing. Ctrl-C aborts the whole batch cleanly.
func runBatch(ctx context.Context, engine *notable.Engine, g *notable.Graph, path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()
	var queries []notable.Query
	var lines []string
	sc := bufio.NewScanner(f)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		query, err := engine.Resolve(splitNames(line)...)
		if err != nil {
			return fmt.Errorf("line %q: %w", line, err)
		}
		queries = append(queries, notable.Query{Nodes: query})
		lines = append(lines, line)
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if len(queries) == 0 {
		return fmt.Errorf("%s: no queries", path)
	}

	start := time.Now()
	results, err := engine.DoBatch(ctx, queries)
	if err != nil {
		if errors.Is(err, context.Canceled) {
			// %w keeps the cancellation identity so main exits 130.
			return fmt.Errorf("interrupted after %v: %w", time.Since(start), err)
		}
		return err
	}
	elapsed := time.Since(start)

	for i, res := range results {
		notables := res.NotableOnly()
		fmt.Printf("\n[%d] %s — %d context nodes, %d notable / %d tested\n",
			i+1, lines[i], len(res.Context), len(notables), len(res.Characteristics))
		for j, c := range notables {
			if j >= 5 {
				fmt.Printf("      ... %d more\n", len(notables)-j)
				break
			}
			fmt.Printf("      %-24s score=%.4f via %s\n", c.Name, c.Score, c.Kind)
		}
	}
	fmt.Printf("\nbatch of %d queries in %v — %v/query average",
		len(queries), elapsed, elapsed/time.Duration(len(queries)))
	if st := engine.CacheStats(); st.Hits+st.Misses > 0 {
		fmt.Printf(" (cache: %d hits, %d misses, %d KiB resident)",
			st.Hits, st.Misses, st.Bytes/1024)
	}
	fmt.Println()
	return nil
}

// fail prints err and exits — 130 for an interrupt (the shell convention
// for SIGINT), 1 otherwise.
func fail(err error) {
	if errors.Is(err, context.Canceled) {
		fmt.Fprintln(os.Stderr, "ncsearch: interrupted")
		os.Exit(130)
	}
	fmt.Fprintln(os.Stderr, "ncsearch:", err)
	os.Exit(1)
}

// unresolvedNames returns the names err reports as unresolved
// (*notable.UnresolvedError), falling back to all names for other errors
// — the did-you-mean loop then only suggests for what actually failed.
func unresolvedNames(err error, all []string) []string {
	var ue *notable.UnresolvedError
	if errors.As(err, &ue) {
		return ue.Missing
	}
	return all
}

// splitNames splits a comma-separated entity list, trimming blanks.
func splitNames(s string) []string {
	var names []string
	for _, part := range strings.Split(s, ",") {
		if t := strings.TrimSpace(part); t != "" {
			names = append(names, t)
		}
	}
	return names
}

// cacheDelta renders the per-layer hit/miss movement between two cache
// snapshots, skipping idle layers.
func cacheDelta(before, after qcache.Stats) string {
	var b strings.Builder
	for l := 0; l < qcache.NumLayers; l++ {
		dh := after.Layers[l].Hits - before.Layers[l].Hits
		dm := after.Layers[l].Misses - before.Layers[l].Misses
		if dh == 0 && dm == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteString("  ")
		}
		fmt.Fprintf(&b, "%s +%dh/+%dm", qcache.Layer(l), dh, dm)
	}
	if b.Len() == 0 {
		return "no cache traffic"
	}
	return b.String()
}

// runRefine reads one query per line from r and serves each from the same
// warm engine — the interactive refinement loop. Every answer prints its
// latency, a result summary, and the per-layer cache deltas; a blank line
// or EOF ends the session with the aggregate cache statistics. Ctrl-C
// aborts the in-flight search and ends the session with the summary.
func runRefine(ctx context.Context, engine *notable.Engine, r io.Reader) error {
	fmt.Println("refine mode: one query per line (comma-separated entity names); blank line or ctrl-d ends")
	sc := bufio.NewScanner(r)
	queries := 0
	fmt.Print("> ")
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			break
		}
		if strings.HasPrefix(line, "#") {
			fmt.Print("> ")
			continue
		}
		query, err := engine.Resolve(splitNames(line)...)
		if err != nil {
			fmt.Println(err)
			for _, n := range unresolvedNames(err, splitNames(line)) {
				if hits := engine.Suggest(n, 3); len(hits) > 0 {
					fmt.Printf("  did you mean for %q:", n)
					for _, h := range hits {
						fmt.Printf(" %q", h.Name)
					}
					fmt.Println()
				}
			}
			fmt.Print("> ")
			continue
		}
		before := engine.CacheStats()
		start := time.Now()
		res, err := engine.Do(ctx, notable.Query{Nodes: query})
		if err != nil {
			if errors.Is(err, context.Canceled) {
				fmt.Println("interrupted")
				break
			}
			return err
		}
		elapsed := time.Since(start)
		after := engine.CacheStats()
		queries++
		notables := res.NotableOnly()
		fmt.Printf("%v — %d context nodes, %d notable / %d tested  [%s]\n",
			elapsed, len(res.Context), len(notables), len(res.Characteristics),
			cacheDelta(before, after))
		for j, c := range notables {
			if j >= 5 {
				fmt.Printf("      ... %d more\n", len(notables)-j)
				break
			}
			fmt.Printf("      %-24s score=%.4f via %s\n", c.Name, c.Score, c.Kind)
		}
		fmt.Print("> ")
	}
	if err := sc.Err(); err != nil {
		return err
	}
	st := engine.CacheStats()
	fmt.Printf("\nsession: %d queries; cache: %d hits, %d misses, %d evictions, %d KiB resident over %d shards\n",
		queries, st.Hits, st.Misses, st.Evictions, st.Bytes/1024, st.Shards)
	for l := 0; l < qcache.NumLayers; l++ {
		ls := st.Layers[l]
		if ls.Hits+ls.Misses == 0 && ls.Bytes == 0 {
			continue
		}
		fmt.Printf("  %-8s %6d hits %6d misses %8d KiB\n", qcache.Layer(l), ls.Hits, ls.Misses, ls.Bytes/1024)
	}
	return nil
}

func loadGraph(path, dataset string, seed int64) (*notable.Graph, error) {
	switch {
	case path != "":
		return notable.LoadGraphFile(path)
	case dataset == "yago" || dataset == "":
		return gen.YAGOLike(gen.YAGOConfig{Seed: seed}).Graph, nil
	case dataset == "lmdb":
		return gen.LinkedMDBLike(gen.LMDBConfig{Seed: seed}).Graph, nil
	case dataset == "authors":
		return gen.Authors(seed).Graph, nil
	case dataset == "products":
		return gen.Products(seed).Graph, nil
	case dataset == "figure1":
		return gen.Figure1().Graph, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
