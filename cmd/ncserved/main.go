// Command ncserved serves notable-characteristics search over HTTP.
//
//	ncserved -dataset yago -addr :8080
//	ncserved -graph facts.kgsnap -addr :8080 -drain 15s -max-inflight 64
//	ncserved -dataset yago -wal-dir /var/lib/ncserved/wal
//	ncserved -follow http://primary:8080 -addr :8081
//
// With -wal-dir, ingest is durable: every acknowledged /v1/ingest batch
// is fsync'd to a write-ahead log before the 200 goes out (-wal-sync
// batch|interval picks per-batch fsync vs. group commit), compactions
// persist checkpoint snapshots, and a restart over the same directory
// recovers the exact acknowledged epoch — replaying the log tail over
// the newest checkpoint, truncating a torn final record, and refusing
// to start on mid-log corruption rather than silently losing writes.
// The -graph/-dataset flags then only seed a fresh directory (keep them
// identical across restarts). See docs/durability.md.
//
// With -follow, the process is a read replica: it bootstraps from the
// primary's /v1/repl/snapshot, applies the primary's durable record
// stream in epoch order, refuses /v1/ingest with 403, and keeps
// /healthz at 503 ready:false until replay reaches the primary's acked
// epoch. See docs/replication.md.
//
// The listener binds before the engine exists in every mode: a long WAL
// replay or snapshot download happens behind a 200 /livez and a 503
// /healthz, so orchestrators see "alive but not ready" instead of a
// connection refused.
//
// Endpoints (see docs/serving.md for bodies and curl examples):
//
//	POST /v1/search   one query; degraded 200 under deadline by default
//	POST /v1/batch    many queries, one deduplicated pass
//	POST /v1/stream   NDJSON, one line per outcome in completion order
//	POST /v1/ingest   live triple adds/deletes; publishes a new graph epoch
//	GET  /healthz     readiness: 200 serving / 503 booting, catching up,
//	                  or draining (with current/target epochs)
//	GET  /livez       liveness: 200 whenever the process can answer
//	GET  /v1/repl/stream, /v1/repl/snapshot  replication feed (-wal-dir)
//	GET  /statsz      cache layers, executor load, in-flight gauge,
//	                  graph epoch + overlay/compaction counters,
//	                  WAL/checkpoint gauges under -wal-dir
//	     /debug/pprof with -pprof
//
// SIGTERM or SIGINT begins a graceful drain: the listener closes,
// /healthz flips to draining, in-flight requests get -drain to finish,
// and stragglers are cancelled through their request context. A second
// signal hard-kills via the default handler.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"sync/atomic"
	"syscall"
	"time"

	"repro"
	"repro/internal/gen"
	"repro/internal/repl"
	"repro/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		graphPath   = flag.String("graph", "", "triple file (.tsv/.nt) or snapshot (.kgsnap) to load")
		dataset     = flag.String("dataset", "", "built-in dataset: yago | lmdb | authors | products | figure1")
		k           = flag.Int("k", 100, "default context size |C|")
		selector    = flag.String("selector", "contextrw", "default context selector: contextrw | randomwalk | simrank | jaccard")
		walks       = flag.Int("walks", 200000, "PathMining walk budget")
		alpha       = flag.Float64("alpha", 0.05, "default significance level")
		seed        = flag.Int64("seed", 1, "random seed")
		parallelism = flag.Int("par", 0, "default per-request parallelism (0 = library default)")
		cacheShards = flag.Int("cache-shards", 8, "query-cache shards for concurrent traffic")
		drain       = flag.Duration("drain", 10*time.Second, "graceful-drain deadline after SIGTERM")
		reqTimeout  = flag.Duration("timeout", 30*time.Second, "default per-request timeout")
		maxTimeout  = flag.Duration("max-timeout", time.Minute, "cap on client-requested timeouts")
		maxBody     = flag.Int64("max-body", 1<<20, "request body size limit in bytes")
		maxInflight = flag.Int("max-inflight", 0, "admission gate: concurrent engine requests before shedding (0 = 4x executor workers)")
		pprofOn     = flag.Bool("pprof", false, "mount /debug/pprof")
		walDir      = flag.String("wal-dir", "", "write-ahead-log directory for durable ingest (empty = in-memory only)")
		walSync     = flag.String("wal-sync", "batch", "WAL fsync policy: batch (per-ingest fsync) | interval (group commit)")
		walInterval = flag.Duration("wal-sync-interval", 2*time.Millisecond, "group-commit flush period under -wal-sync interval")
		follow      = flag.String("follow", "", "primary base URL to replicate from (follower mode: read-only, in-memory)")
	)
	flag.Parse()

	if *follow != "" && *walDir != "" {
		fmt.Fprintln(os.Stderr, "ncserved: -follow and -wal-dir are mutually exclusive: a follower's durability is its primary's WAL")
		os.Exit(1)
	}
	if *follow != "" && (*graphPath != "" || *dataset != "") {
		fmt.Fprintln(os.Stderr, "ncserved: -follow ignores -graph/-dataset: the graph comes from the primary's snapshot")
		os.Exit(1)
	}

	opt := notable.Options{
		ContextSize: *k,
		Selector:    *selector,
		Walks:       *walks,
		Alpha:       *alpha,
		Seed:        *seed,
		Parallelism: *parallelism,
		CacheShards: *cacheShards,
	}
	srv := server.NewPending(server.Config{
		Addr:           *addr,
		DrainTimeout:   *drain,
		RequestTimeout: *reqTimeout,
		MaxTimeout:     *maxTimeout,
		MaxBodyBytes:   *maxBody,
		MaxInFlight:    *maxInflight,
		EnablePprof:    *pprofOn,
		ReadOnly:       *follow != "",
	})
	srv.SetReadiness(server.Readiness{Ready: false, Status: "booting"})

	// First signal drains; a second falls through to the default handler
	// (hard kill) because NotifyContext unregisters on cancellation.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	// Boot failures cancel the serving loop from the boot goroutine.
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var durable atomic.Pointer[notable.Engine] // set only when Close matters
	var bootFailed atomic.Bool
	if *follow != "" {
		f, err := repl.NewFollower(repl.FollowerConfig{
			Primary:  *follow,
			Options:  opt,
			OnEngine: srv.SetEngine,
			OnState: func(st repl.FollowerState) {
				srv.SetReadiness(server.Readiness{Ready: st.Ready, Status: st.Status, Epoch: st.Epoch, Target: st.Target})
			},
			Logf: log.Printf,
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, "ncserved:", err)
			os.Exit(1)
		}
		// Replication lag rides the same /metrics as the request series.
		f.RegisterMetrics(srv.Metrics())
		go func() { _ = f.Run(ctx) }()
	} else {
		go func() {
			eng, err := bootEngine(*graphPath, *dataset, *seed, opt, *walDir, *walSync, *walInterval)
			if err != nil {
				fmt.Fprintln(os.Stderr, "ncserved:", err)
				bootFailed.Store(true)
				cancel()
				return
			}
			if *walDir != "" {
				durable.Store(eng)
			}
			srv.SetEngine(eng)
			srv.SetReadiness(server.Readiness{Ready: true, Epoch: eng.Epoch()})
		}()
	}

	err := srv.Run(ctx)
	if eng := durable.Load(); eng != nil {
		eng.Close()
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncserved:", err)
		os.Exit(1)
	}
	if bootFailed.Load() {
		os.Exit(1)
	}
}

// bootEngine loads the graph and builds the (possibly durable) engine —
// the potentially slow part of startup, run behind the live listener.
func bootEngine(graphPath, dataset string, seed int64, opt notable.Options, walDir, walSync string, walInterval time.Duration) (*notable.Engine, error) {
	g, err := loadGraph(graphPath, dataset, seed)
	if err != nil {
		return nil, err
	}
	var engine *notable.Engine
	if walDir != "" {
		var recov *notable.RecoveryInfo
		engine, recov, err = notable.NewDurableEngine(g, opt, notable.Durability{
			WALDir:              walDir,
			Sync:                walSync,
			GroupCommitInterval: walInterval,
		})
		if err != nil {
			return nil, err
		}
		fmt.Printf("wal: recovered to epoch %d (checkpoint epoch %d, %d record(s) replayed, %d torn-tail byte(s) truncated, %d checkpoint(s) skipped) from %s\n",
			recov.Epoch, recov.CheckpointEpoch, recov.RecordsReplayed, recov.TruncatedBytes, recov.SkippedCheckpoints, walDir)
	} else {
		engine = notable.NewEngine(g, opt)
	}
	fmt.Printf("graph: %s (epoch %d)\n", engine.Graph().Stats(), engine.Epoch())
	return engine, nil
}

// loadGraph mirrors ncsearch: explicit file first, then a built-in
// generator.
func loadGraph(path, dataset string, seed int64) (*notable.Graph, error) {
	switch {
	case path != "":
		return notable.LoadGraphFile(path)
	case dataset == "yago" || dataset == "":
		return gen.YAGOLike(gen.YAGOConfig{Seed: seed}).Graph, nil
	case dataset == "lmdb":
		return gen.LinkedMDBLike(gen.LMDBConfig{Seed: seed}).Graph, nil
	case dataset == "authors":
		return gen.Authors(seed).Graph, nil
	case dataset == "products":
		return gen.Products(seed).Graph, nil
	case dataset == "figure1":
		return gen.Figure1().Graph, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}
