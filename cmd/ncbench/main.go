// Command ncbench regenerates every table and figure of the paper's
// evaluation section against the synthetic datasets and prints the series
// as text tables. Run with -exp all (default) or a comma-separated subset:
//
//	ncbench -exp fig2,fig3,table2
//
// Experiments: table1, fig2, fig3, fig4, fig5, fig6, table2, table3,
// fig7, fig8, fig9, metrics, authors, batch, refine.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"time"

	"repro"
	"repro/internal/dist"
	"repro/internal/eval"
	"repro/internal/gen"
	"repro/internal/qcache"
)

func main() {
	var (
		exps  = flag.String("exp", "all", "comma-separated experiments or 'all'")
		seed  = flag.Int64("seed", 42, "master seed")
		scale = flag.Float64("scale", 1, "dataset scale factor")
		walks = flag.Int("walks", 200000, "PathMining walk budget")
	)
	flag.Parse()

	cfg := eval.Config{Seed: *seed, Scale: *scale, Walks: *walks}.WithDefaults()
	want := map[string]bool{}
	for _, e := range strings.Split(*exps, ",") {
		want[strings.TrimSpace(e)] = true
	}
	all := want["all"]
	need := func(name string) bool { return all || want[name] }

	// Ctrl-C aborts the in-flight search experiments cleanly.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	defer stop()

	if err := run(ctx, cfg, need); err != nil {
		if errors.Is(err, context.Canceled) {
			fmt.Fprintln(os.Stderr, "ncbench: interrupted")
			os.Exit(130)
		}
		fmt.Fprintln(os.Stderr, "ncbench:", err)
		os.Exit(1)
	}
}

func run(ctx context.Context, cfg eval.Config, need func(string) bool) error {
	var yago, lmdb *gen.Dataset
	getYago := func() *gen.Dataset {
		if yago == nil {
			fmt.Println("generating yago-like dataset ...")
			yago = gen.YAGOLike(gen.YAGOConfig{Seed: cfg.Seed, Scale: cfg.Scale})
			fmt.Println("  " + yago.Graph.Stats())
		}
		return yago
	}
	getLmdb := func() *gen.Dataset {
		if lmdb == nil {
			fmt.Println("generating linkedmdb-like dataset ...")
			lmdb = gen.LinkedMDBLike(gen.LMDBConfig{Seed: cfg.Seed, Scale: cfg.Scale})
			fmt.Println("  " + lmdb.Graph.Stats())
		}
		return lmdb
	}

	var yagoQuality, lmdbQuality *eval.QualityData
	getYagoQuality := func() (*eval.QualityData, error) {
		if yagoQuality == nil {
			fmt.Println("running context-quality sweep (yago-like/actors) ...")
			var err error
			yagoQuality, err = eval.ComputeQuality(getYago(), "actors", cfg)
			if err != nil {
				return nil, err
			}
		}
		return yagoQuality, nil
	}
	getLmdbQuality := func() (*eval.QualityData, error) {
		if lmdbQuality == nil {
			fmt.Println("running context-quality sweep (linkedmdb-like/actors) ...")
			var err error
			lmdbQuality, err = eval.ComputeQuality(getLmdb(), "actors", cfg)
			if err != nil {
				return nil, err
			}
		}
		return lmdbQuality, nil
	}

	var actors *eval.ActorsCase
	getActors := func() (*eval.ActorsCase, error) {
		if actors == nil {
			fmt.Println("running actors test case (FindNC + RWMult) ...")
			var err error
			actors, err = eval.RunActorsCase(getYago(), cfg, dist.UnseenStrict)
			if err != nil {
				return nil, err
			}
		}
		return actors, nil
	}

	if need("table1") {
		fmt.Println(eval.Table1Render())
	}
	if need("fig2") {
		qd, err := getYagoQuality()
		if err != nil {
			return err
		}
		fmt.Println(eval.Fig2(qd, eval.AlgContextRW).Render())
		fmt.Println(eval.Fig2(qd, eval.AlgRandomWalk).Render())
	}
	if need("fig3") {
		qd, err := getYagoQuality()
		if err != nil {
			return err
		}
		f3 := eval.Fig3(qd)
		fmt.Println(f3.Render())
		fmt.Printf("mean ContextRW advantage over RandomWalk: %.2fx (paper: ~2x, up to 4x)\n\n", f3.Advantage())
	}
	if need("fig4") {
		qd, err := getYagoQuality()
		if err != nil {
			return err
		}
		fmt.Println(eval.Fig4(qd).Render())
	}
	if need("fig5") {
		// The Figure 5 contrast (PageRank sweeps the whole graph per
		// query node; mining walks stay local) only shows on a graph that
		// dwarfs both the communities and the walk budget, as YAGO (27M
		// edges vs 1M walks) does in the paper. Grow only the ambient
		// population for the timing run; communities stay paper-tuned.
		fmt.Println("generating timing dataset (ambient x150) ...")
		timing := gen.YAGOLike(gen.YAGOConfig{
			Seed:         cfg.Seed,
			Scale:        cfg.Scale,
			AmbientScale: 150 * cfg.Scale,
		})
		fmt.Println("  " + timing.Graph.Stats())
		fmt.Println("running timing experiment (fig5) ...")
		f5, err := eval.Fig5(timing, "actors", cfg)
		if err != nil {
			return err
		}
		fmt.Println(f5.Render())
	}
	if need("fig6") {
		fmt.Println("running metapath-length timing experiment (fig6) ...")
		f6, err := eval.Fig6(getYago(), "actors", cfg)
		if err != nil {
			return err
		}
		fmt.Println(f6.Render())
	}
	if need("table2") {
		yq, err := getYagoQuality()
		if err != nil {
			return err
		}
		lq, err := getLmdbQuality()
		if err != nil {
			return err
		}
		fmt.Println(eval.Table2(yq, lq).Render())
	}
	if need("table3") {
		fmt.Println("running |M| sweep (table3) ...")
		t3, err := eval.Table3(getYago(), "actors", cfg)
		if err != nil {
			return err
		}
		fmt.Println(t3.Render())
	}
	if need("fig7") {
		a, err := getActors()
		if err != nil {
			return err
		}
		fmt.Println(a.Fig7Render())
	}
	if need("fig8") {
		a, err := getActors()
		if err != nil {
			return err
		}
		fmt.Println(a.Fig8Render())
	}
	if need("fig9") {
		a, err := getActors()
		if err != nil {
			return err
		}
		fmt.Println(a.Fig9Render())
	}
	if need("metrics") {
		a, err := getActors()
		if err != nil {
			return err
		}
		fmt.Println(eval.RunMetricsComparison(a).Render())
	}
	if need("authors") {
		fmt.Println("running authors test case ...")
		ac, err := eval.RunAuthorsCase(cfg.Seed, cfg.Walks)
		if err != nil {
			return err
		}
		fmt.Println(ac.Render())
	}
	if need("batch") {
		if err := printBatch(ctx, getYago(), cfg); err != nil {
			return err
		}
	}
	if need("refine") {
		if err := printRefine(ctx, getYago(), cfg); err != nil {
			return err
		}
	}
	return nil
}

// printBatch times Engine.DoBatch against sequential cold Do calls on
// the actors profile sweep — every size-5 subset of the cohort, the full
// set, and one truncation — prints per-query latencies and the batch
// speedup, then streams the same mix through DoStream and reports
// time-to-first-result against the batch barrier. Caches are disabled so
// each side pays the full cold cost; results are bitwise identical by
// construction.
func printBatch(ctx context.Context, d *gen.Dataset, cfg eval.Config) error {
	fmt.Println("timing batched vs sequential cold search (yago-like/actors sweep) ...")
	g := d.Graph
	g.Transitions()
	cohort, err := d.Scenario("actors").QueryIDs(g, 6)
	if err != nil {
		return err
	}
	var queries []notable.Query
	for drop := 0; drop < len(cohort); drop++ {
		q := make([]notable.NodeID, 0, len(cohort)-1)
		for i, id := range cohort {
			if i != drop {
				q = append(q, id)
			}
		}
		queries = append(queries, notable.Query{Nodes: q})
	}
	queries = append(queries, notable.Query{Nodes: cohort}, notable.Query{Nodes: cohort[:4]})

	e := notable.NewEngine(g, notable.Options{
		ContextSize: 30,
		Selector:    notable.SelectorRandomWalk,
		Seed:        cfg.Seed,
		CacheSize:   -1,
	})
	start := time.Now()
	for _, q := range queries {
		if _, err := e.Do(ctx, q); err != nil {
			return err
		}
	}
	seq := time.Since(start)
	start = time.Now()
	if _, err := e.DoBatch(ctx, queries); err != nil {
		return err
	}
	batch := time.Since(start)
	nq := len(queries)
	fmt.Printf("  sequential: %v total, %v/query\n", seq, seq/time.Duration(nq))
	fmt.Printf("  batched:    %v total, %v/query\n", batch, batch/time.Duration(nq))
	fmt.Printf("  speedup:    %.2fx over %d queries\n", float64(seq)/float64(batch), nq)

	// The same mix as a stream: first result vs the batch barrier.
	start = time.Now()
	var first time.Duration
	received := 0
	for out := range e.DoStream(ctx, queries) {
		if out.Err != nil {
			return out.Err
		}
		if received == 0 {
			first = time.Since(start)
		}
		received++
	}
	streamTotal := time.Since(start)
	fmt.Printf("  streamed:   first result %v (%.2fx of the %v batch barrier), all %d in %v\n",
		first, float64(first)/float64(batch), batch, received, streamTotal)

	// The same batch through a caching engine, twice: the first pass fills
	// every layer (the overlap already hits the seed store), the second is
	// pure hits — the per-layer accounting the sharded cache exposes.
	cached := notable.NewEngine(g, notable.Options{
		ContextSize: 30,
		Selector:    notable.SelectorRandomWalk,
		Seed:        cfg.Seed,
		CacheShards: 4,
	})
	for pass := 1; pass <= 2; pass++ {
		start = time.Now()
		if _, err := cached.DoBatch(ctx, queries); err != nil {
			return err
		}
		fmt.Printf("  cached engine pass %d: %v total\n", pass, time.Since(start))
	}
	printCacheStats(cached.CacheStats())
	return nil
}

// printCacheStats renders the per-layer cache table.
func printCacheStats(st qcache.Stats) {
	fmt.Printf("  cache: %d entries / %d KiB over %d shards, %d evictions\n",
		st.Size, st.Bytes/1024, st.Shards, st.Evictions)
	fmt.Printf("  %-10s %8s %8s %10s\n", "layer", "hits", "misses", "KiB")
	for l := 0; l < qcache.NumLayers; l++ {
		ls := st.Layers[l]
		if ls.Hits+ls.Misses == 0 && ls.Bytes == 0 {
			continue
		}
		fmt.Printf("  %-10s %8d %8d %10d\n", qcache.Layer(l), ls.Hits, ls.Misses, ls.Bytes/1024)
	}
}

// printRefine times the interactive-refinement fast path: a warm engine
// walks an exploratory session over the actors cohort — each step adds or
// removes one entity — against a cache-disabled engine paying the full
// cold cost for the same queries. Testing runs in the Monte-Carlo regime
// (the bounded-latency serving configuration), where the memoized null
// distributions carry the comparison stage; the seed-vector layer carries
// context selection. Results are bitwise identical on both sides.
func printRefine(ctx context.Context, d *gen.Dataset, cfg eval.Config) error {
	fmt.Println("timing interactive refinement vs cold search (yago-like/actors ±1 sweep) ...")
	g := d.Graph
	g.Transitions()
	cohort, err := d.Scenario("actors").QueryIDs(g, 6)
	if err != nil {
		return err
	}
	// Two ambient entities (outside the cohort) for candidate-probing
	// steps, picked deterministically across the node space.
	inCohort := map[notable.NodeID]bool{}
	for _, id := range cohort {
		inCohort[id] = true
	}
	var ambient []notable.NodeID
	for i := uint64(1); len(ambient) < 2; i++ {
		id := notable.NodeID((i * 2654435761) % uint64(g.NumNodes()))
		if !inCohort[id] {
			ambient = append(ambient, id)
		}
	}
	base := cohort[:3]
	with := func(extra ...notable.NodeID) []notable.NodeID {
		return append(append([]notable.NodeID(nil), base...), extra...)
	}
	// The session mirrors a real exploration: grow the set, undo, probe
	// outside candidates, revisit. First visits pay the new entity's solve
	// plus whatever the context shift recomputes; undos and revisits are
	// pure cache hits.
	steps := []struct {
		label string
		q     []notable.NodeID
	}{
		{"3 actors (cold fill)", base},
		{"+1 actor", with(cohort[3])},
		{"undo (revisit base)", base},
		{"+1 ambient entity", with(ambient[0])},
		{"swap ambient entity", with(ambient[1])},
		{"revisit 4 actors", with(cohort[3])},
		{"+1 different actor", with(cohort[4])},
	}
	opt := notable.Options{
		ContextSize:    30,
		Selector:       notable.SelectorRandomWalk,
		Seed:           cfg.Seed,
		TestSamples:    20000,
		TestExactLimit: 1,
	}
	warm := notable.NewEngine(g, opt)
	coldOpt := opt
	coldOpt.CacheSize = -1
	cold := notable.NewEngine(g, coldOpt)

	fmt.Printf("  %-28s %12s %12s %8s\n", "step", "warm", "cold", "speedup")
	var warmTotal, coldTotal time.Duration
	prev := warm.CacheStats()
	for _, step := range steps {
		start := time.Now()
		if _, err := warm.Do(ctx, notable.Query{Nodes: step.q}); err != nil {
			return err
		}
		wt := time.Since(start)
		start = time.Now()
		if _, err := cold.Do(ctx, notable.Query{Nodes: step.q}); err != nil {
			return err
		}
		ct := time.Since(start)
		warmTotal += wt
		coldTotal += ct
		st := warm.CacheStats()
		fmt.Printf("  %-28s %12v %12v %7.2fx  (seed +%dh/+%dm, null +%dh/+%dm)\n",
			step.label, wt, ct, float64(ct)/float64(wt),
			st.Layers[qcache.LayerSeed].Hits-prev.Layers[qcache.LayerSeed].Hits,
			st.Layers[qcache.LayerSeed].Misses-prev.Layers[qcache.LayerSeed].Misses,
			st.Layers[qcache.LayerNull].Hits-prev.Layers[qcache.LayerNull].Hits,
			st.Layers[qcache.LayerNull].Misses-prev.Layers[qcache.LayerNull].Misses)
		prev = st
	}
	fmt.Printf("  session: warm %v, cold %v — %.2fx over %d refinement steps\n",
		warmTotal, coldTotal, float64(coldTotal)/float64(warmTotal), len(steps))
	printCacheStats(warm.CacheStats())
	return nil
}
