// Command kggen emits the synthetic datasets as triple files or binary
// snapshots, so they can be inspected, loaded by ncsearch -graph, or used
// by external tools.
//
//	kggen -dataset yago -o yago.tsv
//	kggen -dataset lmdb -format nt -o lmdb.nt
//	kggen -dataset yago -o yago.kgsnap   # binary snapshot by extension
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"repro"
	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/ntriples"
)

func main() {
	var (
		dataset = flag.String("dataset", "yago", "dataset: yago | lmdb | authors | products | figure1")
		out     = flag.String("o", "", "output path (default stdout); .kgsnap writes a binary snapshot")
		format  = flag.String("format", "tsv", "text format: tsv | nt")
		seed    = flag.Int64("seed", 42, "generator seed")
		scale   = flag.Float64("scale", 1, "dataset scale factor")
	)
	flag.Parse()

	g, err := build(*dataset, *seed, *scale)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kggen:", err)
		os.Exit(1)
	}
	fmt.Fprintln(os.Stderr, "generated:", g.Stats())

	if strings.HasSuffix(*out, ".kgsnap") {
		if err := notable.SaveSnapshotFile(g, *out); err != nil {
			fmt.Fprintln(os.Stderr, "kggen:", err)
			os.Exit(1)
		}
		fmt.Fprintln(os.Stderr, "wrote snapshot", *out)
		return
	}

	w := os.Stdout
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintln(os.Stderr, "kggen:", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	f := ntriples.FormatTSV
	if *format == "nt" {
		f = ntriples.FormatNT
	}
	n, err := dumpGraph(g, w, f)
	if err != nil {
		fmt.Fprintln(os.Stderr, "kggen:", err)
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "wrote %d statements\n", n)
}

func build(dataset string, seed int64, scale float64) (*kg.Graph, error) {
	switch dataset {
	case "yago":
		return gen.YAGOLike(gen.YAGOConfig{Seed: seed, Scale: scale}).Graph, nil
	case "lmdb":
		return gen.LinkedMDBLike(gen.LMDBConfig{Seed: seed, Scale: scale}).Graph, nil
	case "authors":
		return gen.Authors(seed).Graph, nil
	case "products":
		return gen.Products(seed).Graph, nil
	case "figure1":
		return gen.Figure1().Graph, nil
	default:
		return nil, fmt.Errorf("unknown dataset %q", dataset)
	}
}

// dumpGraph writes the forward (non-inverse) edges plus type statements.
func dumpGraph(g *kg.Graph, w *os.File, format ntriples.Format) (int, error) {
	wr := ntriples.NewWriter(w, format)
	for n := 0; n < g.NumNodes(); n++ {
		id := kg.NodeID(n)
		if t := g.TypeOf(id); t != kg.NoType {
			st := ntriples.Statement{S: g.NodeName(id), P: "type", O: g.TypeName(t)}
			if err := wr.Write(st); err != nil {
				return wr.Count(), err
			}
		}
		for _, e := range g.OutEdges(id) {
			if g.IsInverse(e.Label) {
				continue // reverse edges are re-derived on load
			}
			st := ntriples.Statement{
				S: g.NodeName(id),
				P: g.LabelName(e.Label),
				O: g.NodeName(e.To),
			}
			if err := wr.Write(st); err != nil {
				return wr.Count(), err
			}
		}
	}
	return wr.Count(), wr.Flush()
}
