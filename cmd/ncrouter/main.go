// Command ncrouter fronts a fleet of ncserved replicas with a
// failure-aware router: consistent-hash read routing on the
// canonicalized query key, active /healthz probing, per-backend circuit
// breaking, retry-on-another-replica for idempotent reads, one bounded
// hedged request for slow owners, and ingest forwarded to the primary
// only (never retried elsewhere — a write that may have landed must not
// land twice). See docs/replication.md for the topology this serves.
//
//	ncrouter -backend primary=http://10.0.0.1:8080 \
//	         -backend r1=http://10.0.0.2:8080 \
//	         -backend r2=http://10.0.0.3:8080 \
//	         -primary primary -addr :8000
//
// Endpoints: the serving read API (/v1/search, /v1/batch, /v1/stream)
// and /v1/ingest proxied across the fleet, plus the router's own
// /healthz (200 while ≥1 backend is routable) and /statsz (per-backend
// health, breaker, epoch, served counts).
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/repl"
)

// backendFlags collects repeated -backend name=url flags.
type backendFlags []repl.Backend

func (b *backendFlags) String() string { return fmt.Sprintf("%v", []repl.Backend(*b)) }

func (b *backendFlags) Set(v string) error {
	name, url, ok := strings.Cut(v, "=")
	if !ok || name == "" || url == "" {
		return fmt.Errorf("want name=url, got %q", v)
	}
	*b = append(*b, repl.Backend{Name: name, URL: url})
	return nil
}

func main() {
	var backends backendFlags
	var (
		addr       = flag.String("addr", ":8000", "listen address")
		primary    = flag.String("primary", "", "backend name that takes /v1/ingest (empty = read-only fleet)")
		probeEvery = flag.Duration("probe-interval", time.Second, "health-probe period")
		failWindow = flag.Int("fail-window", 3, "consecutive failed probes before a backend is down")
		tryTimeout = flag.Duration("try-timeout", 5*time.Second, "per-attempt timeout for proxied reads")
		hedgeAfter = flag.Duration("hedge-after", 150*time.Millisecond, "delay before one hedged /v1/search fires (negative = off)")
		vnodes     = flag.Int("vnodes", repl.DefaultVirtualNodes, "virtual nodes per backend on the hash ring")
	)
	flag.Var(&backends, "backend", "replica as name=url (repeatable)")
	flag.Parse()

	rt, err := repl.NewRouter(repl.RouterConfig{
		Backends:      backends,
		Primary:       *primary,
		ProbeInterval: *probeEvery,
		FailWindow:    *failWindow,
		TryTimeout:    *tryTimeout,
		HedgeAfter:    *hedgeAfter,
		VNodes:        *vnodes,
		Logf:          log.Printf,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncrouter:", err)
		os.Exit(1)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	rt.Start(ctx)

	hs := &http.Server{Addr: *addr, Handler: rt.Handler()}
	errc := make(chan error, 1)
	go func() { errc <- hs.ListenAndServe() }()
	log.Printf("ncrouter: serving %d backend(s) on %s (primary=%q)", len(backends), *addr, *primary)
	select {
	case <-ctx.Done():
		sctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = hs.Shutdown(sctx)
	case err := <-errc:
		if err != nil && err != http.ErrServerClosed {
			fmt.Fprintln(os.Stderr, "ncrouter:", err)
			os.Exit(1)
		}
	}
}
