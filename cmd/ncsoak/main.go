// ncsoak: a sustained-load soak driver for ncserved. It plays a mixed
// workload — warm repeats, cold cache-missing searches, refined
// variants, batches, NDJSON streams, and (against a primary) live
// ingest — at a target request rate for a fixed duration, sampling the
// server's /statsz as it goes, and exits nonzero when the run shows a
// leak or drift: goroutines that do not return to their post-warmup
// baseline, RSS growth past a budget, request errors past a budget, or
// request counters on /metrics failing to parse or to increase.
//
//	ncsoak -addr http://127.0.0.1:8080 -duration 60s -qps 15
//
// The workload keys its queries off the same Table 1 entity names the
// built-in datasets plant (-domain picks which), so a server booted
// with -dataset yago answers every warm query from a real entity set.
// Cold traffic salts the walk budget (a cache-key component) with the
// request index, so every cold search is a genuine miss.
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"os"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/gen"
	"repro/internal/obs"
)

func main() {
	var (
		addr      = flag.String("addr", "http://127.0.0.1:8080", "ncserved base URL")
		duration  = flag.Duration("duration", 60*time.Second, "measured soak length (after warmup)")
		warmup    = flag.Duration("warmup", 5*time.Second, "pre-measurement load to fill caches and settle the baseline")
		cooldown  = flag.Duration("cooldown", 5*time.Second, "post-load settle time before the leak check samples")
		qps       = flag.Float64("qps", 15, "target request rate")
		workers   = flag.Int("workers", 16, "max in-flight requests from the driver")
		domain    = flag.String("domain", "actors", "Table 1 query domain: actors | movies | authors | books | songs")
		ingest    = flag.Bool("ingest", true, "include live ingest in the mix (disable against read-only replicas)")
		maxGoro   = flag.Int("max-goroutine-growth", 12, "fail when final goroutines exceed the post-warmup baseline by more than this")
		maxRSSMB  = flag.Int("max-rss-growth-mb", 256, "fail when RSS grows past this over the run (0 disables; skipped when the server reports no RSS)")
		maxErrPct = flag.Float64("max-err-pct", 1.0, "fail when more than this percent of requests error")
		sample    = flag.Duration("sample", 2*time.Second, "/statsz sampling period")
	)
	flag.Parse()

	names := gen.Table1[*domain]
	if len(names) < 2 {
		fmt.Fprintf(os.Stderr, "ncsoak: unknown -domain %q\n", *domain)
		os.Exit(2)
	}
	base := strings.TrimRight(*addr, "/")
	client := &http.Client{Timeout: 30 * time.Second}
	s := &soak{
		base: base, client: client, names: names,
		ingest: *ingest, workers: make(chan struct{}, *workers),
		byOp: map[string]int64{}, errBy: map[string]int64{},
		lat: map[string]*obs.Histogram{},
	}
	for _, op := range opNames {
		s.lat[op] = obs.NewHistogram(nil)
	}

	if err := s.waitReady(60 * time.Second); err != nil {
		fmt.Fprintln(os.Stderr, "ncsoak:", err)
		os.Exit(2)
	}

	// Warmup: same mix, nothing measured. Fills the selector/test caches
	// and lets the server's goroutine count settle where steady-state
	// serving puts it — that settled point is the leak baseline, not the
	// idle pre-traffic count.
	fmt.Printf("ncsoak: warmup %v against %s\n", *warmup, base)
	s.drive(*warmup, *qps)
	s.wait()
	baseline, err := s.statsz()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsoak: baseline statsz:", err)
		os.Exit(2)
	}
	metricsBefore, err := s.scrapeRequestTotal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsoak: baseline /metrics:", err)
		os.Exit(1)
	}

	// Measured phase, with a /statsz sampler running alongside.
	fmt.Printf("ncsoak: soaking %v at %.0f qps (workers=%d, ingest=%v)\n", *duration, *qps, *workers, *ingest)
	stopSample := make(chan struct{})
	var samples []statszView
	var sampleWG sync.WaitGroup
	sampleWG.Add(1)
	go func() {
		defer sampleWG.Done()
		t := time.NewTicker(*sample)
		defer t.Stop()
		for {
			select {
			case <-stopSample:
				return
			case <-t.C:
				if sv, err := s.statsz(); err == nil {
					samples = append(samples, sv)
				}
			}
		}
	}()
	s.drive(*duration, *qps)
	s.wait()
	close(stopSample)
	sampleWG.Wait()

	// Cooldown, then the final samples the thresholds judge. Idle client
	// connections are closed first so keep-alive goroutines on the server
	// can actually exit.
	client.CloseIdleConnections()
	time.Sleep(*cooldown)
	final, err := s.statsz()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsoak: final statsz:", err)
		os.Exit(2)
	}
	metricsAfter, err := s.scrapeRequestTotal()
	if err != nil {
		fmt.Fprintln(os.Stderr, "ncsoak: final /metrics:", err)
		os.Exit(1)
	}

	s.report(baseline, final, samples)

	var failures []string
	if growth := final.Goroutines - baseline.Goroutines; growth > *maxGoro {
		failures = append(failures, fmt.Sprintf("goroutines grew %d over baseline %d (budget %d)",
			growth, baseline.Goroutines, *maxGoro))
	}
	if *maxRSSMB > 0 && baseline.RSSBytes > 0 && final.RSSBytes > 0 {
		if growMB := (final.RSSBytes - baseline.RSSBytes) >> 20; growMB > int64(*maxRSSMB) {
			failures = append(failures, fmt.Sprintf("RSS grew %d MiB (budget %d MiB)", growMB, *maxRSSMB))
		}
	}
	total := s.done.Load()
	if errs := s.errors.Load(); total > 0 && float64(errs)*100/float64(total) > *maxErrPct {
		failures = append(failures, fmt.Sprintf("%d/%d requests errored (budget %.1f%%)", errs, total, *maxErrPct))
	}
	if metricsAfter <= metricsBefore {
		failures = append(failures, fmt.Sprintf("nc_http_requests_total did not increase (%d -> %d)", metricsBefore, metricsAfter))
	}
	if len(failures) > 0 {
		for _, f := range failures {
			fmt.Fprintln(os.Stderr, "ncsoak: FAIL:", f)
		}
		os.Exit(1)
	}
	fmt.Println("ncsoak: PASS")
}

// opNames fixes the reporting order of the mix.
var opNames = []string{"warm", "cold", "refine", "batch", "stream", "ingest"}

type soak struct {
	base   string
	client *http.Client
	names  []string
	ingest bool

	workers chan struct{}
	wg      sync.WaitGroup

	seq     atomic.Int64 // salts cold cache keys and ingest subjects
	done    atomic.Int64
	errors  atomic.Int64
	skipped atomic.Int64 // ticks dropped because all workers were busy

	mu    sync.Mutex
	byOp  map[string]int64
	errBy map[string]int64
	lat   map[string]*obs.Histogram
}

// drive plays the mix at the target rate for d, skipping ticks when all
// workers are busy — an overloaded server slows the offered rate rather
// than queueing unbounded requests in the driver.
func (s *soak) drive(d time.Duration, qps float64) {
	interval := time.Duration(float64(time.Second) / qps)
	if interval <= 0 {
		interval = time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	deadline := time.Now().Add(d)
	rng := rand.New(rand.NewSource(time.Now().UnixNano()))
	for time.Now().Before(deadline) {
		<-t.C
		op := s.pick(rng)
		select {
		case s.workers <- struct{}{}:
		default:
			s.skipped.Add(1)
			continue
		}
		seed := rng.Int63()
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			defer func() { <-s.workers }()
			s.one(op, rand.New(rand.NewSource(seed)))
		}()
	}
}

func (s *soak) wait() { s.wg.Wait() }

// pick weights the mix: mostly warm traffic, a steady trickle of
// everything else.
func (s *soak) pick(rng *rand.Rand) string {
	r := rng.Intn(20)
	switch {
	case r < 10:
		return "warm"
	case r < 12:
		return "cold"
	case r < 15:
		return "refine"
	case r < 17:
		return "batch"
	case r < 19:
		return "stream"
	default:
		if s.ingest {
			return "ingest"
		}
		return "warm"
	}
}

// one issues a single request of the given kind and records its fate.
func (s *soak) one(op string, rng *rand.Rand) {
	var status int
	var err error
	start := time.Now()
	switch op {
	case "warm":
		status, err = s.post("/v1/search", map[string]any{"entities": s.pickNames(rng, 2+rng.Intn(3))})
	case "cold":
		// Walks is a cache-key component: salting it with the sequence
		// guarantees a miss and a full cold pipeline pass.
		status, err = s.post("/v1/search", map[string]any{
			"entities": s.pickNames(rng, 2), "walks": 60000 + int(s.seq.Add(1)),
		})
	case "refine":
		status, err = s.post("/v1/search", map[string]any{
			"entities": s.pickNames(rng, 2+rng.Intn(2)), "context_size": 40 + 10*rng.Intn(4), "top_k": 5,
		})
	case "batch":
		qs := []map[string]any{}
		for i := 0; i < 2+rng.Intn(2); i++ {
			qs = append(qs, map[string]any{"entities": s.pickNames(rng, 2)})
		}
		status, err = s.post("/v1/batch", map[string]any{"queries": qs})
	case "stream":
		status, err = s.post("/v1/stream", map[string]any{"queries": []map[string]any{
			{"entities": s.pickNames(rng, 2)}, {"entities": s.pickNames(rng, 3)},
		}})
	case "ingest":
		n := s.seq.Add(1)
		status, err = s.post("/v1/ingest", map[string]any{"adds": []map[string]string{
			{"s": fmt.Sprintf("soak:subject-%d", n), "p": "soak:touches", "o": s.names[rng.Intn(len(s.names))]},
		}})
	}
	dur := time.Since(start)
	failed := err != nil || status < 200 || status >= 300
	s.done.Add(1)
	if failed {
		s.errors.Add(1)
	}
	s.mu.Lock()
	s.byOp[op]++
	if failed {
		s.errBy[op]++
	}
	s.lat[op].Observe(dur)
	s.mu.Unlock()
}

// pickNames samples n distinct Table 1 entities.
func (s *soak) pickNames(rng *rand.Rand, n int) []string {
	if n > len(s.names) {
		n = len(s.names)
	}
	idx := rng.Perm(len(s.names))[:n]
	sort.Ints(idx) // stable order keeps equal sets hitting equal cache keys
	out := make([]string, n)
	for i, j := range idx {
		out[i] = s.names[j]
	}
	return out
}

func (s *soak) post(path string, body any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := s.client.Post(s.base+path, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

// statszView is the slice of /statsz the soak run watches.
type statszView struct {
	Goroutines int            `json:"goroutines"`
	RSSBytes   int64          `json:"rss_bytes"`
	InFlight   int64          `json:"in_flight"`
	Shed       int64          `json:"shed_total"`
	GraphEpoch uint64         `json:"graph_epoch"`
	Cache      map[string]any `json:"cache"`
}

func (s *soak) statsz() (statszView, error) {
	var v statszView
	resp, err := s.client.Get(s.base + "/statsz")
	if err != nil {
		return v, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return v, fmt.Errorf("/statsz: %s", resp.Status)
	}
	err = json.NewDecoder(resp.Body).Decode(&v)
	return v, err
}

// scrapeRequestTotal fetches /metrics, checks the exposition parses
// line-by-line, and returns the summed nc_http_requests_total — the
// monotonicity witness.
func (s *soak) scrapeRequestTotal() (int64, error) {
	resp, err := s.client.Get(s.base + "/metrics")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("/metrics: %s", resp.Status)
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return 0, err
	}
	var total int64
	for ln, line := range strings.Split(string(body), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		// Every sample line is "name{labels} value" or "name value".
		i := strings.LastIndexByte(line, ' ')
		if i <= 0 {
			return 0, fmt.Errorf("/metrics line %d unparseable: %q", ln+1, line)
		}
		var val float64
		if _, err := fmt.Sscanf(line[i+1:], "%g", &val); err != nil {
			return 0, fmt.Errorf("/metrics line %d has bad value: %q", ln+1, line)
		}
		if strings.HasPrefix(line, "nc_http_requests_total") {
			total += int64(val)
		}
	}
	if total == 0 {
		return 0, fmt.Errorf("/metrics carries no nc_http_requests_total samples")
	}
	return total, nil
}

// waitReady polls /healthz until the server is taking traffic.
func (s *soak) waitReady(d time.Duration) error {
	deadline := time.Now().Add(d)
	for time.Now().Before(deadline) {
		resp, err := s.client.Get(s.base + "/healthz")
		if err == nil {
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
		}
		time.Sleep(500 * time.Millisecond)
	}
	return fmt.Errorf("server at %s not ready after %v", s.base, d)
}

// report prints the run: per-op counts, errors and client-side latency,
// then the resource trajectory.
func (s *soak) report(baseline, final statszView, samples []statszView) {
	fmt.Printf("\nncsoak: %d requests, %d errors, %d ticks skipped\n",
		s.done.Load(), s.errors.Load(), s.skipped.Load())
	fmt.Printf("%-8s %8s %7s %10s %10s %10s\n", "op", "count", "errors", "p50", "p95", "p99")
	s.mu.Lock()
	for _, op := range opNames {
		if s.byOp[op] == 0 {
			continue
		}
		sum := s.lat[op].Snapshot().Summarize()
		fmt.Printf("%-8s %8d %7d %9.1fms %9.1fms %9.1fms\n",
			op, s.byOp[op], s.errBy[op], sum.P50MS, sum.P95MS, sum.P99MS)
	}
	s.mu.Unlock()
	peakGoro, peakRSS := baseline.Goroutines, baseline.RSSBytes
	for _, sv := range samples {
		if sv.Goroutines > peakGoro {
			peakGoro = sv.Goroutines
		}
		if sv.RSSBytes > peakRSS {
			peakRSS = sv.RSSBytes
		}
	}
	fmt.Printf("goroutines: baseline %d, peak %d, final %d\n", baseline.Goroutines, peakGoro, final.Goroutines)
	if baseline.RSSBytes > 0 {
		fmt.Printf("rss: baseline %d MiB, peak %d MiB, final %d MiB\n",
			baseline.RSSBytes>>20, peakRSS>>20, final.RSSBytes>>20)
	}
	fmt.Printf("epoch: %d -> %d\n", baseline.GraphEpoch, final.GraphEpoch)
}
