package notable

// Live-mutation tests: ApplyTriples end to end through the facade —
// epoch-pinned results bitwise identical to a from-scratch rebuild,
// cache purity across epoch bumps, per-request Walks/Damping override
// equivalence, and concurrent queries racing mutations and compaction.

import (
	"context"
	"errors"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"
)

// referenceEngine builds a fresh engine over a from-scratch rebuild of
// e's current graph (a full Builder replay via Materialize) with the
// same options — the oracle every live result must match bitwise.
func referenceEngine(e *Engine, opt Options) *Engine {
	return NewEngine(e.Graph().Materialize(), opt)
}

func mustDo(t *testing.T, e *Engine, q Query) Result {
	t.Helper()
	res, err := e.Do(context.Background(), q)
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestApplyTriplesMatchesFromScratch(t *testing.T) {
	batches := []struct {
		name string
		adds []Triple
		dels []Triple
	}{
		{name: "existing nodes", adds: []Triple{
			{S: "Barack Obama", P: "met", O: "Angela Merkel"},
			{S: "Angela Merkel", P: "attended", O: "Summit"}, // duplicate: no-op edge
		}},
		{name: "new nodes and labels", adds: []Triple{
			{S: "Angela Merkel", P: "awarded", O: "Nobel Prize"},
			{S: "Barack Obama", P: "awarded", O: "Nobel Prize"},
			{S: "Nobel Prize", P: "type", O: "award"},
		}},
		{name: "deletes", dels: []Triple{
			{S: "Angela Merkel", P: "studied", O: "Physics"},
			{S: "Nobody Known", P: "met", O: "Angela Merkel"}, // unknown node: no-op
		}},
	}
	for _, sel := range []string{SelectorContextRW, SelectorRandomWalk} {
		for _, par := range []int{1, 4} {
			opt := Options{ContextSize: 8, Walks: 15000, Seed: 3, Selector: sel, Parallelism: par}
			e := NewEngine(buildLeaders(), opt)
			query, err := e.Resolve("Angela Merkel", "Barack Obama")
			if err != nil {
				t.Fatal(err)
			}
			for _, b := range batches {
				if _, err := e.ApplyTriples(context.Background(), b.adds, b.dels); err != nil {
					t.Fatalf("%s/p%d %s: %v", sel, par, b.name, err)
				}
				got := mustDo(t, e, Query{Nodes: query})
				want := mustDo(t, referenceEngine(e, opt), Query{Nodes: query})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("%s/p%d after %q: live result differs from from-scratch rebuild", sel, par, b.name)
				}
			}
			// Compaction changes no bits and keeps the epoch.
			epoch := e.Epoch()
			e.Compact()
			if e.Epoch() != epoch {
				t.Fatalf("compaction moved the epoch: %d -> %d", epoch, e.Epoch())
			}
			got := mustDo(t, e, Query{Nodes: query})
			want := mustDo(t, referenceEngine(e, opt), Query{Nodes: query})
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("%s/p%d after compaction: result differs from from-scratch rebuild", sel, par)
			}
		}
	}
}

func TestApplyTriplesCachePurity(t *testing.T) {
	opt := Options{ContextSize: 8, Walks: 15000, Seed: 3}
	e := NewEngine(buildLeaders(), opt)
	query, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	q := Query{Nodes: query}
	cold := mustDo(t, e, q)
	if warm := mustDo(t, e, q); !reflect.DeepEqual(cold, warm) {
		t.Fatal("warm repeat differs from cold run")
	}

	// An effective mutation bumps the epoch: the next query must be
	// computed against the new graph, never served from pre-bump entries.
	if _, err := e.ApplyTriples(context.Background(),
		[]Triple{{S: "Angela Merkel", P: "studied", O: "Law"}},
		[]Triple{{S: "Angela Merkel", P: "studied", O: "Physics"}}); err != nil {
		t.Fatal(err)
	}
	got := mustDo(t, e, q)
	want := mustDo(t, referenceEngine(e, opt), q)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("post-mutation result differs from a fresh engine on the mutated graph")
	}

	// Re-querying at the unchanged epoch is a pure hit: no new misses.
	before := e.CacheStats()
	if again := mustDo(t, e, q); !reflect.DeepEqual(again, got) {
		t.Fatal("warm repeat at unchanged epoch differs")
	}
	after := e.CacheStats()
	if after.Misses != before.Misses {
		t.Fatalf("warm repeat at unchanged epoch missed the cache: %d -> %d misses",
			before.Misses, after.Misses)
	}
	if after.Hits <= before.Hits {
		t.Fatal("warm repeat at unchanged epoch recorded no hits")
	}

	// A no-op batch keeps the epoch, so caches stay warm across it.
	epoch := e.Epoch()
	if ep, err := e.ApplyTriples(context.Background(),
		[]Triple{{S: "Angela Merkel", P: "studied", O: "Law"}}, nil); err != nil || ep != epoch {
		t.Fatalf("no-op batch: epoch %d -> %d, err %v", epoch, ep, err)
	}
	before = e.CacheStats()
	mustDo(t, e, q)
	if after := e.CacheStats(); after.Misses != before.Misses {
		t.Fatal("no-op batch invalidated warm cache entries")
	}
}

func TestQueryWalksDampingOverrideEquivalence(t *testing.T) {
	g := buildLeaders()
	query, err := NewEngine(g, Options{}).Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	t.Run("walks", func(t *testing.T) {
		base := Options{ContextSize: 8, Walks: 15000, Seed: 3}
		a := NewEngine(g, base)
		override := mustDo(t, a, Query{Nodes: query, Walks: 30000})
		asOption := base
		asOption.Walks = 30000
		want := mustDo(t, NewEngine(g, asOption), Query{Nodes: query})
		if !reflect.DeepEqual(override, want) {
			t.Fatal("Walks override differs from an engine configured with the same Walks")
		}
		// The override's cache entries are keyed apart: a plain query on
		// the same engine still matches the engine-default configuration.
		plain := mustDo(t, a, Query{Nodes: query})
		wantPlain := mustDo(t, NewEngine(g, base), Query{Nodes: query})
		if !reflect.DeepEqual(plain, wantPlain) {
			t.Fatal("plain query polluted by a prior Walks override")
		}
		// And a warm repeat of the override serves the same bits.
		if again := mustDo(t, a, Query{Nodes: query, Walks: 30000}); !reflect.DeepEqual(again, override) {
			t.Fatal("warm Walks override differs from its cold run")
		}
	})
	t.Run("damping", func(t *testing.T) {
		base := Options{ContextSize: 8, Seed: 3, Selector: SelectorRandomWalk}
		a := NewEngine(g, base)
		override := mustDo(t, a, Query{Nodes: query, Damping: 0.3})
		asOption := base
		asOption.Damping = 0.3
		want := mustDo(t, NewEngine(g, asOption), Query{Nodes: query})
		if !reflect.DeepEqual(override, want) {
			t.Fatal("Damping override differs from an engine configured with the same Damping")
		}
		plain := mustDo(t, a, Query{Nodes: query})
		wantPlain := mustDo(t, NewEngine(g, base), Query{Nodes: query})
		if !reflect.DeepEqual(plain, wantPlain) {
			t.Fatal("plain query polluted by a prior Damping override")
		}
	})
	t.Run("validation", func(t *testing.T) {
		e := NewEngine(g, Options{})
		if _, err := e.Do(context.Background(), Query{Nodes: query, Walks: -1}); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("negative Walks: err = %v, want ErrBadQuery", err)
		}
		if _, err := e.Do(context.Background(), Query{Nodes: query, Damping: 1.5}); !errors.Is(err, ErrBadQuery) {
			t.Fatalf("Damping 1.5: err = %v, want ErrBadQuery", err)
		}
	})
}

func TestApplyTriplesErrorsAndEpochs(t *testing.T) {
	e := NewEngine(buildLeaders(), Options{})
	ctx := context.Background()
	if _, err := e.ApplyTriples(ctx, []Triple{{S: "", P: "met", O: "x"}}, nil); !errors.Is(err, ErrBadTriple) {
		t.Fatalf("empty subject: err = %v, want ErrBadTriple", err)
	}
	if e.Epoch() != 0 {
		t.Fatalf("rejected batch moved the epoch to %d", e.Epoch())
	}
	ep, err := e.ApplyTriples(ctx, []Triple{{S: "Angela Merkel", P: "awarded", O: "Nobel Prize"}}, nil)
	if err != nil || ep != 1 {
		t.Fatalf("effective batch: epoch %d, err %v", ep, err)
	}
	// New nodes become resolvable without a restart.
	if _, err := e.Resolve("Nobel Prize"); err != nil {
		t.Fatalf("new node not resolvable after ingest: %v", err)
	}
	st := e.VersionStats()
	if st.Epoch != 1 || st.OverlayAdds == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestConcurrentQueriesDuringApplyAndCompaction races Do and DoStream
// against a mutating writer with a tiny compaction threshold: every
// result must be error-free and bitwise equal to the from-scratch result
// of SOME published epoch — a torn graph would produce a result matching
// none.
func TestConcurrentQueriesDuringApplyAndCompaction(t *testing.T) {
	opt := Options{ContextSize: 6, Walks: 5000, Seed: 2, CompactThreshold: 4}
	e := NewEngine(buildLeaders(), opt)
	query, err := e.Resolve("Angela Merkel", "Barack Obama")
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	q := Query{Nodes: query}

	const batches = 6
	epochGraphs := []*Graph{e.Graph()} // index = epoch
	var (
		mu      sync.Mutex
		results []Result
	)
	collect := func(r Result) {
		mu.Lock()
		results = append(results, r)
		mu.Unlock()
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for w := 0; w < 3; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				res, err := e.Do(ctx, q)
				if err != nil {
					t.Error(err)
					return
				}
				collect(res)
				for o := range e.DoStream(ctx, []Query{q, q}) {
					if o.Err != nil {
						t.Error(o.Err)
						return
					}
					collect(o.Result)
				}
			}
		}()
	}
	// resultsAtLeast keeps the writer interleaved with the readers: each
	// batch lands only after the readers made progress, so queries
	// genuinely race the mutations instead of all running afterwards.
	resultsAtLeast := func(n int) {
		deadline := time.Now().Add(20 * time.Second)
		for {
			mu.Lock()
			have := len(results)
			mu.Unlock()
			if have >= n || time.Now().After(deadline) {
				return
			}
			runtime.Gosched()
		}
	}
	for i := 0; i < batches; i++ {
		resultsAtLeast(2 * (i + 1))
		adds := []Triple{
			{S: "Angela Merkel", P: "visited", O: countryName(i)},
			{S: "Barack Obama", P: "visited", O: countryName(i)},
		}
		var dels []Triple
		if i%2 == 1 {
			dels = []Triple{{S: "Angela Merkel", P: "visited", O: countryName(i - 1)}}
		}
		if _, err := e.ApplyTriples(ctx, adds, dels); err != nil {
			t.Fatal(err)
		}
		epochGraphs = append(epochGraphs, e.Graph())
	}
	resultsAtLeast(2*batches + 2)
	close(stop)
	wg.Wait()
	e.Compact()
	if st := e.VersionStats(); st.Rebuilds == 0 {
		t.Fatal("compaction never ran despite threshold 4")
	}

	// One from-scratch oracle per epoch; every concurrent result must
	// match one of them exactly.
	wants := make([]Result, len(epochGraphs))
	for ep, g := range epochGraphs {
		wants[ep] = mustDo(t, NewEngine(g.Materialize(), opt), q)
	}
	for _, res := range results {
		ok := false
		for _, want := range wants {
			if reflect.DeepEqual(res, want) {
				ok = true
				break
			}
		}
		if !ok {
			t.Fatalf("a concurrent result matches no published epoch (torn graph?); %d results, %d epochs",
				len(results), len(wants))
		}
	}
	if len(results) == 0 {
		t.Fatal("readers produced no results")
	}
}

func countryName(i int) string {
	return "Country " + string(rune('A'+i))
}
