// Package ntriples reads and writes knowledge-graph triples in two
// line-oriented text formats:
//
//   - a pragmatic N-Triples subset: `<s> <p> <o> .` — IRIs in angle
//     brackets, object may also be a double-quoted literal, trailing dot
//     optional, `#` starts a comment;
//   - TSV: `s<TAB>p<TAB>o`, the format used by the YAGO 2.5 dumps the paper
//     loads.
//
// The reader auto-detects the format per line, so mixed files load fine.
// Both formats identify terms by their string form; the caller interns them
// into a triplestore or kg builder.
package ntriples

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"repro/internal/triplestore"
)

// Statement is a parsed (subject, predicate, object) string triple.
type Statement struct {
	S, P, O string
}

// ParseError describes a malformed input line.
type ParseError struct {
	Line int    // 1-based line number
	Text string // offending line
	Msg  string // what went wrong
}

func (e *ParseError) Error() string {
	return fmt.Sprintf("ntriples: line %d: %s: %q", e.Line, e.Msg, e.Text)
}

// Reader streams statements from an input.
type Reader struct {
	sc   *bufio.Scanner
	line int
}

// NewReader returns a Reader over r. Lines may be up to 1 MiB long.
func NewReader(r io.Reader) *Reader {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 1<<20)
	return &Reader{sc: sc}
}

// Read returns the next statement, io.EOF at end of input, or a *ParseError
// for malformed lines.
func (r *Reader) Read() (Statement, error) {
	for r.sc.Scan() {
		r.line++
		line := strings.TrimSpace(r.sc.Text())
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		st, err := parseLine(line, r.line)
		if err != nil {
			return Statement{}, err
		}
		return st, nil
	}
	if err := r.sc.Err(); err != nil {
		return Statement{}, err
	}
	return Statement{}, io.EOF
}

// ReadAll drains the reader into a slice.
func (r *Reader) ReadAll() ([]Statement, error) {
	var out []Statement
	for {
		st, err := r.Read()
		if err == io.EOF {
			return out, nil
		}
		if err != nil {
			return out, err
		}
		out = append(out, st)
	}
}

func parseLine(line string, lineno int) (Statement, error) {
	if strings.ContainsRune(line, '\t') {
		parts := strings.Split(line, "\t")
		if len(parts) < 3 {
			return Statement{}, &ParseError{Line: lineno, Text: line, Msg: "want 3 tab-separated fields"}
		}
		s := strings.TrimSpace(parts[0])
		p := strings.TrimSpace(parts[1])
		o := strings.TrimSpace(parts[2])
		if s == "" || p == "" || o == "" {
			return Statement{}, &ParseError{Line: lineno, Text: line, Msg: "empty field"}
		}
		return Statement{S: s, P: p, O: o}, nil
	}
	// N-Triples subset.
	rest := strings.TrimSuffix(strings.TrimSpace(line), ".")
	rest = strings.TrimSpace(rest)
	s, rest, err := parseTerm(rest, line, lineno)
	if err != nil {
		return Statement{}, err
	}
	p, rest, err := parseTerm(rest, line, lineno)
	if err != nil {
		return Statement{}, err
	}
	o, rest, err := parseTerm(rest, line, lineno)
	if err != nil {
		return Statement{}, err
	}
	if strings.TrimSpace(rest) != "" {
		return Statement{}, &ParseError{Line: lineno, Text: line, Msg: "trailing garbage"}
	}
	return Statement{S: s, P: p, O: o}, nil
}

// parseTerm consumes one term — `<iri>`, `"literal"`, or a bare word — from
// the front of rest.
func parseTerm(rest, line string, lineno int) (term, remainder string, err error) {
	rest = strings.TrimLeft(rest, " ")
	if rest == "" {
		return "", "", &ParseError{Line: lineno, Text: line, Msg: "missing term"}
	}
	switch rest[0] {
	case '<':
		end := strings.IndexByte(rest, '>')
		if end < 0 {
			return "", "", &ParseError{Line: lineno, Text: line, Msg: "unterminated IRI"}
		}
		return rest[1:end], rest[end+1:], nil
	case '"':
		// Scan for the closing quote, honoring backslash escapes.
		var b strings.Builder
		i := 1
		for i < len(rest) {
			c := rest[i]
			if c == '\\' && i+1 < len(rest) {
				b.WriteByte(unescape(rest[i+1]))
				i += 2
				continue
			}
			if c == '"' {
				return b.String(), rest[i+1:], nil
			}
			b.WriteByte(c)
			i++
		}
		return "", "", &ParseError{Line: lineno, Text: line, Msg: "unterminated literal"}
	default:
		end := strings.IndexByte(rest, ' ')
		if end < 0 {
			return rest, "", nil
		}
		return rest[:end], rest[end:], nil
	}
}

func unescape(c byte) byte {
	switch c {
	case 'n':
		return '\n'
	case 't':
		return '\t'
	case 'r':
		return '\r'
	default:
		return c
	}
}

// Format selects the Writer's output format.
type Format int

const (
	// FormatTSV writes tab-separated subject/predicate/object lines.
	FormatTSV Format = iota
	// FormatNT writes `<s> <p> <o> .` lines with minimal escaping.
	FormatNT
)

// Writer streams statements to an output.
type Writer struct {
	w      *bufio.Writer
	format Format
	n      int
}

// NewWriter returns a Writer emitting the given format to w.
func NewWriter(w io.Writer, format Format) *Writer {
	return &Writer{w: bufio.NewWriter(w), format: format}
}

// Write emits one statement.
func (w *Writer) Write(st Statement) error {
	var err error
	switch w.format {
	case FormatNT:
		_, err = fmt.Fprintf(w.w, "<%s> <%s> <%s> .\n", st.S, st.P, st.O)
	default:
		_, err = fmt.Fprintf(w.w, "%s\t%s\t%s\n", st.S, st.P, st.O)
	}
	if err == nil {
		w.n++
	}
	return err
}

// Count returns the number of statements written.
func (w *Writer) Count() int { return w.n }

// Flush flushes buffered output.
func (w *Writer) Flush() error { return w.w.Flush() }

// LoadStore reads every statement from r into a new triple store.
func LoadStore(r io.Reader) (*triplestore.Store, error) {
	rd := NewReader(r)
	b := triplestore.NewBuilder(1024)
	for {
		st, err := rd.Read()
		if err == io.EOF {
			return b.Freeze(), nil
		}
		if err != nil {
			return nil, err
		}
		b.Add(st.S, st.P, st.O)
	}
}

// DumpStore writes every triple of s to w in the given format.
func DumpStore(s *triplestore.Store, w io.Writer, format Format) (int, error) {
	wr := NewWriter(w, format)
	nodes, preds := s.Nodes(), s.Predicates()
	for _, t := range s.Triples() {
		st := Statement{
			S: nodes.String(t.S),
			P: preds.String(t.P),
			O: nodes.String(t.O),
		}
		if err := wr.Write(st); err != nil {
			return wr.Count(), err
		}
	}
	return wr.Count(), wr.Flush()
}
