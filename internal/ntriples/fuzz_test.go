package ntriples

import (
	"bufio"
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
)

// FuzzReader throws arbitrary bytes at the parser and checks its two
// contracts: it never panics, and every failure surfaces as a typed
// *ParseError (or the scanner's own too-long error) — never a raw slice
// fault or an unclassified error. Statements that survive parsing and are
// representable in TSV must round-trip through the Writer byte-for-byte.
func FuzzReader(f *testing.F) {
	seeds := []string{
		// TSV, the YAGO dump shape.
		"Angela_Merkel\tstudied\tPhysics",
		"a\tb\tc\nd\te\tf\n",
		"s\tp\to\textra\tfields",
		"a\t\tb",    // empty field
		"only\ttwo", // short row
		" padded \t p \t o ",
		// N-Triples subset.
		"<s> <p> <o> .",
		"<s> <p> \"a literal\" .",
		"<s> <p> \"esc\\t\\n\\\"aped\" .",
		"bare words here",
		"<s> <p> <o> trailing",
		"<unterminated <p> <o> .",
		"<s> <p> \"unterminated",
		"<s> <p>",
		"<> <> <> .",
		"\"\" \"\" \"\"",
		// Comments, blanks, separators.
		"# comment line\n\n   \n<s> <p> <o> .",
		"\x00\x01\x02",
		"é\t漢字\t🙂",
		strings.Repeat("x", 4096),
		"<" + strings.Repeat("y", 1024) + "> <p> <o>",
		"a\tb\tc\r\nd\te\tf\r\n",
		"\\",
		"\"\\",
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		r := NewReader(bytes.NewReader(data))
		for {
			st, err := r.Read()
			if err == io.EOF {
				return
			}
			if err != nil {
				var pe *ParseError
				if !errors.As(err, &pe) && !errors.Is(err, bufio.ErrTooLong) {
					t.Fatalf("untyped parse failure %T: %v", err, err)
				}
				return
			}
			if !tsvSafe(st) {
				continue
			}
			var buf bytes.Buffer
			w := NewWriter(&buf, FormatTSV)
			if err := w.Write(st); err != nil {
				t.Fatalf("writing %+v: %v", st, err)
			}
			if err := w.Flush(); err != nil {
				t.Fatal(err)
			}
			back, err := NewReader(&buf).ReadAll()
			if err != nil {
				t.Fatalf("re-reading %q: %v", buf.String(), err)
			}
			if len(back) != 1 || back[0] != st {
				t.Fatalf("round trip changed %+v into %+v", st, back)
			}
		}
	})
}

// tsvSafe reports whether st survives a TSV round trip unchanged: no term
// may be empty, carry TSV structure (tabs, newlines), start a comment, or
// hold padding the reader would trim.
func tsvSafe(st Statement) bool {
	for _, term := range []string{st.S, st.P, st.O} {
		if term == "" || strings.ContainsAny(term, "\t\n\r") || term != strings.TrimSpace(term) {
			return false
		}
	}
	return !strings.HasPrefix(st.S, "#")
}
