package ntriples

import (
	"bytes"
	"errors"
	"io"
	"strings"
	"testing"
	"testing/quick"
)

func TestReadTSV(t *testing.T) {
	in := "merkel\tleaderOf\tgermany\nobama\tleaderOf\tusa\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	want := []Statement{
		{"merkel", "leaderOf", "germany"},
		{"obama", "leaderOf", "usa"},
	}
	if len(got) != len(want) {
		t.Fatalf("got %d statements, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("statement %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestReadNT(t *testing.T) {
	in := `<merkel> <leaderOf> <germany> .
<merkel> <studied> "physics" .
`
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d statements", len(got))
	}
	if got[0] != (Statement{"merkel", "leaderOf", "germany"}) {
		t.Fatalf("statement 0 = %v", got[0])
	}
	if got[1] != (Statement{"merkel", "studied", "physics"}) {
		t.Fatalf("statement 1 = %v", got[1])
	}
}

func TestReadMixedAndComments(t *testing.T) {
	in := `# a comment

merkel	leaderOf	germany
<obama> <leaderOf> <usa> .
`
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 2 {
		t.Fatalf("got %d statements, want 2", len(got))
	}
}

func TestReadBareWords(t *testing.T) {
	in := "merkel leaderOf germany .\n"
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0] != (Statement{"merkel", "leaderOf", "germany"}) {
		t.Fatalf("got %v", got[0])
	}
}

func TestReadEscapedLiteral(t *testing.T) {
	in := `<a> <note> "line1\nline2\t\"quoted\"" .`
	got, err := NewReader(strings.NewReader(in)).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if got[0].O != "line1\nline2\t\"quoted\"" {
		t.Fatalf("object = %q", got[0].O)
	}
}

func TestParseErrors(t *testing.T) {
	cases := []struct {
		name string
		in   string
	}{
		{"missing field tsv", "a\tb\n"},
		{"empty field tsv", "a\t\tc\n"},
		{"unterminated iri", "<a <b> <c> .\n"},
		{"unterminated literal", `<a> <b> "oops .` + "\n"},
		{"missing term", "<a> <b>\n"},
		{"trailing garbage", "<a> <b> <c> <d> .\n"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, err := NewReader(strings.NewReader(tc.in)).ReadAll()
			var pe *ParseError
			if !errors.As(err, &pe) {
				t.Fatalf("err = %v, want *ParseError", err)
			}
			if pe.Line != 1 {
				t.Fatalf("Line = %d, want 1", pe.Line)
			}
			if pe.Error() == "" {
				t.Fatal("empty error text")
			}
		})
	}
}

func TestReadEOF(t *testing.T) {
	r := NewReader(strings.NewReader(""))
	if _, err := r.Read(); err != io.EOF {
		t.Fatalf("err = %v, want io.EOF", err)
	}
}

func TestWriterRoundTripTSV(t *testing.T) {
	roundTrip(t, FormatTSV)
}

func TestWriterRoundTripNT(t *testing.T) {
	roundTrip(t, FormatNT)
}

func roundTrip(t *testing.T, f Format) {
	t.Helper()
	stmts := []Statement{
		{"merkel", "leaderOf", "germany"},
		{"obama", "studied", "law"},
		{"pitt", "actedIn", "troy"},
	}
	var buf bytes.Buffer
	w := NewWriter(&buf, f)
	for _, st := range stmts {
		if err := w.Write(st); err != nil {
			t.Fatal(err)
		}
	}
	if err := w.Flush(); err != nil {
		t.Fatal(err)
	}
	if w.Count() != len(stmts) {
		t.Fatalf("Count = %d, want %d", w.Count(), len(stmts))
	}
	got, err := NewReader(&buf).ReadAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(stmts) {
		t.Fatalf("round trip lost statements: %d vs %d", len(got), len(stmts))
	}
	for i := range stmts {
		if got[i] != stmts[i] {
			t.Fatalf("statement %d = %v, want %v", i, got[i], stmts[i])
		}
	}
}

// Property: any statement whose terms avoid the delimiters survives a TSV
// round trip.
func TestRoundTripProperty(t *testing.T) {
	clean := func(s string) string {
		s = strings.Map(func(r rune) rune {
			switch r {
			case '\t', '\n', '\r':
				return '_'
			}
			return r
		}, s)
		s = strings.TrimSpace(s)
		if s == "" || strings.HasPrefix(s, "#") {
			return "x"
		}
		return s
	}
	f := func(s, p, o string) bool {
		st := Statement{S: clean(s), P: clean(p), O: clean(o)}
		var buf bytes.Buffer
		w := NewWriter(&buf, FormatTSV)
		if w.Write(st) != nil || w.Flush() != nil {
			return false
		}
		got, err := NewReader(&buf).ReadAll()
		return err == nil && len(got) == 1 && got[0] == st
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestLoadDumpStore(t *testing.T) {
	in := "merkel\tleaderOf\tgermany\nobama\tleaderOf\tusa\nmerkel\tstudied\tphysics\n"
	store, err := LoadStore(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if store.NumTriples() != 3 {
		t.Fatalf("NumTriples = %d, want 3", store.NumTriples())
	}
	var buf bytes.Buffer
	n, err := DumpStore(store, &buf, FormatTSV)
	if err != nil {
		t.Fatal(err)
	}
	if n != 3 {
		t.Fatalf("DumpStore wrote %d, want 3", n)
	}
	again, err := LoadStore(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if again.NumTriples() != 3 {
		t.Fatalf("reloaded NumTriples = %d", again.NumTriples())
	}
}

func BenchmarkReadTSV(b *testing.B) {
	var sb strings.Builder
	for i := 0; i < 10000; i++ {
		sb.WriteString("subject\tpredicate\tobject\n")
	}
	data := sb.String()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := NewReader(strings.NewReader(data))
		if _, err := r.ReadAll(); err != nil {
			b.Fatal(err)
		}
	}
}
