// The replication seam: everything a primary needs to ship its log to
// followers over a byte stream, and everything a follower needs to read
// it back. The wire format IS the log format — the same CRC32 frames
// recovery parses from disk (record.go) are copied verbatim onto the
// stream, so a follower applies exactly the bytes the primary fsync'd,
// and the epoch-contiguity invariant (no record N without N-1) carries
// over to replication for free. Only durable records are ever shipped:
// a follower can never get ahead of what a primary restart would
// recover, so a primary crash never leaves a replica holding epochs the
// recovered primary disowns.
//
// One extra frame kind exists on the wire only: a heartbeat — an empty
// frame (zero length prefix, zero CRC, which is the CRC of an empty
// payload) the primary emits on an idle stream so a follower can tell a
// quiet primary from a dead TCP connection. Heartbeats never enter the
// log file; FrameReader swallows them.
package wal

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
)

// ErrGone is wrapped by TailSince when records past the requested epoch
// have been truncated behind a checkpoint: the log can no longer replay
// a follower from there, and the follower must bootstrap from a
// snapshot instead.
var ErrGone = errors.New("wal: epoch truncated from log")

// heartbeatFrame is the idle-stream keepalive: a zero-length payload
// whose CRC32 (of nothing) is zero — eight zero bytes. ReadRecord
// rejects it (log files never contain one); FrameReader skips it.
var heartbeatFrame = [frameOverhead]byte{}

// HeartbeatFrame returns the wire keepalive frame a replication stream
// may interleave between records.
func HeartbeatFrame() []byte { return heartbeatFrame[:] }

// FrameReader incrementally decodes framed records from a replication
// stream. Unlike ReadRecord it consumes an io.Reader — a follower feeds
// it the chunked HTTP body — and it tolerates (counts and skips) the
// heartbeat frames a primary emits on idle streams. Arbitrary input
// never panics; see FuzzFrameReader.
type FrameReader struct {
	r          *bufio.Reader
	buf        []byte
	heartbeats int64
}

// NewFrameReader wraps r for incremental frame decoding.
func NewFrameReader(r io.Reader) *FrameReader {
	return &FrameReader{r: bufio.NewReader(r)}
}

// Heartbeats reports how many keepalive frames Next has skipped.
func (fr *FrameReader) Heartbeats() int64 { return fr.heartbeats }

// Next returns the next record on the stream, skipping heartbeats. A
// clean end of stream (between frames) is io.EOF; a stream cut inside a
// frame wraps ErrTorn; a complete frame that fails validation wraps
// ErrCorrupt, exactly as ReadRecord would report it.
func (fr *FrameReader) Next() (Record, error) {
	for {
		var prefix [4]byte
		if _, err := io.ReadFull(fr.r, prefix[:]); err != nil {
			if err == io.EOF {
				return Record{}, io.EOF
			}
			return Record{}, fmt.Errorf("%w: stream cut inside length prefix: %v", ErrTorn, err)
		}
		n := binary.LittleEndian.Uint32(prefix[:])
		if n == 0 {
			// Candidate heartbeat: the trailer must still be the CRC of the
			// empty payload (zero), or the frame is garbage.
			var crc [4]byte
			if _, err := io.ReadFull(fr.r, crc[:]); err != nil {
				return Record{}, fmt.Errorf("%w: stream cut inside heartbeat: %v", ErrTorn, err)
			}
			if binary.LittleEndian.Uint32(crc[:]) != 0 {
				return Record{}, fmt.Errorf("%w: empty frame with nonzero checksum", ErrCorrupt)
			}
			fr.heartbeats++
			continue
		}
		if n > maxRecordLen {
			return Record{}, fmt.Errorf("%w: length prefix %d exceeds cap %d", ErrCorrupt, n, maxRecordLen)
		}
		total := int(n) + frameOverhead
		if cap(fr.buf) < total {
			fr.buf = make([]byte, total)
		}
		frame := fr.buf[:total]
		copy(frame, prefix[:])
		if _, err := io.ReadFull(fr.r, frame[4:]); err != nil {
			return Record{}, fmt.Errorf("%w: stream cut inside frame (want %d bytes): %v", ErrTorn, total, err)
		}
		rec, _, err := ReadRecord(frame)
		return rec, err
	}
}

// DurableEpoch returns the newest epoch the log guarantees would survive
// a crash right now: every record at or below it is covered by a
// completed fsync (a checkpoint newer than every record counts too).
// This is the replication watermark — TailSince never serves past it.
func (l *Log) DurableEpoch() uint64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.durableEpoch
}

// Changed returns a channel that is closed the next time the durable
// epoch advances, the log sticky-fails, or the log closes — the wakeup a
// live replication stream blocks on between tail reads. Callers must
// re-call Changed after each wakeup; the returned channel fires once.
func (l *Log) Changed() <-chan struct{} {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.notifyCh
}

// bumpLocked wakes every Changed subscriber. Caller holds l.mu.
func (l *Log) bumpLocked() {
	close(l.notifyCh)
	l.notifyCh = make(chan struct{})
}

// TailSince returns the raw framed bytes of every durable record with
// epoch in (from, DurableEpoch], plus the durable epoch itself. The
// bytes are verbatim log frames, ready to copy onto a replication
// stream. A from at (or past) the durable epoch returns an empty tail —
// the caller distinguishes "caught up" (from == durable) from "ahead of
// the primary" (from > durable, a divergence). When records past from
// have been truncated behind a checkpoint the tail cannot be served and
// the error wraps ErrGone: the follower must bootstrap from a snapshot.
func (l *Log) TailSince(from uint64) ([]byte, uint64, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil, 0, l.err
	}
	if l.closed {
		return nil, 0, ErrClosed
	}
	durable := l.durableEpoch
	if from >= durable {
		return nil, durable, nil
	}
	// The log must hold epoch from+1 onward. oldestInLog is 0 when the
	// file holds no records at all — then every epoch ≤ durable lives only
	// in checkpoints.
	if l.oldestInLog == 0 || from+1 < l.oldestInLog {
		return nil, durable, fmt.Errorf("%w: want epochs > %d, log starts at %d", ErrGone, from, l.oldestInLog)
	}
	data, err := readAll(l.opt.FS, joinPath(l.dir, logName))
	if err != nil {
		return nil, durable, fmt.Errorf("wal: reading log for tail: %w", err)
	}
	// Only the synced prefix is durable; bytes past it may rewind in a
	// crash and must never reach a follower.
	if int64(len(data)) > l.synced {
		data = data[:l.synced]
	}
	var out []byte
	for off := headerLen; off < len(data); {
		r, n, err := ReadRecord(data[off:])
		if err != nil {
			return nil, durable, fmt.Errorf("wal: reparsing log for tail at offset %d: %w", off, err)
		}
		if r.Epoch > from && r.Epoch <= durable {
			out = append(out, data[off:off+n]...)
		}
		off += n
	}
	return out, durable, nil
}

// OpenCheckpoint opens the newest durable checkpoint for reading — the
// snapshot-bootstrap payload a late-joining follower downloads before
// streaming the tail. ok is false when no checkpoint exists yet. The
// caller owns the returned reader; the underlying file stays readable
// even if a newer checkpoint later supersedes and unlinks it.
func (l *Log) OpenCheckpoint() (epoch uint64, rc io.ReadCloser, ok bool, err error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed {
		return 0, nil, false, ErrClosed
	}
	if l.ckptEpoch == 0 {
		return 0, nil, false, nil
	}
	f, err := l.opt.FS.Open(joinPath(l.dir, ckptName(l.ckptEpoch)))
	if err != nil {
		return 0, nil, false, fmt.Errorf("wal: opening checkpoint for export: %w", err)
	}
	return l.ckptEpoch, &fileReadCloser{f}, true, nil
}

// fileReadCloser adapts the FS seam's File to io.ReadCloser.
type fileReadCloser struct{ f File }

func (rc *fileReadCloser) Read(p []byte) (int, error) { return rc.f.Read(p) }
func (rc *fileReadCloser) Close() error               { return rc.f.Close() }
