// Record framing: the crash-safe on-disk encoding of one applied triple
// batch. A record is length-prefixed and CRC32-framed so a reader can
// tell exactly three states apart — valid, torn (the file ends inside
// the frame: a crash mid-append), and corrupt (a complete frame whose
// checksum or payload is wrong: bit rot or a foreign writer):
//
//	frame   := [uint32 LE payloadLen] [payload] [uint32 LE CRC32(payload)]
//	payload := uvarint epoch
//	           uvarint nDels  nDels × triple     (dels first: Apply order)
//	           uvarint nAdds  nAdds × triple
//	triple  := string S  string P  string O      (uvarint length + bytes)
//
// The CRC uses the IEEE polynomial over the payload only, mirroring
// internal/snapshot's trailer. Epochs are the post-apply epoch of the
// batch: replaying record N over the graph state at epoch N-1 must
// republish exactly epoch N.
package wal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"math/bits"

	"repro/internal/kg"
)

// ErrCorrupt is wrapped by every error reported for a structurally
// complete but invalid record or log — a checksum mismatch, a malformed
// payload, a bad header, an epoch gap. Recovery refuses to start on it:
// acknowledged writes may be missing and silently proceeding would
// diverge from what clients were told.
var ErrCorrupt = errors.New("wal: corrupt")

// ErrTorn is wrapped by errors reported when a record frame extends past
// the end of the log — the signature of a crash between append and
// completion. Only the final record of a log can legitimately be torn;
// recovery truncates it (the batch was never acknowledged: its fsync
// cannot have returned) and reports the dropped bytes.
var ErrTorn = errors.New("wal: torn record")

// Record is one applied triple batch: the post-apply epoch plus the adds
// and dels exactly as they were passed to Versioned.Apply.
type Record struct {
	Epoch uint64
	Adds  []kg.Triple
	Dels  []kg.Triple
}

// frameOverhead is the framing cost per record: the length prefix plus
// the CRC trailer.
const frameOverhead = 8

// maxRecordLen caps a record payload (64 MiB). A length prefix above it
// is treated as corruption rather than an instruction to allocate.
const maxRecordLen = 64 << 20

// AppendRecord appends rec's framed encoding to buf and returns the
// extended slice.
func AppendRecord(buf []byte, rec Record) []byte {
	start := len(buf)
	buf = append(buf, 0, 0, 0, 0) // length prefix, patched below
	p := len(buf)
	buf = binary.AppendUvarint(buf, rec.Epoch)
	buf = appendTriples(buf, rec.Dels)
	buf = appendTriples(buf, rec.Adds)
	payload := buf[p:]
	binary.LittleEndian.PutUint32(buf[start:], uint32(len(payload)))
	var crc [4]byte
	binary.LittleEndian.PutUint32(crc[:], crc32.ChecksumIEEE(payload))
	return append(buf, crc[:]...)
}

func appendTriples(buf []byte, ts []kg.Triple) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(ts)))
	for _, t := range ts {
		for _, s := range [3]string{t.S, t.P, t.O} {
			buf = binary.AppendUvarint(buf, uint64(len(s)))
			buf = append(buf, s...)
		}
	}
	return buf
}

// ReadRecord parses the first framed record in b, returning the record
// and the bytes consumed. Errors wrap exactly one of ErrTorn (the frame
// runs past len(b): a crash tail) or ErrCorrupt (a complete frame that
// fails its checksum or decodes to nonsense). Arbitrary input never
// panics; see FuzzRecord.
func ReadRecord(b []byte) (Record, int, error) {
	if len(b) < 4 {
		return Record{}, 0, fmt.Errorf("%w: %d byte(s) of length prefix", ErrTorn, len(b))
	}
	n := binary.LittleEndian.Uint32(b)
	if n > maxRecordLen {
		// A length this large is never written; if the remaining file could
		// not hold it anyway the frame is indistinguishable from a torn one,
		// but an in-range file position claiming it is corruption.
		if uint64(len(b)) < uint64(n)+frameOverhead {
			return Record{}, 0, fmt.Errorf("%w: length prefix %d exceeds remaining %d bytes", ErrTorn, n, len(b)-frameOverhead)
		}
		return Record{}, 0, fmt.Errorf("%w: length prefix %d exceeds cap %d", ErrCorrupt, n, maxRecordLen)
	}
	total := int(n) + frameOverhead
	if len(b) < total {
		return Record{}, 0, fmt.Errorf("%w: frame wants %d bytes, log holds %d", ErrTorn, total, len(b))
	}
	payload := b[4 : 4+n]
	want := binary.LittleEndian.Uint32(b[4+n:])
	if got := crc32.ChecksumIEEE(payload); got != want {
		return Record{}, 0, fmt.Errorf("%w: checksum mismatch: frame %08x, computed %08x", ErrCorrupt, want, got)
	}
	rec, err := decodePayload(payload)
	if err != nil {
		return Record{}, 0, err
	}
	return rec, total, nil
}

// decodePayload decodes a checksum-verified payload. Failures are still
// possible — the CRC guards transport, not the encoder's grammar — and
// all of them are ErrCorrupt.
func decodePayload(p []byte) (Record, error) {
	var rec Record
	var err error
	rec.Epoch, p, err = readUvarint(p, "epoch")
	if err != nil {
		return Record{}, err
	}
	rec.Dels, p, err = readTriples(p, "dels")
	if err != nil {
		return Record{}, err
	}
	rec.Adds, p, err = readTriples(p, "adds")
	if err != nil {
		return Record{}, err
	}
	if len(p) != 0 {
		return Record{}, fmt.Errorf("%w: %d trailing payload byte(s)", ErrCorrupt, len(p))
	}
	return rec, nil
}

func readUvarint(p []byte, what string) (uint64, []byte, error) {
	v, n := binary.Uvarint(p)
	if n <= 0 {
		return 0, nil, fmt.Errorf("%w: bad uvarint (%s)", ErrCorrupt, what)
	}
	// Only canonical (minimal-length) encodings are accepted: the encoder
	// never writes padded continuation bytes, so decode∘encode is exactly
	// the identity on valid frames — the invariant recovery's byte
	// arithmetic and FuzzRecord's round trip both lean on.
	if size := (bits.Len64(v|1) + 6) / 7; n != size {
		return 0, nil, fmt.Errorf("%w: non-canonical uvarint (%s)", ErrCorrupt, what)
	}
	return v, p[n:], nil
}

func readTriples(p []byte, what string) ([]kg.Triple, []byte, error) {
	n, p, err := readUvarint(p, what+" count")
	if err != nil {
		return nil, nil, err
	}
	// Three non-empty terms cost at least 3 length bytes; a count beyond
	// that is a lie about data the payload cannot hold.
	if n > uint64(len(p)) {
		return nil, nil, fmt.Errorf("%w: %s count %d exceeds payload", ErrCorrupt, what, n)
	}
	if n == 0 {
		return nil, p, nil
	}
	ts := make([]kg.Triple, n)
	for i := range ts {
		for j, dst := range [3]*string{&ts[i].S, &ts[i].P, &ts[i].O} {
			var l uint64
			l, p, err = readUvarint(p, what+" term length")
			if err != nil {
				return nil, nil, err
			}
			if l > uint64(len(p)) {
				return nil, nil, fmt.Errorf("%w: %s term %d/%d length %d exceeds payload", ErrCorrupt, what, i, j, l)
			}
			*dst = string(p[:l])
			p = p[l:]
		}
	}
	return ts, p, nil
}
