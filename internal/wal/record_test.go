package wal

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"repro/internal/kg"
)

func sampleRecords() []Record {
	return []Record{
		{Epoch: 1, Adds: []kg.Triple{{S: "a", P: "b", O: "c"}}},
		{Epoch: 2, Dels: []kg.Triple{{S: "a", P: "b", O: "c"}}},
		{Epoch: 3}, // empty batch payload (legal on the wire, if not in practice)
		{Epoch: 1 << 60,
			Adds: []kg.Triple{{S: "Angela Merkel", P: "studied", O: "Physics"}, {S: "é", P: "漢字", O: "🙂"}},
			Dels: []kg.Triple{{S: strings.Repeat("x", 3000), P: "p", O: ""}}},
	}
}

// TestRecordRoundTrip: encode→decode is identity, for single records and
// for several framed back to back.
func TestRecordRoundTrip(t *testing.T) {
	var buf []byte
	recs := sampleRecords()
	for _, rec := range recs {
		buf = AppendRecord(buf, rec)
	}
	off := 0
	for i, want := range recs {
		got, n, err := ReadRecord(buf[off:])
		if err != nil {
			t.Fatalf("record %d: %v", i, err)
		}
		if got.Epoch != want.Epoch || !tripleEq(got.Adds, want.Adds) || !tripleEq(got.Dels, want.Dels) {
			t.Fatalf("record %d: round trip changed %+v into %+v", i, want, got)
		}
		off += n
	}
	if off != len(buf) {
		t.Fatalf("consumed %d of %d bytes", off, len(buf))
	}
}

// tripleEq treats nil and empty as equal: the decoder materializes nil
// for a zero count.
func tripleEq(a, b []kg.Triple) bool {
	if len(a) == 0 && len(b) == 0 {
		return true
	}
	return reflect.DeepEqual(a, b)
}

// TestRecordTruncation: every strict prefix of a framed record is torn —
// never corrupt, never valid, never a panic.
func TestRecordTruncation(t *testing.T) {
	full := AppendRecord(nil, sampleRecords()[3])
	for cut := 0; cut < len(full); cut++ {
		_, _, err := ReadRecord(full[:cut])
		if !errors.Is(err, ErrTorn) {
			t.Fatalf("prefix of %d/%d bytes: got %v, want ErrTorn", cut, len(full), err)
		}
		if errors.Is(err, ErrCorrupt) {
			t.Fatalf("prefix of %d bytes reported both torn and corrupt: %v", cut, err)
		}
	}
}

// TestRecordBitFlips: flipping any single bit of a complete frame must
// yield a typed error or — only for flips that grow the length prefix
// past the buffer — ErrTorn. A flipped frame must never decode back to
// the original silently... and never panic.
func TestRecordBitFlips(t *testing.T) {
	orig := sampleRecords()[0]
	full := AppendRecord(nil, orig)
	for i := range full {
		for bit := 0; bit < 8; bit++ {
			mut := append([]byte(nil), full...)
			mut[i] ^= 1 << bit
			rec, n, err := ReadRecord(mut)
			if err == nil {
				// Only a length-prefix flip could re-frame to a still-valid
				// record, and the CRC over a different payload slice makes
				// that astronomically unlikely; reaching here is a bug.
				t.Fatalf("flip byte %d bit %d: decoded silently to %+v (%d bytes)", i, bit, rec, n)
			}
			if !errors.Is(err, ErrCorrupt) && !errors.Is(err, ErrTorn) {
				t.Fatalf("flip byte %d bit %d: untyped error %v", i, bit, err)
			}
		}
	}
	// Flips strictly inside the payload are specifically checksum
	// failures: the frame is complete, so they must be corrupt, not torn.
	for i := 4; i < len(full)-4; i++ {
		mut := append([]byte(nil), full...)
		mut[i] ^= 0x40
		if _, _, err := ReadRecord(mut); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("payload flip at byte %d: got %v, want ErrCorrupt", i, err)
		}
	}
}

// TestRecordLengthPrefixCap: a length prefix past the cap is torn when
// the remaining bytes could not hold the frame anyway (indistinguishable
// from a crash tail), and corrupt when they somehow could.
func TestRecordLengthPrefixCap(t *testing.T) {
	huge := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3}
	if _, _, err := ReadRecord(huge); !errors.Is(err, ErrTorn) {
		t.Fatalf("oversized prefix, tiny buffer: got %v, want ErrTorn", err)
	}
}
