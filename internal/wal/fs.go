// The filesystem seam. Every byte the WAL persists flows through an FS,
// so tests can inject the failures real disks produce — short writes,
// fsync errors, a process death between write, fsync, and rename — and
// then prove recovery from the bytes that actually made it to "disk".
// Production always uses the os-backed implementation.
package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sync"
)

// File is the subset of *os.File the log needs from an open file.
type File interface {
	io.Reader
	io.Writer
	// Sync flushes the file's written data to stable storage; a record is
	// considered durable only once its covering Sync has returned.
	Sync() error
	Close() error
}

// FS abstracts the directory the WAL lives in. Implementations must make
// Rename atomic with respect to crashes (rename(2) semantics): recovery
// depends on a checkpoint or log swap being entirely old or entirely new.
type FS interface {
	MkdirAll(dir string) error
	// Create opens name for writing, truncating any previous content.
	Create(name string) (File, error)
	// Open opens name read-only.
	Open(name string) (File, error)
	// OpenAppend opens name for appending, creating it if absent.
	OpenAppend(name string) (File, error)
	Rename(oldname, newname string) error
	Remove(name string) error
	// Truncate cuts name to size bytes (recovery drops a torn tail).
	Truncate(name string, size int64) error
	// ReadDir lists the names (not paths) of dir's entries.
	ReadDir(dir string) ([]string, error)
	// SyncDir fsyncs the directory itself, making renames and creates in
	// it durable.
	SyncDir(dir string) error
}

// osFS is the production FS.
type osFS struct{}

// OSFS returns the os-backed FS the log uses by default.
func OSFS() FS { return osFS{} }

func (osFS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

func (osFS) Create(name string) (File, error) { return os.Create(name) }

func (osFS) Open(name string) (File, error) { return os.Open(name) }

func (osFS) OpenAppend(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

func (osFS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

func (osFS) Remove(name string) error { return os.Remove(name) }

func (osFS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

func (osFS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	return names, nil
}

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}

// ErrInjected is the error every FaultFS-injected failure wraps, and the
// error every operation after the simulated crash returns.
var ErrInjected = errors.New("wal: injected fault")

// FaultFS wraps an FS with one scheduled fault, after which the
// filesystem behaves as if the process died: the faulting operation
// fails (possibly half-done, like a short write), and every subsequent
// operation fails too, so nothing "after the crash" can leak onto disk.
// Crash tests then reopen the directory with a clean FS and must recover
// from exactly the bytes that landed before the fault.
//
// Exactly one schedule is active per FaultFS; the zero value injects
// nothing. Safe for concurrent use.
type FaultFS struct {
	inner FS

	mu sync.Mutex
	// writeBudget, when ≥ 0, is the number of payload bytes Write may
	// still persist before the crash: the crashing Write persists the
	// remaining budget (a short write) and fails.
	writeBudget int64
	// syncBudget, when ≥ 0, is the number of Syncs allowed to succeed;
	// the next one fails without flushing guarantees.
	syncBudget int
	// renameBudget, when ≥ 0, counts Renames allowed to succeed; the next
	// one crashes — before performing the rename when renameAfter is
	// false, after it succeeded when true (the caller never learns).
	renameBudget int
	renameAfter  bool
	crashed      bool
}

// NewFaultFS wraps inner (OSFS() when nil) with no fault scheduled.
func NewFaultFS(inner FS) *FaultFS {
	if inner == nil {
		inner = OSFS()
	}
	return &FaultFS{inner: inner, writeBudget: -1, syncBudget: -1, renameBudget: -1}
}

// CrashAfterWriteBytes schedules the crash inside the Write that would
// exceed n total persisted bytes: it lands as a short write.
func (f *FaultFS) CrashAfterWriteBytes(n int64) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.writeBudget = n
	return f
}

// CrashOnSync schedules the crash on the k-th Sync call (0 = the first).
func (f *FaultFS) CrashOnSync(k int) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.syncBudget = k
	return f
}

// CrashBeforeRename schedules the crash on the k-th Rename (0 = the
// first), before it takes effect: the target keeps its old state.
func (f *FaultFS) CrashBeforeRename(k int) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameBudget, f.renameAfter = k, false
	return f
}

// CrashAfterRename schedules the crash on the k-th Rename (0 = the
// first), after it took effect: the rename is durable but its caller
// died before learning so.
func (f *FaultFS) CrashAfterRename(k int) *FaultFS {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.renameBudget, f.renameAfter = k, true
	return f
}

// Crashed reports whether the scheduled fault has fired.
func (f *FaultFS) Crashed() bool {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.crashed
}

// gate fails once crashed.
func (f *FaultFS) gate() error {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.crashed {
		return fmt.Errorf("%w: process crashed", ErrInjected)
	}
	return nil
}

func (f *FaultFS) MkdirAll(dir string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.MkdirAll(dir)
}

func (f *FaultFS) Create(name string) (File, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	file, err := f.inner.Create(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Open(name string) (File, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.Open(name)
}

func (f *FaultFS) OpenAppend(name string) (File, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	file, err := f.inner.OpenAppend(name)
	if err != nil {
		return nil, err
	}
	return &faultFile{fs: f, inner: file}, nil
}

func (f *FaultFS) Rename(oldname, newname string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return fmt.Errorf("%w: process crashed", ErrInjected)
	}
	if f.renameBudget == 0 {
		f.crashed = true
		after := f.renameAfter
		f.mu.Unlock()
		if after {
			_ = f.inner.Rename(oldname, newname)
			return fmt.Errorf("%w: crash after rename %s", ErrInjected, newname)
		}
		return fmt.Errorf("%w: crash before rename %s", ErrInjected, newname)
	}
	if f.renameBudget > 0 {
		f.renameBudget--
	}
	f.mu.Unlock()
	return f.inner.Rename(oldname, newname)
}

func (f *FaultFS) Remove(name string) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) Truncate(name string, size int64) error {
	if err := f.gate(); err != nil {
		return err
	}
	return f.inner.Truncate(name, size)
}

func (f *FaultFS) ReadDir(dir string) ([]string, error) {
	if err := f.gate(); err != nil {
		return nil, err
	}
	return f.inner.ReadDir(dir)
}

func (f *FaultFS) SyncDir(dir string) error {
	f.mu.Lock()
	if f.crashed {
		f.mu.Unlock()
		return fmt.Errorf("%w: process crashed", ErrInjected)
	}
	if f.syncBudget == 0 {
		f.crashed = true
		f.mu.Unlock()
		return fmt.Errorf("%w: crash on dir fsync", ErrInjected)
	}
	if f.syncBudget > 0 {
		f.syncBudget--
	}
	f.mu.Unlock()
	return f.inner.SyncDir(dir)
}

// faultFile threads a file's writes and syncs through the parent's
// schedule.
type faultFile struct {
	fs    *FaultFS
	inner File
}

func (ff *faultFile) Read(p []byte) (int, error) {
	if err := ff.fs.gate(); err != nil {
		return 0, err
	}
	return ff.inner.Read(p)
}

func (ff *faultFile) Write(p []byte) (int, error) {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return 0, fmt.Errorf("%w: process crashed", ErrInjected)
	}
	if ff.fs.writeBudget >= 0 && int64(len(p)) > ff.fs.writeBudget {
		// The crashing write: persist what the budget allows, then die.
		short := int(ff.fs.writeBudget)
		ff.fs.crashed = true
		ff.fs.mu.Unlock()
		n, _ := ff.inner.Write(p[:short])
		return n, fmt.Errorf("%w: short write (%d of %d bytes)", ErrInjected, short, len(p))
	}
	if ff.fs.writeBudget >= 0 {
		ff.fs.writeBudget -= int64(len(p))
	}
	ff.fs.mu.Unlock()
	return ff.inner.Write(p)
}

func (ff *faultFile) Sync() error {
	ff.fs.mu.Lock()
	if ff.fs.crashed {
		ff.fs.mu.Unlock()
		return fmt.Errorf("%w: process crashed", ErrInjected)
	}
	if ff.fs.syncBudget == 0 {
		ff.fs.crashed = true
		ff.fs.mu.Unlock()
		return fmt.Errorf("%w: crash on fsync", ErrInjected)
	}
	if ff.fs.syncBudget > 0 {
		ff.fs.syncBudget--
	}
	ff.fs.mu.Unlock()
	return ff.inner.Sync()
}

func (ff *faultFile) Close() error {
	// Closing is allowed after a crash: the test is tearing down, and a
	// real dead process's descriptors close too.
	return ff.inner.Close()
}

// joinPath is filepath.Join, centralized so every implementation agrees
// on separator handling.
func joinPath(dir, name string) string { return filepath.Join(dir, name) }
