// Package wal is the crash-safe, epoch-tagged write-ahead log behind
// durable ingest: every effective triple batch an engine acknowledges is
// framed (see record.go), appended to one log file, and fsync'd before
// the acknowledgement, so process death never silently rewinds the graph
// past a write a client was told landed.
//
// Directory layout (all files under one WAL directory):
//
//	wal.log              header ("NCWAL\x00\x01" + uint32 LE version),
//	                     then CRC32-framed records in epoch order
//	ckpt-%016x.snap      checkpoints: opaque payloads (a kg snapshot in
//	                     practice) named by the epoch they capture
//	*.tmp                in-flight writes; removed on open
//
// Durability protocol. Appends go to an append-only handle; a record is
// acknowledged only after an fsync covering it returns — either inline
// per batch (SyncEveryBatch) or by the next group-commit tick
// (SyncEveryInterval), where every append landed since the previous tick
// rides one fsync. Because records enter the file in epoch order, any
// fsync durably commits a *prefix* of the epoch sequence: recovery never
// sees epoch N without N-1.
//
// Checkpoints. Checkpoint writes the payload to a temp file, fsyncs it,
// atomically renames it into place, fsyncs the directory, and only then
// truncates the log — rewriting it to hold just the records newer than
// the *previous* checkpoint, so the newest checkpoint plus the log tail
// always reconstructs the current state, and even if the newest
// checkpoint is later unreadable the retained older one still can.
//
// Recovery (Open) loads the newest checkpoint that validates (the caller
// verifies payload integrity — kg snapshots carry their own CRC), then
// scans the log: records at or below the checkpoint epoch are skipped,
// the rest are returned for replay in order. A final record cut short by
// a crash (the frame runs past end-of-file) is truncated and reported —
// its batch was never acknowledged, because its fsync cannot have
// returned. Anything else wrong — a checksum mismatch, an epoch gap, a
// bad header — refuses startup with an error wrapping ErrCorrupt:
// acknowledged writes may be missing, and serving anyway would diverge
// from what clients were told.
//
// Every filesystem touch goes through the FS seam (fs.go), so the
// fault-injection tests can kill the pipeline between any write, fsync,
// and rename and prove recovery from the surviving bytes.
package wal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"log"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"repro/internal/obs"
)

// Log file identity.
const (
	logName    = "wal.log"
	logMagic   = "NCWAL\x00\x01"
	logVersion = 1
	headerLen  = len(logMagic) + 4

	ckptPrefix = "ckpt-"
	ckptSuffix = ".snap"
	tmpSuffix  = ".tmp"
)

// ErrClosed is returned by operations on a closed log.
var ErrClosed = errors.New("wal: closed")

// SyncPolicy selects when appended records are fsync'd — which is when
// their Commit returns and the write may be acknowledged.
type SyncPolicy int

const (
	// SyncEveryBatch fsyncs inline on every Commit: minimum loss window,
	// one fsync per batch (concurrent commits still share one fsync —
	// whoever syncs first covers everyone written before them).
	SyncEveryBatch SyncPolicy = iota
	// SyncEveryInterval group-commits: a background flusher fsyncs at most
	// once per Options.SyncInterval and every Commit landed since the
	// previous flush waits for — and shares — that one fsync. Throughput
	// over latency; the durability contract is unchanged (Commit still
	// returns only once the record is on disk).
	SyncEveryInterval
)

// DefaultSyncInterval is the group-commit flush period when
// Options.SyncInterval is zero.
const DefaultSyncInterval = 2 * time.Millisecond

// Options configures a Log.
type Options struct {
	// FS is the filesystem seam; nil selects the os-backed one.
	FS FS
	// Sync is the fsync policy (default SyncEveryBatch).
	Sync SyncPolicy
	// SyncInterval is the group-commit flush period under
	// SyncEveryInterval (default DefaultSyncInterval).
	SyncInterval time.Duration
	// Logf receives recovery and checkpoint log lines (default
	// log.Printf; tests pass t.Logf or a no-op).
	Logf func(format string, args ...any)
	// FsyncObs, when non-nil, receives the duration of every append-path
	// fsync — the disk-health distribution behind the
	// nc_wal_fsync_seconds histogram. Observation is a few atomic adds
	// on the sync path (which just paid a disk flush); nil costs one
	// branch.
	FsyncObs *obs.Histogram
}

func (o Options) withDefaults() Options {
	if o.FS == nil {
		o.FS = OSFS()
	}
	if o.SyncInterval <= 0 {
		o.SyncInterval = DefaultSyncInterval
	}
	if o.Logf == nil {
		o.Logf = log.Printf
	}
	return o
}

// Recovery summarizes what Open reconstructed: which checkpoint booted
// the state, the records the caller must replay over it (in epoch
// order), and what was dropped or skipped along the way.
type Recovery struct {
	// HasCheckpoint reports whether a checkpoint was loaded;
	// CheckpointEpoch is its epoch (0 without one: the caller starts from
	// its bootstrap state at epoch 0).
	HasCheckpoint   bool
	CheckpointEpoch uint64
	// Records is the log tail to replay: every durable record with epoch
	// > CheckpointEpoch, ascending and gap-free.
	Records []Record
	// TruncatedBytes counts torn-tail bytes dropped from the log's end —
	// the residue of a crash mid-append, never an acknowledged write.
	TruncatedBytes int64
	// SkippedCheckpoints counts checkpoint files that failed to load and
	// were discarded in favor of an older one.
	SkippedCheckpoints int
}

// Stats is a point-in-time summary for observability endpoints.
type Stats struct {
	// Bytes is the log file's current size, header included.
	Bytes int64
	// Records is the number of valid records currently in the log file
	// (recovered and appended, minus those dropped by checkpoint
	// truncation).
	Records int64
	// LastFsync is the duration of the most recent fsync (0 before the
	// first) — the disk-health signal behind the wal_last_fsync_ms gauge.
	LastFsync time.Duration
	// CheckpointEpoch is the newest durable checkpoint's epoch (0 when
	// none exists yet).
	CheckpointEpoch uint64
}

// Commit blocks until the record whose Append returned it is durable
// under the log's sync policy, and reports the outcome. A non-nil error
// means the record's durability is unknown at best — the log is sticky-
// failed and every later Append and Commit returns the same error.
type Commit func() error

// Log is an open write-ahead log. Safe for concurrent use; appends are
// serialized internally and must arrive in epoch order (the engine's
// apply lock guarantees it).
type Log struct {
	dir string
	opt Options

	mu        sync.Mutex
	cond      *sync.Cond
	f         File  // append handle
	size      int64 // bytes in the log file (valid prefix)
	synced    int64 // bytes covered by a completed fsync
	records   int64
	lastEpoch uint64 // epoch of the newest record (or checkpoint, if newer)
	ckptEpoch uint64 // newest checkpoint
	prevCkpt  uint64 // older retained checkpoint: the log's truncation floor
	lastFsync time.Duration
	err       error // sticky: first write/fsync/truncate failure
	closed    bool

	// Replication watermarks (stream.go). durableEpoch trails lastEpoch
	// until an fsync covers it; oldestInLog is the epoch of the oldest
	// record still in the file (0 when the file holds none) — TailSince's
	// gone-detection floor; notifyCh is close-and-replaced on every
	// durable advance, sticky failure, or close.
	durableEpoch uint64
	oldestInLog  uint64
	notifyCh     chan struct{}

	flushStop chan struct{}
	flushDone chan struct{}
	buf       []byte // append encode scratch, guarded by mu
}

// Open opens (creating if necessary) the WAL in dir and recovers its
// state. Checkpoints are offered newest-first to load, which must
// rebuild the caller's state from the payload and return nil only if the
// payload fully validates (kg.ReadSnapshot's CRC check, in practice); a
// failing checkpoint is discarded and the next older one tried. The
// returned Recovery carries the log tail to replay over whatever load
// accepted (or over the caller's bootstrap state when no checkpoint
// exists).
//
// Open truncates a torn final record, reporting the dropped bytes, and
// fails with an error wrapping ErrCorrupt on anything worse: a mid-log
// checksum failure, an epoch gap, a bad header, or a directory whose
// every checkpoint is unreadable.
func Open(dir string, opt Options, load func(epoch uint64, payload io.Reader) error) (*Log, Recovery, error) {
	opt = opt.withDefaults()
	fs := opt.FS
	if err := fs.MkdirAll(dir); err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: creating %s: %w", dir, err)
	}
	names, err := fs.ReadDir(dir)
	if err != nil {
		return nil, Recovery{}, fmt.Errorf("wal: listing %s: %w", dir, err)
	}

	// Sweep in-flight temp files: they are from writes that never renamed
	// into place, so they were never part of the durable state.
	var ckptEpochs []uint64
	for _, name := range names {
		if strings.HasSuffix(name, tmpSuffix) {
			if err := fs.Remove(joinPath(dir, name)); err != nil {
				return nil, Recovery{}, fmt.Errorf("wal: removing stale %s: %w", name, err)
			}
			continue
		}
		if e, ok := parseCkptName(name); ok {
			ckptEpochs = append(ckptEpochs, e)
		}
	}
	sort.Slice(ckptEpochs, func(i, j int) bool { return ckptEpochs[i] > ckptEpochs[j] })

	var rec Recovery
	for _, e := range ckptEpochs {
		if rec.HasCheckpoint {
			break
		}
		path := joinPath(dir, ckptName(e))
		f, err := fs.Open(path)
		if err == nil {
			err = load(e, f)
			if cerr := f.Close(); err == nil {
				err = cerr
			}
		}
		if err != nil {
			opt.Logf("wal: skipping checkpoint epoch %d: %v", e, err)
			rec.SkippedCheckpoints++
			if rerr := fs.Remove(path); rerr != nil {
				return nil, Recovery{}, fmt.Errorf("wal: removing bad checkpoint: %w", rerr)
			}
			continue
		}
		rec.HasCheckpoint, rec.CheckpointEpoch = true, e
	}
	if !rec.HasCheckpoint && len(ckptEpochs) > 0 {
		return nil, Recovery{}, fmt.Errorf("%w: all %d checkpoint(s) unreadable", ErrCorrupt, len(ckptEpochs))
	}

	l := &Log{dir: dir, opt: opt, ckptEpoch: rec.CheckpointEpoch, lastEpoch: rec.CheckpointEpoch}
	l.cond = sync.NewCond(&l.mu)
	l.notifyCh = make(chan struct{})
	if rec.HasCheckpoint {
		// The retained-older-checkpoint floor restarts at the loaded one:
		// records at or below it were only kept for its sake.
		l.prevCkpt = rec.CheckpointEpoch
	}
	if err := l.recoverLog(&rec); err != nil {
		return nil, Recovery{}, err
	}
	// Everything recovery accepted is on disk by definition.
	l.durableEpoch = l.lastEpoch
	if opt.Sync == SyncEveryInterval {
		l.flushStop = make(chan struct{})
		l.flushDone = make(chan struct{})
		go l.flusher()
	}
	return l, rec, nil
}

// recoverLog scans the log file, truncates a torn tail, validates epoch
// contiguity, fills rec.Records, and leaves l holding an open append
// handle positioned after the last valid record.
func (l *Log) recoverLog(rec *Recovery) error {
	fs := l.opt.FS
	path := joinPath(l.dir, logName)
	data, err := readAll(fs, path)
	switch {
	case errors.Is(err, os.ErrNotExist):
		return l.createLog()
	case err != nil:
		return fmt.Errorf("wal: reading log: %w", err)
	}
	if len(data) < headerLen {
		// A crash during log creation: nothing durable was ever appended
		// (the header is fsync'd before the first Append can run), so
		// rebuild the header rather than refuse.
		rec.TruncatedBytes += int64(len(data))
		if err := fs.Remove(path); err != nil {
			return fmt.Errorf("wal: removing torn log header: %w", err)
		}
		return l.createLog()
	}
	if string(data[:len(logMagic)]) != logMagic {
		return fmt.Errorf("%w: log magic %q, want %q", ErrCorrupt, data[:len(logMagic)], logMagic)
	}
	if v := le32(data[len(logMagic):]); v != logVersion {
		return fmt.Errorf("%w: log version %d, want %d", ErrCorrupt, v, logVersion)
	}

	off := headerLen
	prev := uint64(0)
	for off < len(data) {
		r, n, err := ReadRecord(data[off:])
		if err == nil && l.oldestInLog == 0 {
			l.oldestInLog = r.Epoch
		}
		if errors.Is(err, ErrTorn) {
			rec.TruncatedBytes += int64(len(data) - off)
			l.opt.Logf("wal: truncating torn final record: %d byte(s) at offset %d (%v)", len(data)-off, off, err)
			if terr := fs.Truncate(path, int64(off)); terr != nil {
				return fmt.Errorf("wal: truncating torn tail: %w", terr)
			}
			break
		}
		if err != nil {
			return fmt.Errorf("record at offset %d: %w", off, err)
		}
		if prev != 0 && r.Epoch != prev+1 {
			return fmt.Errorf("%w: epoch gap in log: %d follows %d", ErrCorrupt, r.Epoch, prev)
		}
		prev = r.Epoch
		off += n
		l.records++
		if r.Epoch > rec.CheckpointEpoch {
			rec.Records = append(rec.Records, r)
		}
	}
	if len(rec.Records) > 0 && rec.Records[0].Epoch != rec.CheckpointEpoch+1 {
		return fmt.Errorf("%w: replay gap: checkpoint at epoch %d but oldest log record past it is %d",
			ErrCorrupt, rec.CheckpointEpoch, rec.Records[0].Epoch)
	}
	if prev > l.lastEpoch {
		l.lastEpoch = prev
	}
	l.size = int64(off)
	l.synced = l.size
	f, err := fs.OpenAppend(path)
	if err != nil {
		return fmt.Errorf("wal: opening log for append: %w", err)
	}
	l.f = f
	return nil
}

// createLog writes a fresh header-only log file, durably.
func (l *Log) createLog() error {
	fs := l.opt.FS
	f, err := fs.OpenAppend(joinPath(l.dir, logName))
	if err != nil {
		return fmt.Errorf("wal: creating log: %w", err)
	}
	hdr := make([]byte, 0, headerLen)
	hdr = append(hdr, logMagic...)
	hdr = appendLE32(hdr, logVersion)
	if _, err := f.Write(hdr); err == nil {
		err = f.Sync()
	}
	if err != nil {
		f.Close()
		return fmt.Errorf("wal: writing log header: %w", err)
	}
	if err := fs.SyncDir(l.dir); err != nil {
		f.Close()
		return fmt.Errorf("wal: fsyncing dir: %w", err)
	}
	l.f = f
	l.size = int64(headerLen)
	l.synced = l.size
	return nil
}

// Append writes rec to the log and returns a Commit that blocks until
// the record is durable under the sync policy. The record's epoch must
// be exactly one past the log's newest (checkpoint or record): the log
// is the serialization of the epoch sequence, and a gap here is an
// ordering bug upstream, reported loudly rather than persisted.
//
// Errors are sticky: after any write or fsync failure the log refuses
// every further Append with the original error, because a record it
// could not make durable must not be acknowledged — and later records
// must not leapfrog it.
func (l *Log) Append(rec Record) (Commit, error) {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.err != nil {
		return nil, l.err
	}
	if l.closed {
		return nil, ErrClosed
	}
	if rec.Epoch != l.lastEpoch+1 {
		return nil, fmt.Errorf("wal: out-of-order append: epoch %d after %d", rec.Epoch, l.lastEpoch)
	}
	l.buf = AppendRecord(l.buf[:0], rec)
	n, err := l.f.Write(l.buf)
	l.size += int64(n)
	if err == nil && n != len(l.buf) {
		err = io.ErrShortWrite
	}
	if err != nil {
		l.fail(fmt.Errorf("wal: appending record (epoch %d): %w", rec.Epoch, err))
		return nil, l.err
	}
	l.records++
	l.lastEpoch = rec.Epoch
	if l.oldestInLog == 0 {
		l.oldestInLog = rec.Epoch
	}
	end := l.size
	return func() error { return l.commitWait(end) }, nil
}

// commitWait blocks until the log's synced watermark covers end.
func (l *Log) commitWait(end int64) error {
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.opt.Sync == SyncEveryBatch {
		if l.err == nil && l.synced < end {
			l.syncLocked()
		}
		return l.err
	}
	for l.err == nil && l.synced < end && !l.closed {
		l.cond.Wait()
	}
	if l.err != nil {
		return l.err
	}
	if l.synced < end {
		return ErrClosed
	}
	return nil
}

// syncLocked fsyncs the append handle and advances the watermark.
// Caller holds l.mu.
func (l *Log) syncLocked() {
	start := time.Now()
	err := l.f.Sync()
	l.lastFsync = time.Since(start)
	if l.opt.FsyncObs != nil {
		l.opt.FsyncObs.Observe(l.lastFsync)
	}
	if err != nil {
		l.fail(fmt.Errorf("wal: fsync: %w", err))
		return
	}
	l.synced = l.size
	l.durableEpoch = l.lastEpoch
	l.cond.Broadcast()
	l.bumpLocked()
}

// SetFsyncObs attaches (or replaces) the fsync latency histogram after
// Open — for callers whose metrics registry is built from recovered
// state and therefore after the log itself (NewDurableEngine). Safe
// against concurrent syncs; observations start with the next fsync.
func (l *Log) SetFsyncObs(h *obs.Histogram) {
	l.mu.Lock()
	l.opt.FsyncObs = h
	l.mu.Unlock()
}

// fail records the sticky error and wakes every waiter. Caller holds l.mu.
func (l *Log) fail(err error) {
	if l.err == nil {
		l.err = err
	}
	l.cond.Broadcast()
	l.bumpLocked()
}

// flusher is the SyncEveryInterval group-commit loop.
func (l *Log) flusher() {
	defer close(l.flushDone)
	t := time.NewTicker(l.opt.SyncInterval)
	defer t.Stop()
	for {
		select {
		case <-l.flushStop:
			return
		case <-t.C:
			l.mu.Lock()
			if !l.closed && l.err == nil && l.synced < l.size {
				l.syncLocked()
			}
			l.mu.Unlock()
		}
	}
}

// Checkpoint durably persists a state snapshot for epoch: write writes
// the payload (a kg snapshot, opaque to the log) to a temp file, which
// is fsync'd and atomically renamed into place before the log is
// truncated. Only records newer than the *previous* checkpoint are
// dropped, and only the two newest checkpoints are retained — so
// recovery can always fall back one checkpoint without losing replay
// coverage. A checkpoint at or below the newest one is a no-op (a stale
// compaction racing a newer one).
//
// Safe to call concurrently with Append; the slow payload write happens
// outside the log lock.
func (l *Log) Checkpoint(epoch uint64, write func(w io.Writer) error) error {
	l.mu.Lock()
	if l.err != nil || l.closed {
		err := l.err
		l.mu.Unlock()
		if err == nil {
			err = ErrClosed
		}
		return err
	}
	if epoch <= l.ckptEpoch {
		l.mu.Unlock()
		return nil
	}
	l.mu.Unlock()

	fs := l.opt.FS
	final := joinPath(l.dir, ckptName(epoch))
	tmp := final + tmpSuffix
	f, err := fs.Create(tmp)
	if err != nil {
		return fmt.Errorf("wal: creating checkpoint temp: %w", err)
	}
	err = write(f)
	if err == nil {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fs.Remove(tmp)
		return fmt.Errorf("wal: writing checkpoint (epoch %d): %w", epoch, err)
	}

	start := time.Now()
	l.mu.Lock()
	defer l.mu.Unlock()
	if l.closed || epoch <= l.ckptEpoch {
		l.mu.Unlock()
		_ = fs.Remove(tmp)
		l.mu.Lock()
		return nil
	}
	if err := fs.Rename(tmp, final); err != nil {
		return fmt.Errorf("wal: publishing checkpoint (epoch %d): %w", epoch, err)
	}
	if err := fs.SyncDir(l.dir); err != nil {
		return fmt.Errorf("wal: fsyncing dir after checkpoint: %w", err)
	}
	floor := l.ckptEpoch // the now-second-newest checkpoint: the retention floor
	l.prevCkpt = floor
	l.ckptEpoch = epoch
	if epoch > l.lastEpoch {
		l.lastEpoch = epoch
	}
	// Retention: checkpoints older than the new floor are superseded twice
	// over; their replay coverage is about to leave the log too.
	if names, err := fs.ReadDir(l.dir); err == nil {
		for _, name := range names {
			if e, ok := parseCkptName(name); ok && e < floor {
				_ = fs.Remove(joinPath(l.dir, name))
			}
		}
	}
	if err := l.truncateLocked(floor); err != nil {
		// The checkpoint itself is durable; a failed truncation only leaves
		// extra (harmless) records behind, but the log handle's state is no
		// longer trustworthy — fail sticky and let the operator restart.
		l.fail(fmt.Errorf("wal: truncating log after checkpoint: %w", err))
		return l.err
	}
	l.opt.Logf("wal: checkpoint at epoch %d (%v); log now %d record(s), %d byte(s)",
		epoch, time.Since(start).Round(time.Millisecond), l.records, l.size)
	return nil
}

// truncateLocked rewrites the log to hold only records with epoch >
// floor: copy the surviving frames to a temp file, fsync, rename over
// the log, reopen the append handle. Caller holds l.mu (appends are
// paused for the duration).
func (l *Log) truncateLocked(floor uint64) error {
	fs := l.opt.FS
	path := joinPath(l.dir, logName)
	data, err := readAll(fs, path)
	if err != nil {
		return err
	}
	// The in-memory watermark is authoritative: a concurrent reader (none
	// today) must never see past l.size.
	if int64(len(data)) > l.size {
		data = data[:l.size]
	}
	out := make([]byte, 0, headerLen+len(data)/2)
	out = append(out, logMagic...)
	out = appendLE32(out, logVersion)
	kept := int64(0)
	oldest := uint64(0)
	for off := headerLen; off < len(data); {
		r, n, err := ReadRecord(data[off:])
		if err != nil {
			return fmt.Errorf("reparsing log for truncation at offset %d: %w", off, err)
		}
		if r.Epoch > floor {
			out = append(out, data[off:off+n]...)
			kept++
			if oldest == 0 {
				oldest = r.Epoch
			}
		}
		off += n
	}
	tmp := path + tmpSuffix
	tf, err := fs.Create(tmp)
	if err != nil {
		return err
	}
	_, err = tf.Write(out)
	if err == nil {
		err = tf.Sync()
	}
	if cerr := tf.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		_ = fs.Remove(tmp)
		return err
	}
	if err := l.f.Close(); err != nil {
		return err
	}
	if err := fs.Rename(tmp, path); err != nil {
		return err
	}
	if err := fs.SyncDir(l.dir); err != nil {
		return err
	}
	f, err := fs.OpenAppend(path)
	if err != nil {
		return err
	}
	l.f = f
	l.size = int64(len(out))
	l.synced = l.size
	l.records = kept
	l.oldestInLog = oldest
	// The rewrite fsync'd everything it kept — including records that were
	// awaiting a group-commit tick — and the checkpoint that triggered it
	// is durable, so the durable watermark catches up to the newest epoch.
	l.durableEpoch = l.lastEpoch
	l.cond.Broadcast()
	l.bumpLocked()
	return nil
}

// Stats summarizes the log for observability.
func (l *Log) Stats() Stats {
	l.mu.Lock()
	defer l.mu.Unlock()
	return Stats{
		Bytes:           l.size,
		Records:         l.records,
		LastFsync:       l.lastFsync,
		CheckpointEpoch: l.ckptEpoch,
	}
}

// Err returns the sticky failure, if any.
func (l *Log) Err() error {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.err
}

// Close flushes any unsynced records and closes the log. Idempotent.
func (l *Log) Close() error {
	l.mu.Lock()
	if l.closed {
		l.mu.Unlock()
		return nil
	}
	l.closed = true
	if l.err == nil && l.synced < l.size {
		l.syncLocked()
	}
	err := l.err
	if l.f != nil {
		if cerr := l.f.Close(); err == nil && cerr != nil {
			err = cerr
		}
	}
	l.cond.Broadcast()
	l.bumpLocked()
	l.mu.Unlock()
	if l.flushStop != nil {
		close(l.flushStop)
		<-l.flushDone
	}
	return err
}

// ckptName renders the checkpoint filename for an epoch; fixed-width hex
// keeps lexical and numeric order identical.
func ckptName(epoch uint64) string {
	return fmt.Sprintf("%s%016x%s", ckptPrefix, epoch, ckptSuffix)
}

// parseCkptName extracts the epoch from a checkpoint filename.
func parseCkptName(name string) (uint64, bool) {
	if !strings.HasPrefix(name, ckptPrefix) || !strings.HasSuffix(name, ckptSuffix) {
		return 0, false
	}
	hexa := name[len(ckptPrefix) : len(name)-len(ckptSuffix)]
	if len(hexa) != 16 {
		return 0, false
	}
	e, err := strconv.ParseUint(hexa, 16, 64)
	if err != nil {
		return 0, false
	}
	return e, true
}

// readAll reads name through fs in full.
func readAll(fs FS, name string) ([]byte, error) {
	f, err := fs.Open(name)
	if err != nil {
		return nil, err
	}
	var buf bytes.Buffer
	_, err = io.Copy(&buf, f)
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

func le32(b []byte) uint32 {
	return uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24
}

func appendLE32(b []byte, v uint32) []byte {
	return append(b, byte(v), byte(v>>8), byte(v>>16), byte(v>>24))
}
