package wal

import (
	"bytes"
	"errors"
	"io"
	"reflect"
	"testing"
	"time"
)

// frames renders records for epochs [from, to] as a wire byte stream.
func frames(from, to uint64) []byte {
	var b []byte
	for e := from; e <= to; e++ {
		b = AppendRecord(b, testRecord(e))
	}
	return b
}

// readAllFrames drains a FrameReader, failing the test on anything but
// a clean EOF.
func readAllFrames(t *testing.T, fr *FrameReader) []Record {
	t.Helper()
	var recs []Record
	for {
		rec, err := fr.Next()
		if errors.Is(err, io.EOF) {
			return recs
		}
		if err != nil {
			t.Fatalf("Next: %v", err)
		}
		recs = append(recs, rec)
	}
}

// TestFrameReaderRoundTrip: a stream of frames decodes to exactly the
// records that were encoded, with heartbeats interleaved anywhere being
// counted and skipped.
func TestFrameReaderRoundTrip(t *testing.T) {
	var stream []byte
	stream = append(stream, HeartbeatFrame()...)
	for e := uint64(1); e <= 3; e++ {
		stream = AppendRecord(stream, testRecord(e))
		stream = append(stream, HeartbeatFrame()...)
	}
	fr := NewFrameReader(bytes.NewReader(stream))
	recs := readAllFrames(t, fr)
	if len(recs) != 3 {
		t.Fatalf("decoded %d records, want 3", len(recs))
	}
	for i, rec := range recs {
		if want := testRecord(uint64(i + 1)); !reflect.DeepEqual(rec, want) {
			t.Fatalf("record %d: got %+v, want %+v", i, rec, want)
		}
	}
	if fr.Heartbeats() != 4 {
		t.Fatalf("counted %d heartbeats, want 4", fr.Heartbeats())
	}
}

// TestFrameReaderTorn: a stream cut anywhere inside a frame reports
// ErrTorn — the reconnect signal, distinct from corruption.
func TestFrameReaderTorn(t *testing.T) {
	whole := frames(1, 1)
	for _, cut := range []int{1, 3, 5, len(whole) - 1} {
		fr := NewFrameReader(bytes.NewReader(whole[:cut]))
		if _, err := fr.Next(); !errors.Is(err, ErrTorn) {
			t.Fatalf("cut at %d: got %v, want ErrTorn", cut, err)
		}
	}
	// A cut inside a heartbeat trailer is also torn.
	fr := NewFrameReader(bytes.NewReader(HeartbeatFrame()[:6]))
	if _, err := fr.Next(); !errors.Is(err, ErrTorn) {
		t.Fatalf("cut heartbeat: got %v, want ErrTorn", err)
	}
}

// TestFrameReaderCorrupt: complete-but-invalid frames report ErrCorrupt
// — never a silent skip, never a panic.
func TestFrameReaderCorrupt(t *testing.T) {
	flipped := frames(1, 1)
	flipped[6] ^= 0x01 // payload bit flip caught by the CRC
	zeroLenBadCRC := []byte{0, 0, 0, 0, 9, 9, 9, 9}
	absurdLen := []byte{0xff, 0xff, 0xff, 0xff, 1, 2, 3, 4}
	for name, stream := range map[string][]byte{
		"bit flip":            flipped,
		"empty frame bad crc": zeroLenBadCRC,
		"absurd length":       absurdLen,
	} {
		fr := NewFrameReader(bytes.NewReader(stream))
		if _, err := fr.Next(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("%s: got %v, want ErrCorrupt", name, err)
		}
	}
}

// TestDurableEpochAndChanged: the watermark tracks committed appends and
// every advance closes the previously returned Changed channel.
func TestDurableEpochAndChanged(t *testing.T) {
	l, _, err := Open(t.TempDir(), quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if got := l.DurableEpoch(); got != 0 {
		t.Fatalf("fresh log durable epoch %d, want 0", got)
	}
	ch := l.Changed()
	appendAll(t, l, 1, 1)
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("Changed channel not closed by a committed append")
	}
	if got := l.DurableEpoch(); got != 1 {
		t.Fatalf("durable epoch %d after commit, want 1", got)
	}
	// Close wakes subscribers too, so a stream handler never blocks on a
	// dead log.
	ch = l.Changed()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case <-ch:
	case <-time.After(2 * time.Second):
		t.Fatal("Changed channel not closed by Close")
	}
}

// TestTailSince: the tail is exactly the durable frames past from, and
// the from ≥ durable edge returns empty without error (the handler
// layer turns from > durable into a divergence status).
func TestTailSince(t *testing.T) {
	l, _, err := Open(t.TempDir(), quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 1, 5)
	for _, tc := range []struct {
		from uint64
		want []uint64
	}{
		{0, []uint64{1, 2, 3, 4, 5}},
		{3, []uint64{4, 5}},
		{5, nil},
		{9, nil}, // ahead of durable: still no error from this layer
	} {
		tail, durable, err := l.TailSince(tc.from)
		if err != nil {
			t.Fatalf("TailSince(%d): %v", tc.from, err)
		}
		if durable != 5 {
			t.Fatalf("TailSince(%d) durable %d, want 5", tc.from, durable)
		}
		var got []uint64
		for _, rec := range readAllFrames(t, NewFrameReader(bytes.NewReader(tail))) {
			got = append(got, rec.Epoch)
		}
		if !reflect.DeepEqual(got, tc.want) {
			t.Fatalf("TailSince(%d) epochs %v, want %v", tc.from, got, tc.want)
		}
	}
}

// TestTailSinceGone: once truncation drops the records past from, the
// tail reports ErrGone instead of serving a gapped stream.
func TestTailSinceGone(t *testing.T) {
	l, _, err := Open(t.TempDir(), quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	appendAll(t, l, 1, 5)
	ckpt := func(epoch uint64) {
		t.Helper()
		if err := l.Checkpoint(epoch, func(w io.Writer) error {
			_, werr := io.WriteString(w, ckptPayload(epoch))
			return werr
		}); err != nil {
			t.Fatalf("checkpoint at %d: %v", epoch, err)
		}
	}
	// The first checkpoint sets the retention floor (0: keeps all); the
	// second truncates records ≤ 3 away.
	ckpt(3)
	if _, _, err := l.TailSince(1); err != nil {
		t.Fatalf("TailSince(1) after first checkpoint: %v", err)
	}
	ckpt(5)
	if _, _, err := l.TailSince(1); !errors.Is(err, ErrGone) {
		t.Fatalf("TailSince(1) after truncation: got %v, want ErrGone", err)
	}
	// Streaming from the newest checkpoint's epoch still works: the log
	// retains everything past the previous floor.
	if _, durable, err := l.TailSince(3); err != nil || durable != 5 {
		t.Fatalf("TailSince(3) = durable %d, %v; want 5, nil", durable, err)
	}
}

// TestOpenCheckpoint: absent before the first checkpoint, then serves
// the newest checkpoint's exact payload and epoch.
func TestOpenCheckpoint(t *testing.T) {
	l, _, err := Open(t.TempDir(), quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, _, ok, err := l.OpenCheckpoint(); ok || err != nil {
		t.Fatalf("fresh log OpenCheckpoint = ok %v, err %v; want absent", ok, err)
	}
	appendAll(t, l, 1, 3)
	if err := l.Checkpoint(3, func(w io.Writer) error {
		_, werr := io.WriteString(w, ckptPayload(3))
		return werr
	}); err != nil {
		t.Fatal(err)
	}
	epoch, rc, ok, err := l.OpenCheckpoint()
	if err != nil || !ok {
		t.Fatalf("OpenCheckpoint = ok %v, err %v", ok, err)
	}
	defer rc.Close()
	if epoch != 3 {
		t.Fatalf("checkpoint epoch %d, want 3", epoch)
	}
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != ckptPayload(3) {
		t.Fatalf("checkpoint payload %q, want %q", data, ckptPayload(3))
	}
}

// TestTailSinceGroupCommitCap: under interval sync, bytes appended but
// not yet fsync'd must not appear in a tail — a follower may never hold
// epochs a primary crash would disown.
func TestTailSinceGroupCommitCap(t *testing.T) {
	opt := quietOpt(nil)
	opt.Sync = SyncEveryInterval
	opt.SyncInterval = time.Hour // flusher effectively off: sync only on demand
	l, _, err := Open(t.TempDir(), opt, testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(testRecord(1)); err != nil {
		t.Fatal(err)
	}
	tail, durable, err := l.TailSince(0)
	if err != nil {
		t.Fatal(err)
	}
	if durable != 0 || len(tail) != 0 {
		t.Fatalf("unsynced append leaked into tail: durable %d, %d byte(s)", durable, len(tail))
	}
}
