package wal

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"repro/internal/kg"
)

// FuzzRecord throws arbitrary bytes at the record decoder and checks its
// contracts (mirroring internal/ntriples' FuzzReader): it never panics,
// every failure wraps exactly one of ErrTorn or ErrCorrupt, and a record
// that decodes must re-encode to the exact frame it came from — the
// byte-for-byte round trip recovery's truncation arithmetic relies on.
func FuzzRecord(f *testing.F) {
	valid := AppendRecord(nil, Record{Epoch: 7,
		Adds: []kg.Triple{{S: "Angela Merkel", P: "studied", O: "Physics"}},
		Dels: []kg.Triple{{S: "a", P: "b", O: "c"}}})
	empty := AppendRecord(nil, Record{Epoch: 1})
	seeds := [][]byte{
		valid,
		empty,
		append(append([]byte{}, valid...), empty...), // two frames back to back
		valid[:len(valid)-1],                         // torn CRC
		valid[:5],                                    // torn payload
		valid[:3],                                    // torn length prefix
		{},
		{0, 0, 0, 0, 0, 0, 0, 0},             // empty payload, zero CRC
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3},    // absurd length prefix
		{4, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9, 9}, // bad CRC
		append([]byte{250, 0, 0, 0}, valid[4:]...), // lying length
	}
	// Bit-flip corpus: one flipped bit per region of a valid frame.
	for _, i := range []int{0, 2, 4, 6, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x10
		seeds = append(seeds, mut)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		rec, n, err := ReadRecord(data)
		if err != nil {
			torn, corrupt := errors.Is(err, ErrTorn), errors.Is(err, ErrCorrupt)
			if torn == corrupt {
				t.Fatalf("error is not exactly one of torn/corrupt (torn=%v corrupt=%v): %v", torn, corrupt, err)
			}
			return
		}
		if n < frameOverhead || n > len(data) {
			t.Fatalf("consumed %d bytes of %d", n, len(data))
		}
		back := AppendRecord(nil, rec)
		if string(back) != string(data[:n]) {
			t.Fatalf("decode(%x) = %+v, but re-encoding gives %x", data[:n], rec, back)
		}
	})
}

// FuzzFrameReader throws arbitrary byte streams at the replication
// frame reader — the follower-facing twin of FuzzRecord, sharing its
// seed shapes plus heartbeat-specific ones. Contracts: never panics,
// terminates (every Next consumes ≥1 byte or errors), every failure
// wraps exactly one of ErrTorn/ErrCorrupt, decoded records re-encode to
// frames that appear in order in the input, and heartbeat counting
// never misreads record frames.
func FuzzFrameReader(f *testing.F) {
	valid := AppendRecord(nil, Record{Epoch: 7,
		Adds: []kg.Triple{{S: "Angela Merkel", P: "studied", O: "Physics"}},
		Dels: []kg.Triple{{S: "a", P: "b", O: "c"}}})
	empty := AppendRecord(nil, Record{Epoch: 1})
	hb := HeartbeatFrame()
	seeds := [][]byte{
		valid,
		empty,
		hb,
		append(append([]byte{}, hb...), valid...),    // heartbeat then record
		append(append([]byte{}, valid...), hb...),    // record then heartbeat
		append(append([]byte{}, valid...), empty...), // two frames back to back
		append(append([]byte{}, hb...), hb[:5]...),   // heartbeat then torn heartbeat
		valid[:len(valid)-1],                         // torn CRC
		valid[:5],                                    // torn payload
		valid[:3],                                    // torn length prefix
		{},
		{0, 0, 0, 0, 9, 9, 9, 9},                   // empty payload, nonzero CRC
		{0xff, 0xff, 0xff, 0xff, 1, 2, 3},          // absurd length prefix
		{4, 0, 0, 0, 1, 2, 3, 4, 9, 9, 9, 9},       // bad CRC
		append([]byte{250, 0, 0, 0}, valid[4:]...), // lying length
	}
	for _, i := range []int{0, 2, 4, 6, len(valid) - 2} {
		mut := append([]byte(nil), valid...)
		mut[i] ^= 0x10
		seeds = append(seeds, mut)
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		fr := NewFrameReader(bytes.NewReader(data))
		rest := data
		for {
			rec, err := fr.Next()
			if errors.Is(err, io.EOF) {
				return
			}
			if err != nil {
				torn, corrupt := errors.Is(err, ErrTorn), errors.Is(err, ErrCorrupt)
				if torn == corrupt {
					t.Fatalf("error is not exactly one of torn/corrupt (torn=%v corrupt=%v): %v", torn, corrupt, err)
				}
				return
			}
			// The decoded record's re-encoding must appear at the next frame
			// boundary, past any heartbeats.
			back := AppendRecord(nil, rec)
			for len(rest) >= frameOverhead && bytes.Equal(rest[:frameOverhead], HeartbeatFrame()) {
				rest = rest[frameOverhead:]
			}
			if len(back) > len(rest) || !bytes.Equal(rest[:len(back)], back) {
				t.Fatalf("decoded %+v, but its frame is not next on the stream", rec)
			}
			rest = rest[len(back):]
		}
	})
}
