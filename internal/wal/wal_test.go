package wal

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/kg"
)

// testRecord builds the record for an epoch: distinct content per epoch
// so replay mix-ups surface as data mismatches, not just epoch gaps.
func testRecord(epoch uint64) Record {
	return Record{Epoch: epoch, Adds: []kg.Triple{
		{S: fmt.Sprintf("s%d", epoch), P: "p", O: fmt.Sprintf("o%d", epoch)},
	}}
}

// ckptPayload is the checkpoint body the tests write and validate: the
// stand-in for a kg snapshot, with load as its integrity check.
func ckptPayload(epoch uint64) string { return fmt.Sprintf("state@%d", epoch) }

// testLoad validates a checkpoint payload and reports the epoch it
// restored through got.
func testLoad(got *uint64) func(uint64, io.Reader) error {
	return func(epoch uint64, payload io.Reader) error {
		data, err := io.ReadAll(payload)
		if err != nil {
			return err
		}
		if string(data) != ckptPayload(epoch) {
			return fmt.Errorf("checkpoint payload %q does not validate", data)
		}
		if got != nil {
			*got = epoch
		}
		return nil
	}
}

func quietOpt(fs FS) Options {
	return Options{FS: fs, Logf: func(string, ...any) {}}
}

// appendAll appends and commits records for epochs [from, to].
func appendAll(t *testing.T, l *Log, from, to uint64) {
	t.Helper()
	for e := from; e <= to; e++ {
		commit, err := l.Append(testRecord(e))
		if err != nil {
			t.Fatalf("append epoch %d: %v", e, err)
		}
		if err := commit(); err != nil {
			t.Fatalf("commit epoch %d: %v", e, err)
		}
	}
}

// TestLogAppendRecover: a fresh log accepts an epoch-contiguous sequence
// and a reopen returns exactly the committed records.
func TestLogAppendRecover(t *testing.T) {
	dir := t.TempDir()
	l, rec, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rec.HasCheckpoint || len(rec.Records) != 0 || rec.TruncatedBytes != 0 {
		t.Fatalf("fresh dir recovered %+v", rec)
	}
	appendAll(t, l, 1, 5)
	st := l.Stats()
	if st.Records != 5 || st.Bytes <= int64(headerLen) || st.LastFsync <= 0 {
		t.Fatalf("stats after 5 appends: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	l2, rec2, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	if len(rec2.Records) != 5 {
		t.Fatalf("recovered %d records, want 5", len(rec2.Records))
	}
	for i, r := range rec2.Records {
		if want := testRecord(uint64(i + 1)); !reflect.DeepEqual(r, want) {
			t.Fatalf("record %d: got %+v, want %+v", i, r, want)
		}
	}
	// Appends resume exactly after the recovered tail.
	if _, err := l2.Append(testRecord(5)); err == nil {
		t.Fatal("re-appending epoch 5 after recovery succeeded")
	}
}

// TestLogAppendOutOfOrder: an epoch gap at append time is an upstream
// ordering bug and must be refused, not persisted.
func TestLogAppendOutOfOrder(t *testing.T) {
	l, _, err := Open(t.TempDir(), quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.Append(testRecord(2)); err == nil {
		t.Fatal("append at epoch 2 on a fresh log succeeded")
	}
	appendAll(t, l, 1, 1)
	if _, err := l.Append(testRecord(3)); err == nil {
		t.Fatal("append skipping epoch 2 succeeded")
	}
}

// TestLogGroupCommit: under SyncEveryInterval, concurrent commits all
// return durable, and a reopen sees every acknowledged record.
func TestLogGroupCommit(t *testing.T) {
	dir := t.TempDir()
	opt := quietOpt(nil)
	opt.Sync = SyncEveryInterval
	opt.SyncInterval = time.Millisecond
	l, _, err := Open(dir, opt, testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	const n = 32
	commits := make([]Commit, 0, n)
	for e := uint64(1); e <= n; e++ {
		c, err := l.Append(testRecord(e))
		if err != nil {
			t.Fatal(err)
		}
		commits = append(commits, c)
	}
	var wg sync.WaitGroup
	for i, c := range commits {
		wg.Add(1)
		go func(i int, c Commit) {
			defer wg.Done()
			if err := c(); err != nil {
				t.Errorf("commit %d: %v", i, err)
			}
		}(i, c)
	}
	wg.Wait()
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	_, rec, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != n {
		t.Fatalf("recovered %d of %d group-committed records", len(rec.Records), n)
	}
}

// TestLogTornTail: bytes beyond the last complete frame are truncated on
// open — once — and the complete records all survive.
func TestLogTornTail(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 3)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, logName)
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-3); err != nil {
		t.Fatal(err)
	}

	l2, rec, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rec.TruncatedBytes == 0 {
		t.Fatal("torn tail not reported")
	}
	if len(rec.Records) != 2 {
		t.Fatalf("recovered %d records, want 2", len(rec.Records))
	}
	// The truncation is durable: the log accepts the re-append of epoch 3
	// and a further reopen is clean.
	appendAll(t, l2, 3, 3)
	l2.Close()
	_, rec3, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	if rec3.TruncatedBytes != 0 || len(rec3.Records) != 3 {
		t.Fatalf("second reopen: %+v", rec3)
	}
}

// TestLogMidCorruption: a complete frame that fails its checksum refuses
// startup with ErrCorrupt — whether mid-log or final.
func TestLogMidCorruption(t *testing.T) {
	for _, flipInLast := range []bool{false, true} {
		dir := t.TempDir()
		l, _, err := Open(dir, quietOpt(nil), testLoad(nil))
		if err != nil {
			t.Fatal(err)
		}
		appendAll(t, l, 1, 3)
		size := l.Stats().Bytes
		l.Close()
		path := filepath.Join(dir, logName)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := headerLen + 6 // inside the first record's payload
		if flipInLast {
			off = int(size) - 6 // inside the last record's frame
		}
		data[off] ^= 0x20
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		if _, _, err := Open(dir, quietOpt(nil), testLoad(nil)); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("flipInLast=%v: got %v, want ErrCorrupt", flipInLast, err)
		}
	}
}

// TestLogBadHeader: a log whose magic or version is wrong is foreign
// data; refuse rather than truncate it away.
func TestLogBadHeader(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, logName), []byte("NOTAWAL\x00plus some data"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, quietOpt(nil), testLoad(nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestLogEpochGap: records whose epochs are not contiguous mean a
// missing (acknowledged) record — corrupt, not replayable.
func TestLogEpochGap(t *testing.T) {
	dir := t.TempDir()
	var buf []byte
	buf = append(buf, logMagic...)
	buf = appendLE32(buf, logVersion)
	buf = AppendRecord(buf, testRecord(1))
	buf = AppendRecord(buf, testRecord(3))
	if err := os.WriteFile(filepath.Join(dir, logName), buf, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, quietOpt(nil), testLoad(nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// writeCheckpoint drives l.Checkpoint with the canonical test payload.
func writeCheckpoint(t *testing.T, l *Log, epoch uint64) {
	t.Helper()
	if err := l.Checkpoint(epoch, func(w io.Writer) error {
		_, err := io.WriteString(w, ckptPayload(epoch))
		return err
	}); err != nil {
		t.Fatalf("checkpoint at %d: %v", epoch, err)
	}
}

// dirCkpts lists the checkpoint epochs present in dir, ascending.
func dirCkpts(t *testing.T, dir string) []uint64 {
	t.Helper()
	names, err := OSFS().ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []uint64
	for _, n := range names {
		if e, ok := parseCkptName(n); ok {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// TestCheckpointLifecycle: checkpoints truncate the log behind the
// previous checkpoint and retain exactly the two newest snapshots, so
// recovery can always fall back one.
func TestCheckpointLifecycle(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 5)
	writeCheckpoint(t, l, 3)
	// First checkpoint: the truncation floor is still 0 (no previous
	// checkpoint), so every record stays replayable under a fallback.
	if st := l.Stats(); st.Records != 5 || st.CheckpointEpoch != 3 {
		t.Fatalf("after first checkpoint: %+v", st)
	}
	writeCheckpoint(t, l, 5)
	// Second checkpoint: floor is 3; records 1-3 leave the log, both
	// snapshots stay.
	if st := l.Stats(); st.Records != 2 || st.CheckpointEpoch != 5 {
		t.Fatalf("after second checkpoint: %+v", st)
	}
	if got := dirCkpts(t, dir); !reflect.DeepEqual(got, []uint64{3, 5}) {
		t.Fatalf("checkpoints on disk: %v, want [3 5]", got)
	}
	appendAll(t, l, 6, 8)
	writeCheckpoint(t, l, 7)
	if got := dirCkpts(t, dir); !reflect.DeepEqual(got, []uint64{5, 7}) {
		t.Fatalf("checkpoints on disk: %v, want [5 7]", got)
	}
	// Stale checkpoints are no-ops.
	writeCheckpoint(t, l, 6)
	if st := l.Stats(); st.CheckpointEpoch != 7 {
		t.Fatalf("stale checkpoint moved the epoch: %+v", st)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	var loaded uint64
	_, rec, err := Open(dir, quietOpt(nil), testLoad(&loaded))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 7 || !rec.HasCheckpoint || rec.CheckpointEpoch != 7 {
		t.Fatalf("recovered from checkpoint %d (%+v), want 7", loaded, rec)
	}
	if len(rec.Records) != 1 || rec.Records[0].Epoch != 8 {
		t.Fatalf("replay tail %+v, want just epoch 8", rec.Records)
	}
}

// TestCheckpointFallback: an unreadable newest checkpoint is skipped
// (and removed) in favor of the older one, whose replay coverage the
// log still holds; when every checkpoint is unreadable, refuse.
func TestCheckpointFallback(t *testing.T) {
	dir := t.TempDir()
	l, _, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 6)
	writeCheckpoint(t, l, 4)
	writeCheckpoint(t, l, 6)
	l.Close()
	// Corrupt the newest snapshot.
	if err := os.WriteFile(filepath.Join(dir, ckptName(6)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}

	var loaded uint64
	_, rec, err := Open(dir, quietOpt(nil), testLoad(&loaded))
	if err != nil {
		t.Fatal(err)
	}
	if loaded != 4 || rec.SkippedCheckpoints != 1 {
		t.Fatalf("loaded %d (skipped %d), want 4 (skipped 1)", loaded, rec.SkippedCheckpoints)
	}
	if len(rec.Records) != 2 || rec.Records[0].Epoch != 5 {
		t.Fatalf("replay tail %+v, want epochs 5-6", rec.Records)
	}
	if got := dirCkpts(t, dir); !reflect.DeepEqual(got, []uint64{4}) {
		t.Fatalf("bad checkpoint not removed: %v", got)
	}

	// All checkpoints unreadable: startup must refuse, not silently serve
	// the bootstrap state minus acknowledged batches.
	if err := os.WriteFile(filepath.Join(dir, ckptName(4)), []byte("garbage"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, _, err := Open(dir, quietOpt(nil), testLoad(nil)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("got %v, want ErrCorrupt", err)
	}
}

// TestLogStickyError: after an injected write failure, the failing and
// every subsequent Append return an error — no record can leapfrog a
// lost one — and recovery from the surviving bytes truncates the torn
// frame.
func TestLogStickyError(t *testing.T) {
	dir := t.TempDir()
	ffs := NewFaultFS(nil)
	l, _, err := Open(dir, quietOpt(ffs), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 2)
	ffs.CrashAfterWriteBytes(5) // budget counts from arming: 5 bytes into the next record
	if _, err := l.Append(testRecord(3)); !errors.Is(err, ErrInjected) {
		t.Fatalf("crashing append returned %v", err)
	}
	if _, err := l.Append(testRecord(3)); err == nil {
		t.Fatal("append after sticky failure succeeded")
	}
	if l.Err() == nil {
		t.Fatal("no sticky error recorded")
	}
	l.Close()

	_, rec, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	if len(rec.Records) != 2 || rec.TruncatedBytes != 5 {
		t.Fatalf("recovered %d records, truncated %d bytes; want 2 and 5", len(rec.Records), rec.TruncatedBytes)
	}
}

// crashScenario is one fault-injection schedule for the recovery matrix.
type crashScenario struct {
	name string
	arm  func(*FaultFS)
}

func crashScenarios() []crashScenario {
	out := []crashScenario{
		{"sync-err-first", func(f *FaultFS) { f.CrashOnSync(1) }}, // sync 0 is the header's
		{"sync-err-later", func(f *FaultFS) { f.CrashOnSync(4) }},
		{"rename-before", func(f *FaultFS) { f.CrashBeforeRename(0) }},
		{"rename-after", func(f *FaultFS) { f.CrashAfterRename(0) }},
	}
	// Budgets chosen to land in the header, the first record, mid-stream,
	// near the tail, and inside a truncation rewrite (the whole workload
	// writes ~460 bytes).
	for _, budget := range []int64{12, 40, 120, 250, 420} {
		b := budget
		out = append(out, crashScenario{
			fmt.Sprintf("short-write-%d", b),
			func(f *FaultFS) { f.CrashAfterWriteBytes(b) },
		})
	}
	return out
}

// TestCrashRecoveryMatrix kills a checkpointing append workload at every
// injection point and proves the durability contract from the surviving
// bytes: every acknowledged epoch is recovered, the replay tail is
// contiguous, and the recovered records are exactly the workload's.
func TestCrashRecoveryMatrix(t *testing.T) {
	for _, sc := range crashScenarios() {
		t.Run(sc.name, func(t *testing.T) {
			dir := t.TempDir()
			ffs := NewFaultFS(nil)
			sc.arm(ffs)

			var acked []uint64
			func() { // the doomed process
				l, rec, err := Open(dir, quietOpt(ffs), testLoad(nil))
				if err != nil {
					return // died during open: nothing acknowledged
				}
				if len(rec.Records) != 0 || rec.HasCheckpoint {
					t.Fatalf("fresh dir recovered %+v", rec)
				}
				for e := uint64(1); e <= 12; e++ {
					commit, err := l.Append(testRecord(e))
					if err != nil {
						return
					}
					if commit() != nil {
						return
					}
					acked = append(acked, e)
					if e%4 == 0 {
						// A checkpoint failure is not fatal to the workload —
						// the log still covers everything — so keep going
						// unless the log itself went sticky.
						_ = l.Checkpoint(e, func(w io.Writer) error {
							_, werr := io.WriteString(w, ckptPayload(e))
							return werr
						})
						if l.Err() != nil {
							return
						}
					}
				}
			}()
			if !ffs.Crashed() {
				t.Fatalf("workload finished without hitting the %s fault", sc.name)
			}

			// Restart on the surviving bytes with a healthy filesystem.
			var loaded uint64
			l2, rec, err := Open(dir, quietOpt(nil), testLoad(&loaded))
			if err != nil {
				t.Fatalf("recovery failed: %v", err)
			}
			defer l2.Close()
			state := loaded
			for i, r := range rec.Records {
				if r.Epoch != loaded+uint64(i)+1 {
					t.Fatalf("replay tail not contiguous from %d: %+v", loaded, rec.Records)
				}
				if want := testRecord(r.Epoch); !reflect.DeepEqual(r, want) {
					t.Fatalf("recovered record %+v, want %+v", r, want)
				}
				state = r.Epoch
			}
			for _, e := range acked {
				if e > state {
					t.Fatalf("acknowledged epoch %d lost: recovered only to %d (checkpoint %d, %d replayed)",
						e, state, loaded, len(rec.Records))
				}
			}
			// And the recovered log keeps working.
			commit, err := l2.Append(testRecord(state + 1))
			if err != nil {
				t.Fatal(err)
			}
			if err := commit(); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestOpenSweepsTempFiles: leftover temp files from in-flight writes are
// removed on open, never mistaken for state.
func TestOpenSweepsTempFiles(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{ckptName(9) + tmpSuffix, logName + tmpSuffix} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("half-written"), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	l, rec, err := Open(dir, quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if rec.HasCheckpoint || len(rec.Records) != 0 {
		t.Fatalf("temp files leaked into recovery: %+v", rec)
	}
	names, err := OSFS().ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, n := range names {
		if strings.HasSuffix(n, tmpSuffix) {
			t.Fatalf("temp file %s survived open", n)
		}
	}
}

// TestLogClosedAppend: a closed log refuses appends with ErrClosed.
func TestLogClosedAppend(t *testing.T) {
	l, _, err := Open(t.TempDir(), quietOpt(nil), testLoad(nil))
	if err != nil {
		t.Fatal(err)
	}
	appendAll(t, l, 1, 1)
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil { // idempotent
		t.Fatal(err)
	}
	if _, err := l.Append(testRecord(2)); !errors.Is(err, ErrClosed) {
		t.Fatalf("append on closed log: %v", err)
	}
}
