package triplestore

import (
	"fmt"
	"math/rand"
	"testing"
	"testing/quick"
)

func buildSample() *Store {
	b := NewBuilder(8)
	b.Add("merkel", "leaderOf", "germany")
	b.Add("obama", "leaderOf", "usa")
	b.Add("merkel", "studied", "physics")
	b.Add("obama", "studied", "law")
	b.Add("putin", "leaderOf", "russia")
	b.Add("obama", "hasChild", "malia")
	return b.Freeze()
}

func TestCounts(t *testing.T) {
	s := buildSample()
	if s.NumTriples() != 6 {
		t.Fatalf("NumTriples = %d, want 6", s.NumTriples())
	}
	if s.NumPredicates() != 3 {
		t.Fatalf("NumPredicates = %d, want 3", s.NumPredicates())
	}
	leaderOf := s.Predicates().Lookup("leaderOf")
	if got := s.PredicateCount(leaderOf); got != 3 {
		t.Fatalf("PredicateCount(leaderOf) = %d, want 3", got)
	}
}

func TestDeduplicate(t *testing.T) {
	b := NewBuilder(4)
	b.Add("a", "p", "b")
	b.Add("a", "p", "b")
	b.Add("a", "p", "c")
	s := b.Freeze()
	if s.NumTriples() != 2 {
		t.Fatalf("NumTriples = %d, want 2 after dedup", s.NumTriples())
	}
}

func TestMatchSubjectBound(t *testing.T) {
	s := buildSample()
	obama := s.Nodes().Lookup("obama")
	got := s.Match(obama, Wildcard, Wildcard)
	if len(got) != 3 {
		t.Fatalf("match (obama,?,?) returned %d triples, want 3", len(got))
	}
	for _, tr := range got {
		if tr.S != obama {
			t.Fatalf("triple %v has wrong subject", tr)
		}
	}
}

func TestMatchSubjectPredicateBound(t *testing.T) {
	s := buildSample()
	obama := s.Nodes().Lookup("obama")
	studied := s.Predicates().Lookup("studied")
	got := s.Match(obama, studied, Wildcard)
	if len(got) != 1 {
		t.Fatalf("match (obama,studied,?) = %d, want 1", len(got))
	}
	if s.Nodes().String(got[0].O) != "law" {
		t.Fatalf("object = %q, want law", s.Nodes().String(got[0].O))
	}
}

func TestMatchPredicateBound(t *testing.T) {
	s := buildSample()
	leaderOf := s.Predicates().Lookup("leaderOf")
	got := s.Match(Wildcard, leaderOf, Wildcard)
	if len(got) != 3 {
		t.Fatalf("match (?,leaderOf,?) = %d, want 3", len(got))
	}
}

func TestMatchObjectBound(t *testing.T) {
	s := buildSample()
	physics := s.Nodes().Lookup("physics")
	got := s.Match(Wildcard, Wildcard, physics)
	if len(got) != 1 {
		t.Fatalf("match (?,?,physics) = %d, want 1", len(got))
	}
	if s.Nodes().String(got[0].S) != "merkel" {
		t.Fatalf("subject = %q, want merkel", s.Nodes().String(got[0].S))
	}
}

func TestMatchFullyBound(t *testing.T) {
	s := buildSample()
	merkel := s.Nodes().Lookup("merkel")
	studied := s.Predicates().Lookup("studied")
	physics := s.Nodes().Lookup("physics")
	if n := s.CountMatch(merkel, studied, physics); n != 1 {
		t.Fatalf("exact match count = %d, want 1", n)
	}
	law := s.Nodes().Lookup("law")
	if n := s.CountMatch(merkel, studied, law); n != 0 {
		t.Fatalf("absent triple count = %d, want 0", n)
	}
}

func TestMatchSubjectObjectBound(t *testing.T) {
	s := buildSample()
	merkel := s.Nodes().Lookup("merkel")
	germany := s.Nodes().Lookup("germany")
	got := s.Match(merkel, Wildcard, germany)
	if len(got) != 1 {
		t.Fatalf("match (merkel,?,germany) = %d, want 1", len(got))
	}
}

func TestMatchAll(t *testing.T) {
	s := buildSample()
	if n := s.CountMatch(Wildcard, Wildcard, Wildcard); n != 6 {
		t.Fatalf("full scan count = %d, want 6", n)
	}
}

func TestForEachMatchEarlyStop(t *testing.T) {
	s := buildSample()
	n := 0
	s.ForEachMatch(Wildcard, Wildcard, Wildcard, func(Triple) bool {
		n++
		return n < 2
	})
	if n != 2 {
		t.Fatalf("early stop visited %d, want 2", n)
	}
}

func TestEmptyStore(t *testing.T) {
	s := NewBuilder(0).Freeze()
	if s.NumTriples() != 0 || s.NumNodes() != 0 {
		t.Fatal("empty builder should freeze to empty store")
	}
	if got := s.Match(0, 0, 0); len(got) != 0 {
		t.Fatalf("match on empty store = %v", got)
	}
	var zero Store
	if zero.NumNodes() != 0 || zero.NumPredicates() != 0 {
		t.Fatal("zero-value store should report empty dictionaries")
	}
}

func TestDescribe(t *testing.T) {
	s := buildSample()
	tr := s.Match(s.Nodes().Lookup("putin"), Wildcard, Wildcard)[0]
	if got := s.Describe(tr); got != "putin --leaderOf--> russia" {
		t.Fatalf("Describe = %q", got)
	}
}

// TestPatternsAgainstScan cross-checks every index-backed pattern against a
// brute-force scan over randomly generated stores.
func TestPatternsAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 25; trial++ {
		b := NewBuilder(64)
		nNodes := 1 + rng.Intn(12)
		nPreds := 1 + rng.Intn(4)
		nTriples := rng.Intn(120)
		for i := 0; i < nTriples; i++ {
			b.AddIDs(
				b.Node(nodeName(rng.Intn(nNodes))),
				b.Predicate(predName(rng.Intn(nPreds))),
				b.Node(nodeName(rng.Intn(nNodes))),
			)
		}
		s := b.Freeze()
		all := s.Triples()

		check := func(sub, pred, obj uint32) {
			want := 0
			for _, tr := range all {
				if (sub == Wildcard || tr.S == sub) &&
					(pred == Wildcard || tr.P == pred) &&
					(obj == Wildcard || tr.O == obj) {
					want++
				}
			}
			if got := s.CountMatch(sub, pred, obj); got != want {
				t.Fatalf("trial %d pattern (%d,%d,%d): got %d want %d",
					trial, sub, pred, obj, got, want)
			}
		}

		for probe := 0; probe < 40; probe++ {
			sub, pred, obj := Wildcard, Wildcard, Wildcard
			if rng.Intn(2) == 0 {
				sub = uint32(rng.Intn(nNodes + 1)) // may be out of range
			}
			if rng.Intn(2) == 0 {
				pred = uint32(rng.Intn(nPreds + 1))
			}
			if rng.Intn(2) == 0 {
				obj = uint32(rng.Intn(nNodes + 1))
			}
			check(sub, pred, obj)
		}
	}
}

func nodeName(i int) string { return string(rune('a' + i)) }
func predName(i int) string { return string(rune('p' + i)) }

// TestTripleOrderProperty: Less is a strict weak ordering consistent with
// lexicographic comparison.
func TestTripleOrderProperty(t *testing.T) {
	f := func(a, b Triple) bool {
		if a == b {
			return !a.Less(b) && !b.Less(a)
		}
		return a.Less(b) != b.Less(a)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestTriplesSortedAfterFreeze(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	b := NewBuilder(0)
	// Intern terms first so every ID used below is valid.
	for i := 0; i < 40; i++ {
		b.Node(fmt.Sprintf("n%d", i))
	}
	for i := 0; i < 5; i++ {
		b.Predicate(fmt.Sprintf("p%d", i))
	}
	for i := 0; i < 500; i++ {
		b.AddIDs(uint32(rng.Intn(40)), uint32(rng.Intn(5)), uint32(rng.Intn(40)))
	}
	s := b.Freeze()
	ts := s.Triples()
	for i := 1; i < len(ts); i++ {
		if ts[i].Less(ts[i-1]) {
			t.Fatalf("triples not sorted at %d: %v then %v", i, ts[i-1], ts[i])
		}
		if ts[i] == ts[i-1] {
			t.Fatalf("duplicate triple survived freeze at %d: %v", i, ts[i])
		}
	}
}

func BenchmarkMatchSubject(b *testing.B) {
	bld := NewBuilder(1 << 16)
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 1<<16; i++ {
		bld.AddIDs(uint32(rng.Intn(4096)), uint32(rng.Intn(16)), uint32(rng.Intn(4096)))
	}
	s := bld.Freeze()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.CountMatch(uint32(i&4095), Wildcard, Wildcard)
	}
}

func BenchmarkFreeze(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	triples := make([]Triple, 1<<15)
	for i := range triples {
		triples[i] = Triple{uint32(rng.Intn(4096)), uint32(rng.Intn(16)), uint32(rng.Intn(4096))}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(len(triples))
		for _, tr := range triples {
			bld.AddIDs(tr.S, tr.P, tr.O)
		}
		bld.Freeze()
	}
}
