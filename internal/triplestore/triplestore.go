// Package triplestore implements an embedded, dictionary-encoded RDF-style
// triple store with the three canonical permutation indexes (SPO, POS, OSP).
//
// The paper's reference implementation keeps its knowledge graphs in an
// Apache Jena triple store and performs traversals against it. This package
// is the equivalent substrate: it stores (subject, predicate, object)
// triples once, dictionary-encodes all terms as dense uint32 IDs, and
// answers the eight triple patterns (any combination of bound/unbound S, P,
// O) by binary search over sorted permutations.
//
// A Store is built through a Builder and is immutable (and therefore safe
// for concurrent readers) after Freeze.
package triplestore

import (
	"fmt"
	"sort"

	"repro/internal/dict"
)

// Triple is a dictionary-encoded statement. S and O index the node
// dictionary, P indexes the predicate dictionary.
type Triple struct {
	S, P, O uint32
}

// Less orders triples lexicographically by (S, P, O).
func (t Triple) Less(u Triple) bool {
	if t.S != u.S {
		return t.S < u.S
	}
	if t.P != u.P {
		return t.P < u.P
	}
	return t.O < u.O
}

// Store is an immutable triple store. Zero value is an empty store; use a
// Builder to create populated stores.
type Store struct {
	nodes *dict.Dict
	preds *dict.Dict

	// triples is sorted in SPO order and deduplicated; pos and osp are
	// permutations of indexes into triples sorted in (P,O,S) and (O,S,P)
	// order respectively.
	triples []Triple
	pos     []uint32
	osp     []uint32

	predCount []int // triples per predicate, indexed by predicate ID
}

// Builder accumulates triples before freezing them into a Store.
type Builder struct {
	nodes   *dict.Dict
	preds   *dict.Dict
	triples []Triple
}

// NewBuilder returns a Builder with capacity hints for n triples.
func NewBuilder(n int) *Builder {
	return &Builder{
		nodes:   dict.New(n / 4),
		preds:   dict.New(16),
		triples: make([]Triple, 0, n),
	}
}

// Node interns a node name and returns its ID.
func (b *Builder) Node(name string) uint32 { return b.nodes.Put(name) }

// Predicate interns a predicate name and returns its ID.
func (b *Builder) Predicate(name string) uint32 { return b.preds.Put(name) }

// Add records the triple (s, p, o) given as strings.
func (b *Builder) Add(s, p, o string) {
	b.AddIDs(b.nodes.Put(s), b.preds.Put(p), b.nodes.Put(o))
}

// AddIDs records a triple of already-interned IDs.
func (b *Builder) AddIDs(s, p, o uint32) {
	b.triples = append(b.triples, Triple{S: s, P: p, O: o})
}

// Len returns the number of triples added so far (before deduplication).
func (b *Builder) Len() int { return len(b.triples) }

// Freeze sorts, deduplicates, and indexes the triples, returning the Store.
// The Builder must not be used afterwards.
func (b *Builder) Freeze() *Store {
	ts := b.triples
	sort.Slice(ts, func(i, j int) bool { return ts[i].Less(ts[j]) })
	// Deduplicate in place.
	w := 0
	for i, t := range ts {
		if i == 0 || t != ts[i-1] {
			ts[w] = t
			w++
		}
	}
	ts = ts[:w]

	// Size predCount to cover every predicate ID that actually occurs,
	// even ones injected via AddIDs without dictionary interning.
	maxPred := b.preds.Len()
	for _, t := range ts {
		if int(t.P) >= maxPred {
			maxPred = int(t.P) + 1
		}
	}
	s := &Store{
		nodes:     b.nodes,
		preds:     b.preds,
		triples:   ts,
		pos:       make([]uint32, len(ts)),
		osp:       make([]uint32, len(ts)),
		predCount: make([]int, maxPred),
	}
	for i := range s.pos {
		s.pos[i] = uint32(i)
		s.osp[i] = uint32(i)
	}
	sort.Slice(s.pos, func(i, j int) bool {
		a, c := ts[s.pos[i]], ts[s.pos[j]]
		if a.P != c.P {
			return a.P < c.P
		}
		if a.O != c.O {
			return a.O < c.O
		}
		return a.S < c.S
	})
	sort.Slice(s.osp, func(i, j int) bool {
		a, c := ts[s.osp[i]], ts[s.osp[j]]
		if a.O != c.O {
			return a.O < c.O
		}
		if a.S != c.S {
			return a.S < c.S
		}
		return a.P < c.P
	})
	for _, t := range ts {
		s.predCount[t.P]++
	}
	b.triples = nil
	return s
}

// NumTriples returns the number of distinct triples.
func (s *Store) NumTriples() int { return len(s.triples) }

// NumNodes returns the number of distinct node terms.
func (s *Store) NumNodes() int {
	if s.nodes == nil {
		return 0
	}
	return s.nodes.Len()
}

// NumPredicates returns the number of distinct predicates.
func (s *Store) NumPredicates() int {
	if s.preds == nil {
		return 0
	}
	return s.preds.Len()
}

// Nodes returns the node dictionary.
func (s *Store) Nodes() *dict.Dict { return s.nodes }

// Predicates returns the predicate dictionary.
func (s *Store) Predicates() *dict.Dict { return s.preds }

// PredicateCount returns the number of triples whose predicate is p.
func (s *Store) PredicateCount(p uint32) int {
	if int(p) >= len(s.predCount) {
		return 0
	}
	return s.predCount[p]
}

// Triples returns the underlying sorted triple slice. Callers must treat it
// as read-only.
func (s *Store) Triples() []Triple { return s.triples }

// Wildcard marks an unbound pattern position.
const Wildcard = ^uint32(0)

// Match returns all triples matching the pattern, where Wildcard leaves a
// position unbound. The result is freshly allocated.
func (s *Store) Match(sub, pred, obj uint32) []Triple {
	var out []Triple
	s.ForEachMatch(sub, pred, obj, func(t Triple) bool {
		out = append(out, t)
		return true
	})
	return out
}

// CountMatch returns the number of triples matching the pattern without
// materializing them.
func (s *Store) CountMatch(sub, pred, obj uint32) int {
	n := 0
	s.ForEachMatch(sub, pred, obj, func(Triple) bool {
		n++
		return true
	})
	return n
}

// ForEachMatch streams triples matching the pattern to fn; iteration stops
// early if fn returns false. Patterns are answered from whichever index
// yields a contiguous range:
//
//	S bound           -> SPO
//	P bound, S free   -> POS
//	O bound, S,P free -> OSP
//	S,O bound, P free -> OSP (range on O then filter S; the OSP order makes
//	                          the S filter a contiguous sub-range)
func (s *Store) ForEachMatch(sub, pred, obj uint32, fn func(Triple) bool) {
	switch {
	case sub != Wildcard:
		lo, hi := s.spoRange(sub, pred)
		for i := lo; i < hi; i++ {
			t := s.triples[i]
			if obj != Wildcard && t.O != obj {
				continue
			}
			if !fn(t) {
				return
			}
		}
	case pred != Wildcard:
		lo, hi := s.posRange(pred, obj)
		for i := lo; i < hi; i++ {
			t := s.triples[s.pos[i]]
			if !fn(t) {
				return
			}
		}
	case obj != Wildcard:
		lo, hi := s.ospRange(obj)
		for i := lo; i < hi; i++ {
			t := s.triples[s.osp[i]]
			if !fn(t) {
				return
			}
		}
	default:
		for _, t := range s.triples {
			if !fn(t) {
				return
			}
		}
	}
}

// spoRange returns the half-open range of s.triples with subject sub and,
// if pred != Wildcard, predicate pred.
func (s *Store) spoRange(sub, pred uint32) (int, int) {
	lo := sort.Search(len(s.triples), func(i int) bool {
		t := s.triples[i]
		if t.S != sub {
			return t.S >= sub
		}
		if pred == Wildcard {
			return true
		}
		return t.P >= pred
	})
	hi := sort.Search(len(s.triples), func(i int) bool {
		t := s.triples[i]
		if t.S != sub {
			return t.S > sub
		}
		if pred == Wildcard {
			return false
		}
		return t.P > pred
	})
	return lo, hi
}

// posRange returns the half-open range of s.pos with predicate pred and,
// if obj != Wildcard, object obj.
func (s *Store) posRange(pred, obj uint32) (int, int) {
	lo := sort.Search(len(s.pos), func(i int) bool {
		t := s.triples[s.pos[i]]
		if t.P != pred {
			return t.P >= pred
		}
		if obj == Wildcard {
			return true
		}
		return t.O >= obj
	})
	hi := sort.Search(len(s.pos), func(i int) bool {
		t := s.triples[s.pos[i]]
		if t.P != pred {
			return t.P > pred
		}
		if obj == Wildcard {
			return false
		}
		return t.O > obj
	})
	return lo, hi
}

// ospRange returns the half-open range of s.osp with object obj.
func (s *Store) ospRange(obj uint32) (int, int) {
	lo := sort.Search(len(s.osp), func(i int) bool {
		return s.triples[s.osp[i]].O >= obj
	})
	hi := sort.Search(len(s.osp), func(i int) bool {
		return s.triples[s.osp[i]].O > obj
	})
	return lo, hi
}

// Describe returns a human-readable rendering of triple t.
func (s *Store) Describe(t Triple) string {
	return fmt.Sprintf("%s --%s--> %s",
		s.nodes.StringOr(t.S, "?"),
		s.preds.StringOr(t.P, "?"),
		s.nodes.StringOr(t.O, "?"))
}
