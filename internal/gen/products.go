package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/kg"
)

// ProductsDataset is the e-commerce scenario the paper's introduction
// motivates: "a user compares two cameras and wants to know what are the
// special features of these two with respect to all the others".
type ProductsDataset struct {
	Graph *kg.Graph
	// Query is the pair of compared cameras.
	Query []kg.NodeID
}

// Products builds a product catalog: cameras with brand, sensor, mount,
// and feature edges plus accessory and review structure. The two query
// cameras share a distinctive feature combination (in-body stabilization
// and weather sealing) that the rest of their price segment lacks.
func Products(seed int64) *ProductsDataset {
	rng := rand.New(rand.NewSource(seed))
	b := kg.NewBuilder(8192)

	brands := []string{"Nikon", "Canon", "Sony", "Fuji", "Olympus", "Pentax"}
	sensors := []string{"FullFrame", "APS-C", "MicroFourThirds"}
	mounts := []string{"F-mount", "EF-mount", "E-mount", "X-mount", "MFT-mount"}
	segments := []string{"Entry", "Enthusiast", "Professional"}
	features := []string{
		"WiFi", "GPS", "TouchScreen", "4KVideo", "DualSlots",
		"InBodyStabilization", "WeatherSealing", "SilentShutter",
	}

	queryNames := []string{"Camera Alpha-7", "Camera X-Pro9"}
	cameras := append([]string{}, queryNames...)
	for i := len(cameras); i < 80; i++ {
		cameras = append(cameras, fmt.Sprintf("Camera %03d", i))
	}
	for i, c := range cameras {
		b.SetType(c, "camera")
		if i < 2 {
			// The query pair: ordinary enthusiast cameras — their base
			// attributes are common within the segment so that only the
			// planted feature combination stands out.
			b.AddEdge(c, "brand", brands[i])
			b.AddEdge(c, "sensor", sensors[1])
			b.AddEdge(c, "mount", mounts[i])
			b.AddEdge(c, "segment", segments[1])
		} else {
			b.AddEdge(c, "brand", brands[rng.Intn(len(brands))])
			b.AddEdge(c, "sensor", sensors[rng.Intn(len(sensors))])
			b.AddEdge(c, "mount", mounts[rng.Intn(len(mounts))])
			segment := segments[1] // everything compared lives in Enthusiast
			if i >= 40 {
				segment = segments[rng.Intn(len(segments))]
			}
			b.AddEdge(c, "segment", segment)
		}
		// Common features appear everywhere; the planted pair is rare.
		for _, f := range features[:5] {
			if rng.Float64() < 0.6 {
				b.AddEdge(c, "hasFeature", f)
			}
		}
		if i >= 2 && rng.Float64() < 0.06 {
			b.AddEdge(c, "hasFeature", "InBodyStabilization")
		}
		if i >= 2 && rng.Float64() < 0.06 {
			b.AddEdge(c, "hasFeature", "WeatherSealing")
		}
		// Accessories and reviews connect cameras of the same mount.
		for r := 0; r < 2+rng.Intn(3); r++ {
			b.AddEdge(c, "reviewedBy", fmt.Sprintf("Reviewer %02d", rng.Intn(30)))
		}
	}
	// The planted notable characteristics of the query pair.
	for _, q := range queryNames {
		b.AddEdge(q, "hasFeature", "InBodyStabilization")
		b.AddEdge(q, "hasFeature", "WeatherSealing")
	}

	g := b.Build()
	ds := &ProductsDataset{Graph: g}
	for _, q := range queryNames {
		id, _ := g.NodeByName(q)
		ds.Query = append(ds.Query, id)
	}
	return ds
}
