package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/kg"
)

// YAGOConfig sizes the YAGO-like dataset. The zero value selects Scale 1,
// which yields a graph of roughly 7k nodes and 50k edges (with inverses) —
// large enough that context selection is non-trivial, small enough that
// the full experiment suite runs in seconds.
//
// Scale multiplies every population size. AmbientScale additionally
// multiplies only the ambient graph (the distractor population and its
// companies): real YAGO dwarfs any one community with millions of
// unrelated entities, and the Figure 5 timing contrast — full-graph
// PageRank vs local walks — only appears in that regime.
type YAGOConfig struct {
	Seed         int64
	Scale        float64
	AmbientScale float64
}

func (c YAGOConfig) withDefaults() YAGOConfig {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.AmbientScale == 0 {
		c.AmbientScale = c.Scale
	}
	return c
}

func (c YAGOConfig) n(base int) int {
	v := int(float64(base) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

func (c YAGOConfig) ambient(base int) int {
	v := int(float64(base) * c.AmbientScale)
	if v < 1 {
		v = 1
	}
	return v
}

// yagoWorld carries generation state shared between the domain builders.
type yagoWorld struct {
	cfg YAGOConfig
	rng *rand.Rand
	b   *kg.Builder

	cities    []string
	countries []string

	actors       []string // all actors; aList is the prefix
	aList        int
	movies       []string
	politicians  []string // community prefix heads
	heads        int
	contributors []string
	prominent    int
}

// YAGOLike generates the general-purpose dataset with the three evaluation
// domains of Table 1.
func YAGOLike(cfg YAGOConfig) *Dataset {
	cfg = cfg.withDefaults()
	w := &yagoWorld{
		cfg:       cfg,
		rng:       rand.New(rand.NewSource(cfg.Seed)),
		b:         kg.NewBuilder(cfg.n(30000)),
		cities:    cities(cfg.n(60)),
		countries: countryPool,
	}
	w.b.Symmetric("marriedTo")

	w.buildSupport()
	w.buildActors()
	w.buildContributors()
	w.buildPoliticians()
	w.buildDistractors()

	g := w.b.Build()
	d := &Dataset{
		Graph:     g,
		Name:      "yago-like",
		Scenarios: map[string]*Scenario{},
	}
	d.Scenarios["actors"] = w.actorScenario()
	d.Scenarios["politicians"] = w.politicianScenario()
	d.Scenarios["contributors"] = w.contributorScenario()
	return d
}

func (w *yagoWorld) buildSupport() {
	for _, c := range w.countries {
		w.b.SetType(c, "country")
	}
	for _, c := range w.cities {
		w.b.SetType(c, "city")
		w.b.AddEdge(c, "locatedIn", w.countries[w.rng.Intn(len(w.countries))])
	}
	for _, p := range prizePool {
		w.b.SetType(p, "prize")
	}
	for _, s := range subjectPool {
		w.b.SetType(s, "subject")
	}
}

// person adds the attribute edges every person carries. Celebrities live
// in the big-city prefix so that their location values are well supported
// within any celebrity context (avoiding spurious unseen-value notability
// for bornIn/livesIn under the strict policy); the general population
// spreads over every city.
func (w *yagoWorld) person(name, typ string) {
	w.b.SetType(name, typ)
	// Celebrities and the ambient population live in disjoint city pools:
	// in real YAGO the millions of ambient entities are overwhelmingly
	// unrelated to any one community. Sharing location hubs would wire
	// every distractor into the query's 2-hop neighborhood, which both
	// real data and the paper's locality arguments rule out.
	half := len(w.cities) / 2
	pool := w.cities[half:]
	if typ != "person" {
		pool = w.cities[:half]
	}
	if len(pool) == 0 {
		pool = w.cities
	}
	w.b.AddEdge(name, "bornIn", pool[w.rng.Intn(len(pool))])
	w.b.AddEdge(name, "livesIn", pool[w.rng.Intn(len(pool))])
	// Only the celebrity domains carry gender facts. Giving the whole
	// ambient population gender edges would create two hub nodes touching
	// half the graph — a relative hub size real YAGO (3.3M nodes) never
	// has — which distorts both walk mining and path-counting costs.
	if typ != "person" {
		if w.rng.Float64() < 0.5 {
			w.b.AddEdge(name, "gender", "male")
		} else {
			w.b.AddEdge(name, "gender", "female")
		}
	}
}

// buildActors creates the actor community. The A-list prefix (which
// contains the Table 1 query actors) co-stars densely, carries the planted
// created/hasWonPrize/owns distributions of Figures 7–9, and is the pool
// the ground truth samples from.
func (w *yagoWorld) buildActors() {
	nActors := w.cfg.n(320)
	w.aList = w.cfg.n(240)
	queryNames := Table1["actors"]
	w.actors = make([]string, 0, nActors)
	w.actors = append(w.actors, queryNames...)
	for i := len(queryNames); i < nActors; i++ {
		w.actors = append(w.actors, fmt.Sprintf("Actor %04d", i))
	}
	w.movies = numbered("Movie", w.cfg.n(500))
	years := numbered("Year", 40)

	for i, m := range w.movies {
		w.b.SetType(m, "movie")
		// Rich movie attributes spread PageRank mass away from people,
		// which is what keeps the RandomWalk baseline's context diluted
		// (in real YAGO the same role is played by the sheer entity
		// variety around each movie).
		w.b.AddEdge(m, "genre", genrePool[w.rng.Intn(len(genrePool))])
		w.b.AddEdge(m, "releasedIn", years[i%len(years)])
		if w.rng.Float64() < 0.3 {
			w.b.AddEdge(m, "producedIn", w.countries[w.rng.Intn(len(w.countries))])
		}
	}
	// Planted query filmography sizes: distinct, well-populated
	// cardinality bins so the actedIn cardinality test compares like with
	// like (the query is drawn from the same regime as the community).
	queryFilms := []int{12, 10, 14, 9, 11, 13}
	// Planted query prize cardinalities: 4 of the 5-actor query have won
	// (the paper's "winning a prize is common for actors (75%)").
	queryPrizes := []int{2, 2, 1, 1, 0, 2}
	for i, a := range w.actors {
		w.person(a, "actor")
		// Filmography: community members act in many movies, others in
		// few. Casts overlap because community roles are drawn from the
		// same movie pool prefix, which creates the co-star community
		// ContextRW mines.
		var nFilms int
		var pool []string
		switch {
		case i < len(queryNames):
			nFilms = queryFilms[i]
			pool = w.movies[:len(w.movies)*3/5]
		case i < w.aList:
			nFilms = 8 + w.rng.Intn(8)
			pool = w.movies[:len(w.movies)*3/5]
		default:
			nFilms = 2 + w.rng.Intn(4)
			pool = w.movies
		}
		for _, m := range sampleNames(w.rng, pool, nFilms) {
			w.b.AddEdge(a, "actedIn", m)
		}
		switch {
		case i < len(queryNames):
			for _, p := range sampleNames(w.rng, prizePool, queryPrizes[i]) {
				w.b.AddEdge(a, "hasWonPrize", p)
			}
		case i < w.aList:
			// hasWonPrize: uniform propensity inside the community so the
			// query and context distributions agree (Figure 8).
			if w.rng.Float64() < 0.72 {
				for _, p := range sampleNames(w.rng, prizePool, 1+w.rng.Intn(3)) {
					w.b.AddEdge(a, "hasWonPrize", p)
				}
			}
			// created: 57% of the community created a distinct work
			// (Figure 7's 43% None). Values are actor-specific, which is
			// exactly what makes the label notable for the query. Query
			// actors get their created facts planted explicitly below.
			if w.rng.Float64() < 0.57 {
				w.b.AddEdge(a, "created", fmt.Sprintf("Show by %s", a))
			}
		}
	}
	// Planted query facts (Figure 7: Pitt is the one query actor without
	// created; Figure 9: Pitt is the only query actor owning a company).
	for _, a := range queryNames {
		if a == "Brad Pitt" {
			continue
		}
		w.b.AddEdge(a, "created", fmt.Sprintf("Show by %s", a))
	}
	w.b.AddEdge("Brad Pitt", "owns", "Plan B Entertainment")
	// One community actor owns a company too, so `owns` is rare-but-seen:
	// under the pooled policy this lands near the 0.05 threshold — the
	// paper's "choosing 0.1 would include owns" observation.
	w.b.AddEdge(w.actors[len(queryNames)], "owns", "Maple Pictures")
	// Sparse marriages inside the community, never touching the query
	// actors (a query-actor spouse would be a trivially unseen instance
	// value for any context that excludes the spouse).
	for i := len(queryNames); i+1 < w.aList; i += 7 {
		w.b.AddEdge(w.actors[i], "marriedTo", w.actors[i+1])
	}
}

// buildContributors creates directors, composers, and producers attached
// to the same movie pool.
func (w *yagoWorld) buildContributors() {
	n := w.cfg.n(160)
	w.prominent = w.cfg.n(70)
	queryNames := Table1["contributors"]
	w.contributors = make([]string, 0, n)
	w.contributors = append(w.contributors, queryNames...)
	for i := len(queryNames); i < n; i++ {
		w.contributors = append(w.contributors, fmt.Sprintf("Contributor %04d", i))
	}
	roles := []string{"directed", "produced", "wroteMusicFor"}
	for i, c := range w.contributors {
		w.person(c, "contributor")
		role := roles[i%len(roles)]
		var nFilms int
		var pool []string
		if i < w.prominent {
			nFilms = 4 + w.rng.Intn(5)
			pool = w.movies[:len(w.movies)*3/5]
		} else {
			nFilms = 1 + w.rng.Intn(3)
			pool = w.movies
		}
		for _, m := range sampleNames(w.rng, pool, nFilms) {
			w.b.AddEdge(c, role, m)
		}
		if i < w.prominent && w.rng.Float64() < 0.5 {
			for _, p := range sampleNames(w.rng, prizePool, 1+w.rng.Intn(2)) {
				w.b.AddEdge(c, "hasWonPrize", p)
			}
		}
	}
}

// buildPoliticians creates the heads-of-state community (with the planted
// Merkel facts: Physics, doctorate, no children) plus ordinary
// politicians.
func (w *yagoWorld) buildPoliticians() {
	n := w.cfg.n(150)
	w.heads = w.cfg.n(80)
	queryNames := Table1["politicians"]
	w.politicians = make([]string, 0, n)
	w.politicians = append(w.politicians, queryNames...)
	for i := len(queryNames); i < n; i++ {
		w.politicians = append(w.politicians, fmt.Sprintf("Politician %04d", i))
	}
	for i, p := range w.politicians {
		w.person(p, "politician")
		w.b.AddEdge(p, "memberOfParty", partyPool[w.rng.Intn(len(partyPool))])
		if i < w.heads {
			// Community hubs: office, organizations, summits.
			w.b.AddEdge(p, "politicianOf", w.countries[i%len(w.countries)])
			w.b.AddEdge(p, "memberOf", orgPool[w.rng.Intn(2)]) // UN or G20
			for _, s := range sampleNames(w.rng, summitPool, 2+w.rng.Intn(3)) {
				w.b.AddEdge(p, "attended", s)
			}
		} else if w.rng.Float64() < 0.15 {
			// A few ordinary politicians hold doctorates, so the label
			// exists in the graph outside the heads-of-state community.
			w.b.AddEdge(p, "hasDoctorate", "Doctorate")
		}
		if p == "Angela Merkel" {
			w.b.AddEdge(p, "studied", "Physics")
			w.b.AddEdge(p, "hasDoctorate", "Doctorate")
			continue // no children: the paper's notable characteristic
		}
		switch r := w.rng.Float64(); {
		case r < 0.75:
			w.b.AddEdge(p, "studied", "Law")
		case r < 0.90:
			w.b.AddEdge(p, "studied", "Political Science")
		default:
			w.b.AddEdge(p, "studied", "Economics")
		}
		// Every non-Merkel community member has children (the paper:
		// "in the context all other leaders have at least one").
		kids := 1 + w.rng.Intn(3)
		if i >= w.heads {
			kids = w.rng.Intn(3) // ordinary politicians may be childless
		}
		for c := 0; c < kids; c++ {
			child := fmt.Sprintf("Child of %s %d", p, c)
			w.b.SetType(child, "person")
			w.b.AddEdge(p, "hasChild", child)
		}
	}
}

// buildDistractors creates the ambient population that dilutes naive
// context selection, mirroring YAGO's generality.
func (w *yagoWorld) buildDistractors() {
	n := w.cfg.ambient(3000)
	companies := numbered("Company", w.cfg.ambient(80))
	for _, c := range companies {
		w.b.SetType(c, "company")
	}
	// Ambient people study vocational subjects disjoint from the
	// celebrity curriculum (Law/Political Science/Economics/Physics);
	// shared subject hubs would otherwise pull the whole population into
	// the query's metapath frontier.
	ambientSubjects := subjectPool[4:]
	celebs := make([]string, 0, len(w.actors)+len(w.politicians)+len(w.contributors))
	celebs = append(celebs, w.actors...)
	celebs = append(celebs, w.politicians...)
	celebs = append(celebs, w.contributors...)
	for i := 0; i < n; i++ {
		name := fmt.Sprintf("Person %05d", i)
		w.person(name, "person")
		w.b.AddEdge(name, "worksAt", companies[w.rng.Intn(len(companies))])
		if w.rng.Float64() < 0.4 {
			w.b.AddEdge(name, "studied", ambientSubjects[w.rng.Intn(len(ambientSubjects))])
		}
		// A small fan population keeps the graph connected to the
		// celebrity domains without creating hub shortcuts.
		if w.rng.Float64() < 0.02 {
			w.b.AddEdge(name, "fanOf", celebs[w.rng.Intn(len(celebs))])
		}
		for c := 0; c < w.rng.Intn(3); c++ {
			child := fmt.Sprintf("Child of %s %d", name, c)
			w.b.SetType(child, "person")
			w.b.AddEdge(name, "hasChild", child)
		}
	}
}

func (w *yagoWorld) actorScenario() *Scenario {
	return &Scenario{
		Domain:      "actors",
		Query:       Table1["actors"],
		GroundTruth: plantGroundTruth(w.cfg.Seed+1000, Table1["actors"], w.actors[:w.aList], w.contributors[:w.prominent]),
	}
}

func (w *yagoWorld) politicianScenario() *Scenario {
	return &Scenario{
		Domain:      "politicians",
		Query:       Table1["politicians"],
		GroundTruth: plantGroundTruth(w.cfg.Seed+2000, Table1["politicians"], w.politicians[:w.heads], w.politicians[w.heads:]),
	}
}

func (w *yagoWorld) contributorScenario() *Scenario {
	return &Scenario{
		Domain:      "contributors",
		Query:       Table1["contributors"],
		GroundTruth: plantGroundTruth(w.cfg.Seed+3000, Table1["contributors"], w.contributors[:w.prominent], w.actors[:w.aList]),
	}
}
