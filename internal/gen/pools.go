package gen

import "fmt"

// Name pools for the supporting entities. Real-world names are used where
// the paper's predicates reference real-world kinds (countries, subjects);
// bulk populations use generated names.

var countryPool = []string{
	"Germany", "USA", "Russia", "UK", "France", "China", "Italy", "Spain",
	"Canada", "Japan", "Brazil", "India", "Mexico", "Australia", "Sweden",
	"Norway", "Poland", "Greece", "Turkey", "Egypt", "Kenya", "Nigeria",
	"Argentina", "Chile", "Peru", "Austria", "Belgium", "Portugal",
	"Netherlands", "Switzerland",
}

var subjectPool = []string{
	"Law", "Political Science", "Economics", "Physics", "History",
	"Philosophy", "Drama", "Film", "Literature", "Medicine",
	"Engineering", "Mathematics",
}

var genrePool = []string{
	"Drama", "Comedy", "Thriller", "Action", "Romance", "ScienceFiction",
	"Fantasy", "Documentary", "Crime", "Horror", "Animation", "Western",
}

var partyPool = []string{
	"CDU", "SPD", "Democratic Party", "Republican Party", "United Russia",
	"Conservative Party", "Labour Party", "Parti Socialiste",
	"Les Républicains", "Communist Party", "Partito Democratico",
	"Forza Italia", "PP", "PSOE", "Liberal Party", "New Komeito",
	"Workers' Party", "BJP", "INC", "PRI", "PAN", "Green Party",
	"Libertarian Party", "Pirate Party",
}

var prizePool = []string{
	"Academy Award for Best Actor", "Academy Award for Best Actress",
	"Golden Globe Award", "BAFTA Award", "Screen Actors Guild Award",
	"Palme d'Or", "Silver Bear", "Saturn Award", "MTV Movie Award",
	"People's Choice Award", "Critics' Choice Award", "Emmy Award",
	"Tony Award", "Grammy Award", "Nobel Peace Prize", "Sakharov Prize",
	"Presidential Medal of Freedom", "Charlemagne Prize", "Cesar Award",
	"Goya Award", "European Film Award", "Independent Spirit Award",
	"Annie Award", "Hugo Award", "Nebula Award",
}

var summitPool = []string{
	"G7 Summit 2014", "G20 Summit 2014", "G7 Summit 2015",
	"G20 Summit 2015", "UN General Assembly 2015", "NATO Summit 2014",
	"Climate Conference 2015", "World Economic Forum 2016",
}

var orgPool = []string{
	"United Nations", "G20", "NATO", "European Council", "African Union",
	"OECD", "World Bank", "IMF",
}

// cities generates n city names.
func cities(n int) []string {
	base := []string{
		"Berlin", "Hamburg", "Washington", "Chicago", "Moscow", "London",
		"Paris", "Beijing", "Rome", "Madrid", "Ottawa", "Tokyo",
		"Brasilia", "Delhi", "Mexico City", "Canberra", "Stockholm",
		"Oslo", "Warsaw", "Athens", "Ankara", "Cairo", "Nairobi", "Lagos",
		"Buenos Aires", "Santiago", "Lima", "Vienna", "Brussels", "Lisbon",
	}
	out := make([]string, 0, n)
	out = append(out, base...)
	for i := len(base); i < n; i++ {
		out = append(out, fmt.Sprintf("City %03d", i))
	}
	return out[:min(n, len(out))]
}

// numbered generates n names with a prefix: "Movie 0042" etc.
func numbered(prefix string, n int) []string {
	out := make([]string, n)
	for i := range out {
		out[i] = fmt.Sprintf("%s %04d", prefix, i)
	}
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
