// Package gen generates the synthetic datasets that stand in for the
// paper's evaluation resources (see DESIGN.md, "Substitutions"):
//
//   - YAGOLike: a general-purpose knowledge graph with three celebrity
//     domains (politicians, actors, movie contributors), a large distractor
//     population, and the supporting entities (countries, movies, parties,
//     prizes, …) the paper's predicates point at.
//   - LinkedMDBLike: a movie-only graph, denser within its domain.
//   - Authors: the Douglas Adams / Terry Pratchett test case of §4.2.
//   - Figure1: the toy graph of the paper's Figure 1.
//   - Products: the e-commerce camera-comparison scenario motivated in the
//     introduction.
//
// Every generator is deterministic for a fixed seed. Ground-truth context
// sets (the substitute for the paper's crowdsourced answers) are planted as
// the fine-grained peer group of each query plus rater noise, sized within
// the 36–76 entities the paper reports after filtering.
package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/kg"
)

// Scenario bundles a query domain with its entities and planted ground
// truth, mirroring one row block of the paper's Table 1.
type Scenario struct {
	// Domain is "politicians", "actors", or "contributors".
	Domain string
	// Query holds the six query entity names in the paper's order;
	// a query of size q uses the first q names.
	Query []string
	// GroundTruth maps query size (2..6) to the entity names users would
	// have given as related — the crowdsourced context substitute.
	GroundTruth map[int][]string
}

// QueryIDs resolves the first size query names in g.
func (s *Scenario) QueryIDs(g *kg.Graph, size int) ([]kg.NodeID, error) {
	if size < 1 || size > len(s.Query) {
		return nil, fmt.Errorf("gen: query size %d out of range 1..%d", size, len(s.Query))
	}
	out := make([]kg.NodeID, size)
	for i := 0; i < size; i++ {
		id, ok := g.NodeByName(s.Query[i])
		if !ok {
			return nil, fmt.Errorf("gen: query entity %q not in graph", s.Query[i])
		}
		out[i] = id
	}
	return out, nil
}

// GroundTruthIDs resolves the ground-truth set for a query size. Names not
// present in the graph are skipped (the paper likewise dropped entities it
// could not map into YAGO).
func (s *Scenario) GroundTruthIDs(g *kg.Graph, size int) map[kg.NodeID]bool {
	out := make(map[kg.NodeID]bool)
	for _, name := range s.GroundTruth[size] {
		if id, ok := g.NodeByName(name); ok {
			out[id] = true
		}
	}
	return out
}

// Dataset is a generated graph plus its scenarios.
type Dataset struct {
	Graph     *kg.Graph
	Scenarios map[string]*Scenario
	// Name identifies the dataset ("yago-like", "linkedmdb-like", ...).
	Name string
}

// Scenario returns the named scenario or panics — generators always
// register their domains, so a miss is a programming error.
func (d *Dataset) Scenario(domain string) *Scenario {
	s, ok := d.Scenarios[domain]
	if !ok {
		panic("gen: unknown scenario " + domain)
	}
	return s
}

// Table1 holds the paper's Table 1 query entities per domain. The same
// names are planted into the generated graphs so experiments read like the
// paper's.
var Table1 = map[string][]string{
	"politicians": {
		"Angela Merkel", "Barack Obama", "Vladimir Putin",
		"David Cameron", "François Hollande", "Xi Jinping",
	},
	"actors": {
		"Brad Pitt", "George Clooney", "Leonardo DiCaprio",
		"Scarlett Johansson", "Johnny Depp", "Angelina Jolie",
	},
	"contributors": {
		"Steven Spielberg", "Robert Downey Jr.", "Hans Zimmer",
		"Quentin Tarantino", "Ellen Page", "Celine Dion",
	},
}

// pickDistinct samples n distinct ints in [0, bound) (n ≤ bound).
func pickDistinct(rng *rand.Rand, n, bound int) []int {
	perm := rng.Perm(bound)
	return perm[:n]
}

// plantGroundTruth builds the crowdsourced-context substitute for one
// domain: per query size, a sample of the community peers plus a few noise
// entities from an adjacent pool, sized within the paper's 36–76 filtered
// answers. Consecutive sizes share most of their peers (a sliding window
// over a fixed shuffle) because real raters' answers for overlapping
// queries overlap too; wholesale resampling would drown the query-size
// trends of Figure 4 in sampling noise.
func plantGroundTruth(seed int64, query, community, noisePool []string) map[int][]string {
	inQuery := make(map[string]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	peers := make([]string, 0, len(community))
	for _, c := range community {
		if !inQuery[c] {
			peers = append(peers, c)
		}
	}
	rng := rand.New(rand.NewSource(seed))
	rng.Shuffle(len(peers), func(i, j int) { peers[i], peers[j] = peers[j], peers[i] })

	const window = 46
	out := make(map[int][]string)
	for size := 2; size <= len(query); size++ {
		start := (size - 2) * 3
		end := start + window
		if end > len(peers) {
			end = len(peers)
		}
		if start > end {
			start = end
		}
		gt := append([]string(nil), peers[start:end]...)
		gt = append(gt, sampleNames(rng, noisePool, 4+rng.Intn(5))...)
		out[size] = gt
	}
	return out
}

// sampleNames draws n names from pool without replacement (seeded).
func sampleNames(rng *rand.Rand, pool []string, n int) []string {
	if n > len(pool) {
		n = len(pool)
	}
	idx := pickDistinct(rng, n, len(pool))
	out := make([]string, n)
	for i, j := range idx {
		out[i] = pool[j]
	}
	return out
}
