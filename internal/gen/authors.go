package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/kg"
)

// AuthorsDataset is the Douglas Adams / Terry Pratchett test case of
// Section 4.2 with its two planted outcomes:
//
//   - influences is notable: both query authors influence one author who
//     is influenced by only three people in total;
//   - created is not notable: every author created only their own works
//     (834 works, only 3 of them multi-authored), so the query's behaviour
//     matches the context's pattern.
type AuthorsDataset struct {
	Graph *kg.Graph
	// Query is {Douglas Adams, Terry Pratchett}.
	Query []kg.NodeID
	// InfluencedAuthor is the author influenced by only the two query
	// authors plus one other.
	InfluencedAuthor kg.NodeID
	// TotalWorks counts the created works (the paper's 834).
	TotalWorks int
	// CoCreated counts works with more than one creator (the paper's 3).
	CoCreated int
}

// Authors generates the authors scenario. The community is a set of
// fantasy/sci-fi writers densely connected through shared genre and
// publisher hubs so that context selection retrieves fellow authors.
func Authors(seed int64) *AuthorsDataset {
	rng := rand.New(rand.NewSource(seed))
	b := kg.NewBuilder(4096)

	queryNames := []string{"Douglas Adams", "Terry Pratchett"}
	authors := append([]string{}, queryNames...)
	authors = append(authors, "Neil Gaiman") // the influenced author
	for i := len(authors); i < 40; i++ {
		authors = append(authors, fmt.Sprintf("Author %02d", i))
	}
	genres := []string{"ScienceFiction", "Fantasy", "Humour"}
	publishers := []string{"Gollancz", "Corgi", "Harmony Books", "Doubleday"}

	// Work counts are planted deterministically: 831 solo works across 40
	// authors (20 or 21 each) plus 3 co-created works = 834 works, the
	// paper's numbers. The query authors hold the modal count so their
	// created cardinality is typical of the context.
	totalWorks := 0
	coCreated := 0
	for i, a := range authors {
		b.SetType(a, "author")
		b.AddEdge(a, "writesGenre", genres[i%2])
		b.AddEdge(a, "writesGenre", genres[2])
		b.AddEdge(a, "publishedBy", publishers[i%len(publishers)])
		b.AddEdge(a, "citizenOf", "UK")
		n := 20
		if i < 31 {
			n = 21
		}
		for wk := 0; wk < n; wk++ {
			work := fmt.Sprintf("Book %d by %s", wk, a)
			b.SetType(work, "book")
			b.AddEdge(a, "created", work)
			totalWorks++
		}
	}
	// Exactly three multi-authored works (the paper's count), all among
	// non-query authors: the query authors "only created their own works
	// and never collaborated".
	co := []struct{ a, b, work string }{
		{"Author 05", "Author 06", "The Meaning of Everything"},
		{"Neil Gaiman", "Author 08", "Joint Novel"},
		{"Author 07", "Author 09", "Joint Anthology"},
	}
	for _, c := range co {
		b.SetType(c.work, "book")
		b.AddEdge(c.a, "created", c.work)
		b.AddEdge(c.b, "created", c.work)
		totalWorks++
		coCreated++
	}

	// Influence structure: most authors influence one or two colleagues,
	// spread widely. Neil Gaiman is influenced by exactly three: the two
	// query authors and one more — the planted notable fact.
	b.AddEdge("Douglas Adams", "influences", "Neil Gaiman")
	b.AddEdge("Terry Pratchett", "influences", "Neil Gaiman")
	b.AddEdge("Author 05", "influences", "Neil Gaiman")
	for i := 3; i < len(authors); i++ {
		// Influence someone further down the roster (never Gaiman).
		target := authors[3+rng.Intn(len(authors)-3)]
		if target == "Neil Gaiman" || target == authors[i] {
			continue
		}
		b.AddEdge(authors[i], "influences", target)
	}

	g := b.Build()
	ds := &AuthorsDataset{Graph: g, TotalWorks: totalWorks, CoCreated: coCreated}
	for _, q := range queryNames {
		id, ok := g.NodeByName(q)
		if !ok {
			panic("gen: missing author " + q)
		}
		ds.Query = append(ds.Query, id)
	}
	gaiman, _ := g.NodeByName("Neil Gaiman")
	ds.InfluencedAuthor = gaiman
	return ds
}
