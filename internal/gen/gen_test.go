package gen

import (
	"strings"
	"testing"

	"repro/internal/kg"
)

func smallYAGO(t *testing.T) *Dataset {
	t.Helper()
	return YAGOLike(YAGOConfig{Seed: 1, Scale: 0.25})
}

func TestYAGOLikeBasicShape(t *testing.T) {
	d := smallYAGO(t)
	g := d.Graph
	if g.NumNodes() < 500 {
		t.Fatalf("graph too small: %s", g.Stats())
	}
	if g.NumEdges() == 0 {
		t.Fatal("no edges")
	}
	for _, domain := range []string{"actors", "politicians", "contributors"} {
		if _, ok := d.Scenarios[domain]; !ok {
			t.Fatalf("scenario %s missing", domain)
		}
	}
}

func TestYAGOLikeQueryEntitiesPresent(t *testing.T) {
	d := smallYAGO(t)
	for domain, names := range Table1 {
		for _, n := range names {
			if _, ok := d.Graph.NodeByName(n); !ok {
				t.Fatalf("%s query entity %q missing from graph", domain, n)
			}
		}
	}
}

func TestYAGOLikeDeterministic(t *testing.T) {
	a := YAGOLike(YAGOConfig{Seed: 7, Scale: 0.1})
	b := YAGOLike(YAGOConfig{Seed: 7, Scale: 0.1})
	if a.Graph.NumNodes() != b.Graph.NumNodes() || a.Graph.NumEdges() != b.Graph.NumEdges() {
		t.Fatalf("same seed, different graphs: %s vs %s", a.Graph.Stats(), b.Graph.Stats())
	}
	// Node names must agree position by position.
	for i := 0; i < a.Graph.NumNodes(); i += 97 {
		if a.Graph.NodeName(kg.NodeID(i)) != b.Graph.NodeName(kg.NodeID(i)) {
			t.Fatalf("node %d differs between runs", i)
		}
	}
	c := YAGOLike(YAGOConfig{Seed: 8, Scale: 0.1})
	if c.Graph.NumEdges() == a.Graph.NumEdges() && c.Graph.NumNodes() == a.Graph.NumNodes() {
		t.Log("different seeds produced same sizes (possible but unlikely)")
	}
}

func TestYAGOLikeGroundTruthSizes(t *testing.T) {
	d := YAGOLike(YAGOConfig{Seed: 3}) // full scale: GT sizes must be 36–76
	for domain, sc := range d.Scenarios {
		for size := 2; size <= 6; size++ {
			gt := sc.GroundTruth[size]
			if len(gt) < 36 || len(gt) > 76 {
				t.Fatalf("%s |Q|=%d: ground truth size %d outside 36–76", domain, size, len(gt))
			}
			ids := sc.GroundTruthIDs(d.Graph, size)
			if len(ids) < len(gt)*9/10 {
				t.Fatalf("%s |Q|=%d: only %d of %d ground-truth names resolve", domain, size, len(ids), len(gt))
			}
			for _, q := range sc.Query {
				qid, _ := d.Graph.NodeByName(q)
				if ids[qid] {
					t.Fatalf("%s: query entity %s inside ground truth", domain, q)
				}
			}
		}
	}
}

func TestYAGOLikeMerkelFacts(t *testing.T) {
	d := smallYAGO(t)
	g := d.Graph
	merkel, ok := g.NodeByName("Angela Merkel")
	if !ok {
		t.Fatal("Merkel missing")
	}
	hasChild, _ := g.LabelByName("hasChild")
	if n := len(g.OutEdgesByLabel(merkel, hasChild)); n != 0 {
		t.Fatalf("Merkel has %d children, want 0", n)
	}
	studied, _ := g.LabelByName("studied")
	edges := g.OutEdgesByLabel(merkel, studied)
	if len(edges) != 1 || g.NodeName(edges[0].To) != "Physics" {
		t.Fatal("Merkel should have studied Physics")
	}
	doc, ok := g.LabelByName("hasDoctorate")
	if !ok {
		t.Fatal("hasDoctorate label missing")
	}
	if len(g.OutEdgesByLabel(merkel, doc)) != 1 {
		t.Fatal("Merkel should hold a doctorate")
	}
}

func TestYAGOLikePittFacts(t *testing.T) {
	d := smallYAGO(t)
	g := d.Graph
	pitt, _ := g.NodeByName("Brad Pitt")
	created, _ := g.LabelByName("created")
	if n := len(g.OutEdgesByLabel(pitt, created)); n != 0 {
		t.Fatalf("Pitt has %d created edges, want 0 (Figure 7)", n)
	}
	owns, ok := g.LabelByName("owns")
	if !ok {
		t.Fatal("owns label missing")
	}
	ownsEdges := g.OutEdgesByLabel(pitt, owns)
	if len(ownsEdges) != 1 || g.NodeName(ownsEdges[0].To) != "Plan B Entertainment" {
		t.Fatal("Pitt should own Plan B Entertainment")
	}
	// The other query actors all created something distinct.
	for _, name := range Table1["actors"][1:] {
		id, _ := g.NodeByName(name)
		if len(g.OutEdgesByLabel(id, created)) == 0 {
			t.Fatalf("%s should have a created edge", name)
		}
	}
}

func TestScenarioQueryIDs(t *testing.T) {
	d := smallYAGO(t)
	sc := d.Scenario("actors")
	ids, err := sc.QueryIDs(d.Graph, 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(ids) != 3 {
		t.Fatalf("QueryIDs(3) = %d ids", len(ids))
	}
	if _, err := sc.QueryIDs(d.Graph, 9); err == nil {
		t.Fatal("oversized query should error")
	}
	if _, err := sc.QueryIDs(d.Graph, 0); err == nil {
		t.Fatal("zero query should error")
	}
}

func TestLinkedMDBLike(t *testing.T) {
	d := LinkedMDBLike(LMDBConfig{Seed: 2, Scale: 0.25})
	if d.Name != "linkedmdb-like" {
		t.Fatalf("Name = %q", d.Name)
	}
	if _, ok := d.Scenarios["actors"]; !ok {
		t.Fatal("actors scenario missing")
	}
	// Movie-domain only: no politicians.
	if _, ok := d.Graph.NodeByName("Angela Merkel"); ok {
		t.Fatal("politicians should not exist in LinkedMDB-like data")
	}
	pitt, ok := d.Graph.NodeByName("Brad Pitt")
	if !ok {
		t.Fatal("Pitt missing")
	}
	performedIn, ok := d.Graph.LabelByName("performedIn")
	if !ok {
		t.Fatal("performedIn label missing")
	}
	if len(d.Graph.OutEdgesByLabel(pitt, performedIn)) == 0 {
		t.Fatal("Pitt has no performances")
	}
}

func TestAuthorsScenario(t *testing.T) {
	ds := Authors(5)
	g := ds.Graph
	if len(ds.Query) != 2 {
		t.Fatalf("query size %d", len(ds.Query))
	}
	// The paper's numbers: 834 works, 3 multi-authored.
	if ds.TotalWorks != 834 {
		t.Fatalf("TotalWorks = %d, want 834", ds.TotalWorks)
	}
	if ds.CoCreated != 3 {
		t.Fatalf("CoCreated = %d, want 3", ds.CoCreated)
	}
	// Gaiman influenced by exactly 3.
	influences, _ := g.LabelByName("influences")
	inv := g.InverseLabel(influences)
	in := g.OutEdgesByLabel(ds.InfluencedAuthor, inv)
	if len(in) != 3 {
		t.Fatalf("Gaiman influenced by %d, want 3", len(in))
	}
	// Both query authors are among the influencers.
	fromQuery := 0
	for _, e := range in {
		for _, q := range ds.Query {
			if e.To == q {
				fromQuery++
			}
		}
	}
	if fromQuery != 2 {
		t.Fatalf("%d query authors influence Gaiman, want 2", fromQuery)
	}
}

func TestAuthorsWorkCount(t *testing.T) {
	ds := Authors(9)
	g := ds.Graph
	created, _ := g.LabelByName("created")
	// 834 works, 3 of which have two creators: 837 created edges.
	if got := int(g.LabelCount(created)); got != ds.TotalWorks+ds.CoCreated {
		t.Fatalf("created edges = %d, want %d", got, ds.TotalWorks+ds.CoCreated)
	}
}

func TestFigure1(t *testing.T) {
	ds := Figure1()
	g := ds.Graph
	if len(ds.Query) != 2 || len(ds.Context) != 3 {
		t.Fatalf("query/context sizes %d/%d", len(ds.Query), len(ds.Context))
	}
	merkel := ds.Query[0]
	if !strings.Contains(g.NodeName(merkel), "Merkel") {
		t.Fatalf("first query node = %s", g.NodeName(merkel))
	}
	hasChild, _ := g.LabelByName("hasChild")
	if len(g.OutEdgesByLabel(merkel, hasChild)) != 0 {
		t.Fatal("Figure 1 Merkel must be childless")
	}
	// Hollande has 4 children in the figure.
	hollande := ds.Context[2]
	if n := len(g.OutEdgesByLabel(hollande, hasChild)); n != 4 {
		t.Fatalf("Hollande children = %d, want 4", n)
	}
}

func TestProducts(t *testing.T) {
	ds := Products(4)
	g := ds.Graph
	if len(ds.Query) != 2 {
		t.Fatalf("query size %d", len(ds.Query))
	}
	hasFeature, _ := g.LabelByName("hasFeature")
	for _, q := range ds.Query {
		found := 0
		for _, e := range g.OutEdgesByLabel(q, hasFeature) {
			name := g.NodeName(e.To)
			if name == "InBodyStabilization" || name == "WeatherSealing" {
				found++
			}
		}
		if found != 2 {
			t.Fatalf("query camera %s lacks planted features", g.NodeName(q))
		}
	}
}

func TestDatasetScenarioPanics(t *testing.T) {
	d := smallYAGO(t)
	defer func() {
		if recover() == nil {
			t.Fatal("Scenario(unknown) should panic")
		}
	}()
	d.Scenario("unknown-domain")
}

func BenchmarkYAGOLikeFullScale(b *testing.B) {
	for i := 0; i < b.N; i++ {
		d := YAGOLike(YAGOConfig{Seed: int64(i)})
		if d.Graph.NumNodes() == 0 {
			b.Fatal("empty graph")
		}
	}
}
