package gen

import (
	"fmt"
	"math/rand"

	"repro/internal/kg"
)

// LMDBConfig sizes the LinkedMDB-like dataset.
type LMDBConfig struct {
	Seed  int64
	Scale float64
}

func (c LMDBConfig) withDefaults() LMDBConfig {
	if c.Scale == 0 {
		c.Scale = 1
	}
	return c
}

func (c LMDBConfig) n(base int) int {
	v := int(float64(base) * c.Scale)
	if v < 1 {
		v = 1
	}
	return v
}

// LinkedMDBLike generates the movie-domain dataset: the same actor and
// contributor communities as the YAGO-like graph but without the
// politician domain or the general-population distractors, and with a
// denser film structure (performances carry characters, films carry
// genres, years, and production countries). Domain specificity is why the
// paper measures slightly better maximal F1 here (Table 2).
func LinkedMDBLike(cfg LMDBConfig) *Dataset {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := kg.NewBuilder(cfg.n(20000))

	nActors := cfg.n(300)
	aList := cfg.n(200)
	queryActors := Table1["actors"]
	actors := make([]string, 0, nActors)
	actors = append(actors, queryActors...)
	for i := len(queryActors); i < nActors; i++ {
		actors = append(actors, fmt.Sprintf("Actor %04d", i))
	}

	nContrib := cfg.n(150)
	prominent := cfg.n(60)
	queryContrib := Table1["contributors"]
	contributors := make([]string, 0, nContrib)
	contributors = append(contributors, queryContrib...)
	for i := len(queryContrib); i < nContrib; i++ {
		contributors = append(contributors, fmt.Sprintf("Contributor %04d", i))
	}

	films := numbered("Film", cfg.n(700))
	years := numbered("Year", 40)
	for i, f := range films {
		b.SetType(f, "film")
		b.AddEdge(f, "genre", genrePool[rng.Intn(len(genrePool))])
		b.AddEdge(f, "releasedIn", years[i%len(years)])
		b.AddEdge(f, "producedIn", countryPool[rng.Intn(8)])
	}

	for i, a := range actors {
		b.SetType(a, "actor")
		var nFilms int
		var pool []string
		if i < aList {
			nFilms = 12 + rng.Intn(10)
			pool = films[:len(films)*3/5]
		} else {
			nFilms = 2 + rng.Intn(5)
			pool = films
		}
		for _, f := range sampleNames(rng, pool, nFilms) {
			b.AddEdge(a, "performedIn", f)
			// A denser signal than YAGO: performances also link through
			// character nodes.
			if rng.Float64() < 0.3 {
				b.AddEdge(a, "playedCharacter", fmt.Sprintf("Character in %s", f))
			}
		}
		if i < aList && rng.Float64() < 0.7 {
			for _, p := range sampleNames(rng, prizePool[:12], 1+rng.Intn(2)) {
				b.AddEdge(a, "hasWonPrize", p)
			}
		}
	}

	roles := []string{"directed", "produced", "scored"}
	for i, c := range contributors {
		b.SetType(c, "contributor")
		role := roles[i%len(roles)]
		var nFilms int
		var pool []string
		if i < prominent {
			nFilms = 5 + rng.Intn(6)
			pool = films[:len(films)/2]
		} else {
			nFilms = 1 + rng.Intn(3)
			pool = films
		}
		for _, f := range sampleNames(rng, pool, nFilms) {
			b.AddEdge(c, role, f)
		}
	}

	d := &Dataset{
		Graph:     b.Build(),
		Name:      "linkedmdb-like",
		Scenarios: map[string]*Scenario{},
	}
	d.Scenarios["actors"] = &Scenario{
		Domain:      "actors",
		Query:       queryActors,
		GroundTruth: plantGroundTruth(cfg.Seed+100, queryActors, actors[:aList], contributors[:prominent]),
	}
	d.Scenarios["contributors"] = &Scenario{
		Domain:      "contributors",
		Query:       queryContrib,
		GroundTruth: plantGroundTruth(cfg.Seed+200, queryContrib, contributors[:prominent], actors[:aList]),
	}
	return d
}
