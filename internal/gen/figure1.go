package gen

import "repro/internal/kg"

// Figure1Dataset is the paper's running example graph.
type Figure1Dataset struct {
	Graph *kg.Graph
	// Query is {Angela Merkel, Barack Obama}.
	Query []kg.NodeID
	// Context is {Vladimir Putin, Matteo Renzi, François Hollande} — the
	// context nodes drawn in the figure.
	Context []kg.NodeID
}

// Figure1 builds the exact toy graph of the paper's Figure 1: five
// politicians, their studies, and their children. Merkel's missing
// hasChild edge and her Physics studies are the two notable
// characteristics the figure illustrates.
func Figure1() *Figure1Dataset {
	b := kg.NewBuilder(32)
	for _, p := range []string{
		"Angela Merkel", "Barack Obama", "Vladimir Putin",
		"Matteo Renzi", "François Hollande",
	} {
		b.SetType(p, "politician")
	}
	b.AddEdge("Angela Merkel", "studied", "Physics")
	b.AddEdge("Barack Obama", "studied", "Law")
	b.AddEdge("Vladimir Putin", "studied", "Law")
	b.AddEdge("Matteo Renzi", "studied", "Law")
	b.AddEdge("François Hollande", "studied", "Law")

	b.AddEdge("Barack Obama", "hasChild", "Malia")
	b.AddEdge("Vladimir Putin", "hasChild", "Mariya")
	b.AddEdge("Vladimir Putin", "hasChild", "Yecaterina")
	b.AddEdge("Matteo Renzi", "hasChild", "Francesca")
	b.AddEdge("Matteo Renzi", "hasChild", "Emanuele")
	b.AddEdge("Matteo Renzi", "hasChild", "Ester")
	b.AddEdge("François Hollande", "hasChild", "Thomas")
	b.AddEdge("François Hollande", "hasChild", "Clémence")
	b.AddEdge("François Hollande", "hasChild", "Julien")
	b.AddEdge("François Hollande", "hasChild", "Flora")

	g := b.Build()
	ds := &Figure1Dataset{Graph: g}
	for _, q := range []string{"Angela Merkel", "Barack Obama"} {
		id, _ := g.NodeByName(q)
		ds.Query = append(ds.Query, id)
	}
	for _, c := range []string{"Vladimir Putin", "Matteo Renzi", "François Hollande"} {
		id, _ := g.NodeByName(c)
		ds.Context = append(ds.Context, id)
	}
	return ds
}
