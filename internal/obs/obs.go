// Package obs is the serving stack's dependency-free metrics subsystem:
// lock-cheap counters and gauges, fixed-bucket latency histograms whose
// hot path is a pair of atomic adds, an allocation-free structured
// access-log ring buffer, and a Prometheus-text-format exposition
// registry.
//
// The design splits cost asymmetrically. Instrumented code — the PPR
// solve, the comparison stage, every HTTP request — holds direct
// pointers to its Counter/Histogram, obtained once at construction, so
// recording is a handful of atomic adds: no map lookups, no
// interface dispatch, no allocation, no locks. All bookkeeping (names,
// labels, HELP text, bucket boundaries rendered as strings) happens at
// registration or at scrape time, where a mutex and a few allocations
// are irrelevant.
//
// Histograms use fixed exponential buckets (see DefaultLatencyBounds)
// shared by every latency metric, so any two snapshots merge bucket by
// bucket — across stages, across scrapes, across processes — and
// quantiles come from linear interpolation within the bucket holding
// the target rank: exact at bucket boundaries, bounded by the bucket's
// width everywhere else.
//
// Everything here is safe for concurrent use. Observe/Add/Inc may race
// freely with Snapshot and with the exposition writer; snapshots are
// internally consistent per counter (each bucket is read atomically)
// though not across counters, which is the standard Prometheus
// contract.
package obs

import (
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing 64-bit metric. The zero value
// is ready to use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (n should be ≥ 0; counters only go up).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() int64 { return c.v.Load() }

// Gauge is a settable 64-bit level. The zero value is ready to use.
// For values computed on demand (goroutine counts, heap bytes), register
// a GaugeFunc instead.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the gauge's value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the gauge by n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value returns the current level.
func (g *Gauge) Value() int64 { return g.v.Load() }

// DefaultLatencyBounds are the shared histogram bucket upper bounds, in
// seconds: exponential ×2 from 10µs to ~84s, 24 finite buckets. Wide
// enough that a WAL fsync (~ms), a warm cache hit (~50µs), and a cold
// 90ms solve all land mid-range with ≤2× relative quantile error, and
// identical across every histogram so snapshots merge bucket by bucket.
var DefaultLatencyBounds = func() []float64 {
	b := make([]float64, 24)
	v := 10e-6
	for i := range b {
		b[i] = v
		v *= 2
	}
	return b
}()

// Histogram is a fixed-bucket distribution of durations. Observe is two
// atomic adds plus a branch-free-ish bucket search over a small sorted
// slice — no locks, no allocation. Construct with NewHistogram (the
// zero value is not usable: buckets must be sized).
type Histogram struct {
	bounds  []float64 // upper bounds, seconds, strictly increasing
	buckets []atomic.Int64
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds, exact for any realistic uptime
}

// NewHistogram returns a histogram over bounds (nil selects
// DefaultLatencyBounds). One extra +Inf bucket is implicit: values past
// the last bound land there.
func NewHistogram(bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefaultLatencyBounds
	}
	return &Histogram{
		bounds:  bounds,
		buckets: make([]atomic.Int64, len(bounds)+1),
	}
}

// Observe records one duration. Safe for any concurrency; never
// allocates.
func (h *Histogram) Observe(d time.Duration) {
	h.ObserveSeconds(d.Seconds())
}

// ObserveSeconds records one value already expressed in seconds.
func (h *Histogram) ObserveSeconds(v float64) {
	// Binary search over ≤24 bounds: ~5 comparisons, cheaper to inline
	// than sort.SearchFloat64s' function-value indirection.
	lo, hi := 0, len(h.bounds)
	for lo < hi {
		mid := (lo + hi) / 2
		if v > h.bounds[mid] {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	h.buckets[lo].Add(1)
	h.count.Add(1)
	h.sum.Add(int64(v * 1e9))
}

// Count returns the total number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Snapshot captures the histogram's current state. The per-bucket reads
// are individually atomic; a snapshot taken mid-Observe may be one
// observation short in count vs. buckets, which Merge and Quantile
// tolerate (quantile ranks derive from the bucket counts themselves).
func (h *Histogram) Snapshot() HistSnapshot {
	s := HistSnapshot{
		Bounds:   h.bounds,
		Counts:   make([]int64, len(h.buckets)),
		SumNanos: h.sum.Load(),
	}
	var total int64
	for i := range h.buckets {
		c := h.buckets[i].Load()
		s.Counts[i] = c
		total += c
	}
	// Derive Count from the buckets rather than the count field so the
	// snapshot is self-consistent even when it races an Observe that has
	// bumped one but not the other.
	s.Count = total
	return s
}

// HistSnapshot is a point-in-time copy of a Histogram: bucket counts
// (one per bound plus the +Inf overflow), total count, and the sum of
// observed values in nanoseconds.
type HistSnapshot struct {
	// Bounds aliases the histogram's (immutable) bound slice.
	Bounds []float64
	// Counts has len(Bounds)+1 entries; Counts[len(Bounds)] is +Inf.
	Counts   []int64
	Count    int64
	SumNanos int64
}

// Merge returns the bucket-wise sum of s and o. Both must share bounds
// (every histogram built on DefaultLatencyBounds does); mismatched
// shapes panic — merging histograms of different scales is a bug, not a
// runtime condition.
func (s HistSnapshot) Merge(o HistSnapshot) HistSnapshot {
	if len(s.Counts) == 0 {
		return o.clone()
	}
	if len(o.Counts) == 0 {
		return s.clone()
	}
	if len(s.Counts) != len(o.Counts) {
		panic("obs: merging histograms with different bucket shapes")
	}
	m := HistSnapshot{
		Bounds:   s.Bounds,
		Counts:   make([]int64, len(s.Counts)),
		Count:    s.Count + o.Count,
		SumNanos: s.SumNanos + o.SumNanos,
	}
	for i := range s.Counts {
		m.Counts[i] = s.Counts[i] + o.Counts[i]
	}
	return m
}

func (s HistSnapshot) clone() HistSnapshot {
	c := s
	c.Counts = append([]int64(nil), s.Counts...)
	return c
}

// Quantile returns the q-quantile (q in [0, 1]) in seconds, linearly
// interpolated within the bucket holding the target rank: exact when the
// rank lands on a bucket boundary, off by at most the bucket's width
// otherwise. Returns 0 for an empty snapshot. The +Inf bucket reports
// its lower bound (the largest finite bound) — a floor, not an estimate.
func (s HistSnapshot) Quantile(q float64) float64 {
	if s.Count == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	}
	if q > 1 {
		q = 1
	}
	rank := q * float64(s.Count)
	var cum int64
	for i, c := range s.Counts {
		if c == 0 {
			continue
		}
		lo := 0.0
		if i > 0 {
			lo = s.Bounds[i-1]
		}
		if float64(cum+c) >= rank {
			if i == len(s.Bounds) {
				// Overflow bucket: unbounded above, report the floor.
				return lo
			}
			hi := s.Bounds[i]
			// Position of the target rank inside this bucket.
			frac := (rank - float64(cum)) / float64(c)
			if frac < 0 {
				frac = 0
			}
			return lo + (hi-lo)*frac
		}
		cum += c
	}
	// rank == Count and the loop ran out (all mass in trailing zeros —
	// impossible, but stay total): report the largest bound.
	return s.Bounds[len(s.Bounds)-1]
}

// Mean returns the average observed value in seconds (0 when empty).
func (s HistSnapshot) Mean() float64 {
	if s.Count == 0 {
		return 0
	}
	return float64(s.SumNanos) / 1e9 / float64(s.Count)
}

// Summary condenses a snapshot to the fields a JSON gauge endpoint
// (statsz's "metrics" key) or a soak harness wants: count and
// interpolated p50/p95/p99 in milliseconds.
type Summary struct {
	Count  int64   `json:"count"`
	MeanMS float64 `json:"mean_ms"`
	P50MS  float64 `json:"p50_ms"`
	P95MS  float64 `json:"p95_ms"`
	P99MS  float64 `json:"p99_ms"`
}

// Summarize computes the Summary of s.
func (s HistSnapshot) Summarize() Summary {
	return Summary{
		Count:  s.Count,
		MeanMS: s.Mean() * 1e3,
		P50MS:  s.Quantile(0.50) * 1e3,
		P95MS:  s.Quantile(0.95) * 1e3,
		P99MS:  s.Quantile(0.99) * 1e3,
	}
}
