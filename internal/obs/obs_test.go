package obs

import (
	"bufio"
	"bytes"
	"fmt"
	"math"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestHistogramBucketBoundaries(t *testing.T) {
	h := NewHistogram([]float64{0.001, 0.01, 0.1})
	// A value exactly on a bound belongs to that bound's bucket (le is
	// inclusive, as in Prometheus).
	h.ObserveSeconds(0.001)
	h.ObserveSeconds(0.01)
	h.ObserveSeconds(0.1)
	// Just past each bound → next bucket; past the last → +Inf.
	h.ObserveSeconds(0.0011)
	h.ObserveSeconds(0.11)
	s := h.Snapshot()
	want := []int64{1, 2, 1, 1}
	for i, w := range want {
		if s.Counts[i] != w {
			t.Errorf("bucket %d: got %d want %d (counts %v)", i, s.Counts[i], w, s.Counts)
		}
	}
	if s.Count != 5 {
		t.Errorf("count: got %d want 5", s.Count)
	}
}

func TestHistogramQuantileEmptyAndSingle(t *testing.T) {
	h := NewHistogram(nil)
	if got := h.Snapshot().Quantile(0.5); got != 0 {
		t.Errorf("empty histogram p50: got %v want 0", got)
	}
	h.Observe(5 * time.Millisecond)
	s := h.Snapshot()
	for _, q := range []float64{0, 0.5, 0.99, 1} {
		got := s.Quantile(q)
		// The single sample lives in the bucket containing 5ms; the
		// estimate must fall within that bucket.
		if got < 0 || got > 2*5.12e-3 {
			t.Errorf("single-sample q%.2f = %v, outside its bucket", q, got)
		}
	}
	if s.Quantile(1) < s.Quantile(0) {
		t.Error("quantile not monotone on single sample")
	}
}

func TestHistogramQuantileInterpolation(t *testing.T) {
	// Uniform fill of one bucket: quantiles interpolate linearly.
	h := NewHistogram([]float64{1, 2, 3})
	for i := 0; i < 100; i++ {
		h.ObserveSeconds(1.5) // all in (1, 2]
	}
	s := h.Snapshot()
	if got := s.Quantile(0.5); math.Abs(got-1.5) > 1e-9 {
		t.Errorf("p50 of uniform bucket: got %v want 1.5", got)
	}
	if got := s.Quantile(1.0); math.Abs(got-2.0) > 1e-9 {
		t.Errorf("p100: got %v want 2.0 (bucket upper bound)", got)
	}
	// Exact at bucket boundary: 50 in (0,1], 50 in (1,2] → p50 = 1.0.
	h2 := NewHistogram([]float64{1, 2, 3})
	for i := 0; i < 50; i++ {
		h2.ObserveSeconds(0.5)
		h2.ObserveSeconds(1.5)
	}
	if got := h2.Snapshot().Quantile(0.5); math.Abs(got-1.0) > 1e-9 {
		t.Errorf("boundary p50: got %v want 1.0", got)
	}
}

func TestHistogramOverflowBucket(t *testing.T) {
	h := NewHistogram([]float64{0.001})
	h.ObserveSeconds(10)
	s := h.Snapshot()
	if s.Counts[1] != 1 {
		t.Fatalf("overflow bucket: got %v", s.Counts)
	}
	if got := s.Quantile(0.99); got != 0.001 {
		t.Errorf("overflow quantile floor: got %v want 0.001", got)
	}
}

func TestHistogramMerge(t *testing.T) {
	a, b := NewHistogram(nil), NewHistogram(nil)
	for i := 0; i < 10; i++ {
		a.Observe(time.Millisecond)
		b.Observe(100 * time.Millisecond)
	}
	m := a.Snapshot().Merge(b.Snapshot())
	if m.Count != 20 {
		t.Fatalf("merged count: got %d want 20", m.Count)
	}
	wantSum := 10*int64(time.Millisecond) + 10*int64(100*time.Millisecond)
	if m.SumNanos != wantSum {
		t.Errorf("merged sum: got %d want %d", m.SumNanos, wantSum)
	}
	// Merge with the empty snapshot is identity.
	if got := a.Snapshot().Merge(HistSnapshot{}); got.Count != 10 {
		t.Errorf("merge with empty: got count %d want 10", got.Count)
	}
	if got := (HistSnapshot{}).Merge(a.Snapshot()); got.Count != 10 {
		t.Errorf("empty merge: got count %d want 10", got.Count)
	}
}

func TestHistogramConcurrent(t *testing.T) {
	// Concurrent observers racing snapshot readers: run under -race in
	// CI. Every observation must be accounted for at the end, and every
	// intermediate snapshot must be internally consistent
	// (sum(buckets) == Count by construction).
	h := NewHistogram(nil)
	const writers, perWriter = 8, 5000
	var writerWg, readerWg sync.WaitGroup
	stop := make(chan struct{})
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			s := h.Snapshot()
			var tot int64
			for _, c := range s.Counts {
				tot += c
			}
			if tot != s.Count {
				t.Errorf("torn snapshot: bucket total %d != count %d", tot, s.Count)
				return
			}
		}
	}()
	writerWg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer writerWg.Done()
			for i := 0; i < perWriter; i++ {
				h.Observe(time.Duration(w+1) * time.Microsecond * time.Duration(i%100+1))
			}
		}(w)
	}
	writerWg.Wait()
	close(stop)
	readerWg.Wait()
	if got := h.Snapshot().Count; got != writers*perWriter {
		t.Fatalf("final count: got %d want %d", got, writers*perWriter)
	}
}

func TestCounterGauge(t *testing.T) {
	var c Counter
	c.Inc()
	c.Add(4)
	if c.Value() != 5 {
		t.Errorf("counter: got %d want 5", c.Value())
	}
	var g Gauge
	g.Set(7)
	g.Add(-3)
	if g.Value() != 4 {
		t.Errorf("gauge: got %d want 4", g.Value())
	}
}

func TestRegistryExposition(t *testing.T) {
	r := NewRegistry()
	c := r.NewCounter("nc_requests_total", "Requests served.", "endpoint", "search", "status", "2xx")
	c.Add(3)
	c2 := r.NewCounter("nc_requests_total", "Requests served.", "endpoint", "search", "status", "5xx")
	c2.Inc()
	g := r.NewGauge("nc_things", "Things.")
	g.Set(42)
	r.NewGaugeFunc(
		"nc_computed", "Computed gauge.", func() float64 { return 1.5 })
	h := r.NewHistogram("nc_stage_seconds", "Stage latency.", "stage", "ppr_solve")
	h.Observe(3 * time.Millisecond)
	h.Observe(50 * time.Millisecond)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()

	for _, want := range []string{
		"# HELP nc_requests_total Requests served.",
		"# TYPE nc_requests_total counter",
		`nc_requests_total{endpoint="search",status="2xx"} 3`,
		`nc_requests_total{endpoint="search",status="5xx"} 1`,
		"# TYPE nc_things gauge",
		"nc_things 42",
		"nc_computed 1.5",
		"# TYPE nc_stage_seconds histogram",
		`nc_stage_seconds_bucket{stage="ppr_solve",le="+Inf"} 2`,
		`nc_stage_seconds_count{stage="ppr_solve"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q\n---\n%s", want, out)
		}
	}

	// Structural parse: every non-comment line is `name{labels} value`
	// with a numeric value, and histogram buckets are cumulative.
	sc := bufio.NewScanner(strings.NewReader(out))
	var lastBucket int64 = -1
	for sc.Scan() {
		line := sc.Text()
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		sp := strings.LastIndexByte(line, ' ')
		if sp < 0 {
			t.Fatalf("unparseable line %q", line)
		}
		var f float64
		if _, err := fmt.Sscanf(line[sp+1:], "%g", &f); err != nil {
			t.Fatalf("non-numeric value in %q: %v", line, err)
		}
		if strings.HasPrefix(line, "nc_stage_seconds_bucket") {
			if int64(f) < lastBucket {
				t.Fatalf("bucket counts not cumulative at %q", line)
			}
			lastBucket = int64(f)
		}
	}

	// Histograms() merges series under a name.
	hs := r.Histograms()
	if hs["nc_stage_seconds"].Count != 2 {
		t.Errorf("Histograms(): got %+v", hs["nc_stage_seconds"])
	}
}

func TestRegistryLabelEscaping(t *testing.T) {
	r := NewRegistry()
	r.NewCounter("nc_weird", "w.", "k", "a\"b\\c\nd")
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `nc_weird{k="a\"b\\c\nd"} 0`) {
		t.Errorf("bad escaping: %s", buf.String())
	}
}

func TestAccessLogBasicAndWraparound(t *testing.T) {
	l := NewAccessLog(16)
	if l.Cap() != 16 {
		t.Fatalf("cap: got %d", l.Cap())
	}
	for i := 0; i < 40; i++ {
		l.Add(Record{Status: i})
	}
	if l.Len() != 16 {
		t.Fatalf("len after wrap: got %d want 16", l.Len())
	}
	if l.Total() != 40 {
		t.Fatalf("total: got %d want 40", l.Total())
	}
	recs := l.Drain(0)
	if len(recs) != 16 {
		t.Fatalf("drain: got %d records want 16", len(recs))
	}
	// Chronological tail: statuses 24..39.
	for i, r := range recs {
		if r.Status != 24+i {
			t.Fatalf("drain[%d].Status = %d, want %d (tail not chronological)", i, r.Status, 24+i)
		}
	}
	// Bounded drain returns the newest max in order.
	recs = l.Drain(4)
	if len(recs) != 4 || recs[0].Status != 36 || recs[3].Status != 39 {
		t.Fatalf("bounded drain: %+v", recs)
	}
	// Drain does not consume.
	if again := l.Drain(4); len(again) != 4 || again[0].Status != 36 {
		t.Fatalf("second drain differs: %+v", again)
	}
}

func TestAccessLogSizeRounding(t *testing.T) {
	if got := NewAccessLog(0).Cap(); got != 16 {
		t.Errorf("min size: got %d want 16", got)
	}
	if got := NewAccessLog(100).Cap(); got != 128 {
		t.Errorf("round up: got %d want 128", got)
	}
}

func TestAccessLogTornReads(t *testing.T) {
	// Concurrent writers wrapping the ring many times while a reader
	// drains: every drained record must be internally consistent. Each
	// writer stamps Status and DurationMicros with the same value, so a
	// torn record would show a mismatch. Run under -race in CI.
	l := NewAccessLog(16)
	const writers, perWriter = 8, 4000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	var readerWg sync.WaitGroup
	readerWg.Add(1)
	go func() {
		defer readerWg.Done()
		for {
			select {
			case <-stop:
				return
			default:
			}
			for _, r := range l.Drain(0) {
				if int64(r.Status) != r.DurationMicros {
					t.Errorf("torn record: status %d duration %d", r.Status, r.DurationMicros)
					return
				}
			}
		}
	}()
	wg.Add(writers)
	for w := 0; w < writers; w++ {
		go func(w int) {
			defer wg.Done()
			for i := 0; i < perWriter; i++ {
				v := w*perWriter + i
				l.Add(Record{Status: v, DurationMicros: int64(v), Method: "GET", Path: "/v1/search"})
			}
		}(w)
	}
	wg.Wait()
	close(stop)
	readerWg.Wait()
	if l.Total() != writers*perWriter {
		t.Fatalf("total: got %d want %d", l.Total(), writers*perWriter)
	}
}

func TestHotPathAllocs(t *testing.T) {
	// The whole point of the package: recording must not allocate.
	h := NewHistogram(nil)
	var c Counter
	l := NewAccessLog(64)
	rec := Record{Method: "GET", Path: "/v1/search", RequestID: "r-1", Status: 200, DurationMicros: 12}
	if n := testing.AllocsPerRun(1000, func() {
		h.Observe(3 * time.Millisecond)
		c.Inc()
		l.Add(rec)
	}); n != 0 {
		t.Fatalf("hot path allocates: %v allocs/op", n)
	}
}

func TestSummarize(t *testing.T) {
	h := NewHistogram(nil)
	for i := 0; i < 100; i++ {
		h.Observe(10 * time.Millisecond)
	}
	s := h.Snapshot().Summarize()
	if s.Count != 100 {
		t.Errorf("count: got %d", s.Count)
	}
	if s.P50MS <= 0 || s.P99MS < s.P50MS {
		t.Errorf("quantiles not sane: %+v", s)
	}
	if math.Abs(s.MeanMS-10) > 1e-6 {
		t.Errorf("mean: got %v want 10", s.MeanMS)
	}
}
