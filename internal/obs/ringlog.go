package obs

import (
	"sync"
	"sync/atomic"
	"time"
)

// Record is one structured access-log entry. Fields are fixed-size or
// small strings the HTTP layer already holds (method and path are
// request constants, the request ID is built once per request), so
// recording copies headers, not bodies, and allocates nothing beyond
// what the caller already created.
type Record struct {
	Time      time.Time `json:"time"`
	Method    string    `json:"method"`
	Path      string    `json:"path"`
	RequestID string    `json:"request_id"`
	Status    int       `json:"status"`
	// DurationMicros is the request's wall time in microseconds —
	// integral so the JSON form stays compact and exact.
	DurationMicros int64 `json:"duration_us"`
}

// AccessLog is a fixed-capacity ring of Records. Writers claim a slot
// with one atomic increment and copy the record under that slot's own
// mutex — no global lock, no allocation, and concurrent writers only
// contend when they land on the same slot (i.e. the ring has wrapped a
// full lap while a write is still in flight). Readers (Drain) take the
// same per-slot locks, so a drained record is never torn: it is exactly
// what some writer stored, even under heavy wraparound.
type AccessLog struct {
	slots []logSlot
	mask  uint64
	next  atomic.Uint64 // next sequence number to claim
}

type logSlot struct {
	mu  sync.Mutex
	seq uint64 // 1-based sequence of the stored record; 0 = empty
	rec Record
}

// NewAccessLog returns a ring holding the most recent `size` records.
// Size is rounded up to a power of two (minimum 16) so slot selection
// is a mask, not a modulo.
func NewAccessLog(size int) *AccessLog {
	n := 16
	for n < size {
		n <<= 1
	}
	return &AccessLog{slots: make([]logSlot, n), mask: uint64(n - 1)}
}

// Cap returns the ring's slot count.
func (l *AccessLog) Cap() int { return len(l.slots) }

// Len returns how many records are currently held (≤ Cap).
func (l *AccessLog) Len() int {
	n := l.next.Load()
	if n > uint64(len(l.slots)) {
		return len(l.slots)
	}
	return int(n)
}

// Total returns how many records have ever been added (including
// overwritten ones) — the drop count is Total() - Len().
func (l *AccessLog) Total() uint64 { return l.next.Load() }

// Add stores r, overwriting the oldest record once the ring is full.
// Safe for any number of concurrent writers; never allocates.
func (l *AccessLog) Add(r Record) {
	seq := l.next.Add(1) // 1-based
	s := &l.slots[(seq-1)&l.mask]
	s.mu.Lock()
	// A slower writer that wrapped a full lap behind us must not clobber
	// the newer record: sequences only move forward within a slot.
	if seq > s.seq {
		s.seq = seq
		s.rec = r
	}
	s.mu.Unlock()
}

// Drain returns up to max of the most recent records in chronological
// order (oldest first). max ≤ 0 means all held records. Drain does not
// consume: the ring keeps its contents, so two drains with no writes in
// between return the same tail. Records written concurrently with the
// drain may or may not appear, but every returned record is complete.
func (l *AccessLog) Drain(max int) []Record {
	hi := l.next.Load() // sequences ≤ hi are candidates
	n := uint64(len(l.slots))
	lo := uint64(1)
	if hi > n {
		lo = hi - n + 1
	}
	if max > 0 && hi-lo+1 > uint64(max) {
		lo = hi - uint64(max) + 1
	}
	if hi == 0 {
		return nil
	}
	out := make([]Record, 0, hi-lo+1)
	for seq := lo; seq <= hi; seq++ {
		s := &l.slots[(seq-1)&l.mask]
		s.mu.Lock()
		// The slot holds this seq only if no newer lap has overwritten it
		// (and the writer that claimed seq has finished its copy).
		if s.seq == seq {
			out = append(out, s.rec)
		}
		s.mu.Unlock()
	}
	return out
}
