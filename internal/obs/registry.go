package obs

import (
	"fmt"
	"io"
	"sort"
	"strconv"
	"sync"
)

// A Registry holds named metric families and renders them in Prometheus
// text exposition format. Registration happens once, at construction
// time of whatever owns the metrics (engine, server, router); the hot
// path never touches the registry — it holds the Counter/Gauge/
// Histogram pointers registration returned. The registry is only walked
// at scrape time, under a mutex that instrumented code never contends.
//
// Label sets are prerendered at registration: a series registered as
// NewCounter("nc_requests_total", help, "endpoint", "search", "status",
// "2xx") stores the literal `{endpoint="search",status="2xx"}` string
// once and never formats labels again.
type Registry struct {
	mu     sync.Mutex
	fams   []*family
	byName map[string]*family
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{byName: make(map[string]*family)}
}

type metricKind int

const (
	kindCounter metricKind = iota
	kindGauge
	kindHistogram
)

// family is one metric name: its type, help text, and every labeled
// series registered under it.
type family struct {
	name   string
	help   string
	kind   metricKind
	series []*series
}

// series is one labeled instance within a family. Exactly one of
// counter/gauge/gaugeFn/hist is set, per the family's kind.
type series struct {
	labels  string // prerendered `{k="v",...}` or "" for unlabeled
	counter *Counter
	gauge   *Gauge
	gaugeFn func() float64
	hist    *Histogram
}

// renderLabels formats alternating key/value pairs into the canonical
// `{k="v",...}` form (empty string for no labels). Values are escaped
// per the exposition format (backslash, quote, newline).
func renderLabels(kv []string) string {
	if len(kv) == 0 {
		return ""
	}
	if len(kv)%2 != 0 {
		panic("obs: odd label key/value list")
	}
	out := "{"
	for i := 0; i < len(kv); i += 2 {
		if i > 0 {
			out += ","
		}
		out += kv[i] + `="` + escapeLabel(kv[i+1]) + `"`
	}
	return out + "}"
}

func escapeLabel(v string) string {
	// Fast path: nothing to escape (the common case for our static labels).
	clean := true
	for i := 0; i < len(v); i++ {
		if v[i] == '\\' || v[i] == '"' || v[i] == '\n' {
			clean = false
			break
		}
	}
	if clean {
		return v
	}
	out := make([]byte, 0, len(v)+4)
	for i := 0; i < len(v); i++ {
		switch v[i] {
		case '\\':
			out = append(out, '\\', '\\')
		case '"':
			out = append(out, '\\', '"')
		case '\n':
			out = append(out, '\\', 'n')
		default:
			out = append(out, v[i])
		}
	}
	return string(out)
}

func (r *Registry) familyFor(name, help string, kind metricKind) *family {
	f := r.byName[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind}
		r.byName[name] = f
		r.fams = append(r.fams, f)
		return f
	}
	if f.kind != kind {
		panic("obs: metric " + name + " re-registered with a different type")
	}
	return f
}

// NewCounter registers and returns a counter series. labelPairs is an
// alternating key/value list; series under one name must use it
// consistently. Call once at construction and keep the pointer.
func (r *Registry) NewCounter(name, help string, labelPairs ...string) *Counter {
	r.mu.Lock()
	defer r.mu.Unlock()
	c := &Counter{}
	f := r.familyFor(name, help, kindCounter)
	f.series = append(f.series, &series{labels: renderLabels(labelPairs), counter: c})
	return c
}

// NewGauge registers and returns a settable gauge series.
func (r *Registry) NewGauge(name, help string, labelPairs ...string) *Gauge {
	r.mu.Lock()
	defer r.mu.Unlock()
	g := &Gauge{}
	f := r.familyFor(name, help, kindGauge)
	f.series = append(f.series, &series{labels: renderLabels(labelPairs), gauge: g})
	return g
}

// NewGaugeFunc registers a gauge whose value is computed by fn at each
// scrape (runtime.NumGoroutine, heap bytes, follower lag). fn must be
// safe to call from the scrape goroutine.
func (r *Registry) NewGaugeFunc(name, help string, fn func() float64, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindGauge)
	f.series = append(f.series, &series{labels: renderLabels(labelPairs), gaugeFn: fn})
}

// NewHistogram registers and returns a latency histogram series on
// DefaultLatencyBounds.
func (r *Registry) NewHistogram(name, help string, labelPairs ...string) *Histogram {
	r.mu.Lock()
	defer r.mu.Unlock()
	h := NewHistogram(nil)
	f := r.familyFor(name, help, kindHistogram)
	f.series = append(f.series, &series{labels: renderLabels(labelPairs), hist: h})
	return h
}

// RegisterHistogram attaches an externally constructed histogram (e.g.
// one owned by an engine but exposed through a server registry) as a
// series of name.
func (r *Registry) RegisterHistogram(name, help string, h *Histogram, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindHistogram)
	f.series = append(f.series, &series{labels: renderLabels(labelPairs), hist: h})
}

// RegisterCounter attaches an externally constructed counter.
func (r *Registry) RegisterCounter(name, help string, c *Counter, labelPairs ...string) {
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.familyFor(name, help, kindCounter)
	f.series = append(f.series, &series{labels: renderLabels(labelPairs), counter: c})
}

// Histograms returns the name → merged-snapshot map of every histogram
// family (series under one name merged bucket-wise). Used by statsz
// summaries and the soak harness; not on any hot path.
func (r *Registry) Histograms() map[string]HistSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]HistSnapshot)
	for _, f := range r.fams {
		if f.kind != kindHistogram {
			continue
		}
		var merged HistSnapshot
		for _, s := range f.series {
			merged = merged.Merge(s.hist.Snapshot())
		}
		out[f.name] = merged
	}
	return out
}

// WritePrometheus renders every family in Prometheus text exposition
// format (version 0.0.4): # HELP / # TYPE comments, then one line per
// series — counters and gauges as bare samples, histograms as
// cumulative `_bucket{le=...}` lines plus `_sum` and `_count`.
// Families render in registration order (stable scrape diffs); an
// explicit trailing newline ends the payload as the format requires.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, len(r.fams))
	copy(fams, r.fams)
	r.mu.Unlock()

	for _, f := range fams {
		var typ string
		switch f.kind {
		case kindCounter:
			typ = "counter"
		case kindGauge:
			typ = "gauge"
		case kindHistogram:
			typ = "histogram"
		}
		if _, err := fmt.Fprintf(w, "# HELP %s %s\n# TYPE %s %s\n", f.name, f.help, f.name, typ); err != nil {
			return err
		}
		for _, s := range f.series {
			if err := writeSeries(w, f, s); err != nil {
				return err
			}
		}
	}
	return nil
}

func writeSeries(w io.Writer, f *family, s *series) error {
	switch f.kind {
	case kindCounter:
		_, err := fmt.Fprintf(w, "%s%s %d\n", f.name, s.labels, s.counter.Value())
		return err
	case kindGauge:
		var v float64
		if s.gaugeFn != nil {
			v = s.gaugeFn()
		} else {
			v = float64(s.gauge.Value())
		}
		_, err := fmt.Fprintf(w, "%s%s %s\n", f.name, s.labels, formatFloat(v))
		return err
	case kindHistogram:
		snap := s.hist.Snapshot()
		// Histogram bucket lines carry the series labels plus le=...;
		// splice le into the prerendered label block.
		var cum int64
		for i, c := range snap.Counts {
			cum += c
			le := "+Inf"
			if i < len(snap.Bounds) {
				le = formatFloat(snap.Bounds[i])
			}
			if _, err := fmt.Fprintf(w, "%s_bucket%s %d\n", f.name, spliceLabel(s.labels, "le", le), cum); err != nil {
				return err
			}
		}
		if _, err := fmt.Fprintf(w, "%s_sum%s %s\n", f.name, s.labels, formatFloat(float64(snap.SumNanos)/1e9)); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "%s_count%s %d\n", f.name, s.labels, snap.Count)
		return err
	}
	return nil
}

// spliceLabel appends k="v" to a prerendered label block.
func spliceLabel(labels, k, v string) string {
	if labels == "" {
		return "{" + k + `="` + v + `"}`
	}
	// labels is `{...}`: insert before the closing brace.
	return labels[:len(labels)-1] + "," + k + `="` + v + `"}`
}

// formatFloat renders a sample value the way Prometheus expects:
// shortest round-trip representation, integral values without an
// exponent where possible.
func formatFloat(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// SortedFamilyNames returns the registered family names, sorted — handy
// for tests and docs generation.
func (r *Registry) SortedFamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	names := make([]string, 0, len(r.fams))
	for _, f := range r.fams {
		names = append(names, f.name)
	}
	sort.Strings(names)
	return names
}
