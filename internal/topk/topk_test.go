package topk

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestBasicSelection(t *testing.T) {
	s := New(3)
	for i, score := range []float64{0.1, 0.9, 0.5, 0.7, 0.3} {
		s.Offer(uint32(i), score)
	}
	got := s.Ranked()
	if len(got) != 3 {
		t.Fatalf("len = %d, want 3", len(got))
	}
	wantIDs := []uint32{1, 3, 2} // scores 0.9, 0.7, 0.5
	for i, it := range got {
		if it.ID != wantIDs[i] {
			t.Fatalf("rank %d = id %d, want %d", i, it.ID, wantIDs[i])
		}
	}
}

func TestFewerThanK(t *testing.T) {
	s := New(10)
	s.Offer(1, 0.5)
	s.Offer(2, 0.8)
	if s.Len() != 2 {
		t.Fatalf("Len = %d, want 2", s.Len())
	}
	if _, ok := s.Threshold(); ok {
		t.Fatal("Threshold should not be ok before k items")
	}
	got := s.RankedIDs()
	if got[0] != 2 || got[1] != 1 {
		t.Fatalf("RankedIDs = %v", got)
	}
}

func TestZeroK(t *testing.T) {
	s := New(0)
	s.Offer(1, 0.5)
	if s.Len() != 0 {
		t.Fatal("k=0 should retain nothing")
	}
	s = New(-5)
	s.Offer(1, 0.5)
	if s.Len() != 0 {
		t.Fatal("negative k should retain nothing")
	}
}

func TestTieBreakBySmallerID(t *testing.T) {
	s := New(2)
	s.Offer(9, 0.5)
	s.Offer(3, 0.5)
	s.Offer(7, 0.5)
	got := s.RankedIDs()
	if got[0] != 3 || got[1] != 7 {
		t.Fatalf("tie break got %v, want [3 7]", got)
	}
}

func TestThreshold(t *testing.T) {
	s := New(2)
	s.Offer(1, 0.9)
	s.Offer(2, 0.4)
	th, ok := s.Threshold()
	if !ok || th != 0.4 {
		t.Fatalf("Threshold = %v/%v, want 0.4/true", th, ok)
	}
	s.Offer(3, 0.6)
	th, _ = s.Threshold()
	if th != 0.6 {
		t.Fatalf("Threshold after displacement = %v, want 0.6", th)
	}
}

func TestSelectMap(t *testing.T) {
	m := map[uint32]float64{1: 0.2, 2: 0.9, 3: 0.5}
	got := SelectMap(m, 2)
	if len(got) != 2 || got[0].ID != 2 || got[1].ID != 3 {
		t.Fatalf("SelectMap = %v", got)
	}
}

func TestSelectSliceWithSkip(t *testing.T) {
	scores := []float64{0.9, 0.8, 0.7, 0.6}
	got := SelectSlice(scores, 2, map[uint32]bool{0: true})
	if len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("SelectSlice = %v", got)
	}
}

// Property: selection matches full sort + truncate for random inputs.
func TestMatchesFullSortProperty(t *testing.T) {
	f := func(seed int64, kRaw uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(kRaw%20) + 1
		n := rng.Intn(200)
		scores := make([]float64, n)
		for i := range scores {
			scores[i] = float64(rng.Intn(50)) / 10 // force ties
		}
		got := SelectSlice(scores, k, nil)

		type pair struct {
			id uint32
			sc float64
		}
		all := make([]pair, n)
		for i, sc := range scores {
			all[i] = pair{uint32(i), sc}
		}
		sort.Slice(all, func(i, j int) bool {
			if all[i].sc != all[j].sc {
				return all[i].sc > all[j].sc
			}
			return all[i].id < all[j].id
		})
		want := all
		if len(want) > k {
			want = want[:k]
		}
		if len(got) != len(want) {
			return false
		}
		for i := range want {
			if got[i].ID != want[i].id || got[i].Score != want[i].sc {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkOffer(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	scores := make([]float64, 1<<16)
	for i := range scores {
		scores[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := New(100)
		for id, sc := range scores {
			s.Offer(uint32(id), sc)
		}
		if s.Len() != 100 {
			b.Fatal("bad len")
		}
	}
}
