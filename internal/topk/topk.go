// Package topk selects the k highest-scored items from a stream without
// sorting the full population.
//
// Context selection (Definition 2) repeatedly needs "the k nodes with the
// highest score" out of up to |V| candidates. A bounded min-heap does this
// in O(n log k) time and O(k) space. Ties are broken by the smaller item ID
// so selections are deterministic regardless of insertion order.
package topk

import (
	"container/heap"
	"sort"
)

// Item is a scored candidate.
type Item struct {
	ID    uint32
	Score float64
}

// less orders items by ascending score, breaking ties by descending ID, so
// the heap root is always the weakest item: lowest score, and among equal
// scores the largest ID (meaning smaller IDs win a tie for the last slot).
func less(a, b Item) bool {
	if a.Score != b.Score {
		return a.Score < b.Score
	}
	return a.ID > b.ID
}

// Selector keeps the k best items seen so far.
type Selector struct {
	k     int
	items minHeap
}

// New returns a Selector that retains the k best items. k must be >= 0;
// k == 0 retains nothing.
func New(k int) *Selector {
	if k < 0 {
		k = 0
	}
	return &Selector{k: k, items: make(minHeap, 0, k)}
}

// Offer considers an item for inclusion.
func (s *Selector) Offer(id uint32, score float64) {
	if s.k == 0 {
		return
	}
	it := Item{ID: id, Score: score}
	if len(s.items) < s.k {
		heap.Push(&s.items, it)
		return
	}
	if less(s.items[0], it) {
		s.items[0] = it
		heap.Fix(&s.items, 0)
	}
}

// Len returns the number of retained items (≤ k).
func (s *Selector) Len() int { return len(s.items) }

// Threshold returns the lowest retained score, or -Inf semantics via ok =
// false when fewer than k items have been offered.
func (s *Selector) Threshold() (score float64, ok bool) {
	if len(s.items) < s.k || s.k == 0 {
		return 0, false
	}
	return s.items[0].Score, true
}

// Ranked returns the retained items sorted by descending score (ties by
// ascending ID). The Selector remains usable.
func (s *Selector) Ranked() []Item {
	out := make([]Item, len(s.items))
	copy(out, s.items)
	sort.Slice(out, func(i, j int) bool { return less(out[j], out[i]) })
	return out
}

// RankedIDs returns just the IDs of Ranked().
func (s *Selector) RankedIDs() []uint32 {
	ranked := s.Ranked()
	ids := make([]uint32, len(ranked))
	for i, it := range ranked {
		ids[i] = it.ID
	}
	return ids
}

// SelectMap ranks the entries of a score map and returns the top k.
func SelectMap(scores map[uint32]float64, k int) []Item {
	s := New(k)
	for id, sc := range scores {
		s.Offer(id, sc)
	}
	return s.Ranked()
}

// SelectSlice ranks the entries of a dense score slice (index = ID, skipping
// NaN-free zero handling: zeros are valid scores) and returns the top k.
// Entries whose index appears in skip are excluded.
func SelectSlice(scores []float64, k int, skip map[uint32]bool) []Item {
	s := New(k)
	for id, sc := range scores {
		if skip != nil && skip[uint32(id)] {
			continue
		}
		s.Offer(uint32(id), sc)
	}
	return s.Ranked()
}

// minHeap implements heap.Interface ordered by less.
type minHeap []Item

func (h minHeap) Len() int            { return len(h) }
func (h minHeap) Less(i, j int) bool  { return less(h[i], h[j]) }
func (h minHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *minHeap) Push(x interface{}) { *h = append(*h, x.(Item)) }
func (h *minHeap) Pop() interface{} {
	old := *h
	n := len(old)
	it := old[n-1]
	*h = old[:n-1]
	return it
}
