package exec

import (
	"sync"
	"sync/atomic"
	"testing"
	"time"
)

// TestPoolConcurrencyBound: a pool of w workers runs at most w tasks on
// pool goroutines; with the submitter running fallbacks inline, observed
// concurrency never exceeds w+1 (workers plus the one submitting
// goroutine).
func TestPoolConcurrencyBound(t *testing.T) {
	const workers = 3
	p := NewPool(workers)
	var inFlight, peak atomic.Int64
	g := NewGroup(p)
	for i := 0; i < 50; i++ {
		g.Go(func() {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
		})
	}
	g.Wait()
	if got := peak.Load(); got > workers+1 {
		t.Fatalf("peak concurrency %d, want <= %d (workers + submitter)", got, workers+1)
	}
}

// TestGroupRunsEveryTask: every submitted task runs exactly once whether
// it was handed off or ran inline.
func TestGroupRunsEveryTask(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	g := NewGroup(p)
	for i := 0; i < 1000; i++ {
		g.Go(func() { ran.Add(1) })
	}
	g.Wait()
	if ran.Load() != 1000 {
		t.Fatalf("%d tasks ran, want 1000", ran.Load())
	}
}

// TestNestedGroupsNoDeadlock: tasks that themselves fan out through the
// same pool must complete — the inline fallback guarantees progress even
// when the nesting exceeds the worker count.
func TestNestedGroupsNoDeadlock(t *testing.T) {
	p := NewPool(2)
	var ran atomic.Int64
	done := make(chan struct{})
	go func() {
		outer := NewGroup(p)
		for i := 0; i < 8; i++ {
			outer.Go(func() {
				inner := NewGroup(p)
				for j := 0; j < 8; j++ {
					inner.Go(func() { ran.Add(1) })
				}
				inner.Wait()
			})
		}
		outer.Wait()
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("nested groups deadlocked")
	}
	if ran.Load() != 64 {
		t.Fatalf("%d inner tasks ran, want 64", ran.Load())
	}
}

// TestNilPoolGroupIsSerial: the zero-value / nil-pool group runs tasks
// inline in submission order.
func TestNilPoolGroupIsSerial(t *testing.T) {
	var g Group
	var order []int
	for i := 0; i < 5; i++ {
		i := i
		g.Go(func() { order = append(order, i) })
	}
	g.Wait()
	for i, v := range order {
		if v != i {
			t.Fatalf("inline order %v, want ascending", order)
		}
	}
}

// TestGroupsShareOnePool: many concurrent groups over one pool all
// complete and never lose a task.
func TestGroupsShareOnePool(t *testing.T) {
	p := NewPool(4)
	var ran atomic.Int64
	var wg sync.WaitGroup
	for c := 0; c < 16; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			g := NewGroup(p)
			for i := 0; i < 100; i++ {
				g.Go(func() { ran.Add(1) })
			}
			g.Wait()
		}()
	}
	wg.Wait()
	if ran.Load() != 1600 {
		t.Fatalf("%d tasks ran, want 1600", ran.Load())
	}
}

// TestDefaultPoolSingleton: Default returns one shared pool.
func TestDefaultPoolSingleton(t *testing.T) {
	if Default() != Default() {
		t.Fatal("Default must return the same pool")
	}
}
