package exec

import (
	"testing"
	"time"
)

// waitFor polls cond for up to ~2s — gauge updates race the observer by
// design, so assertions settle rather than sample.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(time.Millisecond)
	}
	t.Fatalf("timeout waiting for %s", what)
}

// TestPoolStats: Busy gauges tasks on pool workers, InlineRuns counts
// saturation spills, and both settle back after the load drains.
func TestPoolStats(t *testing.T) {
	p := NewPool(2)
	if s := p.Stats(); s.Workers != 2 || s.Busy != 0 || s.InlineRuns != 0 {
		t.Fatalf("fresh pool stats = %+v", s)
	}

	release := make(chan struct{})
	block := func() { <-release }
	// Saturate both workers. TrySubmit is a true idleness probe, so it can
	// refuse until the freshly started workers park; retry instead of
	// assuming startup order.
	for i := 0; i < 2; i++ {
		waitFor(t, "worker handoff", func() bool { return p.TrySubmit(block) })
	}
	waitFor(t, "Busy=2", func() bool { return p.Stats().Busy == 2 })

	// A Group task submitted against the saturated pool runs inline on its
	// submitter and bumps the spill counter.
	g := NewGroup(p)
	done := make(chan struct{})
	go func() {
		defer close(done)
		g.Go(func() {})
	}()
	<-done
	g.Wait()
	s := p.Stats()
	if s.InlineRuns != 1 {
		t.Fatalf("InlineRuns = %d after a saturated submit, want 1", s.InlineRuns)
	}
	if s.Busy != 2 {
		t.Fatalf("Busy = %d while both workers blocked, want 2", s.Busy)
	}

	close(release)
	waitFor(t, "Busy=0", func() bool { return p.Stats().Busy == 0 })
	if s := p.Stats(); s.InlineRuns != 1 || s.Workers != 2 {
		t.Fatalf("drained pool stats = %+v", s)
	}
}
