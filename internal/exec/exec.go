// Package exec provides the process-wide bounded executor shared by every
// parallel stage of the search pipeline: the row-partitioned PageRank
// gather, the comparison stage's label pool, and the batch search's
// per-query fan-out.
//
// Before this package each parallel call site spawned its own goroutines —
// fine for one query, but a serving host running hundreds of concurrent
// searches multiplied every request by every stage's worker count. The
// shared pool caps the process at one fixed set of workers; call sites
// submit shards and keep one shard for themselves.
//
// # Design
//
// Submission is direct handoff with inline fallback: Group.Go hands the
// task to an idle pool worker, or — when every worker is busy — runs it on
// the calling goroutine before returning. This has two consequences that
// shape the whole package:
//
//   - No unbounded queue: total concurrency is workers + submitters, both
//     bounded, and memory cannot grow with offered load.
//   - No nesting deadlock: a stage running inside a pool worker (the batch
//     path runs CompareSets inside a per-query task, and each CompareSets
//     fans out its labels) can never wedge waiting for workers that are
//     themselves waiting — a task that finds no idle worker simply runs
//     inline, so progress is guaranteed by construction.
//
// Correctness of callers does not depend on where a task runs: every call
// site partitions work into independent shards writing disjoint outputs,
// so results are bitwise identical whether a shard ran on a pool worker or
// inline on the submitter.
package exec

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a fixed set of worker goroutines accepting direct task
// handoffs. The zero value is not usable; construct with NewPool.
type Pool struct {
	tasks   chan func()
	workers int
	// busy gauges tasks currently running on pool workers; inline counts
	// (cumulatively) tasks a Group ran on the submitter because no worker
	// was idle — the pool's saturation signal, since direct handoff has no
	// queue whose depth could grow.
	busy   atomic.Int64
	inline atomic.Int64
}

// NewPool starts a pool of exactly workers goroutines (minimum 1). The
// workers live for the life of the process; a Pool has no Close because
// its idle cost is workers goroutines parked on a channel receive.
func NewPool(workers int) *Pool {
	if workers < 1 {
		workers = 1
	}
	p := &Pool{tasks: make(chan func()), workers: workers}
	for i := 0; i < workers; i++ {
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	for task := range p.tasks {
		p.busy.Add(1)
		task()
		p.busy.Add(-1)
	}
}

// PoolStats is a point-in-time snapshot of a pool's load counters.
type PoolStats struct {
	// Workers is the fixed goroutine count the pool was built with.
	Workers int
	// Busy is the number of tasks running on pool workers right now — the
	// executor's in-flight gauge. Busy/Workers is the pool's utilization.
	Busy int64
	// InlineRuns counts, cumulatively, Group tasks that ran inline on
	// their submitter because every worker was busy. Direct handoff means
	// the pool has no queue — a growing InlineRuns is the queue-pressure
	// signal: offered load exceeding Workers.
	InlineRuns int64
}

// Stats returns the pool's current load counters. Safe for concurrent use;
// the fields are sampled independently (Busy can drift by a task between
// reads), which is fine for admission gates and stats endpoints.
func (p *Pool) Stats() PoolStats {
	return PoolStats{
		Workers:    p.workers,
		Busy:       p.busy.Load(),
		InlineRuns: p.inline.Load(),
	}
}

// TrySubmit hands task to an idle worker, reporting false — without
// running the task — when every worker is busy. The unbuffered channel
// makes the select a true idleness probe: the send succeeds only when a
// worker is parked on the receive.
func (p *Pool) TrySubmit(task func()) bool {
	select {
	case p.tasks <- task:
		return true
	default:
		return false
	}
}

var (
	defaultOnce sync.Once
	defaultPool *Pool
)

// Default returns the process-wide shared pool, created on first use with
// GOMAXPROCS workers — one per schedulable core, matching the parallelism
// the runtime will actually grant.
func Default() *Pool {
	defaultOnce.Do(func() {
		defaultPool = NewPool(runtime.GOMAXPROCS(0))
	})
	return defaultPool
}

// Group tracks a set of tasks submitted to one pool, à la sync.WaitGroup.
// The zero value submits every task inline (a nil-pool group is valid and
// simply serial); use NewGroup for pooled execution. A Group must not be
// copied and is not reusable after Wait returns.
type Group struct {
	pool *Pool
	ctx  context.Context
	wg   sync.WaitGroup
}

// NewGroup returns a Group submitting to p.
func NewGroup(p *Pool) *Group {
	return &Group{pool: p}
}

// NewGroupCtx returns a Group submitting to p whose Go becomes a no-op
// once ctx is cancelled: tasks not yet handed off are dropped rather than
// started. Tasks already running are not interrupted — cancellation-aware
// tasks check ctx themselves between work items — so a cancelled Group's
// Wait returns as soon as the in-flight tasks drain.
func NewGroupCtx(ctx context.Context, p *Pool) *Group {
	return &Group{pool: p, ctx: ctx}
}

// Go runs task on an idle pool worker, or inline on the caller when none
// is idle (see the package comment for why this never deadlocks). Inline
// execution means Go can block for the task's full duration; callers
// submitting N shards typically submit N−1 and run the last themselves,
// so the inline case costs nothing extra.
func (g *Group) Go(task func()) {
	if g.ctx != nil && g.ctx.Err() != nil {
		return
	}
	if g.pool == nil {
		task()
		return
	}
	g.wg.Add(1)
	wrapped := func() {
		defer g.wg.Done()
		task()
	}
	if !g.pool.TrySubmit(wrapped) {
		g.pool.inline.Add(1)
		wrapped()
	}
}

// Wait blocks until every task passed to Go has finished.
func (g *Group) Wait() {
	g.wg.Wait()
}

// RunWorkers runs `run` on up to workers concurrent executions drawn from
// the default pool — workers−1 submitted, one inline on the caller — and
// returns when all have finished. It is the worker-fan idiom shared by
// the comparison stage and the batch search: run is a self-scheduling
// worker (typically draining an atomic claim counter), so executing it
// fewer times than requested, or entirely inline on a busy pool, only
// reduces concurrency, never the work done. workers <= 1 runs serially.
func RunWorkers(workers int, run func()) {
	g := NewGroup(Default())
	for w := 1; w < workers; w++ {
		g.Go(run)
	}
	run()
	g.Wait()
}

// RunWorkersCtx is RunWorkers under a cancellation context: workers not
// yet launched when ctx is cancelled never start, and the inline
// execution is skipped when ctx is already done. run is expected to check
// ctx itself between work items (the claim-loop idiom), so cancellation
// stops the fan within one item's latency; a nil ctx behaves exactly like
// RunWorkers. Like RunWorkers, fewer executions only reduce concurrency —
// under cancellation the caller abandons the output entirely, so dropped
// workers never corrupt a result.
func RunWorkersCtx(ctx context.Context, workers int, run func()) {
	if ctx == nil {
		RunWorkers(workers, run)
		return
	}
	g := NewGroupCtx(ctx, Default())
	for w := 1; w < workers; w++ {
		g.Go(run)
	}
	if ctx.Err() == nil {
		run()
	}
	g.Wait()
}
