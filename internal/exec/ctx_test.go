package exec

import (
	"context"
	"sync/atomic"
	"testing"
)

// TestGroupCtxCancelledDropsTasks: Go on a cancelled group is a no-op —
// no execution, no Wait leak.
func TestGroupCtxCancelledDropsTasks(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	g := NewGroupCtx(ctx, Default())
	var ran atomic.Int64
	g.Go(func() { ran.Add(1) })
	g.Wait()
	if ran.Load() != 1 {
		t.Fatalf("live group ran %d tasks, want 1", ran.Load())
	}
	cancel()
	g2 := NewGroupCtx(ctx, Default())
	g2.Go(func() { ran.Add(1) })
	g2.Wait()
	if ran.Load() != 1 {
		t.Fatal("cancelled group still ran a task")
	}
}

// TestRunWorkersCtx: a live ctx behaves like RunWorkers (the claim loop
// drains everything); a pre-cancelled ctx runs nothing, including the
// inline share.
func TestRunWorkersCtx(t *testing.T) {
	var next, done atomic.Int64
	const items = 50
	run := func() {
		for {
			i := next.Add(1) - 1
			if i >= items {
				return
			}
			done.Add(1)
		}
	}
	RunWorkersCtx(context.Background(), 4, run)
	if done.Load() != items {
		t.Fatalf("live ctx drained %d of %d items", done.Load(), items)
	}

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	var ran atomic.Int64
	RunWorkersCtx(ctx, 4, func() { ran.Add(1) })
	if ran.Load() != 0 {
		t.Fatalf("cancelled RunWorkersCtx executed %d workers", ran.Load())
	}

	// nil ctx must behave exactly like RunWorkers.
	next.Store(0)
	done.Store(0)
	RunWorkersCtx(nil, 4, run)
	if done.Load() != items {
		t.Fatalf("nil ctx drained %d of %d items", done.Load(), items)
	}
}

// TestRunWorkersCtxMidCancellation: workers observing the cancel in
// their claim loop stop early; RunWorkersCtx still returns (no deadlock)
// and no new work starts after the cancel settles.
func TestRunWorkersCtxMidCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	var claimed atomic.Int64
	const items = 1 << 20
	run := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := claimed.Add(1)
			if i >= items {
				return
			}
			if i == 10 {
				cancel()
			}
		}
	}
	RunWorkersCtx(ctx, 4, run)
	if c := claimed.Load(); c >= items {
		t.Fatalf("claim loop drained all %d items despite cancellation", c)
	}
	cancel()
}
