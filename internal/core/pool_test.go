package core

import (
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/qcache"
)

// TestCompareSetsPoolBound verifies the comparison stage holds at most
// Parallelism concurrent label tasks — a fixed worker pool, not a
// goroutine per label gated by a semaphore.
func TestCompareSetsPoolBound(t *testing.T) {
	g, query := leadersGraph()
	ctx := peerContext(g)
	for _, par := range []int{1, 2, 3} {
		var inFlight, peak atomic.Int64
		testLabelHook = func() {
			cur := inFlight.Add(1)
			for {
				old := peak.Load()
				if cur <= old || peak.CompareAndSwap(old, cur) {
					break
				}
			}
			// Hold the slot long enough for would-be over-spawned workers
			// to pile up observably.
			time.Sleep(time.Millisecond)
			inFlight.Add(-1)
		}
		chars := compareSets(t, g, query, ctx, Options{Seed: 7, Parallelism: par})
		testLabelHook = nil
		if len(chars) == 0 {
			t.Fatal("no characteristics tested")
		}
		if got := peak.Load(); got > int64(par) {
			t.Fatalf("Parallelism=%d: %d concurrent label tasks observed", par, got)
		}
	}
}

// TestCompareSetsParallelismIdentical: every worker count produces the
// exact same report — per-label slots plus a deterministic sort.
func TestCompareSetsParallelismIdentical(t *testing.T) {
	g, query := leadersGraph()
	ctx := peerContext(g)
	want := compareSets(t, g, query, ctx, Options{Seed: 7, Parallelism: 1})
	for _, par := range []int{2, 4, 8, 64} {
		got := compareSets(t, g, query, ctx, Options{Seed: 7, Parallelism: par})
		if len(got) != len(want) {
			t.Fatalf("Parallelism=%d: %d labels vs %d", par, len(got), len(want))
		}
		for i := range want {
			a, b := want[i], got[i]
			if a.Name != b.Name || a.Score != b.Score || a.InstP != b.InstP || a.CardP != b.CardP {
				t.Fatalf("Parallelism=%d differs at %d: %+v vs %+v", par, i, a, b)
			}
		}
	}
}

// TestCompareSetsEmptyInput: a query/context pair without labels must not
// wedge or panic the pool.
func TestCompareSetsEmptyInput(t *testing.T) {
	g, _ := leadersGraph()
	if chars := compareSets(t, g, nil, nil, Options{Seed: 1}); len(chars) != 0 {
		t.Fatalf("empty input produced %d characteristics", len(chars))
	}
}

// TestCompareSetsTestCache: a warm repeat serves every label from the
// memo (hit counters prove it) and returns the identical report.
func TestCompareSetsTestCache(t *testing.T) {
	g, query := leadersGraph()
	ctx := peerContext(g)
	cache := qcache.New(1024)
	opt := Options{Seed: 7, TestCache: cache}
	cold := compareSets(t, g, query, ctx, opt)
	st := cache.Stats()
	if st.Hits != 0 || st.Misses != uint64(len(cold)) {
		t.Fatalf("cold run: %+v, want %d misses and no hits", st, len(cold))
	}
	warm := compareSets(t, g, query, ctx, opt)
	st = cache.Stats()
	if st.Hits != uint64(len(cold)) || st.Misses != uint64(len(cold)) {
		t.Fatalf("warm run: %+v, want %d hits", st, len(cold))
	}
	for i := range cold {
		a, b := cold[i], warm[i]
		if a.Name != b.Name || a.Score != b.Score || a.InstP != b.InstP || a.CardP != b.CardP {
			t.Fatalf("cached report differs at %d: %+v vs %+v", i, a, b)
		}
	}
	// A permuted query is the same multiset: still fully warm.
	perm := []uint32{query[1], query[0]}
	compareSets(t, g, perm, ctx, opt)
	if st = cache.Stats(); st.Hits != 2*uint64(len(cold)) {
		t.Fatalf("permuted query missed the memo: %+v", st)
	}
}

// TestCompareSetsTestCacheCallerOwnsSlices: mutating a returned record's
// distribution slices must not corrupt the cached master — callers own
// what they receive, exactly as without a cache.
func TestCompareSetsTestCacheCallerOwnsSlices(t *testing.T) {
	g, query := leadersGraph()
	ctx := peerContext(g)
	opt := Options{Seed: 7, TestCache: qcache.New(1024)}
	first := compareSets(t, g, query, ctx, opt)
	for i := range first {
		for j := range first[i].Inst.Query {
			first[i].Inst.Query[j] = -999
		}
		for j := range first[i].Card.Context {
			first[i].Card.Context[j] = -999
		}
	}
	warm := compareSets(t, g, query, ctx, opt)
	for _, c := range warm {
		for _, v := range c.Inst.Query {
			if v == -999 {
				t.Fatalf("%s: cached instance counts were corrupted by a caller mutation", c.Name)
			}
		}
		for _, v := range c.Card.Context {
			if v == -999 {
				t.Fatalf("%s: cached cardinality counts were corrupted by a caller mutation", c.Name)
			}
		}
	}
}

// TestCompareSetsTestCacheKeying: anything that changes a test outcome —
// context, query multiplicity, policy — must key separately.
func TestCompareSetsTestCacheKeying(t *testing.T) {
	g, query := leadersGraph()
	ctx := peerContext(g)
	cache := qcache.New(4096)
	base := Options{Seed: 7, TestCache: cache}
	compareSets(t, g, query, ctx, base)
	miss0 := cache.Stats().Misses

	// Shorter context: new distributions, all labels recompute.
	compareSets(t, g, query, ctx[:len(ctx)-1], base)
	if st := cache.Stats(); st.Misses == miss0 {
		t.Fatal("shrunken context reused stale entries")
	}
	miss1 := cache.Stats().Misses

	// Duplicated query node: the multiset changed, counts double.
	dup := []uint32{query[0], query[0], query[1]}
	dupChars := compareSets(t, g, dup, ctx, base)
	if st := cache.Stats(); st.Misses == miss1 {
		t.Fatal("duplicate-node query reused the deduplicated entries")
	}
	single := compareSets(t, g, query, ctx, base)
	// Sanity: the duplicated query genuinely observes different counts.
	a := byName(t, single, "studied")
	b := byName(t, dupChars, "studied")
	sum := func(xs []int) int {
		n := 0
		for _, x := range xs {
			n += x
		}
		return n
	}
	if sum(b.Inst.Query) <= sum(a.Inst.Query) {
		t.Fatalf("duplicated query should add observations: %d vs %d",
			sum(b.Inst.Query), sum(a.Inst.Query))
	}
}

func BenchmarkCompareSets(b *testing.B) {
	g, query := leadersGraph()
	ctx := peerContext(g)
	b.Run("uncached", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			compareSets(b, g, query, ctx, Options{Seed: 1})
		}
	})
	b.Run("warm", func(b *testing.B) {
		b.ReportAllocs()
		opt := Options{Seed: 1, TestCache: qcache.New(1024)}
		compareSets(b, g, query, ctx, opt)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			compareSets(b, g, query, ctx, opt)
		}
	})
}
