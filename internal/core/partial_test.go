package core

import (
	"context"
	"errors"
	"reflect"
	"sync/atomic"
	"testing"

	"repro/internal/kg"
)

// partialLabels replicates CompareSets' deterministic label enumeration
// (LabelsOf over query ∪ cset, inverse labels dropped per opt) so tests
// can check prefix consistency of a degraded run.
func partialLabels(g *kg.Graph, query, cset []kg.NodeID, skipInverse bool) []kg.LabelID {
	both := append(append([]kg.NodeID(nil), query...), cset...)
	labels := g.LabelsOf(both)
	if skipInverse {
		kept := labels[:0]
		for _, l := range labels {
			if !g.IsInverse(l) {
				kept = append(kept, l)
			}
		}
		labels = kept
	}
	return labels
}

// TestCompareSetsPartial: cancelling a Partial comparison returns the
// labels tested so far — each record bitwise identical to its slot in the
// uncut run, the tested set a prefix of the enumeration order — alongside
// a *PartialError that unwraps to the ctx error.
func TestCompareSetsPartial(t *testing.T) {
	g, query := leadersGraph()
	cset := peerContext(g)
	opt := Options{Seed: 7, Partial: true}
	full := compareSets(t, g, query, cset, Options{Seed: 7})
	byLabel := make(map[kg.LabelID]Characteristic, len(full))
	for _, c := range full {
		byLabel[c.Label] = c
	}
	labels := partialLabels(g, query, cset, false)
	if len(labels) < 3 {
		t.Fatalf("test graph too small: %d labels", len(labels))
	}

	for _, par := range []int{1, 4} {
		const cutAfter = 2
		ctx, cancel := context.WithCancel(context.Background())
		var tested atomic.Int64
		testLabelHook = func() {
			if tested.Add(1) == cutAfter {
				cancel()
			}
		}
		o := opt
		o.Parallelism = par
		partial, err := CompareSets(ctx, g, query, cset, o)
		testLabelHook = nil
		cancel()

		var pe *PartialError
		if !errors.As(err, &pe) {
			t.Fatalf("par=%d: err = %v, want *PartialError", par, err)
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: PartialError does not unwrap to context.Canceled: %v", par, err)
		}
		if pe.Tested != len(partial) || pe.Total != len(labels) {
			t.Fatalf("par=%d: PartialError counts %d/%d, want %d/%d",
				par, pe.Tested, pe.Total, len(partial), len(labels))
		}
		if len(partial) == 0 || len(partial) >= len(labels) {
			t.Fatalf("par=%d: %d partial records for %d labels, want a proper non-empty subset",
				par, len(partial), len(labels))
		}
		// The tested set must be exactly the first len(partial) labels of
		// the enumeration order, and each record identical to the full
		// run's record for that label.
		seen := make(map[kg.LabelID]bool, len(partial))
		for _, c := range partial {
			seen[c.Label] = true
			want, ok := byLabel[c.Label]
			if !ok {
				t.Fatalf("par=%d: partial run tested label %q absent from the full run", par, c.Name)
			}
			if !reflect.DeepEqual(c, want) {
				t.Fatalf("par=%d: degraded record for %q differs from the uncut run", par, c.Name)
			}
		}
		for i, l := range labels[:len(partial)] {
			if !seen[l] {
				t.Fatalf("par=%d: tested set is not a prefix: enumeration slot %d (label %d) missing", par, i, l)
			}
		}
	}
}

// TestFindNCPartial: the full pipeline surfaces a comparison-stage cut as
// a Result carrying the selected context plus the tested prefix and a
// *PartialError; without Options.Partial the same cut stays all-or-nothing.
func TestFindNCPartial(t *testing.T) {
	g, query := leadersGraph()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	var tested atomic.Int64
	testLabelHook = func() {
		if tested.Add(1) == 1 {
			cancel()
		}
	}
	defer func() { testLabelHook = nil }()
	res, err := FindNC(ctx, g, query, Options{Seed: 7, ContextSize: 10, Partial: true, Parallelism: 1})
	var pe *PartialError
	if !errors.As(err, &pe) {
		t.Fatalf("err = %v, want *PartialError", err)
	}
	if len(res.Context) == 0 {
		t.Fatal("degraded Result lost its context")
	}
	if len(res.Characteristics) != pe.Tested {
		t.Fatalf("%d characteristics but Tested=%d", len(res.Characteristics), pe.Tested)
	}

	// Same cut without Partial: bare ctx error, no result.
	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	tested.Store(0)
	testLabelHook = func() {
		if tested.Add(1) == 1 {
			cancel2()
		}
	}
	res2, err2 := FindNC(ctx2, g, query, Options{Seed: 7, ContextSize: 10, Parallelism: 1})
	if !errors.Is(err2, context.Canceled) || errors.As(err2, &pe) {
		t.Fatalf("non-Partial err = %v, want bare context.Canceled", err2)
	}
	if len(res2.Characteristics) != 0 || len(res2.Context) != 0 {
		t.Fatal("non-Partial cancellation returned a result")
	}
}
