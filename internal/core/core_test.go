package core

import (
	"fmt"
	"testing"

	"repro/internal/ctxsel"
	"repro/internal/kg"
	"repro/internal/stats"
)

var leaderNames = []string{"Merkel", "Obama", "Putin", "Renzi", "Hollande",
	"Rajoy", "Cameron", "Trudeau", "Abe", "Dilma", "Modi", "Nieto"}

// leadersGraph builds an enlarged Figure-1 world: a query of two leaders
// (Merkel childless with a doctorate) plus a community of peer leaders.
// Peers are densely connected to each other (met edges, shared G20/UN
// membership, shared summits) so that metapath mining can find them, and a
// distractor population of citizens shares only weak structure.
func leadersGraph() (*kg.Graph, []kg.NodeID) {
	b := kg.NewBuilder(512)
	countries := []string{"Germany", "USA", "Russia", "Italy", "France",
		"Spain", "UK", "Canada", "Japan", "Brazil", "India", "Mexico"}
	for i, leader := range leaderNames {
		b.AddEdge(leader, "leaderOf", countries[i])
		b.AddEdge(leader, "memberOf", "G20")
		b.AddEdge(leader, "memberOf", "UN")
		b.AddEdge(leader, "attended", "Summit2015")
		b.AddEdge(leader, "attended", "Summit2016")
		// Dense peer structure: each leader met the next three.
		for d := 1; d <= 3; d++ {
			b.AddEdge(leader, "met", leaderNames[(i+d)%len(leaderNames)])
		}
		if leader == "Merkel" {
			b.AddEdge(leader, "studied", "Physics")
			b.AddEdge(leader, "hasDoctorate", "PhD")
		} else {
			b.AddEdge(leader, "studied", "Law")
			for c := 0; c <= i%3; c++ {
				b.AddEdge(leader, "hasChild", fmt.Sprintf("child-%s-%d", leader, c))
			}
		}
	}
	// Distractor population: citizens connected to countries but not to
	// the leader community.
	for i := 0; i < 50; i++ {
		name := fmt.Sprintf("citizen%02d", i)
		b.AddEdge(name, "livesIn", countries[i%len(countries)])
		b.AddEdge(name, "studied", "Law")
		b.AddEdge(name, "hasChild", fmt.Sprintf("child-%s", name))
	}
	g := b.Build()
	merkel, _ := g.NodeByName("Merkel")
	obama, _ := g.NodeByName("Obama")
	return g, []kg.NodeID{merkel, obama}
}

// peerContext returns the ten non-query leaders — the "ideal" context a
// perfect selector would return.
func peerContext(g *kg.Graph) []kg.NodeID {
	var out []kg.NodeID
	for _, name := range leaderNames[2:] {
		id, ok := g.NodeByName(name)
		if !ok {
			panic("missing " + name)
		}
		out = append(out, id)
	}
	return out
}

func TestFindNCSelectsLeaderContext(t *testing.T) {
	g, query := leadersGraph()
	res := findNC(t, g, query, Options{
		Selector:    ctxsel.ContextRW{Walks: 60000, Seed: 11},
		ContextSize: 10,
		Seed:        11,
	})
	if len(res.Context) == 0 {
		t.Fatal("no context selected")
	}
	isLeader := make(map[kg.NodeID]bool)
	for _, name := range leaderNames {
		id, _ := g.NodeByName(name)
		isLeader[id] = true
	}
	leaders := 0
	for _, id := range res.ContextIDs() {
		if isLeader[id] {
			leaders++
		}
	}
	if leaders < len(res.Context)/2 {
		names := make([]string, 0, len(res.Context))
		for _, id := range res.ContextIDs() {
			names = append(names, g.NodeName(id))
		}
		t.Fatalf("only %d of %d context nodes are leaders: %v", leaders, len(res.Context), names)
	}
}

// The explicit-context tests below decouple the Section 3.2 stage from
// selector quality, using the ideal peer context.

func compareWithPeers(t *testing.T) (*kg.Graph, []Characteristic) {
	t.Helper()
	g, query := leadersGraph()
	chars := compareSets(t, g, query, peerContext(g), Options{Seed: 7})
	if len(chars) == 0 {
		t.Fatal("no characteristics tested")
	}
	return g, chars
}

func byName(t *testing.T, chars []Characteristic, name string) Characteristic {
	t.Helper()
	for _, c := range chars {
		if c.Name == name {
			return c
		}
	}
	t.Fatalf("label %s not tested", name)
	return Characteristic{}
}

func TestMerkelHasNoChildIsNotable(t *testing.T) {
	_, chars := compareWithPeers(t)
	c := byName(t, chars, "hasChild")
	if !c.Notable() {
		t.Fatalf("hasChild not notable: instP=%v cardP=%v", c.InstP, c.CardP)
	}
	// Merkel's zero children is impossible under the context cardinality
	// distribution (every peer has at least one child).
	if c.CardP > 0.05 {
		t.Fatalf("hasChild cardinality P = %v, want ≤ 0.05", c.CardP)
	}
}

func TestMerkelDoctorateIsNotable(t *testing.T) {
	_, chars := compareWithPeers(t)
	c := byName(t, chars, "hasDoctorate")
	if !c.Notable() {
		t.Fatalf("hasDoctorate not notable: instP=%v cardP=%v", c.InstP, c.CardP)
	}
	if c.Score <= 0.9 {
		t.Fatalf("hasDoctorate score = %v, want > 0.9", c.Score)
	}
}

func TestMerkelStudiedPhysicsIsNotable(t *testing.T) {
	// The paper's Figure-1 walkthrough: studied deviates because Merkel
	// studied Physics while the context studied Law.
	_, chars := compareWithPeers(t)
	c := byName(t, chars, "studied")
	if !c.Notable() {
		t.Fatalf("studied not notable: instP=%v cardP=%v", c.InstP, c.CardP)
	}
}

func TestSharedLabelsNotNotable(t *testing.T) {
	_, chars := compareWithPeers(t)
	for _, name := range []string{"memberOf", "attended"} {
		c := byName(t, chars, name)
		if c.Notable() {
			t.Fatalf("%s should not be notable: score=%v instP=%v cardP=%v",
				name, c.Score, c.InstP, c.CardP)
		}
	}
}

func TestResultsSortedByScore(t *testing.T) {
	_, chars := compareWithPeers(t)
	for i := 1; i < len(chars); i++ {
		if chars[i].Score > chars[i-1].Score {
			t.Fatal("characteristics not sorted by descending score")
		}
	}
}

func TestNotableOnlyConsistent(t *testing.T) {
	g, query := leadersGraph()
	res := findNC(t, g, query, Options{
		Selector:    ctxsel.ContextRW{Walks: 30000, Seed: 11},
		ContextSize: 10,
		Seed:        11,
	})
	notable := res.NotableOnly()
	for _, c := range notable {
		if c.Score <= 0 {
			t.Fatal("NotableOnly returned non-notable characteristic")
		}
	}
	total := 0
	for _, c := range res.Characteristics {
		if c.Notable() {
			total++
		}
	}
	if total != len(notable) {
		t.Fatalf("NotableOnly len = %d, want %d", len(notable), total)
	}
	if len(res.Characteristics) > 0 {
		if _, ok := res.ByName(res.Characteristics[0].Name); !ok {
			t.Fatal("ByName failed for an existing label")
		}
	}
}

func TestSkipInverse(t *testing.T) {
	g, query := leadersGraph()
	chars := compareSets(t, g, query, peerContext(g), Options{SkipInverse: true, Seed: 7})
	for _, c := range chars {
		if g.IsInverse(c.Label) {
			t.Fatalf("inverse label %s in report despite SkipInverse", c.Name)
		}
	}
	// Without the flag, inverse labels (e.g. met⁻¹) are present.
	all := compareSets(t, g, query, peerContext(g), Options{Seed: 7})
	if len(all) <= len(chars) {
		t.Fatal("SkipInverse did not reduce the label set")
	}
}

func TestCharacteristicRecordConsistency(t *testing.T) {
	_, chars := compareWithPeers(t)
	for _, ch := range chars {
		if ch.Name == "" {
			t.Fatal("characteristic without name")
		}
		if ch.InstP < 0 || ch.InstP > 1 || ch.CardP < 0 || ch.CardP > 1 {
			t.Fatalf("%s: p-values out of range: %v %v", ch.Name, ch.InstP, ch.CardP)
		}
		if ch.Score != ch.InstScore && ch.Score != ch.CardScore {
			t.Fatalf("%s: score %v matches neither inst %v nor card %v",
				ch.Name, ch.Score, ch.InstScore, ch.CardScore)
		}
		wantKind := KindInstance
		if ch.CardScore > ch.InstScore {
			wantKind = KindCardinality
		}
		if ch.Kind != wantKind {
			t.Fatalf("%s: kind %v inconsistent with scores", ch.Name, ch.Kind)
		}
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	g, query := leadersGraph()
	opt := Options{
		Selector:    ctxsel.ContextRW{Walks: 20000, Seed: 42, Parallelism: 3},
		ContextSize: 8,
		Seed:        42,
	}
	a := findNC(t, g, query, opt)
	b := findNC(t, g, query, opt)
	if len(a.Characteristics) != len(b.Characteristics) {
		t.Fatal("runs differ in characteristic count")
	}
	for i := range a.Characteristics {
		ca, cb := a.Characteristics[i], b.Characteristics[i]
		if ca.Name != cb.Name || ca.Score != cb.Score || ca.InstP != cb.InstP || ca.CardP != cb.CardP {
			t.Fatalf("runs differ at %d: %+v vs %+v", i, ca, cb)
		}
	}
}

func TestRWMultBaseline(t *testing.T) {
	// RWMult = RandomWalk context + multinomial test; must run end to end.
	g, query := leadersGraph()
	res := findNC(t, g, query, Options{
		Selector:    ctxsel.RandomWalk{},
		ContextSize: 10,
		Seed:        1,
	})
	if len(res.Characteristics) == 0 {
		t.Fatal("RWMult produced no characteristics")
	}
}

func TestKindString(t *testing.T) {
	if KindInstance.String() != "instance" || KindCardinality.String() != "cardinality" {
		t.Fatal("Kind strings wrong")
	}
}

func TestEmptyQuery(t *testing.T) {
	g, _ := leadersGraph()
	res := findNC(t, g, nil, Options{Selector: ctxsel.ContextRW{Walks: 100, Seed: 1}, Seed: 1})
	if len(res.Context) != 0 {
		t.Fatal("empty query should have empty context")
	}
}

func TestByNameMissing(t *testing.T) {
	_, chars := compareWithPeers(t)
	res := Result{Characteristics: chars}
	if _, ok := res.ByName("definitely-not-a-label"); ok {
		t.Fatal("ByName found nonexistent label")
	}
}

func TestCustomAlpha(t *testing.T) {
	// A stricter alpha can only shrink the notable set.
	g, query := leadersGraph()
	ctx := peerContext(g)
	strict := compareSets(t, g, query, ctx, Options{
		Test: stats.Multinomial{Alpha: 1e-12, Seed: 7},
		Seed: 7,
	})
	loose := compareSets(t, g, query, ctx, Options{Seed: 7})
	countNotable := func(cs []Characteristic) int {
		n := 0
		for _, c := range cs {
			if c.Notable() {
				n++
			}
		}
		return n
	}
	if countNotable(strict) > countNotable(loose) {
		t.Fatal("stricter alpha produced more notables")
	}
}

func BenchmarkFindNCLeaders(b *testing.B) {
	g, query := leadersGraph()
	opt := Options{
		Selector:    ctxsel.ContextRW{Walks: 10000, Seed: 1},
		ContextSize: 10,
		Seed:        1,
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		findNC(b, g, query, opt)
	}
}

func BenchmarkCompareSetsOnly(b *testing.B) {
	g, query := leadersGraph()
	ctx := peerContext(g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		compareSets(b, g, query, ctx, Options{Seed: 1})
	}
}
