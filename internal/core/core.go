// Package core implements FindNC, the paper's end-to-end notable
// characteristics search (Problem 1):
//
//  1. Select the context C — the top-k nodes most similar to the query Q —
//     with a pluggable context selector (ContextRW by default).
//  2. For every edge label incident to Q ∪ C, build the instance and
//     cardinality distributions (Section 3.2) and run the multinomial
//     test of the query observation against the context distribution.
//  3. A label is notable iff either test rejects at the significance
//     level; its score is δ = max(δ_Inst, δ_Card) ∈ (0.95, 1].
//
// Labels are tested concurrently on a bounded worker pool (optionally
// memoized through Options.TestCache); results are deterministic for a
// fixed seed because every randomized component takes an explicit seed
// and each label's record lands at a fixed slot before the final sort.
//
// Every entry point is request-scoped: it takes a context.Context,
// threads it through context selection (the PageRank loops check it
// between sweeps) and the comparison stage's worker pool (checked between
// label tests), and returns ctx.Err() once the request is cancelled — a
// dropped request stops burning CPU mid-solve. Cancellation never
// corrupts shared caches: only complete records and vectors are stored.
// FindNCStream (stream.go) additionally releases each query of a batch as
// it completes instead of barriering.
package core

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"strconv"
	"sync/atomic"
	"time"

	"repro/internal/ctxsel"
	"repro/internal/dist"
	"repro/internal/exec"
	"repro/internal/kg"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/stats"
	"repro/internal/topk"
)

// Kind identifies which distribution a score refers to.
type Kind int

const (
	// KindInstance marks the instance (value) distribution.
	KindInstance Kind = iota
	// KindCardinality marks the cardinality (count) distribution.
	KindCardinality
)

// String implements fmt.Stringer.
func (k Kind) String() string {
	if k == KindCardinality {
		return "cardinality"
	}
	return "instance"
}

// Characteristic is the full test record for one edge label.
type Characteristic struct {
	// Label is the tested edge label.
	Label kg.LabelID
	// Name is the label's name, for rendering.
	Name string
	// Score is δ(l, C, Q) = max of the two MT scores; 0 means not notable.
	Score float64
	// Kind says which distribution produced Score.
	Kind Kind
	// InstScore and CardScore are the individual MT scores.
	InstScore, CardScore float64
	// InstP and CardP are the significance probabilities Pr_s of the two
	// tests (small = deviant).
	InstP, CardP float64
	// Inst and Card are the underlying distributions, kept for inspection
	// and for the Figure 7/8 reproductions.
	Inst dist.Instance
	Card dist.Cardinality
}

// Notable reports whether the label passed the significance test.
func (c Characteristic) Notable() bool { return c.Score > 0 }

// Options configures FindNC. The zero value reproduces the paper's
// defaults.
type Options struct {
	// ContextSize is k, the number of context nodes. The paper's test
	// cases use 100 (actors) and 30 (authors). Default 100.
	ContextSize int
	// Selector chooses the context. Default: ctxsel.ContextRW with Seed.
	Selector ctxsel.Selector
	// Test configures the multinomial test (alpha, Monte-Carlo budget).
	Test stats.Multinomial
	// SkipInverse drops automatically generated inverse labels (l⁻¹) from
	// the report. The inverse direction is usually redundant with the
	// forward one; the paper's figures show forward labels only.
	SkipInverse bool
	// Partial opts FindNC and CompareSets into degraded results under
	// cancellation: when ctx is cut mid-comparison the records completed so
	// far are returned — sorted, each bitwise identical to its slot in the
	// uncut run — alongside a *PartialError instead of being discarded with
	// a bare ctx.Err(). The tested set is always a prefix of the
	// deterministic label enumeration order (workers drain a sequential
	// claim counter and finish every claimed label), so a degraded response
	// is a prefix-consistent subset of the full one. Cancellation before or
	// during context selection still fails whole — there is no context to
	// be partial about. Batch entry points ignore Partial: a cancelled
	// batch is abandoned outright.
	Partial bool
	// Policy controls how query-only instance values are treated; see
	// dist.UnseenPolicy. Default UnseenStrict (the paper's formula).
	Policy dist.UnseenPolicy
	// Parallelism bounds concurrent label tests; 0 means 4. CompareSets
	// runs a fixed pool of exactly min(Parallelism, len(labels)) worker
	// goroutines — never one per label.
	Parallelism int
	// Seed drives every randomized component.
	Seed int64
	// TestCache, when non-nil, memoizes per-label Characteristic records
	// across CompareSets calls, keyed on (label, query multiset, ranked
	// context, test options, policy). A warm hit skips distribution
	// building and the multinomial test outright. The cached master
	// record is private to the cache: every result handed to a caller
	// carries freshly cloned distribution slices, so callers own and may
	// mutate what they receive, cached or not. Keys fold CacheTag, which
	// carries the graph epoch when the cache serves a live-mutable graph.
	TestCache *qcache.Cache
	// CacheTag is folded verbatim into every TestCache key. Callers
	// serving a mutable graph put the graph's epoch here so records
	// computed against one epoch are never served at another;
	// single-graph callers may leave it empty.
	CacheTag string

	// Obs, when non-nil, receives per-stage wall times: one Select
	// observation per FindNC call and per batch select phase (cache hits
	// included — a warm hit is still the stage's latency as the caller
	// experienced it), and one Compare observation per CompareSets call.
	// Each observation is a few atomic adds; nil costs one branch. A
	// single pointer rather than per-stage fields keeps Options within
	// the 128-byte closure capture-by-value limit: the comparison pool's
	// worker closure captures opt, and a larger Options would force a
	// heap copy on every call.
	Obs *StageObs
}

// StageObs bundles the per-stage latency histograms a caller may attach
// to Options.Obs. Both fields must be non-nil when Obs is set.
type StageObs struct {
	Select  *obs.Histogram
	Compare *obs.Histogram
}

func (o Options) withDefaults() Options {
	if o.ContextSize == 0 {
		o.ContextSize = 100
	}
	if o.Selector == nil {
		o.Selector = ctxsel.ContextRW{Seed: o.Seed}
	}
	if o.Test.Seed == 0 {
		o.Test.Seed = o.Seed
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	return o
}

// Result is the output of a FindNC run.
type Result struct {
	// Query echoes the input query nodes.
	Query []kg.NodeID
	// Context is the selected context, ranked by similarity.
	Context []topk.Item
	// Characteristics holds one record per tested label, sorted by
	// descending score, then ascending significance probability, then
	// name — notable labels first.
	Characteristics []Characteristic
}

// ContextIDs returns the context node IDs in rank order.
func (r Result) ContextIDs() []kg.NodeID {
	out := make([]kg.NodeID, len(r.Context))
	for i, it := range r.Context {
		out[i] = kg.NodeID(it.ID)
	}
	return out
}

// NotableOnly filters Characteristics down to the notable ones.
func (r Result) NotableOnly() []Characteristic {
	var out []Characteristic
	for _, c := range r.Characteristics {
		if c.Notable() {
			out = append(out, c)
		}
	}
	return out
}

// ByName returns the characteristic record for the named label.
func (r Result) ByName(name string) (Characteristic, bool) {
	for _, c := range r.Characteristics {
		if c.Name == name {
			return c, true
		}
	}
	return Characteristic{}, false
}

// PartialError reports a comparison stage cut short by cancellation while
// Options.Partial was set. The call that returned it also returned the
// characteristics completed before the cut — a prefix-consistent subset of
// what the uncut run would produce. Unwrap yields the ctx error
// (context.DeadlineExceeded or context.Canceled), so errors.Is still
// matches the cause.
type PartialError struct {
	// Cause is the ctx error that cut the stage short.
	Cause error
	// Tested and Total count the labels tested before the cut and the
	// labels the full stage would have tested.
	Tested, Total int
}

// Error implements error.
func (e *PartialError) Error() string {
	return fmt.Sprintf("core: comparison cut short (%d/%d labels tested): %v", e.Tested, e.Total, e.Cause)
}

// Unwrap exposes the underlying ctx error to errors.Is.
func (e *PartialError) Unwrap() error { return e.Cause }

// FindNC runs the full pipeline on query against g. Cancellation is
// request-scoped: once ctx is done, FindNC stops within one PageRank
// sweep or one label test and returns ctx.Err() — or, under
// Options.Partial, the labels tested so far alongside a *PartialError
// when the cut landed in the comparison stage.
func FindNC(ctx context.Context, g *kg.Graph, query []kg.NodeID, opt Options) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	selStart := time.Now()
	cset := ctxsel.Select(ctx, opt.Selector, g, query, opt.ContextSize)
	if opt.Obs != nil {
		opt.Obs.Select.Observe(time.Since(selStart))
	}
	if err := ctx.Err(); err != nil {
		return Result{}, err
	}
	res := Result{Query: query, Context: cset}
	chars, err := CompareSets(ctx, g, query, res.ContextIDs(), opt)
	var pe *PartialError
	if err != nil && !errors.As(err, &pe) {
		return Result{}, err
	}
	res.Characteristics = chars
	return res, err
}

// FindNCBatch runs FindNC for every query in one batched pass. Context
// selection goes through the selector's batch path when it has one
// (ctxsel.CtxBatchSelector/BatchSelector, then ctxsel.SelectBatchCtx's
// dispatch), amortizing graph traversal across the batch; the comparison
// stages then fan out per query through the shared executor, each an
// independent CompareSets writing its own result slot. Results are
// identical to calling FindNC per query — bitwise, when the selector's
// batch path is (RandomWalk's is) — for every batch size and Parallelism
// setting. A cancelled ctx stops every stage within one sweep or label
// test and returns ctx.Err().
func FindNCBatch(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, opt Options) ([]Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	selStart := time.Now()
	var contexts [][]topk.Item
	if bs, ok := opt.Selector.(ctxsel.CtxBatchSelector); ok {
		contexts = bs.SelectBatchCtx(ctx, g, queries, opt.ContextSize)
	} else if bs, ok := opt.Selector.(ctxsel.BatchSelector); ok {
		contexts = bs.SelectBatch(g, queries, opt.ContextSize)
	} else {
		contexts = ctxsel.SelectBatchCtx(ctx, opt.Selector, g, queries, opt.ContextSize)
	}
	if opt.Obs != nil {
		opt.Obs.Select.Observe(time.Since(selStart))
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	results := make([]Result, len(queries))
	var next atomic.Int64
	run := func() {
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(queries) {
				return
			}
			results[i] = Result{Query: queries[i], Context: contexts[i]}
			// The only possible error is ctx.Err(), reported once after the
			// fan drains; the partial slot is discarded with the batch.
			results[i].Characteristics, _ = CompareSets(ctx, g, queries[i], results[i].ContextIDs(), opt)
		}
	}
	workers := opt.Parallelism
	if workers > len(queries) {
		workers = len(queries)
	}
	exec.RunWorkersCtx(ctx, workers, run)
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	return results, nil
}

// testLabelHook, when non-nil, runs at the start of every label task — a
// test seam for asserting the pool's concurrency bound.
var testLabelHook func()

// CompareSets runs only the distribution-comparison stage (Section 3.2)
// against an explicit context set cset — used by FindNC, by experiments
// that reuse one context across parameter sweeps, and by the RWMult
// baseline.
//
// Labels are drained from a shared counter by a fixed pool of
// min(Parallelism, len(labels)) workers, each reusing its own
// distribution and test scratch across labels. Results land at fixed
// per-label slots before the final sort, so the output is deterministic
// for every worker count. Workers check ctx between labels: a cancelled
// request abandons the stage within one label test and returns ctx.Err().
// A label test already running completes — its record is whole — so the
// shared test cache only ever holds complete entries, cancelled or not.
func CompareSets(ctx context.Context, g *kg.Graph, query, cset []kg.NodeID, opt Options) ([]Characteristic, error) {
	if opt.Obs == nil {
		return compareSetsUntimed(ctx, g, query, cset, opt)
	}
	start := time.Now()
	out, err := compareSetsUntimed(ctx, g, query, cset, opt)
	opt.Obs.Compare.Observe(time.Since(start))
	return out, err
}

// compareSetsUntimed is CompareSets without the stage timer.
func compareSetsUntimed(ctx context.Context, g *kg.Graph, query, cset []kg.NodeID, opt Options) ([]Characteristic, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	both := make([]kg.NodeID, 0, len(query)+len(cset))
	both = append(both, query...)
	both = append(both, cset...)
	labels := g.LabelsOf(both)
	if opt.SkipInverse {
		kept := labels[:0]
		for _, l := range labels {
			if !g.IsInverse(l) {
				kept = append(kept, l)
			}
		}
		labels = kept
	}

	var keyBase string
	if opt.TestCache != nil {
		keyBase = testKeyBase(query, cset, opt)
	}
	out := make([]Characteristic, len(labels))
	// Completion tracking costs an allocation, so only degradable calls
	// pay for it; without it a cut simply discards out.
	var done []bool
	if opt.Partial {
		done = make([]bool, len(labels))
	}
	var next atomic.Int64
	run := func() {
		// Each worker claims the next untested label until none remain,
		// reusing one scratch for its whole run.
		var s labelScratch
		for {
			if ctx.Err() != nil {
				return
			}
			i := int(next.Add(1)) - 1
			if i >= len(labels) {
				return
			}
			if testLabelHook != nil {
				testLabelHook()
			}
			out[i] = testLabelCached(g, labels[i], query, cset, opt, keyBase, &s)
			// Claimed slots are always finished (workers abort only between
			// claims), so the done set is a prefix of the claim order. Each
			// slot has exactly one writer and is read only after the pool's
			// Wait, so the plain bool is race-free.
			if done != nil {
				done[i] = true
			}
		}
	}
	workers := opt.Parallelism
	if workers > len(labels) {
		workers = len(labels)
	}
	// Extra workers come from the shared executor rather than fresh
	// goroutines; a busy pool degrades toward serial execution on the
	// caller, never past the Parallelism bound.
	exec.RunWorkersCtx(ctx, workers, run)
	if err := ctx.Err(); err != nil {
		if !opt.Partial {
			return nil, err
		}
		partial := make([]Characteristic, 0, len(labels))
		for i := range out {
			if done[i] {
				partial = append(partial, out[i])
			}
		}
		sortCharacteristics(partial)
		return partial, &PartialError{Cause: err, Tested: len(partial), Total: len(labels)}
	}

	sortCharacteristics(out)
	return out, nil
}

// sortCharacteristics orders records by descending score, then ascending
// significance probability, then name — the report order of every entry
// point, full or degraded.
func sortCharacteristics(out []Characteristic) {
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Score != b.Score {
			return a.Score > b.Score
		}
		pa, pb := minP(a), minP(b)
		if pa != pb {
			return pa < pb
		}
		return a.Name < b.Name
	})
}

func minP(c Characteristic) float64 {
	if c.InstP < c.CardP {
		return c.InstP
	}
	return c.CardP
}

// labelScratch carries one worker's reusable buffers across labels: the
// distribution builder's lookup state, the multinomial test's enumeration
// and sampling buffers, and the float conversion buffer of the
// cardinality π.
type labelScratch struct {
	dist   dist.Scratch
	test   stats.Scratch
	cardPi []float64
}

// testKeyBase builds the cache-key prefix shared by every label of one
// CompareSets call: the query as a sorted multiset (counting is
// order-independent but multiplicity-sensitive), the ranked context
// hashed compactly, and every option that can change a test outcome.
// opt must already carry defaults.
func testKeyBase(query, cset []kg.NodeID, opt Options) string {
	prefix := fmt.Sprintf("mt|%s|a%v|el%d|mc%d|s%d|pol%d|c%x",
		opt.CacheTag, opt.Test.Alpha, opt.Test.ExactLimit, opt.Test.Samples, opt.Test.Seed,
		opt.Policy, qcache.HashIDs(cset))
	return qcache.MultisetKey(prefix, query)
}

// testLabelCached consults opt.TestCache around testLabel. The stored
// master record is never handed out: hits and misses alike return a
// record with private distribution slices, preserving the uncached
// contract that callers own (and may mutate) everything they receive.
func testLabelCached(g *kg.Graph, l kg.LabelID, query, cset []kg.NodeID, opt Options, keyBase string, s *labelScratch) Characteristic {
	if opt.TestCache == nil {
		return testLabel(g, l, query, cset, opt.Test, opt.Policy, s)
	}
	key := keyBase + "|l" + strconv.FormatUint(uint64(l), 10)
	if v, ok := opt.TestCache.GetLayer(key, qcache.LayerTest); ok {
		return v.(Characteristic).clone()
	}
	c := testLabel(g, l, query, cset, opt.Test, opt.Policy, s)
	opt.TestCache.PutSized(key, c, qcache.LayerTest, c.cacheFootprint()+int64(len(key)))
	return c.clone()
}

// cacheFootprint estimates the record's resident bytes for the cache's
// byte accounting: the fixed fields plus the distribution slices.
func (c Characteristic) cacheFootprint() int64 {
	const fixed = 160 // struct, string header, slice headers
	return fixed + int64(len(c.Name)) +
		4*int64(len(c.Inst.Values)) +
		8*int64(len(c.Inst.Query)+len(c.Inst.Context)+len(c.Card.Query)+len(c.Card.Context))
}

// clone copies the record's distribution slices so the returned value
// shares nothing mutable with the cached master.
func (c Characteristic) clone() Characteristic {
	c.Inst.Values = append([]kg.NodeID(nil), c.Inst.Values...)
	c.Inst.Query = append([]int(nil), c.Inst.Query...)
	c.Inst.Context = append([]int(nil), c.Inst.Context...)
	c.Card.Query = append([]int(nil), c.Card.Query...)
	c.Card.Context = append([]int(nil), c.Card.Context...)
	return c
}

// testLabel builds both distributions for l and applies the multinomial
// test to each, combining scores per Eq. 3.
func testLabel(g *kg.Graph, l kg.LabelID, query, cset []kg.NodeID, test stats.Multinomial, policy dist.UnseenPolicy, s *labelScratch) Characteristic {
	c := Characteristic{Label: l, Name: g.LabelName(l)}
	c.Inst = dist.InstancesScratch(g, l, query, cset, &s.dist)
	c.Card = dist.Cardinalities(g, l, query, cset)

	// The raw count vectors go straight to the test, which normalizes π
	// internally; the observation vectors are only read.
	instCtx, instObs := c.Inst.TestVectorsScratch(policy, &s.dist)
	instRes := test.TestScratch(instCtx, instObs, &s.test)
	c.InstP = instRes.P

	s.cardPi = dist.ContextFloatsInto(s.cardPi[:0], c.Card.Context)
	cardRes := test.TestScratch(s.cardPi, c.Card.Query, &s.test)
	c.CardP = cardRes.P

	alpha := test.Alpha
	if alpha == 0 {
		alpha = stats.DefaultAlpha
	}
	if instRes.P <= alpha {
		c.InstScore = 1 - instRes.P
	}
	if cardRes.P <= alpha {
		c.CardScore = 1 - cardRes.P
	}
	c.Score = c.InstScore
	c.Kind = KindInstance
	if c.CardScore > c.InstScore {
		c.Score = c.CardScore
		c.Kind = KindCardinality
	}
	return c
}
