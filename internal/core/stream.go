// Streaming batch search: FindNCStream runs the same deduplicated batch
// pipeline as FindNCBatch but releases each query's result the moment it
// is ready instead of barriering the whole batch.
//
// The barrier FindNCBatch pays is structural: the multi-source PageRank
// solve finishes every query's context before any comparison stage
// starts, so the first result of an N-query batch arrives only after all
// N have been compared. Here context selection goes through the
// selector's streaming path (ctxsel.SelectStream): as each query's score
// vector folds, its comparison stage is dispatched immediately on its own
// goroutine — admission-bounded, see below — and its result is emitted as
// soon as the comparison finishes. Seed-level deduplication across the
// batch is untouched (it lives inside the multi-source solve), and each
// emitted Result is bitwise identical to a solo FindNC call.
//
// Admission control: at most ⌈Parallelism/4⌉ (minimum one) comparison
// stages run concurrently, each internally fanning its labels through
// the shared executor at the full Parallelism width. Running every stage
// at once would finish them all near-simultaneously — fair scheduling
// pushes every completion toward the batch's end, exactly the barrier
// the stream exists to break — while narrow admission staggers
// completions so the first result lands after roughly one comparison's
// work. Total wall-clock stays close to the barriered batch because an
// admitted stage alone spans the executor (its label fan is as wide as
// FindNCBatch's per-query workers combined would be).
package core

import (
	"context"
	"errors"
	"runtime"
	"sync"

	"repro/internal/ctxsel"
	"repro/internal/kg"
	"repro/internal/topk"
)

// errSelectorStalled reports a streaming selector that returned without
// either delivering a query or a cancelled ctx — a selector contract
// violation surfaced as an error rather than a hang.
var errSelectorStalled = errors.New("core: streaming selector ended before delivering every query")

// FindNCStream runs FindNC for every query, invoking emit(i, res, err)
// exactly once per query as each completes — results stream in completion
// order, not index order. emit may be called concurrently from several
// goroutines; FindNCStream returns only after every emit has. While ctx
// stays live every emitted Result is bitwise identical to a solo FindNC
// call; once ctx is cancelled, queries not yet emitted are flushed with
// err = ctx.Err() and all workers stop within one PageRank sweep or one
// label test.
func FindNCStream(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, opt Options, emit func(i int, res Result, err error)) {
	if ctx == nil {
		ctx = context.Background()
	}
	opt = opt.withDefaults()
	if len(queries) == 0 {
		return
	}
	stages := (opt.Parallelism + 3) / 4
	if stages < 1 {
		stages = 1
	}
	sem := make(chan struct{}, stages)
	var wg sync.WaitGroup
	released := make([]bool, len(queries))
	compare := func(i int, items []topk.Item) {
		if err := ctx.Err(); err != nil {
			emit(i, Result{}, err)
			return
		}
		res := Result{Query: queries[i], Context: items}
		chars, err := CompareSets(ctx, g, queries[i], res.ContextIDs(), opt)
		if err != nil {
			emit(i, Result{}, err)
			return
		}
		res.Characteristics = chars
		emit(i, res, nil)
	}
	// On a single-P runtime there is no concurrency to exploit between
	// the solve and the comparisons: a spawned stage would round-robin
	// with the remaining solve and delay every completion equally.
	// Running each released query's comparison inline on the solver
	// goroutine finishes it — and emits it — before the next seed solves,
	// which is exactly the stream's latency contract.
	inline := runtime.GOMAXPROCS(0) == 1
	ready := func(i int, items []topk.Item) {
		released[i] = true
		if inline {
			compare(i, items)
			return
		}
		// Called from the solver goroutine: hand the comparison to its
		// own admission-bounded goroutine so the solve keeps streaming.
		wg.Add(1)
		go func() {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			compare(i, items)
		}()
	}
	ctxsel.SelectStream(ctx, opt.Selector, g, queries, opt.ContextSize, ready)
	// The selector only withholds queries when cancelled; flush whatever it
	// never released so every index gets exactly one emit.
	for i := range queries {
		if !released[i] {
			err := ctx.Err()
			if err == nil {
				err = errSelectorStalled
			}
			emit(i, Result{}, err)
		}
	}
	wg.Wait()
}
