package core

import (
	"context"
	"errors"
	"reflect"
	"sync"
	"sync/atomic"
	"testing"

	"repro/internal/ctxsel"
	"repro/internal/kg"
)

// findNC and compareSets are ctx-less shims for tests that predate the
// request-scoped API: background context, failure on the (impossible
// there) cancellation error.
func findNC(tb testing.TB, g *kg.Graph, query []kg.NodeID, opt Options) Result {
	tb.Helper()
	res, err := FindNC(context.Background(), g, query, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return res
}

func compareSets(tb testing.TB, g *kg.Graph, query, cset []kg.NodeID, opt Options) []Characteristic {
	tb.Helper()
	out, err := CompareSets(context.Background(), g, query, cset, opt)
	if err != nil {
		tb.Fatal(err)
	}
	return out
}

// TestCompareSetsPreCancelled: an already-cancelled ctx returns its error
// without testing a single label.
func TestCompareSetsPreCancelled(t *testing.T) {
	g, query := leadersGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	tested := 0
	testLabelHook = func() { tested++ }
	defer func() { testLabelHook = nil }()
	out, err := CompareSets(ctx, g, query, peerContext(g), Options{Seed: 7})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if out != nil {
		t.Fatal("cancelled CompareSets returned characteristics")
	}
	if tested != 0 {
		t.Fatalf("cancelled CompareSets tested %d labels", tested)
	}
}

// TestCompareSetsCancelledMidRun: cancelling after the first label test
// stops the pool within one further test and returns ctx.Err(), for
// every worker count.
func TestCompareSetsCancelledMidRun(t *testing.T) {
	g, query := leadersGraph()
	cset := peerContext(g)
	for _, par := range []int{1, 4} {
		ctx, cancel := context.WithCancel(context.Background())
		var tested atomic.Int64
		testLabelHook = func() {
			if tested.Add(1) == 1 {
				cancel()
			}
		}
		_, err := CompareSets(ctx, g, query, cset, Options{Seed: 7, Parallelism: par})
		testLabelHook = nil
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("par=%d: err = %v, want context.Canceled", par, err)
		}
		// The claim loop checks ctx before each label: after the
		// cancelling test, each of the par workers can have at most one
		// label already past its check.
		if n := tested.Load(); n > int64(1+par) {
			t.Fatalf("par=%d: %d labels tested after cancellation", par, n)
		}
		cancel()
	}
}

// TestFindNCCancelled: a cancelled ctx surfaces from the full pipeline.
func TestFindNCCancelled(t *testing.T) {
	g, query := leadersGraph()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := FindNC(ctx, g, query, Options{Selector: ctxsel.RandomWalk{}, ContextSize: 10, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	_, err = FindNCBatch(ctx, g, [][]kg.NodeID{query}, Options{Selector: ctxsel.RandomWalk{}, ContextSize: 10, Seed: 1})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("batch err = %v, want context.Canceled", err)
	}
}

// streamQueries builds a small overlapping batch over the leaders graph.
func streamQueries(g *kg.Graph, query []kg.NodeID) [][]kg.NodeID {
	peers := peerContext(g)
	return [][]kg.NodeID{
		query,
		{query[0]},
		{query[0], peers[0]},
		{peers[0], peers[1]},
		query,
	}
}

// TestFindNCStreamMatchesFindNC: the stream emits every query exactly
// once, and each emitted result is bitwise identical to a solo FindNC.
func TestFindNCStreamMatchesFindNC(t *testing.T) {
	g, query := leadersGraph()
	queries := streamQueries(g, query)
	for _, par := range []int{1, 4} {
		opt := Options{Selector: ctxsel.RandomWalk{}, ContextSize: 8, Seed: 3, Parallelism: par}
		var mu sync.Mutex
		got := make(map[int]Result)
		emits := 0
		FindNCStream(context.Background(), g, queries, opt, func(i int, res Result, err error) {
			mu.Lock()
			defer mu.Unlock()
			emits++
			if err != nil {
				t.Errorf("query %d: %v", i, err)
				return
			}
			if _, dup := got[i]; dup {
				t.Errorf("query %d emitted twice", i)
			}
			got[i] = res
		})
		if emits != len(queries) {
			t.Fatalf("par=%d: %d emits for %d queries", par, emits, len(queries))
		}
		for i, q := range queries {
			want := findNC(t, g, q, opt)
			if !reflect.DeepEqual(got[i], want) {
				t.Fatalf("par=%d: stream result %d differs from solo FindNC", par, i)
			}
		}
	}
}

// TestFindNCStreamCancelled: cancelling mid-stream still emits every
// index exactly once — completed queries with results, abandoned ones
// with ctx.Err() — and FindNCStream returns (workers stopped).
func TestFindNCStreamCancelled(t *testing.T) {
	g, query := leadersGraph()
	queries := streamQueries(g, query)
	ctx, cancel := context.WithCancel(context.Background())
	var mu sync.Mutex
	seen := make(map[int]int)
	failures := 0
	FindNCStream(ctx, g, queries, Options{Selector: ctxsel.RandomWalk{}, ContextSize: 8, Seed: 3}, func(i int, res Result, err error) {
		mu.Lock()
		defer mu.Unlock()
		seen[i]++
		if err != nil {
			failures++
			if !errors.Is(err, context.Canceled) {
				t.Errorf("query %d: err = %v, want context.Canceled", i, err)
			}
		} else if len(res.Characteristics) == 0 {
			t.Errorf("query %d: successful emit with no characteristics", i)
		}
		cancel() // first emit cancels the rest
	})
	if len(seen) != len(queries) {
		t.Fatalf("%d distinct indices emitted, want %d", len(seen), len(queries))
	}
	for i, n := range seen {
		if n != 1 {
			t.Fatalf("query %d emitted %d times", i, n)
		}
	}
	if failures == 0 {
		t.Fatal("cancellation produced no abandoned queries")
	}
}
