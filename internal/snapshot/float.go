package snapshot

import "math"

// Thin indirection over math so the encoding core stays free of direct
// float bit fiddling.
func mathFloat64bits(f float64) uint64     { return math.Float64bits(f) }
func mathFloat64frombits(b uint64) float64 { return math.Float64frombits(b) }
