package snapshot

import (
	"bytes"
	"errors"
	"math"
	"testing"
	"testing/quick"
)

const (
	testMagic   = "TESTSNAP"
	testVersion = 1
)

func TestRoundTripPrimitives(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	w.Uvarint(0)
	w.Uvarint(1 << 40)
	w.Varint(-12345)
	w.Uint32(0xdeadbeef)
	w.Float64(math.Pi)
	w.String("hello, 世界")
	w.Bytes([]byte{1, 2, 3})
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := NewReader(&buf, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	if got := r.Uvarint(); got != 0 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Uvarint(); got != 1<<40 {
		t.Fatalf("Uvarint = %d", got)
	}
	if got := r.Varint(); got != -12345 {
		t.Fatalf("Varint = %d", got)
	}
	if got := r.Uint32(); got != 0xdeadbeef {
		t.Fatalf("Uint32 = %x", got)
	}
	if got := r.Float64(); got != math.Pi {
		t.Fatalf("Float64 = %v", got)
	}
	if got := r.String(); got != "hello, 世界" {
		t.Fatalf("String = %q", got)
	}
	if got := r.Bytes(); !bytes.Equal(got, []byte{1, 2, 3}) {
		t.Fatalf("Bytes = %v", got)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestWrongMagic(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	w.Uvarint(7)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := NewReader(&buf, "WRONGMAG", testVersion)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestWrongVersion(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	_, err := NewReader(&buf, testMagic, testVersion+1)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestCorruptPayloadDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	w.String("some payload content here")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	data[len(testMagic)+4+3] ^= 0xff // flip a payload byte

	r, err := NewReader(bytes.NewReader(data), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.String()
	err = r.Close()
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Close err = %v, want ErrCorrupt", err)
	}
}

func TestTruncatedFileDetected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	w.String("truncate me please, a reasonably long payload")
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()-6] // drop part of payload + trailer

	r, err := NewReader(bytes.NewReader(data), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.String()
	if r.Err() == nil {
		// Truncation may land inside the trailer instead.
		if err := r.Close(); !errors.Is(err, ErrCorrupt) {
			t.Fatalf("Close err = %v, want ErrCorrupt", err)
		}
		return
	}
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
}

func TestOversizedStringRejected(t *testing.T) {
	var buf bytes.Buffer
	w := NewWriter(&buf, testMagic, testVersion)
	w.Uvarint(1 << 40) // absurd length prefix
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf, testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.String()
	if !errors.Is(r.Err(), ErrCorrupt) {
		t.Fatalf("Err = %v, want ErrCorrupt", r.Err())
	}
}

func TestStickyReadError(t *testing.T) {
	r, err := NewReader(bytes.NewReader(append([]byte(testMagic), 1, 0, 0, 0)), testMagic, testVersion)
	if err != nil {
		t.Fatal(err)
	}
	_ = r.Uvarint() // payload empty -> error
	first := r.Err()
	if first == nil {
		t.Fatal("expected error on empty payload")
	}
	_ = r.Uint32()
	if r.Err() != first {
		t.Fatal("error not sticky")
	}
}

// Property: varint round trips for arbitrary values, including sequences.
func TestVarintRoundTripProperty(t *testing.T) {
	f := func(us []uint64, is []int64, fs []float64) bool {
		var buf bytes.Buffer
		w := NewWriter(&buf, testMagic, testVersion)
		for _, u := range us {
			w.Uvarint(u)
		}
		for _, i := range is {
			w.Varint(i)
		}
		for _, fv := range fs {
			w.Float64(fv)
		}
		if w.Close() != nil {
			return false
		}
		r, err := NewReader(&buf, testMagic, testVersion)
		if err != nil {
			return false
		}
		for _, u := range us {
			if r.Uvarint() != u {
				return false
			}
		}
		for _, i := range is {
			if r.Varint() != i {
				return false
			}
		}
		for _, fv := range fs {
			got := r.Float64()
			if got != fv && !(math.IsNaN(got) && math.IsNaN(fv)) {
				return false
			}
		}
		return r.Close() == nil
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkWriteUvarints(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		w := NewWriter(&buf, testMagic, testVersion)
		for v := uint64(0); v < 10000; v++ {
			w.Uvarint(v * v)
		}
		if err := w.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
