// Package snapshot implements a small binary file-format toolkit used to
// persist graphs and stores: a magic/version header, varint-encoded
// primitives, length-prefixed strings, and a CRC32 integrity trailer.
//
// Layout of a snapshot stream:
//
//	[magic bytes][uint32 LE version] [payload ...] [uint32 LE CRC32(payload)]
//
// The CRC covers only the payload (not the header), using the IEEE
// polynomial. Writers buffer internally; call Close to flush the trailer.
// Readers verify the trailer on Close, so a torn or corrupted file is
// always detected before its contents are trusted.
package snapshot

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"hash"
	"hash/crc32"
	"io"
)

// ErrCorrupt is wrapped by errors reported for malformed snapshots.
var ErrCorrupt = errors.New("snapshot: corrupt")

// Writer emits a snapshot stream. Errors are sticky: after the first
// failure every method is a no-op and Close reports the error.
type Writer struct {
	w   *bufio.Writer
	crc hash.Hash32
	err error
	buf [binary.MaxVarintLen64]byte
}

// NewWriter writes the header (magic + version) and returns a Writer for
// the payload.
func NewWriter(w io.Writer, magic string, version uint32) *Writer {
	bw := bufio.NewWriter(w)
	sw := &Writer{w: bw, crc: crc32.NewIEEE()}
	if _, err := bw.WriteString(magic); err != nil {
		sw.err = err
		return sw
	}
	var v [4]byte
	binary.LittleEndian.PutUint32(v[:], version)
	if _, err := bw.Write(v[:]); err != nil {
		sw.err = err
	}
	return sw
}

func (w *Writer) write(p []byte) {
	if w.err != nil {
		return
	}
	if _, err := w.w.Write(p); err != nil {
		w.err = err
		return
	}
	w.crc.Write(p)
}

// Uvarint writes an unsigned varint.
func (w *Writer) Uvarint(v uint64) {
	n := binary.PutUvarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Varint writes a signed varint (zig-zag).
func (w *Writer) Varint(v int64) {
	n := binary.PutVarint(w.buf[:], v)
	w.write(w.buf[:n])
}

// Uint32 writes a fixed-width little-endian uint32.
func (w *Writer) Uint32(v uint32) {
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], v)
	w.write(b[:])
}

// Float64 writes a fixed-width little-endian IEEE-754 double.
func (w *Writer) Float64(v float64) {
	var b [8]byte
	binary.LittleEndian.PutUint64(b[:], mathFloat64bits(v))
	w.write(b[:])
}

// String writes a length-prefixed string.
func (w *Writer) String(s string) {
	w.Uvarint(uint64(len(s)))
	if w.err == nil {
		if _, err := w.w.WriteString(s); err != nil {
			w.err = err
			return
		}
		w.crc.Write([]byte(s))
	}
}

// Bytes writes a length-prefixed byte slice.
func (w *Writer) Bytes(p []byte) {
	w.Uvarint(uint64(len(p)))
	w.write(p)
}

// Err returns the sticky error, if any.
func (w *Writer) Err() error { return w.err }

// Close writes the CRC trailer and flushes. The Writer must not be used
// afterwards.
func (w *Writer) Close() error {
	if w.err != nil {
		return w.err
	}
	var b [4]byte
	binary.LittleEndian.PutUint32(b[:], w.crc.Sum32())
	if _, err := w.w.Write(b[:]); err != nil {
		return err
	}
	return w.w.Flush()
}

// Reader consumes a snapshot stream. Errors are sticky.
type Reader struct {
	r   *bufio.Reader
	crc hash.Hash32
	err error
}

// NewReader validates the header (magic + version) and returns a Reader
// positioned at the payload.
func NewReader(r io.Reader, magic string, version uint32) (*Reader, error) {
	br := bufio.NewReader(r)
	got := make([]byte, len(magic))
	if _, err := io.ReadFull(br, got); err != nil {
		return nil, fmt.Errorf("%w: reading magic: %v", ErrCorrupt, err)
	}
	if string(got) != magic {
		return nil, fmt.Errorf("%w: magic %q, want %q", ErrCorrupt, got, magic)
	}
	var v [4]byte
	if _, err := io.ReadFull(br, v[:]); err != nil {
		return nil, fmt.Errorf("%w: reading version: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(v[:]); got != version {
		return nil, fmt.Errorf("%w: version %d, want %d", ErrCorrupt, got, version)
	}
	return &Reader{r: br, crc: crc32.NewIEEE()}, nil
}

// readByte reads one payload byte, feeding the CRC.
func (r *Reader) readByte() (byte, error) {
	if r.err != nil {
		return 0, r.err
	}
	b, err := r.r.ReadByte()
	if err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return 0, r.err
	}
	r.crc.Write([]byte{b})
	return b, nil
}

func (r *Reader) read(p []byte) {
	if r.err != nil {
		return
	}
	if _, err := io.ReadFull(r.r, p); err != nil {
		r.err = fmt.Errorf("%w: %v", ErrCorrupt, err)
		return
	}
	r.crc.Write(p)
}

// Uvarint reads an unsigned varint.
func (r *Reader) Uvarint() uint64 {
	v, err := binary.ReadUvarint(byteReaderFunc(r.readByte))
	if err != nil && r.err == nil {
		r.err = fmt.Errorf("%w: uvarint: %v", ErrCorrupt, err)
	}
	return v
}

// Varint reads a signed varint.
func (r *Reader) Varint() int64 {
	v, err := binary.ReadVarint(byteReaderFunc(r.readByte))
	if err != nil && r.err == nil {
		r.err = fmt.Errorf("%w: varint: %v", ErrCorrupt, err)
	}
	return v
}

// Uint32 reads a fixed-width uint32.
func (r *Reader) Uint32() uint32 {
	var b [4]byte
	r.read(b[:])
	if r.err != nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b[:])
}

// Float64 reads a fixed-width IEEE-754 double.
func (r *Reader) Float64() float64 {
	var b [8]byte
	r.read(b[:])
	if r.err != nil {
		return 0
	}
	return mathFloat64frombits(binary.LittleEndian.Uint64(b[:]))
}

// String reads a length-prefixed string. Lengths above maxLen (1 GiB) are
// rejected as corruption.
func (r *Reader) String() string {
	const maxLen = 1 << 30
	n := r.Uvarint()
	if r.err != nil {
		return ""
	}
	if n > maxLen {
		r.err = fmt.Errorf("%w: string length %d too large", ErrCorrupt, n)
		return ""
	}
	p := make([]byte, n)
	r.read(p)
	if r.err != nil {
		return ""
	}
	return string(p)
}

// Bytes reads a length-prefixed byte slice.
func (r *Reader) Bytes() []byte {
	const maxLen = 1 << 30
	n := r.Uvarint()
	if r.err != nil {
		return nil
	}
	if n > maxLen {
		r.err = fmt.Errorf("%w: bytes length %d too large", ErrCorrupt, n)
		return nil
	}
	p := make([]byte, n)
	r.read(p)
	if r.err != nil {
		return nil
	}
	return p
}

// Err returns the sticky error, if any.
func (r *Reader) Err() error { return r.err }

// Close reads the CRC trailer and verifies it against the consumed payload.
func (r *Reader) Close() error {
	if r.err != nil {
		return r.err
	}
	want := r.crc.Sum32() // must capture before reading trailer
	var b [4]byte
	if _, err := io.ReadFull(r.r, b[:]); err != nil {
		return fmt.Errorf("%w: reading trailer: %v", ErrCorrupt, err)
	}
	if got := binary.LittleEndian.Uint32(b[:]); got != want {
		return fmt.Errorf("%w: checksum mismatch: file %08x, computed %08x", ErrCorrupt, got, want)
	}
	return nil
}

// byteReaderFunc adapts a function to io.ByteReader.
type byteReaderFunc func() (byte, error)

func (f byteReaderFunc) ReadByte() (byte, error) { return f() }
