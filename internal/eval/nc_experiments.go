package eval

import (
	"context"
	"fmt"
	"sort"
	"strings"

	"repro/internal/core"
	"repro/internal/ctxsel"
	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/stats"
)

// ActorsCase runs the paper's main §4.2 test case — the five-actor query
// {Pitt, Clooney, DiCaprio, Johansson, Depp} with |C| = 100 — under both
// the ContextRW context (FindNC) and the RandomWalk context (RWMult).
type ActorsCase struct {
	Graph   *kg.Graph
	Query   []kg.NodeID
	FindNC  core.Result
	RWMult  core.Result
	Context []kg.NodeID
}

// RunActorsCase executes the test case. The paper's query is the five
// actors (Jolie excluded).
func RunActorsCase(d *gen.Dataset, cfg Config, policy dist.UnseenPolicy) (*ActorsCase, error) {
	cfg = cfg.WithDefaults()
	sc := d.Scenario("actors")
	query, err := sc.QueryIDs(d.Graph, 5)
	if err != nil {
		return nil, err
	}
	opt := core.Options{
		ContextSize: 100,
		Selector:    ctxsel.ContextRW{Walks: cfg.Walks, Seed: cfg.Seed},
		Seed:        cfg.Seed,
		SkipInverse: true,
		Policy:      policy,
	}
	res, err := core.FindNC(context.Background(), d.Graph, query, opt)
	if err != nil {
		return nil, err
	}

	rwOpt := opt
	rwOpt.Selector = ctxsel.RandomWalk{}
	rw, err := core.FindNC(context.Background(), d.Graph, query, rwOpt)
	if err != nil {
		return nil, err
	}

	return &ActorsCase{
		Graph:   d.Graph,
		Query:   query,
		FindNC:  res,
		RWMult:  rw,
		Context: res.ContextIDs(),
	}, nil
}

// Fig7Render prints the instance distribution of `created` (query vs
// context probabilities), the paper's Figure 7.
func (a *ActorsCase) Fig7Render() string {
	c, ok := a.FindNC.ByName("created")
	if !ok {
		return "Figure 7: created not tested\n"
	}
	qProbs := stats.NormalizeInts(c.Inst.Query)
	cProbs := stats.NormalizeInts(c.Inst.Context)
	var rows [][]string
	shown := 0
	for i := 0; i < c.Inst.NumCategories() && shown < 32; i++ {
		if c.Inst.Query[i] == 0 && c.Inst.Context[i] == 0 {
			continue
		}
		rows = append(rows, []string{
			c.Inst.CategoryName(a.Graph, i),
			fmtF(cProbs[i]), fmtF(qProbs[i]),
		})
		shown++
	}
	noneShare := 0.0
	if len(cProbs) > 0 {
		noneShare = cProbs[dist.NoneIndex]
	}
	return fmt.Sprintf(
		"Figure 7: instance distribution of created (|C|=100)\n"+
			"context None share: %.2f (paper: 0.43); notable: %v (score %.4f, P=%.4f)\n%s",
		noneShare, c.Notable(), c.Score, c.InstP,
		table([]string{"instance", "context", "query"}, rows))
}

// Fig8Render prints the cardinality distribution of hasWonPrize, the
// paper's Figure 8 (not notable: distributions agree).
func (a *ActorsCase) Fig8Render() string {
	c, ok := a.FindNC.ByName("hasWonPrize")
	if !ok {
		return "Figure 8: hasWonPrize not tested\n"
	}
	qProbs := stats.NormalizeInts(c.Card.Query)
	cProbs := stats.NormalizeInts(c.Card.Context)
	var rows [][]string
	for i := range c.Card.Query {
		rows = append(rows, []string{
			fmt.Sprintf("%d", i), fmtF(cProbs[i]), fmtF(qProbs[i]),
		})
	}
	return fmt.Sprintf(
		"Figure 8: cardinality distribution of hasWonPrize (|C|=100)\n"+
			"notable: %v (cardinality P=%.4f)\n%s",
		c.Notable(), c.CardP,
		table([]string{"cardinality", "context", "query"}, rows))
}

// Fig9Row is one label's significance probabilities under both contexts.
type Fig9Row struct {
	Label         string
	Kind          core.Kind
	FindNCP, RWP  float64
	FindNCNotable bool
	RWMultNotable bool
}

// Fig9 collects per-label significance probabilities for FindNC vs RWMult,
// the paper's Figure 9. Instance and cardinality tests appear as separate
// rows (the paper suffixes cardinality rows with "C").
func (a *ActorsCase) Fig9() []Fig9Row {
	byLabel := map[string][2]*core.Characteristic{}
	for i := range a.FindNC.Characteristics {
		c := &a.FindNC.Characteristics[i]
		e := byLabel[c.Name]
		e[0] = c
		byLabel[c.Name] = e
	}
	for i := range a.RWMult.Characteristics {
		c := &a.RWMult.Characteristics[i]
		e := byLabel[c.Name]
		e[1] = c
		byLabel[c.Name] = e
	}
	names := make([]string, 0, len(byLabel))
	for n := range byLabel {
		names = append(names, n)
	}
	sort.Strings(names)
	var rows []Fig9Row
	for _, n := range names {
		e := byLabel[n]
		if e[0] == nil || e[1] == nil {
			continue
		}
		rows = append(rows,
			Fig9Row{
				Label: n, Kind: core.KindInstance,
				FindNCP: e[0].InstP, RWP: e[1].InstP,
				FindNCNotable: e[0].InstScore > 0, RWMultNotable: e[1].InstScore > 0,
			},
			Fig9Row{
				Label: n + " C", Kind: core.KindCardinality,
				FindNCP: e[0].CardP, RWP: e[1].CardP,
				FindNCNotable: e[0].CardScore > 0, RWMultNotable: e[1].CardScore > 0,
			},
		)
	}
	return rows
}

// Fig9Render prints the comparison with the 0.05 threshold marked.
func (a *ActorsCase) Fig9Render() string {
	var rows [][]string
	for _, r := range a.Fig9() {
		rows = append(rows, []string{
			r.Label,
			fmt.Sprintf("%.4f%s", r.FindNCP, notableMark(r.FindNCNotable)),
			fmt.Sprintf("%.4f%s", r.RWP, notableMark(r.RWMultNotable)),
		})
	}
	return "Figure 9: significance probabilities, FindNC vs RWMult " +
		"(threshold 0.05; * = notable; 'C' rows are cardinality tests)\n" +
		table([]string{"label", "FindNC P", "RWMult P"}, rows)
}

func notableMark(b bool) string {
	if b {
		return "*"
	}
	return " "
}

// MetricsComparison reproduces the §4.2 ranking comparison: how many
// adjacent switches each scoring method needs to match the expert
// consensus ranking of the characteristics (paper: FindNC 2, KL 4, EMD 5).
type MetricsComparison struct {
	Expert   []string
	Rankings map[string][]string
	Switches map[string]int
}

// expertConsensus is the planted expert ranking over the actor scenario's
// forward labels: the dataset plants created and owns as genuinely
// distinctive for the query, prize and filmography behaviour as typical,
// and demographics as uninformative.
var expertConsensus = []string{
	"created", "owns", "hasWonPrize", "actedIn",
	"marriedTo", "bornIn", "livesIn", "gender",
}

// RunMetricsComparison ranks the expert-rated labels with the multinomial
// score (FindNC), KL divergence, and EMD, and counts switches against the
// consensus.
func RunMetricsComparison(a *ActorsCase) MetricsComparison {
	res := MetricsComparison{
		Expert:   expertConsensus,
		Rankings: map[string][]string{},
		Switches: map[string]int{},
	}
	rated := make(map[string]bool, len(expertConsensus))
	for _, l := range expertConsensus {
		rated[l] = true
	}

	findnc := map[string]float64{}
	kl := map[string]float64{}
	emd := map[string]float64{}
	for _, c := range a.FindNC.Characteristics {
		if !rated[c.Name] {
			continue
		}
		// FindNC ranks by 1−P (higher = more notable) even below the
		// significance threshold, giving a total order for comparison.
		p := c.InstP
		if c.CardP < p {
			p = c.CardP
		}
		findnc[c.Name] = 1 - p

		qInst := dist.ContextFloats(c.Inst.Query)
		cInst := dist.ContextFloats(c.Inst.Context)
		qCard := dist.ContextFloats(c.Card.Query)
		cCard := dist.ContextFloats(c.Card.Context)
		kl[c.Name] = maxf(stats.KLDivergence(qInst, cInst), stats.KLDivergence(qCard, cCard))
		// EMD: total variation for unordered instances, true 1-D EMD for
		// ordered cardinalities (Section 3.2's discussion).
		emd[c.Name] = maxf(stats.TotalVariation(qInst, cInst), stats.EMDOrdered(qCard, cCard))
	}
	res.Rankings["FindNC"] = stats.RankByScore(findnc)
	res.Rankings["KL"] = stats.RankByScore(kl)
	res.Rankings["EMD"] = stats.RankByScore(emd)
	for name, ranking := range res.Rankings {
		res.Switches[name] = stats.RankSwitchDistance(res.Expert, ranking)
	}
	return res
}

func maxf(a, b float64) float64 {
	if a > b {
		return a
	}
	return b
}

// Render prints the switch counts and rankings.
func (m MetricsComparison) Render() string {
	var b strings.Builder
	b.WriteString("Metrics comparison: switches vs expert ranking (paper: FindNC=2, KL=4, EMD=5)\n")
	b.WriteString("expert: " + strings.Join(m.Expert, " > ") + "\n")
	for _, name := range []string{"FindNC", "KL", "EMD"} {
		fmt.Fprintf(&b, "%-7s switches=%d  ranking: %s\n",
			name, m.Switches[name], strings.Join(m.Rankings[name], " > "))
	}
	return b.String()
}

// AuthorsCase reproduces the second §4.2 test case: query
// {Douglas Adams, Terry Pratchett}, |C| = 30, influences notable while
// created is not. The pooled unseen-value policy is required for the
// created outcome; see dist.UnseenPolicy.
type AuthorsCase struct {
	Data       *gen.AuthorsDataset
	Result     core.Result
	Influences core.Characteristic
	Created    core.Characteristic
}

// RunAuthorsCase executes the authors test case.
func RunAuthorsCase(seed int64, walks int) (*AuthorsCase, error) {
	ds := gen.Authors(seed)
	if walks == 0 {
		walks = 100000
	}
	res, err := core.FindNC(context.Background(), ds.Graph, ds.Query, core.Options{
		ContextSize: 30,
		Selector:    ctxsel.ContextRW{Walks: walks, Seed: seed},
		Seed:        seed,
		SkipInverse: true,
		Policy:      dist.UnseenPooled,
	})
	if err != nil {
		return nil, err
	}
	ac := &AuthorsCase{Data: ds, Result: res}
	var ok bool
	if ac.Influences, ok = res.ByName("influences"); !ok {
		return nil, fmt.Errorf("eval: influences not tested")
	}
	if ac.Created, ok = res.ByName("created"); !ok {
		return nil, fmt.Errorf("eval: created not tested")
	}
	return ac, nil
}

// Render summarizes the authors case outcome.
func (a *AuthorsCase) Render() string {
	return fmt.Sprintf(
		"Authors case (Adams & Pratchett, |C|=30, %d works, %d co-created):\n"+
			"  influences: notable=%v (P inst=%.4f card=%.4f) — paper: notable\n"+
			"  created:    notable=%v (P inst=%.4f card=%.4f) — paper: not notable\n",
		a.Data.TotalWorks, a.Data.CoCreated,
		a.Influences.Notable(), a.Influences.InstP, a.Influences.CardP,
		a.Created.Notable(), a.Created.InstP, a.Created.CardP)
}
