// Package eval is the experiment harness: it regenerates every table and
// figure of the paper's Section 4 against the synthetic datasets (see
// DESIGN.md for the experiment index and EXPERIMENTS.md for measured
// results). Each experiment returns a typed result with a Render method
// that prints the same rows/series the paper reports.
package eval

import (
	"fmt"
	"sort"
	"strings"

	"repro/internal/ctxsel"
	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/ppr"
	"repro/internal/topk"
)

// Config holds experiment-wide parameters.
type Config struct {
	// Seed drives dataset generation and every randomized component.
	Seed int64
	// Scale multiplies dataset sizes (1 = defaults).
	Scale float64
	// Walks is the PathMining budget (the paper uses 1M on a 3.3M-node
	// graph; proportionally fewer on the smaller synthetic graphs).
	Walks int
	// MaxContext is the largest context cutoff swept (the paper plots to
	// 400).
	MaxContext int
	// Step is the context-size sweep step.
	Step int
}

// WithDefaults fills unset fields.
func (c Config) WithDefaults() Config {
	if c.Scale == 0 {
		c.Scale = 1
	}
	if c.Walks == 0 {
		c.Walks = 200000
	}
	if c.MaxContext == 0 {
		c.MaxContext = 400
	}
	if c.Step == 0 {
		c.Step = 10
	}
	return c
}

// Cuts returns the context-size cutoffs swept by the quality experiments.
func (c Config) Cuts() []int {
	c = c.WithDefaults()
	var cuts []int
	for k := c.Step; k <= c.MaxContext; k += c.Step {
		cuts = append(cuts, k)
	}
	return cuts
}

// PRF bundles precision, recall, and F1.
type PRF struct {
	Precision, Recall, F1 float64
}

// Score computes PRF for hits out of k returned and gtSize relevant.
func Score(hits, k, gtSize int) PRF {
	var p PRF
	if k > 0 {
		p.Precision = float64(hits) / float64(k)
	}
	if gtSize > 0 {
		p.Recall = float64(hits) / float64(gtSize)
	}
	if p.Precision+p.Recall > 0 {
		p.F1 = 2 * p.Precision * p.Recall / (p.Precision + p.Recall)
	}
	return p
}

// F1Curve evaluates F1 at each cutoff of a ranking against a ground-truth
// set.
func F1Curve(ranking []topk.Item, gt map[kg.NodeID]bool, cuts []int) []float64 {
	out := make([]float64, len(cuts))
	hits := 0
	pos := 0
	for ci, cut := range cuts {
		for pos < cut && pos < len(ranking) {
			if gt[kg.NodeID(ranking[pos].ID)] {
				hits++
			}
			pos++
		}
		k := cut
		if k > len(ranking) {
			k = len(ranking)
		}
		out[ci] = Score(hits, k, len(gt)).F1
	}
	return out
}

// Algorithms evaluated by the context-quality experiments.
const (
	AlgContextRW  = "ContextRW"
	AlgRandomWalk = "RandomWalk"
)

// Ranking computes the full context ranking (up to k nodes) for one
// algorithm. ContextRW uses the configured walk budget; RandomWalk uses
// the paper's PageRank parameters.
func Ranking(g *kg.Graph, query []kg.NodeID, alg string, cfg Config, k int) []topk.Item {
	cfg = cfg.WithDefaults()
	switch alg {
	case AlgRandomWalk:
		return ppr.TopK(g, query, k, ppr.Options{})
	default:
		sel := ctxsel.ContextRW{Walks: cfg.Walks, Seed: cfg.Seed}
		return sel.Select(g, query, k)
	}
}

// QualityData caches the F1 sweeps for one dataset+domain: algorithm →
// query size → F1 value per cut. Figures 2–4 and Table 2 all read from it.
type QualityData struct {
	Dataset string
	Domain  string
	Cuts    []int
	F1      map[string]map[int][]float64
	// QueryNames helps label series ("Pitt, Clooney", ...).
	QueryNames []string
}

// ComputeQuality runs both algorithms across query sizes 2..6 and
// evaluates F1 against the planted ground truth at every cutoff.
func ComputeQuality(d *gen.Dataset, domain string, cfg Config) (*QualityData, error) {
	cfg = cfg.WithDefaults()
	sc := d.Scenario(domain)
	cuts := cfg.Cuts()
	qd := &QualityData{
		Dataset:    d.Name,
		Domain:     domain,
		Cuts:       cuts,
		F1:         map[string]map[int][]float64{AlgContextRW: {}, AlgRandomWalk: {}},
		QueryNames: sc.Query,
	}
	for size := 2; size <= len(sc.Query); size++ {
		query, err := sc.QueryIDs(d.Graph, size)
		if err != nil {
			return nil, err
		}
		gt := sc.GroundTruthIDs(d.Graph, size)
		for _, alg := range []string{AlgContextRW, AlgRandomWalk} {
			ranking := Ranking(d.Graph, query, alg, cfg, cfg.MaxContext)
			qd.F1[alg][size] = F1Curve(ranking, gt, cuts)
		}
	}
	return qd, nil
}

// AverageF1 averages the per-query-size curves of one algorithm.
func (qd *QualityData) AverageF1(alg string) []float64 {
	out := make([]float64, len(qd.Cuts))
	n := 0
	for _, curve := range qd.F1[alg] {
		for i, v := range curve {
			out[i] += v
		}
		n++
	}
	if n > 0 {
		for i := range out {
			out[i] /= float64(n)
		}
	}
	return out
}

// MaxF1 returns the maximum F1 of a curve and the cut where it occurs.
func MaxF1(cuts []int, curve []float64) (best float64, atCut int) {
	for i, v := range curve {
		if v > best {
			best = v
			atCut = cuts[i]
		}
	}
	return best, atCut
}

// queryLabel renders "Pitt, Clooney, DiCaprio" style series names from
// full entity names (last word of each).
func queryLabel(names []string, size int) string {
	parts := make([]string, 0, size)
	for _, n := range names[:size] {
		fields := strings.Fields(n)
		parts = append(parts, fields[len(fields)-1])
	}
	return strings.Join(parts, ", ")
}

// table renders an aligned text table.
func table(header []string, rows [][]string) string {
	widths := make([]int, len(header))
	for i, h := range header {
		widths[i] = len(h)
	}
	for _, r := range rows {
		for i, c := range r {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	writeRow(header)
	for i, w := range widths {
		if i > 0 {
			b.WriteString("  ")
		}
		b.WriteString(strings.Repeat("-", w))
	}
	b.WriteByte('\n')
	for _, r := range rows {
		writeRow(r)
	}
	return b.String()
}

// fmtF renders a float with 3 decimals.
func fmtF(v float64) string { return fmt.Sprintf("%.3f", v) }

// sortedKeys returns the sorted int keys of a map.
func sortedKeys[V any](m map[int]V) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
