package eval

import (
	"strings"
	"testing"

	"repro/internal/dist"
	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/topk"
)

// testCfg keeps eval tests fast: a half-scale graph and a reduced walk
// budget. Half scale keeps the actor community (120) comfortably larger
// than the |C|=100 context the §4.2 case uses, as at full scale.
func testCfg() Config {
	return Config{Seed: 11, Scale: 0.5, Walks: 40000, MaxContext: 200, Step: 10}.WithDefaults()
}

func testDataset(t *testing.T) *gen.Dataset {
	t.Helper()
	return gen.YAGOLike(gen.YAGOConfig{Seed: 11, Scale: 0.5})
}

func TestScore(t *testing.T) {
	p := Score(5, 10, 20)
	if p.Precision != 0.5 || p.Recall != 0.25 {
		t.Fatalf("Score = %+v", p)
	}
	want := 2 * 0.5 * 0.25 / 0.75
	if p.F1 != want {
		t.Fatalf("F1 = %v, want %v", p.F1, want)
	}
	zero := Score(0, 0, 0)
	if zero.F1 != 0 || zero.Precision != 0 || zero.Recall != 0 {
		t.Fatalf("zero Score = %+v", zero)
	}
}

func TestF1Curve(t *testing.T) {
	ranking := []topk.Item{{ID: 1}, {ID: 2}, {ID: 3}, {ID: 4}}
	gt := map[kg.NodeID]bool{1: true, 3: true}
	curve := F1Curve(ranking, gt, []int{1, 2, 4, 10})
	// cut=1: hits=1, P=1, R=0.5 -> F1=2/3.
	if curve[0] < 0.66 || curve[0] > 0.67 {
		t.Fatalf("F1@1 = %v", curve[0])
	}
	// cut=4: hits=2, P=0.5, R=1 -> F1=2/3.
	if curve[2] < 0.66 || curve[2] > 0.67 {
		t.Fatalf("F1@4 = %v", curve[2])
	}
	// cut beyond ranking length: same hits, k clamps to len(ranking).
	if curve[3] != curve[2] {
		t.Fatalf("F1@10 = %v, want %v", curve[3], curve[2])
	}
}

func TestCuts(t *testing.T) {
	cfg := Config{MaxContext: 50, Step: 10}.WithDefaults()
	cuts := cfg.Cuts()
	if len(cuts) != 5 || cuts[0] != 10 || cuts[4] != 50 {
		t.Fatalf("Cuts = %v", cuts)
	}
}

func TestMaxF1(t *testing.T) {
	best, at := MaxF1([]int{10, 20, 30}, []float64{0.1, 0.5, 0.3})
	if best != 0.5 || at != 20 {
		t.Fatalf("MaxF1 = %v @ %d", best, at)
	}
}

func TestComputeQualityAndFigures(t *testing.T) {
	if testing.Short() {
		t.Skip("quality sweep is expensive")
	}
	d := testDataset(t)
	cfg := testCfg()
	qd, err := ComputeQuality(d, "actors", cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Curves exist for both algorithms and all query sizes.
	for _, alg := range []string{AlgContextRW, AlgRandomWalk} {
		if len(qd.F1[alg]) != 5 {
			t.Fatalf("%s has %d query sizes", alg, len(qd.F1[alg]))
		}
		for size, curve := range qd.F1[alg] {
			if len(curve) != len(qd.Cuts) {
				t.Fatalf("%s |Q|=%d: curve length %d", alg, size, len(curve))
			}
			for _, v := range curve {
				if v < 0 || v > 1 {
					t.Fatalf("F1 out of range: %v", v)
				}
			}
		}
	}
	// The paper's headline: ContextRW beats RandomWalk on average.
	f3 := Fig3(qd)
	crwBest, _ := MaxF1(qd.Cuts, f3.CRW)
	rwBest, _ := MaxF1(qd.Cuts, f3.RW)
	if crwBest <= rwBest {
		t.Fatalf("ContextRW max F1 %v should beat RandomWalk %v", crwBest, rwBest)
	}
	if adv := f3.Advantage(); adv < 1 {
		t.Fatalf("advantage = %v, want > 1", adv)
	}

	// Renders produce non-empty tables naming the experiment.
	for name, s := range map[string]string{
		"fig2a": Fig2(qd, AlgContextRW).Render(),
		"fig2b": Fig2(qd, AlgRandomWalk).Render(),
		"fig3":  f3.Render(),
		"fig4":  Fig4(qd).Render(),
	} {
		if !strings.Contains(s, "F1") && !strings.Contains(s, "Figure") {
			t.Fatalf("%s render malformed: %q", name, s[:min(60, len(s))])
		}
	}
}

func TestFig5And6Timings(t *testing.T) {
	if testing.Short() {
		t.Skip("timing experiment is expensive")
	}
	d := testDataset(t)
	cfg := testCfg()
	f5, err := Fig5(d, "actors", cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(f5.Sizes) != 5 {
		t.Fatalf("Fig5 sizes = %v", f5.Sizes)
	}
	for _, alg := range []string{AlgContextRW, AlgRandomWalk} {
		for i, s := range f5.Seconds[alg] {
			if s <= 0 {
				t.Fatalf("%s time[%d] = %v", alg, i, s)
			}
		}
	}
	if !strings.Contains(f5.Render(), "Figure 5") {
		t.Fatal("Fig5 render malformed")
	}

	cfg6 := cfg
	cfg6.Walks = 10000
	f6, err := Fig6(d, "actors", cfg6)
	if err != nil {
		t.Fatal(err)
	}
	if len(f6.Lengths) != 4 || len(f6.Seconds) != 5 {
		t.Fatalf("Fig6 shape: %d lengths, %d sizes", len(f6.Lengths), len(f6.Seconds))
	}
	if !strings.Contains(f6.Render(), "Figure 6") {
		t.Fatal("Fig6 render malformed")
	}
}

func TestTable3(t *testing.T) {
	if testing.Short() {
		t.Skip("|M| sweep is expensive")
	}
	d := testDataset(t)
	t3, err := Table3(d, "actors", testCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(t3.F1) != 4 || len(t3.F1[0]) != 4 {
		t.Fatalf("Table3 grid %dx%d", len(t3.F1), len(t3.F1[0]))
	}
	// The paper's finding: F1 is insensitive to |M|. Check that within
	// each |C| row the spread across |M| is modest relative to the level.
	for ci, row := range t3.F1 {
		lo, hi := row[0], row[0]
		for _, v := range row {
			if v < lo {
				lo = v
			}
			if v > hi {
				hi = v
			}
		}
		if hi > 0 && hi-lo > 0.6*hi {
			t.Logf("warning: |C|=%d row varies widely across |M|: %v", t3.Cuts[ci], row)
		}
	}
	if !strings.Contains(t3.Render(), "Table 3") {
		t.Fatal("Table3 render malformed")
	}
}

func TestActorsCaseShapes(t *testing.T) {
	if testing.Short() {
		t.Skip("actors case is expensive")
	}
	d := testDataset(t)
	a, err := RunActorsCase(d, testCfg(), dist.UnseenStrict)
	if err != nil {
		t.Fatal(err)
	}
	// Figure 7: created is notable under the FindNC context.
	created, ok := a.FindNC.ByName("created")
	if !ok || !created.Notable() {
		t.Fatalf("created not notable: %+v", created)
	}
	// Figure 8: hasWonPrize is not notable under the FindNC context.
	prize, ok := a.FindNC.ByName("hasWonPrize")
	if !ok {
		t.Fatal("hasWonPrize not tested")
	}
	if prize.Notable() {
		t.Fatalf("hasWonPrize should not be notable: instP=%v cardP=%v", prize.InstP, prize.CardP)
	}
	// Figure 9: actedIn is not notable under FindNC but is under RWMult.
	fnActed, _ := a.FindNC.ByName("actedIn")
	rwActed, ok := a.RWMult.ByName("actedIn")
	if !ok {
		t.Fatal("actedIn missing from RWMult")
	}
	if fnActed.InstP <= 0.05 {
		t.Fatalf("FindNC actedIn instance P = %v, want > 0.05", fnActed.InstP)
	}
	if rwActed.InstP > 0.05 {
		t.Fatalf("RWMult actedIn instance P = %v, want ≤ 0.05", rwActed.InstP)
	}
	// Renders.
	for _, s := range []string{a.Fig7Render(), a.Fig8Render(), a.Fig9Render()} {
		if len(s) < 40 {
			t.Fatalf("short render: %q", s)
		}
	}
	if len(a.Fig9()) == 0 {
		t.Fatal("Fig9 rows empty")
	}
}

func TestMetricsComparisonOrdering(t *testing.T) {
	if testing.Short() {
		t.Skip("metrics comparison is expensive")
	}
	d := testDataset(t)
	a, err := RunActorsCase(d, testCfg(), dist.UnseenStrict)
	if err != nil {
		t.Fatal(err)
	}
	m := RunMetricsComparison(a)
	if len(m.Rankings["FindNC"]) == 0 {
		t.Fatal("FindNC ranking empty")
	}
	// The paper's finding: the multinomial test tracks expert judgment
	// better than EMD and at least as well as KL. At this reduced test
	// scale KL can tie within a switch or two, so the hard assertion is
	// against EMD; the full-scale comparison in EXPERIMENTS.md shows the
	// complete FindNC < KL < EMD ordering.
	if m.Switches["FindNC"] > m.Switches["EMD"] {
		t.Fatalf("FindNC switches %d should not exceed EMD %d",
			m.Switches["FindNC"], m.Switches["EMD"])
	}
	if m.Switches["FindNC"] > m.Switches["KL"]+2 {
		t.Fatalf("FindNC switches %d should stay within 2 of KL %d",
			m.Switches["FindNC"], m.Switches["KL"])
	}
	if !strings.Contains(m.Render(), "switches") {
		t.Fatal("metrics render malformed")
	}
}

func TestAuthorsCaseOutcome(t *testing.T) {
	ac, err := RunAuthorsCase(11, 50000)
	if err != nil {
		t.Fatal(err)
	}
	if !ac.Influences.Notable() {
		t.Fatalf("influences should be notable: instP=%v cardP=%v",
			ac.Influences.InstP, ac.Influences.CardP)
	}
	if ac.Created.Notable() {
		t.Fatalf("created should not be notable: instP=%v cardP=%v",
			ac.Created.InstP, ac.Created.CardP)
	}
	if !strings.Contains(ac.Render(), "influences") {
		t.Fatal("authors render malformed")
	}
}

func TestTable1Render(t *testing.T) {
	s := Table1Render()
	for _, name := range []string{"Angela Merkel", "Brad Pitt", "Hans Zimmer"} {
		if !strings.Contains(s, name) {
			t.Fatalf("Table 1 missing %s", name)
		}
	}
}

func TestTable2(t *testing.T) {
	yq := &QualityData{
		Dataset: "yago-like",
		Cuts:    []int{50, 100},
		F1: map[string]map[int][]float64{
			AlgContextRW: {2: {0.1, 0.2}, 3: {0.3, 0.25}},
		},
	}
	lq := &QualityData{
		Dataset: "linkedmdb-like",
		Cuts:    []int{50, 100},
		F1: map[string]map[int][]float64{
			AlgContextRW: {2: {0.15, 0.3}},
		},
	}
	t2 := Table2(yq, lq)
	if got := t2.Rows[2]["yago-like"]; got[0] != 0.2 || got[1] != 100 {
		t.Fatalf("Table2 yago row = %v", got)
	}
	if got := t2.Rows[2]["linkedmdb-like"]; got[0] != 0.3 {
		t.Fatalf("Table2 lmdb row = %v", got)
	}
	if !strings.Contains(t2.Render(), "Table 2") {
		t.Fatal("Table2 render malformed")
	}
}

func TestQueryLabel(t *testing.T) {
	got := queryLabel([]string{"Brad Pitt", "George Clooney", "X"}, 2)
	if got != "Pitt, Clooney" {
		t.Fatalf("queryLabel = %q", got)
	}
}

func TestRankingFromScores(t *testing.T) {
	scores := []float64{0.5, 0, 0.9, 0.7}
	items := rankingFromScores(scores, map[uint32]bool{3: true}, 10)
	if len(items) != 2 || items[0].ID != 2 || items[1].ID != 0 {
		t.Fatalf("rankingFromScores = %v", items)
	}
}
