package eval

import (
	"fmt"
	"time"

	"repro/internal/ctxsel"
	"repro/internal/gen"
	"repro/internal/metapath"
	"repro/internal/ppr"
	"repro/internal/topk"
)

// Fig2Result reproduces Figure 2: F1 vs context size for each query-size
// prefix, one sub-result per algorithm.
type Fig2Result struct {
	Quality *QualityData
	Alg     string
}

// Fig2 derives the Figure 2a (ContextRW) or 2b (RandomWalk) series.
func Fig2(qd *QualityData, alg string) Fig2Result {
	return Fig2Result{Quality: qd, Alg: alg}
}

// Render prints one row per cutoff with a column per query prefix.
func (r Fig2Result) Render() string {
	qd := r.Quality
	sizes := sortedKeys(qd.F1[r.Alg])
	header := []string{"|C|"}
	for _, s := range sizes {
		header = append(header, queryLabel(qd.QueryNames, s))
	}
	var rows [][]string
	for ci, cut := range qd.Cuts {
		row := []string{fmt.Sprintf("%d", cut)}
		for _, s := range sizes {
			row = append(row, fmtF(qd.F1[r.Alg][s][ci]))
		}
		rows = append(rows, row)
	}
	return fmt.Sprintf("Figure 2 (%s, %s/%s): F1 vs |C| per query\n%s",
		r.Alg, qd.Dataset, qd.Domain, table(header, rows))
}

// Fig3Result reproduces Figure 3: average F1 vs context size for both
// algorithms.
type Fig3Result struct {
	Quality *QualityData
	CRW, RW []float64
}

// Fig3 computes the averaged curves.
func Fig3(qd *QualityData) Fig3Result {
	return Fig3Result{
		Quality: qd,
		CRW:     qd.AverageF1(AlgContextRW),
		RW:      qd.AverageF1(AlgRandomWalk),
	}
}

// Render prints the two averaged series.
func (r Fig3Result) Render() string {
	var rows [][]string
	for ci, cut := range r.Quality.Cuts {
		rows = append(rows, []string{
			fmt.Sprintf("%d", cut), fmtF(r.CRW[ci]), fmtF(r.RW[ci]),
		})
	}
	return fmt.Sprintf("Figure 3 (%s/%s): average F1 vs |C|\n%s",
		r.Quality.Dataset, r.Quality.Domain,
		table([]string{"|C|", "ContextRW", "RandomWalk"}, rows))
}

// Advantage returns the mean ContextRW/RandomWalk F1 ratio over cuts where
// the baseline is non-zero — the paper's "2 times better" claim.
func (r Fig3Result) Advantage() float64 {
	sum, n := 0.0, 0
	for i := range r.CRW {
		if r.RW[i] > 0 {
			sum += r.CRW[i] / r.RW[i]
			n++
		}
	}
	if n == 0 {
		return 0
	}
	return sum / float64(n)
}

// Fig4Result reproduces Figure 4: average F1 vs query size at fixed
// context sizes 50 and 100 for both algorithms.
type Fig4Result struct {
	Quality *QualityData
	// F1At[alg][cut][size] with cut ∈ {50, 100}.
	F1At map[string]map[int]map[int]float64
}

// Fig4 extracts the fixed-cut columns from the quality data.
func Fig4(qd *QualityData) Fig4Result {
	res := Fig4Result{Quality: qd, F1At: map[string]map[int]map[int]float64{}}
	for _, alg := range []string{AlgContextRW, AlgRandomWalk} {
		res.F1At[alg] = map[int]map[int]float64{50: {}, 100: {}}
		for _, cut := range []int{50, 100} {
			ci := indexOfCut(qd.Cuts, cut)
			if ci < 0 {
				continue
			}
			for size, curve := range qd.F1[alg] {
				res.F1At[alg][cut][size] = curve[ci]
			}
		}
	}
	return res
}

func indexOfCut(cuts []int, cut int) int {
	for i, c := range cuts {
		if c == cut {
			return i
		}
	}
	return -1
}

// Render prints F1 per query size for the four algorithm/cut combinations.
func (r Fig4Result) Render() string {
	sizes := sortedKeys(r.Quality.F1[AlgContextRW])
	header := []string{"|Q|", "ContextRW |C|=50", "ContextRW |C|=100",
		"RandomWalk |C|=50", "RandomWalk |C|=100"}
	var rows [][]string
	for _, s := range sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s),
			fmtF(r.F1At[AlgContextRW][50][s]),
			fmtF(r.F1At[AlgContextRW][100][s]),
			fmtF(r.F1At[AlgRandomWalk][50][s]),
			fmtF(r.F1At[AlgRandomWalk][100][s]),
		})
	}
	return fmt.Sprintf("Figure 4 (%s/%s): average F1 vs |Q|\n%s",
		r.Quality.Dataset, r.Quality.Domain, table(header, rows))
}

// Fig5Result reproduces Figure 5: context selection wall-clock time vs
// query size for both algorithms.
type Fig5Result struct {
	Sizes []int
	// Seconds[alg][i] is the measured time for Sizes[i].
	Seconds map[string][]float64
}

// Fig5 measures selection times. Both algorithms run single-threaded so
// the comparison matches the paper's sequential Java implementation.
func Fig5(d *gen.Dataset, domain string, cfg Config) (Fig5Result, error) {
	cfg = cfg.WithDefaults()
	sc := d.Scenario(domain)
	res := Fig5Result{Seconds: map[string][]float64{}}
	for size := 1; size <= 5; size++ {
		query, err := sc.QueryIDs(d.Graph, size)
		if err != nil {
			return res, err
		}
		res.Sizes = append(res.Sizes, size)

		start := time.Now()
		sel := ctxsel.ContextRW{Walks: cfg.Walks, Seed: cfg.Seed, Parallelism: 1}
		sel.Select(d.Graph, query, 100)
		res.Seconds[AlgContextRW] = append(res.Seconds[AlgContextRW], time.Since(start).Seconds())

		start = time.Now()
		ppr.TopK(d.Graph, query, 100, ppr.Options{Parallelism: 1})
		res.Seconds[AlgRandomWalk] = append(res.Seconds[AlgRandomWalk], time.Since(start).Seconds())
	}
	return res, nil
}

// Render prints seconds per query size.
func (r Fig5Result) Render() string {
	var rows [][]string
	for i, s := range r.Sizes {
		rows = append(rows, []string{
			fmt.Sprintf("%d", s),
			fmt.Sprintf("%.4f", r.Seconds[AlgContextRW][i]),
			fmt.Sprintf("%.4f", r.Seconds[AlgRandomWalk][i]),
			fmt.Sprintf("%.1fx", safeRatio(r.Seconds[AlgRandomWalk][i], r.Seconds[AlgContextRW][i])),
		})
	}
	return "Figure 5: context selection time (s) vs |Q|\n" +
		table([]string{"|Q|", "ContextRW", "RandomWalk", "RW/CRW"}, rows)
}

func safeRatio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}

// Fig6Result reproduces Figure 6: ContextRW time vs maximum metapath
// length, one series per query size.
type Fig6Result struct {
	Lengths []int
	Sizes   []int
	// Seconds[sizeIdx][lenIdx].
	Seconds [][]float64
}

// Fig6 measures mining+scoring time for metapath length caps 5..20.
func Fig6(d *gen.Dataset, domain string, cfg Config) (Fig6Result, error) {
	cfg = cfg.WithDefaults()
	sc := d.Scenario(domain)
	res := Fig6Result{Lengths: []int{5, 10, 15, 20}}
	for size := 2; size <= len(sc.Query); size++ {
		query, err := sc.QueryIDs(d.Graph, size)
		if err != nil {
			return res, err
		}
		res.Sizes = append(res.Sizes, size)
		var times []float64
		for _, maxLen := range res.Lengths {
			start := time.Now()
			sel := ctxsel.ContextRW{
				Walks: cfg.Walks, Seed: cfg.Seed, MaxLength: maxLen, Parallelism: 1,
			}
			sel.Select(d.Graph, query, 100)
			times = append(times, time.Since(start).Seconds())
		}
		res.Seconds = append(res.Seconds, times)
	}
	return res, nil
}

// Render prints seconds per (query size, max length).
func (r Fig6Result) Render() string {
	header := []string{"maxLen"}
	for _, s := range r.Sizes {
		header = append(header, fmt.Sprintf("|Q|=%d", s))
	}
	var rows [][]string
	for li, l := range r.Lengths {
		row := []string{fmt.Sprintf("%d", l)}
		for si := range r.Sizes {
			row = append(row, fmt.Sprintf("%.4f", r.Seconds[si][li]))
		}
		rows = append(rows, row)
	}
	return "Figure 6: ContextRW time (s) vs max metapath length\n" + table(header, rows)
}

// Table2Result reproduces Table 2: maximum F1 and the context size where
// it occurs, per query size, on both datasets (ContextRW, actors domain).
type Table2Result struct {
	// Rows[size][dataset] = (maxF1, argmax|C|).
	Rows map[int]map[string][2]float64
}

// Table2 extracts maxima from two quality sweeps.
func Table2(yago, lmdb *QualityData) Table2Result {
	res := Table2Result{Rows: map[int]map[string][2]float64{}}
	for _, qd := range []*QualityData{yago, lmdb} {
		for size, curve := range qd.F1[AlgContextRW] {
			best, at := MaxF1(qd.Cuts, curve)
			if res.Rows[size] == nil {
				res.Rows[size] = map[string][2]float64{}
			}
			res.Rows[size][qd.Dataset] = [2]float64{best, float64(at)}
		}
	}
	return res
}

// Render prints the paper's Table 2 layout.
func (r Table2Result) Render() string {
	var rows [][]string
	for _, size := range sortedKeys(r.Rows) {
		for _, ds := range []string{"yago-like", "linkedmdb-like"} {
			v, ok := r.Rows[size][ds]
			if !ok {
				continue
			}
			rows = append(rows, []string{
				fmt.Sprintf("%d", size), ds, fmtF(v[0]), fmt.Sprintf("%.0f", v[1]),
			})
		}
	}
	return "Table 2: max F1 and argmax |C| (ContextRW, actors)\n" +
		table([]string{"|Q|", "dataset", "maxF1", "|C|"}, rows)
}

// Table3Result reproduces Table 3: F1 as a function of |M| and |C|.
type Table3Result struct {
	NumPaths []int
	Cuts     []int
	// F1[cutIdx][pathIdx].
	F1 [][]float64
}

// Table3 mines once at the configured walk budget and re-scores with
// |M| ∈ {5,10,15,20}, evaluating at |C| ∈ {50,100,150,200}. The paper uses
// the actors domain with the full query.
func Table3(d *gen.Dataset, domain string, cfg Config) (Table3Result, error) {
	cfg = cfg.WithDefaults()
	sc := d.Scenario(domain)
	size := len(sc.Query)
	query, err := sc.QueryIDs(d.Graph, size)
	if err != nil {
		return Table3Result{}, err
	}
	gt := sc.GroundTruthIDs(d.Graph, size)

	mined := metapath.Mine(d.Graph, query, metapath.MineOptions{
		Walks: cfg.Walks, Seed: cfg.Seed,
	})
	res := Table3Result{
		NumPaths: []int{5, 10, 15, 20},
		Cuts:     []int{50, 100, 150, 200},
	}
	res.F1 = make([][]float64, len(res.Cuts))
	for i := range res.F1 {
		res.F1[i] = make([]float64, len(res.NumPaths))
	}
	for pi, m := range res.NumPaths {
		sel := ctxsel.ContextRW{NumPaths: m, Walks: cfg.Walks, Seed: cfg.Seed}
		scores := sel.ScoresWithPaths(d.Graph, query, mined)
		skip := make(map[uint32]bool)
		for _, q := range query {
			skip[q] = true
		}
		ranking := rankingFromScores(scores, skip, 200)
		curve := F1Curve(ranking, gt, res.Cuts)
		for ci := range res.Cuts {
			res.F1[ci][pi] = curve[ci]
		}
	}
	return res, nil
}

// Render prints the |C| × |M| grid.
func (r Table3Result) Render() string {
	header := []string{"|C|"}
	for _, m := range r.NumPaths {
		header = append(header, fmt.Sprintf("|M|=%d", m))
	}
	var rows [][]string
	for ci, cut := range r.Cuts {
		row := []string{fmt.Sprintf("%d", cut)}
		for pi := range r.NumPaths {
			row = append(row, fmtF(r.F1[ci][pi]))
		}
		rows = append(rows, row)
	}
	return "Table 3: F1 vs number of paths |M| and context size |C|\n" + table(header, rows)
}

// Table1Render prints the paper's Table 1 (the query entities).
func Table1Render() string {
	header := []string{"politicians", "actors", "movie contributors"}
	var rows [][]string
	for i := 0; i < 6; i++ {
		rows = append(rows, []string{
			gen.Table1["politicians"][i],
			gen.Table1["actors"][i],
			gen.Table1["contributors"][i],
		})
	}
	return "Table 1: query entities per domain\n" + table(header, rows)
}

// rankingFromScores turns a dense score vector into a ranked top-k list,
// excluding skipped nodes and zero scores (unreached nodes).
func rankingFromScores(scores []float64, skip map[uint32]bool, k int) []topk.Item {
	sel := topk.New(k)
	for id, sc := range scores {
		if sc == 0 || skip[uint32(id)] {
			continue
		}
		sel.Offer(uint32(id), sc)
	}
	return sel.Ranked()
}
