package stats

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/qcache"
)

// forceMC selects a Monte-Carlo run regardless of problem size.
const forceMCLimit = 1

// TestNullMemoBitwiseIdentical: for many random (π, observation) pairs,
// a memoized Multinomial returns exactly what a memo-free one returns —
// on the miss that fills the memo AND on every hit after it, including
// hits probed with different observations under the same π and n.
func TestNullMemoBitwiseIdentical(t *testing.T) {
	cache := qcache.New(256)
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 40; trial++ {
		k := 2 + rng.Intn(6)
		pi := make([]float64, k)
		for i := range pi {
			pi[i] = rng.Float64()
		}
		n := 3 + rng.Intn(8)
		obsSets := make([][]int, 3)
		for j := range obsSets {
			obs := make([]int, k)
			rem := n
			for i := 0; i < k-1; i++ {
				c := rng.Intn(rem + 1)
				obs[i], rem = c, rem-c
			}
			obs[k-1] = rem
			obsSets[j] = obs
		}
		plain := Multinomial{ExactLimit: forceMCLimit, Samples: 400, Seed: 11}
		memo := plain
		memo.Nulls = cache
		for j, obs := range obsSets {
			want := plain.Test(pi, obs)
			got := memo.Test(pi, obs)
			if got != want {
				t.Fatalf("trial %d obs %d: memo %+v vs fresh %+v", trial, j, got, want)
			}
			if want.Exact {
				t.Fatalf("trial %d: expected a Monte-Carlo run", trial)
			}
		}
	}
	st := cache.Stats()
	if st.Layers[qcache.LayerNull].Hits == 0 || st.Layers[qcache.LayerNull].Misses == 0 {
		t.Fatalf("memo never exercised both paths: %+v", st)
	}
	// Distinct π under one (n, samples, seed) must occupy distinct entries:
	// every distribution's misses happen once, for 2·40 tests per stored
	// null distribution afterwards... at minimum hits must dominate.
	if st.Layers[qcache.LayerNull].Hits < st.Layers[qcache.LayerNull].Misses {
		t.Fatalf("repeated π should mostly hit: %+v", st)
	}
}

// TestNullMemoReferenceEquality pins that a hit serves the stored order
// statistics by reference — no resampling, no copying — by fetching the
// entry through the same key the test uses and comparing slice identity
// across repeated tests.
func TestNullMemoReferenceEquality(t *testing.T) {
	cache := qcache.New(16)
	m := Multinomial{ExactLimit: forceMCLimit, Samples: 300, Seed: 5, Nulls: cache}
	pi := []float64{0.5, 0.3, 0.2}
	obs := []int{4, 2, 1}
	n := 7
	first := m.Test(pi, obs)

	p := normalizeProbs(pi, len(obs))
	key := nullKey(p, n, m.Samples, m.Seed)
	v, ok := cache.GetLayer(key, qcache.LayerNull)
	if !ok {
		t.Fatal("null distribution not memoized under the expected key")
	}
	nd := v.(*nullDist)
	if len(nd.lps) != m.Samples {
		t.Fatalf("stored %d order statistics, want %d", len(nd.lps), m.Samples)
	}
	if !nd.matches(p) {
		t.Fatal("stored π does not verify against the normalized input")
	}

	// A different observation under the same π and total hits the same
	// entry — same backing array, untouched.
	second := m.Test(pi, []int{1, 2, 4})
	v2, _ := cache.GetLayer(key, qcache.LayerNull)
	if &v2.(*nullDist).lps[0] != &nd.lps[0] {
		t.Fatal("hit replaced the stored order statistics — expected reference reuse")
	}
	if plain := (Multinomial{ExactLimit: forceMCLimit, Samples: 300, Seed: 5}); plain.Test(pi, []int{1, 2, 4}) != second {
		t.Fatalf("memo hit diverged from fresh sampling")
	}
	if first.Exact || second.Exact {
		t.Fatal("expected Monte-Carlo results")
	}
}

// TestNullMemoKeySensitivity: changing n, Samples, Seed, or any bit of π
// must reach a different entry (or verify-miss), never a stale p-value.
func TestNullMemoKeySensitivity(t *testing.T) {
	cache := qcache.New(64)
	base := Multinomial{ExactLimit: forceMCLimit, Samples: 200, Seed: 3, Nulls: cache}
	pi := []float64{0.6, 0.25, 0.15}
	obs := []int{3, 3, 1}
	if got, want := base.Test(pi, obs), (Multinomial{ExactLimit: forceMCLimit, Samples: 200, Seed: 3}).Test(pi, obs); got != want {
		t.Fatalf("base: %+v vs %+v", got, want)
	}
	variants := []Multinomial{
		{ExactLimit: forceMCLimit, Samples: 500, Seed: 3, Nulls: cache},
		{ExactLimit: forceMCLimit, Samples: 200, Seed: 9, Nulls: cache},
	}
	for i, m := range variants {
		plain := m
		plain.Nulls = nil
		if got, want := m.Test(pi, obs), plain.Test(pi, obs); got != want {
			t.Fatalf("variant %d: %+v vs %+v", i, got, want)
		}
	}
	// Perturbed π (one ulp) and a different total both re-sample.
	pi2 := []float64{0.6, 0.25, math.Nextafter(0.15, 1)}
	if got, want := base.Test(pi2, obs), (Multinomial{ExactLimit: forceMCLimit, Samples: 200, Seed: 3}).Test(pi2, obs); got != want {
		t.Fatalf("perturbed π: %+v vs %+v", got, want)
	}
	obs2 := []int{3, 3, 2}
	if got, want := base.Test(pi, obs2), (Multinomial{ExactLimit: forceMCLimit, Samples: 200, Seed: 3}).Test(pi, obs2); got != want {
		t.Fatalf("different n: %+v vs %+v", got, want)
	}
}

// TestNullMemoCollisionRecovers: a poisoned entry under the right key but
// the wrong π (what a 64-bit hash collision would leave) is detected by
// the bitwise verification and recomputed, not served.
func TestNullMemoCollisionRecovers(t *testing.T) {
	cache := qcache.New(16)
	m := Multinomial{ExactLimit: forceMCLimit, Samples: 200, Seed: 3, Nulls: cache}
	pi := []float64{0.7, 0.2, 0.1}
	obs := []int{2, 2, 2}
	p := normalizeProbs(pi, len(obs))
	key := nullKey(p, 6, m.Samples, m.Seed)
	// Poison: a different π whose (sorted) fake statistics would yield an
	// obviously wrong p-value if trusted.
	cache.PutSized(key, &nullDist{p: []float64{1, 0, 0}, lps: make([]float64, 200)}, qcache.LayerNull, 0)
	want := (Multinomial{ExactLimit: forceMCLimit, Samples: 200, Seed: 3}).Test(pi, obs)
	if got := m.Test(pi, obs); got != want {
		t.Fatalf("collision entry served: %+v vs %+v", got, want)
	}
	// The recomputation overwrote the poisoned entry with the real one.
	v, _ := cache.GetLayer(key, qcache.LayerNull)
	if !v.(*nullDist).matches(p) {
		t.Fatal("poisoned entry not overwritten after detection")
	}
}

// TestNullMemoExactPathUntouched: exact enumeration ignores the memo —
// its float accumulation is order-dependent, so there is nothing legal to
// reuse — and stores nothing.
func TestNullMemoExactPathUntouched(t *testing.T) {
	cache := qcache.New(16)
	m := Multinomial{Samples: 200, Seed: 3, Nulls: cache}
	res := m.Test([]float64{0.5, 0.5}, []int{3, 2})
	if !res.Exact {
		t.Fatal("expected the exact path")
	}
	if st := cache.Stats(); st.Size != 0 || st.Hits+st.Misses != 0 {
		t.Fatalf("exact path touched the memo: %+v", st)
	}
}
