package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestBinomialTailExact(t *testing.T) {
	// π = (½, ½), x = (5, 0). Outcome probabilities are C(5,i)/32; the
	// outcomes at most as likely as x are (5,0) and (0,5): Pr_s = 2/32.
	m := Multinomial{}
	r := m.Test([]float64{0.5, 0.5}, []int{5, 0})
	if !r.Exact {
		t.Fatal("small case should be exact")
	}
	if math.Abs(r.P-2.0/32.0) > 1e-12 {
		t.Fatalf("P = %v, want 0.0625", r.P)
	}
}

func TestSkewedTailExact(t *testing.T) {
	// π = (0.9, 0.1), x = (0, 5): Pr(x) = 1e-5 and no other outcome is as
	// unlikely, so Pr_s = 1e-5.
	m := Multinomial{}
	r := m.Test([]float64{0.9, 0.1}, []int{0, 5})
	if !r.Exact {
		t.Fatal("should be exact")
	}
	if math.Abs(r.P-1e-5) > 1e-12 {
		t.Fatalf("P = %v, want 1e-5", r.P)
	}
}

func TestModalOutcomeNotSignificant(t *testing.T) {
	// The most likely outcome has Pr_s = 1: every outcome is at most as
	// likely as it.
	m := Multinomial{}
	r := m.Test([]float64{0.5, 0.5}, []int{2, 2})
	if math.Abs(r.P-1) > 1e-9 {
		t.Fatalf("P = %v, want 1", r.P)
	}
}

func TestImpossibleObservation(t *testing.T) {
	// Context never saw category 1; query has it: Pr_s = 0, maximally
	// notable (the "Merkel has a PhD" case).
	m := Multinomial{}
	r := m.Test([]float64{1, 0}, []int{0, 1})
	if r.P != 0 {
		t.Fatalf("P = %v, want 0", r.P)
	}
	if !math.IsInf(r.LogProbX, -1) {
		t.Fatal("LogProbX should be -Inf")
	}
	if got := m.Score([]float64{1, 0}, []int{0, 1}); got != 1 {
		t.Fatalf("Score = %v, want 1", got)
	}
}

func TestEmptyObservation(t *testing.T) {
	m := Multinomial{}
	r := m.Test([]float64{0.5, 0.5}, []int{0, 0})
	if r.P != 1 {
		t.Fatalf("P = %v, want 1 for empty observation", r.P)
	}
	if m.Score([]float64{0.5, 0.5}, []int{0, 0}) != 0 {
		t.Fatal("empty observation should score 0")
	}
}

func TestScoreThreshold(t *testing.T) {
	m := Multinomial{}
	// P = 0.0625 > 0.05: not notable.
	if got := m.Score([]float64{0.5, 0.5}, []int{5, 0}); got != 0 {
		t.Fatalf("Score = %v, want 0 at P=0.0625", got)
	}
	// One more observation: P = 2/128 ≈ 0.0156 ≤ 0.05: notable.
	got := m.Score([]float64{0.5, 0.5}, []int{6, 0})
	if got <= 0.9 {
		t.Fatalf("Score = %v, want ≈ 1-2/128", got)
	}
}

func TestMonteCarloAgreesWithExact(t *testing.T) {
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	x := []int{1, 1, 4, 2}
	exact := Multinomial{}.Test(pi, x)
	if !exact.Exact {
		t.Fatal("reference should be exact")
	}
	mc := Multinomial{ExactLimit: 1, Samples: 200000, Seed: 7}.Test(pi, x)
	if mc.Exact {
		t.Fatal("forced Monte-Carlo still ran exact")
	}
	if math.Abs(mc.P-exact.P) > 0.01 {
		t.Fatalf("MC P = %v, exact P = %v", mc.P, exact.P)
	}
}

func TestMonteCarloDeterministicForSeed(t *testing.T) {
	pi := []float64{0.5, 0.5}
	x := []int{40, 10}
	m := Multinomial{ExactLimit: 1, Samples: 5000, Seed: 3}
	a := m.Test(pi, x)
	b := m.Test(pi, x)
	if a.P != b.P {
		t.Fatalf("same seed, different P: %v vs %v", a.P, b.P)
	}
}

func TestLargeNUsesMonteCarlo(t *testing.T) {
	pi := []float64{0.25, 0.25, 0.25, 0.25}
	x := []int{100, 100, 100, 100}
	r := Multinomial{}.Test(pi, x)
	if r.Exact {
		t.Fatal("400 observations over 4 categories should trigger Monte-Carlo")
	}
	if r.P < 0.5 {
		t.Fatalf("perfectly proportional observation should not be rejected: P = %v", r.P)
	}
}

func TestNormalization(t *testing.T) {
	// Unnormalized context counts must behave like their normalized form.
	a := Multinomial{}.Test([]float64{30, 10}, []int{0, 5})
	b := Multinomial{}.Test([]float64{0.75, 0.25}, []int{0, 5})
	if math.Abs(a.P-b.P) > 1e-12 {
		t.Fatalf("normalization changed result: %v vs %v", a.P, b.P)
	}
}

// Property: P is always within [0, 1], and the modal outcome always gets a
// higher P than an extreme tail outcome.
func TestPValueBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		pi := make([]float64, k)
		for i := range pi {
			pi[i] = rng.Float64() + 0.01
		}
		n := 1 + rng.Intn(8)
		x := make([]int, k)
		for j := 0; j < n; j++ {
			x[rng.Intn(k)]++
		}
		r := Multinomial{}.Test(pi, x)
		return r.P >= 0 && r.P <= 1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: enumerating with the modal outcome as reference sums all
// outcome probabilities, which must be ~1.
func TestExactEnumerationSumsToOne(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		pi := make([]float64, k)
		for i := range pi {
			pi[i] = rng.Float64() + 0.05
		}
		n := 1 + rng.Intn(6)
		// Find the modal outcome by brute force over compositions.
		p := normalizeProbs(pi, k)
		best := make([]int, k)
		bestLP := math.Inf(-1)
		var rec func(cat, rem int, cur []int)
		rec = func(cat, rem int, cur []int) {
			if cat == k-1 {
				cur[cat] = rem
				if lp := logMultinomialProb(p, cur, n); lp > bestLP {
					bestLP = lp
					copy(best, cur)
				}
				return
			}
			for c := 0; c <= rem; c++ {
				cur[cat] = c
				rec(cat+1, rem-c, cur)
			}
		}
		rec(0, n, make([]int, k))
		r := Multinomial{}.Test(pi, best)
		return r.Exact && math.Abs(r.P-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func TestCompositionsUpTo(t *testing.T) {
	cases := []struct {
		n, k, want int
	}{
		{5, 2, 6},  // C(6,1)
		{5, 3, 21}, // C(7,2)
		{4, 4, 35}, // C(7,3)
		{10, 1, 1}, // single category
		{0, 3, 1},  // empty observation
		{3, 2, 4},  // C(4,1)
	}
	for _, c := range cases {
		got, ok := compositionsUpTo(c.n, c.k, 1000000)
		if !ok || got != c.want {
			t.Fatalf("compositions(%d,%d) = %d/%v, want %d", c.n, c.k, got, ok, c.want)
		}
	}
	// Cap kicks in for huge counts.
	got, _ := compositionsUpTo(1000, 50, 100)
	if got <= 100 {
		t.Fatalf("capped compositions = %d, want > limit", got)
	}
}

func TestNormalizeHelpers(t *testing.T) {
	n := Normalize([]float64{2, 0, 2})
	if n[0] != 0.5 || n[1] != 0 || n[2] != 0.5 {
		t.Fatalf("Normalize = %v", n)
	}
	if out := Normalize([]float64{0, 0}); out[0] != 0 || out[1] != 0 {
		t.Fatalf("Normalize zeros = %v", out)
	}
	ni := NormalizeInts([]int{1, 3})
	if ni[0] != 0.25 || ni[1] != 0.75 {
		t.Fatalf("NormalizeInts = %v", ni)
	}
	// Negative counts are ignored rather than poisoning the sum.
	neg := Normalize([]float64{-5, 5})
	if neg[0] != 0 || neg[1] != 1 {
		t.Fatalf("Normalize negative = %v", neg)
	}
}

func BenchmarkExactTest(b *testing.B) {
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	x := []int{2, 1, 1, 4}
	m := Multinomial{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Test(pi, x)
	}
}

func BenchmarkMonteCarloTest(b *testing.B) {
	pi := []float64{0.4, 0.3, 0.2, 0.1}
	x := []int{20, 10, 10, 40}
	m := Multinomial{Samples: 5000}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.Test(pi, x)
	}
}
