package stats

import "math"

// The paper (Section 3.2) discusses and rejects several distribution
// comparison measures before settling on the multinomial test. They are
// implemented here as scoring baselines for the Section 4.2 metrics
// comparison and the ablation benches:
//
//   - KL divergence "cannot be used" unsmoothed because the query
//     distribution is full of zeros; we add-ε smooth it to make it
//     runnable, which is the standard workaround.
//   - EMD "requires the definition of distance between values, which is
//     not defined for Inst"; for cardinality histograms the natural unit
//     ground distance applies, and for instance histograms we substitute
//     total variation (EMD under the discrete 0/1 metric).
//   - The χ² and z tests "require either a Gaussian distribution or a
//     minimum size of the sample"; they are provided for completeness.

// KLDivergence returns D(P‖Q) = Σ p_i·ln(p_i/q_i) between two count
// vectors, after add-ε smoothing (ε = 1e-9 of each distribution's mass)
// and normalization. Returns 0 for empty inputs.
func KLDivergence(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	if n == 0 {
		return 0
	}
	const eps = 1e-9
	ps := smooth(p, n, eps)
	qs := smooth(q, n, eps)
	d := 0.0
	for i := 0; i < n; i++ {
		d += ps[i] * math.Log(ps[i]/qs[i])
	}
	if d < 0 {
		d = 0 // numerical guard; KL is non-negative
	}
	return d
}

// smooth normalizes counts to a probability vector of length n with add-ε
// smoothing so every entry is strictly positive.
func smooth(counts []float64, n int, eps float64) []float64 {
	out := make([]float64, n)
	sum := 0.0
	for i := 0; i < n; i++ {
		c := eps
		if i < len(counts) && counts[i] > 0 {
			c += counts[i]
		}
		out[i] = c
		sum += c
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// EMDOrdered returns the Earth Mover's Distance between two count vectors
// interpreted as histograms over the ordered domain 0..n-1 with unit
// spacing: Σ_i |CDF_P(i) − CDF_Q(i)| after normalization.
func EMDOrdered(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	if n == 0 {
		return 0
	}
	pn := Normalize(pad(p, n))
	qn := Normalize(pad(q, n))
	d, cp, cq := 0.0, 0.0, 0.0
	for i := 0; i < n; i++ {
		cp += pn[i]
		cq += qn[i]
		d += math.Abs(cp - cq)
	}
	return d
}

// TotalVariation returns ½·Σ|p_i − q_i| after normalization — the EMD
// under the discrete metric, used for unordered instance distributions.
func TotalVariation(p, q []float64) float64 {
	n := len(p)
	if len(q) > n {
		n = len(q)
	}
	if n == 0 {
		return 0
	}
	pn := Normalize(pad(p, n))
	qn := Normalize(pad(q, n))
	d := 0.0
	for i := 0; i < n; i++ {
		d += math.Abs(pn[i] - qn[i])
	}
	return d / 2
}

func pad(v []float64, n int) []float64 {
	if len(v) >= n {
		return v
	}
	out := make([]float64, n)
	copy(out, v)
	return out
}

// ChiSquare performs Pearson's χ² goodness-of-fit test of observation x
// against expected proportions pi, returning the p-value. Categories with
// zero expectation and zero observation are dropped; a positive
// observation in a zero-expectation category yields p = 0.
func ChiSquare(pi []float64, x []int) float64 {
	n := 0
	for _, xi := range x {
		n += xi
	}
	if n == 0 {
		return 1
	}
	p := normalizeProbs(pi, len(x))
	stat := 0.0
	df := -1 // k−1 degrees of freedom accumulated per retained category
	for i, xi := range x {
		e := float64(n) * p[i]
		if e == 0 {
			if xi > 0 {
				return 0
			}
			continue
		}
		d := float64(xi) - e
		stat += d * d / e
		df++
	}
	if df <= 0 {
		return 1
	}
	return chiSquareSurvival(stat, float64(df))
}

// chiSquareSurvival returns P(X ≥ stat) for X ~ χ²(df): the regularized
// upper incomplete gamma Q(df/2, stat/2).
func chiSquareSurvival(stat, df float64) float64 {
	if stat <= 0 {
		return 1
	}
	return upperIncompleteGammaReg(df/2, stat/2)
}

// upperIncompleteGammaReg computes Q(a, x) = Γ(a, x)/Γ(a) via the series
// for x < a+1 and the continued fraction otherwise (Numerical Recipes
// style, stdlib-only).
func upperIncompleteGammaReg(a, x float64) float64 {
	if x < 0 || a <= 0 {
		return math.NaN()
	}
	if x == 0 {
		return 1
	}
	if x < a+1 {
		return 1 - lowerSeries(a, x)
	}
	return upperContinuedFraction(a, x)
}

// lowerSeries computes P(a, x) by series expansion.
func lowerSeries(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	ap := a
	sum := 1 / a
	del := sum
	for i := 0; i < 500; i++ {
		ap++
		del *= x / ap
		sum += del
		if math.Abs(del) < math.Abs(sum)*1e-15 {
			break
		}
	}
	return sum * math.Exp(-x+a*math.Log(x)-lg)
}

// upperContinuedFraction computes Q(a, x) by Lentz's continued fraction.
func upperContinuedFraction(a, x float64) float64 {
	lg, _ := math.Lgamma(a)
	const tiny = 1e-300
	b := x + 1 - a
	c := 1 / tiny
	d := 1 / b
	h := d
	for i := 1; i < 500; i++ {
		an := -float64(i) * (float64(i) - a)
		b += 2
		d = an*d + b
		if math.Abs(d) < tiny {
			d = tiny
		}
		c = b + an/c
		if math.Abs(c) < tiny {
			c = tiny
		}
		d = 1 / d
		del := d * c
		h *= del
		if math.Abs(del-1) < 1e-15 {
			break
		}
	}
	return math.Exp(-x+a*math.Log(x)-lg) * h
}

// ZTestTwoSample performs a two-sample z-test on the means of two samples
// given their counts as histograms over values 0..len-1 (the cardinality
// distributions), returning the two-sided p-value. Degenerate inputs
// (empty or zero-variance on both sides) return 1.
func ZTestTwoSample(p, q []float64) float64 {
	mp, vp, np := histMoments(p)
	mq, vq, nq := histMoments(q)
	if np == 0 || nq == 0 {
		return 1
	}
	se := math.Sqrt(vp/np + vq/nq)
	if se == 0 {
		if mp == mq {
			return 1
		}
		return 0
	}
	z := math.Abs(mp-mq) / se
	return math.Erfc(z / math.Sqrt2)
}

// histMoments returns the mean, variance, and total count of a histogram
// whose bin i holds the count of value i.
func histMoments(h []float64) (mean, variance, n float64) {
	for i, c := range h {
		if c > 0 {
			n += c
			mean += c * float64(i)
		}
	}
	if n == 0 {
		return 0, 0, 0
	}
	mean /= n
	for i, c := range h {
		if c > 0 {
			d := float64(i) - mean
			variance += c * d * d
		}
	}
	variance /= n
	return mean, variance, n
}
