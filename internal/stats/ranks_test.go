package stats

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRankSwitchDistanceIdentical(t *testing.T) {
	r := []string{"a", "b", "c"}
	if d := RankSwitchDistance(r, r); d != 0 {
		t.Fatalf("distance(identical) = %d", d)
	}
}

func TestRankSwitchDistanceAdjacentSwap(t *testing.T) {
	a := []string{"a", "b", "c"}
	b := []string{"b", "a", "c"}
	if d := RankSwitchDistance(a, b); d != 1 {
		t.Fatalf("distance(adjacent swap) = %d, want 1", d)
	}
}

func TestRankSwitchDistanceReversal(t *testing.T) {
	a := []string{"a", "b", "c", "d"}
	b := []string{"d", "c", "b", "a"}
	// Full reversal of n items needs n(n-1)/2 switches.
	if d := RankSwitchDistance(a, b); d != 6 {
		t.Fatalf("distance(reversal) = %d, want 6", d)
	}
}

func TestRankSwitchDistanceIgnoresUnknownItems(t *testing.T) {
	a := []string{"a", "x", "b", "c"}
	b := []string{"a", "b", "y", "c"}
	if d := RankSwitchDistance(a, b); d != 0 {
		t.Fatalf("distance with extraneous items = %d, want 0", d)
	}
}

func TestRankSwitchDistanceSymmetric(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(12)
		items := make([]string, n)
		for i := range items {
			items[i] = string(rune('a' + i))
		}
		a := append([]string(nil), items...)
		b := append([]string(nil), items...)
		rng.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		rng.Shuffle(n, func(i, j int) { b[i], b[j] = b[j], b[i] })
		return RankSwitchDistance(a, b) == RankSwitchDistance(b, a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: distance matches the O(n²) brute-force inversion count.
func TestRankSwitchDistanceBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(20)
		items := make([]string, n)
		for i := range items {
			items[i] = string(rune('a' + i))
		}
		a := append([]string(nil), items...)
		b := append([]string(nil), items...)
		rng.Shuffle(n, func(i, j int) { a[i], a[j] = a[j], a[i] })
		rng.Shuffle(n, func(i, j int) { b[i], b[j] = b[j], b[i] })

		pos := make(map[string]int)
		for i, s := range b {
			pos[s] = i
		}
		brute := 0
		for i := 0; i < n; i++ {
			for j := i + 1; j < n; j++ {
				if pos[a[i]] > pos[a[j]] {
					brute++
				}
			}
		}
		return RankSwitchDistance(a, b) == brute
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestRankByScore(t *testing.T) {
	got := RankByScore(map[string]float64{"low": 0.1, "high": 0.9, "mid": 0.5})
	want := []string{"high", "mid", "low"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("RankByScore = %v, want %v", got, want)
		}
	}
	// Ties break by name for determinism.
	got = RankByScore(map[string]float64{"b": 0.5, "a": 0.5})
	if got[0] != "a" || got[1] != "b" {
		t.Fatalf("tie break = %v", got)
	}
}

func TestRankSwitchDistanceEmpty(t *testing.T) {
	if d := RankSwitchDistance(nil, nil); d != 0 {
		t.Fatalf("distance(nil,nil) = %d", d)
	}
	if d := RankSwitchDistance([]string{"a"}, []string{"a"}); d != 0 {
		t.Fatalf("distance singleton = %d", d)
	}
}
