package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// TestEmptyPiNonzeroObservation is the regression test for the empty-π
// bug: a nonzero observation under an empty (or all-zero) distribution is
// impossible and must report maximal notability, consistent with the
// impossible-category branch — not P = 1 ("nothing to reject").
func TestEmptyPiNonzeroObservation(t *testing.T) {
	m := Multinomial{}
	for name, pi := range map[string][]float64{
		"empty":    {},
		"all-zero": {0, 0, 0},
	} {
		r := m.Test(pi, []int{0, 2, 1})
		if r.P != 0 {
			t.Fatalf("%s π: P = %v, want 0", name, r.P)
		}
		if !math.IsInf(r.LogProbX, -1) {
			t.Fatalf("%s π: LogProbX = %v, want -Inf", name, r.LogProbX)
		}
		if got := m.Score(pi, []int{0, 2, 1}); got != 1 {
			t.Fatalf("%s π: Score = %v, want 1", name, got)
		}
	}
	// The truly trivial case is unchanged: nothing observed, nothing to
	// reject — even under an empty π.
	if r := m.Test(nil, []int{0, 0}); r.P != 1 || r.LogProbX != 0 {
		t.Fatalf("empty observation: %+v, want P=1 LogProbX=0", r)
	}
}

// TestCompositionsOverflowHonest is the regression test for the
// compositionsUpTo ok-flag: the doc promises ok == false when the count
// blows past the cap, and the int conversion must never wrap for huge
// limits.
func TestCompositionsOverflowHonest(t *testing.T) {
	if got, ok := compositionsUpTo(1000, 50, 100); ok || got <= 100 {
		t.Fatalf("capped compositions = %d/%v, want sentinel > limit with ok=false", got, ok)
	}
	// A limit near MaxInt used to feed a float64 far above MaxInt into
	// int(res + 0.5), which wraps negative; it must take the sentinel path.
	got, ok := compositionsUpTo(10000, 500, math.MaxInt-2)
	if ok {
		t.Fatal("astronomically many compositions reported ok=true")
	}
	if got <= 0 {
		t.Fatalf("compositions wrapped negative: %d", got)
	}
	// Exact values still come back ok.
	if got, ok := compositionsUpTo(5, 3, 1000); !ok || got != 21 {
		t.Fatalf("compositions(5,3) = %d/%v, want 21/true", got, ok)
	}
}

// TestNormalizeProbsLengthMismatch pins the silent-reshape semantics: the
// observation length is authoritative, extra π categories are dropped and
// their mass renormalized away, missing ones become zero-probability.
func TestNormalizeProbsLengthMismatch(t *testing.T) {
	// π longer than x: the third category is dropped, survivors renormalize.
	p := normalizeProbs([]float64{0.25, 0.25, 0.5}, 2)
	if len(p) != 2 || math.Abs(p[0]-0.5) > 1e-15 || math.Abs(p[1]-0.5) > 1e-15 {
		t.Fatalf("truncating normalizeProbs = %v, want [0.5 0.5]", p)
	}
	// π shorter than x: the padded category has probability zero, so
	// observing it is impossible.
	p = normalizeProbs([]float64{1, 1}, 3)
	if len(p) != 3 || p[2] != 0 || math.Abs(p[0]-0.5) > 1e-15 {
		t.Fatalf("padding normalizeProbs = %v, want [0.5 0.5 0]", p)
	}
	r := Multinomial{}.Test([]float64{1, 1}, []int{0, 0, 3})
	if r.P != 0 || !math.IsInf(r.LogProbX, -1) {
		t.Fatalf("observing the padded category should be impossible: %+v", r)
	}
	// Dropped π mass changes the test: the same observation under the
	// truncated π must match the explicitly truncated-and-renormalized π.
	long := Multinomial{}.Test([]float64{0.2, 0.3, 0.5}, []int{3, 1})
	short := Multinomial{}.Test([]float64{0.4, 0.6}, []int{3, 1})
	if math.Abs(long.P-short.P) > 1e-12 {
		t.Fatalf("truncated π diverges from its renormalized form: %v vs %v", long.P, short.P)
	}
}

// TestScratchReuseMatchesFresh: a reused Scratch across many
// differently-shaped tests must be invisible in the results.
func TestScratchReuseMatchesFresh(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	var s Scratch
	for trial := 0; trial < 50; trial++ {
		k := 1 + rng.Intn(5)
		pi := make([]float64, k)
		for i := range pi {
			pi[i] = rng.Float64()
		}
		x := make([]int, k)
		n := rng.Intn(8)
		for j := 0; j < n; j++ {
			x[rng.Intn(k)]++
		}
		m := Multinomial{ExactLimit: 1 + rng.Intn(100), Samples: 500, Seed: 9}
		fresh := m.Test(pi, x)
		reused := m.TestScratch(pi, x, &s)
		if fresh != reused {
			t.Fatalf("trial %d: scratch reuse changed the result: %+v vs %+v", trial, fresh, reused)
		}
	}
}

// TestExactMonteCarloBoundaryProperty: nudging ExactLimit across the
// composition count of a fixed test flips exact enumeration to
// Monte-Carlo without moving P materially — the two regimes must agree
// at the switchover, not just asymptotically.
func TestExactMonteCarloBoundaryProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		pi := make([]float64, k)
		for i := range pi {
			pi[i] = rng.Float64() + 0.1
		}
		n := 3 + rng.Intn(6)
		x := make([]int, k)
		for j := 0; j < n; j++ {
			x[rng.Intn(k)]++
		}
		comps, ok := compositionsUpTo(n, k, 1<<30)
		if !ok {
			return true // can't sit exactly on the boundary
		}
		exact := Multinomial{ExactLimit: comps, Seed: seed}.Test(pi, x)
		mc := Multinomial{ExactLimit: comps - 1, Samples: 60000, Seed: seed}.Test(pi, x)
		if !exact.Exact || mc.Exact {
			return false
		}
		// MC error at 60k samples stays well inside 0.02 for these sizes.
		return math.Abs(exact.P-mc.P) < 0.02
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
