package stats

import (
	"math"
	"math/rand"
	"testing"
)

// This file pins the optimized multinomial test (cached per-category logs,
// ln-factorial table, guide-table CDF search) to the straightforward
// implementation it replaced. The reference below is the pre-optimization
// code verbatim; the optimized paths must reproduce it bit for bit — every
// float operation happens in the same order on the same values, only their
// inputs are memoized.

// refTest is the pre-optimization TestScratch.
func (m Multinomial) refTest(pi []float64, x []int) Result {
	m = m.withDefaults()
	n := 0
	for _, xi := range x {
		n += xi
	}
	if n == 0 {
		return Result{P: 1, Exact: true, LogProbX: 0}
	}
	p := normalizeProbs(pi, len(x))

	logX := refLogMultinomialProb(p, x, n)
	if math.IsInf(logX, -1) {
		return Result{P: 0, Exact: true, LogProbX: logX}
	}

	if comps, ok := compositionsUpTo(n, len(x), m.ExactLimit); ok && comps <= m.ExactLimit {
		return Result{P: m.refExact(p, logX, n, len(x)), Exact: true, LogProbX: logX}
	}
	return Result{P: m.refMonteCarlo(p, logX, n), Exact: false, LogProbX: logX}
}

func (m Multinomial) refExact(p []float64, logX float64, n, k int) float64 {
	logN := refLgammaInt(n + 1)
	total := 0.0
	comp := make([]int, k)
	var rec func(cat, remaining int, logAcc float64)
	rec = func(cat, remaining int, logAcc float64) {
		if cat == k-1 {
			comp[cat] = remaining
			lp := logAcc + refTermLog(p[cat], remaining)
			if math.IsInf(lp, -1) {
				return
			}
			lp += logN
			if lp <= logX+logProbTolerance {
				total += math.Exp(lp)
			}
			return
		}
		for c := 0; c <= remaining; c++ {
			comp[cat] = c
			lt := refTermLog(p[cat], c)
			if math.IsInf(lt, -1) {
				continue
			}
			rec(cat+1, remaining-c, logAcc+lt)
		}
	}
	rec(0, n, 0)
	if total > 1 {
		total = 1
	}
	return total
}

func (m Multinomial) refMonteCarlo(p []float64, logX float64, n int) float64 {
	rng := rand.New(rand.NewSource(m.Seed))
	cdf := make([]float64, len(p))
	acc := 0.0
	for i, pi := range p {
		acc += pi
		cdf[i] = acc
	}
	hits := 0
	counts := make([]int, len(p))
	for s := 0; s < m.Samples; s++ {
		for i := range counts {
			counts[i] = 0
		}
		for j := 0; j < n; j++ {
			counts[refSearchCDF(cdf, rng.Float64()*acc)]++
		}
		if refLogMultinomialProb(p, counts, n) <= logX+logProbTolerance {
			hits++
		}
	}
	return float64(hits+1) / float64(m.Samples+1)
}

func refSearchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

func refLogMultinomialProb(p []float64, x []int, n int) float64 {
	lp := refLgammaInt(n + 1)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		t := refTermLog(pIndex(p, i), xi)
		if math.IsInf(t, -1) {
			return math.Inf(-1)
		}
		lp += t
	}
	return lp
}

func refTermLog(p float64, c int) float64 {
	if c == 0 {
		return 0
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	return float64(c)*math.Log(p) - refLgammaInt(c+1)
}

func refLgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// TestOptimizedMatchesReferenceBitwise drives randomized observations
// through both implementations, covering the exact regime, the Monte-Carlo
// regime, zero-probability categories, impossible observations, and
// observation vectors longer than π. Equality is exact — ==, not a
// tolerance.
func TestOptimizedMatchesReferenceBitwise(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(12)
		pi := make([]float64, k)
		for i := range pi {
			if rng.Intn(5) == 0 {
				pi[i] = 0 // zero-probability category
			} else {
				pi[i] = rng.Float64()
			}
		}
		x := make([]int, k)
		n := rng.Intn(40)
		for j := 0; j < n; j++ {
			x[rng.Intn(k)]++
		}
		m := Multinomial{Seed: int64(trial)}
		if trial%3 == 0 {
			m.ExactLimit = 1 // force Monte-Carlo
			m.Samples = 500
		}
		got := m.Test(pi, x)
		want := m.refTest(pi, x)
		if got != want {
			t.Fatalf("trial %d (k=%d n=%d): optimized %+v != reference %+v", trial, k, n, got, want)
		}
	}
}

// TestNegativeBudgetsUseDefaults: negative Samples/ExactLimit (reachable
// through the facade's TestSamples/TestExactLimit options) must select
// the defaults rather than run a zero-sample Monte-Carlo estimate, whose
// +1-corrected p-value divides by zero.
func TestNegativeBudgetsUseDefaults(t *testing.T) {
	pi := []float64{0.5, 0.3, 0.2}
	x := []int{20, 1, 1}
	want := Multinomial{Seed: 3}.Test(pi, x)
	got := Multinomial{Seed: 3, Samples: -1, ExactLimit: -5}.Test(pi, x)
	if got != want {
		t.Fatalf("negative budgets: %+v, want defaults %+v", got, want)
	}
	if math.IsInf(got.P, 0) || got.P < 0 || got.P > 1 {
		t.Fatalf("P = %v out of range", got.P)
	}
}

// TestOptimizedMatchesReferenceLargeDraws exercises the guide-table search
// with heavier draw counts and more categories, Monte-Carlo only.
func TestOptimizedMatchesReferenceLargeDraws(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 10; trial++ {
		k := 20 + rng.Intn(200)
		pi := make([]float64, k)
		for i := range pi {
			pi[i] = rng.ExpFloat64()
		}
		x := make([]int, k)
		for j := 0; j < 60+rng.Intn(100); j++ {
			x[rng.Intn(k)]++
		}
		m := Multinomial{Seed: int64(trial), ExactLimit: 1, Samples: 300}
		got := m.Test(pi, x)
		want := m.refTest(pi, x)
		if got != want {
			t.Fatalf("trial %d (k=%d): optimized %+v != reference %+v", trial, k, got, want)
		}
	}
}
