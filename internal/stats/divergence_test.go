package stats

import (
	"math"
	"testing"
	"testing/quick"
)

func TestKLIdenticalNearZero(t *testing.T) {
	p := []float64{3, 1, 4}
	if d := KLDivergence(p, p); d > 1e-6 {
		t.Fatalf("KL(p,p) = %v, want ~0", d)
	}
}

func TestKLDifferentPositive(t *testing.T) {
	d := KLDivergence([]float64{10, 0}, []float64{0, 10})
	if d <= 1 {
		t.Fatalf("KL of disjoint distributions = %v, want large", d)
	}
}

func TestKLHandlesZeroVectors(t *testing.T) {
	if d := KLDivergence(nil, nil); d != 0 {
		t.Fatalf("KL(nil,nil) = %v", d)
	}
	if d := KLDivergence([]float64{1}, nil); math.IsNaN(d) || math.IsInf(d, 0) {
		t.Fatalf("KL with empty q = %v", d)
	}
}

// Property: smoothed KL is non-negative and finite.
func TestKLNonNegativeProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		p := make([]float64, len(a))
		for i, v := range a {
			p[i] = float64(v)
		}
		q := make([]float64, len(b))
		for i, v := range b {
			q[i] = float64(v)
		}
		d := KLDivergence(p, q)
		return d >= 0 && !math.IsInf(d, 0) && !math.IsNaN(d)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestEMDOrderedShift(t *testing.T) {
	// All mass moves one bin: EMD = 1.
	if d := EMDOrdered([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("EMD = %v, want 1", d)
	}
	// Two bins away: EMD = 2.
	if d := EMDOrdered([]float64{1, 0, 0}, []float64{0, 0, 1}); math.Abs(d-2) > 1e-12 {
		t.Fatalf("EMD = %v, want 2", d)
	}
}

func TestEMDOrderedIdentical(t *testing.T) {
	if d := EMDOrdered([]float64{1, 2, 3}, []float64{1, 2, 3}); d != 0 {
		t.Fatalf("EMD identical = %v", d)
	}
}

func TestEMDUnequalLengths(t *testing.T) {
	if d := EMDOrdered([]float64{1}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("EMD padded = %v, want 1", d)
	}
}

func TestTotalVariation(t *testing.T) {
	if d := TotalVariation([]float64{1, 0}, []float64{0, 1}); math.Abs(d-1) > 1e-12 {
		t.Fatalf("TV disjoint = %v, want 1", d)
	}
	if d := TotalVariation([]float64{1, 1}, []float64{1, 1}); d != 0 {
		t.Fatalf("TV identical = %v", d)
	}
	if d := TotalVariation([]float64{3, 1}, []float64{1, 3}); math.Abs(d-0.5) > 1e-12 {
		t.Fatalf("TV = %v, want 0.5", d)
	}
}

// Property: TV is symmetric and within [0, 1].
func TestTVBoundsProperty(t *testing.T) {
	f := func(a, b []uint8) bool {
		p := make([]float64, len(a))
		for i, v := range a {
			p[i] = float64(v)
		}
		q := make([]float64, len(b))
		for i, v := range b {
			q[i] = float64(v)
		}
		d1 := TotalVariation(p, q)
		d2 := TotalVariation(q, p)
		return d1 >= 0 && d1 <= 1+1e-12 && math.Abs(d1-d2) < 1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestChiSquareKnownCritical(t *testing.T) {
	// χ²(1) critical value at α=0.05 is 3.841; survival there ≈ 0.05.
	got := chiSquareSurvival(3.841, 1)
	if math.Abs(got-0.05) > 0.001 {
		t.Fatalf("χ² survival(3.841, 1) = %v, want ≈0.05", got)
	}
	// χ²(5) critical value at α=0.05 is 11.070.
	got = chiSquareSurvival(11.070, 5)
	if math.Abs(got-0.05) > 0.001 {
		t.Fatalf("χ² survival(11.070, 5) = %v, want ≈0.05", got)
	}
}

func TestChiSquareGoodnessOfFit(t *testing.T) {
	// Perfectly proportional observation: statistic 0, p = 1.
	if p := ChiSquare([]float64{0.5, 0.5}, []int{50, 50}); math.Abs(p-1) > 1e-9 {
		t.Fatalf("balanced χ² p = %v, want 1", p)
	}
	// Heavily skewed observation: tiny p.
	if p := ChiSquare([]float64{0.5, 0.5}, []int{100, 0}); p > 1e-6 {
		t.Fatalf("skewed χ² p = %v, want ~0", p)
	}
	// Observation in zero-probability category: p = 0.
	if p := ChiSquare([]float64{1, 0}, []int{5, 1}); p != 0 {
		t.Fatalf("impossible χ² p = %v, want 0", p)
	}
	// Empty observation: p = 1.
	if p := ChiSquare([]float64{1, 1}, []int{0, 0}); p != 1 {
		t.Fatalf("empty χ² p = %v, want 1", p)
	}
}

func TestZTest(t *testing.T) {
	// Same histograms: p = 1-ish (identical means).
	same := []float64{0, 10, 10}
	if p := ZTestTwoSample(same, same); p < 0.99 {
		t.Fatalf("identical z-test p = %v", p)
	}
	// Very different means with tight spread: p ~ 0.
	a := []float64{100, 0, 0, 0, 0, 0}
	b := []float64{0, 0, 0, 0, 0, 100}
	if p := ZTestTwoSample(a, b); p > 1e-6 {
		t.Fatalf("distinct z-test p = %v", p)
	}
	// Degenerate inputs.
	if p := ZTestTwoSample(nil, a); p != 1 {
		t.Fatalf("empty z-test p = %v", p)
	}
}

func TestHistMoments(t *testing.T) {
	mean, variance, n := histMoments([]float64{0, 4, 0, 4})
	if n != 8 {
		t.Fatalf("n = %v", n)
	}
	if mean != 2 {
		t.Fatalf("mean = %v, want 2", mean)
	}
	if variance != 1 {
		t.Fatalf("variance = %v, want 1", variance)
	}
}
