package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// Property: Monte-Carlo estimates track the exact test within a loose
// tolerance across random small problems.
func TestMonteCarloTracksExactProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		k := 2 + rng.Intn(3)
		pi := make([]float64, k)
		for i := range pi {
			pi[i] = rng.Float64() + 0.05
		}
		n := 2 + rng.Intn(6)
		x := make([]int, k)
		for j := 0; j < n; j++ {
			x[rng.Intn(k)]++
		}
		exact := Multinomial{}.Test(pi, x)
		if !exact.Exact {
			return true // out of exact range; nothing to compare
		}
		mc := Multinomial{ExactLimit: 1, Samples: 30000, Seed: seed}.Test(pi, x)
		return math.Abs(mc.P-exact.P) < 0.03
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: adding an observation to the most extreme category never
// increases the significance probability (more extreme evidence is never
// less significant) for binomial cases.
func TestMonotoneExtremityProperty(t *testing.T) {
	m := Multinomial{}
	pi := []float64{0.7, 0.3}
	prev := 1.1
	for extra := 0; extra <= 8; extra++ {
		r := m.Test(pi, []int{0, 2 + extra})
		if r.P > prev+1e-12 {
			t.Fatalf("P increased from %v to %v at extra=%d", prev, r.P, extra)
		}
		prev = r.P
	}
}

// The Monte-Carlo +1 correction keeps estimates strictly positive for
// possible outcomes.
func TestMonteCarloNeverZeroForPossible(t *testing.T) {
	m := Multinomial{ExactLimit: 1, Samples: 500, Seed: 9}
	r := m.Test([]float64{0.5, 0.5}, []int{30, 0})
	if r.P <= 0 {
		t.Fatalf("MC P = %v, want > 0 for a possible outcome", r.P)
	}
}

// Exhaustive check of searchCDF against linear scan.
func TestSearchCDF(t *testing.T) {
	cdf := []float64{0.1, 0.4, 0.9, 1.0}
	for _, u := range []float64{0, 0.05, 0.1, 0.25, 0.4, 0.65, 0.95, 0.999} {
		got := searchCDF(cdf, u)
		want := len(cdf) - 1
		for i, c := range cdf {
			if c > u {
				want = i
				break
			}
		}
		if got != want {
			t.Fatalf("searchCDF(%v) = %d, want %d", u, got, want)
		}
	}
}

// logMultinomialProb agrees with a direct factorial computation on small
// inputs.
func TestLogProbAgainstDirect(t *testing.T) {
	p := []float64{0.5, 0.3, 0.2}
	x := []int{2, 1, 1}
	// 4!/(2!1!1!) * 0.5^2*0.3*0.2 = 12 * 0.015 = 0.18
	got := math.Exp(logMultinomialProb(p, x, 4))
	if math.Abs(got-0.18) > 1e-12 {
		t.Fatalf("prob = %v, want 0.18", got)
	}
}
