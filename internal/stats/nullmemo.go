// Null-distribution memoization for the Monte-Carlo multinomial test.
//
// The sampled statistic of one Monte-Carlo run — the sequence of sample
// log-probabilities drawn from Mult(n, π) under a fixed seed — depends
// only on (π, n, Samples, Seed), never on the observation being tested.
// The p-value is a pure function of that sequence: the count of samples
// whose log-probability falls at or below the observation's. Counting is
// order-independent, so storing the sequence SORTED loses nothing: the
// count becomes one binary search over the order statistics, and the
// result carries exactly the bits of the sampling loop it replaces.
//
// Entries are keyed by a 64-bit hash of π's IEEE-754 bits plus n,
// Samples, and Seed, and store π itself for bitwise verification on a
// hit — a hash collision is detected and treated as a miss, so the memo
// can never serve a wrong distribution.
package stats

import (
	"math"
	"sort"
	"strconv"

	"repro/internal/qcache"
)

// nullDist is one memoized null distribution: the normalized probability
// vector it was sampled from (for hit verification) and the sorted
// per-sample log-probabilities. Immutable once cached.
type nullDist struct {
	p   []float64
	lps []float64
}

// matches reports whether p is bitwise identical to the vector this
// distribution was sampled from.
func (nd *nullDist) matches(p []float64) bool {
	if len(p) != len(nd.p) {
		return false
	}
	for i := range p {
		if math.Float64bits(p[i]) != math.Float64bits(nd.p[i]) {
			return false
		}
	}
	return true
}

// footprint estimates the entry's resident bytes for the cache's byte
// accounting.
func (nd *nullDist) footprint(keyLen int) int64 {
	return 8*int64(len(nd.lps)+len(nd.p)) + int64(keyLen) + 64
}

// nullKey builds the memo key: the FNV-1a hash of π's bits plus every
// parameter that changes the drawn sequence.
func nullKey(p []float64, n, samples int, seed int64) string {
	var b []byte
	b = append(b, "mcnull|"...)
	b = strconv.AppendUint(b, qcache.HashFloats(p), 16)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(len(p)), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(n), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, int64(samples), 10)
	b = append(b, '|')
	b = strconv.AppendInt(b, seed, 10)
	return string(b)
}

// nullPValue reads the Monte-Carlo p-value off sorted sample
// log-probabilities: the hit count is the number of samples with
// lp <= threshold — the first index past the threshold — which is
// exactly what the sampling loop counts, so the +1-corrected estimate is
// bit-identical to fresh sampling.
func nullPValue(lps []float64, threshold float64, samples int) float64 {
	hits := sort.Search(len(lps), func(i int) bool { return lps[i] > threshold })
	return float64(hits+1) / float64(samples+1)
}
