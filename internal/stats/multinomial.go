// Package stats implements the statistical machinery of Section 3.2: the
// exact multinomial goodness-of-fit test (with Monte-Carlo approximation
// for large samples), the divergence baselines the paper compares against
// (Kullback–Leibler, Earth Mover's Distance, χ², z-test), and the rank
// distance used in the metrics comparison of Section 4.2.
package stats

import (
	"math"
	"math/rand"
)

// DefaultAlpha is the paper's significance level: a characteristic is
// notable when the test rejects equality with p ≤ 0.05.
const DefaultAlpha = 0.05

// Multinomial runs the exact multinomial test of Section 3.2.
//
// Given a multinomial distribution π (the normalized context distribution)
// and an observation x (the query counts, N = Σx), the significance
// probability is
//
//	Pr_s(X = x) = Σ_{y : Pr(y) ≤ Pr(x)} Pr(y)
//
// over all outcomes y with the same total N — the probability of drawing
// an outcome at most as likely as x. Small problems are enumerated
// exactly; larger ones fall back to Monte-Carlo sampling (as the paper's
// footnote prescribes).
type Multinomial struct {
	// Alpha is the rejection threshold. Default DefaultAlpha.
	Alpha float64
	// ExactLimit bounds the number of outcome compositions enumerated
	// exactly; beyond it Monte-Carlo is used. Default 200000.
	ExactLimit int
	// Samples is the Monte-Carlo sample count. Default 20000.
	Samples int
	// Seed makes Monte-Carlo runs deterministic.
	Seed int64
}

// Result reports a multinomial test outcome.
type Result struct {
	// P is the significance probability Pr_s.
	P float64
	// Exact reports whether exact enumeration (vs Monte-Carlo) was used.
	Exact bool
	// LogProbX is ln Pr(X = x) under π, -Inf when x is impossible.
	LogProbX float64
}

func (m Multinomial) withDefaults() Multinomial {
	if m.Alpha == 0 {
		m.Alpha = DefaultAlpha
	}
	if m.ExactLimit == 0 {
		m.ExactLimit = 200000
	}
	if m.Samples == 0 {
		m.Samples = 20000
	}
	return m
}

// logProbTolerance treats outcomes whose log-probabilities differ by less
// than this as equally likely, protecting the ≤ comparison from float
// rounding.
const logProbTolerance = 1e-9

// Test computes the significance probability of observation x under π.
// π must be non-negative; it is normalized internally. An all-zero x
// yields P = 1 (nothing observed, nothing to reject); a nonzero x under
// an empty or all-zero π is impossible and yields P = 0 like any other
// impossible observation.
func (m Multinomial) Test(pi []float64, x []int) Result {
	return m.TestScratch(pi, x, nil)
}

// Scratch holds the reusable buffers of one TestScratch caller — the
// normalized probability vector plus the enumeration and sampling state.
// The zero value is ready; buffers grow to the largest test seen and are
// reused across calls. A Scratch must not be shared between concurrent
// tests.
type Scratch struct {
	p      []float64
	comp   []int
	cdf    []float64
	counts []int
}

// grow returns buf resized to length k, reallocating only when capacity
// is insufficient. Contents are unspecified; callers overwrite fully.
func grow[T int | float64](buf []T, k int) []T {
	if cap(buf) < k {
		return make([]T, k)
	}
	return buf[:k]
}

// TestScratch is Test with caller-owned scratch buffers: a worker testing
// many labels in a row reuses one Scratch and allocates nothing on the
// steady path. s may be nil, which allocates freshly (equivalent to Test).
func (m Multinomial) TestScratch(pi []float64, x []int, s *Scratch) Result {
	m = m.withDefaults()
	if s == nil {
		s = &Scratch{}
	}
	n := 0
	for _, xi := range x {
		n += xi
	}
	if n == 0 {
		return Result{P: 1, Exact: true, LogProbX: 0}
	}
	// Note: len(pi) == 0 with a nonzero observation is NOT the trivial
	// case — every observed category is impossible under an empty
	// distribution, so normalizeProbs yields all zeros and the impossible
	// branch below reports P = 0, maximal notability.
	s.p = grow(s.p, len(x))
	p := normalizeProbsInto(s.p, pi)

	logX := logMultinomialProb(p, x, n)
	if math.IsInf(logX, -1) {
		// x contains a category the context deems impossible: no outcome
		// can be ≤ its probability except other impossible ones, which are
		// never drawn. Pr_s = 0 — maximal notability.
		return Result{P: 0, Exact: true, LogProbX: logX}
	}

	if comps, ok := compositionsUpTo(n, len(x), m.ExactLimit); ok && comps <= m.ExactLimit {
		return Result{P: m.exact(p, logX, n, len(x), s), Exact: true, LogProbX: logX}
	}
	return Result{P: m.monteCarlo(p, logX, n, s), Exact: false, LogProbX: logX}
}

// Score is the MT score of the paper: 1 − Pr_s when the test rejects at
// Alpha, and 0 otherwise (the characteristic is not notable).
func (m Multinomial) Score(pi []float64, x []int) float64 {
	m = m.withDefaults()
	r := m.Test(pi, x)
	if r.P <= m.Alpha {
		return 1 - r.P
	}
	return 0
}

// exact enumerates every composition of n into k parts, accumulating the
// probability of outcomes at most as likely as logX.
func (m Multinomial) exact(p []float64, logX float64, n, k int, s *Scratch) float64 {
	logN := lgammaInt(n + 1)
	total := 0.0
	s.comp = grow(s.comp, k)
	comp := s.comp
	var rec func(cat, remaining int, logAcc float64)
	rec = func(cat, remaining int, logAcc float64) {
		if cat == k-1 {
			comp[cat] = remaining
			lp := logAcc + termLog(p[cat], remaining)
			if math.IsInf(lp, -1) {
				return
			}
			lp += logN
			if lp <= logX+logProbTolerance {
				total += math.Exp(lp)
			}
			return
		}
		for c := 0; c <= remaining; c++ {
			comp[cat] = c
			lt := termLog(p[cat], c)
			if math.IsInf(lt, -1) {
				continue // impossible category count; all deeper outcomes have prob 0
			}
			rec(cat+1, remaining-c, logAcc+lt)
		}
	}
	rec(0, n, 0)
	if total > 1 {
		total = 1 // guard against accumulation drift
	}
	return total
}

// monteCarlo estimates Pr_s by sampling outcomes from Mult(n, p). The
// standard +1 correction keeps the estimate strictly positive, matching
// the convention that a Monte-Carlo p-value never claims impossibility.
func (m Multinomial) monteCarlo(p []float64, logX float64, n int, s *Scratch) float64 {
	rng := rand.New(rand.NewSource(m.Seed))
	s.cdf = grow(s.cdf, len(p))
	cdf := s.cdf
	acc := 0.0
	for i, pi := range p {
		acc += pi
		cdf[i] = acc
	}
	hits := 0
	s.counts = grow(s.counts, len(p))
	counts := s.counts
	for s := 0; s < m.Samples; s++ {
		for i := range counts {
			counts[i] = 0
		}
		for j := 0; j < n; j++ {
			counts[searchCDF(cdf, rng.Float64()*acc)]++
		}
		if logMultinomialProb(p, counts, n) <= logX+logProbTolerance {
			hits++
		}
	}
	return float64(hits+1) / float64(m.Samples+1)
}

// searchCDF returns the first index whose cumulative value exceeds u.
func searchCDF(cdf []float64, u float64) int {
	lo, hi := 0, len(cdf)-1
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// logMultinomialProb returns ln Pr(X = x) for X ~ Mult(n, p).
func logMultinomialProb(p []float64, x []int, n int) float64 {
	lp := lgammaInt(n + 1)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		t := termLog(pIndex(p, i), xi)
		if math.IsInf(t, -1) {
			return math.Inf(-1)
		}
		lp += t
	}
	return lp
}

// termLog returns ln(p^c / c!) with the 0^0 = 1 convention.
func termLog(p float64, c int) float64 {
	if c == 0 {
		return 0
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	return float64(c)*math.Log(p) - lgammaInt(c+1)
}

func pIndex(p []float64, i int) float64 {
	if i >= len(p) {
		return 0
	}
	return p[i]
}

// lgammaInt is ln(Γ(n)) for positive integer n, i.e. ln((n-1)!).
func lgammaInt(n int) float64 {
	v, _ := math.Lgamma(float64(n))
	return v
}

// normalizeProbs rescales pi to sum to 1 and pads/truncates to length k:
// categories of pi beyond k are dropped (their mass is renormalized away),
// and missing trailing categories become zero-probability. The length of
// the observation vector x is authoritative — see the pinning tests.
func normalizeProbs(pi []float64, k int) []float64 {
	return normalizeProbsInto(make([]float64, k), pi)
}

// normalizeProbsInto is normalizeProbs writing into out (whose length is
// the target k). Every entry of out is overwritten.
func normalizeProbsInto(out, pi []float64) []float64 {
	sum := 0.0
	for i := range out {
		out[i] = 0
		if i < len(pi) && pi[i] > 0 {
			out[i] = pi[i]
			sum += pi[i]
		}
	}
	if sum <= 0 {
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Normalize converts a count vector into a probability vector. An all-zero
// input yields an all-zero output.
func Normalize(counts []float64) []float64 {
	out := make([]float64, len(counts))
	sum := 0.0
	for _, c := range counts {
		if c > 0 {
			sum += c
		}
	}
	if sum <= 0 {
		return out
	}
	for i, c := range counts {
		if c > 0 {
			out[i] = c / sum
		}
	}
	return out
}

// NormalizeInts is Normalize for integer counts.
func NormalizeInts(counts []int) []float64 {
	f := make([]float64, len(counts))
	for i, c := range counts {
		f[i] = float64(c)
	}
	return Normalize(f)
}

// compositionsUpTo returns C(n+k-1, k-1) — the number of ways to split n
// observations over k categories — capped at limit. ok is false when the
// count exceeds the cap during computation or would overflow int; the
// count returned alongside is then limit + 1, a sentinel strictly above
// every admissible limit, so both return values consistently mean "too
// many to enumerate".
func compositionsUpTo(n, k, limit int) (int, bool) {
	// Multiplicative binomial evaluation with early exit.
	if k <= 1 {
		return 1, true
	}
	r := k - 1
	nn := n + k - 1
	if r > nn-r {
		r = nn - r
	}
	res := 1.0
	for i := 1; i <= r; i++ {
		res = res * float64(nn-r+i) / float64(i)
		if res > float64(limit)*2 {
			return limit + 1, false
		}
	}
	// float64(math.MaxInt) rounds up to 2^63, which does not fit back into
	// int — anything at or past it must take the sentinel path rather than
	// wrap negative in the conversion.
	if res+0.5 >= float64(math.MaxInt) {
		return limit + 1, false
	}
	return int(res + 0.5), true
}
