// Package stats implements the statistical machinery of Section 3.2: the
// exact multinomial goodness-of-fit test (with Monte-Carlo approximation
// for large samples), the divergence baselines the paper compares against
// (Kullback–Leibler, Earth Mover's Distance, χ², z-test), and the rank
// distance used in the metrics comparison of Section 4.2.
package stats

import (
	"math"
	"math/rand"
	"sort"

	"repro/internal/qcache"
)

// DefaultAlpha is the paper's significance level: a characteristic is
// notable when the test rejects equality with p ≤ 0.05.
const DefaultAlpha = 0.05

// Multinomial runs the exact multinomial test of Section 3.2.
//
// Given a multinomial distribution π (the normalized context distribution)
// and an observation x (the query counts, N = Σx), the significance
// probability is
//
//	Pr_s(X = x) = Σ_{y : Pr(y) ≤ Pr(x)} Pr(y)
//
// over all outcomes y with the same total N — the probability of drawing
// an outcome at most as likely as x. Small problems are enumerated
// exactly; larger ones fall back to Monte-Carlo sampling (as the paper's
// footnote prescribes).
type Multinomial struct {
	// Alpha is the rejection threshold. Default DefaultAlpha.
	Alpha float64
	// ExactLimit bounds the number of outcome compositions enumerated
	// exactly; beyond it Monte-Carlo is used. Default 200000.
	ExactLimit int
	// Samples is the Monte-Carlo sample count. Default 20000.
	Samples int
	// Seed makes Monte-Carlo runs deterministic.
	Seed int64
	// Nulls, when non-nil, memoizes Monte-Carlo null distributions per
	// (π, n, Samples, Seed) across tests (qcache.LayerNull): the sampled
	// statistics are observation-independent, so once one test has drawn
	// the rng sequence for a context distribution and total, every later
	// test against the same π and n — repeated contexts, the interactive
	// refinement workload — skips sampling outright and reads its p-value
	// off the stored order statistics. Memo hits are bitwise identical to
	// fresh sampling (see nullDist); the exact-enumeration path never
	// consults the memo.
	Nulls *qcache.Cache
}

// Result reports a multinomial test outcome.
type Result struct {
	// P is the significance probability Pr_s.
	P float64
	// Exact reports whether exact enumeration (vs Monte-Carlo) was used.
	Exact bool
	// LogProbX is ln Pr(X = x) under π, -Inf when x is impossible.
	LogProbX float64
}

func (m Multinomial) withDefaults() Multinomial {
	if m.Alpha == 0 {
		m.Alpha = DefaultAlpha
	}
	// Non-positive budgets select the defaults: a negative Samples would
	// otherwise run zero Monte-Carlo iterations and divide by zero in the
	// +1-corrected estimate.
	if m.ExactLimit <= 0 {
		m.ExactLimit = 200000
	}
	if m.Samples <= 0 {
		m.Samples = 20000
	}
	return m
}

// logProbTolerance treats outcomes whose log-probabilities differ by less
// than this as equally likely, protecting the ≤ comparison from float
// rounding.
const logProbTolerance = 1e-9

// Test computes the significance probability of observation x under π.
// π must be non-negative; it is normalized internally. An all-zero x
// yields P = 1 (nothing observed, nothing to reject); a nonzero x under
// an empty or all-zero π is impossible and yields P = 0 like any other
// impossible observation.
func (m Multinomial) Test(pi []float64, x []int) Result {
	return m.TestScratch(pi, x, nil)
}

// Scratch holds the reusable buffers of one TestScratch caller — the
// normalized probability vector, its per-category logs, and the
// enumeration and sampling state. The zero value is ready; buffers grow to
// the largest test seen and are reused across calls. A Scratch must not be
// shared between concurrent tests.
type Scratch struct {
	p      []float64
	logp   []float64
	comp   []int
	cdf    []float64
	counts []int
	guide  []int
}

// grow returns buf resized to length k, reallocating only when capacity
// is insufficient. Contents are unspecified; callers overwrite fully.
func grow[T int | float64](buf []T, k int) []T {
	if cap(buf) < k {
		return make([]T, k)
	}
	return buf[:k]
}

// TestScratch is Test with caller-owned scratch buffers: a worker testing
// many labels in a row reuses one Scratch and allocates nothing on the
// steady path. s may be nil, which allocates freshly (equivalent to Test).
func (m Multinomial) TestScratch(pi []float64, x []int, s *Scratch) Result {
	m = m.withDefaults()
	if s == nil {
		s = &Scratch{}
	}
	n := 0
	for _, xi := range x {
		n += xi
	}
	if n == 0 {
		return Result{P: 1, Exact: true, LogProbX: 0}
	}
	// Note: len(pi) == 0 with a nonzero observation is NOT the trivial
	// case — every observed category is impossible under an empty
	// distribution, so normalizeProbs yields all zeros and the impossible
	// branch below reports P = 0, maximal notability.
	s.p = grow(s.p, len(x))
	p := normalizeProbsInto(s.p, pi)
	// Every later probability term is c·ln(p[i]) − ln(c!): cache the k
	// category logs once so the enumeration/sampling loops run on pure
	// arithmetic. math.Log is deterministic, so reusing its result is
	// bit-identical to recomputing it per term.
	s.logp = grow(s.logp, len(x))
	logp := s.logp
	for i, pv := range p {
		if pv > 0 {
			logp[i] = math.Log(pv)
		} else {
			logp[i] = math.Inf(-1)
		}
	}

	logX := logMultinomialProbCached(p, logp, x, n)
	if math.IsInf(logX, -1) {
		// x contains a category the context deems impossible: no outcome
		// can be ≤ its probability except other impossible ones, which are
		// never drawn. Pr_s = 0 — maximal notability.
		return Result{P: 0, Exact: true, LogProbX: logX}
	}

	if comps, ok := compositionsUpTo(n, len(x), m.ExactLimit); ok && comps <= m.ExactLimit {
		return Result{P: m.exact(p, logp, logX, n, len(x), s), Exact: true, LogProbX: logX}
	}
	return Result{P: m.monteCarlo(p, logp, logX, n, s), Exact: false, LogProbX: logX}
}

// Score is the MT score of the paper: 1 − Pr_s when the test rejects at
// Alpha, and 0 otherwise (the characteristic is not notable).
func (m Multinomial) Score(pi []float64, x []int) float64 {
	m = m.withDefaults()
	r := m.Test(pi, x)
	if r.P <= m.Alpha {
		return 1 - r.P
	}
	return 0
}

// exact enumerates every composition of n into k parts, accumulating the
// probability of outcomes at most as likely as logX. Probability terms are
// pure arithmetic over the cached category logs and the ln-factorial
// table, so enumeration spends no time in math.Log/Lgamma.
func (m Multinomial) exact(p, logp []float64, logX float64, n, k int, s *Scratch) float64 {
	logN := lgammaInt(n + 1)
	total := 0.0
	s.comp = grow(s.comp, k)
	comp := s.comp
	var rec func(cat, remaining int, logAcc float64)
	rec = func(cat, remaining int, logAcc float64) {
		if cat == k-1 {
			comp[cat] = remaining
			lp := logAcc + termLogCached(p[cat], logp[cat], remaining)
			if math.IsInf(lp, -1) {
				return
			}
			lp += logN
			if lp <= logX+logProbTolerance {
				total += math.Exp(lp)
			}
			return
		}
		for c := 0; c <= remaining; c++ {
			comp[cat] = c
			lt := termLogCached(p[cat], logp[cat], c)
			if math.IsInf(lt, -1) {
				continue // impossible category count; all deeper outcomes have prob 0
			}
			rec(cat+1, remaining-c, logAcc+lt)
		}
	}
	rec(0, n, 0)
	if total > 1 {
		total = 1 // guard against accumulation drift
	}
	return total
}

// guideBuckets sizes the Monte-Carlo sampler's guide table: enough buckets
// that a draw's bucket usually holds one or two categories, capped so the
// per-test build cost stays trivial next to Samples×n draws.
func guideBuckets(k int) int {
	g := 4 * k
	if g < 16 {
		g = 16
	}
	if g > 8192 {
		g = 8192
	}
	return g
}

// monteCarlo estimates Pr_s by sampling outcomes from Mult(n, p). The
// standard +1 correction keeps the estimate strictly positive, matching
// the convention that a Monte-Carlo p-value never claims impossibility.
//
// Each draw inverts the CDF through a guide table: bucket b pre-resolves
// the index range the binary search could land in, collapsing the per-draw
// search to O(1) expected. The bucketed search answers exactly the same
// "first index whose cumulative value exceeds u" question, so the sampled
// category sequence — and therefore the estimate — is bit-identical to the
// plain binary search it replaces.
//
// With m.Nulls set, the sampled log-probabilities — which depend only on
// (p, n, Samples, Seed), never on the observation — are memoized sorted;
// a repeat of the same null distribution answers from the stored order
// statistics (see nullPValue) without drawing a single sample.
func (m Multinomial) monteCarlo(p, logp []float64, logX float64, n int, s *Scratch) float64 {
	threshold := logX + logProbTolerance
	var key string
	var rec []float64
	if m.Nulls != nil {
		key = nullKey(p, n, m.Samples, m.Seed)
		if v, ok := m.Nulls.GetLayer(key, qcache.LayerNull); ok {
			if nd := v.(*nullDist); nd.matches(p) {
				return nullPValue(nd.lps, threshold, m.Samples)
			}
			// A 64-bit hash collision left a different π under this key:
			// fall through, resample, and overwrite.
		}
		rec = make([]float64, 0, m.Samples)
	}
	rng := rand.New(rand.NewSource(m.Seed))
	s.cdf = grow(s.cdf, len(p))
	cdf := s.cdf
	acc := 0.0
	for i, pi := range p {
		acc += pi
		cdf[i] = acc
	}
	nb := guideBuckets(len(p))
	s.guide = grow(s.guide, nb+1)
	guide := s.guide
	step := acc / float64(nb)
	// One monotone sweep fills every bucket with the same "first index
	// whose cumulative value exceeds the bucket boundary" a binary search
	// would find.
	idx := 0
	for b := 0; b <= nb; b++ {
		v := float64(b) * step
		for idx < len(cdf)-1 && cdf[idx] <= v {
			idx++
		}
		guide[b] = idx
	}
	hits := 0
	s.counts = grow(s.counts, len(p))
	counts := s.counts
	for i := range counts {
		counts[i] = 0
	}
	s.comp = grow(s.comp, 0)
	touched := s.comp // category indices drawn this sample, unsorted
	for s := 0; s < m.Samples; s++ {
		touched = touched[:0]
		for j := 0; j < n; j++ {
			u := rng.Float64() * acc
			b := int(u / step)
			// The division can round across an integer boundary (by at most
			// one, a single 1-ulp error), so search the bucket widened by
			// one on each side rather than trust b exactly.
			lo, hi := b-1, b+2
			if lo < 0 {
				lo = 0
			}
			if hi > nb {
				hi = nb
			}
			c := searchCDFRange(cdf, u, guide[lo], guide[hi])
			if counts[c] == 0 {
				touched = append(touched, c)
			}
			counts[c]++
		}
		// The sample's log-probability sums category terms in ascending
		// index order, exactly as a full scan of counts would.
		sort.Ints(touched)
		lp := lgammaInt(n + 1)
		for _, c := range touched {
			t := termLogCached(p[c], logp[c], counts[c])
			if math.IsInf(t, -1) {
				lp = math.Inf(-1)
				break
			}
			lp += t
		}
		if lp <= threshold {
			hits++
		}
		if rec != nil {
			rec = append(rec, lp)
		}
		for _, c := range touched {
			counts[c] = 0
		}
	}
	s.comp = touched[:0] // keep the grown capacity for the next test
	if key != "" {
		nd := &nullDist{p: append([]float64(nil), p...), lps: rec}
		sort.Float64s(nd.lps)
		m.Nulls.PutSized(key, nd, qcache.LayerNull, nd.footprint(len(key)))
	}
	return float64(hits+1) / float64(m.Samples+1)
}

// searchCDF returns the first index whose cumulative value exceeds u.
func searchCDF(cdf []float64, u float64) int {
	return searchCDFRange(cdf, u, 0, len(cdf)-1)
}

// searchCDFRange returns the first index in [lo, hi] whose cumulative
// value exceeds u, assuming the answer lies in that range — the range is
// [0, len-1] for an unconstrained search, or a guide-table bucket.
// Because searchCDF's answer is monotone in u, bucket endpoints evaluated
// at the bucket's boundary values bracket every answer inside it, so the
// constrained search returns exactly what the full search would.
func searchCDFRange(cdf []float64, u float64, lo, hi int) int {
	for lo < hi {
		mid := (lo + hi) / 2
		if cdf[mid] > u {
			hi = mid
		} else {
			lo = mid + 1
		}
	}
	return lo
}

// logMultinomialProb returns ln Pr(X = x) for X ~ Mult(n, p). Uncached
// variant for one-off callers; the test loops use logMultinomialProbCached.
func logMultinomialProb(p []float64, x []int, n int) float64 {
	lp := lgammaInt(n + 1)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		t := termLog(pIndex(p, i), xi)
		if math.IsInf(t, -1) {
			return math.Inf(-1)
		}
		lp += t
	}
	return lp
}

// termLog returns ln(p^c / c!) with the 0^0 = 1 convention.
func termLog(p float64, c int) float64 {
	if c == 0 {
		return 0
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	return float64(c)*math.Log(p) - lgammaInt(c+1)
}

func pIndex(p []float64, i int) float64 {
	if i >= len(p) {
		return 0
	}
	return p[i]
}

// logMultinomialProbCached returns ln Pr(X = x) for X ~ Mult(n, p), with
// logp the cached element-wise ln(p).
func logMultinomialProbCached(p, logp []float64, x []int, n int) float64 {
	lp := lgammaInt(n + 1)
	for i, xi := range x {
		if xi == 0 {
			continue
		}
		if i >= len(p) {
			return math.Inf(-1) // observed category beyond π: impossible
		}
		t := termLogCached(p[i], logp[i], xi)
		if math.IsInf(t, -1) {
			return math.Inf(-1)
		}
		lp += t
	}
	return lp
}

// termLogCached returns ln(p^c / c!) with the 0^0 = 1 convention, with lp
// the cached ln(p).
func termLogCached(p, lp float64, c int) float64 {
	if c == 0 {
		return 0
	}
	if p <= 0 {
		return math.Inf(-1)
	}
	return float64(c)*lp - lgammaInt(c+1)
}

// lnFactTabSize bounds the precomputed ln Γ table; larger arguments (a
// 4096-observation count in one category) fall back to math.Lgamma.
const lnFactTabSize = 4096

// lnFactTab[i] = ln Γ(i), filled by the same math.Lgamma the fallback
// uses, so table hits are bit-identical to direct evaluation.
var lnFactTab = func() [lnFactTabSize]float64 {
	var t [lnFactTabSize]float64
	for i := 1; i < lnFactTabSize; i++ {
		t[i], _ = math.Lgamma(float64(i))
	}
	return t
}()

// lgammaInt is ln(Γ(n)) for positive integer n, i.e. ln((n-1)!).
func lgammaInt(n int) float64 {
	if n > 0 && n < lnFactTabSize {
		return lnFactTab[n]
	}
	v, _ := math.Lgamma(float64(n))
	return v
}

// normalizeProbs rescales pi to sum to 1 and pads/truncates to length k:
// categories of pi beyond k are dropped (their mass is renormalized away),
// and missing trailing categories become zero-probability. The length of
// the observation vector x is authoritative — see the pinning tests.
func normalizeProbs(pi []float64, k int) []float64 {
	return normalizeProbsInto(make([]float64, k), pi)
}

// normalizeProbsInto is normalizeProbs writing into out (whose length is
// the target k). Every entry of out is overwritten.
func normalizeProbsInto(out, pi []float64) []float64 {
	sum := 0.0
	for i := range out {
		out[i] = 0
		if i < len(pi) && pi[i] > 0 {
			out[i] = pi[i]
			sum += pi[i]
		}
	}
	if sum <= 0 {
		return out
	}
	for i := range out {
		out[i] /= sum
	}
	return out
}

// Normalize converts a count vector into a probability vector. An all-zero
// input yields an all-zero output.
func Normalize(counts []float64) []float64 {
	out := make([]float64, len(counts))
	sum := 0.0
	for _, c := range counts {
		if c > 0 {
			sum += c
		}
	}
	if sum <= 0 {
		return out
	}
	for i, c := range counts {
		if c > 0 {
			out[i] = c / sum
		}
	}
	return out
}

// NormalizeInts is Normalize for integer counts.
func NormalizeInts(counts []int) []float64 {
	f := make([]float64, len(counts))
	for i, c := range counts {
		f[i] = float64(c)
	}
	return Normalize(f)
}

// compositionsUpTo returns C(n+k-1, k-1) — the number of ways to split n
// observations over k categories — capped at limit. ok is false when the
// count exceeds the cap during computation or would overflow int; the
// count returned alongside is then limit + 1, a sentinel strictly above
// every admissible limit, so both return values consistently mean "too
// many to enumerate".
func compositionsUpTo(n, k, limit int) (int, bool) {
	// Multiplicative binomial evaluation with early exit.
	if k <= 1 {
		return 1, true
	}
	r := k - 1
	nn := n + k - 1
	if r > nn-r {
		r = nn - r
	}
	res := 1.0
	for i := 1; i <= r; i++ {
		res = res * float64(nn-r+i) / float64(i)
		if res > float64(limit)*2 {
			return limit + 1, false
		}
	}
	// float64(math.MaxInt) rounds up to 2^63, which does not fit back into
	// int — anything at or past it must take the sentinel path rather than
	// wrap negative in the conversion.
	if res+0.5 >= float64(math.MaxInt) {
		return limit + 1, false
	}
	return int(res + 0.5), true
}
