package stats

import "sort"

// RankSwitchDistance returns the minimum number of adjacent transpositions
// (switches) needed to transform ranking a into ranking b — the metric of
// the Section 4.2 comparison against expert rankings. This equals the
// number of inversions of b's items when written in a's order (Kendall tau
// distance), computed in O(n log n) by merge counting.
//
// Both rankings must contain the same items; items present in only one
// ranking are ignored.
func RankSwitchDistance(a, b []string) int {
	posB := make(map[string]int, len(b))
	for i, s := range b {
		posB[s] = i
	}
	seq := make([]int, 0, len(a))
	for _, s := range a {
		if p, ok := posB[s]; ok {
			seq = append(seq, p)
		}
	}
	return countInversions(seq)
}

// countInversions counts pairs (i, j) with i < j and seq[i] > seq[j].
func countInversions(seq []int) int {
	n := len(seq)
	if n < 2 {
		return 0
	}
	buf := make([]int, n)
	work := make([]int, n)
	copy(work, seq)
	return mergeCount(work, buf, 0, n)
}

func mergeCount(v, buf []int, lo, hi int) int {
	if hi-lo < 2 {
		return 0
	}
	mid := (lo + hi) / 2
	inv := mergeCount(v, buf, lo, mid) + mergeCount(v, buf, mid, hi)
	i, j, k := lo, mid, lo
	for i < mid && j < hi {
		if v[i] <= v[j] {
			buf[k] = v[i]
			i++
		} else {
			buf[k] = v[j]
			inv += mid - i
			j++
		}
		k++
	}
	for i < mid {
		buf[k] = v[i]
		i, k = i+1, k+1
	}
	for j < hi {
		buf[k] = v[j]
		j, k = j+1, k+1
	}
	copy(v[lo:hi], buf[lo:hi])
	return inv
}

// RankByScore returns the items sorted by descending score, ties broken by
// item name ascending for determinism.
func RankByScore(scores map[string]float64) []string {
	items := make([]string, 0, len(scores))
	for it := range scores {
		items = append(items, it)
	}
	sort.Slice(items, func(i, j int) bool {
		si, sj := scores[items[i]], scores[items[j]]
		if si != sj {
			return si > sj
		}
		return items[i] < items[j]
	})
	return items
}
