// Package corr implements the paper's future-work extension: "we also
// intend to explore correlations between attributes". Given a query, its
// context, and the per-label characteristics, it finds label PAIRS whose
// co-occurrence pattern in the query deviates from the context — e.g.
// query members both hold a doctorate AND lack children, while in the
// context the two properties are independent.
//
// For a pair of labels (a, b), every node in each set is mapped to one of
// four cells — (has a, has b), (has a only), (has b only), (neither) — and
// the query's cell counts are tested against the context's cell
// distribution with the same exact multinomial test the core method uses.
// This keeps the extension consistent with the paper's framework: the
// context defines expected behaviour, the query is the hypothesis.
package corr

import (
	"sort"

	"repro/internal/kg"
	"repro/internal/stats"
)

// Pair is a correlation finding between two labels.
type Pair struct {
	A, B  kg.LabelID
	AName string
	BName string
	// P is the significance probability of the query's co-occurrence
	// pattern under the context's.
	P float64
	// Score is 1−P when significant at the test's alpha, else 0.
	Score float64
	// QueryCells and ContextCells hold the 2×2 co-occurrence counts in
	// order [both, aOnly, bOnly, neither].
	QueryCells   [4]int
	ContextCells [4]int
}

// Notable reports whether the pair passed the significance test.
func (p Pair) Notable() bool { return p.Score > 0 }

// Options configures the correlation search.
type Options struct {
	// Test is the multinomial test configuration.
	Test stats.Multinomial
	// MaxLabels bounds how many labels (by combined query+context
	// presence) enter the pairwise scan; the scan is quadratic in it.
	// Default 12.
	MaxLabels int
	// MinSupport skips labels carried by fewer members across query and
	// context combined. Absence in the query is itself informative (the
	// childless-with-doctorate pattern), so query-absent labels stay in
	// as long as the context expresses them. Default 1.
	MinSupport int
}

func (o Options) withDefaults() Options {
	if o.MaxLabels == 0 {
		o.MaxLabels = 12
	}
	if o.MinSupport == 0 {
		o.MinSupport = 1
	}
	return o
}

// Find scans label pairs over the query and context and returns pairs
// sorted by descending score, then ascending P, then names.
func Find(g *kg.Graph, query, context []kg.NodeID, labels []kg.LabelID, opt Options) []Pair {
	opt = opt.withDefaults()
	if len(query) == 0 || len(context) == 0 {
		return nil
	}
	// Precompute per-label presence bitsets over both node sets.
	type presence struct {
		label kg.LabelID
		query []bool
		ctx   []bool
		sup   int
	}
	var pres []presence
	for _, l := range labels {
		p := presence{label: l, query: make([]bool, len(query)), ctx: make([]bool, len(context))}
		for i, n := range query {
			if len(g.OutEdgesByLabel(n, l)) > 0 {
				p.query[i] = true
				p.sup++
			}
		}
		for i, n := range context {
			if len(g.OutEdgesByLabel(n, l)) > 0 {
				p.ctx[i] = true
				p.sup++
			}
		}
		if p.sup >= opt.MinSupport {
			pres = append(pres, p)
		}
	}
	// Keep the most-present labels to bound the quadratic scan.
	sort.Slice(pres, func(i, j int) bool {
		if pres[i].sup != pres[j].sup {
			return pres[i].sup > pres[j].sup
		}
		return pres[i].label < pres[j].label
	})
	if len(pres) > opt.MaxLabels {
		pres = pres[:opt.MaxLabels]
	}

	var out []Pair
	alpha := opt.Test.Alpha
	if alpha == 0 {
		alpha = stats.DefaultAlpha
	}
	for i := 0; i < len(pres); i++ {
		for j := i + 1; j < len(pres); j++ {
			a, b := pres[i], pres[j]
			pair := Pair{
				A: a.label, B: b.label,
				AName: g.LabelName(a.label), BName: g.LabelName(b.label),
			}
			pair.QueryCells = cells(a.query, b.query)
			pair.ContextCells = cells(a.ctx, b.ctx)
			pi := make([]float64, 4)
			for c := 0; c < 4; c++ {
				pi[c] = float64(pair.ContextCells[c])
			}
			res := opt.Test.Test(stats.Normalize(pi), pair.QueryCells[:])
			pair.P = res.P
			if res.P <= alpha {
				pair.Score = 1 - res.P
			}
			out = append(out, pair)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Score != out[j].Score {
			return out[i].Score > out[j].Score
		}
		if out[i].P != out[j].P {
			return out[i].P < out[j].P
		}
		if out[i].AName != out[j].AName {
			return out[i].AName < out[j].AName
		}
		return out[i].BName < out[j].BName
	})
	return out
}

// cells maps two presence vectors to the 2×2 contingency counts
// [both, aOnly, bOnly, neither].
func cells(a, b []bool) [4]int {
	var c [4]int
	for i := range a {
		switch {
		case a[i] && b[i]:
			c[0]++
		case a[i]:
			c[1]++
		case b[i]:
			c[2]++
		default:
			c[3]++
		}
	}
	return c
}
