package corr

import (
	"fmt"
	"testing"

	"repro/internal/kg"
)

// correlationGraph plants a query whose members all combine hasDoctorate
// with childlessness, against a context where the two are independent.
func correlationGraph() (*kg.Graph, []kg.NodeID, []kg.NodeID, []kg.LabelID) {
	b := kg.NewBuilder(256)
	addPerson := func(name string, doctorate, child bool) {
		b.AddEdge(name, "livesIn", "Metropolis")
		if doctorate {
			b.AddEdge(name, "hasDoctorate", "PhD")
		}
		if child {
			b.AddEdge(name, "hasChild", "Child of "+name)
		}
	}
	// Query: 4 members, all doctorate + childless.
	for i := 0; i < 4; i++ {
		addPerson(fmt.Sprintf("q%d", i), true, false)
	}
	// Context: 40 members; doctorate and children independent (half/half).
	for i := 0; i < 40; i++ {
		addPerson(fmt.Sprintf("c%02d", i), i%2 == 0, i%4 < 2)
	}
	g := b.Build()
	var q, c []kg.NodeID
	for i := 0; i < 4; i++ {
		id, _ := g.NodeByName(fmt.Sprintf("q%d", i))
		q = append(q, id)
	}
	for i := 0; i < 40; i++ {
		id, _ := g.NodeByName(fmt.Sprintf("c%02d", i))
		c = append(c, id)
	}
	var labels []kg.LabelID
	for _, name := range []string{"livesIn", "hasDoctorate", "hasChild"} {
		l, _ := g.LabelByName(name)
		labels = append(labels, l)
	}
	return g, q, c, labels
}

func TestFindsPlantedCorrelation(t *testing.T) {
	g, q, c, labels := correlationGraph()
	pairs := Find(g, q, c, labels, Options{})
	if len(pairs) == 0 {
		t.Fatal("no pairs scanned")
	}
	var target *Pair
	for i := range pairs {
		p := &pairs[i]
		if (p.AName == "hasDoctorate" && p.BName == "hasChild") ||
			(p.AName == "hasChild" && p.BName == "hasDoctorate") {
			target = p
		}
	}
	if target == nil {
		t.Fatal("doctorate/child pair not scanned")
	}
	if !target.Notable() {
		t.Fatalf("planted correlation not notable: P=%v cells q=%v c=%v",
			target.P, target.QueryCells, target.ContextCells)
	}
	// Query cells: all 4 members have doctorate-only (or child-only if
	// order flipped); neither cell is 0.
	if target.QueryCells[0] != 0 || target.QueryCells[3] != 0 {
		t.Fatalf("query cells = %v", target.QueryCells)
	}
}

func TestUncorrelatedPairNotNotable(t *testing.T) {
	g, q, c, labels := correlationGraph()
	pairs := Find(g, q, c, labels, Options{})
	for _, p := range pairs {
		if p.AName == "livesIn" && p.BName == "hasDoctorate" && p.Notable() {
			// livesIn is universal; together with the doctorate rate being
			// plausible on its own, the pair should not fire strongly.
			// (The query is 100% doctorate vs 50% context, which may reach
			// significance; only fail when the evidence is overwhelming.)
			if p.P < 0.001 {
				t.Fatalf("livesIn/hasDoctorate unexpectedly extreme: P=%v", p.P)
			}
		}
	}
}

func TestCellCounts(t *testing.T) {
	a := []bool{true, true, false, false}
	b := []bool{true, false, true, false}
	c := cells(a, b)
	if c != [4]int{1, 1, 1, 1} {
		t.Fatalf("cells = %v", c)
	}
}

func TestEmptyInputs(t *testing.T) {
	g, q, c, labels := correlationGraph()
	if got := Find(g, nil, c, labels, Options{}); got != nil {
		t.Fatal("empty query should return nil")
	}
	if got := Find(g, q, nil, labels, Options{}); got != nil {
		t.Fatal("empty context should return nil")
	}
	if got := Find(g, q, c, nil, Options{}); len(got) != 0 {
		t.Fatal("no labels should return no pairs")
	}
}

func TestMaxLabelsBound(t *testing.T) {
	g, q, c, labels := correlationGraph()
	pairs := Find(g, q, c, labels, Options{MaxLabels: 2})
	// 2 labels -> exactly 1 pair.
	if len(pairs) != 1 {
		t.Fatalf("MaxLabels=2 produced %d pairs", len(pairs))
	}
}

func TestSortedByScore(t *testing.T) {
	g, q, c, labels := correlationGraph()
	pairs := Find(g, q, c, labels, Options{})
	for i := 1; i < len(pairs); i++ {
		if pairs[i].Score > pairs[i-1].Score {
			t.Fatal("pairs not sorted by descending score")
		}
	}
}

func TestMinSupport(t *testing.T) {
	g, q, c, labels := correlationGraph()
	// Requiring support beyond the population size removes every label.
	pairs := Find(g, q, c, labels, Options{MinSupport: 1000})
	if len(pairs) != 0 {
		t.Fatalf("expected no pairs, got %d", len(pairs))
	}
}
