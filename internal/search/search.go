// Package search resolves free-text entity mentions to graph nodes.
//
// The paper assumes query nodes are given, noting that "there exists a
// number of techniques that correctly map keywords to nodes in any
// knowledge graph" [12, 24]. This package is that substrate for the CLI: a
// token-level inverted index over node names with TF-style scoring, exact
// and case-insensitive matching, and deterministic ranking.
package search

import (
	"sort"
	"strings"
	"unicode"

	"repro/internal/kg"
)

// Index is an inverted index over node names. Build once, query many
// times; safe for concurrent readers.
type Index struct {
	g       *kg.Graph
	byToken map[string][]kg.NodeID
	exact   map[string]kg.NodeID
	// tokenCount[n] = len(Tokenize(NodeName(n))), precomputed so Lookup's
	// brevity discount does not re-tokenize every candidate on every query.
	tokenCount []int
}

// Hit is a scored match.
type Hit struct {
	Node  kg.NodeID
	Name  string
	Score float64
}

// Tokenize lowercases and splits a name into alphanumeric tokens.
func Tokenize(s string) []string {
	return strings.FieldsFunc(strings.ToLower(s), func(r rune) bool {
		return !unicode.IsLetter(r) && !unicode.IsNumber(r)
	})
}

// NewIndex indexes every node name of g.
func NewIndex(g *kg.Graph) *Index {
	idx := &Index{
		g:          g,
		byToken:    make(map[string][]kg.NodeID),
		exact:      make(map[string]kg.NodeID, g.NumNodes()),
		tokenCount: make([]int, g.NumNodes()),
	}
	for n := 0; n < g.NumNodes(); n++ {
		id := kg.NodeID(n)
		name := g.NodeName(id)
		idx.exact[strings.ToLower(name)] = id
		toks := Tokenize(name)
		idx.tokenCount[n] = len(toks)
		seen := map[string]bool{}
		for _, tok := range toks {
			if seen[tok] {
				continue
			}
			seen[tok] = true
			idx.byToken[tok] = append(idx.byToken[tok], id)
		}
	}
	return idx
}

// NumNodes reports how many nodes the index covers — callers serving a
// live-mutable graph compare it with the current graph's node count to
// decide whether the index needs a rebuild.
func (idx *Index) NumNodes() int { return len(idx.tokenCount) }

// Lookup finds the best matches for a free-text mention. An exact
// (case-insensitive) name match always ranks first with score 1; otherwise
// candidates are scored by the fraction of query tokens they contain,
// discounted by how many extra tokens the candidate name has. Ties break
// by name for determinism. Returns up to limit hits.
func (idx *Index) Lookup(mention string, limit int) []Hit {
	if limit <= 0 {
		return nil
	}
	var hits []Hit
	lower := strings.ToLower(strings.TrimSpace(mention))
	if id, ok := idx.exact[lower]; ok {
		hits = append(hits, Hit{Node: id, Name: idx.g.NodeName(id), Score: 1})
	}
	tokens := Tokenize(mention)
	if len(tokens) > 0 {
		matched := make(map[kg.NodeID]int)
		for _, tok := range tokens {
			for _, id := range idx.byToken[tok] {
				matched[id]++
			}
		}
		for id, n := range matched {
			if len(hits) > 0 && hits[0].Node == id {
				continue // already present as the exact match
			}
			nameTokens := idx.tokenCount[id]
			coverage := float64(n) / float64(len(tokens))
			brevity := float64(n) / float64(nameTokens)
			hits = append(hits, Hit{
				Node:  id,
				Name:  idx.g.NodeName(id),
				Score: 0.9 * coverage * (0.5 + 0.5*brevity),
			})
		}
	}
	sort.Slice(hits, func(i, j int) bool {
		if hits[i].Score != hits[j].Score {
			return hits[i].Score > hits[j].Score
		}
		return hits[i].Name < hits[j].Name
	})
	if len(hits) > limit {
		hits = hits[:limit]
	}
	return hits
}

// Resolve maps a list of mentions to node IDs, taking the top hit of each.
// Unresolvable mentions are reported in missing.
func (idx *Index) Resolve(mentions []string) (ids []kg.NodeID, missing []string) {
	for _, m := range mentions {
		hits := idx.Lookup(m, 1)
		if len(hits) == 0 {
			missing = append(missing, m)
			continue
		}
		ids = append(ids, hits[0].Node)
	}
	return ids, missing
}
