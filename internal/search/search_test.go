package search

import (
	"testing"

	"repro/internal/kg"
)

func testGraph() *kg.Graph {
	b := kg.NewBuilder(16)
	for _, n := range []string{
		"Angela Merkel", "Barack Obama", "Brad Pitt", "Michelle Obama",
		"Obama Foundation", "Pittsburgh",
	} {
		b.Node(n)
	}
	b.AddEdge("Angela Merkel", "knows", "Barack Obama")
	return b.Build()
}

func TestExactMatchWinsWithScoreOne(t *testing.T) {
	idx := NewIndex(testGraph())
	hits := idx.Lookup("angela merkel", 5)
	if len(hits) == 0 {
		t.Fatal("no hits")
	}
	if hits[0].Name != "Angela Merkel" || hits[0].Score != 1 {
		t.Fatalf("top hit = %+v", hits[0])
	}
}

func TestTokenMatch(t *testing.T) {
	idx := NewIndex(testGraph())
	hits := idx.Lookup("obama", 5)
	if len(hits) < 2 {
		t.Fatalf("expected multiple obama hits, got %v", hits)
	}
	names := map[string]bool{}
	for _, h := range hits {
		names[h.Name] = true
	}
	if !names["Barack Obama"] || !names["Michelle Obama"] {
		t.Fatalf("hits = %v", hits)
	}
	// Two-token names outrank the three-token foundation on brevity.
	if hits[0].Name == "Obama Foundation" {
		t.Fatalf("brevity discount failed: %v", hits)
	}
}

func TestMultiTokenCoverage(t *testing.T) {
	idx := NewIndex(testGraph())
	hits := idx.Lookup("barack obama", 3)
	if len(hits) == 0 || hits[0].Name != "Barack Obama" {
		t.Fatalf("hits = %v", hits)
	}
}

func TestNoMatch(t *testing.T) {
	idx := NewIndex(testGraph())
	if hits := idx.Lookup("zzz unknown", 5); len(hits) != 0 {
		t.Fatalf("unexpected hits: %v", hits)
	}
	if hits := idx.Lookup("", 5); len(hits) != 0 {
		t.Fatalf("empty mention hits: %v", hits)
	}
	if hits := idx.Lookup("obama", 0); hits != nil {
		t.Fatal("limit 0 should return nil")
	}
}

func TestLimit(t *testing.T) {
	idx := NewIndex(testGraph())
	if hits := idx.Lookup("obama", 1); len(hits) != 1 {
		t.Fatalf("limit ignored: %v", hits)
	}
}

func TestResolve(t *testing.T) {
	g := testGraph()
	idx := NewIndex(g)
	ids, missing := idx.Resolve([]string{"Angela Merkel", "brad pitt", "nobody here"})
	if len(ids) != 2 {
		t.Fatalf("resolved %d ids", len(ids))
	}
	if len(missing) != 1 || missing[0] != "nobody here" {
		t.Fatalf("missing = %v", missing)
	}
	if g.NodeName(ids[1]) != "Brad Pitt" {
		t.Fatalf("second id = %s", g.NodeName(ids[1]))
	}
}

func TestTokenize(t *testing.T) {
	toks := Tokenize("Jean-Claude Van Damme (actor)")
	want := []string{"jean", "claude", "van", "damme", "actor"}
	if len(toks) != len(want) {
		t.Fatalf("Tokenize = %v", toks)
	}
	for i := range want {
		if toks[i] != want[i] {
			t.Fatalf("Tokenize = %v, want %v", toks, want)
		}
	}
}

func TestDeterministicTieBreak(t *testing.T) {
	idx := NewIndex(testGraph())
	a := idx.Lookup("obama", 5)
	b := idx.Lookup("obama", 5)
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("lookup not deterministic")
		}
	}
}

func BenchmarkLookup(b *testing.B) {
	idx := NewIndex(testGraph())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		idx.Lookup("barack obama", 5)
	}
}
