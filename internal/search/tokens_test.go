package search

import (
	"fmt"
	"testing"

	"repro/internal/kg"
)

// TestTokenCountsPrecomputed pins the NewIndex-time token counts to what
// Lookup previously recomputed per candidate per query.
func TestTokenCountsPrecomputed(t *testing.T) {
	g := testGraph()
	idx := NewIndex(g)
	if len(idx.tokenCount) != g.NumNodes() {
		t.Fatalf("tokenCount len %d, want %d", len(idx.tokenCount), g.NumNodes())
	}
	for n := 0; n < g.NumNodes(); n++ {
		want := len(Tokenize(g.NodeName(kg.NodeID(n))))
		if idx.tokenCount[n] != want {
			t.Fatalf("node %d (%s): tokenCount %d, want %d",
				n, g.NodeName(kg.NodeID(n)), idx.tokenCount[n], want)
		}
	}
}

// TestLookupDoesNotRetokenizeCandidates: with many candidates per token,
// Lookup's per-query allocations stay bounded by the hit slice — not by
// one Tokenize call per candidate.
func TestLookupDoesNotRetokenizeCandidates(t *testing.T) {
	b := kg.NewBuilder(256)
	for i := 0; i < 200; i++ {
		b.Node(fmt.Sprintf("Obama Variant Number %03d Extra Words Here", i))
	}
	g := b.Build()
	idx := NewIndex(g)
	idx.Lookup("obama variant", 5)
	allocs := testing.AllocsPerRun(20, func() { idx.Lookup("obama variant", 5) })
	// Tokenizing each of the 200 candidates costs ≥ 1 alloc apiece; the
	// precomputed counts keep the whole lookup far below that.
	if allocs > 50 {
		t.Fatalf("Lookup allocates %v/op; candidate re-tokenization is back", allocs)
	}
}
