package ppr

import (
	"testing"

	"repro/internal/kg"
	"repro/internal/qcache"
)

// seedCacheOf builds a cache whose seed layer is bounded to budget bytes
// (0 = unbounded layer).
func seedCacheOf(budget int64) *qcache.Cache {
	var lb [qcache.NumLayers]int64
	lb[qcache.LayerSeed] = budget
	return qcache.NewSharded(qcache.Config{Capacity: 1 << 16, LayerBudgets: lb})
}

// assertSameBits fails unless got and want are bitwise identical vectors.
func assertSameBits(t *testing.T, label string, got, want []float64) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: length %d vs %d", label, len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("%s: differs at node %d: %v vs %v", label, i, got[i], want[i])
		}
	}
}

// refinementSequence is an interactive session: heavily overlapping
// queries differing by ±1 seed, with one duplicate-seed query.
func refinementSequence() [][]kg.NodeID {
	return [][]kg.NodeID{
		{3, 7},
		{3, 7, 11},         // +1 seed: only 11 should solve on a warm cache
		{3, 7, 11, 19},     // +1 more
		{7, 11, 19},        // -1 seed: zero solves
		{7, 11, 19, 7},     // duplicate seed: folds 7 twice
		{23, 3, 7},         // new seed plus warm ones, permuted order
		{3, 7, 11, 19, 23}, // all warm
	}
}

// TestPersonalizedSumSeedCacheBitwise: for every seed-cache budget
// (disabled, tiny — evicting mid-sequence — and ample) and Parallelism
// {1, 4}, a refinement sequence returns exactly the cacheless bits at
// every step.
func TestPersonalizedSumSeedCacheBitwise(t *testing.T) {
	g := randomGraph(400, 1600, 12)
	seq := refinementSequence()
	for _, par := range []int{1, 4} {
		want := make([][]float64, len(seq))
		for i, q := range seq {
			want[i] = PersonalizedSum(g, q, Options{Parallelism: par})
		}
		for name, budget := range map[string]int64{"tiny": 6000, "ample": 0} {
			cache := seedCacheOf(budget)
			opt := Options{Parallelism: par, SeedCache: cache}
			for i, q := range seq {
				got := PersonalizedSum(g, q, opt)
				assertSameBits(t, name, got, want[i])
			}
			st := cache.Stats()
			if st.Layers[qcache.LayerSeed].Hits == 0 {
				t.Fatalf("par=%d budget=%s: seed cache never hit: %+v", par, name, st)
			}
			if name == "tiny" && st.Evictions == 0 {
				t.Fatalf("par=%d: tiny budget must evict mid-sequence: %+v", par, st)
			}
			if name == "ample" && st.Evictions != 0 {
				t.Fatalf("par=%d: ample budget must not evict: %+v", par, st)
			}
		}
	}
}

// TestPersonalizedSumSeedCacheDense: cached vectors from solves that
// saturate into the dense regime fold back bitwise identically too.
func TestPersonalizedSumSeedCacheDense(t *testing.T) {
	// Enough edges and iterations that single-seed solves go dense.
	g := randomGraph(300, 6000, 5)
	opt := Options{Iterations: 12}
	seq := [][]kg.NodeID{{1, 2}, {1, 2, 3}, {2, 3}}
	want := make([][]float64, len(seq))
	for i, q := range seq {
		want[i] = PersonalizedSum(g, q, opt)
	}
	cached := opt
	cached.SeedCache = seedCacheOf(0)
	for i, q := range seq {
		assertSameBits(t, "dense", PersonalizedSum(g, q, cached), want[i])
	}
	if st := cached.SeedCache.Stats(); st.SeedBytes == 0 || st.Layers[qcache.LayerSeed].Hits == 0 {
		t.Fatalf("dense vectors not cached: %+v", st)
	}
}

// TestPersonalizedSumMultiSeedCacheBitwise: the batched solve consults
// and fills the same per-seed store — a batch after a warm-up solves only
// unseen seeds and returns the cacheless bits, and a subsequent
// PersonalizedSum hits vectors the batch stored (cross-path reuse).
func TestPersonalizedSumMultiSeedCacheBitwise(t *testing.T) {
	g := randomGraph(400, 1600, 77)
	queries := [][]kg.NodeID{{3, 7, 11}, {7, 19}, {11, 19, 23}, {3}}
	want := PersonalizedSumMulti(g, queries, Options{})
	for _, par := range []int{1, 4} {
		cache := seedCacheOf(0)
		opt := Options{Parallelism: par, SeedCache: cache}
		// Warm two seeds through the solo path first.
		warmSolo := PersonalizedSum(g, []kg.NodeID{3, 7}, opt)
		assertSameBits(t, "warm-solo", warmSolo, PersonalizedSum(g, []kg.NodeID{3, 7}, Options{}))
		got := PersonalizedSumMulti(g, queries, opt)
		for i := range want {
			assertSameBits(t, "multi", got[i], want[i])
		}
		st := cache.Stats()
		// The batch must have hit the two warmed seeds.
		if st.Layers[qcache.LayerSeed].Hits < 2 {
			t.Fatalf("par=%d: batch ignored warm seeds: %+v", par, st)
		}
		// And a refinement over seeds the batch introduced is all hits.
		misses := st.Layers[qcache.LayerSeed].Misses
		refined := PersonalizedSum(g, []kg.NodeID{11, 19, 23}, opt)
		assertSameBits(t, "refine-after-batch", refined, PersonalizedSum(g, []kg.NodeID{11, 19, 23}, Options{}))
		if st2 := cache.Stats(); st2.Layers[qcache.LayerSeed].Misses != misses {
			t.Fatalf("par=%d: refinement after batch missed: %+v", par, st2)
		}
	}
}

// TestPersonalizedSumMultiSeedCacheBlockedKernel forces the blocked
// multi-vector kernel on a small graph and checks the extracted columns
// are cached and bitwise identical on reuse.
func TestPersonalizedSumMultiSeedCacheBlockedKernel(t *testing.T) {
	old := multiDenseMinEdges
	multiDenseMinEdges = 0
	defer func() { multiDenseMinEdges = old }()
	g := randomGraph(300, 6000, 9)
	opt := Options{Iterations: 12}
	queries := [][]kg.NodeID{{1, 2, 3}, {2, 4}, {5, 6}}
	want := PersonalizedSumMulti(g, queries, opt)
	cached := opt
	cached.SeedCache = seedCacheOf(0)
	got := PersonalizedSumMulti(g, queries, cached)
	for i := range want {
		assertSameBits(t, "blocked", got[i], want[i])
	}
	// Re-running the whole batch is now solve-free and identical.
	misses := cached.SeedCache.Stats().Layers[qcache.LayerSeed].Misses
	again := PersonalizedSumMulti(g, queries, cached)
	for i := range want {
		assertSameBits(t, "blocked-warm", again[i], want[i])
	}
	if st := cached.SeedCache.Stats(); st.Layers[qcache.LayerSeed].Misses != misses {
		t.Fatalf("warm batch re-solved seeds: %+v", st)
	}
}

// TestSeedCacheKeySeparatesOptions: vectors cached under one option set
// must not serve another (damping, iterations, uniform all change bits).
func TestSeedCacheKeySeparatesOptions(t *testing.T) {
	g := randomGraph(200, 800, 31)
	cache := seedCacheOf(0)
	q := []kg.NodeID{3, 9}
	base := PersonalizedSum(g, q, Options{SeedCache: cache})
	for _, opt := range []Options{
		{Damping: 0.2, SeedCache: cache},
		{Iterations: 5, SeedCache: cache},
		{Uniform: true, SeedCache: cache},
	} {
		plain := opt
		plain.SeedCache = nil
		got := PersonalizedSum(g, q, opt)
		assertSameBits(t, "options", got, PersonalizedSum(g, q, plain))
		same := true
		for i := range got {
			if got[i] != base[i] {
				same = false
				break
			}
		}
		if same {
			t.Fatalf("option change %+v returned the default-option bits — key collision", opt)
		}
	}
}
