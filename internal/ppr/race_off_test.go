//go:build !race

package ppr

// raceEnabled reports whether the race detector is active; allocation
// assertions are skipped under it because sync.Pool deliberately bypasses
// its caches in race builds.
const raceEnabled = false
