package ppr

import (
	"math"
	"math/rand"
	"sync"
	"testing"

	"repro/internal/gen"
	"repro/internal/kg"
)

// personalizedDense is the seed implementation: dense all-node sweeps with
// per-edge LabelWeight/WeightedOutDegree lookups and fresh allocations per
// call. Kept as the reference the frontier-sparse rewrite is verified (and
// benchmarked) against.
func personalizedDense(g *kg.Graph, seeds []kg.NodeID, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	p := make([]float64, n)
	next := make([]float64, n)
	if n == 0 || len(seeds) == 0 {
		return p
	}

	v := make([]float64, n)
	mass := 1 / float64(len(seeds))
	for _, s := range seeds {
		v[s] += mass
	}
	copy(p, v)

	c := opt.Damping
	for it := 0; it < opt.Iterations; it++ {
		for i := range next {
			next[i] = 0
		}
		dangling := 0.0
		for from := 0; from < n; from++ {
			pf := p[from]
			if pf == 0 {
				continue
			}
			adj := g.OutEdges(kg.NodeID(from))
			if len(adj) == 0 {
				dangling += pf
				continue
			}
			if opt.Uniform {
				share := c * pf / float64(len(adj))
				for _, e := range adj {
					next[e.To] += share
				}
				continue
			}
			wd := g.WeightedOutDegree(kg.NodeID(from))
			if wd <= 0 {
				share := c * pf / float64(len(adj))
				for _, e := range adj {
					next[e.To] += share
				}
				continue
			}
			base := c * pf / wd
			for _, e := range adj {
				next[e.To] += base * g.LabelWeight(e.Label)
			}
		}
		restart := (1 - c) + c*dangling
		for i := range next {
			next[i] += restart * v[i]
		}
		p, next = next, p
	}
	return p
}

// TestSparseMatchesDenseRandom pins the rewrite to the seed semantics:
// frontier-sparse and dense power iteration agree within 1e-12 on
// randomized graphs, weighted and uniform, single- and multi-seed.
func TestSparseMatchesDenseRandom(t *testing.T) {
	for trial := 0; trial < 30; trial++ {
		seed := int64(trial)
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(3+rng.Intn(120), 1+rng.Intn(500), seed)
		seeds := make([]kg.NodeID, 1+rng.Intn(4))
		for i := range seeds {
			seeds[i] = kg.NodeID(rng.Intn(g.NumNodes()))
		}
		for _, uniform := range []bool{false, true} {
			opt := Options{Uniform: uniform, Iterations: 1 + rng.Intn(15)}
			sparse := Personalized(g, seeds, opt)
			dense := personalizedDense(g, seeds, opt)
			for i := range dense {
				if math.Abs(sparse[i]-dense[i]) > 1e-12 {
					t.Fatalf("trial %d uniform=%v node %d: sparse %v dense %v",
						trial, uniform, i, sparse[i], dense[i])
				}
			}
		}
	}
}

// TestPersonalizedSumParallelismIdentical: the worker pool folds per-seed
// vectors in ascending seed order, so every Parallelism setting yields the
// exact same bits.
func TestPersonalizedSumParallelismIdentical(t *testing.T) {
	g := randomGraph(400, 1600, 99)
	seeds := []kg.NodeID{3, 7, 11, 19, 23, 29, 31, 37, 41}
	want := PersonalizedSum(g, seeds, Options{Parallelism: 1})
	for _, par := range []int{2, 3, 4, len(seeds), len(seeds) + 5, 0} {
		got := PersonalizedSum(g, seeds, Options{Parallelism: par})
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Parallelism=%d differs at node %d: %v vs %v",
					par, i, got[i], want[i])
			}
		}
	}
}

// TestPersonalizedParallelGatherIdentical: Options.Parallelism also
// drives the row-partitioned dense gather, which must leave results
// bitwise identical for every worker count. The graph is sized past the
// gather kernel's serial-fallback threshold and iterated enough to
// saturate the frontier into the dense regime.
func TestPersonalizedParallelGatherIdentical(t *testing.T) {
	g := randomGraph(2000, 12000, 21)
	seeds := []kg.NodeID{4, 9}
	opt := Options{Iterations: 12}
	opt.Parallelism = 1
	want := Personalized(g, seeds, opt)
	for _, par := range []int{2, 3, 5, 8, 0} {
		opt.Parallelism = par
		got := Personalized(g, seeds, opt)
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Parallelism=%d differs at node %d: %v vs %v", par, i, got[i], want[i])
			}
		}
	}
	// The same holds through the multi-seed pool, where leftover budget
	// flows to the gather.
	wantSum := PersonalizedSum(g, seeds, Options{Iterations: 12, Parallelism: 1})
	for _, par := range []int{2, 6, 0} {
		got := PersonalizedSum(g, seeds, Options{Iterations: 12, Parallelism: par})
		for i := range wantSum {
			if got[i] != wantSum[i] {
				t.Fatalf("Sum Parallelism=%d differs at node %d", par, i)
			}
		}
	}
}

// TestPersonalizedConcurrentCallers: pooled workspaces must not be shared
// between concurrent runs.
func TestPersonalizedConcurrentCallers(t *testing.T) {
	g := randomGraph(300, 1200, 7)
	want := Personalized(g, []kg.NodeID{5}, Options{})
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 20; i++ {
				got := Personalized(g, []kg.NodeID{5}, Options{})
				for j := range want {
					if got[j] != want[j] {
						t.Errorf("concurrent run differs at %d", j)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
}

// TestPersonalizedAllocs: the sparse path allocates strictly less than the
// dense seed implementation (which allocates its three n-vectors per call).
func TestPersonalizedAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("sync.Pool bypasses its caches under the race detector; alloc counts are meaningless")
	}
	g := randomGraph(2000, 12000, 55)
	seeds := []kg.NodeID{17}
	// Parallelism 1 pins the serial kernels: this test audits the sparse
	// path's allocation discipline, and parallel gather spends a closure
	// allocation per extra worker per dense step by design.
	opt := Options{Parallelism: 1}
	g.Transitions() // exclude one-time CSR construction
	Personalized(g, seeds, opt)
	sparse := testing.AllocsPerRun(50, func() { Personalized(g, seeds, opt) })
	dense := testing.AllocsPerRun(50, func() { personalizedDense(g, seeds, opt) })
	if sparse >= dense {
		t.Fatalf("sparse allocs/op %v not below dense %v", sparse, dense)
	}
	if sparse > 3 {
		t.Fatalf("sparse Personalized allocates %v/op, want <= 3 (result + rare pool refills)", sparse)
	}
}

// BenchmarkPersonalizedYago compares the frontier-sparse rewrite against
// the dense seed implementation on the half-scale YAGO-like graph — the
// acceptance workload for the rewrite.
func BenchmarkPersonalizedYago(b *testing.B) {
	d := gen.YAGOLike(gen.YAGOConfig{Seed: 42, Scale: 0.5})
	g := d.Graph
	q, err := d.Scenario("actors").QueryIDs(g, 5)
	if err != nil {
		b.Fatal(err)
	}
	g.Transitions()
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			Personalized(g, q[:1], Options{})
		}
	})
	b.Run("dense", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			personalizedDense(g, q[:1], Options{})
		}
	})
}

// BenchmarkPersonalizedSumYago measures the pooled multi-seed path on the
// same graph (the RandomWalk baseline's whole-query workload).
func BenchmarkPersonalizedSumYago(b *testing.B) {
	d := gen.YAGOLike(gen.YAGOConfig{Seed: 42, Scale: 0.5})
	g := d.Graph
	q, err := d.Scenario("actors").QueryIDs(g, 5)
	if err != nil {
		b.Fatal(err)
	}
	g.Transitions()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PersonalizedSum(g, q, Options{})
	}
}
