package ppr

import (
	"context"
	"math/rand"
	"sync/atomic"
	"testing"

	"repro/internal/kg"
	"repro/internal/qcache"
)

// countdownCtx cancels after a fixed number of Err() probes — the solve
// loops check ctx between sweeps, so probe k is a deterministic mid-solve
// cut point.
type countdownCtx struct {
	context.Context
	left atomic.Int64
}

func newCountdownCtx(k int64) *countdownCtx {
	c := &countdownCtx{Context: context.Background()}
	c.left.Store(k)
	return c
}

func (c *countdownCtx) Err() error {
	if c.left.Add(-1) < 0 {
		return context.Canceled
	}
	return nil
}

// probes returns how many Err() checks have been consumed.
func (c *countdownCtx) probes(budget int64) int64 { return budget - c.left.Load() }

// TestPersonalizedSumCtxLiveMatchesPlain: a live ctx changes nothing —
// the ctx variant is bitwise identical to the plain call.
func TestPersonalizedSumCtxLiveMatchesPlain(t *testing.T) {
	g := randomGraph(400, 1600, 17)
	seeds := []kg.NodeID{3, 7, 11}
	want := PersonalizedSum(g, seeds, Options{})
	got := PersonalizedSumCtx(context.Background(), g, seeds, Options{})
	assertSameBits(t, "live-ctx", got, want)
}

// TestPersonalizedSumCtxCancelledMidSolve: cutting the solve at every
// probe depth never corrupts the seed cache. Seeds whose solves finished
// before the cut may be stored — those vectors are complete — but a cut
// before any solve completes stores nothing, and whatever an aborted run
// left behind, a subsequent live run over the same cache must return the
// exact cacheless bits (a partial vector in the cache would break this).
func TestPersonalizedSumCtxCancelledMidSolve(t *testing.T) {
	g := randomGraph(400, 1600, 17)
	seeds := []kg.NodeID{3, 7, 11, 19}
	want := PersonalizedSum(g, seeds, Options{})

	const budget = int64(1 << 30)
	full := newCountdownCtx(budget)
	PersonalizedSumCtx(full, g, seeds, Options{})
	total := full.probes(budget)
	if total < 4 {
		t.Fatalf("solve only probed ctx %d times", total)
	}
	for k := int64(0); k < total; k += 1 + total/8 {
		cache := seedCacheOf(0)
		PersonalizedSumCtx(newCountdownCtx(k), g, seeds, Options{SeedCache: cache})
		if k == 0 {
			// Cut before anything solved: the cache must be untouched.
			if st := cache.Stats(); st.Layers[qcache.LayerSeed].Bytes != 0 || st.Size != 0 {
				t.Fatalf("first-probe cut stored %d bytes / %d entries",
					st.Layers[qcache.LayerSeed].Bytes, st.Size)
			}
		}
		// The same cache must still serve a live run correctly afterwards.
		got := PersonalizedSumCtx(context.Background(), g, seeds, Options{SeedCache: cache})
		assertSameBits(t, "post-abort", got, want)
	}
}

// TestPersonalizedSumMultiCtxCancelled: the batched solve aborts cleanly
// at every cut depth — no partial seed-cache stores, nil or complete
// output rows only, and a fresh run over the same cache is bitwise right.
func TestPersonalizedSumMultiCtxCancelled(t *testing.T) {
	defer func(v int64) { multiDenseMinEdges = v }(multiDenseMinEdges)
	for _, kernel := range []bool{false, true} {
		if kernel {
			multiDenseMinEdges = 0
		} else {
			multiDenseMinEdges = 1 << 62
		}
		g := randomGraph(400, 1600, 17)
		rng := rand.New(rand.NewSource(29))
		queries := batchQueries(rng, 6, 4, g.NumNodes())
		want := PersonalizedSumMulti(g, queries, Options{})

		const budget = int64(1 << 30)
		full := newCountdownCtx(budget)
		PersonalizedSumMultiCtx(full, g, queries, Options{})
		total := full.probes(budget)
		for k := int64(0); k < total; k += 1 + total/8 {
			cache := seedCacheOf(0)
			out := PersonalizedSumMultiCtx(newCountdownCtx(k), g, queries, Options{SeedCache: cache})
			if st := cache.Stats(); st.Size != 0 {
				t.Fatalf("kernel=%v cut %d: aborted batch stored %d entries", kernel, k, st.Size)
			}
			// Rows released before the cut carry full results; the rest nil.
			for qi := range out {
				if out[qi] != nil {
					assertSameBits(t, "released-before-cut", out[qi], want[qi])
				}
			}
			got := PersonalizedSumMultiCtx(context.Background(), g, queries, Options{SeedCache: cache})
			for qi := range queries {
				assertSameBits(t, "post-abort-batch", got[qi], want[qi])
			}
		}
	}
}

// TestPersonalizedSumMultiStreamBitwise: the stream releases every query
// exactly once with bitwise the barriered batch's vectors — across the
// serial and blocked dense paths, cache states, and parallelism.
func TestPersonalizedSumMultiStreamBitwise(t *testing.T) {
	defer func(v int64) { multiDenseMinEdges = v }(multiDenseMinEdges)
	for _, kernel := range []bool{false, true} {
		if kernel {
			multiDenseMinEdges = 0
		} else {
			multiDenseMinEdges = 1 << 62
		}
		g := randomGraph(400, 1600, 17)
		rng := rand.New(rand.NewSource(41))
		queries := batchQueries(rng, 8, 4, g.NumNodes())
		for _, par := range []int{1, 4} {
			for _, cached := range []bool{false, true} {
				opt := Options{Parallelism: par}
				if cached {
					opt.SeedCache = seedCacheOf(0)
				}
				want := PersonalizedSumMulti(g, queries, Options{Parallelism: par})
				got := make([][]float64, len(queries))
				calls := 0
				err := PersonalizedSumMultiStream(context.Background(), g, queries, opt, func(qi int, sum []float64) {
					calls++
					if got[qi] != nil {
						t.Fatalf("query %d released twice", qi)
					}
					got[qi] = sum
				})
				if err != nil {
					t.Fatal(err)
				}
				if calls != len(queries) {
					t.Fatalf("kernel=%v par=%d cached=%v: %d releases for %d queries",
						kernel, par, cached, calls, len(queries))
				}
				for qi := range queries {
					assertSameBits(t, "stream", got[qi], want[qi])
				}
				if cached {
					// A second streamed pass is all cache hits, released
					// before any solving, same bits.
					again := make([][]float64, len(queries))
					if err := PersonalizedSumMultiStream(context.Background(), g, queries, opt, func(qi int, sum []float64) {
						again[qi] = sum
					}); err != nil {
						t.Fatal(err)
					}
					for qi := range queries {
						assertSameBits(t, "stream-warm", again[qi], want[qi])
					}
				}
			}
		}
	}
}

// TestPersonalizedSumMultiStreamCancelled: a cancelled stream returns
// ctx.Err(), never releases a partial vector, and never double-releases.
func TestPersonalizedSumMultiStreamCancelled(t *testing.T) {
	g := randomGraph(400, 1600, 17)
	rng := rand.New(rand.NewSource(53))
	queries := batchQueries(rng, 6, 4, g.NumNodes())
	want := PersonalizedSumMulti(g, queries, Options{})

	const budget = int64(1 << 30)
	full := newCountdownCtx(budget)
	PersonalizedSumMultiStream(full, g, queries, Options{}, func(int, []float64) {})
	total := full.probes(budget)
	for k := int64(0); k < total; k += 1 + total/8 {
		released := make([][]float64, len(queries))
		err := PersonalizedSumMultiStream(newCountdownCtx(k), g, queries, Options{}, func(qi int, sum []float64) {
			if released[qi] != nil {
				t.Fatalf("cut %d: query %d released twice", k, qi)
			}
			released[qi] = sum
		})
		if err == nil {
			t.Fatalf("cut %d: cancelled stream returned nil error", k)
		}
		for qi := range released {
			if released[qi] != nil {
				assertSameBits(t, "released-before-cancel", released[qi], want[qi])
			}
		}
	}
}
