// Batched multi-source PageRank: PersonalizedSumMulti amortizes the cold
// cost of many queries against one graph.
//
// Two amortizations stack. First, seed-level deduplication: the paper's
// per-query score is the sum of single-seed PageRank vectors, so a batch
// whose queries overlap (nested eval sweeps, trending entities in a
// serving mix) needs each distinct seed solved once, not once per query.
// Second, the dense tails of the surviving solves run through the blocked
// multi-vector gather kernel (kg.TransitionCSR.GatherStepMulti), which
// walks the edge stream once per iteration for up to MaxGatherBlock
// vectors instead of once per vector — the kernel-level win grows with
// graph size, paying most on graphs whose transpose no longer fits in
// cache.
//
// Every per-seed solve follows the exact schedule of its solo run — the
// same sparse iterations, the same switch point, dense steps whose
// per-column arithmetic replicates the serial kernel — and per-query sums
// fold in seed-list order exactly as PersonalizedSum does, so the batch
// output is bitwise identical to calling PersonalizedSum per query.
//
// PersonalizedSumMultiStream exposes the same solve as a stream: each
// query's summed vector is released through a callback the moment its
// last seed resolves — cache hits before any solving, sparse-only solves
// during phase one, saturated solves as their dense column retires —
// instead of barriering the whole batch. The solve schedule is untouched;
// streaming only moves the fold earlier, so every released vector carries
// exactly the bits the barriered call would return.
package ppr

import (
	"context"
	"runtime"
	"sort"
	"time"

	"repro/internal/kg"
	"repro/internal/obs"
	"repro/internal/qcache"
)

// PersonalizedSumMulti computes PersonalizedSum for every seed set in one
// batched pass and returns one summed vector per query, in order. Peak
// memory is O(unique seeds · n) for the per-seed result vectors plus
// O(MaxGatherBlock · n) for the active dense block.
func PersonalizedSumMulti(g *kg.Graph, queries [][]kg.NodeID, opt Options) [][]float64 {
	return PersonalizedSumMultiCtx(context.Background(), g, queries, opt)
}

// PersonalizedSumMultiCtx is PersonalizedSumMulti under a cancellation
// context: solves check ctx between sweeps and the batch stops within one
// sweep of cancellation. Once ctx is done the returned slice is partial —
// unresolved queries hold nil — and nothing partial enters the seed
// cache; callers must treat ctx.Err() != nil as "no result".
func PersonalizedSumMultiCtx(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, opt Options) [][]float64 {
	out := make([][]float64, len(queries))
	obsH := observedMultiStart(&opt)
	start := time.Now()
	personalizedSumMultiStream(ctx, g, queries, opt, false, func(qi int, sum []float64) {
		out[qi] = sum
	})
	if obsH != nil {
		obsH.Observe(time.Since(start))
	}
	return out
}

// PersonalizedSumMultiStream runs the batched multi-source solve and
// invokes ready(qi, sum) exactly once per query, as soon as that query's
// last seed has resolved — before other queries' solves complete. ready
// is called synchronously from the solving goroutine (offload expensive
// consumers); released vectors are bitwise identical to per-query
// PersonalizedSum, whatever the release order. On cancellation the stream
// stops within one sweep and queries not yet released never get a
// callback; the returned error is ctx.Err().
//
// The stream runs each deduplicated seed's solve to completion in
// first-appearance order instead of handing dense tails to the blocked
// multi-vector kernel: the kernel amortizes the edge stream across
// columns but retires them together, which would barrier every release
// behind the whole batch's dense work — the opposite of streaming. The
// per-seed schedule is exactly PersonalizedSum's, so the bits are
// unchanged; only the batch's bandwidth amortization is traded for
// release granularity. Barriered callers (PersonalizedSumMulti) keep the
// kernel.
func PersonalizedSumMultiStream(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, opt Options, ready func(qi int, sum []float64)) error {
	obsH := observedMultiStart(&opt)
	start := time.Now()
	personalizedSumMultiStream(ctx, g, queries, opt, true, ready)
	if obsH != nil {
		obsH.Observe(time.Since(start))
	}
	return ctx.Err()
}

// observedMultiStart detaches opt's solve histogram so the batch is
// observed exactly once at the entry point — the uniform-ablation path
// inside personalizedSumMultiStream delegates to PersonalizedSumCtx per
// query, which would otherwise also observe each delegate.
func observedMultiStart(opt *Options) *obs.Histogram {
	h := opt.SolveObs
	opt.SolveObs = nil
	return h
}

// personalizedSumMultiStream is the shared engine behind the barriered
// and streaming multi-source entry points: seed dedup, cache consult,
// release bookkeeping, and the store phase are common; streaming selects
// the per-seed completion schedule over the blocked dense kernel.
func personalizedSumMultiStream(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, opt Options, streaming bool, ready func(qi int, sum []float64)) {
	opt = opt.withDefaults()
	n := g.NumNodes()
	if n == 0 {
		for i := range queries {
			ready(i, make([]float64, 0))
		}
		return
	}
	if opt.Uniform {
		// The uniform ablation's dense sweep is scatter-based with no
		// blocked kernel; batch it query by query, releasing each as it
		// completes.
		for i, q := range queries {
			sum := PersonalizedSumCtx(ctx, g, q, opt)
			if ctx.Err() != nil {
				return
			}
			ready(i, sum)
		}
		return
	}
	budget := opt.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	// The blocked dense phase is one solve at a time, so the whole budget
	// goes to the row-partitioned gather inside each step.
	opt.gatherWorkers = budget
	tr := g.Transitions()

	// Unique seeds across the batch, in first-appearance order.
	index := make(map[kg.NodeID]int)
	var uniq []kg.NodeID
	for _, q := range queries {
		for _, s := range q {
			if _, ok := index[s]; !ok {
				index[s] = len(uniq)
				uniq = append(uniq, s)
			}
		}
	}

	// Release bookkeeping: which queries need which unique seeds, and how
	// many of each query's seeds are still unsolved. seedQueries is
	// deduplicated per query (a duplicated seed must decrement its query
	// once, not twice), via a per-query stamp over the unique-seed index.
	solves := make([]perSeed, len(uniq))
	seedQueries := make([][]int, len(uniq))
	remaining := make([]int, len(queries))
	stamp := make([]int, len(uniq))
	for i := range stamp {
		stamp[i] = -1
	}
	for qi, q := range queries {
		for _, s := range q {
			i := index[s]
			if stamp[i] == qi {
				continue
			}
			stamp[i] = qi
			seedQueries[i] = append(seedQueries[i], qi)
			remaining[qi]++
		}
	}
	// foldAndEmit materializes one query's sum with the exact per-seed
	// fold loops PersonalizedSum runs, so sums carry the same bits
	// whenever they are released.
	foldAndEmit := func(qi int) {
		sum := make([]float64, n)
		for _, s := range queries[qi] {
			solves[index[s]].foldInto(sum, n)
		}
		ready(qi, sum)
	}
	// markResolved releases every query whose last unsolved seed is i.
	markResolved := func(i int) {
		for _, qi := range seedQueries[i] {
			remaining[qi]--
			if remaining[qi] == 0 {
				foldAndEmit(qi)
			}
		}
	}

	// Seed-cache consult: unique seeds with a cached vector skip solving
	// entirely; the rest (all of them, with no cache) enter the solve.
	var prefix string
	toSolve := make([]int, 0, len(uniq))
	if opt.SeedCache != nil {
		prefix = seedKeyPrefix(opt)
		for i, s := range uniq {
			if v, hit := opt.SeedCache.GetLayer(seedKey(prefix, s), qcache.LayerSeed); hit {
				solves[i].cv = v.(*seedVec)
				continue
			}
			toSolve = append(toSolve, i)
		}
	} else {
		for i := range uniq {
			toSolve = append(toSolve, i)
		}
	}
	// Queries with no seeds release immediately (a zero vector), and
	// queries fully served by the cache release before any solving starts
	// — the streaming fast path for warm overlap.
	unresolved := make([]bool, len(uniq))
	for _, i := range toSolve {
		unresolved[i] = true
	}
	for qi := range queries {
		if remaining[qi] == 0 {
			foldAndEmit(qi)
		}
	}
	for i := range uniq {
		if !unresolved[i] {
			// Cache hit: resolve now, releasing queries whose other seeds
			// were hits too.
			markResolved(i)
		}
	}

	// Every abandonment path must hand the outstanding workspaces back to
	// the pool; the blocked kernel nils ws as it absorbs columns.
	defer func() {
		for i := range solves {
			if solves[i].ws != nil {
				solves[i].ws.release()
				solves[i].ws = nil
			}
		}
	}()

	if streaming {
		// Streaming schedule: run each seed's full solve (sparse prefix +
		// its own dense tail — PersonalizedSum's exact schedule) in
		// first-appearance order, releasing dependent queries the moment
		// each completes. The blocked kernel below would retire all
		// columns together and barrier every release behind the batch's
		// whole dense phase.
		for _, i := range toSolve {
			if ctx.Err() != nil {
				return
			}
			ws := getWorkspace(n)
			solves[i].ws = ws
			personalizedInto(ctx, g, uniq[i:i+1], opt, ws)
			if ctx.Err() != nil {
				return
			}
			markResolved(i)
		}
		storeSolvedSeeds(toSolve, solves, uniq, opt, prefix, n)
		return
	}

	// Phase one: each solved seed's frontier-sparse prefix, exactly as its
	// solo run would execute it. Solves whose frontier never saturates
	// finish — and release their queries — here; the rest park at their
	// dense switch point.
	var pending []pendingSolve
	for _, i := range toSolve {
		if ctx.Err() != nil {
			return
		}
		ws := getWorkspace(n)
		ws.init(g, uniq[i:i+1])
		it := ws.sparsePhase(ctx, g, tr, opt, opt.Iterations)
		solves[i].ws = ws
		if ctx.Err() != nil {
			return
		}
		if it < opt.Iterations {
			pending = append(pending, pendingSolve{ws: ws, rem: opt.Iterations - it, idx: i})
		} else {
			markResolved(i)
		}
	}

	// Phase two: the dense tails. On graphs whose transpose stream dwarfs
	// the cache the blocked multi-vector kernel walks it once per
	// iteration for a whole block; small cache-resident graphs skip the
	// blocked layout's packing and extra indexing and finish each solve
	// with plain serial dense steps. Both paths produce identical bits —
	// the dispatch is purely a performance choice.
	if int64(g.NumEdges()) >= multiDenseMinEdges && len(pending) > 1 {
		// Sorting by remaining iterations groups columns that retire
		// together, so block repacks are rare.
		sort.SliceStable(pending, func(a, b int) bool { return pending[a].rem > pending[b].rem })
		for base := 0; base < len(pending); base += kg.MaxGatherBlock {
			end := base + kg.MaxGatherBlock
			if end > len(pending) {
				end = len(pending)
			}
			solveDenseBlock(ctx, tr, pending[base:end], solves, opt, n, markResolved)
			if ctx.Err() != nil {
				return
			}
		}
	} else {
		for _, ps := range pending {
			for it := 0; it < ps.rem; it++ {
				if ctx.Err() != nil {
					return
				}
				ps.ws.denseStep(g, tr, opt)
			}
			markResolved(ps.idx)
		}
	}

	storeSolvedSeeds(toSolve, solves, uniq, opt, prefix, n)
}

// storeSolvedSeeds hands every freshly solved vector to the seed cache:
// workspace results are materialized (the blocked kernel already
// extracted its columns), so the next overlapping batch or refinement
// hits. Callers only reach it with a live ctx — the solve loops bail out
// first under cancellation, so only complete vectors are ever stored. A
// nil SeedCache makes it a no-op.
func storeSolvedSeeds(toSolve []int, solves []perSeed, uniq []kg.NodeID, opt Options, prefix string, n int) {
	if opt.SeedCache == nil {
		return
	}
	for _, i := range toSolve {
		var v *seedVec
		if solves[i].vec != nil {
			v = &seedVec{dense: solves[i].vec}
		} else {
			v = extractSeedVec(solves[i].ws, n)
			solves[i].ws.release()
			solves[i].ws = nil
		}
		solves[i].cv = v
		key := seedKey(prefix, uniq[i])
		opt.SeedCache.PutSized(key, v, qcache.LayerSeed, v.footprint(len(key)))
	}
}

// perSeed holds one unique seed's finished vector: still inside its
// workspace (sparse support list or dense), extracted to a plain vector
// by the blocked kernel path, or materialized as a cached seedVec (hits
// and — once stored — fresh solves, when the seed cache is on).
type perSeed struct {
	ws  *workspace
	vec []float64
	cv  *seedVec
}

// foldInto accumulates the seed's vector into sum, mirroring
// PersonalizedSum's fold: touched-list order for sparse results, an
// ascending nonzero sweep for dense ones. Slot orders across distinct
// indices never affect bits — each slot receives one add per seed.
func (ps *perSeed) foldInto(sum []float64, n int) {
	if ps.cv != nil {
		ps.cv.foldInto(sum)
		return
	}
	if ps.vec != nil {
		for i, x := range ps.vec {
			if x != 0 {
				sum[i] += x
			}
		}
		return
	}
	ws := ps.ws
	if ws.dense {
		for i, x := range ws.p[:n] {
			if x != 0 {
				sum[i] += x
			}
		}
		return
	}
	for _, u := range ws.touched {
		sum[u] += ws.p[u]
	}
}

// multiDenseMinEdges is the edge count below which the batched dense
// phase runs per-seed serial solves instead of the blocked kernel: a
// cache-resident transpose re-streams for free, so the blocked layout's
// packing and wider indexing only add work. A variable so tests can force
// the kernel path on small graphs.
var multiDenseMinEdges int64 = 1 << 19

// pendingSolve is one unique seed parked at its dense switch point.
type pendingSolve struct {
	ws  *workspace
	rem int // dense iterations remaining
	idx int // unique-seed index, addressing solves
}

// fixedPointMinRem is the remaining-iteration count above which a dense
// block checks columns for bitwise fixed points. Below it the scan costs
// more than the iterations it could save.
const fixedPointMinRem = 16

// denseCol tracks one active column of a dense block.
type denseCol struct {
	rem  int
	idx  int       // unique-seed index
	seed kg.NodeID // single seed; its personalization mass is 1
}

// solveDenseBlock runs the remaining dense iterations of up to
// MaxGatherBlock single-seed solves as blocked multi-vector steps. Each
// iteration is one gather over the shared edge stream plus a per-column
// teleport; a column retires when its iterations are done or when it hits
// a bitwise fixed point (p == next everywhere), after which further
// iterations could not change another bit. Retiring repacks the block to
// the narrower stride, preserving column order, and reports the finished
// seed through onRetire — the streaming release hook (pass a no-op for
// barriered callers). Cancellation is checked between gathers; abandoned
// columns simply never retire.
func solveDenseBlock(ctx context.Context, tr *kg.TransitionCSR, blk []pendingSolve, solves []perSeed, opt Options, n int, onRetire func(idx int)) {
	b := len(blk)
	pm := make([]float64, n*b)
	nextM := make([]float64, n*b)
	dangling := make([]float64, kg.MaxGatherBlock)
	cols := make([]denseCol, b)
	for j, ps := range blk {
		ws := ps.ws
		// ws.p is zero outside its touched support, so a dense read is the
		// full vector regardless of how far the sparse phase got.
		for x := 0; x < n; x++ {
			pm[x*b+j] = ws.p[x]
		}
		cols[j] = denseCol{rem: ps.rem, idx: ps.idx, seed: ws.seeds[0]}
		solves[ps.idx].ws = nil
		ws.release()
	}
	// Fixed-point dropout pays when it can save many iterations but is a
	// per-iteration column scan; short tails (the paper's 10-iteration
	// runs) skip it. Skipping never changes results — dropout only elides
	// iterations that would reproduce the same bits.
	checkFixedPoint := blk[0].rem > fixedPointMinRem
	c := opt.Damping
	for b > 0 {
		if ctx.Err() != nil {
			return
		}
		tr.GatherStepMultiParallel(nextM[:n*b], pm[:n*b], c, b, dangling, opt.gatherWorkers)
		retired := false
		for j := range cols {
			// Teleport: single seed with mass 1, so the full restart mass
			// lands on the seed — restart·v[s] with v[s] = 1.
			restart := (1 - c) + c*dangling[j]
			nextM[int(cols[j].seed)*b+j] += restart * 1
			cols[j].rem--
			if checkFixedPoint && cols[j].rem > 0 && fixedPointCol(pm, nextM, b, j, n) {
				// Bitwise fixed point: every further iteration reproduces
				// this exact column, so stop iterating it now.
				cols[j].rem = 0
			}
			if cols[j].rem == 0 {
				retired = true
			}
		}
		pm, nextM = nextM, pm
		if !retired {
			continue
		}
		// Extract finished columns and repack the survivors to the
		// narrower stride, in place and in order. Each extracted seed
		// resolves immediately — queries waiting only on it release here,
		// mid-block, while the surviving columns keep iterating.
		kept := cols[:0]
		keptJ := make([]int, 0, b)
		var done []int
		for j := range cols {
			if cols[j].rem == 0 {
				v := make([]float64, n)
				for x := 0; x < n; x++ {
					v[x] = pm[x*b+j]
				}
				solves[cols[j].idx].vec = v
				done = append(done, cols[j].idx)
			} else {
				kept = append(kept, cols[j])
				keptJ = append(keptJ, j)
			}
		}
		nb := len(kept)
		if nb > 0 && nb < b {
			for x := 0; x < n; x++ {
				for newj, oldj := range keptJ {
					pm[x*nb+newj] = pm[x*b+oldj]
				}
			}
		}
		cols = kept
		b = nb
		for _, idx := range done {
			onRetire(idx)
		}
	}
}

// fixedPointCol reports whether column j is bitwise identical in p and
// next. Early exit on the first differing node keeps the common
// (unconverged) case nearly free.
func fixedPointCol(p, next []float64, b, j, n int) bool {
	for x := 0; x < n; x++ {
		if p[x*b+j] != next[x*b+j] {
			return false
		}
	}
	return true
}
