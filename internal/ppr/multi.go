// Batched multi-source PageRank: PersonalizedSumMulti amortizes the cold
// cost of many queries against one graph.
//
// Two amortizations stack. First, seed-level deduplication: the paper's
// per-query score is the sum of single-seed PageRank vectors, so a batch
// whose queries overlap (nested eval sweeps, trending entities in a
// serving mix) needs each distinct seed solved once, not once per query.
// Second, the dense tails of the surviving solves run through the blocked
// multi-vector gather kernel (kg.TransitionCSR.GatherStepMulti), which
// walks the edge stream once per iteration for up to MaxGatherBlock
// vectors instead of once per vector — the kernel-level win grows with
// graph size, paying most on graphs whose transpose no longer fits in
// cache.
//
// Every per-seed solve follows the exact schedule of its solo run — the
// same sparse iterations, the same switch point, dense steps whose
// per-column arithmetic replicates the serial kernel — and per-query sums
// fold in seed-list order exactly as PersonalizedSum does, so the batch
// output is bitwise identical to calling PersonalizedSum per query.
package ppr

import (
	"runtime"
	"sort"

	"repro/internal/kg"
	"repro/internal/qcache"
)

// PersonalizedSumMulti computes PersonalizedSum for every seed set in one
// batched pass and returns one summed vector per query, in order. Peak
// memory is O(unique seeds · n) for the per-seed result vectors plus
// O(MaxGatherBlock · n) for the active dense block.
func PersonalizedSumMulti(g *kg.Graph, queries [][]kg.NodeID, opt Options) [][]float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	out := make([][]float64, len(queries))
	if n == 0 {
		for i := range out {
			out[i] = make([]float64, 0)
		}
		return out
	}
	if opt.Uniform {
		// The uniform ablation's dense sweep is scatter-based with no
		// blocked kernel; batch it query by query.
		for i, q := range queries {
			out[i] = PersonalizedSum(g, q, opt)
		}
		return out
	}
	budget := opt.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	// The blocked dense phase is one solve at a time, so the whole budget
	// goes to the row-partitioned gather inside each step.
	opt.gatherWorkers = budget
	tr := g.Transitions()

	// Unique seeds across the batch, in first-appearance order.
	index := make(map[kg.NodeID]int)
	var uniq []kg.NodeID
	for _, q := range queries {
		for _, s := range q {
			if _, ok := index[s]; !ok {
				index[s] = len(uniq)
				uniq = append(uniq, s)
			}
		}
	}

	// Seed-cache consult: unique seeds with a cached vector skip solving
	// entirely; the rest (all of them, with no cache) enter the solve.
	solves := make([]perSeed, len(uniq))
	var prefix string
	toSolve := make([]int, 0, len(uniq))
	if opt.SeedCache != nil {
		prefix = seedKeyPrefix(opt)
		for i, s := range uniq {
			if v, hit := opt.SeedCache.GetLayer(seedKey(prefix, s), qcache.LayerSeed); hit {
				solves[i].cv = v.(*seedVec)
				continue
			}
			toSolve = append(toSolve, i)
		}
	} else {
		for i := range uniq {
			toSolve = append(toSolve, i)
		}
	}

	// Phase one: each solved seed's frontier-sparse prefix, exactly as its
	// solo run would execute it. Solves whose frontier never saturates
	// finish here; the rest park at their dense switch point.
	var pending []pendingSolve
	for _, i := range toSolve {
		ws := getWorkspace(n)
		ws.init(g, uniq[i:i+1])
		it := ws.sparsePhase(g, tr, opt, opt.Iterations)
		solves[i].ws = ws
		if it < opt.Iterations {
			pending = append(pending, pendingSolve{ws: ws, rem: opt.Iterations - it, idx: i})
		}
	}

	// Phase two: the dense tails. On graphs whose transpose stream dwarfs
	// the cache the blocked multi-vector kernel walks it once per
	// iteration for a whole block; small cache-resident graphs skip the
	// blocked layout's packing and extra indexing and finish each solve
	// with plain serial dense steps. Both paths produce identical bits —
	// the dispatch is purely a performance choice.
	if int64(g.NumEdges()) >= multiDenseMinEdges && len(pending) > 1 {
		// Sorting by remaining iterations groups columns that retire
		// together, so block repacks are rare.
		sort.SliceStable(pending, func(a, b int) bool { return pending[a].rem > pending[b].rem })
		for base := 0; base < len(pending); base += kg.MaxGatherBlock {
			end := base + kg.MaxGatherBlock
			if end > len(pending) {
				end = len(pending)
			}
			solveDenseBlock(tr, pending[base:end], solves, opt, n)
		}
	} else {
		for _, ps := range pending {
			for it := 0; it < ps.rem; it++ {
				ps.ws.denseStep(g, tr, opt)
			}
		}
	}

	// Store every freshly solved vector: materialize workspace results
	// (the blocked kernel already extracted its columns) and hand them to
	// the cache, so the next overlapping batch or refinement hits.
	if opt.SeedCache != nil {
		for _, i := range toSolve {
			var v *seedVec
			if solves[i].vec != nil {
				v = &seedVec{dense: solves[i].vec}
			} else {
				v = extractSeedVec(solves[i].ws, n)
				solves[i].ws.release()
				solves[i].ws = nil
			}
			solves[i].cv = v
			key := seedKey(prefix, uniq[i])
			opt.SeedCache.PutSized(key, v, qcache.LayerSeed, v.footprint(len(key)))
		}
	}

	// Fold per query in seed-list order, with the exact per-seed fold
	// loops PersonalizedSum runs, so sums carry the same bits.
	for qi, q := range queries {
		sum := make([]float64, n)
		for _, s := range q {
			solves[index[s]].foldInto(sum, n)
		}
		out[qi] = sum
	}
	for i := range solves {
		if solves[i].ws != nil {
			solves[i].ws.release()
		}
	}
	return out
}

// perSeed holds one unique seed's finished vector: still inside its
// workspace (sparse support list or dense), extracted to a plain vector
// by the blocked kernel path, or materialized as a cached seedVec (hits
// and — once stored — fresh solves, when the seed cache is on).
type perSeed struct {
	ws  *workspace
	vec []float64
	cv  *seedVec
}

// foldInto accumulates the seed's vector into sum, mirroring
// PersonalizedSum's fold: touched-list order for sparse results, an
// ascending nonzero sweep for dense ones. Slot orders across distinct
// indices never affect bits — each slot receives one add per seed.
func (ps *perSeed) foldInto(sum []float64, n int) {
	if ps.cv != nil {
		ps.cv.foldInto(sum)
		return
	}
	if ps.vec != nil {
		for i, x := range ps.vec {
			if x != 0 {
				sum[i] += x
			}
		}
		return
	}
	ws := ps.ws
	if ws.dense {
		for i, x := range ws.p[:n] {
			if x != 0 {
				sum[i] += x
			}
		}
		return
	}
	for _, u := range ws.touched {
		sum[u] += ws.p[u]
	}
}

// multiDenseMinEdges is the edge count below which the batched dense
// phase runs per-seed serial solves instead of the blocked kernel: a
// cache-resident transpose re-streams for free, so the blocked layout's
// packing and wider indexing only add work. A variable so tests can force
// the kernel path on small graphs.
var multiDenseMinEdges int64 = 1 << 19

// pendingSolve is one unique seed parked at its dense switch point.
type pendingSolve struct {
	ws  *workspace
	rem int // dense iterations remaining
	idx int // unique-seed index, addressing solves
}

// fixedPointMinRem is the remaining-iteration count above which a dense
// block checks columns for bitwise fixed points. Below it the scan costs
// more than the iterations it could save.
const fixedPointMinRem = 16

// denseCol tracks one active column of a dense block.
type denseCol struct {
	rem  int
	idx  int       // unique-seed index
	seed kg.NodeID // single seed; its personalization mass is 1
}

// solveDenseBlock runs the remaining dense iterations of up to
// MaxGatherBlock single-seed solves as blocked multi-vector steps. Each
// iteration is one gather over the shared edge stream plus a per-column
// teleport; a column retires when its iterations are done or when it hits
// a bitwise fixed point (p == next everywhere), after which further
// iterations could not change another bit. Retiring repacks the block to
// the narrower stride, preserving column order.
func solveDenseBlock(tr *kg.TransitionCSR, blk []pendingSolve, solves []perSeed, opt Options, n int) {
	b := len(blk)
	pm := make([]float64, n*b)
	nextM := make([]float64, n*b)
	dangling := make([]float64, kg.MaxGatherBlock)
	cols := make([]denseCol, b)
	for j, ps := range blk {
		ws := ps.ws
		// ws.p is zero outside its touched support, so a dense read is the
		// full vector regardless of how far the sparse phase got.
		for x := 0; x < n; x++ {
			pm[x*b+j] = ws.p[x]
		}
		cols[j] = denseCol{rem: ps.rem, idx: ps.idx, seed: ws.seeds[0]}
		solves[ps.idx].ws = nil
		ws.release()
	}
	// Fixed-point dropout pays when it can save many iterations but is a
	// per-iteration column scan; short tails (the paper's 10-iteration
	// runs) skip it. Skipping never changes results — dropout only elides
	// iterations that would reproduce the same bits.
	checkFixedPoint := blk[0].rem > fixedPointMinRem
	c := opt.Damping
	for b > 0 {
		tr.GatherStepMultiParallel(nextM[:n*b], pm[:n*b], c, b, dangling, opt.gatherWorkers)
		retired := false
		for j := range cols {
			// Teleport: single seed with mass 1, so the full restart mass
			// lands on the seed — restart·v[s] with v[s] = 1.
			restart := (1 - c) + c*dangling[j]
			nextM[int(cols[j].seed)*b+j] += restart * 1
			cols[j].rem--
			if checkFixedPoint && cols[j].rem > 0 && fixedPointCol(pm, nextM, b, j, n) {
				// Bitwise fixed point: every further iteration reproduces
				// this exact column, so stop iterating it now.
				cols[j].rem = 0
			}
			if cols[j].rem == 0 {
				retired = true
			}
		}
		pm, nextM = nextM, pm
		if !retired {
			continue
		}
		// Extract finished columns and repack the survivors to the
		// narrower stride, in place and in order.
		kept := cols[:0]
		keptJ := make([]int, 0, b)
		for j := range cols {
			if cols[j].rem == 0 {
				v := make([]float64, n)
				for x := 0; x < n; x++ {
					v[x] = pm[x*b+j]
				}
				solves[cols[j].idx].vec = v
			} else {
				kept = append(kept, cols[j])
				keptJ = append(keptJ, j)
			}
		}
		nb := len(kept)
		if nb > 0 && nb < b {
			for x := 0; x < n; x++ {
				for newj, oldj := range keptJ {
					pm[x*nb+newj] = pm[x*b+oldj]
				}
			}
		}
		cols = kept
		b = nb
	}
}

// fixedPointCol reports whether column j is bitwise identical in p and
// next. Early exit on the first differing node keeps the common
// (unconverged) case nearly free.
func fixedPointCol(p, next []float64, b, j, n int) bool {
	for x := 0; x < n; x++ {
		if p[x*b+j] != next[x*b+j] {
			return false
		}
	}
	return true
}
