// Package ppr implements Personalized PageRank over a knowledge graph with
// the informativeness-weighted transition matrix of Section 3.1.
//
// Following Eq. 1, the walker leaves node j along edge (j, i) with
// probability proportional to the weight of the edge's label,
// w(l) = 1 − |E_l|/|E|: the rarer the label, the more informative, the more
// likely the step. The PageRank vector solves (Eq. 2)
//
//	p = c·Ã·p + (1 − c)·v
//
// by power iteration, where Ã is the column-normalized transposed weighted
// adjacency, c the damping factor, and v the personalization vector.
//
// This is the paper's RandomWalk baseline for context selection: one full
// PageRank per query node (v = e_n for each n ∈ Q individually), summed,
// then the top-k nodes excluding the query form the context.
package ppr

import (
	"sync"

	"repro/internal/kg"
	"repro/internal/topk"
)

// Options configures a PageRank computation. The zero value selects the
// paper's defaults.
type Options struct {
	// Damping is the restart parameter c in Eq. 2. The paper sets 0.8 in
	// line with previous work (its experiments also mention 0.2 for the
	// baseline; both are reproducible by setting this field). Default 0.8.
	Damping float64
	// Iterations of power iteration. The paper uses 10. Default 10.
	Iterations int
	// Uniform disables informativeness weighting and walks uniformly over
	// out-edges — the ablation of Eq. 1's weighting.
	Uniform bool
	// Parallelism bounds the number of concurrent per-seed computations in
	// PersonalizedSum. 0 means one goroutine per seed.
	Parallelism int
}

// withDefaults fills unset fields with the paper's parameters.
func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.8
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	return o
}

// Personalized computes the PageRank vector for a single personalization
// distribution v given as a sparse set of seed nodes with uniform mass.
// The returned slice has one score per node.
func Personalized(g *kg.Graph, seeds []kg.NodeID, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	p := make([]float64, n)
	next := make([]float64, n)
	if n == 0 || len(seeds) == 0 {
		return p
	}

	v := make([]float64, n)
	mass := 1 / float64(len(seeds))
	for _, s := range seeds {
		v[s] += mass
	}
	copy(p, v)

	c := opt.Damping
	for it := 0; it < opt.Iterations; it++ {
		for i := range next {
			next[i] = 0
		}
		dangling := 0.0
		for from := 0; from < n; from++ {
			pf := p[from]
			if pf == 0 {
				continue
			}
			adj := g.OutEdges(kg.NodeID(from))
			if len(adj) == 0 {
				dangling += pf
				continue
			}
			if opt.Uniform {
				share := c * pf / float64(len(adj))
				for _, e := range adj {
					next[e.To] += share
				}
				continue
			}
			wd := g.WeightedOutDegree(kg.NodeID(from))
			if wd <= 0 {
				// All labels at weight 0 (single-label graph): fall back
				// to uniform so mass is not silently dropped.
				share := c * pf / float64(len(adj))
				for _, e := range adj {
					next[e.To] += share
				}
				continue
			}
			base := c * pf / wd
			for _, e := range adj {
				next[e.To] += base * g.LabelWeight(e.Label)
			}
		}
		// Teleport: restart mass plus mass stranded on dangling nodes.
		restart := (1 - c) + c*dangling
		for i := range next {
			next[i] += restart * v[i]
		}
		p, next = next, p
	}
	return p
}

// PersonalizedSum runs Personalized once per seed (the paper computes "the
// PageRank starting from each node in the query ... individually") and
// returns the element-wise sum of the resulting vectors. Runs are
// independent and execute concurrently.
func PersonalizedSum(g *kg.Graph, seeds []kg.NodeID, opt Options) []float64 {
	n := g.NumNodes()
	sum := make([]float64, n)
	if len(seeds) == 0 {
		return sum
	}
	workers := opt.Parallelism
	if workers <= 0 || workers > len(seeds) {
		workers = len(seeds)
	}
	results := make([][]float64, len(seeds))
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i, s := range seeds {
		wg.Add(1)
		go func(i int, s kg.NodeID) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			results[i] = Personalized(g, []kg.NodeID{s}, opt)
		}(i, s)
	}
	wg.Wait()
	for _, r := range results {
		for i, sc := range r {
			sum[i] += sc
		}
	}
	return sum
}

// TopK returns the k highest-ranked nodes by PersonalizedSum, excluding the
// seed nodes themselves — the RandomWalk baseline's context set.
func TopK(g *kg.Graph, seeds []kg.NodeID, k int, opt Options) []topk.Item {
	scores := PersonalizedSum(g, seeds, opt)
	skip := make(map[uint32]bool, len(seeds))
	for _, s := range seeds {
		skip[s] = true
	}
	// Nodes never touched by the walk (score 0) are not meaningful context
	// candidates; offering them anyway is harmless because any touched node
	// outranks them, but filtering keeps deterministic tie-breaks among
	// genuinely reachable nodes only.
	sel := topk.New(k)
	for id, sc := range scores {
		if sc == 0 || skip[uint32(id)] {
			continue
		}
		sel.Offer(uint32(id), sc)
	}
	return sel.Ranked()
}
