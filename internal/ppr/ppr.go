// Package ppr implements Personalized PageRank over a knowledge graph with
// the informativeness-weighted transition matrix of Section 3.1.
//
// Following Eq. 1, the walker leaves node j along edge (j, i) with
// probability proportional to the weight of the edge's label,
// w(l) = 1 − |E_l|/|E|: the rarer the label, the more informative, the more
// likely the step. The PageRank vector solves (Eq. 2)
//
//	p = c·Ã·p + (1 − c)·v
//
// by power iteration, where Ã is the column-normalized transposed weighted
// adjacency, c the damping factor, and v the personalization vector.
//
// This is the paper's RandomWalk baseline for context selection: one full
// PageRank per query node (v = e_n for each n ∈ Q individually), summed,
// then the top-k nodes excluding the query form the context.
//
// # Implementation
//
// Real knowledge graphs are sparse with heavy-tailed degrees, so for the
// first iterations the walk touches only the seed's neighbourhood — a
// tiny fraction of V. The power iteration therefore starts by tracking a
// sparse frontier (the touched-node list of the current vector) instead
// of scanning all n nodes, and switches one-way to flat dense sweeps
// (kg.TransitionCSR.GatherStep) once the frontier saturates past
// NumNodes/denseSwitchDivisor (see that constant for the crossover
// rationale), where frontier bookkeeping costs more than it saves. The
// saturated gather runs row-partitioned over Options.Parallelism workers
// — rows are independent, so every worker count produces bitwise
// identical vectors. Both regimes read per-edge transition probabilities
// from the graph's precomputed kg.TransitionCSR rather than recomputing
// w(l)/wdeg per edge per iteration, and the teleport term is applied
// sparsely over the seeds. Scratch vectors are recycled through a
// sync.Pool and cleared sparsely, so a steady-state Personalized call
// allocates only its result slice.
//
// PersonalizedSum processes seeds in blocks on a bounded worker pool:
// memory is O(workers·n) rather than O(seeds·n), and per-seed vectors are
// folded into the running sum in ascending seed order, so results are
// bitwise identical for every Parallelism setting.
//
// PersonalizedSumMulti (multi.go) batches many queries into one
// multi-source solve — unique seeds solved once, dense tails blocked
// through the multi-vector gather kernel — bitwise identical to per-query
// PersonalizedSum calls.
//
// Options.SeedCache (seedcache.go) extends the same amortization across
// sequential calls: single-seed vectors are memoized in a byte-budgeted
// store, so a query overlapping an earlier one — interactive refinement,
// the add-one-entity/re-search loop — solves only its new seeds. Cache
// state, like batching and parallelism, never changes a bit of any
// result.
package ppr

import (
	"context"
	"runtime"
	"sync"
	"time"

	"repro/internal/kg"
	"repro/internal/obs"
	"repro/internal/qcache"
	"repro/internal/topk"
)

// Options configures a PageRank computation. The zero value selects the
// paper's defaults.
type Options struct {
	// Damping is the restart parameter c in Eq. 2. The paper sets 0.8 in
	// line with previous work (its experiments also mention 0.2 for the
	// baseline; both are reproducible by setting this field). Default 0.8.
	Damping float64
	// Iterations of power iteration. The paper uses 10. Default 10.
	Iterations int
	// Uniform disables informativeness weighting and walks uniformly over
	// out-edges — the ablation of Eq. 1's weighting.
	Uniform bool
	// Parallelism bounds the total worker budget: PersonalizedSum's
	// per-seed pool, and within each run the row-partitioned parallel
	// gather of the saturated dense regime (seed workers × gather workers
	// never exceeds it). 0 uses GOMAXPROCS. Results are bitwise identical
	// for every setting.
	Parallelism int

	// SeedCache, when non-nil, memoizes single-seed PageRank vectors
	// across PersonalizedSum and PersonalizedSumMulti calls (stored under
	// qcache.LayerSeed, byte-accounted): each distinct seed consults the
	// cache first and only the misses are solved, so sequential
	// overlapping queries — interactive refinement — pay one solve per
	// new seed instead of one per query seed. Caching never changes
	// results: cached and fresh vectors carry identical bits and fold in
	// the same order (see seedcache.go). Keys fold Damping, Iterations,
	// Uniform, and CacheTag.
	SeedCache *qcache.Cache

	// CacheTag is folded verbatim into every seed-cache key. Callers
	// serving a mutable graph put the graph's epoch here so vectors
	// solved against one epoch are never replayed against another;
	// single-graph callers may leave it empty.
	CacheTag string

	// SolveObs, when non-nil, receives one observation per
	// PersonalizedSum(Ctx) call and one per multi-source batch solve —
	// the wall time of the whole solve, cache consults included (a fully
	// cached resolve is still a solve the caller waited on). Observation
	// is a few atomic adds; nil costs one branch.
	SolveObs *obs.Histogram

	// gatherWorkers is the resolved per-run gather parallelism, set by the
	// exported entry points before personalizedInto runs.
	gatherWorkers int
}

// withDefaults fills unset fields with the paper's parameters.
func (o Options) withDefaults() Options {
	if o.Damping == 0 {
		o.Damping = 0.8
	}
	if o.Iterations == 0 {
		o.Iterations = 10
	}
	return o
}

// workspace holds the dense iteration state of one PageRank run. All
// slices are zero outside the recorded touched/seed lists (the whole
// vector once dense is set), an invariant maintained by reset so pooled
// workspaces start clean.
type workspace struct {
	p, next []float64
	v       []float64   // personalization, nonzero only at seeds
	touched []kg.NodeID // nodes with p != 0 (unused once dense)
	nextT   []kg.NodeID // nodes with next != 0 (scratch for the sweep)
	seeds   []kg.NodeID // deduplicated seed list
	n       int         // graph size of the current run
	dense   bool        // the run saturated and switched to dense sweeps
}

var wsPool sync.Pool

// getWorkspace returns a zeroed workspace with capacity for n nodes.
func getWorkspace(n int) *workspace {
	ws, _ := wsPool.Get().(*workspace)
	if ws == nil {
		ws = &workspace{}
	}
	if len(ws.p) < n {
		ws.p = make([]float64, n)
		ws.next = make([]float64, n)
		ws.v = make([]float64, n)
	}
	return ws
}

// reset clears the workspace back to all-zero state — sparsely via the
// touched list, or with one full sweep if the run went dense.
func (ws *workspace) reset() {
	if ws.dense {
		// Gather sweeps overwrite instead of accumulate, so both vectors
		// may hold stale values after a dense run.
		clear(ws.p[:ws.n])
		clear(ws.next[:ws.n])
		ws.dense = false
	} else {
		for _, u := range ws.touched {
			ws.p[u] = 0
		}
	}
	for _, s := range ws.seeds {
		ws.v[s] = 0
	}
	ws.touched = ws.touched[:0]
	ws.nextT = ws.nextT[:0]
	ws.seeds = ws.seeds[:0]
}

// release resets the workspace and returns it to the pool.
func (ws *workspace) release() {
	ws.reset()
	wsPool.Put(ws)
}

// denseSwitchDivisor controls the sparse→dense handoff: an iteration runs
// dense once the frontier exceeds NumNodes/denseSwitchDivisor. The gather
// sweep costs O(E) regardless of support, while the sparse sweep pays
// several times more per frontier edge for its bookkeeping (zero checks,
// touched appends, scattered writes), so the crossover sits well below
// half the graph. Support only grows (the teleport re-injects the seeds
// every iteration), so the switch is one-way.
const denseSwitchDivisor = 6

// personalizedInto runs the hybrid power iteration, leaving the final
// vector in ws.p — with its support in ws.touched, or dense (ws.dense)
// if the frontier saturated. opt must already carry defaults; the caller
// owns ws and must reset or release it after consuming the result.
//
// The run is two phases: the sparse phase walks the frontier until it
// saturates (or the iteration budget runs out), then every remaining
// iteration is a dense step. PersonalizedSumMulti drives the same two
// phases but hands the dense tail to the blocked multi-vector kernel, so
// both paths share each phase's code — and therefore its bits.
//
// Cancellation is checked between sweeps: once ctx is done the run stops
// mid-schedule and leaves a partial vector in ws, so callers must consult
// ctx.Err() before using (or caching) the result.
func personalizedInto(ctx context.Context, g *kg.Graph, seeds []kg.NodeID, opt Options, ws *workspace) {
	ws.init(g, seeds)
	var tr *kg.TransitionCSR
	if !opt.Uniform {
		tr = g.Transitions()
	}
	it := ws.sparsePhase(ctx, g, tr, opt, opt.Iterations)
	for ; it < opt.Iterations; it++ {
		if ctx.Err() != nil {
			return
		}
		ws.denseStep(g, tr, opt)
	}
}

// init distributes the personalization mass over the (deduplicated) seeds
// and plants the initial frontier.
func (ws *workspace) init(g *kg.Graph, seeds []kg.NodeID) {
	ws.n = g.NumNodes()
	mass := 1 / float64(len(seeds))
	for _, s := range seeds {
		if ws.v[s] == 0 {
			ws.seeds = append(ws.seeds, s)
		}
		ws.v[s] += mass
	}
	for _, s := range ws.seeds {
		ws.p[s] = ws.v[s]
		ws.touched = append(ws.touched, s)
	}
}

// sparsePhase runs power iterations in the frontier-sparse regime until
// the frontier saturates — setting ws.dense without running that
// iteration — or limit iterations complete, or ctx is cancelled (the
// caller detects that case via ctx.Err(), never through the return
// value). Returns the number of iterations run. The final vector is in
// ws.p with support ws.touched.
func (ws *workspace) sparsePhase(ctx context.Context, g *kg.Graph, tr *kg.TransitionCSR, opt Options, limit int) int {
	c := opt.Damping
	p, next := ws.p, ws.next
	touched, nextT := ws.touched, ws.nextT[:0]
	it := 0
	for ; it < limit; it++ {
		if ctx.Err() != nil {
			break
		}
		if len(touched)*denseSwitchDivisor >= ws.n {
			ws.dense = true
			break
		}
		dangling := sparseSweep(g, tr, p, next, touched, &nextT, c, opt.Uniform)
		// Teleport: restart mass plus mass stranded on dangling nodes,
		// distributed over the personalization — only seeds are nonzero.
		restart := (1 - c) + c*dangling
		for _, s := range ws.seeds {
			if next[s] == 0 {
				nextT = append(nextT, s)
			}
			next[s] += restart * ws.v[s]
		}
		for _, u := range touched {
			p[u] = 0
		}
		p, next = next, p
		touched, nextT = nextT, touched[:0]
	}
	ws.p, ws.next = p, next
	ws.touched, ws.nextT = touched, nextT
	return it
}

// denseStep runs one saturated iteration — a full gather (or accumulate
// sweep for the uniform ablation) plus the teleport — leaving the new
// vector in ws.p. ws.touched is not maintained in the dense regime.
func (ws *workspace) denseStep(g *kg.Graph, tr *kg.TransitionCSR, opt Options) {
	c := opt.Damping
	var dangling float64
	if opt.Uniform {
		dangling = ws.uniformDenseSweep(g, ws.p, ws.next, c)
	} else {
		// Gather overwrites next outright — no pre-zeroing needed.
		dangling = tr.GatherStepParallel(ws.next, ws.p, c, opt.gatherWorkers)
	}
	restart := (1 - c) + c*dangling
	for _, s := range ws.seeds {
		ws.next[s] += restart * ws.v[s]
	}
	if opt.Uniform {
		// The uniform dense sweep accumulates, so the vector it will
		// reuse as next must go back to zero. Weighted dense sweeps
		// overwrite: stale p is reused as-is.
		clear(ws.p[:ws.n])
	}
	ws.p, ws.next = ws.next, ws.p
}

// sparseSweep propagates one step over the frontier only, appending the
// support of next to *nextT. Used while the walk touches a small fraction
// of the graph.
func sparseSweep(g *kg.Graph, tr *kg.TransitionCSR, p, next []float64, touched []kg.NodeID, nextT *[]kg.NodeID, c float64, uniform bool) float64 {
	nt := *nextT
	dangling := 0.0
	for _, from := range touched {
		pf := p[from]
		adj := g.OutEdges(from)
		if len(adj) == 0 {
			dangling += pf
			continue
		}
		cpf := c * pf
		if uniform {
			share := cpf / float64(len(adj))
			for _, e := range adj {
				if next[e.To] == 0 {
					nt = append(nt, e.To)
				}
				next[e.To] += share
			}
			continue
		}
		probs := tr.Probs(from)
		for i, e := range adj {
			share := cpf * probs[i]
			if share == 0 {
				continue // zero-weight label: no mass, keep nextT exact
			}
			if next[e.To] == 0 {
				nt = append(nt, e.To)
			}
			next[e.To] += share
		}
	}
	*nextT = nt
	return dangling
}

// uniformDenseSweep propagates one uniform-walk step with a full
// accumulate sweep — the saturated regime of the Uniform ablation; the
// weighted saturated regime uses kg.TransitionCSR.GatherStep instead.
func (ws *workspace) uniformDenseSweep(g *kg.Graph, p, next []float64, c float64) float64 {
	dangling := 0.0
	for from := 0; from < ws.n; from++ {
		pf := p[from]
		if pf == 0 {
			continue
		}
		adj := g.OutEdges(kg.NodeID(from))
		if len(adj) == 0 {
			dangling += pf
			continue
		}
		share := c * pf / float64(len(adj))
		for _, e := range adj {
			next[e.To] += share
		}
	}
	return dangling
}

// Personalized computes the PageRank vector for a single personalization
// distribution v given as a sparse set of seed nodes with uniform mass.
// The returned slice has one score per node.
func Personalized(g *kg.Graph, seeds []kg.NodeID, opt Options) []float64 {
	opt = opt.withDefaults()
	opt.gatherWorkers = opt.Parallelism
	if opt.gatherWorkers <= 0 {
		opt.gatherWorkers = runtime.GOMAXPROCS(0)
	}
	n := g.NumNodes()
	if n == 0 || len(seeds) == 0 {
		return make([]float64, n)
	}
	ws := getWorkspace(n)
	personalizedInto(context.Background(), g, seeds, opt, ws)
	if ws.dense && len(ws.p) == n {
		// Steal the dense result and hand the workspace a fresh zero
		// vector in its place — cheaper than copying it out and clearing
		// it back to zero.
		out := ws.p
		ws.p = make([]float64, n)
		clear(ws.next[:n])
		ws.dense = false
		ws.release()
		return out
	}
	out := make([]float64, n)
	if ws.dense {
		copy(out, ws.p[:n])
	} else {
		for _, u := range ws.touched {
			out[u] = ws.p[u]
		}
	}
	ws.release()
	return out
}

// PersonalizedSum runs Personalized once per seed (the paper computes "the
// PageRank starting from each node in the query ... individually") and
// returns the element-wise sum of the resulting vectors.
//
// Seeds are processed in blocks of Parallelism workers, each folding its
// per-seed vector into the sum in ascending seed order, so the result is
// bitwise identical for every Parallelism setting while peak memory stays
// at O(workers·n). With Options.SeedCache set, per-seed vectors are
// served from the cache when present and stored after solving, and only
// the missing seeds enter the pool — the interactive-refinement fast
// path; the fold replicates the cacheless additions exactly, so every
// cache state returns the same bits.
func PersonalizedSum(g *kg.Graph, seeds []kg.NodeID, opt Options) []float64 {
	return PersonalizedSumCtx(context.Background(), g, seeds, opt)
}

// PersonalizedSumCtx is PersonalizedSum under a cancellation context:
// every solve checks ctx between power-iteration sweeps, so a dropped
// request stops burning CPU within one sweep. Once ctx is done the
// returned vector is partial and meaningless — callers must treat
// ctx.Err() != nil as "no result" — and nothing partial is ever stored in
// the seed cache. While ctx stays live the output is bitwise identical to
// PersonalizedSum.
func PersonalizedSumCtx(ctx context.Context, g *kg.Graph, seeds []kg.NodeID, opt Options) []float64 {
	if opt.SolveObs == nil {
		return personalizedSumCtx(ctx, g, seeds, opt)
	}
	start := time.Now()
	sum := personalizedSumCtx(ctx, g, seeds, opt)
	opt.SolveObs.Observe(time.Since(start))
	return sum
}

// personalizedSumCtx is PersonalizedSumCtx without the stage timer.
func personalizedSumCtx(ctx context.Context, g *kg.Graph, seeds []kg.NodeID, opt Options) []float64 {
	opt = opt.withDefaults()
	n := g.NumNodes()
	sum := make([]float64, n)
	if n == 0 || len(seeds) == 0 {
		return sum
	}
	budget := opt.Parallelism
	if budget <= 0 {
		budget = runtime.GOMAXPROCS(0)
	}
	if opt.SeedCache != nil {
		vecs := resolveSeedVecs(ctx, g, seeds, opt, budget)
		if ctx.Err() != nil {
			// Some claimed entries may be nil (their solve was abandoned);
			// the caller discards the sum anyway.
			return sum
		}
		// Fold in seed-list order — the same per-slot addition sequence as
		// the workspace fold below, whichever mix of cached and fresh
		// vectors resolved.
		for _, s := range seeds {
			vecs[s].foldInto(sum)
		}
		return sum
	}
	workers := budget
	if workers > len(seeds) {
		workers = len(seeds)
	}
	// Cores left over by a small seed set go to the dense gather inside
	// each run; seed workers × gather workers stays within the budget.
	opt.gatherWorkers = budget / workers
	wss := make([]*workspace, workers)
	for i := range wss {
		wss[i] = getWorkspace(n)
	}
	for base := 0; base < len(seeds) && ctx.Err() == nil; base += workers {
		m := len(seeds) - base
		if m > workers {
			m = workers
		}
		runSeedBlock(ctx, g, seeds[base:base+m], opt, wss[:m])
		// Fold in ascending seed order: addition order per element is the
		// same as a sequential loop, for any worker count.
		for j := 0; j < m; j++ {
			ws := wss[j]
			if ws.dense {
				for i, x := range ws.p[:n] {
					if x != 0 {
						sum[i] += x
					}
				}
			} else {
				for _, u := range ws.touched {
					sum[u] += ws.p[u]
				}
			}
			ws.reset()
		}
	}
	for _, ws := range wss {
		ws.release()
	}
	return sum
}

// runSeedBlock solves one single-seed run per seed concurrently, each
// into its own workspace — the worker block shared by the cacheless pool
// and the seed-cache miss path. Cancellation leaves partial workspaces;
// callers check ctx before extracting or caching anything from them.
func runSeedBlock(ctx context.Context, g *kg.Graph, seeds []kg.NodeID, opt Options, wss []*workspace) {
	var wg sync.WaitGroup
	wg.Add(len(seeds))
	for j := range seeds {
		go func(j int) {
			defer wg.Done()
			personalizedInto(ctx, g, seeds[j:j+1], opt, wss[j])
		}(j)
	}
	wg.Wait()
}

// TopK returns the k highest-ranked nodes by PersonalizedSum, excluding the
// seed nodes themselves — the RandomWalk baseline's context set.
func TopK(g *kg.Graph, seeds []kg.NodeID, k int, opt Options) []topk.Item {
	scores := PersonalizedSum(g, seeds, opt)
	skip := make(map[uint32]bool, len(seeds))
	for _, s := range seeds {
		skip[s] = true
	}
	// Nodes never touched by the walk (score 0) are not meaningful context
	// candidates; offering them anyway is harmless because any touched node
	// outranks them, but filtering keeps deterministic tie-breaks among
	// genuinely reachable nodes only.
	sel := topk.New(k)
	for id, sc := range scores {
		if sc == 0 || skip[uint32(id)] {
			continue
		}
		sel.Offer(uint32(id), sc)
	}
	return sel.Ranked()
}
