package ppr

import (
	"math/rand"
	"testing"

	"repro/internal/gen"
	"repro/internal/kg"
)

// batchQueries builds nq random queries of 1..maxLen seeds with heavy
// overlap (seeds drawn from a small pool), the workload the batch path is
// built for.
func batchQueries(rng *rand.Rand, nq, maxLen, nodes int) [][]kg.NodeID {
	pool := make([]kg.NodeID, 1+nodes/10)
	for i := range pool {
		pool[i] = kg.NodeID(rng.Intn(nodes))
	}
	queries := make([][]kg.NodeID, nq)
	for i := range queries {
		q := make([]kg.NodeID, 1+rng.Intn(maxLen))
		for j := range q {
			q[j] = pool[rng.Intn(len(pool))]
		}
		queries[i] = q
	}
	return queries
}

// TestPersonalizedSumMultiMatchesSequentialBitwise: the batched solve must
// reproduce per-query PersonalizedSum bit for bit — across graph shapes
// (sparse-only and saturating solves), batch sizes, duplicate seeds within
// a query, shared seeds across queries, and every Parallelism setting.
func TestPersonalizedSumMultiMatchesSequentialBitwise(t *testing.T) {
	shapes := []struct{ nodes, edges int }{
		{40, 80},      // tiny: saturates instantly
		{400, 1600},   // mixed sparse/dense switch points
		{2000, 12000}, // clears the parallel-gather threshold when dense
	}
	defer func(v int64) { multiDenseMinEdges = v }(multiDenseMinEdges)
	for _, kernel := range []bool{false, true} {
		if kernel {
			multiDenseMinEdges = 0 // force the blocked kernel on small graphs
		} else {
			multiDenseMinEdges = 1 << 62 // force the per-seed serial tail
		}
		for _, sh := range shapes {
			g := randomGraph(sh.nodes, sh.edges, 17)
			rng := rand.New(rand.NewSource(int64(sh.nodes)))
			for _, nq := range []int{1, 3, 16} {
				queries := batchQueries(rng, nq, 4, g.NumNodes())
				for _, par := range []int{1, 4} {
					opt := Options{Parallelism: par}
					got := PersonalizedSumMulti(g, queries, opt)
					if len(got) != len(queries) {
						t.Fatalf("%d nodes nq=%d: %d results", sh.nodes, nq, len(got))
					}
					for qi, q := range queries {
						want := PersonalizedSum(g, q, opt)
						for i := range want {
							if got[qi][i] != want[i] {
								t.Fatalf("%d nodes nq=%d par=%d kernel=%v query %d node %d: batch %v != sequential %v",
									sh.nodes, nq, par, kernel, qi, i, got[qi][i], want[i])
							}
						}
					}
				}
			}
		}
	}
}

// TestPersonalizedSumMultiUniform: the uniform ablation takes the
// per-query fallback and must still match exactly.
func TestPersonalizedSumMultiUniform(t *testing.T) {
	g := randomGraph(300, 1200, 5)
	queries := [][]kg.NodeID{{1, 2}, {2, 3, 3}, {7}}
	opt := Options{Uniform: true}
	got := PersonalizedSumMulti(g, queries, opt)
	for qi, q := range queries {
		want := PersonalizedSum(g, q, opt)
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("uniform query %d node %d: %v != %v", qi, i, got[qi][i], want[i])
			}
		}
	}
}

// TestPersonalizedSumMultiEdgeCases: empty batch, empty queries, and an
// empty graph must mirror the sequential behavior.
func TestPersonalizedSumMultiEdgeCases(t *testing.T) {
	g := randomGraph(50, 200, 9)
	if got := PersonalizedSumMulti(g, nil, Options{}); len(got) != 0 {
		t.Fatalf("nil batch: %d results", len(got))
	}
	got := PersonalizedSumMulti(g, [][]kg.NodeID{{}, {3}}, Options{})
	for i, x := range got[0] {
		if x != 0 {
			t.Fatalf("empty query node %d = %v, want 0", i, x)
		}
	}
	want := PersonalizedSum(g, []kg.NodeID{3}, Options{})
	for i := range want {
		if got[1][i] != want[i] {
			t.Fatalf("node %d: %v != %v", i, got[1][i], want[i])
		}
	}
	empty := kg.NewBuilder(0).Build()
	if got := PersonalizedSumMulti(empty, [][]kg.NodeID{{}}, Options{}); len(got) != 1 || len(got[0]) != 0 {
		t.Fatalf("empty graph: %+v", got)
	}
}

// TestPersonalizedSumMultiConvergenceDropout: on a high-iteration run the
// fixed-point dropout must not change a bit — dropping a converged column
// is only legal because iterating it further reproduces the same vector.
func TestPersonalizedSumMultiConvergenceDropout(t *testing.T) {
	defer func(v int64) { multiDenseMinEdges = v }(multiDenseMinEdges)
	multiDenseMinEdges = 0 // dropout lives in the blocked kernel path
	// A small dense-ish graph saturates early and converges within the
	// generous iteration budget, exercising the dropout.
	g := randomGraph(60, 600, 3)
	queries := [][]kg.NodeID{{1}, {2}, {1, 2, 3}, {4, 5}}
	opt := Options{Iterations: 300}
	got := PersonalizedSumMulti(g, queries, opt)
	for qi, q := range queries {
		want := PersonalizedSum(g, q, opt)
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("query %d node %d: %v != %v", qi, i, got[qi][i], want[i])
			}
		}
	}
}

// TestPersonalizedSumMultiYago pins the batch path on the benchmark
// workload: nested actor/politician queries over the half-scale YAGO-like
// graph.
func TestPersonalizedSumMultiYago(t *testing.T) {
	d := gen.YAGOLike(gen.YAGOConfig{Seed: 42, Scale: 0.5})
	g := d.Graph
	var queries [][]kg.NodeID
	for size := 2; size <= 6; size++ {
		q, err := d.Scenario("actors").QueryIDs(g, size)
		if err != nil {
			t.Fatal(err)
		}
		queries = append(queries, q)
	}
	got := PersonalizedSumMulti(g, queries, Options{})
	for qi, q := range queries {
		want := PersonalizedSum(g, q, Options{})
		for i := range want {
			if got[qi][i] != want[i] {
				t.Fatalf("query %d node %d: batch %v != sequential %v", qi, i, got[qi][i], want[i])
			}
		}
	}
}
