package ppr

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/kg"
)

// chain builds a -p-> b -p-> c -p-> d (plus automatic inverses).
func chain() *kg.Graph {
	b := kg.NewBuilder(4)
	b.AddEdge("a", "p", "b")
	b.AddEdge("b", "p", "c")
	b.AddEdge("c", "p", "d")
	return b.Build()
}

// star builds hub -p-> leaf0..leaf4.
func star() *kg.Graph {
	b := kg.NewBuilder(8)
	for _, leaf := range []string{"l0", "l1", "l2", "l3", "l4"} {
		b.AddEdge("hub", "p", leaf)
	}
	return b.Build()
}

func TestMassConservation(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	p := Personalized(g, []kg.NodeID{a}, Options{})
	sum := 0.0
	for _, s := range p {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("mass = %v, want 1", sum)
	}
}

func TestSeedHasHighestScoreWithStrongRestart(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	p := Personalized(g, []kg.NodeID{a}, Options{Damping: 0.2})
	for i, s := range p {
		if kg.NodeID(i) != a && s >= p[a] {
			t.Fatalf("node %d score %v >= seed score %v", i, s, p[a])
		}
	}
}

func TestProximityOrdering(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	bn, _ := g.NodeByName("b")
	d, _ := g.NodeByName("d")
	p := Personalized(g, []kg.NodeID{a}, Options{})
	if p[bn] <= p[d] {
		t.Fatalf("nearer node b (%v) should outrank far node d (%v)", p[bn], p[d])
	}
}

func TestEmptySeedsAndEmptyGraph(t *testing.T) {
	g := chain()
	if p := Personalized(g, nil, Options{}); len(p) != g.NumNodes() {
		t.Fatal("empty seeds should return zero vector of graph size")
	}
	empty := kg.NewBuilder(0).Build()
	if p := Personalized(empty, nil, Options{}); len(p) != 0 {
		t.Fatal("empty graph should return empty vector")
	}
}

func TestIsolatedSeedKeepsMass(t *testing.T) {
	b := kg.NewBuilder(2)
	b.Node("loner")
	b.AddEdge("a", "p", "b")
	g := b.Build()
	loner, _ := g.NodeByName("loner")
	p := Personalized(g, []kg.NodeID{loner}, Options{})
	sum := 0.0
	for _, s := range p {
		sum += s
	}
	if math.Abs(sum-1) > 1e-9 {
		t.Fatalf("dangling mass lost: sum = %v", sum)
	}
	if math.Abs(p[loner]-1) > 1e-9 {
		t.Fatalf("isolated seed score = %v, want 1", p[loner])
	}
}

func TestStarDistributesEvenlyUnderUniform(t *testing.T) {
	g := star()
	hub, _ := g.NodeByName("hub")
	p := Personalized(g, []kg.NodeID{hub}, Options{Uniform: true})
	l0, _ := g.NodeByName("l0")
	for _, name := range []string{"l1", "l2", "l3", "l4"} {
		n, _ := g.NodeByName(name)
		if math.Abs(p[n]-p[l0]) > 1e-12 {
			t.Fatalf("leaf %s score %v != leaf l0 score %v", name, p[n], p[l0])
		}
	}
}

func TestWeightingPrefersRareLabel(t *testing.T) {
	// hub has many "common" edges and one "rare" edge; the rare label is
	// more informative so its target should score higher.
	b := kg.NewBuilder(16)
	for i := 0; i < 9; i++ {
		b.AddEdge("hub", "common", nodeName(i))
	}
	b.AddEdge("hub", "rare", "special")
	g := b.Build()
	hub, _ := g.NodeByName("hub")
	special, _ := g.NodeByName("special")
	ordinary, _ := g.NodeByName(nodeName(0))
	p := Personalized(g, []kg.NodeID{hub}, Options{})
	if p[special] <= p[ordinary] {
		t.Fatalf("rare-label target %v should outrank common-label target %v",
			p[special], p[ordinary])
	}
	// Under uniform walking they should tie instead.
	pu := Personalized(g, []kg.NodeID{hub}, Options{Uniform: true})
	if math.Abs(pu[special]-pu[ordinary]) > 1e-12 {
		t.Fatalf("uniform walk should not prefer rare label: %v vs %v",
			pu[special], pu[ordinary])
	}
}

func TestPersonalizedSumMatchesSequential(t *testing.T) {
	g := randomGraph(500, 2000, 77)
	seeds := []kg.NodeID{1, 5, 9, 13}
	sum := PersonalizedSum(g, seeds, Options{})
	want := make([]float64, g.NumNodes())
	for _, s := range seeds {
		p := Personalized(g, []kg.NodeID{s}, Options{})
		for i, sc := range p {
			want[i] += sc
		}
	}
	for i := range want {
		if math.Abs(sum[i]-want[i]) > 1e-12 {
			t.Fatalf("node %d: parallel %v vs sequential %v", i, sum[i], want[i])
		}
	}
}

func TestPersonalizedSumParallelismBound(t *testing.T) {
	g := randomGraph(100, 300, 3)
	seeds := []kg.NodeID{0, 1, 2, 3, 4, 5}
	a := PersonalizedSum(g, seeds, Options{Parallelism: 1})
	b := PersonalizedSum(g, seeds, Options{Parallelism: 2})
	for i := range a {
		if math.Abs(a[i]-b[i]) > 1e-12 {
			t.Fatalf("parallelism changed results at node %d", i)
		}
	}
}

func TestTopKExcludesSeeds(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	items := TopK(g, []kg.NodeID{a}, 10, Options{})
	for _, it := range items {
		if kg.NodeID(it.ID) == a {
			t.Fatal("TopK returned a seed node")
		}
	}
	if len(items) == 0 {
		t.Fatal("TopK returned nothing")
	}
	for i := 1; i < len(items); i++ {
		if items[i].Score > items[i-1].Score {
			t.Fatal("TopK not sorted by descending score")
		}
	}
}

// Property: PageRank mass is conserved (sums to ~1) on arbitrary graphs.
func TestMassConservationProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(3+rng.Intn(60), 1+rng.Intn(200), seed)
		s := kg.NodeID(rng.Intn(g.NumNodes()))
		p := Personalized(g, []kg.NodeID{s}, Options{})
		sum := 0.0
		for _, sc := range p {
			sum += sc
		}
		return math.Abs(sum-1) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// Property: scores are non-negative.
func TestNonNegativeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		g := randomGraph(3+rng.Intn(40), 1+rng.Intn(100), seed+1)
		s := kg.NodeID(rng.Intn(g.NumNodes()))
		for _, sc := range Personalized(g, []kg.NodeID{s}, Options{}) {
			if sc < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

func randomGraph(nodes, edges int, seed int64) *kg.Graph {
	rng := rand.New(rand.NewSource(seed))
	b := kg.NewBuilder(edges)
	labels := []string{"p", "q", "r", "s"}
	for i := 0; i < nodes; i++ {
		b.Node(nodeNameN(i))
	}
	for i := 0; i < edges; i++ {
		b.AddEdge(nodeNameN(rng.Intn(nodes)), labels[rng.Intn(len(labels))], nodeNameN(rng.Intn(nodes)))
	}
	return b.Build()
}

func nodeName(i int) string { return string(rune('a' + i)) }

func nodeNameN(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}

func BenchmarkPersonalized(b *testing.B) {
	g := randomGraph(5000, 40000, 123)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Personalized(g, []kg.NodeID{kg.NodeID(i % 5000)}, Options{})
	}
}

func BenchmarkPersonalizedSum5Seeds(b *testing.B) {
	g := randomGraph(5000, 40000, 123)
	seeds := []kg.NodeID{1, 2, 3, 4, 5}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		PersonalizedSum(g, seeds, Options{})
	}
}
