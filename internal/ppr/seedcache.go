// Per-seed PageRank vector caching: the store behind the
// interactive-refinement fast path.
//
// PersonalizedSum is a fold of independent single-seed solves, so the
// expensive half of a query that overlaps an earlier one — re-running
// {A, B, C} after {A, B} — is redundant: every shared seed's vector is
// already known. When Options.SeedCache is set, PersonalizedSum and
// PersonalizedSumMulti consult it per seed (qcache.LayerSeed), solve only
// the misses, and fold cached and fresh vectors in seed-list order with
// the exact per-slot additions of the cacheless fold — so cache state
// never changes a bit of the output, only how much of it is recomputed.
//
// Cached vectors keep their solve's natural shape: a solve that stayed
// frontier-sparse stores its support list and values (often far below
// 8·n bytes), a saturated solve stores the dense vector. Entries are
// byte-accounted, so the seed layer's budget (the engine's
// SeedCacheBytes) bounds residency; keys fold damping, iterations, the
// uniform flag, and the caller's CacheTag — the graph epoch when the
// cache serves a live-mutable graph, so entries solved against one epoch
// are never replayed against another (the same epoch-keying contract as
// every other qcache layer).
package ppr

import (
	"context"
	"fmt"
	"strconv"

	"repro/internal/kg"
	"repro/internal/qcache"
)

// seedVec is one seed's materialized PageRank vector, in sparse
// (support + values) or dense form. Immutable once cached.
type seedVec struct {
	idx   []kg.NodeID // sparse support, nil when dense
	val   []float64   // sparse values aligned with idx
	dense []float64   // full vector, nil when sparse
}

// foldInto accumulates the vector into sum with exactly the additions of
// PersonalizedSum's workspace fold: touched-list order for sparse
// vectors, an ascending nonzero sweep for dense ones. Each slot receives
// one add per seed either way, so the fold is bitwise identical to the
// cacheless path.
func (v *seedVec) foldInto(sum []float64) {
	if v.dense != nil {
		for i, x := range v.dense {
			if x != 0 {
				sum[i] += x
			}
		}
		return
	}
	for i, u := range v.idx {
		sum[u] += v.val[i]
	}
}

// footprint estimates the entry's resident bytes for the cache's byte
// accounting.
func (v *seedVec) footprint(keyLen int) int64 {
	if v.dense != nil {
		return 8*int64(len(v.dense)) + int64(keyLen) + 64
	}
	return 12*int64(len(v.idx)) + int64(keyLen) + 64
}

// extractSeedVec converts a finished single-seed workspace into a
// seedVec — stealing the dense vector when the run saturated, copying the
// sparse support otherwise — and resets the workspace for reuse.
func extractSeedVec(ws *workspace, n int) *seedVec {
	var v *seedVec
	if ws.dense {
		if len(ws.p) == n {
			// Steal the dense result and hand the workspace a fresh zero
			// vector, exactly as Personalized does.
			v = &seedVec{dense: ws.p}
			ws.p = make([]float64, n)
		} else {
			d := make([]float64, n)
			copy(d, ws.p[:n])
			v = &seedVec{dense: d}
		}
	} else {
		idx := append([]kg.NodeID(nil), ws.touched...)
		val := make([]float64, len(idx))
		for i, u := range idx {
			val[i] = ws.p[u]
		}
		v = &seedVec{idx: idx, val: val}
	}
	ws.reset()
	return v
}

// seedKeyPrefix folds every option that can change a single-seed vector
// into the cache-key prefix, plus the caller's CacheTag (the graph epoch
// for mutable graphs). opt must already carry defaults.
func seedKeyPrefix(opt Options) string {
	return fmt.Sprintf("ppr|%s|d%v|i%d|u%t", opt.CacheTag, opt.Damping, opt.Iterations, opt.Uniform)
}

// seedKey is the cache key of one seed's vector under prefix.
func seedKey(prefix string, s kg.NodeID) string {
	return prefix + "|" + strconv.FormatUint(uint64(s), 10)
}

// resolveSeedVecs returns one materialized single-seed vector per
// distinct seed: cache hits are served as stored, misses are solved in
// parallel blocks of Options.Parallelism workers (each solve replaying
// exactly its solo schedule) and stored. opt must carry defaults and a
// non-nil SeedCache.
//
// Cancellation never corrupts the cache: a block whose solves were cut
// short by ctx is discarded wholesale — the check runs after the block's
// goroutines have all returned, and a solve only stops early once ctx is
// done, so complete-looking workspaces past a cancelled check can simply
// be dropped without storing. The map then keeps nil entries for the
// abandoned seeds; callers bail on ctx.Err() before folding.
func resolveSeedVecs(ctx context.Context, g *kg.Graph, seeds []kg.NodeID, opt Options, budget int) map[kg.NodeID]*seedVec {
	prefix := seedKeyPrefix(opt)
	vecs := make(map[kg.NodeID]*seedVec, len(seeds))
	var missing []kg.NodeID
	for _, s := range seeds {
		if _, seen := vecs[s]; seen {
			continue
		}
		if v, hit := opt.SeedCache.GetLayer(seedKey(prefix, s), qcache.LayerSeed); hit {
			vecs[s] = v.(*seedVec)
			continue
		}
		vecs[s] = nil // claimed; filled by the solve below
		missing = append(missing, s)
	}
	if len(missing) == 0 {
		return vecs
	}
	n := g.NumNodes()
	workers := budget
	if workers > len(missing) {
		workers = len(missing)
	}
	// Cores left over by a small miss set go to the dense gather inside
	// each run, exactly as the cacheless pool splits its budget.
	opt.gatherWorkers = budget / workers
	wss := make([]*workspace, workers)
	for i := range wss {
		wss[i] = getWorkspace(n)
	}
	for base := 0; base < len(missing); base += workers {
		m := len(missing) - base
		if m > workers {
			m = workers
		}
		runSeedBlock(ctx, g, missing[base:base+m], opt, wss[:m])
		if ctx.Err() != nil {
			// The block may hold partial vectors: store nothing, leave the
			// block's seeds nil, and let the caller discard the whole run.
			for j := 0; j < m; j++ {
				wss[j].reset()
			}
			break
		}
		for j := 0; j < m; j++ {
			s := missing[base+j]
			v := extractSeedVec(wss[j], n)
			vecs[s] = v
			key := seedKey(prefix, s)
			opt.SeedCache.PutSized(key, v, qcache.LayerSeed, v.footprint(len(key)))
		}
	}
	for _, ws := range wss {
		ws.release()
	}
	return vecs
}
