package ppr

import (
	"math"
	"testing"

	"repro/internal/kg"
)

// TestDampingExtremes: with damping near 0 the vector approaches the
// personalization; with damping near 1 mass spreads far from the seed.
func TestDampingExtremes(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	nearRestart := Personalized(g, []kg.NodeID{a}, Options{Damping: 1e-9, Iterations: 10})
	if nearRestart[a] < 0.999 {
		t.Fatalf("damping→0: seed mass %v, want ≈1", nearRestart[a])
	}
	spread := Personalized(g, []kg.NodeID{a}, Options{Damping: 0.99, Iterations: 50})
	if spread[a] > 0.5 {
		t.Fatalf("damping→1: seed kept %v of the mass", spread[a])
	}
}

// TestMoreIterationsConverge: successive iteration counts approach a fixed
// point — the change between 30 and 40 iterations is tiny.
func TestMoreIterationsConverge(t *testing.T) {
	g := randomGraph(80, 400, 5)
	s := kg.NodeID(3)
	p30 := Personalized(g, []kg.NodeID{s}, Options{Iterations: 30})
	p40 := Personalized(g, []kg.NodeID{s}, Options{Iterations: 40})
	diff := 0.0
	for i := range p30 {
		diff += math.Abs(p30[i] - p40[i])
	}
	if diff > 1e-3 {
		t.Fatalf("L1 change between 30 and 40 iterations = %v", diff)
	}
}

// TestMultiSeedPersonalization: seeds share the personalization mass.
func TestMultiSeedPersonalization(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	p := Personalized(g, []kg.NodeID{a, d}, Options{Damping: 1e-9})
	if math.Abs(p[a]-0.5) > 1e-6 || math.Abs(p[d]-0.5) > 1e-6 {
		t.Fatalf("two-seed restart masses = %v, %v; want 0.5 each", p[a], p[d])
	}
}

// TestDuplicateSeedsAccumulate: listing a seed twice doubles its restart
// mass relative to another seed.
func TestDuplicateSeedsAccumulate(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	d, _ := g.NodeByName("d")
	p := Personalized(g, []kg.NodeID{a, a, d}, Options{Damping: 1e-9})
	if !(p[a] > 1.9*p[d]) {
		t.Fatalf("duplicated seed mass %v vs %v", p[a], p[d])
	}
}

// TestTopKLimit respects k and never returns zero-score filler.
func TestTopKLimit(t *testing.T) {
	g := chain()
	a, _ := g.NodeByName("a")
	items := TopK(g, []kg.NodeID{a}, 2, Options{})
	if len(items) > 2 {
		t.Fatalf("TopK returned %d items", len(items))
	}
	for _, it := range items {
		if it.Score <= 0 {
			t.Fatal("zero-score item returned")
		}
	}
}
