// Package qcache provides the engine-level query cache: a bounded,
// thread-safe LRU keyed by canonicalized query strings, memoizing the
// expensive stages of a notable-characteristics search so repeated and
// overlapping queries — the heavy-traffic case — skip recomputation.
//
// # Layers
//
// One cache holds entries from several pipeline stages, distinguished by
// a Layer tag for per-layer accounting and budgeting: selector score
// vectors and ranked contexts (LayerSelector), per-label test records
// (LayerTest), single-seed PageRank vectors (LayerSeed), and Monte-Carlo
// null distributions (LayerNull). The cache itself treats layer values
// opaquely; layers exist so Stats can report residency and hit rates per
// stage and so a deployment can bound the big layers (seed vectors are
// ~8 bytes per graph node each) independently of the total budget.
//
// # Sharding
//
// The cache is optionally sharded shared-nothing: keys hash over 2^p
// shards, each with its own mutex, recency lists, and slice of every
// byte budget, so concurrent serving traffic from many goroutines does
// not serialize on one lock. Stats aggregates over the shards. Sharding
// trades exactness for concurrency: LRU order and budget enforcement are
// per shard, so a tight byte budget split over many shards can briefly
// exceed the global bound when an entry is larger than one shard's
// slice (each shard keeps its newest entry rather than thrashing). The
// default of one shard keeps the seed's exact single-LRU semantics;
// concurrent serving deployments opt in via the engine's CacheShards.
//
// Within one shard the recency order across layers is exact: each entry
// carries a monotone sequence number, and capacity/byte-budget eviction
// removes the globally least-recently-used entry regardless of layer
// (per-layer budgets evict within their own layer only).
//
// # Key scheme
//
// A cache key is built by Key: a selector/options prefix (anything that
// changes the cached value must be folded into it — selector name, walk
// budget, damping, seed, and for selectors without a score vector the
// context size k) followed by the query node IDs sorted ascending and
// deduplicated, so that permutations of one entity set share an entry.
// Queries listing the same node twice are not canonicalizable (duplicate
// seeds change PageRank's personalization mass) — callers bypass the
// cache for those. MultisetKey keeps duplicates for the order-independent
// but multiplicity-sensitive comparison stage.
//
// Values are opaque to the cache and treated as immutable once cached.
//
// # Epoch keying
//
// One cache serves one engine, but that engine's graph is live: each
// effective mutation batch publishes a new epoch. Graph identity
// therefore rides in the keys — callers fold the epoch of the view a
// request pinned into every graph-derived prefix (the selector, test,
// and seed layers), so an entry computed against one epoch is never
// served at another, while re-running a query at an unchanged epoch
// still pure-hits. Epochs survive no-op batches and compaction (neither
// changes the readable graph), so warm entries survive them too; stale
// epochs' entries are not purged eagerly, they simply stop being
// addressed and age out of the LRU. The null layer is the exception by
// design: its keys are the context distribution itself, the only input
// the memoized null depends on, so a distribution that recurs across
// epochs legitimately reuses its entry.
package qcache

import (
	"container/list"
	"math"
	"sort"
	"strconv"
	"sync"
)

// Layer identifies which pipeline stage an entry belongs to, for
// per-layer accounting and budgeting. The cache itself treats layer
// values opaquely.
type Layer uint8

const (
	// LayerSelector holds selector score vectors and ranked contexts —
	// large entries, ~8 bytes per graph node each.
	LayerSelector Layer = iota
	// LayerTest holds per-label test records — small entries.
	LayerTest
	// LayerSeed holds single-seed PageRank vectors — the per-seed store
	// behind interactive-refinement reuse; large entries, up to ~8 bytes
	// per graph node each (less when a solve stayed frontier-sparse).
	LayerSeed
	// LayerNull holds Monte-Carlo null distributions of the multinomial
	// test — ~8 bytes per sample each.
	LayerNull
	numLayers
)

// NumLayers is the number of distinct cache layers, sizing the exported
// per-layer arrays in Config and Stats.
const NumLayers = int(numLayers)

// LayerNames labels the layers in constant order, for rendering Stats
// tables.
var LayerNames = [NumLayers]string{
	LayerSelector: "selector",
	LayerTest:     "test",
	LayerSeed:     "seed",
	LayerNull:     "null",
}

// String implements fmt.Stringer.
func (l Layer) String() string {
	if int(l) < NumLayers {
		return LayerNames[l]
	}
	return "unknown"
}

// Config configures a cache. The zero value of every field selects a
// default; Capacity <= 0 still means "caching disabled" (NewSharded
// returns the nil no-op cache).
type Config struct {
	// Capacity bounds the total entry count across all shards and layers.
	// Sharding splits it exactly (shards sum to Capacity); the only slack
	// is the newest-entry rule — a shard whose slice rounds to zero still
	// keeps one entry rather than thrashing — so a Capacity below the
	// shard count can round up in practice.
	Capacity int
	// ByteBudget, when > 0, bounds the total of all size hints, split
	// evenly across shards. Eviction is LRU within each shard.
	ByteBudget int64
	// Shards is the shard count, rounded up to a power of two; 0 or 1
	// selects the single exact LRU.
	Shards int
	// LayerBudgets optionally bounds individual layers by bytes (0 = no
	// per-layer bound). Like ByteBudget, each is split across shards, and
	// exceeding one evicts least-recently-used entries of that layer only.
	LayerBudgets [NumLayers]int64
}

// Cache is a bounded, sharded LRU map with hit/miss/eviction counters and
// per-layer byte accounting. A nil *Cache is a valid no-op cache: Get
// always misses and Put does nothing.
type Cache struct {
	shards []*shard
	mask   uint64
}

// shard is one shared-nothing slice of the cache: its own lock, items,
// per-layer recency lists, counters, and split of every budget.
type shard struct {
	mu         sync.Mutex
	capacity   int
	byteBudget int64 // 0 = entries-only bound
	layerMax   [numLayers]int64
	seq        uint64 // monotone recency stamp, shared by all layers
	ll         [numLayers]*list.List
	items      map[string]*list.Element
	bytes      [numLayers]int64
	hits       [numLayers]uint64
	misses     [numLayers]uint64
	evictions  uint64
}

// entry is one cached key/value pair, stored in its layer's recency list.
// The size hint is stored with the entry, so eviction and refresh adjust
// the per-layer totals from the recorded value rather than recomputing a
// caller-side estimate — the invariant behind Stats bytes never going
// negative under concurrent Put/evict.
type entry struct {
	key   string
	val   any
	layer Layer
	bytes int64
	seq   uint64
}

// New returns a cache bounded to capacity entries. capacity <= 0 returns
// nil, the no-op cache.
func New(capacity int) *Cache {
	return NewSharded(Config{Capacity: capacity})
}

// NewBudget returns a cache bounded to capacity entries and, when
// byteBudget > 0, to byteBudget total bytes of size hints: a Put whose
// hint would push the total past the budget evicts from the LRU end
// first, exactly as the entry cap does. capacity <= 0 returns nil, the
// no-op cache.
func NewBudget(capacity int, byteBudget int64) *Cache {
	return NewSharded(Config{Capacity: capacity, ByteBudget: byteBudget})
}

// NewSharded returns a cache for cfg — the general constructor behind
// New and NewBudget, and the only one exposing sharding and per-layer
// budgets. cfg.Capacity <= 0 returns nil, the no-op cache.
func NewSharded(cfg Config) *Cache {
	if cfg.Capacity <= 0 {
		return nil
	}
	n := shardCount(cfg.Shards)
	c := &Cache{shards: make([]*shard, n), mask: uint64(n - 1)}
	for i := range c.shards {
		// The entry cap splits exactly — earlier shards take the division
		// remainder — so the shards sum to the configured Capacity.
		capacity := cfg.Capacity / n
		if i < cfg.Capacity%n {
			capacity++
		}
		sh := &shard{
			capacity:   capacity,
			byteBudget: ceilDiv64(cfg.ByteBudget, int64(n)),
			items:      make(map[string]*list.Element),
		}
		for l := range sh.ll {
			sh.ll[l] = list.New()
			sh.layerMax[l] = ceilDiv64(cfg.LayerBudgets[l], int64(n))
		}
		c.shards[i] = sh
	}
	return c
}

// shardCount rounds n up to a power of two in [1, 1024].
func shardCount(n int) int {
	if n <= 1 {
		return 1
	}
	if n > 1024 {
		n = 1024
	}
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func ceilDiv64(a, b int64) int64 {
	if a <= 0 {
		return 0
	}
	return (a + b - 1) / b
}

// fnvOffset64 and fnvPrime64 are the FNV-1a parameters shared by shard
// routing and the Hash* key helpers. (The stdlib hash/fnv allocates per
// hasher; these hand-rolled folds stay on the stack.)
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// fnvByte folds one byte into an FNV-1a state.
func fnvByte(h uint64, b byte) uint64 {
	return (h ^ uint64(b)) * fnvPrime64
}

// shardFor picks the shard owning key by FNV-1a hash.
func (c *Cache) shardFor(key string) *shard {
	h := fnvOffset64
	for i := 0; i < len(key); i++ {
		h = fnvByte(h, key[i])
	}
	return c.shards[h&c.mask]
}

// Get returns the cached value for key and marks it most recently used.
// A miss is attributed to LayerSelector; callers that track per-layer hit
// rates use GetLayer.
func (c *Cache) Get(key string) (any, bool) {
	return c.GetLayer(key, LayerSelector)
}

// GetLayer is Get with an explicit layer to attribute a miss to (a hit is
// always attributed to the layer the entry was stored under). The layer
// does not affect lookup — keys are global — only the Stats counters.
func (c *Cache) GetLayer(key string, layer Layer) (any, bool) {
	if c == nil {
		return nil, false
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	el, ok := sh.items[key]
	if !ok {
		sh.misses[layer]++
		return nil, false
	}
	e := el.Value.(*entry)
	sh.hits[e.layer]++
	sh.seq++
	e.seq = sh.seq
	sh.ll[e.layer].MoveToFront(el)
	return e.val, true
}

// Put stores val under key with a zero size hint in the selector layer —
// entry-cap semantics only. Callers that account bytes use PutSized.
func (c *Cache) Put(key string, val any) {
	c.PutSized(key, val, LayerSelector, 0)
}

// PutSized stores val under key, attributing bytes to layer for the
// per-layer accounting, and evicts least-recently-used entries while the
// cache exceeds its entry cap, its byte budget, or the layer's budget.
// The hint is the caller's estimate of the value's footprint; the cache
// never inspects values. Storing an existing key refreshes its value,
// hint, layer, and recency.
func (c *Cache) PutSized(key string, val any, layer Layer, bytes int64) {
	if c == nil {
		return
	}
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	sh.seq++
	if el, ok := sh.items[key]; ok {
		e := el.Value.(*entry)
		sh.bytes[e.layer] -= e.bytes
		sh.bytes[layer] += bytes
		e.seq = sh.seq
		if e.layer == layer {
			e.val, e.bytes = val, bytes
			sh.ll[layer].MoveToFront(el)
		} else {
			// A layer change moves the entry between recency lists.
			sh.ll[e.layer].Remove(el)
			e.val, e.layer, e.bytes = val, layer, bytes
			sh.items[key] = sh.ll[layer].PushFront(e)
		}
		sh.evictOver()
		return
	}
	sh.bytes[layer] += bytes
	sh.items[key] = sh.ll[layer].PushFront(&entry{key: key, val: val, layer: layer, bytes: bytes, seq: sh.seq})
	sh.evictOver()
}

// evictOver drops LRU entries until every bound holds: first each
// over-budget layer sheds its own least-recently-used entries, then the
// entry cap and total byte budget shed the globally least-recently-used
// entry across layers (the minimum recency stamp over the list backs —
// exact LRU, since the globally oldest entry is necessarily the back of
// its layer's list). The newest entry of a list is never dropped: a
// single value larger than the whole budget still caches (and evicts
// everything else) rather than thrashing on every Put.
func (sh *shard) evictOver() {
	for l := range sh.ll {
		for sh.layerMax[l] > 0 && sh.bytes[l] > sh.layerMax[l] && sh.ll[l].Len() > 1 {
			sh.remove(sh.ll[l].Back())
		}
	}
	for len(sh.items) > 1 &&
		(len(sh.items) > sh.capacity || (sh.byteBudget > 0 && sh.totalBytes() > sh.byteBudget)) {
		var oldest *list.Element
		oseq := uint64(math.MaxUint64)
		for l := range sh.ll {
			if b := sh.ll[l].Back(); b != nil {
				if e := b.Value.(*entry); e.seq < oseq {
					oseq, oldest = e.seq, b
				}
			}
		}
		sh.remove(oldest)
	}
}

// remove drops one entry, updating the map, its layer's bytes, and the
// eviction counter.
func (sh *shard) remove(el *list.Element) {
	e := el.Value.(*entry)
	sh.ll[e.layer].Remove(el)
	delete(sh.items, e.key)
	sh.bytes[e.layer] -= e.bytes
	sh.evictions++
}

func (sh *shard) totalBytes() int64 {
	var t int64
	for _, b := range sh.bytes {
		t += b
	}
	return t
}

// Len returns the number of cached entries across all shards.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.items)
		sh.mu.Unlock()
	}
	return n
}

// LayerStats is one layer's slice of a Stats snapshot.
type LayerStats struct {
	// Hits and Misses count GetLayer outcomes attributed to the layer.
	Hits, Misses uint64
	// Bytes sums the layer's resident size hints; ByteBudget is its
	// configured per-layer bound (0 = none).
	Bytes, ByteBudget int64
}

// Stats is a point-in-time snapshot of the cache counters, aggregated
// over all shards.
type Stats struct {
	// Hits and Misses count Get outcomes across every layer; Evictions
	// counts entries dropped to make room.
	Hits, Misses, Evictions uint64
	// Size is the current entry count, Capacity the bound, Shards the
	// shared-nothing shard count (0 for the nil cache).
	Size, Capacity, Shards int
	// SelectorBytes, TestBytes, SeedBytes, and NullBytes sum the resident
	// size hints per layer; Bytes is their total.
	SelectorBytes, TestBytes, SeedBytes, NullBytes, Bytes int64
	// ByteBudget is the configured total byte bound (0 = none).
	ByteBudget int64
	// Layers breaks hits, misses, residency, and budget down by layer,
	// indexed by the Layer constants.
	Layers [NumLayers]LayerStats
}

// Stats returns the current counters. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	var st Stats
	st.Shards = len(c.shards)
	for _, sh := range c.shards {
		sh.mu.Lock()
		st.Evictions += sh.evictions
		st.Size += len(sh.items)
		st.Capacity += sh.capacity
		st.ByteBudget += sh.byteBudget
		for l := 0; l < NumLayers; l++ {
			st.Layers[l].Hits += sh.hits[l]
			st.Layers[l].Misses += sh.misses[l]
			st.Layers[l].Bytes += sh.bytes[l]
			st.Layers[l].ByteBudget += sh.layerMax[l]
		}
		sh.mu.Unlock()
	}
	for l := 0; l < NumLayers; l++ {
		st.Hits += st.Layers[l].Hits
		st.Misses += st.Layers[l].Misses
		st.Bytes += st.Layers[l].Bytes
	}
	st.SelectorBytes = st.Layers[LayerSelector].Bytes
	st.TestBytes = st.Layers[LayerTest].Bytes
	st.SeedBytes = st.Layers[LayerSeed].Bytes
	st.NullBytes = st.Layers[LayerNull].Bytes
	return st
}

// Key canonicalizes a query node set under an options prefix: IDs are
// sorted ascending and deduplicated, so every permutation of one entity
// set maps to the same key. ok is false when ids contains duplicates —
// such queries are not canonicalizable (see the package comment) and must
// bypass the cache.
func Key(prefix string, ids []uint32) (key string, ok bool) {
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b []byte
	b = append(b, prefix...)
	for i, id := range sorted {
		if i > 0 && id == sorted[i-1] {
			return "", false
		}
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	return string(b), true
}

// MultisetKey canonicalizes ids under prefix like Key, but keeps
// duplicates: IDs are sorted ascending with multiplicity. The comparison
// stage's per-label keys use it because distribution counting is
// order-independent yet multiplicity-sensitive — a node listed twice
// contributes its counts twice — so duplicate queries are perfectly
// cacheable there, unlike in the selector layer.
func MultisetKey(prefix string, ids []uint32) string {
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b []byte
	b = append(b, prefix...)
	for _, id := range sorted {
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	return string(b)
}

// HashIDs returns the 64-bit FNV-1a hash of ids in order — a compact
// stand-in for long ranked lists (a search's 100-node context) inside
// cache keys, where embedding every ID would dwarf the rest of the key.
func HashIDs(ids []uint32) uint64 {
	h := fnvOffset64
	for _, id := range ids {
		for shift := 0; shift < 32; shift += 8 {
			h = fnvByte(h, byte(id>>shift))
		}
	}
	return h
}

// HashFloats returns the 64-bit FNV-1a hash of the IEEE-754 bits of vals
// in order — the compact stand-in for probability vectors inside cache
// keys (the multinomial null-distribution memo). Callers needing
// correctness against the 2^-64 collision odds store the vector alongside
// the value and verify bitwise equality on a hit.
func HashFloats(vals []float64) uint64 {
	h := fnvOffset64
	for _, v := range vals {
		bits := math.Float64bits(v)
		for shift := 0; shift < 64; shift += 8 {
			h = fnvByte(h, byte(bits>>shift))
		}
	}
	return h
}
