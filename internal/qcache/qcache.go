// Package qcache provides the engine-level query cache: a small,
// thread-safe LRU keyed by canonicalized query strings, memoizing the
// expensive half of a notable-characteristics search (metapath mining and
// selector score vectors) so repeated queries — the heavy-traffic case —
// skip mining and walking entirely.
//
// # Key scheme
//
// A cache key is built by Key: a selector/options prefix (anything that
// changes the cached value must be folded into it — selector name, walk
// budget, seed, and for selectors without a score vector the context size
// k) followed by the query node IDs sorted ascending and deduplicated, so
// that permutations of one entity set share an entry. Queries listing the
// same node twice are not canonicalizable (duplicate seeds change
// PageRank's personalization mass) — callers bypass the cache for those.
//
// Values are opaque to the cache; the engine stores dense score vectors
// and ranked context slices. Both are treated as immutable once cached.
package qcache

import (
	"container/list"
	"sort"
	"strconv"
	"sync"
)

// Layer identifies which pipeline stage an entry belongs to, for
// per-layer byte accounting. The cache itself treats layers opaquely.
type Layer uint8

const (
	// LayerSelector holds selector score vectors and ranked contexts —
	// the big entries, ~8 bytes per graph node each.
	LayerSelector Layer = iota
	// LayerTest holds per-label test records — small entries.
	LayerTest
	numLayers
)

// Cache is a bounded LRU map with hit/miss/eviction counters and
// per-layer byte accounting. A nil *Cache is a valid no-op cache: Get
// always misses and Put does nothing.
type Cache struct {
	mu         sync.Mutex
	capacity   int
	byteBudget int64      // 0 = entries-only bound
	ll         *list.List // front = most recently used
	items      map[string]*list.Element
	bytes      [numLayers]int64
	hits       uint64
	misses     uint64
	evictions  uint64
}

// entry is one cached key/value pair, stored in the recency list.
type entry struct {
	key   string
	val   any
	layer Layer
	bytes int64
}

// New returns a cache bounded to capacity entries. capacity <= 0 returns
// nil, the no-op cache.
func New(capacity int) *Cache {
	return NewBudget(capacity, 0)
}

// NewBudget returns a cache bounded to capacity entries and, when
// byteBudget > 0, to byteBudget total bytes of size hints: a Put whose
// hint would push the total past the budget evicts from the LRU end
// first, exactly as the entry cap does. capacity <= 0 returns nil, the
// no-op cache.
func NewBudget(capacity int, byteBudget int64) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity:   capacity,
		byteBudget: byteBudget,
		ll:         list.New(),
		items:      make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key with a zero size hint in the selector layer —
// entry-cap semantics only. Callers that account bytes use PutSized.
func (c *Cache) Put(key string, val any) {
	c.PutSized(key, val, LayerSelector, 0)
}

// PutSized stores val under key, attributing bytes to layer for the
// per-layer accounting, and evicts least-recently-used entries while the
// cache exceeds either its entry cap or its byte budget. The hint is the
// caller's estimate of the value's footprint; the cache never inspects
// values. Storing an existing key refreshes its value, hint, and recency.
func (c *Cache) PutSized(key string, val any, layer Layer, bytes int64) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		e := el.Value.(*entry)
		c.bytes[e.layer] -= e.bytes
		e.val, e.layer, e.bytes = val, layer, bytes
		c.bytes[layer] += bytes
		c.ll.MoveToFront(el)
		c.evictOver()
		return
	}
	c.bytes[layer] += bytes
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val, layer: layer, bytes: bytes})
	c.evictOver()
}

// evictOver drops LRU entries until both bounds hold. The newest entry is
// never dropped: a single value larger than the whole byte budget still
// caches (and evicts everything else) rather than thrashing on every Put.
func (c *Cache) evictOver() {
	for c.ll.Len() > 1 &&
		(c.ll.Len() > c.capacity || (c.byteBudget > 0 && c.totalBytes() > c.byteBudget)) {
		oldest := c.ll.Back()
		e := oldest.Value.(*entry)
		c.ll.Remove(oldest)
		delete(c.items, e.key)
		c.bytes[e.layer] -= e.bytes
		c.evictions++
	}
}

func (c *Cache) totalBytes() int64 {
	var t int64
	for _, b := range c.bytes {
		t += b
	}
	return t
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// dropped to make room.
	Hits, Misses, Evictions uint64
	// Size is the current entry count, Capacity the bound.
	Size, Capacity int
	// SelectorBytes and TestBytes sum the resident size hints per layer;
	// Bytes is their total.
	SelectorBytes, TestBytes, Bytes int64
	// ByteBudget is the configured byte bound (0 = none).
	ByteBudget int64
}

// Stats returns the current counters. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:          c.hits,
		Misses:        c.misses,
		Evictions:     c.evictions,
		Size:          c.ll.Len(),
		Capacity:      c.capacity,
		SelectorBytes: c.bytes[LayerSelector],
		TestBytes:     c.bytes[LayerTest],
		Bytes:         c.bytes[LayerSelector] + c.bytes[LayerTest],
		ByteBudget:    c.byteBudget,
	}
}

// Key canonicalizes a query node set under an options prefix: IDs are
// sorted ascending and deduplicated, so every permutation of one entity
// set maps to the same key. ok is false when ids contains duplicates —
// such queries are not canonicalizable (see the package comment) and must
// bypass the cache.
func Key(prefix string, ids []uint32) (key string, ok bool) {
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b []byte
	b = append(b, prefix...)
	for i, id := range sorted {
		if i > 0 && id == sorted[i-1] {
			return "", false
		}
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	return string(b), true
}

// MultisetKey canonicalizes ids under prefix like Key, but keeps
// duplicates: IDs are sorted ascending with multiplicity. The comparison
// stage's per-label keys use it because distribution counting is
// order-independent yet multiplicity-sensitive — a node listed twice
// contributes its counts twice — so duplicate queries are perfectly
// cacheable there, unlike in the selector layer.
func MultisetKey(prefix string, ids []uint32) string {
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b []byte
	b = append(b, prefix...)
	for _, id := range sorted {
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	return string(b)
}

// HashIDs returns the 64-bit FNV-1a hash of ids in order — a compact
// stand-in for long ranked lists (a search's 100-node context) inside
// cache keys, where embedding every ID would dwarf the rest of the key.
func HashIDs(ids []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(id >> shift))
			h *= prime64
		}
	}
	return h
}
