// Package qcache provides the engine-level query cache: a small,
// thread-safe LRU keyed by canonicalized query strings, memoizing the
// expensive half of a notable-characteristics search (metapath mining and
// selector score vectors) so repeated queries — the heavy-traffic case —
// skip mining and walking entirely.
//
// # Key scheme
//
// A cache key is built by Key: a selector/options prefix (anything that
// changes the cached value must be folded into it — selector name, walk
// budget, seed, and for selectors without a score vector the context size
// k) followed by the query node IDs sorted ascending and deduplicated, so
// that permutations of one entity set share an entry. Queries listing the
// same node twice are not canonicalizable (duplicate seeds change
// PageRank's personalization mass) — callers bypass the cache for those.
//
// Values are opaque to the cache; the engine stores dense score vectors
// and ranked context slices. Both are treated as immutable once cached.
package qcache

import (
	"container/list"
	"sort"
	"strconv"
	"sync"
)

// Cache is a bounded LRU map with hit/miss/eviction counters. A nil
// *Cache is a valid no-op cache: Get always misses and Put does nothing.
type Cache struct {
	mu        sync.Mutex
	capacity  int
	ll        *list.List // front = most recently used
	items     map[string]*list.Element
	hits      uint64
	misses    uint64
	evictions uint64
}

// entry is one cached key/value pair, stored in the recency list.
type entry struct {
	key string
	val any
}

// New returns a cache bounded to capacity entries. capacity <= 0 returns
// nil, the no-op cache.
func New(capacity int) *Cache {
	if capacity <= 0 {
		return nil
	}
	return &Cache{
		capacity: capacity,
		ll:       list.New(),
		items:    make(map[string]*list.Element, capacity),
	}
}

// Get returns the cached value for key and marks it most recently used.
func (c *Cache) Get(key string) (any, bool) {
	if c == nil {
		return nil, false
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.items[key]
	if !ok {
		c.misses++
		return nil, false
	}
	c.hits++
	c.ll.MoveToFront(el)
	return el.Value.(*entry).val, true
}

// Put stores val under key, evicting the least recently used entry when
// the cache is full. Storing an existing key refreshes its value and
// recency.
func (c *Cache) Put(key string, val any) {
	if c == nil {
		return
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.items[key]; ok {
		el.Value.(*entry).val = val
		c.ll.MoveToFront(el)
		return
	}
	if c.ll.Len() >= c.capacity {
		oldest := c.ll.Back()
		c.ll.Remove(oldest)
		delete(c.items, oldest.Value.(*entry).key)
		c.evictions++
	}
	c.items[key] = c.ll.PushFront(&entry{key: key, val: val})
}

// Len returns the number of cached entries.
func (c *Cache) Len() int {
	if c == nil {
		return 0
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Stats is a point-in-time snapshot of the cache counters.
type Stats struct {
	// Hits and Misses count Get outcomes; Evictions counts entries
	// dropped to make room.
	Hits, Misses, Evictions uint64
	// Size is the current entry count, Capacity the bound.
	Size, Capacity int
}

// Stats returns the current counters. A nil cache reports zeros.
func (c *Cache) Stats() Stats {
	if c == nil {
		return Stats{}
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	return Stats{
		Hits:      c.hits,
		Misses:    c.misses,
		Evictions: c.evictions,
		Size:      c.ll.Len(),
		Capacity:  c.capacity,
	}
}

// Key canonicalizes a query node set under an options prefix: IDs are
// sorted ascending and deduplicated, so every permutation of one entity
// set maps to the same key. ok is false when ids contains duplicates —
// such queries are not canonicalizable (see the package comment) and must
// bypass the cache.
func Key(prefix string, ids []uint32) (key string, ok bool) {
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b []byte
	b = append(b, prefix...)
	for i, id := range sorted {
		if i > 0 && id == sorted[i-1] {
			return "", false
		}
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	return string(b), true
}

// MultisetKey canonicalizes ids under prefix like Key, but keeps
// duplicates: IDs are sorted ascending with multiplicity. The comparison
// stage's per-label keys use it because distribution counting is
// order-independent yet multiplicity-sensitive — a node listed twice
// contributes its counts twice — so duplicate queries are perfectly
// cacheable there, unlike in the selector layer.
func MultisetKey(prefix string, ids []uint32) string {
	sorted := make([]uint32, len(ids))
	copy(sorted, ids)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	var b []byte
	b = append(b, prefix...)
	for _, id := range sorted {
		b = append(b, '|')
		b = strconv.AppendUint(b, uint64(id), 10)
	}
	return string(b)
}

// HashIDs returns the 64-bit FNV-1a hash of ids in order — a compact
// stand-in for long ranked lists (a search's 100-node context) inside
// cache keys, where embedding every ID would dwarf the rest of the key.
func HashIDs(ids []uint32) uint64 {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, id := range ids {
		for shift := 0; shift < 32; shift += 8 {
			h ^= uint64(byte(id >> shift))
			h *= prime64
		}
	}
	return h
}
