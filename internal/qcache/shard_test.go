package qcache

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
)

// TestShardCountRounding: shard counts round up to a power of two and
// Stats reports the resolved count.
func TestShardCountRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 1}, {1, 1}, {2, 2}, {3, 4}, {5, 8}, {8, 8}, {9, 16}, {4096, 1024},
	} {
		c := NewSharded(Config{Capacity: 64, Shards: tc.in})
		if got := c.Stats().Shards; got != tc.want {
			t.Fatalf("Shards=%d resolved to %d shards, want %d", tc.in, got, tc.want)
		}
	}
	var nilCache *Cache
	if nilCache.Stats().Shards != 0 {
		t.Fatal("nil cache must report zero shards")
	}
}

// TestShardedBasicOps: Get/Put/refresh/Len behave identically to the
// single-shard cache from the caller's point of view.
func TestShardedBasicOps(t *testing.T) {
	c := NewSharded(Config{Capacity: 64, Shards: 8})
	for i := 0; i < 32; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if c.Len() != 32 {
		t.Fatalf("Len = %d, want 32", c.Len())
	}
	for i := 0; i < 32; i++ {
		if v, ok := c.Get(fmt.Sprintf("k%d", i)); !ok || v.(int) != i {
			t.Fatalf("Get(k%d) = %v, %v", i, v, ok)
		}
	}
	c.Put("k3", 333)
	if v, _ := c.Get("k3"); v.(int) != 333 {
		t.Fatalf("refresh lost: %v", v)
	}
	st := c.Stats()
	if st.Hits != 33 || st.Misses != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestShardedEntryCap: the entry cap is split across shards and enforced
// per shard; the total never exceeds the configured capacity (each shard
// gets the ceiling of its share, so slack is at most shards-1).
func TestShardedEntryCap(t *testing.T) {
	c := NewSharded(Config{Capacity: 16, Shards: 4})
	for i := 0; i < 200; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > 16 {
		t.Fatalf("sharded cache holds %d entries, cap 16", n)
	}
	if st := c.Stats(); st.Evictions == 0 {
		t.Fatalf("200 puts into cap 16 must evict: %+v", st)
	}
}

// TestShardedCapacityExact: the entry cap splits exactly across shards —
// Stats reports the configured Capacity and residency never exceeds it
// (when Capacity >= shards, so no shard rounds to zero and leans on the
// newest-entry rule).
func TestShardedCapacityExact(t *testing.T) {
	c := NewSharded(Config{Capacity: 10, Shards: 8})
	if got := c.Stats().Capacity; got != 10 {
		t.Fatalf("split capacity sums to %d, want 10", got)
	}
	for i := 0; i < 500; i++ {
		c.Put(fmt.Sprintf("k%d", i), i)
	}
	if n := c.Len(); n > 10 {
		t.Fatalf("resident %d entries, cap 10", n)
	}
}

// TestGetLayerAttribution: hits count against the stored entry's layer,
// misses against the caller-declared layer, and the aggregate counters
// total the layers.
func TestGetLayerAttribution(t *testing.T) {
	c := New(16)
	c.PutSized("seed", 1, LayerSeed, 10)
	c.GetLayer("seed", LayerSeed)
	c.GetLayer("seed", LayerTest) // hit: attributed to LayerSeed regardless
	c.GetLayer("absent-null", LayerNull)
	c.GetLayer("absent-test", LayerTest)
	st := c.Stats()
	if st.Layers[LayerSeed].Hits != 2 || st.Layers[LayerSeed].Misses != 0 {
		t.Fatalf("seed layer stats: %+v", st.Layers[LayerSeed])
	}
	if st.Layers[LayerNull].Misses != 1 || st.Layers[LayerTest].Misses != 1 {
		t.Fatalf("miss attribution: %+v", st.Layers)
	}
	if st.Hits != 2 || st.Misses != 2 {
		t.Fatalf("aggregate must total the layers: %+v", st)
	}
	if st.SeedBytes != 10 || st.Layers[LayerSeed].Bytes != 10 {
		t.Fatalf("seed bytes: %+v", st)
	}
}

// TestLayerBudgetEvictsOwnLayerOnly: exceeding a per-layer budget sheds
// that layer's LRU entries and leaves other layers untouched.
func TestLayerBudgetEvictsOwnLayerOnly(t *testing.T) {
	var lb [NumLayers]int64
	lb[LayerSeed] = 100
	c := NewSharded(Config{Capacity: 100, LayerBudgets: lb})
	c.PutSized("t1", 1, LayerTest, 1000) // over no budget: LayerTest unbounded
	c.PutSized("s1", 1, LayerSeed, 60)
	c.PutSized("s2", 2, LayerSeed, 30)
	c.PutSized("s3", 3, LayerSeed, 30) // 120 > 100: s1 (layer LRU) must go
	if _, ok := c.Get("s1"); ok {
		t.Fatal("s1 should have been evicted by the seed-layer budget")
	}
	if _, ok := c.Get("t1"); !ok {
		t.Fatal("t1 (other layer) must survive a seed-layer eviction")
	}
	st := c.Stats()
	if st.SeedBytes != 60 || st.TestBytes != 1000 {
		t.Fatalf("layer bytes after eviction: %+v", st)
	}
	if st.Layers[LayerSeed].ByteBudget != 100 {
		t.Fatalf("seed layer budget not reported: %+v", st.Layers[LayerSeed])
	}
	// The newest entry of a layer is never dropped, even oversized.
	c.PutSized("s4", 4, LayerSeed, 500)
	if _, ok := c.Get("s4"); !ok {
		t.Fatal("oversized newest seed entry must still cache")
	}
	if st := c.Stats(); st.SeedBytes != 500 {
		t.Fatalf("oversized entry accounting: %+v", st)
	}
}

// TestCrossLayerLRUExact: within one shard, the entry cap evicts the
// globally least-recently-used entry regardless of which layer it lives
// in — the per-layer lists plus recency stamps reproduce one exact LRU.
func TestCrossLayerLRUExact(t *testing.T) {
	c := New(3)
	c.PutSized("a", 1, LayerSelector, 0)
	c.PutSized("b", 2, LayerTest, 0)
	c.PutSized("c", 3, LayerSeed, 0)
	c.Get("a") // "b" is now globally oldest, in a different layer than "d"
	c.PutSized("d", 4, LayerNull, 0)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b was the global LRU and should have been evicted")
	}
	for _, k := range []string{"a", "c", "d"} {
		if _, ok := c.Get(k); !ok {
			t.Fatalf("%s should have survived", k)
		}
	}
}

// TestLayerChangeOnRefresh: re-Putting a key under a different layer
// moves its bytes and recency to the new layer.
func TestLayerChangeOnRefresh(t *testing.T) {
	c := New(10)
	c.PutSized("k", 1, LayerSelector, 100)
	c.PutSized("k", 2, LayerNull, 40)
	st := c.Stats()
	if st.SelectorBytes != 0 || st.NullBytes != 40 {
		t.Fatalf("layer move accounting: %+v", st)
	}
	if v, ok := c.Get("k"); !ok || v.(int) != 2 {
		t.Fatalf("moved entry lost: %v %v", v, ok)
	}
	if st := c.Stats(); st.Layers[LayerNull].Hits != 1 {
		t.Fatalf("hit attribution after move: %+v", st.Layers)
	}
}

// TestShardedByteBudget: the total budget splits across shards; residency
// converges under the bound once entries are spread, and per-shard LRU
// eviction keeps every shard within its slice.
func TestShardedByteBudget(t *testing.T) {
	c := NewSharded(Config{Capacity: 1000, ByteBudget: 800, Shards: 4})
	for i := 0; i < 100; i++ {
		c.PutSized(fmt.Sprintf("k%d", i), i, LayerSelector, 100)
	}
	st := c.Stats()
	// Each shard holds ceil(800/4)=200 bytes → at most 2 entries; 4 shards
	// → at most 800 bytes total.
	if st.Bytes > 800 {
		t.Fatalf("resident %d bytes exceeds split budget 800", st.Bytes)
	}
	if st.Evictions == 0 {
		t.Fatal("byte pressure must evict")
	}
}

// TestConcurrentShardedBytesNeverNegative hammers PutSized/Get/Stats from
// many goroutines with mixed layers and sizes — including refreshes that
// change an entry's layer — and asserts no per-layer byte counter ever
// goes negative and the aggregate equals the layer sum. Run under -race
// this also exercises the per-shard locking. (Sizes are stored in the
// entry at insert time; eviction subtracts the stored value, so the
// counters cannot drift no matter how Put/evict interleave.)
func TestConcurrentShardedBytesNeverNegative(t *testing.T) {
	for _, shards := range []int{1, 8} {
		c := NewSharded(Config{Capacity: 64, ByteBudget: 4096, Shards: shards,
			LayerBudgets: [NumLayers]int64{LayerSeed: 1024}})
		var wg, readerWg sync.WaitGroup
		stop := make(chan struct{})
		// A stats reader runs concurrently, checking invariants mid-flight.
		readerWg.Add(1)
		go func() {
			defer readerWg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				st := c.Stats()
				var sum int64
				for l := 0; l < NumLayers; l++ {
					if st.Layers[l].Bytes < 0 {
						t.Errorf("layer %d bytes negative: %+v", l, st)
						return
					}
					sum += st.Layers[l].Bytes
				}
				if st.Bytes != sum {
					t.Errorf("aggregate bytes %d != layer sum %d", st.Bytes, sum)
					return
				}
			}
		}()
		for w := 0; w < 8; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				rng := rand.New(rand.NewSource(int64(w)))
				for i := 0; i < 2000; i++ {
					key := fmt.Sprintf("k%d", rng.Intn(96))
					layer := Layer(rng.Intn(NumLayers))
					if rng.Intn(4) == 0 {
						c.GetLayer(key, layer)
					} else {
						c.PutSized(key, i, layer, int64(rng.Intn(200)))
					}
				}
			}(w)
		}
		wg.Wait()
		close(stop)
		readerWg.Wait()
		st := c.Stats()
		for l := 0; l < NumLayers; l++ {
			if st.Layers[l].Bytes < 0 {
				t.Fatalf("shards=%d layer %d bytes negative after run: %+v", shards, l, st)
			}
		}
		if st.Bytes != st.SelectorBytes+st.TestBytes+st.SeedBytes+st.NullBytes {
			t.Fatalf("shards=%d aggregate bytes mismatch: %+v", shards, st)
		}
	}
}

// BenchmarkCacheContention measures mixed Get/Put traffic from concurrent
// goroutines against the single-lock LRU and the sharded cache. The
// workload is the engine's serving shape: mostly hits on a hot keyset
// with a steady trickle of inserts. On multi-core hosts the shards'
// independent locks stop the goroutines from serializing; on a
// single-core host the two converge (there is no lock contention to
// remove).
func BenchmarkCacheContention(b *testing.B) {
	const keys = 4096
	run := func(b *testing.B, shards int) {
		c := NewSharded(Config{Capacity: keys, Shards: shards})
		for i := 0; i < keys; i++ {
			c.PutSized(fmt.Sprintf("k%d", i), i, LayerSelector, 64)
		}
		b.SetParallelism(8)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			rng := rand.New(rand.NewSource(1))
			i := 0
			for pb.Next() {
				key := fmt.Sprintf("k%d", rng.Intn(keys))
				if i%10 == 0 {
					c.PutSized(key, i, LayerSelector, 64)
				} else {
					c.Get(key)
				}
				i++
			}
		})
	}
	b.Run("lock1", func(b *testing.B) { run(b, 1) })
	b.Run("shards8", func(b *testing.B) { run(b, 8) })
}
