package qcache

import "testing"

// TestPutSizedAccounting: per-layer byte totals track inserts, refreshes,
// and evictions exactly.
func TestPutSizedAccounting(t *testing.T) {
	c := New(10)
	c.PutSized("a", 1, LayerSelector, 100)
	c.PutSized("b", 2, LayerTest, 7)
	c.PutSized("c", 3, LayerTest, 5)
	st := c.Stats()
	if st.SelectorBytes != 100 || st.TestBytes != 12 || st.Bytes != 112 {
		t.Fatalf("accounting off: %+v", st)
	}
	// Refreshing a key replaces its hint — and may move it across layers.
	c.PutSized("a", 4, LayerTest, 40)
	st = c.Stats()
	if st.SelectorBytes != 0 || st.TestBytes != 52 {
		t.Fatalf("refresh accounting off: %+v", st)
	}
	if v, ok := c.Get("a"); !ok || v.(int) != 4 {
		t.Fatalf("refreshed value lost: %v %v", v, ok)
	}
}

// TestByteBudgetEvicts: exceeding the byte budget evicts from the LRU end
// until the total fits, even with the entry cap far away.
func TestByteBudgetEvicts(t *testing.T) {
	c := NewBudget(1000, 100)
	c.PutSized("a", 1, LayerSelector, 60)
	c.PutSized("b", 2, LayerSelector, 30)
	c.PutSized("c", 3, LayerSelector, 30) // 120 > 100: "a" (LRU) must go
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the byte budget")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("b should have survived")
	}
	st := c.Stats()
	if st.Bytes != 60 || st.Evictions != 1 || st.ByteBudget != 100 {
		t.Fatalf("post-eviction stats: %+v", st)
	}
	// Recency protects: touching "b" then overflowing evicts "c".
	c.Get("b")
	c.PutSized("d", 4, LayerSelector, 50)
	if _, ok := c.Get("c"); ok {
		t.Fatal("c was the LRU entry and should have been evicted")
	}
	if _, ok := c.Get("b"); !ok {
		t.Fatal("recently used b must survive")
	}
}

// TestByteBudgetOversizedEntry: a single entry larger than the whole
// budget still caches (evicting everything else) instead of thrashing.
func TestByteBudgetOversizedEntry(t *testing.T) {
	c := NewBudget(10, 100)
	c.PutSized("small", 1, LayerTest, 10)
	c.PutSized("huge", 2, LayerSelector, 500)
	if _, ok := c.Get("huge"); !ok {
		t.Fatal("oversized entry must still cache")
	}
	if _, ok := c.Get("small"); ok {
		t.Fatal("everything else should have been evicted")
	}
	if st := c.Stats(); st.Size != 1 || st.Bytes != 500 {
		t.Fatalf("stats: %+v", st)
	}
}

// TestEntryCapStillHolds: the byte budget composes with, not replaces,
// the entry cap.
func TestEntryCapStillHolds(t *testing.T) {
	c := NewBudget(2, 1<<30)
	c.PutSized("a", 1, LayerTest, 1)
	c.PutSized("b", 2, LayerTest, 1)
	c.PutSized("c", 3, LayerTest, 1)
	if c.Len() != 2 {
		t.Fatalf("entry cap ignored: %d entries", c.Len())
	}
	if _, ok := c.Get("a"); ok {
		t.Fatal("a should have been evicted by the entry cap")
	}
}

// TestPlainPutZeroBytes: the unsized Put never trips a byte budget.
func TestPlainPutZeroBytes(t *testing.T) {
	c := NewBudget(10, 5)
	c.Put("a", 1)
	c.Put("b", 2)
	if st := c.Stats(); st.Bytes != 0 || st.Size != 2 || st.Evictions != 0 {
		t.Fatalf("unsized puts must be byte-free: %+v", st)
	}
}
