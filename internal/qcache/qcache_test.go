package qcache

import (
	"fmt"
	"sync"
	"testing"
)

func TestPutGetAndLRUEviction(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("b", 2)
	if v, ok := c.Get("a"); !ok || v.(int) != 1 {
		t.Fatalf("Get(a) = %v, %v", v, ok)
	}
	// "b" is now least recently used; inserting "c" evicts it.
	c.Put("c", 3)
	if _, ok := c.Get("b"); ok {
		t.Fatal("b should have been evicted")
	}
	if _, ok := c.Get("a"); !ok {
		t.Fatal("a should have survived (recently used)")
	}
	if _, ok := c.Get("c"); !ok {
		t.Fatal("c should be present")
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Size != 2 || st.Capacity != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestPutRefreshesExistingKey(t *testing.T) {
	c := New(2)
	c.Put("a", 1)
	c.Put("a", 10)
	if c.Len() != 1 {
		t.Fatalf("Len = %d after double Put", c.Len())
	}
	if v, _ := c.Get("a"); v.(int) != 10 {
		t.Fatalf("refreshed value = %v", v)
	}
}

func TestHitMissCounters(t *testing.T) {
	c := New(4)
	c.Get("nope")
	c.Put("a", 1)
	c.Get("a")
	c.Get("a")
	st := c.Stats()
	if st.Hits != 2 || st.Misses != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestNilCacheIsNoOp(t *testing.T) {
	var c *Cache
	c.Put("a", 1)
	if _, ok := c.Get("a"); ok {
		t.Fatal("nil cache returned a hit")
	}
	if c.Len() != 0 || c.Stats() != (Stats{}) {
		t.Fatal("nil cache reports non-zero state")
	}
	if New(0) != nil || New(-3) != nil {
		t.Fatal("non-positive capacity should return the nil cache")
	}
}

func TestKeyCanonicalization(t *testing.T) {
	a, ok := Key("sel", []uint32{3, 1, 2})
	if !ok {
		t.Fatal("key rejected")
	}
	b, _ := Key("sel", []uint32{2, 3, 1})
	if a != b {
		t.Fatalf("permutations differ: %q vs %q", a, b)
	}
	c, _ := Key("sel", []uint32{1, 2})
	if a == c {
		t.Fatal("different sets share a key")
	}
	d, _ := Key("other", []uint32{3, 1, 2})
	if a == d {
		t.Fatal("different prefixes share a key")
	}
	// IDs that would concatenate ambiguously stay distinct.
	e1, _ := Key("p", []uint32{1, 23})
	e2, _ := Key("p", []uint32{12, 3})
	if e1 == e2 {
		t.Fatal("separator failed to disambiguate IDs")
	}
	if _, ok := Key("sel", []uint32{1, 2, 2}); ok {
		t.Fatal("duplicate IDs must be rejected")
	}
	if empty, ok := Key("sel", nil); !ok || empty != "sel" {
		t.Fatalf("empty id key = %q, %v", empty, ok)
	}
}

func TestMultisetKey(t *testing.T) {
	// Permutations of one multiset share a key.
	a := MultisetKey("p", []uint32{3, 1, 2})
	b := MultisetKey("p", []uint32{2, 3, 1})
	if a != b {
		t.Fatalf("permutations key differently: %q vs %q", a, b)
	}
	// Duplicates are kept: a node listed twice is a different multiset.
	dup := MultisetKey("p", []uint32{1, 2, 2, 3})
	if dup == a {
		t.Fatal("duplicate node collapsed into the deduplicated key")
	}
	if dup != MultisetKey("p", []uint32{2, 1, 3, 2}) {
		t.Fatal("permuted duplicates key differently")
	}
	// Prefixes separate option spaces.
	if MultisetKey("x", []uint32{1}) == MultisetKey("y", []uint32{1}) {
		t.Fatal("prefix ignored")
	}
	// Concatenation ambiguity: {1, 23} vs {12, 3} must differ.
	if MultisetKey("p", []uint32{1, 23}) == MultisetKey("p", []uint32{12, 3}) {
		t.Fatal("adjacent IDs concatenate ambiguously")
	}
}

func TestHashIDs(t *testing.T) {
	a := HashIDs([]uint32{1, 2, 3})
	if a != HashIDs([]uint32{1, 2, 3}) {
		t.Fatal("hash not deterministic")
	}
	// Context hashes are order-sensitive: rank matters to callers.
	if a == HashIDs([]uint32{3, 2, 1}) {
		t.Fatal("hash ignored order")
	}
	if a == HashIDs([]uint32{1, 2}) {
		t.Fatal("hash ignored a trailing element")
	}
	if HashIDs(nil) == a {
		t.Fatal("empty hash collides with nonempty")
	}
}

func TestConcurrentAccess(t *testing.T) {
	c := New(16)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < 500; i++ {
				key := fmt.Sprintf("k%d", (w+i)%32)
				c.Put(key, i)
				c.Get(key)
			}
		}(w)
	}
	wg.Wait()
	if c.Len() > 16 {
		t.Fatalf("cache exceeded capacity: %d", c.Len())
	}
}
