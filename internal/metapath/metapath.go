// Package metapath implements PathMining (Section 3.1): discovering the
// metapaths that connect a query set to the rest of the graph by random
// walks, and counting the paths that match a metapath.
//
// A metapath here is the sequence of edge labels along a path (the paper
// defines metapaths with node labels interleaved but its miner records "the
// sequence of edge labels m encountered during the random walk").
//
// Mining: sample a start node uniformly from V \ Q and walk at random —
// favoring informative (rare) labels like the weighted PageRank does —
// until a query node is reached or the length budget is exhausted. Each
// successful walk contributes one occurrence of its label sequence. The
// mined metapaths therefore point *toward* the query; Reverse turns one
// into the equivalent query-outward metapath over inverse labels.
//
// Counting: CountPathsInto propagates path counts along the label sequence
// with one sparse frontier sweep per step, giving |{n ⇝m x}| for every x in
// one pass — the quantity σ of Section 3.1 needs — into reusable Scratch
// buffers; CountPaths is its allocating convenience form.
package metapath

import (
	"context"
	"encoding/binary"
	"math/rand"
	"sort"
	"sync"

	"repro/internal/kg"
)

// Path is a metapath: a sequence of edge-label IDs.
type Path []kg.LabelID

// Key returns a compact byte-string key identifying the path, usable as a
// map key.
func (p Path) Key() string {
	buf := make([]byte, 0, len(p)*binary.MaxVarintLen32)
	var tmp [binary.MaxVarintLen32]byte
	for _, l := range p {
		n := binary.PutUvarint(tmp[:], uint64(l))
		buf = append(buf, tmp[:n]...)
	}
	return string(buf)
}

// Equal reports whether two paths are identical.
func (p Path) Equal(q Path) bool {
	if len(p) != len(q) {
		return false
	}
	for i := range p {
		if p[i] != q[i] {
			return false
		}
	}
	return true
}

// String renders the path with the graph's label names.
func (p Path) String(g *kg.Graph) string {
	s := ""
	for i, l := range p {
		if i > 0 {
			s += "/"
		}
		s += g.LabelName(l)
	}
	return s
}

// Reverse returns the inverse metapath: labels inverted and order flipped,
// so that a path n ⇝p q corresponds one-to-one to a path q ⇝Reverse(p) n.
func (p Path) Reverse(g *kg.Graph) Path {
	out := make(Path, len(p))
	for i, l := range p {
		out[len(p)-1-i] = g.InverseLabel(l)
	}
	return out
}

// Mined is a metapath with its occurrence count from mining.
type Mined struct {
	Path  Path
	Count int64
}

// MineOptions configures PathMining. The zero value selects the paper's
// defaults except for Walks, which must be set (the paper uses 1M).
type MineOptions struct {
	// Walks is the number of sampling walks to attempt.
	Walks int
	// MaxLength bounds the metapath length in edges. The paper finds 5 a
	// reasonable choice. Default 5.
	MaxLength int
	// Uniform disables informativeness weighting of walk steps.
	Uniform bool
	// Seed makes mining deterministic.
	Seed int64
	// Parallelism bounds worker goroutines; 0 uses 4.
	Parallelism int
}

func (o MineOptions) withDefaults() MineOptions {
	if o.MaxLength == 0 {
		o.MaxLength = 5
	}
	if o.Parallelism <= 0 {
		o.Parallelism = 4
	}
	return o
}

// Mine runs PathMining: it samples opt.Walks random walks from uniform
// start nodes in V \ query and records the label sequence of every walk
// that reaches a query node within opt.MaxLength steps. Results are merged
// across workers and sorted by descending count (ties by shorter path, then
// lexicographic key, so output is deterministic for a fixed seed).
func Mine(g *kg.Graph, query []kg.NodeID, opt MineOptions) []Mined {
	return MineCtx(context.Background(), g, query, opt)
}

// mineCheckInterval is how many walks a mining worker runs between ctx
// probes: frequent enough that a large budget (the paper's 1M walks)
// aborts in well under a walk-batch, rare enough that the probe is free.
const mineCheckInterval = 4096

// MineCtx is Mine under a cancellation context: workers check ctx every
// mineCheckInterval walks and stop early once it is done. A cancelled
// mine returns a truncated (meaningless) path set — callers must consult
// ctx.Err() before using it; a live ctx changes nothing.
func MineCtx(ctx context.Context, g *kg.Graph, query []kg.NodeID, opt MineOptions) []Mined {
	opt = opt.withDefaults()
	n := g.NumNodes()
	if n == 0 || len(query) == 0 || opt.Walks <= 0 {
		return nil
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	if len(inQuery) >= n {
		return nil // no start nodes available
	}

	workers := opt.Parallelism
	if workers > opt.Walks {
		workers = opt.Walks
	}
	type shard struct {
		counts map[string]int64
		paths  map[string]Path
	}
	shards := make([]shard, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(opt.Seed + int64(w)*0x9e3779b9))
			sh := shard{
				counts: make(map[string]int64),
				paths:  make(map[string]Path),
			}
			walks := opt.Walks / workers
			if w < opt.Walks%workers {
				walks++
			}
			labels := make(Path, 0, opt.MaxLength)
			for i := 0; i < walks; i++ {
				if i%mineCheckInterval == 0 && ctx.Err() != nil {
					break
				}
				labels = labels[:0]
				if p := walkOnce(g, inQuery, rng, opt, labels); p != nil {
					k := p.Key()
					if _, ok := sh.paths[k]; !ok {
						cp := make(Path, len(p))
						copy(cp, p)
						sh.paths[k] = cp
					}
					sh.counts[k]++
				}
			}
			shards[w] = sh
		}(w)
	}
	wg.Wait()

	merged := make(map[string]int64)
	paths := make(map[string]Path)
	for _, sh := range shards {
		for k, c := range sh.counts {
			merged[k] += c
			if _, ok := paths[k]; !ok {
				paths[k] = sh.paths[k]
			}
		}
	}
	out := make([]Mined, 0, len(merged))
	for k, c := range merged {
		out = append(out, Mined{Path: paths[k], Count: c})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Count != out[j].Count {
			return out[i].Count > out[j].Count
		}
		if len(out[i].Path) != len(out[j].Path) {
			return len(out[i].Path) < len(out[j].Path)
		}
		return out[i].Path.Key() < out[j].Path.Key()
	})
	return out
}

// walkOnce performs one mining walk and returns the label sequence if it
// reached a query node, reusing the labels buffer.
func walkOnce(g *kg.Graph, inQuery map[kg.NodeID]bool, rng *rand.Rand, opt MineOptions, labels Path) Path {
	n := g.NumNodes()
	// Uniform start in V \ Q by rejection; the query is tiny relative to V.
	var cur kg.NodeID
	for {
		cur = kg.NodeID(rng.Intn(n))
		if !inQuery[cur] {
			break
		}
	}
	for step := 0; step < opt.MaxLength; step++ {
		adj := g.OutEdges(cur)
		if len(adj) == 0 {
			return nil
		}
		var e kg.Edge
		if opt.Uniform {
			e = adj[rng.Intn(len(adj))]
		} else {
			e = weightedPick(g, cur, adj, rng)
		}
		labels = append(labels, e.Label)
		cur = e.To
		if inQuery[cur] {
			return labels
		}
	}
	return nil
}

// weightedPick samples an out-edge proportionally to its label weight by
// rejection sampling: pick a uniform edge, accept with probability equal
// to its weight (weights are in [0, 1) by construction, and close to 1
// for all but the most frequent labels, so acceptance is near-immediate).
// This is O(1) expected regardless of node degree — a linear scan would
// make every walk step through a hub node cost O(degree).
func weightedPick(g *kg.Graph, from kg.NodeID, adj []kg.Edge, rng *rand.Rand) kg.Edge {
	if g.WeightedOutDegree(from) <= 0 {
		return adj[rng.Intn(len(adj))]
	}
	for tries := 0; tries < 64; tries++ {
		e := adj[rng.Intn(len(adj))]
		if rng.Float64() < g.LabelWeight(e.Label) {
			return e
		}
	}
	// Pathological weights (all ≈ 0): fall back to uniform.
	return adj[rng.Intn(len(adj))]
}

// Top keeps the m highest-count metapaths (the paper's |M| parameter).
func Top(mined []Mined, m int) []Mined {
	if m < 0 {
		m = 0
	}
	if len(mined) > m {
		mined = mined[:m]
	}
	return mined
}

// TotalCount sums the counts of a metapath set; Pr(m) = Count/TotalCount.
func TotalCount(mined []Mined) int64 {
	var t int64
	for _, mp := range mined {
		t += mp.Count
	}
	return t
}

// Scratch holds the reusable dense buffers of a path-counting sweep. One
// Scratch serves any number of sequential CountPathsInto calls (it clears
// the previous call's support sparsely on entry); it is not safe for
// concurrent use. The zero value is ready; buffers grow to the largest
// graph seen.
type Scratch struct {
	cur, next   []float64
	curT, nextT []kg.NodeID
}

// NewScratch returns an empty Scratch.
func NewScratch() *Scratch { return &Scratch{} }

// scratchPool recycles Scratch buffers for the allocating CountPaths
// wrapper.
var scratchPool = sync.Pool{New: func() any { return NewScratch() }}

// CountPathsInto computes, for every node x, the number of paths
// start ⇝m x that follow the label sequence m, using sc's reusable
// buffers. It returns the dense count vector together with the list of
// nodes holding a nonzero count, so callers can iterate the support
// sparsely. Both return values alias sc's buffers and are valid until the
// next call with the same Scratch.
//
// The frontier is propagated label by label: one O(Σ deg(frontier)) sweep
// per step, touching only reached nodes. This is the hot path of the
// ContextRW scoring loop, which counts one (metapath, query node) pair per
// call without allocating.
func CountPathsInto(g *kg.Graph, start kg.NodeID, m Path, sc *Scratch) ([]float64, []kg.NodeID) {
	n := g.NumNodes()
	if len(sc.cur) < n {
		sc.cur = make([]float64, n)
		sc.next = make([]float64, n)
	} else {
		// Clear the previous call's support.
		for _, v := range sc.curT {
			sc.cur[v] = 0
		}
	}
	cur, next := sc.cur, sc.next
	curT, spareT := sc.curT[:0], sc.nextT[:0]
	curT = append(curT, start)
	cur[start] = 1
	for _, label := range m {
		nextT := spareT[:0]
		for _, v := range curT {
			c := cur[v]
			for _, e := range g.OutEdgesByLabel(v, label) {
				if next[e.To] == 0 {
					nextT = append(nextT, e.To)
				}
				next[e.To] += c
			}
		}
		// Reset cur for reuse and swap.
		for _, v := range curT {
			cur[v] = 0
		}
		cur, next = next, cur
		curT, spareT = nextT, curT
		if len(curT) == 0 {
			break
		}
	}
	sc.cur, sc.next = cur, next
	sc.curT, sc.nextT = curT, spareT
	return cur, curT
}

// CountPaths is the allocating convenience form of CountPathsInto: it
// returns a fresh count vector the caller owns, recycling internal
// buffers through a pool.
func CountPaths(g *kg.Graph, start kg.NodeID, m Path) []float64 {
	sc := scratchPool.Get().(*Scratch)
	counts, touched := CountPathsInto(g, start, m, sc)
	out := make([]float64, g.NumNodes())
	for _, v := range touched {
		out[v] = counts[v]
	}
	scratchPool.Put(sc)
	return out
}
