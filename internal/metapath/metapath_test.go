package metapath

import (
	"math"
	"math/rand"
	"testing"

	"repro/internal/kg"
)

// diamond builds a 2-hop diamond with two parallel paths a->m1->z, a->m2->z
// and one decoy a->m1->w.
func diamond() *kg.Graph {
	b := kg.NewBuilder(8)
	b.AddEdge("a", "p", "m1")
	b.AddEdge("a", "p", "m2")
	b.AddEdge("m1", "q", "z")
	b.AddEdge("m2", "q", "z")
	b.AddEdge("m1", "q", "w")
	return b.Build()
}

func labelID(t *testing.T, g *kg.Graph, name string) kg.LabelID {
	t.Helper()
	l, ok := g.LabelByName(name)
	if !ok {
		t.Fatalf("label %q missing", name)
	}
	return l
}

func nodeID(t *testing.T, g *kg.Graph, name string) kg.NodeID {
	t.Helper()
	n, ok := g.NodeByName(name)
	if !ok {
		t.Fatalf("node %q missing", name)
	}
	return n
}

func TestCountPathsDiamond(t *testing.T) {
	g := diamond()
	m := Path{labelID(t, g, "p"), labelID(t, g, "q")}
	counts := CountPaths(g, nodeID(t, g, "a"), m)
	if got := counts[nodeID(t, g, "z")]; got != 2 {
		t.Fatalf("paths a=>z = %v, want 2", got)
	}
	if got := counts[nodeID(t, g, "w")]; got != 1 {
		t.Fatalf("paths a=>w = %v, want 1", got)
	}
	if got := counts[nodeID(t, g, "a")]; got != 0 {
		t.Fatalf("paths a=>a = %v, want 0", got)
	}
}

func TestCountPathsEmptyPath(t *testing.T) {
	g := diamond()
	a := nodeID(t, g, "a")
	counts := CountPaths(g, a, nil)
	if counts[a] != 1 {
		t.Fatalf("empty path should count the start itself: %v", counts[a])
	}
	for i, c := range counts {
		if kg.NodeID(i) != a && c != 0 {
			t.Fatalf("empty path reached node %d", i)
		}
	}
}

func TestCountPathsNoMatch(t *testing.T) {
	g := diamond()
	m := Path{labelID(t, g, "q")} // a has no q edge
	counts := CountPaths(g, nodeID(t, g, "a"), m)
	for i, c := range counts {
		if c != 0 {
			t.Fatalf("unexpected count at node %d: %v", i, c)
		}
	}
}

func TestCountPathsInverseLabels(t *testing.T) {
	g := diamond()
	p := labelID(t, g, "p")
	q := labelID(t, g, "q")
	forward := Path{p, q}
	reverse := forward.Reverse(g)
	// Reverse path from z should reach a exactly twice.
	counts := CountPaths(g, nodeID(t, g, "z"), reverse)
	if got := counts[nodeID(t, g, "a")]; got != 2 {
		t.Fatalf("reverse paths z=>a = %v, want 2", got)
	}
}

func TestReverseInvolution(t *testing.T) {
	g := diamond()
	m := Path{labelID(t, g, "p"), labelID(t, g, "q")}
	if got := m.Reverse(g).Reverse(g); !got.Equal(m) {
		t.Fatalf("double reverse = %v, want %v", got, m)
	}
}

func TestPathKeyDistinguishes(t *testing.T) {
	a := Path{1, 2, 3}
	b := Path{1, 2}
	c := Path{3, 2, 1}
	if a.Key() == b.Key() || a.Key() == c.Key() || b.Key() == c.Key() {
		t.Fatal("distinct paths share a key")
	}
	if !a.Equal(Path{1, 2, 3}) {
		t.Fatal("Equal failed on identical paths")
	}
}

func TestCountPathsIntoReturnsSupport(t *testing.T) {
	g := diamond()
	m := Path{labelID(t, g, "p"), labelID(t, g, "q")}
	sc := NewScratch()
	counts, touched := CountPathsInto(g, nodeID(t, g, "a"), m, sc)
	if got := counts[nodeID(t, g, "z")]; got != 2 {
		t.Fatalf("paths a=>z = %v, want 2", got)
	}
	support := map[kg.NodeID]bool{}
	for _, v := range touched {
		if counts[v] == 0 {
			t.Fatalf("touched node %d has zero count", v)
		}
		if support[v] {
			t.Fatalf("touched list repeats node %d", v)
		}
		support[v] = true
	}
	for i, c := range counts {
		if (c != 0) != support[kg.NodeID(i)] {
			t.Fatalf("support mismatch at node %d: count %v, touched %v", i, c, support[kg.NodeID(i)])
		}
	}
}

func TestCountPathsIntoScratchReuse(t *testing.T) {
	g := diamond()
	a := nodeID(t, g, "a")
	p := Path{labelID(t, g, "p")}
	pq := Path{labelID(t, g, "p"), labelID(t, g, "q")}
	sc := NewScratch()
	// First count reaches z and w; the second, shorter path must not see
	// stale counts from the first.
	CountPathsInto(g, a, pq, sc)
	counts, touched := CountPathsInto(g, a, p, sc)
	if counts[nodeID(t, g, "z")] != 0 || counts[nodeID(t, g, "w")] != 0 {
		t.Fatalf("stale counts survived scratch reuse: %v", counts)
	}
	if len(touched) != 2 { // m1, m2
		t.Fatalf("touched = %v, want the two p-targets", touched)
	}
	// And the result matches a fresh computation.
	want := CountPaths(g, a, p)
	for i := range want {
		if counts[i] != want[i] {
			t.Fatalf("reused scratch differs at %d: %v vs %v", i, counts[i], want[i])
		}
	}
}

func TestCountPathsIntoNoAllocsSteadyState(t *testing.T) {
	g := diamond()
	a := nodeID(t, g, "a")
	m := Path{labelID(t, g, "p"), labelID(t, g, "q")}
	sc := NewScratch()
	CountPathsInto(g, a, m, sc)
	if allocs := testing.AllocsPerRun(100, func() { CountPathsInto(g, a, m, sc) }); allocs != 0 {
		t.Fatalf("CountPathsInto allocates %v/op with a warm scratch, want 0", allocs)
	}
}

// chainWithBranch: query q reachable from many nodes via labeled chains.
func chainWithBranch() *kg.Graph {
	b := kg.NewBuilder(32)
	// u0..u9 -worksWith-> q ; v0..v9 -knows-> w -worksWith-> q
	for i := 0; i < 10; i++ {
		b.AddEdge(uname(i), "worksWith", "q")
		b.AddEdge(vname(i), "knows", "w")
	}
	b.AddEdge("w", "worksWith", "q")
	return b.Build()
}

func uname(i int) string { return "u" + string(rune('0'+i)) }
func vname(i int) string { return "v" + string(rune('0'+i)) }

func TestMineFindsDominantMetapath(t *testing.T) {
	g := chainWithBranch()
	q := nodeID(t, g, "q")
	mined := Mine(g, []kg.NodeID{q}, MineOptions{Walks: 20000, MaxLength: 3, Seed: 1})
	if len(mined) == 0 {
		t.Fatal("mining found nothing")
	}
	// The single-hop worksWith path must be among the top metapaths.
	worksWith := labelID(t, g, "worksWith")
	found := false
	for _, mp := range mined[:min(3, len(mined))] {
		if mp.Path.Equal(Path{worksWith}) {
			found = true
		}
	}
	if !found {
		t.Fatalf("worksWith not in top metapaths: %+v", mined)
	}
	// Counts must be positive and sorted descending.
	for i, mp := range mined {
		if mp.Count <= 0 {
			t.Fatalf("metapath %d has count %d", i, mp.Count)
		}
		if i > 0 && mp.Count > mined[i-1].Count {
			t.Fatal("mined not sorted by count")
		}
		if len(mp.Path) > 3 {
			t.Fatalf("metapath longer than MaxLength: %v", mp.Path)
		}
	}
}

func TestMineDeterministicForSeed(t *testing.T) {
	g := chainWithBranch()
	q := nodeID(t, g, "q")
	opt := MineOptions{Walks: 5000, MaxLength: 3, Seed: 42, Parallelism: 3}
	a := Mine(g, []kg.NodeID{q}, opt)
	b := Mine(g, []kg.NodeID{q}, opt)
	if len(a) != len(b) {
		t.Fatalf("runs differ in length: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Path.Equal(b[i].Path) || a[i].Count != b[i].Count {
			t.Fatalf("runs differ at %d: %+v vs %+v", i, a[i], b[i])
		}
	}
}

func TestMineRespectsWalkBudget(t *testing.T) {
	g := chainWithBranch()
	q := nodeID(t, g, "q")
	mined := Mine(g, []kg.NodeID{q}, MineOptions{Walks: 100, MaxLength: 3, Seed: 7})
	if got := TotalCount(mined); got > 100 {
		t.Fatalf("total count %d exceeds walk budget", got)
	}
}

func TestMineEdgeCases(t *testing.T) {
	g := chainWithBranch()
	q := nodeID(t, g, "q")
	if got := Mine(g, nil, MineOptions{Walks: 10}); got != nil {
		t.Fatal("empty query should mine nothing")
	}
	if got := Mine(g, []kg.NodeID{q}, MineOptions{Walks: 0}); got != nil {
		t.Fatal("zero walks should mine nothing")
	}
	empty := kg.NewBuilder(0).Build()
	if got := Mine(empty, []kg.NodeID{}, MineOptions{Walks: 10}); got != nil {
		t.Fatal("empty graph should mine nothing")
	}
	// Graph where the query is every node: no start nodes available.
	b := kg.NewBuilder(1)
	b.AddEdge("only", "p", "only")
	g2 := b.Build()
	only, _ := g2.NodeByName("only")
	if got := Mine(g2, []kg.NodeID{only}, MineOptions{Walks: 10}); got != nil {
		t.Fatal("all-query graph should mine nothing")
	}
}

func TestTop(t *testing.T) {
	mined := []Mined{{Count: 5}, {Count: 3}, {Count: 1}}
	if got := Top(mined, 2); len(got) != 2 || got[0].Count != 5 {
		t.Fatalf("Top(2) = %+v", got)
	}
	if got := Top(mined, 10); len(got) != 3 {
		t.Fatalf("Top(10) = %+v", got)
	}
	if got := Top(mined, -1); len(got) != 0 {
		t.Fatalf("Top(-1) = %+v", got)
	}
}

// Cross-check CountPaths against brute-force DFS enumeration on random
// graphs.
func TestCountPathsAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for trial := 0; trial < 20; trial++ {
		b := kg.NewBuilder(0)
		nNodes := 4 + rng.Intn(8)
		labels := []string{"p", "q"}
		for i := 0; i < 25; i++ {
			b.AddEdge(nname(rng.Intn(nNodes)), labels[rng.Intn(2)], nname(rng.Intn(nNodes)))
		}
		g := b.Build()
		pathLen := 1 + rng.Intn(3)
		m := make(Path, pathLen)
		for i := range m {
			m[i] = kg.LabelID(rng.Intn(g.NumLabels()))
		}
		start := kg.NodeID(rng.Intn(g.NumNodes()))

		got := CountPaths(g, start, m)
		want := make([]float64, g.NumNodes())
		var dfs func(node kg.NodeID, depth int)
		dfs = func(node kg.NodeID, depth int) {
			if depth == len(m) {
				want[node]++
				return
			}
			for _, e := range g.OutEdgesByLabel(node, m[depth]) {
				dfs(e.To, depth+1)
			}
		}
		dfs(start, 0)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-9 {
				t.Fatalf("trial %d node %d: got %v want %v", trial, i, got[i], want[i])
			}
		}
	}
}

func nname(i int) string { return string(rune('a' + i)) }

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func BenchmarkMine(b *testing.B) {
	g := chainWithBranch()
	q, _ := g.NodeByName("q")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Mine(g, []kg.NodeID{q}, MineOptions{Walks: 10000, MaxLength: 5, Seed: int64(i)})
	}
}

func BenchmarkCountPaths(b *testing.B) {
	rng := rand.New(rand.NewSource(21))
	bld := kg.NewBuilder(1 << 14)
	for i := 0; i < 1<<14; i++ {
		bld.AddEdge(nname3(rng.Intn(2000)), "p"+string(rune('0'+rng.Intn(4))), nname3(rng.Intn(2000)))
	}
	g := bld.Build()
	m := Path{0, 1, 2}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		CountPaths(g, kg.NodeID(i%2000), m)
	}
}

func nname3(i int) string {
	return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) + string(rune('a'+(i/676)%26))
}
