package kg

import (
	"math"
	"math/rand"
	"runtime"
	"testing"
)

func transitionGraph(seed int64, nodes, edges int) *Graph {
	rng := rand.New(rand.NewSource(seed))
	b := NewBuilder(edges)
	labels := []string{"p", "q", "r"}
	name := func(i int) string { return string(rune('a'+i%26)) + string(rune('a'+(i/26)%26)) }
	for i := 0; i < nodes; i++ {
		b.Node(name(i))
	}
	for i := 0; i < edges; i++ {
		b.AddEdge(name(rng.Intn(nodes)), labels[rng.Intn(len(labels))], name(rng.Intn(nodes)))
	}
	return b.Build()
}

func TestTransitionsRowsAreStochastic(t *testing.T) {
	g := transitionGraph(3, 40, 160)
	tr := g.Transitions()
	if tr != g.Transitions() {
		t.Fatal("Transitions must build once and return the shared matrix")
	}
	for n := 0; n < g.NumNodes(); n++ {
		adj := g.OutEdges(NodeID(n))
		probs := tr.Probs(NodeID(n))
		if len(probs) != len(adj) {
			t.Fatalf("node %d: %d probs for %d edges", n, len(probs), len(adj))
		}
		if len(adj) == 0 {
			continue
		}
		sum := 0.0
		for i, e := range adj {
			sum += probs[i]
			if wd := g.WeightedOutDegree(NodeID(n)); wd > 0 {
				want := g.LabelWeight(e.Label) / wd
				if math.Abs(probs[i]-want) > 1e-15 {
					t.Fatalf("node %d edge %d: prob %v, want %v", n, i, probs[i], want)
				}
			}
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("node %d: row sums to %v", n, sum)
		}
	}
}

func TestGatherStepMatchesScatter(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		g := transitionGraph(int64(trial), 5+trial*7, 10+trial*23)
		tr := g.Transitions()
		n := g.NumNodes()
		rng := rand.New(rand.NewSource(int64(trial) + 100))
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		const c = 0.8
		next := make([]float64, n)
		danglingGather := tr.GatherStep(next, p, c)

		want := make([]float64, n)
		danglingScatter := 0.0
		for from := 0; from < n; from++ {
			adj := g.OutEdges(NodeID(from))
			if len(adj) == 0 {
				danglingScatter += p[from]
				continue
			}
			probs := tr.Probs(NodeID(from))
			for i, e := range adj {
				want[e.To] += c * p[from] * probs[i]
			}
		}
		for i := range want {
			if math.Abs(next[i]-want[i]) > 1e-12 {
				t.Fatalf("trial %d node %d: gather %v scatter %v", trial, i, next[i], want[i])
			}
		}
		if math.Abs(danglingGather-danglingScatter) > 1e-12 {
			t.Fatalf("trial %d dangling: %v vs %v", trial, danglingGather, danglingScatter)
		}
	}
}

// TestGatherStepParallelBitwiseIdentical: every row of next is produced
// entirely by one worker and the dangling sum is accumulated serially, so
// the parallel gather must reproduce the serial kernel bit for bit at any
// worker count — above and below the serial-fallback threshold.
func TestGatherStepParallelBitwiseIdentical(t *testing.T) {
	shapes := []struct{ nodes, edges int }{
		{60, 300},     // below parallelGatherMinEdges: falls back to serial
		{3000, 12000}, // builder inverses put this just above the threshold
		{5000, 40000}, // comfortably parallel
	}
	for _, sh := range shapes {
		g := transitionGraph(11, sh.nodes, sh.edges)
		tr := g.Transitions()
		n := g.NumNodes()
		rng := rand.New(rand.NewSource(7))
		p := make([]float64, n)
		for i := range p {
			p[i] = rng.Float64()
		}
		const c = 0.8
		want := make([]float64, n)
		wantDangling := tr.GatherStep(want, p, c)
		for _, workers := range []int{1, 2, 3, 4, 7, 8, 16, n + 1} {
			next := make([]float64, n)
			for i := range next {
				next[i] = -1 // stale garbage every shard must overwrite
			}
			dangling := tr.GatherStepParallel(next, p, c, workers)
			if dangling != wantDangling {
				t.Fatalf("%d nodes, workers=%d: dangling %v != %v",
					sh.nodes, workers, dangling, wantDangling)
			}
			for i := range want {
				if next[i] != want[i] {
					t.Fatalf("%d nodes, workers=%d: row %d = %v, serial %v",
						sh.nodes, workers, i, next[i], want[i])
				}
			}
		}
	}
}

// BenchmarkGatherStep measures the dense gather kernel serial vs
// row-partitioned parallel on a graph big enough to clear the fallback
// threshold.
func BenchmarkGatherStep(b *testing.B) {
	g := transitionGraph(42, 20000, 200000)
	tr := g.Transitions()
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(1))
	p := make([]float64, n)
	for i := range p {
		p[i] = rng.Float64()
	}
	next := make([]float64, n)
	b.Run("serial", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.GatherStep(next, p, 0.8)
		}
	})
	b.Run("parallel", func(b *testing.B) {
		b.ReportAllocs()
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			tr.GatherStepParallel(next, p, 0.8, workers)
		}
	})
}

func TestGatherStepOverwritesStaleNext(t *testing.T) {
	g := transitionGraph(9, 20, 60)
	tr := g.Transitions()
	n := g.NumNodes()
	p := make([]float64, n)
	p[0] = 1
	a := make([]float64, n)
	tr.GatherStep(a, p, 0.8)
	b := make([]float64, n)
	for i := range b {
		b[i] = 42 // stale garbage that must not leak through
	}
	tr.GatherStep(b, p, 0.8)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("node %d: %v vs %v — GatherStep accumulated instead of overwriting", i, a[i], b[i])
		}
	}
}
