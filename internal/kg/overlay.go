package kg

import (
	"sync"

	"repro/internal/dict"
)

// overlay is the copy-on-write patch set of an overlay Graph: a shared,
// immutable base graph plus the per-node adjacency slices that differ
// from it. A node appears in patched iff a mutation ever touched it; its
// slice is the node's complete, merged adjacency (sorted by (Label, To)
// and deduplicated, exactly the order Builder.Build would produce), so
// reads are a single map probe, not a merge. Nodes and labels created
// after the base was built live in the extraNames layers; deletes remove
// edges but never nodes, so IDs stay dense and append-only.
//
// All fields are frozen once the owning Graph is published. The only
// lazily materialized piece is wdeg — every entry changes on every
// mutation (label weights are global), so it is rebuilt at most once per
// epoch, on first use, with the same arithmetic as Builder.Build.
type overlay struct {
	g    *Graph // the overlay graph owning this patch set
	base *Graph // flat base graph; never an overlay itself

	n int // total nodes, base + new
	m int // total edges after patches

	patched   map[NodeID][]Edge
	typePatch map[NodeID]TypeID

	nodeX  *extraNames
	labelX *extraNames
	typeX  *extraNames

	// adds and dels count the forward triples applied since the base was
	// built (mirror edges not counted). Reset to zero by compaction.
	adds, dels int

	wdegOnce sync.Once
	wdeg     []float64
}

// outEdges returns node n's effective adjacency.
func (o *overlay) outEdges(n NodeID) []Edge {
	if adj, ok := o.patched[n]; ok {
		return adj
	}
	if int(n) < o.base.NumNodes() {
		return o.base.edges[o.base.offsets[n]:o.base.offsets[n+1]]
	}
	return nil
}

// wdegs returns the weighted out-degree of every node, computing the
// slice on first use with Builder.Build's exact summation order so the
// values are bitwise identical to a from-scratch build at this epoch.
func (o *overlay) wdegs() []float64 {
	o.wdegOnce.Do(func() {
		wd := make([]float64, o.n)
		for v := range wd {
			sum := 0.0
			for _, e := range o.outEdges(NodeID(v)) {
				sum += o.g.weight[e.Label]
			}
			wd[v] = sum
		}
		o.wdeg = wd
	})
	return o.wdeg
}

// buildTransitions is the overlay flavor of Graph.Transitions: the same
// probabilities and transpose layout as the base builder, computed over
// the effective adjacency. Enumeration order per node matches the base
// CSR order, so the resulting arrays are bitwise identical to those of a
// from-scratch graph at this epoch.
func (o *overlay) buildTransitions() *TransitionCSR {
	g := o.g
	n := o.n
	wdeg := o.wdegs()
	t := &TransitionCSR{
		g:    g,
		prob: make([]float64, o.m),
		off:  make([]int64, n+1),
	}
	for v := 0; v < n; v++ {
		adj := o.outEdges(NodeID(v))
		lo := t.off[v]
		hi := lo + int64(len(adj))
		t.off[v+1] = hi
		if lo == hi {
			t.dangling = append(t.dangling, NodeID(v))
			continue
		}
		if wd := wdeg[v]; wd > 0 {
			inv := 1 / wd
			for i, e := range adj {
				t.prob[lo+int64(i)] = g.weight[e.Label] * inv
			}
		} else {
			u := 1 / float64(hi-lo)
			for i := lo; i < hi; i++ {
				t.prob[i] = u
			}
		}
	}
	// Transpose by counting sort on edge targets, in the same
	// row-major enumeration order as the base builder.
	t.tOff = make([]int64, n+1)
	t.tFrom = make([]NodeID, o.m)
	t.tProb = make([]float64, o.m)
	for v := 0; v < n; v++ {
		for _, e := range o.outEdges(NodeID(v)) {
			t.tOff[e.To+1]++
		}
	}
	for v := 1; v <= n; v++ {
		t.tOff[v] += t.tOff[v-1]
	}
	cursor := make([]int64, n)
	for from := 0; from < n; from++ {
		for i, e := range o.outEdges(NodeID(from)) {
			pos := t.tOff[e.To] + cursor[e.To]
			t.tFrom[pos] = NodeID(from)
			t.tProb[pos] = t.prob[t.off[from]+int64(i)]
			cursor[e.To]++
		}
	}
	return t
}

// extraNames is an immutable append-only extension of a frozen base
// dictionary: IDs below base resolve through the base Dict, IDs at or
// above it through byID. A nil *extraNames behaves as an empty layer.
type extraNames struct {
	base  uint32
	byStr map[string]uint32 // name → absolute ID
	byID  []string          // names of IDs base, base+1, ...
}

func (x *extraNames) count() int {
	if x == nil {
		return 0
	}
	return len(x.byID)
}

func (x *extraNames) lookup(name string) (uint32, bool) {
	if x == nil {
		return dict.NoID, false
	}
	id, ok := x.byStr[name]
	return id, ok
}

func (x *extraNames) name(id uint32) (string, bool) {
	if x == nil || id < x.base || int(id-x.base) >= len(x.byID) {
		return "", false
	}
	return x.byID[id-x.base], true
}

// clone returns a mutable deep copy rooted at the same base, allocating
// lazily: cloning a nil layer for a base of length n yields an empty
// layer at that base.
func (x *extraNames) clone(base int) *extraNames {
	c := &extraNames{base: uint32(base), byStr: make(map[string]uint32, x.count()+4)}
	if x != nil {
		c.base = x.base
		for k, v := range x.byStr {
			c.byStr[k] = v
		}
		c.byID = append(c.byID, x.byID...)
	}
	return c
}

func (x *extraNames) add(name string) uint32 {
	id := x.base + uint32(len(x.byID))
	x.byStr[name] = id
	x.byID = append(x.byID, name)
	return id
}

// Materialize folds an overlay graph into a fresh flat base graph by
// replaying the effective edge set through a Builder: dictionaries are
// pre-interned in this graph's ID order, then the full sort + dedup +
// derived-data pipeline runs from scratch, so the result is bitwise
// identical to this graph under every accessor while reading at base
// speed. Base graphs return themselves.
func (g *Graph) Materialize() *Graph {
	if g.ov == nil {
		return g
	}
	b := NewBuilder(g.NumEdges()).DisableInverses()
	for n := 0; n < g.NumNodes(); n++ {
		b.Node(g.NodeName(NodeID(n)))
	}
	for l := 0; l < g.NumLabels(); l++ {
		name := g.LabelName(LabelID(l))
		b.Label(name)
		if g.InverseLabel(LabelID(l)) == LabelID(l) {
			b.Symmetric(name)
		}
	}
	for t := 0; t < g.NumTypes(); t++ {
		b.Type(g.TypeName(TypeID(t)))
	}
	for n := 0; n < g.NumNodes(); n++ {
		if t := g.TypeOf(NodeID(n)); t != NoType {
			b.SetTypeID(NodeID(n), t)
		}
		for _, e := range g.OutEdges(NodeID(n)) {
			b.AddEdgeIDs(NodeID(n), e.Label, e.To)
		}
	}
	return b.Build()
}
