// Package kg defines the in-memory knowledge-graph model used by every
// algorithm in this repository.
//
// A knowledge graph follows Definition 1 of the paper: a directed graph
// G = (V, E, φ, ψ) where nodes carry a type label (φ) and edges carry an
// edge label (ψ). Two modelling assumptions from Section 2 are baked in:
//
//   - Attributes are modelled as edges to value nodes (a birth date is a
//     node connected via a "birthdate" edge), so the graph is homogeneous.
//   - Every edge (s, l, o) has a reverse edge (o, l⁻¹, s). The Builder adds
//     reverse edges automatically; the inverse of label "foo" is named
//     "foo⁻¹" and InverseLabel maps between the two in O(1).
//
// The adjacency is stored in compressed sparse row (CSR) form: a single
// edge slice sorted by (label, target) per node, plus per-node offsets.
// Graphs are immutable after Build and safe for concurrent readers.
//
// Live mutation is layered on top of that immutability rather than poked
// into it: a Versioned store holds the current Graph behind an atomic
// pointer, and each Apply publishes a fresh copy-on-write overlay Graph
// (shared base CSR plus per-node patches) stamped with a new epoch. See
// versioned.go and overlay.go.
package kg

import (
	"fmt"
	"sort"
	"sync"

	"repro/internal/dict"
)

// NodeID identifies a node. IDs are dense: 0..NumNodes-1.
type NodeID = uint32

// LabelID identifies an edge label. IDs are dense: 0..NumLabels-1 and
// include the automatically generated inverse labels.
type LabelID = uint32

// TypeID identifies a node type.
type TypeID = uint32

// NoType marks nodes without an assigned type.
const NoType TypeID = ^TypeID(0)

// InverseSuffix is appended to a label name to form its inverse's name.
const InverseSuffix = "⁻¹"

// InverseName returns the conventional name of the inverse of label name.
// Applying it twice returns the original name.
func InverseName(name string) string {
	if base, ok := baseName(name); ok {
		return base
	}
	return name + InverseSuffix
}

// baseName strips InverseSuffix, reporting whether name carried it.
func baseName(name string) (string, bool) {
	if n := len(name) - len(InverseSuffix); n >= 0 && name[n:] == InverseSuffix {
		return name[:n], true
	}
	return name, false
}

// Edge is a labeled, directed edge to a target node. Edges are stored in
// the owning node's adjacency list, so the source is implicit.
type Edge struct {
	Label LabelID
	To    NodeID
}

// Graph is an immutable labeled multigraph. Build one with a Builder.
//
// A Graph comes in two flavors sharing one read API. A base graph (the
// Builder's and ReadSnapshot's product) stores its adjacency in the CSR
// arrays below. An overlay graph — produced by Versioned.Apply — shares a
// base graph's arrays and dictionaries and layers a copy-on-write patch
// set on top (see overlay); its CSR fields are nil and every accessor
// routes through the patch set first. Both flavors are immutable once
// published and safe for concurrent readers.
type Graph struct {
	nodes  *dict.Dict
	labels *dict.Dict
	types  *dict.Dict

	offsets []int64 // len NumNodes+1; edge range of node n is edges[offsets[n]:offsets[n+1]]
	edges   []Edge  // sorted by (Label, To) within each node's range

	nodeType   []TypeID  // primary type per node (NoType if unset)
	inverse    []LabelID // inverse[l] = l⁻¹
	labelCount []int64   // edges per label (inverses counted separately)

	// weight[l] = 1 − |E_l|/|E| (Eq. 1), the informativeness of label l.
	weight []float64
	// wdeg[n] = Σ_{e ∈ out(n)} weight[e.Label], cached for transition
	// probability normalization. nil on overlay graphs, which compute it
	// lazily (overlay.wdegs).
	wdeg []float64

	// trans is the lazily built per-edge transition matrix (see
	// TransitionCSR); derived data, never serialized.
	transOnce sync.Once
	trans     *TransitionCSR

	// ov, when non-nil, marks this graph as a copy-on-write view over
	// ov.base. Base graphs leave it nil and never pay more than the nil
	// check on the read path.
	ov *overlay
}

// NumNodes returns |V|.
func (g *Graph) NumNodes() int {
	if g.ov != nil {
		return g.ov.n
	}
	return len(g.offsets) - 1
}

// NumEdges returns |E| including the automatically added inverse edges.
func (g *Graph) NumEdges() int {
	if g.ov != nil {
		return g.ov.m
	}
	return len(g.edges)
}

// NumLabels returns the number of distinct edge labels, inverses included.
func (g *Graph) NumLabels() int { return len(g.inverse) }

// NumTypes returns the number of distinct node types.
func (g *Graph) NumTypes() int {
	if g.ov != nil {
		return g.types.Len() + g.ov.typeX.count()
	}
	return g.types.Len()
}

// NodeName returns the name of node n.
func (g *Graph) NodeName(n NodeID) string {
	if g.ov != nil {
		if name, ok := g.ov.nodeX.name(n); ok {
			return name
		}
	}
	return g.nodes.String(n)
}

// NodeByName returns the ID of the named node, and whether it exists.
func (g *Graph) NodeByName(name string) (NodeID, bool) {
	id := g.nodes.Lookup(name)
	if id == dict.NoID && g.ov != nil {
		return g.ov.nodeX.lookup(name)
	}
	return id, id != dict.NoID
}

// LabelName returns the name of edge label l.
func (g *Graph) LabelName(l LabelID) string {
	if g.ov != nil {
		if name, ok := g.ov.labelX.name(l); ok {
			return name
		}
	}
	return g.labels.String(l)
}

// LabelByName returns the ID of the named edge label, and whether it exists.
func (g *Graph) LabelByName(name string) (LabelID, bool) {
	id := g.labels.Lookup(name)
	if id == dict.NoID && g.ov != nil {
		return g.ov.labelX.lookup(name)
	}
	return id, id != dict.NoID
}

// TypeName returns the name of node type t.
func (g *Graph) TypeName(t TypeID) string {
	if t == NoType {
		return ""
	}
	if g.ov != nil {
		if name, ok := g.ov.typeX.name(t); ok {
			return name
		}
	}
	return g.types.String(t)
}

// TypeOf returns φ(n), the primary type of node n (NoType if unset).
func (g *Graph) TypeOf(n NodeID) TypeID {
	if g.ov != nil {
		if t, ok := g.ov.typePatch[n]; ok {
			return t
		}
		if int(n) >= len(g.nodeType) {
			return NoType
		}
	}
	return g.nodeType[n]
}

// InverseLabel returns l⁻¹.
func (g *Graph) InverseLabel(l LabelID) LabelID { return g.inverse[l] }

// IsInverse reports whether l is one of the automatically generated inverse
// labels (its name carries InverseSuffix).
func (g *Graph) IsInverse(l LabelID) bool {
	_, ok := baseName(g.LabelName(l))
	return ok
}

// OutEdges returns the adjacency slice of node n, sorted by (Label, To).
// The slice is owned by the graph and must not be modified.
func (g *Graph) OutEdges(n NodeID) []Edge {
	if g.ov != nil {
		return g.ov.outEdges(n)
	}
	return g.edges[g.offsets[n]:g.offsets[n+1]]
}

// OutDegree returns the number of outgoing edges of n (inverses included).
func (g *Graph) OutDegree(n NodeID) int {
	if g.ov != nil {
		return len(g.ov.outEdges(n))
	}
	return int(g.offsets[n+1] - g.offsets[n])
}

// OutEdgesByLabel returns the contiguous sub-slice of n's adjacency whose
// label is l. The slice is owned by the graph and must not be modified.
func (g *Graph) OutEdgesByLabel(n NodeID, l LabelID) []Edge {
	adj := g.OutEdges(n)
	lo := sort.Search(len(adj), func(i int) bool { return adj[i].Label >= l })
	hi := sort.Search(len(adj), func(i int) bool { return adj[i].Label > l })
	return adj[lo:hi]
}

// HasEdge reports whether the edge (n, l, to) exists.
func (g *Graph) HasEdge(n NodeID, l LabelID, to NodeID) bool {
	adj := g.OutEdgesByLabel(n, l)
	i := sort.Search(len(adj), func(i int) bool { return adj[i].To >= to })
	return i < len(adj) && adj[i].To == to
}

// LabelCount returns |E_l|, the number of edges labeled l.
func (g *Graph) LabelCount(l LabelID) int64 { return g.labelCount[l] }

// LabelFrequency returns |E_l| / |E|.
func (g *Graph) LabelFrequency(l LabelID) float64 {
	m := g.NumEdges()
	if m == 0 {
		return 0
	}
	return float64(g.labelCount[l]) / float64(m)
}

// LabelWeight returns the informativeness weight 1 − |E_l|/|E| of Eq. 1.
func (g *Graph) LabelWeight(l LabelID) float64 { return g.weight[l] }

// WeightedOutDegree returns Σ over out-edges of n of LabelWeight, the
// normalizer of the weighted transition probability.
func (g *Graph) WeightedOutDegree(n NodeID) float64 {
	if g.ov != nil {
		return g.ov.wdegs()[n]
	}
	return g.wdeg[n]
}

// LabelsOf returns the distinct edge labels present on the out-edges of the
// given nodes — L restricted to the set, per Definition 3.
func (g *Graph) LabelsOf(nodes []NodeID) []LabelID {
	seen := make(map[LabelID]struct{})
	for _, n := range nodes {
		for _, e := range g.OutEdges(n) {
			seen[e.Label] = struct{}{}
		}
	}
	out := make([]LabelID, 0, len(seen))
	for l := range seen {
		out = append(out, l)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// NodesWithType returns all nodes whose primary type is t, in ID order.
func (g *Graph) NodesWithType(t TypeID) []NodeID {
	if g.ov != nil {
		var out []NodeID
		for n := 0; n < g.ov.n; n++ {
			if g.TypeOf(NodeID(n)) == t {
				out = append(out, NodeID(n))
			}
		}
		return out
	}
	var out []NodeID
	for n, tt := range g.nodeType {
		if tt == t {
			out = append(out, NodeID(n))
		}
	}
	return out
}

// Stats returns a one-line summary of the graph's size.
func (g *Graph) Stats() string {
	return fmt.Sprintf("%d nodes, %d edges, %d labels, %d types",
		g.NumNodes(), g.NumEdges(), g.NumLabels(), g.NumTypes())
}
