package kg

import (
	"fmt"
	"io"

	"repro/internal/dict"
	"repro/internal/snapshot"
)

// Snapshot format identity. Bump the version when the payload layout
// changes; readers reject mismatched versions outright.
const (
	snapMagic   = "KGSNAP\x00\x01"
	snapVersion = 1
)

// SnapshotMagic is the byte string every graph snapshot stream starts
// with — exposed so loaders can sniff a renamed snapshot file instead of
// trusting its extension. Readers still validate the full header (magic,
// version, trailer CRC) themselves.
const SnapshotMagic = snapMagic

// WriteSnapshot serializes the graph to w in the binary snapshot format:
// dictionaries, per-node types, and the CSR adjacency, varint-encoded and
// protected by a CRC32 trailer. Derived data (label counts, weights) is
// recomputed on load rather than stored. Overlay graphs serialize their
// effective (patched) state, so reading the snapshot back yields a flat
// graph identical to Materialize's result.
func (g *Graph) WriteSnapshot(w io.Writer) error {
	sw := snapshot.NewWriter(w, snapMagic, snapVersion)

	writeNames := func(n int, name func(uint32) string) {
		sw.Uvarint(uint64(n))
		for i := 0; i < n; i++ {
			sw.String(name(uint32(i)))
		}
	}
	writeNames(g.NumNodes(), func(i uint32) string { return g.NodeName(i) })
	writeNames(g.NumLabels(), func(i uint32) string { return g.LabelName(i) })
	writeNames(g.NumTypes(), func(i uint32) string { return g.TypeName(i) })

	for _, inv := range g.inverse {
		sw.Uvarint(uint64(inv))
	}
	for n := 0; n < g.NumNodes(); n++ {
		if t := g.TypeOf(NodeID(n)); t == NoType {
			sw.Uvarint(0)
		} else {
			sw.Uvarint(uint64(t) + 1)
		}
	}
	// Adjacency: degree then (label, delta-encoded target) per edge. Edges
	// within a node are sorted by (label, to), so targets within one label
	// run are non-decreasing and delta-encode well.
	for n := 0; n < g.NumNodes(); n++ {
		adj := g.OutEdges(NodeID(n))
		sw.Uvarint(uint64(len(adj)))
		prevLabel := LabelID(0)
		prevTo := NodeID(0)
		for _, e := range adj {
			sw.Uvarint(uint64(e.Label))
			if e.Label != prevLabel {
				prevTo = 0
			}
			sw.Varint(int64(e.To) - int64(prevTo))
			prevLabel, prevTo = e.Label, e.To
		}
	}
	if err := sw.Err(); err != nil {
		return fmt.Errorf("kg: writing snapshot: %w", err)
	}
	return sw.Close()
}

// ReadSnapshot deserializes a graph previously written by WriteSnapshot.
func ReadSnapshot(r io.Reader) (*Graph, error) {
	sr, err := snapshot.NewReader(r, snapMagic, snapVersion)
	if err != nil {
		return nil, fmt.Errorf("kg: reading snapshot: %w", err)
	}

	readDict := func() *dict.Dict {
		n := int(sr.Uvarint())
		if sr.Err() != nil || n < 0 {
			return dict.New(0)
		}
		d := dict.New(n)
		for i := 0; i < n; i++ {
			d.Put(sr.String())
		}
		return d
	}
	nodes := readDict()
	labels := readDict()
	types := readDict()
	if err := sr.Err(); err != nil {
		return nil, err
	}

	nLabels := labels.Len()
	inverse := make([]LabelID, nLabels)
	for i := range inverse {
		v := sr.Uvarint()
		if v >= uint64(nLabels) && sr.Err() == nil {
			return nil, fmt.Errorf("%w: inverse label %d out of range", snapshot.ErrCorrupt, v)
		}
		inverse[i] = LabelID(v)
	}
	nNodes := nodes.Len()
	nodeType := make([]TypeID, nNodes)
	for i := range nodeType {
		v := sr.Uvarint()
		if v == 0 {
			nodeType[i] = NoType
			continue
		}
		if v-1 >= uint64(types.Len()) && sr.Err() == nil {
			return nil, fmt.Errorf("%w: node type %d out of range", snapshot.ErrCorrupt, v-1)
		}
		nodeType[i] = TypeID(v - 1)
	}
	if err := sr.Err(); err != nil {
		return nil, err
	}

	g := &Graph{
		nodes:      nodes,
		labels:     labels,
		types:      types,
		offsets:    make([]int64, nNodes+1),
		nodeType:   nodeType,
		inverse:    inverse,
		labelCount: make([]int64, nLabels),
	}
	for n := 0; n < nNodes; n++ {
		deg := sr.Uvarint()
		if sr.Err() != nil {
			return nil, sr.Err()
		}
		g.offsets[n+1] = g.offsets[n] + int64(deg)
		prevLabel := LabelID(0)
		prevTo := NodeID(0)
		for i := uint64(0); i < deg; i++ {
			lab := sr.Uvarint()
			if lab >= uint64(nLabels) && sr.Err() == nil {
				return nil, fmt.Errorf("%w: edge label %d out of range", snapshot.ErrCorrupt, lab)
			}
			l := LabelID(lab)
			if l != prevLabel {
				prevTo = 0
			}
			to := int64(prevTo) + sr.Varint()
			if (to < 0 || to >= int64(nNodes)) && sr.Err() == nil {
				return nil, fmt.Errorf("%w: edge target %d out of range", snapshot.ErrCorrupt, to)
			}
			if sr.Err() != nil {
				return nil, sr.Err()
			}
			g.edges = append(g.edges, Edge{Label: l, To: NodeID(to)})
			g.labelCount[l]++
			prevLabel, prevTo = l, NodeID(to)
		}
	}
	if err := sr.Close(); err != nil {
		return nil, err
	}

	g.weight = make([]float64, nLabels)
	total := float64(len(g.edges))
	for l := range g.weight {
		if total > 0 {
			g.weight[l] = 1 - float64(g.labelCount[l])/total
		}
	}
	g.wdeg = make([]float64, nNodes)
	for v := 0; v < nNodes; v++ {
		sum := 0.0
		for _, e := range g.OutEdges(NodeID(v)) {
			sum += g.weight[e.Label]
		}
		g.wdeg[v] = sum
	}
	return g, nil
}
