package kg

import (
	"bytes"
	"fmt"
	"reflect"
	"sync"
	"testing"
)

// refState maintains a from-scratch reference for Versioned tests: the
// live triple multiset plus explicit interning orders mirroring the
// store's append-only ID assignment (base names in base order, new names
// in apply order). build replays the whole state through a Builder, so
// every derived array — CSR, label counts, weights, wdeg, transitions —
// is recomputed from raw triples by the independent batch pipeline.
type refState struct {
	typePred   string
	nodeOrder  []string
	labelOrder []string
	typeOrder  []string
	symmetric  map[string]bool
	triples    [][3]string
	seenNode   map[string]bool
	seenLabel  map[string]bool
	seenType   map[string]bool
}

func newRefState(typePred string) *refState {
	return &refState{
		typePred:  typePred,
		symmetric: map[string]bool{},
		seenNode:  map[string]bool{},
		seenLabel: map[string]bool{},
		seenType:  map[string]bool{},
	}
}

func (r *refState) node(name string) {
	if !r.seenNode[name] {
		r.seenNode[name] = true
		r.nodeOrder = append(r.nodeOrder, name)
	}
}

func (r *refState) label(name string) {
	if r.seenLabel[name] {
		return
	}
	r.seenLabel[name] = true
	r.labelOrder = append(r.labelOrder, name)
	if !r.symmetric[name] {
		inv := InverseName(name)
		if !r.seenLabel[inv] {
			r.seenLabel[inv] = true
			r.labelOrder = append(r.labelOrder, inv)
		}
	}
}

// add records one triple, interning names in the same (S, P, O) order
// the live mutator uses.
func (r *refState) add(s, p, o string) {
	if r.typePred != "" && p == r.typePred {
		r.node(s)
		r.node(o)
		if !r.seenType[o] {
			r.seenType[o] = true
			r.typeOrder = append(r.typeOrder, o)
		}
	} else {
		r.node(s)
		r.label(p)
		r.node(o)
	}
	r.triples = append(r.triples, [3]string{s, p, o})
}

// del drops the triple in either orientation (a fact and its mirror are
// one edge pair). Names stay interned: IDs are append-only.
func (r *refState) del(s, p, o string) {
	inv := InverseName(p)
	if r.symmetric[p] {
		inv = p
	}
	keep := r.triples[:0]
	for _, tr := range r.triples {
		if tr == [3]string{s, p, o} || tr == [3]string{o, inv, s} {
			continue
		}
		keep = append(keep, tr)
	}
	r.triples = keep
}

// build replays the state from scratch: pre-intern dictionaries in the
// recorded order, then feed every triple (and its mirror) through the
// full sort + dedup + derived-data pipeline.
func (r *refState) build() *Graph {
	b := NewBuilder(2 * len(r.triples)).DisableInverses()
	for _, nm := range r.nodeOrder {
		b.Node(nm)
	}
	for _, ln := range r.labelOrder {
		b.Label(ln)
		if r.symmetric[ln] {
			b.Symmetric(ln)
		}
	}
	for _, tn := range r.typeOrder {
		b.Type(tn)
	}
	for _, tr := range r.triples {
		if r.typePred != "" && tr[1] == r.typePred {
			b.SetType(tr[0], tr[2])
			continue
		}
		b.AddEdge(tr[0], tr[1], tr[2])
		inv := InverseName(tr[1])
		if r.symmetric[tr[1]] {
			inv = tr[1]
		}
		b.AddEdge(tr[2], inv, tr[0])
	}
	return b.Build()
}

// requireSameGraph asserts bitwise equality of two graphs under the
// whole public read API, including transition probabilities and one
// serial + one parallel gather step.
func requireSameGraph(t *testing.T, got, want *Graph) {
	t.Helper()
	if got.NumNodes() != want.NumNodes() || got.NumEdges() != want.NumEdges() ||
		got.NumLabels() != want.NumLabels() || got.NumTypes() != want.NumTypes() {
		t.Fatalf("size mismatch: got %s, want %s", got.Stats(), want.Stats())
	}
	for l := 0; l < want.NumLabels(); l++ {
		ll := LabelID(l)
		if got.LabelName(ll) != want.LabelName(ll) {
			t.Fatalf("label %d name: got %q, want %q", l, got.LabelName(ll), want.LabelName(ll))
		}
		if got.InverseLabel(ll) != want.InverseLabel(ll) {
			t.Fatalf("label %d inverse: got %d, want %d", l, got.InverseLabel(ll), want.InverseLabel(ll))
		}
		if got.LabelCount(ll) != want.LabelCount(ll) {
			t.Fatalf("label %q count: got %d, want %d", want.LabelName(ll), got.LabelCount(ll), want.LabelCount(ll))
		}
		if got.LabelWeight(ll) != want.LabelWeight(ll) {
			t.Fatalf("label %q weight: got %v, want %v", want.LabelName(ll), got.LabelWeight(ll), want.LabelWeight(ll))
		}
	}
	for ty := 0; ty < want.NumTypes(); ty++ {
		if got.TypeName(TypeID(ty)) != want.TypeName(TypeID(ty)) {
			t.Fatalf("type %d name: got %q, want %q", ty, got.TypeName(TypeID(ty)), want.TypeName(TypeID(ty)))
		}
	}
	for n := 0; n < want.NumNodes(); n++ {
		nn := NodeID(n)
		if got.NodeName(nn) != want.NodeName(nn) {
			t.Fatalf("node %d name: got %q, want %q", n, got.NodeName(nn), want.NodeName(nn))
		}
		if id, ok := got.NodeByName(want.NodeName(nn)); !ok || id != nn {
			t.Fatalf("NodeByName(%q): got (%d, %t), want (%d, true)", want.NodeName(nn), id, ok, n)
		}
		if got.TypeOf(nn) != want.TypeOf(nn) {
			t.Fatalf("node %q type: got %d, want %d", want.NodeName(nn), got.TypeOf(nn), want.TypeOf(nn))
		}
		ga, wa := got.OutEdges(nn), want.OutEdges(nn)
		if len(ga) != len(wa) {
			t.Fatalf("node %q degree: got %d, want %d", want.NodeName(nn), len(ga), len(wa))
		}
		for i := range wa {
			if ga[i] != wa[i] {
				t.Fatalf("node %q edge %d: got %+v, want %+v", want.NodeName(nn), i, ga[i], wa[i])
			}
		}
		if got.WeightedOutDegree(nn) != want.WeightedOutDegree(nn) {
			t.Fatalf("node %q wdeg: got %v, want %v", want.NodeName(nn), got.WeightedOutDegree(nn), want.WeightedOutDegree(nn))
		}
	}
	gt, wt := got.Transitions(), want.Transitions()
	for n := 0; n < want.NumNodes(); n++ {
		if !reflect.DeepEqual(gt.Probs(NodeID(n)), wt.Probs(NodeID(n))) {
			t.Fatalf("node %q probs: got %v, want %v", want.NodeName(NodeID(n)), gt.Probs(NodeID(n)), wt.Probs(NodeID(n)))
		}
	}
	p := make([]float64, want.NumNodes())
	for i := range p {
		p[i] = 1 / float64(i+1)
	}
	gn := make([]float64, len(p))
	wn := make([]float64, len(p))
	gd := gt.GatherStep(gn, p, 0.8)
	wd := wt.GatherStep(wn, p, 0.8)
	if gd != wd || !reflect.DeepEqual(gn, wn) {
		t.Fatalf("gather step mismatch: dangling %v vs %v", gd, wd)
	}
	gd = gt.GatherStepParallel(gn, p, 0.8, 4)
	if gd != wd || !reflect.DeepEqual(gn, wn) {
		t.Fatalf("parallel gather step mismatch")
	}
}

// politicsRef seeds a small typed graph in the spirit of Figure 1.
func politicsRef() *refState {
	r := newRefState("isA")
	for _, tr := range [][3]string{
		{"Merkel", "isA", "politician"},
		{"Obama", "isA", "politician"},
		{"Hollande", "isA", "politician"},
		{"Merkel", "studied", "Physics"},
		{"Obama", "studied", "Law"},
		{"Hollande", "studied", "Law"},
		{"Merkel", "partyOf", "CDU"},
		{"Obama", "partyOf", "Democrats"},
		{"Merkel", "bornIn", "Hamburg"},
		{"Obama", "bornIn", "Honolulu"},
		{"Hollande", "bornIn", "Rouen"},
		{"Obama", "hasChild", "Malia"},
		{"Hollande", "hasChild", "Thomas"},
	} {
		r.add(tr[0], tr[1], tr[2])
	}
	return r
}

func applyOrFatal(t *testing.T, v *Versioned, adds, dels []Triple) *View {
	t.Helper()
	view, err := v.Apply(adds, dels)
	if err != nil {
		t.Fatalf("Apply: %v", err)
	}
	return view
}

func TestVersionedApplyMatchesFromScratch(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA", CompactThreshold: -1})

	// Batch 1: adds over existing nodes and labels.
	view := applyOrFatal(t, v, []Triple{
		{"Merkel", "hasChild", "Nobody"},
		{"Hollande", "partyOf", "PS"},
	}, nil)
	ref.add("Merkel", "hasChild", "Nobody")
	ref.add("Hollande", "partyOf", "PS")
	if view.Epoch != 1 {
		t.Fatalf("epoch after first apply: got %d, want 1", view.Epoch)
	}
	requireSameGraph(t, view.G, ref.build())

	// Batch 2: new nodes, a new label, and a type assignment for a new
	// node.
	view = applyOrFatal(t, v, []Triple{
		{"Macron", "isA", "politician"},
		{"Macron", "studied", "Philosophy"},
		{"Macron", "awarded", "LegionOfHonour"},
		{"Obama", "awarded", "NobelPeacePrize"},
	}, nil)
	ref.add("Macron", "isA", "politician")
	ref.add("Macron", "studied", "Philosophy")
	ref.add("Macron", "awarded", "LegionOfHonour")
	ref.add("Obama", "awarded", "NobelPeacePrize")
	requireSameGraph(t, view.G, ref.build())

	// Batch 3: deletes — a base edge, an overlay-added edge, an absent
	// edge, and an unknown name (the last two are no-ops).
	view = applyOrFatal(t, v, nil, []Triple{
		{"Merkel", "studied", "Physics"},
		{"Macron", "awarded", "LegionOfHonour"},
		{"Merkel", "studied", "Law"},
		{"Nessie", "studied", "Law"},
	})
	ref.del("Merkel", "studied", "Physics")
	ref.del("Macron", "awarded", "LegionOfHonour")
	if view.Epoch != 3 {
		t.Fatalf("epoch after third apply: got %d, want 3", view.Epoch)
	}
	requireSameGraph(t, view.G, ref.build())

	// Batch 4: mixed adds + dels in one batch, including deleting a
	// node's last edge (the node must survive with a zero degree) and
	// deleting via the inverse orientation.
	view = applyOrFatal(t, v,
		[]Triple{{"Merkel", "studied", "QuantumChemistry"}},
		[]Triple{
			{"Nobody", InverseName("hasChild"), "Merkel"},
			{"Macron", "studied", "Philosophy"},
		})
	ref.add("Merkel", "studied", "QuantumChemistry")
	ref.del("Merkel", "hasChild", "Nobody")
	ref.del("Macron", "studied", "Philosophy")
	requireSameGraph(t, view.G, ref.build())

	if got := v.Stats(); got.Epoch != 4 || got.OverlayAdds == 0 || got.OverlayDels == 0 {
		t.Fatalf("stats after batches: %+v", got)
	}
}

func TestVersionedSymmetricLabelMirrorsUnderSameLabel(t *testing.T) {
	r := newRefState("")
	r.symmetric["spouse"] = true
	r.add("A", "spouse", "B")
	r.add("A", "knows", "C")
	v := NewVersioned(r.build(), VersionedOptions{CompactThreshold: -1})

	view := applyOrFatal(t, v, []Triple{{"C", "spouse", "D"}}, nil)
	r.add("C", "spouse", "D")
	requireSameGraph(t, view.G, r.build())

	// The mirror of a symmetric edge carries the same label.
	g := view.G
	c, _ := g.NodeByName("C")
	d, _ := g.NodeByName("D")
	sp, _ := g.LabelByName("spouse")
	if !g.HasEdge(d, sp, c) {
		t.Fatalf("symmetric mirror (D, spouse, C) missing")
	}

	view = applyOrFatal(t, v, nil, []Triple{{"A", "spouse", "B"}})
	r.del("A", "spouse", "B")
	requireSameGraph(t, view.G, r.build())
}

func TestVersionedCompactionPreservesGraphAndEpoch(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA", CompactThreshold: -1})
	applyOrFatal(t, v, []Triple{
		{"Macron", "isA", "politician"},
		{"Macron", "studied", "Philosophy"},
	}, []Triple{{"Merkel", "studied", "Physics"}})
	ref.add("Macron", "isA", "politician")
	ref.add("Macron", "studied", "Philosophy")
	ref.del("Merkel", "studied", "Physics")

	before := v.View()
	after := v.Compact()
	if after.Epoch != before.Epoch {
		t.Fatalf("compaction moved the epoch: %d -> %d", before.Epoch, after.Epoch)
	}
	if after.G.ov != nil {
		t.Fatalf("compacted graph still has an overlay")
	}
	if after.Adds != 0 || after.Dels != 0 {
		t.Fatalf("compacted view still reports overlay counts: %+v", after)
	}
	requireSameGraph(t, after.G, ref.build())
	requireSameGraph(t, before.G, ref.build()) // pinned pre-compaction view unaffected
	if st := v.Stats(); st.Rebuilds != 1 || st.LastCompaction <= 0 {
		t.Fatalf("stats after compaction: %+v", st)
	}

	// A further apply builds a fresh overlay on the compacted base.
	view := applyOrFatal(t, v, []Triple{{"Macron", "partyOf", "LREM"}}, nil)
	ref.add("Macron", "partyOf", "LREM")
	requireSameGraph(t, view.G, ref.build())
}

func TestVersionedBackgroundCompaction(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA", CompactThreshold: 1})
	view := applyOrFatal(t, v, []Triple{{"Merkel", "knows", "Obama"}}, nil)
	ref.add("Merkel", "knows", "Obama")
	v.WaitCompaction()
	if st := v.Stats(); st.Rebuilds != 1 {
		t.Fatalf("background compaction did not run: %+v", st)
	}
	cur := v.View()
	if cur.Epoch != view.Epoch || cur.G.ov != nil {
		t.Fatalf("background compaction result: epoch %d (want %d), overlay %v", cur.Epoch, view.Epoch, cur.G.ov != nil)
	}
	requireSameGraph(t, cur.G, ref.build())
}

func TestVersionedViewPinning(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA", CompactThreshold: -1})
	applyOrFatal(t, v, []Triple{{"Merkel", "knows", "Obama"}}, nil)
	ref.add("Merkel", "knows", "Obama")
	pinnedRef := ref.build()
	pinned := v.View()

	applyOrFatal(t, v, []Triple{{"Obama", "knows", "Hollande"}}, []Triple{{"Merkel", "knows", "Obama"}})
	v.Compact()

	// The pinned view still reads exactly its epoch's graph.
	requireSameGraph(t, pinned.G, pinnedRef)
}

func TestVersionedNoOpBatchKeepsEpoch(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA"})
	before := v.View()
	view := applyOrFatal(t, v,
		[]Triple{{"Merkel", "studied", "Physics"}}, // already present
		[]Triple{{"Merkel", "studied", "Law"}},     // absent
	)
	if view != before {
		t.Fatalf("no-op batch published a new view (epoch %d)", view.Epoch)
	}
	if _, err := v.Apply([]Triple{{"", "studied", "Law"}}, nil); err == nil {
		t.Fatalf("empty subject accepted")
	}
}

func TestVersionedSnapshotRoundTripOfOverlay(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA", CompactThreshold: -1})
	view := applyOrFatal(t, v, []Triple{
		{"Macron", "isA", "politician"},
		{"Macron", "studied", "Philosophy"},
	}, []Triple{{"Obama", "studied", "Law"}})
	ref.add("Macron", "isA", "politician")
	ref.add("Macron", "studied", "Philosophy")
	ref.del("Obama", "studied", "Law")

	var buf bytes.Buffer
	if err := view.G.WriteSnapshot(&buf); err != nil {
		t.Fatalf("WriteSnapshot: %v", err)
	}
	back, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatalf("ReadSnapshot: %v", err)
	}
	requireSameGraph(t, back, ref.build())
}

// TestVersionedConcurrentReaders drives reads, applies, and compactions
// concurrently; run under -race. Each reader pins one view and checks a
// structural invariant that would break on a torn graph.
func TestVersionedConcurrentReaders(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA", CompactThreshold: 3})

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				view := v.View()
				g := view.G
				// Count edges through the public API and through the
				// transition matrix; both must agree with NumEdges on
				// a consistent snapshot.
				total := 0
				for n := 0; n < g.NumNodes(); n++ {
					total += len(g.OutEdges(NodeID(n)))
				}
				if total != g.NumEdges() {
					t.Errorf("torn view at epoch %d: %d edges enumerated, NumEdges %d", view.Epoch, total, g.NumEdges())
					return
				}
				tr := g.Transitions()
				p := make([]float64, g.NumNodes())
				for i := range p {
					p[i] = 1 / float64(len(p))
				}
				next := make([]float64, len(p))
				tr.GatherStepParallel(next, p, 0.8, 2)
			}
		}()
	}

	for i := 0; i < 40; i++ {
		s := fmt.Sprintf("N%d", i)
		o := fmt.Sprintf("N%d", i+1)
		if _, err := v.Apply([]Triple{{s, "links", o}}, nil); err != nil {
			t.Errorf("Apply: %v", err)
			break
		}
		if i%7 == 3 {
			if _, err := v.Apply(nil, []Triple{{s, "links", o}}); err != nil {
				t.Errorf("Apply del: %v", err)
				break
			}
		}
	}
	v.Compact()
	close(stop)
	wg.Wait()
	v.WaitCompaction()
}

// TestVersionedReset: Reset republishes an arbitrary base at a forward
// epoch (the replication follower's snapshot-resync path), keeps pinned
// views untouched, refuses epoch rewinds, and leaves the store applying
// batches normally afterwards.
func TestVersionedReset(t *testing.T) {
	ref := politicsRef()
	v := NewVersioned(ref.build(), VersionedOptions{TypePredicate: "isA", CompactThreshold: -1})
	applyOrFatal(t, v, []Triple{{"Merkel", "hasChild", "Nobody"}}, nil)
	pinned := v.View()
	if pinned.Epoch != 1 {
		t.Fatalf("epoch before reset: got %d, want 1", pinned.Epoch)
	}

	ref2 := politicsRef()
	ref2.add("Macron", "isA", "politician")
	ref2.add("Macron", "studied", "Philosophy")
	nv, err := v.Reset(ref2.build(), 7)
	if err != nil {
		t.Fatalf("Reset: %v", err)
	}
	if nv.Epoch != 7 {
		t.Fatalf("epoch after reset: got %d, want 7", nv.Epoch)
	}
	requireSameGraph(t, v.View().G, ref2.build())

	// The pinned pre-reset view is immutable: same epoch, same graph.
	if pinned.Epoch != 1 {
		t.Fatalf("pinned view's epoch changed to %d", pinned.Epoch)
	}
	ref.add("Merkel", "hasChild", "Nobody") // what the pinned view held
	requireSameGraph(t, pinned.G, ref.build())

	// Epochs only move forward, even through Reset.
	if _, err := v.Reset(politicsRef().build(), 3); err == nil {
		t.Fatal("Reset accepted an epoch rewind from 7 to 3")
	}

	// Post-reset applies continue the new epoch line.
	view := applyOrFatal(t, v, []Triple{{"Macron", "partyOf", "LREM"}}, nil)
	if view.Epoch != 8 {
		t.Fatalf("epoch after post-reset apply: got %d, want 8", view.Epoch)
	}
	ref2.add("Macron", "partyOf", "LREM")
	requireSameGraph(t, view.G, ref2.build())
}
