package kg

import (
	"sort"

	"repro/internal/exec"
)

// TransitionCSR is the informativeness-weighted transition matrix of Eq. 1
// in compressed sparse row form: one probability per edge, laid out in the
// exact order of the graph's CSR edge slice, so that Probs(n)[i] is the
// probability of a walker at n taking OutEdges(n)[i].
//
// Rows are normalized to sum to 1: Probs(n)[i] = w(l_i) / wdeg(n), with a
// uniform fallback (1/deg) for nodes whose weighted out-degree is zero
// (every incident label has weight 0 — the single-label graph case), so
// that no row silently drops walk mass. Dangling nodes have empty rows.
//
// The matrix is derived data: it is built once per graph on first use and
// shared by all readers, replacing the per-edge LabelWeight and
// WeightedOutDegree lookups that previously sat inside PageRank's
// power-iteration inner loop.
type TransitionCSR struct {
	g    *Graph
	prob []float64 // len NumEdges, aligned with the graph's edge enumeration
	off  []int64   // row offsets into prob; shares the base CSR offsets when possible

	// Transpose layout for gather-style power iteration: the in-edges of
	// node x are tFrom[tOff[x]:tOff[x+1]] with matching arrival
	// probabilities in tProb — tProb entries are the forward transition
	// probabilities of the corresponding source edges, reordered by
	// target.
	tOff  []int64
	tFrom []NodeID
	tProb []float64
	// dangling lists the out-degree-zero nodes, whose mass the teleport
	// redistributes.
	dangling []NodeID
}

// Transitions returns the graph's weighted transition matrix, building it
// on first call. Safe for concurrent use; the result is shared and must
// not be modified.
func (g *Graph) Transitions() *TransitionCSR {
	g.transOnce.Do(func() {
		if g.ov != nil {
			g.trans = g.ov.buildTransitions()
			return
		}
		n := g.NumNodes()
		t := &TransitionCSR{g: g, prob: make([]float64, len(g.edges)), off: g.offsets}
		for v := 0; v < n; v++ {
			lo, hi := g.offsets[v], g.offsets[v+1]
			if lo == hi {
				t.dangling = append(t.dangling, NodeID(v))
				continue
			}
			if wd := g.wdeg[v]; wd > 0 {
				inv := 1 / wd
				for i := lo; i < hi; i++ {
					t.prob[i] = g.weight[g.edges[i].Label] * inv
				}
			} else {
				u := 1 / float64(hi-lo)
				for i := lo; i < hi; i++ {
					t.prob[i] = u
				}
			}
		}
		// Transpose by counting sort on edge targets.
		t.tOff = make([]int64, n+1)
		t.tFrom = make([]NodeID, len(g.edges))
		t.tProb = make([]float64, len(g.edges))
		for _, e := range g.edges {
			t.tOff[e.To+1]++
		}
		for v := 1; v <= n; v++ {
			t.tOff[v] += t.tOff[v-1]
		}
		cursor := make([]int64, n)
		for from := 0; from < n; from++ {
			for i := g.offsets[from]; i < g.offsets[from+1]; i++ {
				to := g.edges[i].To
				pos := t.tOff[to] + cursor[to]
				t.tFrom[pos] = NodeID(from)
				t.tProb[pos] = t.prob[i]
				cursor[to]++
			}
		}
		g.trans = t
	})
	return g.trans
}

// Probs returns the transition probabilities of node n's out-edges,
// aligned with OutEdges(n). The slice is owned by the matrix and must not
// be modified.
func (t *TransitionCSR) Probs(n NodeID) []float64 {
	return t.prob[t.off[n]:t.off[n+1]]
}

// GatherStep computes one damped power-iteration step, next = c·Ã·p, as a
// gather over the transpose layout, and returns the probability mass
// sitting on dangling (out-degree-zero) nodes. It is the saturated-
// frontier kernel of the ppr package: next is written sequentially and
// overwritten outright (no pre-zeroing), in-edge lists and probabilities
// stream linearly, and only the reads of p are random. next must have at
// least NumNodes entries.
func (t *TransitionCSR) GatherStep(next, p []float64, c float64) (dangling float64) {
	t.gatherRows(next, p, c, 0, t.g.NumNodes())
	for _, d := range t.dangling {
		dangling += p[d]
	}
	return dangling
}

// gatherRows computes next[rowLo:rowHi) of one gather step: the row range
// is the unit of parallelism, and every row is produced entirely by one
// call, so any partition of [0, n) yields the same bits as a full serial
// sweep.
func (t *TransitionCSR) gatherRows(next, p []float64, c float64, rowLo, rowHi int) {
	lo := int(t.tOff[rowLo])
	for x := rowLo; x < rowHi; x++ {
		hi := int(t.tOff[x+1])
		row := t.tFrom[lo:hi]
		pr := t.tProb[lo:hi:hi][:len(row)]
		// Four running sums break the accumulator dependency chain (the
		// loop is FMA-latency-bound otherwise).
		var acc0, acc1, acc2, acc3 float64
		k := 0
		for ; k+3 < len(row); k += 4 {
			acc0 += p[row[k]] * pr[k]
			acc1 += p[row[k+1]] * pr[k+1]
			acc2 += p[row[k+2]] * pr[k+2]
			acc3 += p[row[k+3]] * pr[k+3]
		}
		for ; k < len(row); k++ {
			acc0 += p[row[k]] * pr[k]
		}
		next[x] = c * ((acc0 + acc1) + (acc2 + acc3))
		lo = hi
	}
}

// parallelGatherMinEdges is the edge count below which GatherStepParallel
// runs serially: a full gather over fewer edges completes in tens of
// microseconds, comparable to the cost of scheduling the workers.
const parallelGatherMinEdges = 1 << 14

// GatherStepParallel is GatherStep with rows partitioned over up to
// workers shards run through the shared executor (the last shard on the
// calling goroutine). Rows are independent — each next[x] is written by
// exactly one worker, and the dangling sum is accumulated serially — so
// the result is bitwise identical to the serial GatherStep for every
// worker count. Partitions balance in-edge counts via the transpose
// offsets, not row counts, so one hub-heavy shard cannot serialize the
// step. workers <= 1 (or a small graph) degrades to the serial kernel.
func (t *TransitionCSR) GatherStepParallel(next, p []float64, c float64, workers int) (dangling float64) {
	n := t.g.NumNodes()
	edges := int64(len(t.tFrom))
	if workers > n {
		workers = n
	}
	if workers <= 1 || edges < parallelGatherMinEdges {
		return t.GatherStep(next, p, c)
	}
	g := exec.NewGroup(exec.Default())
	prev := 0
	for w := 1; w <= workers; w++ {
		bound := n
		if w < workers {
			// Shard w ends at the first row starting at or beyond the next
			// equal-edge boundary.
			target := edges * int64(w) / int64(workers)
			bound = sort.Search(n, func(r int) bool { return t.tOff[r] >= target })
			if bound < prev {
				bound = prev
			}
		}
		if bound == prev {
			continue
		}
		lo, hi := prev, bound
		prev = bound
		if w == workers {
			t.gatherRows(next, p, c, lo, hi) // last shard runs on the caller
			break
		}
		g.Go(func() { t.gatherRows(next, p, c, lo, hi) })
	}
	g.Wait()
	for _, d := range t.dangling {
		dangling += p[d]
	}
	return dangling
}
