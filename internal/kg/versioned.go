package kg

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/dict"
)

// Triple is one (subject, predicate, object) fact in a mutation batch,
// by name. Names are interned on first sight; predicates equal to the
// store's TypePredicate assign node types instead of edges.
type Triple struct {
	S, P, O string
}

// DefaultCompactThreshold is the overlay size (applied adds + deletes
// since the last base) past which Apply schedules a background
// compaction.
const DefaultCompactThreshold = 4096

// VersionedOptions configures a Versioned store.
type VersionedOptions struct {
	// TypePredicate names the predicate whose triples assign node types
	// rather than edges (mirroring FromStore). Empty means every
	// predicate is an edge label.
	TypePredicate string
	// CompactThreshold is the overlay triple count (adds + dels since
	// the base) that triggers background compaction. Zero selects
	// DefaultCompactThreshold; negative disables automatic compaction
	// (Compact can still be called explicitly).
	CompactThreshold int
	// StartEpoch stamps the initial view (default 0). Recovery passes the
	// epoch of the checkpoint it restored, so replayed batches republish
	// the exact epochs they carried when first applied.
	StartEpoch uint64
	// OnCompact, when set, is called with the freshly published flat view
	// after every completed compaction swap (background or explicit),
	// outside the store's internal lock. Durable engines hang checkpoint
	// writing off it: a compaction is exactly the moment a flat snapshot
	// of the current epoch exists.
	OnCompact func(*View)
}

// View is one immutable, epoch-stamped snapshot of the graph. Readers
// pin a View for the whole lifetime of a request: the graph it holds is
// never mutated, so results computed against it are exactly those of a
// from-scratch graph at that epoch no matter how many Applies land
// concurrently.
type View struct {
	// Epoch increases by one per effective Apply. Compaction swaps the
	// representation (overlay → flat base) without changing the epoch,
	// because the readable graph is identical.
	Epoch uint64
	// G is the graph at this epoch.
	G *Graph
	// Adds and Dels count the forward triples applied since G's base
	// was built (zero for a flat base).
	Adds, Dels int
}

// VersionedStats is a point-in-time summary of a Versioned store for
// observability endpoints.
type VersionedStats struct {
	Epoch          uint64
	OverlayAdds    int
	OverlayDels    int
	Rebuilds       uint64        // base CSR rebuilds (compactions) completed
	LastCompaction time.Duration // duration of the most recent compaction, 0 if none
	Compacting     bool          // a background compaction is in flight
}

// Versioned holds a live, epoch-versioned graph: an atomic pointer to
// the current View plus a writer path that publishes copy-on-write
// overlay graphs. Reads (View) are wait-free; Apply and Compact
// serialize on an internal mutex. Safe for concurrent use.
type Versioned struct {
	opt VersionedOptions

	mu  sync.Mutex // serializes Apply and compaction swaps
	cur atomic.Pointer[View]

	compacting  atomic.Bool
	rebuilds    atomic.Uint64
	lastCompact atomic.Int64 // ns
	wg          sync.WaitGroup
}

// NewVersioned wraps base as epoch opt.StartEpoch (0 by default) of a
// live graph store.
func NewVersioned(base *Graph, opt VersionedOptions) *Versioned {
	v := &Versioned{opt: opt}
	view := &View{Epoch: opt.StartEpoch, G: base}
	if base.ov != nil {
		view.Adds, view.Dels = base.ov.adds, base.ov.dels
	}
	v.cur.Store(view)
	return v
}

// View returns the current epoch-stamped snapshot. Wait-free; the
// returned View and its graph are immutable.
func (v *Versioned) View() *View { return v.cur.Load() }

// Stats summarizes the store for observability.
func (v *Versioned) Stats() VersionedStats {
	cur := v.cur.Load()
	return VersionedStats{
		Epoch:          cur.Epoch,
		OverlayAdds:    cur.Adds,
		OverlayDels:    cur.Dels,
		Rebuilds:       v.rebuilds.Load(),
		LastCompaction: time.Duration(v.lastCompact.Load()),
		Compacting:     v.compacting.Load(),
	}
}

// Apply atomically applies a mutation batch — dels first, then adds —
// and publishes the result as a new View with Epoch+1. The base CSR is
// not rebuilt: the new view is a copy-on-write overlay over the current
// base, and earlier views remain valid and unchanged for readers that
// pinned them. Deleting a triple removes the edge and its mirror;
// deletes of unknown names or absent edges are no-ops; adding an edge
// that already exists is a no-op (matching Builder deduplication).
// Deleting a node's only edges leaves the node in place: node and label
// IDs are append-only across epochs.
//
// A batch with no effect (all adds already present, all dels absent)
// returns the current view without bumping the epoch, so warm caches
// keyed by epoch stay warm. Triples with an empty field are rejected.
func (v *Versioned) Apply(adds, dels []Triple) (*View, error) {
	for _, t := range append(append([]Triple(nil), adds...), dels...) {
		if t.S == "" || t.P == "" || t.O == "" {
			return nil, fmt.Errorf("kg: triple with empty field: %+v", t)
		}
	}
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.cur.Load()
	mut := newMutator(cur.G)
	for _, t := range dels {
		mut.del(t, v.opt.TypePredicate)
	}
	for _, t := range adds {
		mut.add(t, v.opt.TypePredicate)
	}
	if !mut.dirty {
		return cur, nil
	}
	nv := &View{Epoch: cur.Epoch + 1, G: mut.graph()}
	nv.Adds, nv.Dels = nv.G.ov.adds, nv.G.ov.dels
	v.cur.Store(nv)
	v.maybeCompact(nv)
	return nv, nil
}

// maybeCompact schedules a background compaction when the overlay has
// outgrown the threshold. Caller holds v.mu.
func (v *Versioned) maybeCompact(view *View) {
	threshold := v.opt.CompactThreshold
	if threshold == 0 {
		threshold = DefaultCompactThreshold
	}
	if threshold < 0 || view.Adds+view.Dels < threshold {
		return
	}
	if !v.compacting.CompareAndSwap(false, true) {
		return
	}
	v.wg.Add(1)
	go func() {
		defer v.wg.Done()
		defer v.compacting.Store(false)
		v.compactFrom(view)
	}()
}

// compactFrom folds view's overlay into a flat base off-thread and
// swaps it in if the epoch has not moved on; a stale rebuild is
// discarded (the next Apply past the threshold re-triggers).
func (v *Versioned) compactFrom(view *View) {
	start := time.Now()
	flat := view.G.Materialize()
	var published *View
	v.mu.Lock()
	if cur := v.cur.Load(); cur.Epoch == view.Epoch && cur.G == view.G {
		published = &View{Epoch: cur.Epoch, G: flat}
		v.cur.Store(published)
		v.rebuilds.Add(1)
		v.lastCompact.Store(int64(time.Since(start)))
	}
	v.mu.Unlock()
	if published != nil && v.opt.OnCompact != nil {
		v.opt.OnCompact(published)
	}
}

// Compact synchronously folds the current overlay into a fresh flat
// base and publishes it at the unchanged epoch. Returns the view that
// is current afterwards. Concurrent Applies may win the race; Compact
// simply retries against the newest view until the current graph is
// flat.
func (v *Versioned) Compact() *View {
	for {
		view := v.cur.Load()
		if view.G.ov == nil {
			return view
		}
		start := time.Now()
		flat := view.G.Materialize()
		v.mu.Lock()
		if cur := v.cur.Load(); cur.Epoch == view.Epoch && cur.G == view.G {
			nv := &View{Epoch: cur.Epoch, G: flat}
			v.cur.Store(nv)
			v.rebuilds.Add(1)
			v.lastCompact.Store(int64(time.Since(start)))
			v.mu.Unlock()
			if v.opt.OnCompact != nil {
				v.opt.OnCompact(nv)
			}
			return nv
		}
		v.mu.Unlock()
	}
}

// Reset discards the current state and publishes base as a fresh flat
// view at epoch — a replication follower re-bootstrapping from a new
// primary snapshot after its stream position was truncated away. The
// epoch may only move forward: replicas never expose time travel to
// their readers. Requests that pinned an older view keep it, exactly as
// with Apply; a background compaction racing the reset discards its
// rebuild (the epoch/graph identity check in compactFrom fails).
func (v *Versioned) Reset(base *Graph, epoch uint64) (*View, error) {
	v.mu.Lock()
	defer v.mu.Unlock()
	cur := v.cur.Load()
	if epoch < cur.Epoch {
		return nil, fmt.Errorf("kg: reset would rewind epoch %d to %d", cur.Epoch, epoch)
	}
	nv := &View{Epoch: epoch, G: base}
	if base.ov != nil {
		nv.Adds, nv.Dels = base.ov.adds, base.ov.dels
	}
	v.cur.Store(nv)
	return nv, nil
}

// WaitCompaction blocks until any in-flight background compaction has
// finished. Intended for tests and orderly shutdown.
func (v *Versioned) WaitCompaction() { v.wg.Wait() }

// mutator is the working state of one Apply: a mutable copy-on-write
// fork of the previous view's overlay. All maps and slices it touches
// are fresh copies, so previous views stay frozen.
type mutator struct {
	base *Graph // flat base shared by every overlay in the chain
	prev *Graph // graph of the previous view (base or overlay)

	n, m int

	patched   map[NodeID][]Edge
	typePatch map[NodeID]TypeID

	nodeX  *extraNames
	labelX *extraNames
	typeX  *extraNames

	inverse    []LabelID
	labelCount []int64

	adds, dels int
	dirty      bool
}

func newMutator(prev *Graph) *mutator {
	m := &mutator{prev: prev}
	if o := prev.ov; o != nil {
		m.base = o.base
		m.n, m.m = o.n, o.m
		m.patched = make(map[NodeID][]Edge, len(o.patched)+4)
		for k, vv := range o.patched {
			m.patched[k] = vv
		}
		m.typePatch = make(map[NodeID]TypeID, len(o.typePatch)+1)
		for k, vv := range o.typePatch {
			m.typePatch[k] = vv
		}
		m.nodeX = o.nodeX.clone(m.base.nodes.Len())
		m.labelX = o.labelX.clone(m.base.labels.Len())
		m.typeX = o.typeX.clone(m.base.types.Len())
		m.adds, m.dels = o.adds, o.dels
	} else {
		m.base = prev
		m.n, m.m = prev.NumNodes(), prev.NumEdges()
		m.patched = make(map[NodeID][]Edge, 4)
		m.typePatch = make(map[NodeID]TypeID, 1)
		m.nodeX = (*extraNames)(nil).clone(m.base.nodes.Len())
		m.labelX = (*extraNames)(nil).clone(m.base.labels.Len())
		m.typeX = (*extraNames)(nil).clone(m.base.types.Len())
	}
	m.inverse = append([]LabelID(nil), prev.inverse...)
	m.labelCount = append([]int64(nil), prev.labelCount...)
	return m
}

// node interns a node name, assigning the next dense ID when new.
func (m *mutator) node(name string) NodeID {
	if id := m.base.nodes.Lookup(name); id != dict.NoID {
		return id
	}
	if id, ok := m.nodeX.lookup(name); ok {
		return id
	}
	m.n++
	m.dirty = true
	return m.nodeX.add(name)
}

func (m *mutator) lookupNode(name string) (NodeID, bool) {
	if id := m.base.nodes.Lookup(name); id != dict.NoID {
		return id, true
	}
	return m.nodeX.lookup(name)
}

func (m *mutator) lookupLabel(name string) (LabelID, bool) {
	if id := m.base.labels.Lookup(name); id != dict.NoID {
		return id, true
	}
	return m.labelX.lookup(name)
}

// label interns an edge label, creating its inverse label alongside it
// — the same pairing Builder.Build establishes, so a from-scratch
// rebuild that interns labels in this graph's ID order reproduces the
// identical inverse table.
func (m *mutator) label(name string) LabelID {
	if id, ok := m.lookupLabel(name); ok {
		return id
	}
	id := m.internLabel(name)
	invName := InverseName(name)
	if iv, ok := m.lookupLabel(invName); ok {
		// The inverse name already exists (name is "x⁻¹" for a
		// symmetric base label x). Point at it one-way, like Build.
		m.inverse[id] = iv
	} else {
		iv := m.internLabel(invName)
		m.inverse[id] = iv
		m.inverse[iv] = id
	}
	return id
}

func (m *mutator) internLabel(name string) LabelID {
	id := m.labelX.add(name)
	m.inverse = append(m.inverse, id) // provisional self-inverse; label() fixes it up
	m.labelCount = append(m.labelCount, 0)
	m.dirty = true
	return id
}

func (m *mutator) lookupType(name string) (TypeID, bool) {
	if id := m.base.types.Lookup(name); id != dict.NoID {
		return id, true
	}
	return m.typeX.lookup(name)
}

func (m *mutator) typeID(name string) TypeID {
	if id := m.base.types.Lookup(name); id != dict.NoID {
		return id
	}
	if id, ok := m.typeX.lookup(name); ok {
		return id
	}
	m.dirty = true
	return m.typeX.add(name)
}

// adjOf returns the effective adjacency of node v in the working state.
func (m *mutator) adjOf(v NodeID) []Edge {
	if adj, ok := m.patched[v]; ok {
		return adj
	}
	if int(v) < m.base.NumNodes() {
		return m.base.edges[m.base.offsets[v]:m.base.offsets[v+1]]
	}
	return nil
}

// insertEdge inserts (from, l, to) at its sorted position, reporting
// whether the adjacency changed. The previous slice is never mutated.
func (m *mutator) insertEdge(from NodeID, l LabelID, to NodeID) bool {
	adj := m.adjOf(from)
	i := sort.Search(len(adj), func(i int) bool {
		e := adj[i]
		return e.Label > l || (e.Label == l && e.To >= to)
	})
	if i < len(adj) && adj[i].Label == l && adj[i].To == to {
		return false
	}
	na := make([]Edge, 0, len(adj)+1)
	na = append(na, adj[:i]...)
	na = append(na, Edge{Label: l, To: to})
	na = append(na, adj[i:]...)
	m.patched[from] = na
	m.m++
	m.labelCount[l]++
	m.dirty = true
	return true
}

// removeEdge removes (from, l, to) if present, reporting whether the
// adjacency changed. The previous slice is never mutated.
func (m *mutator) removeEdge(from NodeID, l LabelID, to NodeID) bool {
	adj := m.adjOf(from)
	i := sort.Search(len(adj), func(i int) bool {
		e := adj[i]
		return e.Label > l || (e.Label == l && e.To >= to)
	})
	if i >= len(adj) || adj[i].Label != l || adj[i].To != to {
		return false
	}
	na := make([]Edge, 0, len(adj)-1)
	na = append(na, adj[:i]...)
	na = append(na, adj[i+1:]...)
	m.patched[from] = na
	m.m--
	m.labelCount[l]--
	m.dirty = true
	return true
}

// add applies one added triple: a type assignment when the predicate is
// typePred, otherwise the edge plus its mirror under the inverse label.
// Interning order (subject, predicate, object) matches Builder.AddEdge
// so a replayed from-scratch build assigns identical IDs.
func (m *mutator) add(t Triple, typePred string) {
	if typePred != "" && t.P == typePred {
		s := m.node(t.S)
		m.node(t.O) // type objects are interned as nodes, as FromStore does
		tt := m.typeID(t.O)
		if m.effectiveType(s) != tt {
			m.typePatch[s] = tt
			m.dirty = true
		}
		return
	}
	s := m.node(t.S)
	l := m.label(t.P)
	o := m.node(t.O)
	if m.insertEdge(s, l, o) {
		m.adds++
	}
	m.insertEdge(o, m.inverse[l], s)
}

// del applies one deleted triple; unknown names and absent edges are
// no-ops. Deleting a type triple clears the node's type if it matches.
func (m *mutator) del(t Triple, typePred string) {
	if typePred != "" && t.P == typePred {
		s, ok1 := m.lookupNode(t.S)
		tt, ok2 := m.lookupType(t.O)
		if ok1 && ok2 && m.effectiveType(s) == tt {
			m.typePatch[s] = NoType
			m.dirty = true
		}
		return
	}
	s, ok1 := m.lookupNode(t.S)
	l, ok2 := m.lookupLabel(t.P)
	o, ok3 := m.lookupNode(t.O)
	if !ok1 || !ok2 || !ok3 {
		return
	}
	if m.removeEdge(s, l, o) {
		m.dels++
	}
	m.removeEdge(o, m.inverse[l], s)
}

func (m *mutator) effectiveType(n NodeID) TypeID {
	if t, ok := m.typePatch[n]; ok {
		return t
	}
	if int(n) < len(m.base.nodeType) {
		return m.base.nodeType[n]
	}
	return NoType
}

// graph freezes the working state into a published overlay Graph,
// recomputing the global label weights with Builder.Build's exact
// expression (every weight depends on the edge total, so all change on
// any mutation).
func (m *mutator) graph() *Graph {
	weight := make([]float64, len(m.inverse))
	total := float64(m.m)
	for l := range weight {
		if total > 0 {
			weight[l] = 1 - float64(m.labelCount[l])/total
		}
	}
	g := &Graph{
		nodes:      m.base.nodes,
		labels:     m.base.labels,
		types:      m.base.types,
		nodeType:   m.base.nodeType,
		inverse:    m.inverse,
		labelCount: m.labelCount,
		weight:     weight,
	}
	g.ov = &overlay{
		g:         g,
		base:      m.base,
		n:         m.n,
		m:         m.m,
		patched:   m.patched,
		typePatch: m.typePatch,
		nodeX:     m.nodeX,
		labelX:    m.labelX,
		typeX:     m.typeX,
		adds:      m.adds,
		dels:      m.dels,
	}
	return g
}
