package kg

import (
	"testing"

	"repro/internal/triplestore"
)

func TestFromStore(t *testing.T) {
	b := triplestore.NewBuilder(8)
	b.Add("merkel", "type", "politician")
	b.Add("merkel", "leaderOf", "germany")
	b.Add("obama", "type", "politician")
	b.Add("obama", "leaderOf", "usa")
	b.Add("germany", "type", "country")
	s := b.Freeze()

	g := FromStore(s, "type")
	merkel, ok := g.NodeByName("merkel")
	if !ok {
		t.Fatal("merkel missing")
	}
	if g.TypeName(g.TypeOf(merkel)) != "politician" {
		t.Fatalf("TypeOf(merkel) = %q", g.TypeName(g.TypeOf(merkel)))
	}
	leaderOf, ok := g.LabelByName("leaderOf")
	if !ok {
		t.Fatal("leaderOf missing")
	}
	if int(g.LabelCount(leaderOf)) != 2 {
		t.Fatalf("leaderOf count = %d, want 2", g.LabelCount(leaderOf))
	}
	// type triples must not appear as edges.
	if _, ok := g.LabelByName("type"); ok {
		t.Fatal("type predicate leaked into edge labels")
	}
	// Reverse edges exist.
	germany, _ := g.NodeByName("germany")
	if !g.HasEdge(germany, g.InverseLabel(leaderOf), merkel) {
		t.Fatal("reverse edge missing after FromStore")
	}
}

func TestFromStoreNoTypePredicate(t *testing.T) {
	b := triplestore.NewBuilder(4)
	b.Add("a", "type", "thing")
	b.Add("a", "p", "b")
	s := b.Freeze()
	g := FromStore(s, "")
	// With no type predicate configured, "type" is an ordinary edge.
	if _, ok := g.LabelByName("type"); !ok {
		t.Fatal("type should be an edge label when typePredicate is empty")
	}
	a, _ := g.NodeByName("a")
	if g.TypeOf(a) != NoType {
		t.Fatal("no node types should be assigned")
	}
}

func TestFromStoreMissingTypePredicate(t *testing.T) {
	b := triplestore.NewBuilder(2)
	b.Add("a", "p", "b")
	s := b.Freeze()
	// Asking for a type predicate that does not occur must not panic.
	g := FromStore(s, "type")
	if g.NumNodes() != 2 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
}

func TestBuilderCounts(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge("a", "p", "b")
	b.AddEdge("b", "q", "c")
	if b.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d", b.NumEdges())
	}
	if b.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", b.NumNodes())
	}
}

func TestDisableInverses(t *testing.T) {
	b := NewBuilder(2).DisableInverses()
	b.AddEdge("a", "p", "b")
	g := b.Build()
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1 without inverses", g.NumEdges())
	}
	// Inverse labels are still assigned (the dictionary is complete) but
	// no reverse edge exists.
	p, _ := g.LabelByName("p")
	bNode, _ := g.NodeByName("b")
	aNode, _ := g.NodeByName("a")
	if g.HasEdge(bNode, g.InverseLabel(p), aNode) {
		t.Fatal("reverse edge exists despite DisableInverses")
	}
}

func TestSetTypeID(t *testing.T) {
	b := NewBuilder(2)
	n := b.Node("x")
	tid := b.Type("thing")
	b.SetTypeID(n, tid)
	g := b.Build()
	if g.TypeName(g.TypeOf(n)) != "thing" {
		t.Fatal("SetTypeID not honored")
	}
}

func TestSelfLoopSymmetric(t *testing.T) {
	b := NewBuilder(2)
	b.Symmetric("knows")
	b.AddEdge("a", "knows", "a")
	g := b.Build()
	// A symmetric self-loop collapses to a single edge after dedup.
	if g.NumEdges() != 1 {
		t.Fatalf("NumEdges = %d, want 1", g.NumEdges())
	}
}

func TestMultipleLabelsBetweenSamePair(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge("a", "p", "b")
	b.AddEdge("a", "q", "b")
	g := b.Build()
	a, _ := g.NodeByName("a")
	if g.OutDegree(a) != 2 {
		t.Fatalf("OutDegree(a) = %d, want 2 parallel edges", g.OutDegree(a))
	}
}
