package kg

import (
	"math/rand"
	"runtime"
	"testing"
)

// packColumns interleaves cols (each a dense n-vector) into the blocked
// layout GatherStepMulti expects.
func packColumns(cols [][]float64, n int) []float64 {
	b := len(cols)
	pm := make([]float64, n*b)
	for j, col := range cols {
		for x := 0; x < n; x++ {
			pm[x*b+j] = col[x]
		}
	}
	return pm
}

// TestGatherStepMultiMatchesSerialBitwise: every block width must
// reproduce b independent serial GatherStep runs bit for bit — the
// invariant the whole batched PPR path rests on.
func TestGatherStepMultiMatchesSerialBitwise(t *testing.T) {
	for trial := 0; trial < 8; trial++ {
		g := transitionGraph(int64(trial), 30+trial*40, 100+trial*150)
		tr := g.Transitions()
		n := g.NumNodes()
		rng := rand.New(rand.NewSource(int64(trial) + 500))
		for b := 1; b <= MaxGatherBlock; b++ {
			cols := make([][]float64, b)
			want := make([][]float64, b)
			wantDangling := make([]float64, b)
			for j := range cols {
				cols[j] = make([]float64, n)
				for x := range cols[j] {
					cols[j][x] = rng.Float64()
				}
				want[j] = make([]float64, n)
				wantDangling[j] = tr.GatherStep(want[j], cols[j], 0.8)
			}
			pm := packColumns(cols, n)
			next := make([]float64, n*b)
			for i := range next {
				next[i] = -1 // stale garbage every row must overwrite
			}
			dangling := make([]float64, b)
			tr.GatherStepMulti(next, pm, 0.8, b, dangling)
			for j := 0; j < b; j++ {
				if dangling[j] != wantDangling[j] {
					t.Fatalf("trial %d b=%d col %d: dangling %v != %v",
						trial, b, j, dangling[j], wantDangling[j])
				}
				for x := 0; x < n; x++ {
					if next[x*b+j] != want[j][x] {
						t.Fatalf("trial %d b=%d col %d row %d: %v != serial %v",
							trial, b, j, x, next[x*b+j], want[j][x])
					}
				}
			}
		}
	}
}

// TestGatherStepMultiParallelBitwiseIdentical: the row-partitioned blocked
// kernel matches the serial blocked kernel for every worker count, above
// and below the serial-fallback threshold.
func TestGatherStepMultiParallelBitwiseIdentical(t *testing.T) {
	shapes := []struct{ nodes, edges int }{
		{60, 300},
		{3000, 12000},
		{5000, 40000},
	}
	for _, sh := range shapes {
		g := transitionGraph(13, sh.nodes, sh.edges)
		tr := g.Transitions()
		n := g.NumNodes()
		rng := rand.New(rand.NewSource(29))
		for _, b := range []int{1, 3, MaxGatherBlock} {
			pm := make([]float64, n*b)
			for i := range pm {
				pm[i] = rng.Float64()
			}
			want := make([]float64, n*b)
			wantDangling := make([]float64, b)
			tr.GatherStepMulti(want, pm, 0.8, b, wantDangling)
			for _, workers := range []int{1, 2, 3, 7, 16, n + 1} {
				next := make([]float64, n*b)
				for i := range next {
					next[i] = -1
				}
				dangling := make([]float64, b)
				tr.GatherStepMultiParallel(next, pm, 0.8, b, dangling, workers)
				for j := 0; j < b; j++ {
					if dangling[j] != wantDangling[j] {
						t.Fatalf("%d nodes b=%d workers=%d: dangling col %d differs",
							sh.nodes, b, workers, j)
					}
				}
				for i := range want {
					if next[i] != want[i] {
						t.Fatalf("%d nodes b=%d workers=%d: slot %d = %v, serial %v",
							sh.nodes, b, workers, i, next[i], want[i])
					}
				}
			}
		}
	}
}

// BenchmarkGatherStepMulti pits one blocked step serving 8 vectors
// against 8 serial steps — the amortization claim of the batched cold
// path, measured at the kernel level.
func BenchmarkGatherStepMulti(b *testing.B) {
	g := transitionGraph(42, 20000, 200000)
	tr := g.Transitions()
	n := g.NumNodes()
	rng := rand.New(rand.NewSource(1))
	const width = MaxGatherBlock
	pm := make([]float64, n*width)
	for i := range pm {
		pm[i] = rng.Float64()
	}
	nextM := make([]float64, n*width)
	dangling := make([]float64, width)
	// The serial baseline cycles 8 distinct vectors, as 8 independent
	// queries would — re-reading one cached vector 8 times would flatter
	// it.
	ps := make([][]float64, width)
	for v := range ps {
		ps[v] = make([]float64, n)
		for x := range ps[v] {
			ps[v][x] = pm[x*width+v]
		}
	}
	next := make([]float64, n)
	b.Run("multi8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			tr.GatherStepMulti(nextM, pm, 0.8, width, dangling)
		}
	})
	b.Run("serial8", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			for v := 0; v < width; v++ {
				tr.GatherStep(next, ps[v], 0.8)
			}
		}
	})
	b.Run("parallel8", func(b *testing.B) {
		b.ReportAllocs()
		workers := runtime.GOMAXPROCS(0)
		for i := 0; i < b.N; i++ {
			tr.GatherStepMultiParallel(nextM, pm, 0.8, width, dangling, workers)
		}
	})
}
