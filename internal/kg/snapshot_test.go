package kg

import (
	"bytes"
	"errors"
	"math/rand"
	"testing"

	"repro/internal/snapshot"
)

func TestSnapshotRoundTripFigure1(t *testing.T) {
	g := figure1()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestSnapshotRoundTripRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	b := NewBuilder(0)
	labels := []string{"actedIn", "hasChild", "livesIn", "spouse"}
	b.Symmetric("spouse")
	for i := 0; i < 2000; i++ {
		from := nodeName(rng.Intn(26)) + nodeName(rng.Intn(26))
		to := nodeName(rng.Intn(26)) + nodeName(rng.Intn(26))
		b.AddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	b.SetType("aa", "person")
	b.SetType("bb", "movie")
	g := b.Build()

	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	assertGraphsEqual(t, g, got)
}

func TestSnapshotEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := ReadSnapshot(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != 0 || got.NumEdges() != 0 {
		t.Fatalf("empty round trip: %s", got.Stats())
	}
}

func TestSnapshotDetectsCorruption(t *testing.T) {
	g := figure1()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Flip a byte in the middle of the payload.
	data[len(data)/2] ^= 0x55
	_, err := ReadSnapshot(bytes.NewReader(data))
	if err == nil {
		t.Fatal("corrupted snapshot read succeeded")
	}
}

func TestSnapshotDetectsTruncation(t *testing.T) {
	g := figure1()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()[:buf.Len()/2]
	_, err := ReadSnapshot(bytes.NewReader(data))
	if !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func TestSnapshotRejectsWrongMagic(t *testing.T) {
	_, err := ReadSnapshot(bytes.NewReader([]byte("not a snapshot at all")))
	if !errors.Is(err, snapshot.ErrCorrupt) {
		t.Fatalf("err = %v, want ErrCorrupt", err)
	}
}

func assertGraphsEqual(t *testing.T, want, got *Graph) {
	t.Helper()
	if want.NumNodes() != got.NumNodes() {
		t.Fatalf("NumNodes: %d vs %d", got.NumNodes(), want.NumNodes())
	}
	if want.NumEdges() != got.NumEdges() {
		t.Fatalf("NumEdges: %d vs %d", got.NumEdges(), want.NumEdges())
	}
	if want.NumLabels() != got.NumLabels() {
		t.Fatalf("NumLabels: %d vs %d", got.NumLabels(), want.NumLabels())
	}
	if want.NumTypes() != got.NumTypes() {
		t.Fatalf("NumTypes: %d vs %d", got.NumTypes(), want.NumTypes())
	}
	for n := 0; n < want.NumNodes(); n++ {
		id := NodeID(n)
		if want.NodeName(id) != got.NodeName(id) {
			t.Fatalf("node %d name: %q vs %q", n, got.NodeName(id), want.NodeName(id))
		}
		if want.TypeOf(id) != got.TypeOf(id) {
			t.Fatalf("node %d type differs", n)
		}
		a, b := want.OutEdges(id), got.OutEdges(id)
		if len(a) != len(b) {
			t.Fatalf("node %d degree: %d vs %d", n, len(b), len(a))
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("node %d edge %d: %v vs %v", n, i, b[i], a[i])
			}
		}
		if want.WeightedOutDegree(id) != got.WeightedOutDegree(id) {
			t.Fatalf("node %d weighted degree differs", n)
		}
	}
	for l := 0; l < want.NumLabels(); l++ {
		id := LabelID(l)
		if want.LabelName(id) != got.LabelName(id) {
			t.Fatalf("label %d name differs", l)
		}
		if want.InverseLabel(id) != got.InverseLabel(id) {
			t.Fatalf("label %d inverse differs", l)
		}
		if want.LabelCount(id) != got.LabelCount(id) {
			t.Fatalf("label %d count differs", l)
		}
		if want.LabelWeight(id) != got.LabelWeight(id) {
			t.Fatalf("label %d weight differs", l)
		}
	}
}

func BenchmarkSnapshotWrite(b *testing.B) {
	g := benchGraph()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var buf bytes.Buffer
		if err := g.WriteSnapshot(&buf); err != nil {
			b.Fatal(err)
		}
		b.SetBytes(int64(buf.Len()))
	}
}

func BenchmarkSnapshotRead(b *testing.B) {
	g := benchGraph()
	var buf bytes.Buffer
	if err := g.WriteSnapshot(&buf); err != nil {
		b.Fatal(err)
	}
	data := buf.Bytes()
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := ReadSnapshot(bytes.NewReader(data)); err != nil {
			b.Fatal(err)
		}
	}
}

func benchGraph() *Graph {
	rng := rand.New(rand.NewSource(9))
	b := NewBuilder(1 << 14)
	labels := []string{"p0", "p1", "p2", "p3", "p4", "p5", "p6", "p7"}
	for i := 0; i < 1<<14; i++ {
		from := nodeName(rng.Intn(26)) + nodeName(rng.Intn(26)) + nodeName(rng.Intn(26))
		to := nodeName(rng.Intn(26)) + nodeName(rng.Intn(26)) + nodeName(rng.Intn(26))
		b.AddEdge(from, labels[rng.Intn(len(labels))], to)
	}
	return b.Build()
}
