package kg

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// figure1 builds the running example of the paper (Figure 1): politicians
// with studied and hasChild edges.
func figure1() *Graph {
	b := NewBuilder(16)
	b.SetType("Merkel", "person")
	b.SetType("Obama", "person")
	b.SetType("Putin", "person")
	b.SetType("Renzi", "person")
	b.SetType("Hollande", "person")
	b.AddEdge("Merkel", "studied", "Physics")
	b.AddEdge("Obama", "studied", "Law")
	b.AddEdge("Putin", "studied", "Law")
	b.AddEdge("Renzi", "studied", "Law")
	b.AddEdge("Hollande", "studied", "Law")
	b.AddEdge("Obama", "hasChild", "Malia")
	b.AddEdge("Putin", "hasChild", "Mariya")
	b.AddEdge("Putin", "hasChild", "Yecaterina")
	b.AddEdge("Renzi", "hasChild", "Francesca")
	b.AddEdge("Renzi", "hasChild", "Emanuele")
	b.AddEdge("Renzi", "hasChild", "Ester")
	b.AddEdge("Hollande", "hasChild", "Thomas")
	b.AddEdge("Hollande", "hasChild", "Clémence")
	b.AddEdge("Hollande", "hasChild", "Julien")
	b.AddEdge("Hollande", "hasChild", "Flora")
	return b.Build()
}

func TestInverseName(t *testing.T) {
	if got := InverseName("leaderOf"); got != "leaderOf⁻¹" {
		t.Fatalf("InverseName = %q", got)
	}
	if got := InverseName(InverseName("leaderOf")); got != "leaderOf" {
		t.Fatalf("double inverse = %q, want leaderOf", got)
	}
}

func TestBuildCounts(t *testing.T) {
	g := figure1()
	// 15 forward edges + 15 inverses.
	if g.NumEdges() != 30 {
		t.Fatalf("NumEdges = %d, want 30", g.NumEdges())
	}
	// studied, hasChild + 2 inverses.
	if g.NumLabels() != 4 {
		t.Fatalf("NumLabels = %d, want 4", g.NumLabels())
	}
}

func TestReverseEdgesExist(t *testing.T) {
	g := figure1()
	physics, _ := g.NodeByName("Physics")
	merkel, _ := g.NodeByName("Merkel")
	studied, _ := g.LabelByName("studied")
	inv := g.InverseLabel(studied)
	if !g.HasEdge(physics, inv, merkel) {
		t.Fatal("reverse edge Physics --studied⁻¹--> Merkel missing")
	}
	if g.InverseLabel(inv) != studied {
		t.Fatal("InverseLabel is not an involution")
	}
	if g.IsInverse(studied) {
		t.Fatal("studied should not be an inverse label")
	}
	if !g.IsInverse(inv) {
		t.Fatal("studied⁻¹ should be an inverse label")
	}
}

func TestSymmetricLabel(t *testing.T) {
	b := NewBuilder(2)
	b.Symmetric("spouse")
	b.AddEdge("a", "spouse", "b")
	g := b.Build()
	spouse, _ := g.LabelByName("spouse")
	if g.InverseLabel(spouse) != spouse {
		t.Fatal("symmetric label should be its own inverse")
	}
	a, _ := g.NodeByName("a")
	bn, _ := g.NodeByName("b")
	if !g.HasEdge(bn, spouse, a) {
		t.Fatal("mirrored symmetric edge missing")
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestOutEdgesByLabel(t *testing.T) {
	g := figure1()
	putin, _ := g.NodeByName("Putin")
	hasChild, _ := g.LabelByName("hasChild")
	kids := g.OutEdgesByLabel(putin, hasChild)
	if len(kids) != 2 {
		t.Fatalf("Putin has %d hasChild edges, want 2", len(kids))
	}
	studied, _ := g.LabelByName("studied")
	if n := len(g.OutEdgesByLabel(putin, studied)); n != 1 {
		t.Fatalf("Putin has %d studied edges, want 1", n)
	}
	merkel, _ := g.NodeByName("Merkel")
	if n := len(g.OutEdgesByLabel(merkel, hasChild)); n != 0 {
		t.Fatalf("Merkel has %d hasChild edges, want 0", n)
	}
}

func TestAdjacencySorted(t *testing.T) {
	g := figure1()
	for n := 0; n < g.NumNodes(); n++ {
		adj := g.OutEdges(NodeID(n))
		for i := 1; i < len(adj); i++ {
			a, b := adj[i-1], adj[i]
			if a.Label > b.Label || (a.Label == b.Label && a.To > b.To) {
				t.Fatalf("node %d adjacency unsorted at %d: %v then %v", n, i, a, b)
			}
		}
	}
}

func TestDeduplicateEdges(t *testing.T) {
	b := NewBuilder(4)
	b.AddEdge("a", "p", "b")
	b.AddEdge("a", "p", "b")
	g := b.Build()
	if g.NumEdges() != 2 { // one forward + one inverse
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
}

func TestLabelFrequencyAndWeight(t *testing.T) {
	g := figure1()
	hasChild, _ := g.LabelByName("hasChild")
	// 10 of 30 edges are hasChild. Compare against the same runtime float
	// expression the graph uses (constant folding is more precise).
	wantFreq := float64(10) / float64(30)
	if got := g.LabelFrequency(hasChild); got != wantFreq {
		t.Fatalf("LabelFrequency(hasChild) = %v, want 1/3", got)
	}
	if got := g.LabelWeight(hasChild); got != 1-wantFreq {
		t.Fatalf("LabelWeight(hasChild) = %v", got)
	}
	var sum int64
	for l := 0; l < g.NumLabels(); l++ {
		sum += g.LabelCount(LabelID(l))
	}
	if sum != int64(g.NumEdges()) {
		t.Fatalf("label counts sum to %d, want %d", sum, g.NumEdges())
	}
}

func TestWeightedOutDegreeMatchesManualSum(t *testing.T) {
	g := figure1()
	for n := 0; n < g.NumNodes(); n++ {
		want := 0.0
		for _, e := range g.OutEdges(NodeID(n)) {
			want += g.LabelWeight(e.Label)
		}
		if got := g.WeightedOutDegree(NodeID(n)); got != want {
			t.Fatalf("WeightedOutDegree(%d) = %v, want %v", n, got, want)
		}
	}
}

func TestTypes(t *testing.T) {
	g := figure1()
	merkel, _ := g.NodeByName("Merkel")
	if g.TypeName(g.TypeOf(merkel)) != "person" {
		t.Fatalf("TypeOf(Merkel) = %q", g.TypeName(g.TypeOf(merkel)))
	}
	physics, _ := g.NodeByName("Physics")
	if g.TypeOf(physics) != NoType {
		t.Fatal("Physics should have no type")
	}
	if g.TypeName(NoType) != "" {
		t.Fatal("TypeName(NoType) should be empty")
	}
	people := g.NodesWithType(g.TypeOf(merkel))
	if len(people) != 5 {
		t.Fatalf("NodesWithType(person) = %d nodes, want 5", len(people))
	}
}

func TestLabelsOf(t *testing.T) {
	g := figure1()
	merkel, _ := g.NodeByName("Merkel")
	obama, _ := g.NodeByName("Obama")
	labels := g.LabelsOf([]NodeID{merkel, obama})
	names := make(map[string]bool)
	for _, l := range labels {
		names[g.LabelName(l)] = true
	}
	if !names["studied"] || !names["hasChild"] {
		t.Fatalf("LabelsOf = %v", names)
	}
	if names["studied⁻¹"] {
		t.Fatal("query nodes have no incoming studied edges")
	}
}

func TestHasEdge(t *testing.T) {
	g := figure1()
	merkel, _ := g.NodeByName("Merkel")
	physics, _ := g.NodeByName("Physics")
	law, _ := g.NodeByName("Law")
	studied, _ := g.LabelByName("studied")
	if !g.HasEdge(merkel, studied, physics) {
		t.Fatal("Merkel studied Physics missing")
	}
	if g.HasEdge(merkel, studied, law) {
		t.Fatal("Merkel studied Law should not exist")
	}
}

func TestIsolatedNode(t *testing.T) {
	b := NewBuilder(2)
	b.Node("loner")
	b.AddEdge("a", "p", "b")
	g := b.Build()
	loner, ok := g.NodeByName("loner")
	if !ok {
		t.Fatal("loner not interned")
	}
	if g.OutDegree(loner) != 0 {
		t.Fatalf("loner degree = %d", g.OutDegree(loner))
	}
	if g.WeightedOutDegree(loner) != 0 {
		t.Fatal("loner weighted degree should be 0")
	}
}

func TestEmptyGraph(t *testing.T) {
	g := NewBuilder(0).Build()
	if g.NumNodes() != 0 || g.NumEdges() != 0 {
		t.Fatalf("empty graph: %s", g.Stats())
	}
}

// Property: for random graphs, every forward edge has its inverse and the
// total edge count is preserved under the involution.
func TestInverseInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(64)
		nNodes := 2 + rng.Intn(20)
		labels := []string{"p", "q", "r"}
		for i := 0; i < 60; i++ {
			from := nodeName(rng.Intn(nNodes))
			to := nodeName(rng.Intn(nNodes))
			b.AddEdge(from, labels[rng.Intn(len(labels))], to)
		}
		g := b.Build()
		for n := 0; n < g.NumNodes(); n++ {
			for _, e := range g.OutEdges(NodeID(n)) {
				if !g.HasEdge(e.To, g.InverseLabel(e.Label), NodeID(n)) {
					return false
				}
				if g.InverseLabel(g.InverseLabel(e.Label)) != e.Label {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: LabelWeight is in [0, 1) for present labels and weights plus
// frequencies always sum to 1 per label.
func TestWeightBoundsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		b := NewBuilder(32)
		for i := 0; i < 1+rng.Intn(50); i++ {
			b.AddEdge(nodeName(rng.Intn(10)), nodeName(rng.Intn(3)), nodeName(rng.Intn(10)))
		}
		g := b.Build()
		for l := 0; l < g.NumLabels(); l++ {
			w := g.LabelWeight(LabelID(l))
			fq := g.LabelFrequency(LabelID(l))
			if w < 0 || w >= 1 || w+fq != 1 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func nodeName(i int) string { return string(rune('a' + i)) }

func BenchmarkBuild(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	type e struct{ s, p, o string }
	edges := make([]e, 1<<15)
	for i := range edges {
		edges[i] = e{
			s: nodeName(rng.Intn(26)) + nodeName(rng.Intn(26)),
			p: nodeName(rng.Intn(8)),
			o: nodeName(rng.Intn(26)) + nodeName(rng.Intn(26)),
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		bld := NewBuilder(len(edges))
		for _, ed := range edges {
			bld.AddEdge(ed.s, ed.p, ed.o)
		}
		bld.Build()
	}
}

func BenchmarkOutEdgesByLabel(b *testing.B) {
	g := figure1()
	putin, _ := g.NodeByName("Putin")
	hasChild, _ := g.LabelByName("hasChild")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if len(g.OutEdgesByLabel(putin, hasChild)) != 2 {
			b.Fatal("wrong count")
		}
	}
}
