package kg

import (
	"sort"

	"repro/internal/dict"
	"repro/internal/triplestore"
)

// rawEdge is a builder-side edge with an explicit source.
type rawEdge struct {
	from  NodeID
	label LabelID
	to    NodeID
}

// Builder accumulates nodes, typed nodes, and edges, then produces an
// immutable Graph. By default every added edge also produces its reverse
// edge under the inverse label (Section 2's modelling assumption); labels
// can be declared symmetric so that they act as their own inverse.
type Builder struct {
	nodes  *dict.Dict
	labels *dict.Dict
	types  *dict.Dict

	edges     []rawEdge
	nodeType  []TypeID
	symmetric map[LabelID]bool
	noInverse bool
}

// NewBuilder returns a Builder with capacity hints for nEdges edges.
func NewBuilder(nEdges int) *Builder {
	return &Builder{
		nodes:     dict.New(nEdges / 4),
		labels:    dict.New(32),
		types:     dict.New(32),
		edges:     make([]rawEdge, 0, nEdges),
		symmetric: make(map[LabelID]bool),
	}
}

// DisableInverses stops the Builder from materializing reverse edges.
// Intended for tests and for loading files that already contain them.
func (b *Builder) DisableInverses() *Builder {
	b.noInverse = true
	return b
}

// Node interns a node name and returns its ID.
func (b *Builder) Node(name string) NodeID {
	id := b.nodes.Put(name)
	for len(b.nodeType) < b.nodes.Len() {
		b.nodeType = append(b.nodeType, NoType)
	}
	return id
}

// Label interns an edge label name and returns its ID.
func (b *Builder) Label(name string) LabelID { return b.labels.Put(name) }

// Type interns a node type name and returns its ID.
func (b *Builder) Type(name string) TypeID { return b.types.Put(name) }

// Symmetric declares label name to be its own inverse (e.g. "spouse").
// Edges with a symmetric label are mirrored under the same label.
func (b *Builder) Symmetric(name string) *Builder {
	b.symmetric[b.Label(name)] = true
	return b
}

// SetType assigns the primary type of a node.
func (b *Builder) SetType(node, typeName string) {
	n := b.Node(node)
	b.nodeType[n] = b.Type(typeName)
}

// SetTypeID assigns the primary type of an already-interned node.
func (b *Builder) SetTypeID(n NodeID, t TypeID) { b.nodeType[n] = t }

// AddEdge records the edge (from, label, to), interning all names.
func (b *Builder) AddEdge(from, label, to string) {
	b.AddEdgeIDs(b.Node(from), b.Label(label), b.Node(to))
}

// AddEdgeIDs records an edge between already-interned IDs.
func (b *Builder) AddEdgeIDs(from NodeID, label LabelID, to NodeID) {
	b.edges = append(b.edges, rawEdge{from: from, label: label, to: to})
}

// NumEdges returns the number of forward edges added so far.
func (b *Builder) NumEdges() int { return len(b.edges) }

// NumNodes returns the number of interned nodes so far.
func (b *Builder) NumNodes() int { return b.nodes.Len() }

// Build freezes the Builder into a Graph. The Builder must not be used
// afterwards.
func (b *Builder) Build() *Graph {
	// Assign inverse labels first so the label dictionary is complete.
	nFwd := b.labels.Len()
	inverse := make([]LabelID, nFwd)
	for l := 0; l < nFwd; l++ {
		if b.symmetric[LabelID(l)] {
			inverse[l] = LabelID(l)
			continue
		}
		inverse[l] = b.labels.Put(InverseName(b.labels.String(LabelID(l))))
	}
	// Inverse labels introduced above map back to their base label.
	full := make([]LabelID, b.labels.Len())
	copy(full, inverse)
	for l := 0; l < nFwd; l++ {
		if inv := inverse[l]; int(inv) >= nFwd {
			full[inv] = LabelID(l)
		}
	}

	all := b.edges
	if !b.noInverse {
		all = make([]rawEdge, 0, 2*len(b.edges))
		all = append(all, b.edges...)
		for _, e := range b.edges {
			rev := rawEdge{from: e.to, label: full[e.label], to: e.from}
			// A symmetric self-loop would duplicate itself exactly;
			// deduplication below handles that.
			all = append(all, rev)
		}
	}

	sort.Slice(all, func(i, j int) bool {
		a, c := all[i], all[j]
		if a.from != c.from {
			return a.from < c.from
		}
		if a.label != c.label {
			return a.label < c.label
		}
		return a.to < c.to
	})
	// Deduplicate exact (from, label, to) repeats.
	w := 0
	for i, e := range all {
		if i == 0 || e != all[i-1] {
			all[w] = e
			w++
		}
	}
	all = all[:w]

	n := b.nodes.Len()
	g := &Graph{
		nodes:      b.nodes,
		labels:     b.labels,
		types:      b.types,
		offsets:    make([]int64, n+1),
		edges:      make([]Edge, len(all)),
		nodeType:   b.nodeType,
		inverse:    full,
		labelCount: make([]int64, b.labels.Len()),
	}
	for len(g.nodeType) < n {
		g.nodeType = append(g.nodeType, NoType)
	}
	for _, e := range all {
		g.offsets[e.from+1]++
		g.labelCount[e.label]++
	}
	for i := 1; i <= n; i++ {
		g.offsets[i] += g.offsets[i-1]
	}
	cursor := make([]int64, n)
	for _, e := range all {
		pos := g.offsets[e.from] + cursor[e.from]
		g.edges[pos] = Edge{Label: e.label, To: e.to}
		cursor[e.from]++
	}

	g.weight = make([]float64, b.labels.Len())
	total := float64(len(g.edges))
	for l := range g.weight {
		if total > 0 {
			g.weight[l] = 1 - float64(g.labelCount[l])/total
		}
	}
	g.wdeg = make([]float64, n)
	for v := 0; v < n; v++ {
		sum := 0.0
		for _, e := range g.OutEdges(NodeID(v)) {
			sum += g.weight[e.Label]
		}
		g.wdeg[v] = sum
	}
	b.edges = nil
	return g
}

// FromStore converts a triple store into a Graph. Triples whose predicate
// equals typePredicate become node-type assignments instead of edges; pass
// "" to treat every predicate as an edge label. Reverse edges are added
// unless the builder-level convention is already present in the data (they
// are deduplicated either way).
func FromStore(s *triplestore.Store, typePredicate string) *Graph {
	b := NewBuilder(s.NumTriples())
	typeP := uint32(triplestore.Wildcard)
	if typePredicate != "" {
		if id := s.Predicates().Lookup(typePredicate); id != dict.NoID {
			typeP = id
		}
	}
	nodeNames := s.Nodes()
	predNames := s.Predicates()
	// Intern nodes first so kg IDs match store IDs where possible.
	for _, name := range nodeNames.Strings() {
		b.Node(name)
	}
	for _, t := range s.Triples() {
		if t.P == typeP {
			b.SetType(nodeNames.String(t.S), nodeNames.String(t.O))
			continue
		}
		b.AddEdge(nodeNames.String(t.S), predNames.String(t.P), nodeNames.String(t.O))
	}
	return b.Build()
}
