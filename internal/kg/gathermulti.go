package kg

import (
	"sort"

	"repro/internal/exec"
)

// MaxGatherBlock is the widest vector block GatherStepMulti accepts. Eight
// float64 columns are exactly one 64-byte cache line per node, so a block
// walks the edge stream once while every per-node probability read lands
// in a single line — the sweet spot for the memory-bandwidth-bound kernel.
const MaxGatherBlock = 8

// GatherStepMulti computes one damped power-iteration step, next = c·Ã·p,
// for b personalization vectors at once. Vectors are stored interleaved
// ("blocked"): column j of node x lives at p[x*b+j], and likewise in next.
// The edge stream (in-edge lists and probabilities) is read once for the
// whole block instead of once per vector, and the b reads of a source
// node's block are contiguous — the entire win of the batched cold path
// sits in this loop.
//
// Each column's arithmetic replicates GatherStep exactly: the same four
// running sums over the same edge order, combined in the same tree, so
// column j of the result is bitwise identical to a serial GatherStep over
// that vector alone. dangling must hold at least b entries; it is
// overwritten with the per-column probability mass sitting on dangling
// nodes, accumulated in the same node order as the serial kernel.
//
// b must be in [1, MaxGatherBlock]; next and p must hold NumNodes()*b
// entries.
func (t *TransitionCSR) GatherStepMulti(next, p []float64, c float64, b int, dangling []float64) {
	t.gatherRowsMulti(next, p, c, b, 0, t.g.NumNodes())
	t.danglingMulti(p, b, dangling)
}

// danglingMulti accumulates the per-column dangling mass.
func (t *TransitionCSR) danglingMulti(p []float64, b int, dangling []float64) {
	clear(dangling[:b])
	for _, d := range t.dangling {
		blk := p[int(d)*b : int(d)*b+b]
		for j := 0; j < b; j++ {
			dangling[j] += blk[j]
		}
	}
}

// gatherRowsMulti computes rows [rowLo, rowHi) of one blocked gather step.
// As with gatherRows, a row is produced entirely by one call, so any row
// partition yields the same bits as a full serial sweep.
func (t *TransitionCSR) gatherRowsMulti(next, p []float64, c float64, b int, rowLo, rowHi int) {
	if b == MaxGatherBlock {
		t.gatherRowsMulti8(next, p, c, rowLo, rowHi)
		return
	}
	var accBuf [4 * MaxGatherBlock]float64
	acc := accBuf[:4*b]
	lo := int(t.tOff[rowLo])
	for x := rowLo; x < rowHi; x++ {
		hi := int(t.tOff[x+1])
		row := t.tFrom[lo:hi]
		pr := t.tProb[lo:hi:hi][:len(row)]
		clear(acc)
		k := 0
		for ; k+3 < len(row); k += 4 {
			i0, w0 := int(row[k])*b, pr[k]
			i1, w1 := int(row[k+1])*b, pr[k+1]
			i2, w2 := int(row[k+2])*b, pr[k+2]
			i3, w3 := int(row[k+3])*b, pr[k+3]
			for j := 0; j < b; j++ {
				a := acc[4*j : 4*j+4 : 4*j+4]
				a[0] += p[i0+j] * w0
				a[1] += p[i1+j] * w1
				a[2] += p[i2+j] * w2
				a[3] += p[i3+j] * w3
			}
		}
		for ; k < len(row); k++ {
			i0, w0 := int(row[k])*b, pr[k]
			for j := 0; j < b; j++ {
				acc[4*j] += p[i0+j] * w0
			}
		}
		out := next[x*b : x*b+b]
		for j := 0; j < b; j++ {
			out[j] = c * ((acc[4*j] + acc[4*j+1]) + (acc[4*j+2] + acc[4*j+3]))
		}
		lo = hi
	}
}

// gatherRowsMulti8 is gatherRowsMulti specialized to the full block width.
// Columns are swept one at a time inside each row with the serial kernel's
// four register accumulators; the row's edge list, probabilities, and the
// source blocks' cache lines stay hot across the eight column passes, so
// the memory system sees each line once per block rather than once per
// vector. The per-column arithmetic is identical to the generic path and
// to GatherStep, only dispatched statically.
func (t *TransitionCSR) gatherRowsMulti8(next, p []float64, c float64, rowLo, rowHi int) {
	const b = MaxGatherBlock
	lo := int(t.tOff[rowLo])
	for x := rowLo; x < rowHi; x++ {
		hi := int(t.tOff[x+1])
		row := t.tFrom[lo:hi]
		pr := t.tProb[lo:hi:hi][:len(row)]
		out := next[x*b : x*b+b : x*b+b]
		for j := 0; j < b; j++ {
			var acc0, acc1, acc2, acc3 float64
			k := 0
			for ; k+3 < len(row); k += 4 {
				acc0 += p[int(row[k])*b+j] * pr[k]
				acc1 += p[int(row[k+1])*b+j] * pr[k+1]
				acc2 += p[int(row[k+2])*b+j] * pr[k+2]
				acc3 += p[int(row[k+3])*b+j] * pr[k+3]
			}
			for ; k < len(row); k++ {
				acc0 += p[int(row[k])*b+j] * pr[k]
			}
			out[j] = c * ((acc0 + acc1) + (acc2 + acc3))
		}
		lo = hi
	}
}

// GatherStepMultiParallel is GatherStepMulti with rows partitioned over up
// to workers shards through the shared executor, exactly like
// GatherStepParallel: every row block is written by one shard and the
// dangling sums stay serial, so the result is bitwise identical to the
// serial blocked kernel — and therefore to b independent serial
// GatherStep calls — for every worker count.
func (t *TransitionCSR) GatherStepMultiParallel(next, p []float64, c float64, b int, dangling []float64, workers int) {
	n := t.g.NumNodes()
	edges := int64(len(t.tFrom))
	if workers > n {
		workers = n
	}
	// The per-edge work is b-fold, so the serial-fallback threshold
	// applies to edge visits, not edges.
	if workers <= 1 || edges*int64(b) < parallelGatherMinEdges {
		t.GatherStepMulti(next, p, c, b, dangling)
		return
	}
	g := exec.NewGroup(exec.Default())
	prev := 0
	for w := 1; w <= workers; w++ {
		bound := n
		if w < workers {
			target := edges * int64(w) / int64(workers)
			bound = sort.Search(n, func(r int) bool { return t.tOff[r] >= target })
			if bound < prev {
				bound = prev
			}
		}
		if bound == prev {
			continue
		}
		lo, hi := prev, bound
		prev = bound
		if w == workers {
			t.gatherRowsMulti(next, p, c, b, lo, hi) // last shard on the caller
			break
		}
		g.Go(func() { t.gatherRowsMulti(next, p, c, b, lo, hi) })
	}
	g.Wait()
	t.danglingMulti(p, b, dangling)
}
