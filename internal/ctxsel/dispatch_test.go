package ctxsel

import (
	"context"
	"testing"

	"repro/internal/kg"
	"repro/internal/topk"
)

// fakeBatchScorer implements every batch capability and records which
// path a dispatch helper chose.
type fakeBatchScorer struct {
	called *string
	n      int
}

func (f fakeBatchScorer) Name() string { return "fake" }

func (f fakeBatchScorer) Select(g *kg.Graph, q []kg.NodeID, k int) []topk.Item {
	*f.called = "select"
	return nil
}

func (f fakeBatchScorer) Scores(g *kg.Graph, q []kg.NodeID) []float64 {
	*f.called = "scores"
	return make([]float64, f.n)
}

func (f fakeBatchScorer) ScoresBatch(g *kg.Graph, qs [][]kg.NodeID) [][]float64 {
	*f.called = "batch"
	out := make([][]float64, len(qs))
	for i := range out {
		out[i] = make([]float64, f.n)
	}
	return out
}

func (f fakeBatchScorer) ScoresBatchCtx(ctx context.Context, g *kg.Graph, qs [][]kg.NodeID) [][]float64 {
	out := f.ScoresBatch(g, qs)
	*f.called = "batchctx" // recorded last: the inner delegate must not mask the entry point
	return out
}

func (f fakeBatchScorer) ScoresStream(ctx context.Context, g *kg.Graph, qs [][]kg.NodeID, ready func(int, []float64)) {
	*f.called = "stream"
	for i := range qs {
		ready(i, make([]float64, f.n))
	}
}

// TestSelectBatchCtxPrefersBarrieredSolve: the barriered dispatch must
// choose the batch scoring path (which keeps batch-wide kernels like the
// blocked multi-vector gather) over the streaming one, while SelectStream
// prefers the streaming path.
func TestSelectBatchCtxPrefersBarrieredSolve(t *testing.T) {
	g := kg.NewBuilder(4).Build()
	var called string
	sel := fakeBatchScorer{called: &called, n: g.NumNodes()}
	queries := [][]kg.NodeID{{0}, {0}}

	SelectBatchCtx(context.Background(), sel, g, queries, 1)
	if called != "batchctx" {
		t.Fatalf("SelectBatchCtx dispatched to %q, want the barriered batchctx solve", called)
	}

	called = ""
	SelectStream(context.Background(), sel, g, queries, 1, func(int, []topk.Item) {})
	if called != "stream" {
		t.Fatalf("SelectStream dispatched to %q, want the streaming solve", called)
	}
}
