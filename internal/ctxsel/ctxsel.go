// Package ctxsel implements context selection (Definition 2): finding the
// top-k nodes most similar to a query set.
//
// Two selectors from the paper:
//
//   - RandomWalk — the baseline: informativeness-weighted Personalized
//     PageRank from each query node, summed (Section 3.1, Eq. 1–2).
//   - ContextRW — the contribution: mine metapaths that connect the graph
//     to the query (PathMining), keep the |M| most frequent, then score
//     every node by σ(n', Q) = Σ_{m,n} |{n ⇝m n'}| / |{n ⇝m n”}| · Pr(m)
//     and take the top-k.
//
// Two more selectors from related work serve as ablations: SimRank-style
// neighbor similarity and neighborhood Jaccard overlap. Both ignore edge
// labels, which is exactly the deficiency the paper points out; keeping
// them runnable makes the comparison concrete.
package ctxsel

import (
	"fmt"

	"repro/internal/kg"
	"repro/internal/metapath"
	"repro/internal/ppr"
	"repro/internal/topk"
)

// Selector retrieves a ranked context set for a query.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Select returns up to k context nodes ranked by descending
	// similarity, never including query nodes.
	Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item
}

// RandomWalk is the paper's baseline selector: summed Personalized
// PageRank from each query node.
type RandomWalk struct {
	Opt ppr.Options
}

// Name implements Selector.
func (RandomWalk) Name() string { return "RandomWalk" }

// Select implements Selector.
func (s RandomWalk) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	return ppr.TopK(g, query, k, s.Opt)
}

// ContextRW is the paper's context selector (Section 3.1).
type ContextRW struct {
	// Walks is the PathMining sampling budget. The paper runs 1M walks;
	// scale down for smaller graphs. Default 200000.
	Walks int
	// NumPaths is |M|, the number of retained metapaths. The paper finds
	// F1 insensitive to it and suggests 5. Default 5.
	NumPaths int
	// MaxLength bounds metapath length; the paper suggests 5. Default 5.
	MaxLength int
	// Uniform disables informativeness weighting during mining.
	Uniform bool
	// Seed fixes mining randomness.
	Seed int64
	// Parallelism bounds mining workers; 0 uses the miner default.
	Parallelism int
}

// Name implements Selector.
func (ContextRW) Name() string { return "ContextRW" }

func (s ContextRW) withDefaults() ContextRW {
	if s.Walks == 0 {
		s.Walks = 200000
	}
	if s.NumPaths == 0 {
		s.NumPaths = 5
	}
	if s.MaxLength == 0 {
		s.MaxLength = 5
	}
	return s
}

// Select implements Selector.
func (s ContextRW) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	scores := s.Scores(g, query)
	skip := make(map[uint32]bool, len(query))
	for _, q := range query {
		skip[q] = true
	}
	sel := topk.New(k)
	for id, sc := range scores {
		if sc == 0 || skip[uint32(id)] {
			continue
		}
		sel.Offer(uint32(id), sc)
	}
	return sel.Ranked()
}

// Scores computes σ(n', Q) for every node n'. Exposed separately so
// experiments can reuse one scoring pass across several context sizes.
func (s ContextRW) Scores(g *kg.Graph, query []kg.NodeID) []float64 {
	s = s.withDefaults()
	mined := metapath.Mine(g, query, metapath.MineOptions{
		Walks:       s.Walks,
		MaxLength:   s.MaxLength,
		Uniform:     s.Uniform,
		Seed:        s.Seed,
		Parallelism: s.Parallelism,
	})
	return s.ScoresWithPaths(g, query, mined)
}

// ScoresWithPaths scores nodes against an already-mined metapath list
// (sorted by descending count, as Mine returns it). Exposed so experiments
// can sweep |M| (s.NumPaths) without re-mining.
//
// The paper scores by "the probability that some metapath starting from a
// query node ends in this node": mined label sequences are matched from
// the query verbatim, not reversed. Purely inbound sequences (e.g. the
// hasChild⁻¹ funnel from a child leaf) find no match from the query side
// and would contribute nothing to σ, so the top-|M| cut is applied over
// the query-matchable metapaths only; Pr(m) is then the count share within
// that kept set, exactly as in Section 3.1.
func (s ContextRW) ScoresWithPaths(g *kg.Graph, query []kg.NodeID, mined []metapath.Mined) []float64 {
	s = s.withDefaults()
	scores := make([]float64, g.NumNodes())
	if len(mined) == 0 || len(query) == 0 {
		return scores
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}

	// Select up to NumPaths query-matchable metapaths in count order,
	// caching each one's per-node match share Σ_q counts_q[n']/denom_q.
	type kept struct {
		count int64
		share []float64
	}
	var keptPaths []kept
	for _, mp := range mined {
		if len(keptPaths) == s.NumPaths {
			break
		}
		var share []float64
		for _, q := range query {
			counts := metapath.CountPaths(g, q, mp.Path)
			denom := 0.0
			for id, c := range counts {
				if c != 0 && !inQuery[kg.NodeID(id)] {
					denom += c
				}
			}
			if denom == 0 {
				continue
			}
			if share == nil {
				share = make([]float64, len(counts))
			}
			for id, c := range counts {
				if c != 0 && !inQuery[kg.NodeID(id)] {
					share[id] += c / denom
				}
			}
		}
		if share != nil {
			keptPaths = append(keptPaths, kept{count: mp.Count, share: share})
		}
	}

	var total int64
	for _, kp := range keptPaths {
		total += kp.count
	}
	if total == 0 {
		return scores
	}
	for _, kp := range keptPaths {
		prM := float64(kp.count) / float64(total)
		for id, sh := range kp.share {
			if sh != 0 {
				scores[id] += prM * sh
			}
		}
	}
	return scores
}

// Jaccard is an ablation selector from related work: similarity is the
// Jaccard overlap of full (label-blind) neighborhoods, averaged over the
// query nodes. Candidates are restricted to nodes sharing at least one
// neighbor with a query node.
type Jaccard struct{}

// Name implements Selector.
func (Jaccard) Name() string { return "Jaccard" }

// Select implements Selector.
func (Jaccard) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	qNbrs := make([]map[kg.NodeID]bool, len(query))
	candidates := make(map[kg.NodeID]bool)
	for i, q := range query {
		qNbrs[i] = neighborSet(g, q)
		for nb := range qNbrs[i] {
			for _, e := range g.OutEdges(nb) {
				if !inQuery[e.To] {
					candidates[e.To] = true
				}
			}
		}
	}
	sel := topk.New(k)
	for cand := range candidates {
		cNbrs := neighborSet(g, cand)
		sum := 0.0
		for i := range query {
			sum += jaccard(qNbrs[i], cNbrs)
		}
		score := sum / float64(len(query))
		if score > 0 {
			sel.Offer(cand, score)
		}
	}
	return sel.Ranked()
}

// SimRank is an ablation selector: one-iteration SimRank,
// s(a,b) = C · |N(a) ∩ N(b)| / (|N(a)|·|N(b)|), averaged over query nodes.
// Like the original measure it disregards labels entirely.
type SimRank struct {
	// C is the SimRank decay constant; default 0.8.
	C float64
}

// Name implements Selector.
func (SimRank) Name() string { return "SimRank" }

// Select implements Selector.
func (s SimRank) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	c := s.C
	if c == 0 {
		c = 0.8
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	qNbrs := make([]map[kg.NodeID]bool, len(query))
	candidates := make(map[kg.NodeID]bool)
	for i, q := range query {
		qNbrs[i] = neighborSet(g, q)
		for nb := range qNbrs[i] {
			for _, e := range g.OutEdges(nb) {
				if !inQuery[e.To] {
					candidates[e.To] = true
				}
			}
		}
	}
	sel := topk.New(k)
	for cand := range candidates {
		cNbrs := neighborSet(g, cand)
		if len(cNbrs) == 0 {
			continue
		}
		sum := 0.0
		for i := range query {
			if len(qNbrs[i]) == 0 {
				continue
			}
			common := intersectionSize(qNbrs[i], cNbrs)
			sum += c * float64(common) / (float64(len(qNbrs[i])) * float64(len(cNbrs)))
		}
		score := sum / float64(len(query))
		if score > 0 {
			sel.Offer(cand, score)
		}
	}
	return sel.Ranked()
}

func neighborSet(g *kg.Graph, n kg.NodeID) map[kg.NodeID]bool {
	out := make(map[kg.NodeID]bool)
	for _, e := range g.OutEdges(n) {
		out[e.To] = true
	}
	return out
}

func jaccard(a, b map[kg.NodeID]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	common := intersectionSize(a, b)
	union := len(a) + len(b) - common
	if union == 0 {
		return 0
	}
	return float64(common) / float64(union)
}

func intersectionSize(a, b map[kg.NodeID]bool) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return n
}

// ByName returns the named selector with default parameters, for CLIs.
func ByName(name string, seed int64) (Selector, error) {
	switch name {
	case "contextrw", "ContextRW":
		return ContextRW{Seed: seed}, nil
	case "randomwalk", "RandomWalk":
		return RandomWalk{}, nil
	case "jaccard", "Jaccard":
		return Jaccard{}, nil
	case "simrank", "SimRank":
		return SimRank{}, nil
	default:
		return nil, fmt.Errorf("ctxsel: unknown selector %q", name)
	}
}
