// Package ctxsel implements context selection (Definition 2): finding the
// top-k nodes most similar to a query set.
//
// Two selectors from the paper:
//
//   - RandomWalk — the baseline: informativeness-weighted Personalized
//     PageRank from each query node, summed (Section 3.1, Eq. 1–2).
//   - ContextRW — the contribution: mine metapaths that connect the graph
//     to the query (PathMining), keep the |M| most frequent, then score
//     every node by σ(n', Q) = Σ_{m,n} |{n ⇝m n'}| / |{n ⇝m n”}| · Pr(m)
//     and take the top-k.
//
// Two more selectors from related work serve as ablations: SimRank-style
// neighbor similarity and neighborhood Jaccard overlap. Both ignore edge
// labels, which is exactly the deficiency the paper points out; keeping
// them runnable makes the comparison concrete.
package ctxsel

import (
	"context"
	"fmt"
	"sync"

	"repro/internal/kg"
	"repro/internal/metapath"
	"repro/internal/ppr"
	"repro/internal/topk"
)

// Selector retrieves a ranked context set for a query.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Select returns up to k context nodes ranked by descending
	// similarity, never including query nodes.
	Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item
}

// Scorer is implemented by selectors whose Select is a pure top-k cut over
// a dense per-node score vector. Callers that cache or reuse scores (the
// engine's query cache, the experiment sweeps) compute Scores once and
// derive contexts of any size with TopKFromScores.
type Scorer interface {
	// Scores returns one similarity score per node; query nodes may carry
	// arbitrary scores (they are excluded at selection time).
	Scores(g *kg.Graph, query []kg.NodeID) []float64
}

// BatchScorer is implemented by scorers with a batched scoring path that
// amortizes graph traversal across queries. ScoresBatch must return
// exactly what per-query Scores calls would — selectors whose batch path
// is bitwise identical (RandomWalk via ppr.PersonalizedSumMulti) make the
// whole batch pipeline's outputs identical to sequential searches.
type BatchScorer interface {
	Scorer
	// ScoresBatch returns one score vector per query, in order.
	ScoresBatch(g *kg.Graph, queries [][]kg.NodeID) [][]float64
}

// BatchSelector is implemented by selectors that resolve whole batches
// themselves — the engine's caching wrapper, which consults its cache per
// query and batches only the misses.
type BatchSelector interface {
	Selector
	// SelectBatch returns one ranked context per query, in order.
	SelectBatch(g *kg.Graph, queries [][]kg.NodeID, k int) [][]topk.Item
}

// The request-scoped serving API threads a context.Context through every
// layer, but the base Selector interfaces predate it and many ablation
// selectors (and experiment callers) never need cancellation. The Ctx*
// and Stream* capability interfaces below are therefore optional:
// selectors that honor cancellation implement them, and the dispatch
// helpers (Select, SelectBatchCtx, SelectStream) fall back to the plain
// methods otherwise — coarse-grained cancellation, checked by the caller
// at stage boundaries. RandomWalk implements all of them (its PageRank
// solves check ctx between sweeps); the engine's caching wrapper relays
// them around its cache.

// CtxSelector is a Selector honoring request cancellation: once ctx is
// done, SelectCtx stops within one solver sweep and its return value is
// meaningless — callers must consult ctx.Err() before using it.
type CtxSelector interface {
	Selector
	SelectCtx(ctx context.Context, g *kg.Graph, query []kg.NodeID, k int) []topk.Item
}

// CtxScorer is a Scorer honoring request cancellation, with the same
// partial-result contract as CtxSelector.
type CtxScorer interface {
	Scorer
	ScoresCtx(ctx context.Context, g *kg.Graph, query []kg.NodeID) []float64
}

// CtxBatchSelector is a BatchSelector honoring request cancellation:
// entries of the returned slice may be nil once ctx is done.
type CtxBatchSelector interface {
	BatchSelector
	SelectBatchCtx(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, k int) [][]topk.Item
}

// CtxBatchScorer is a BatchScorer honoring request cancellation, with
// the same partial-result contract as CtxScorer (entries may be nil once
// ctx is done). Barriered batch callers prefer it over StreamScorer:
// the barriered solve may use batch-wide kernels (the blocked
// multi-vector gather) that the streaming schedule trades away for
// release granularity.
type CtxBatchScorer interface {
	BatchScorer
	ScoresBatchCtx(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID) [][]float64
}

// StreamScorer is a Scorer with a streaming batch path: ScoresStream
// invokes ready(i, scores) exactly once per query, as soon as that
// query's score vector is complete — queries sharing solved seeds release
// early instead of barriering on the whole batch. ready runs on the
// solver's goroutine; expensive consumers should offload. Each released
// vector is bitwise identical to a per-query Scores call. Once ctx is
// done the stream stops within one sweep and unreleased queries never get
// a callback.
type StreamScorer interface {
	Scorer
	ScoresStream(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, ready func(i int, scores []float64))
}

// StreamBatchSelector resolves whole batches as a stream of ranked
// contexts, with the same callback contract as StreamScorer.
type StreamBatchSelector interface {
	Selector
	SelectStreamBatch(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, k int, ready func(i int, items []topk.Item))
}

// Select resolves one query through sel, threading ctx when sel supports
// it (CtxSelector, then CtxScorer) and falling back to the plain Select
// otherwise. Callers own the cancellation check: a done ctx makes the
// return value meaningless.
func Select(ctx context.Context, sel Selector, g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	if cs, ok := sel.(CtxSelector); ok {
		return cs.SelectCtx(ctx, g, query, k)
	}
	if sc, ok := sel.(CtxScorer); ok {
		scores := sc.ScoresCtx(ctx, g, query)
		if ctx.Err() != nil {
			return nil
		}
		return TopKFromScores(scores, query, k)
	}
	return sel.Select(g, query, k)
}

// SelectBatchCtx resolves contexts for many queries through sel with
// cancellation. Dispatch order matters: the barriered batch scoring
// paths (CtxBatchScorer, then BatchScorer) come before the streaming
// one, because a barriered caller wants the batch solve's full kernel
// arsenal — the streaming schedule gives up the blocked multi-vector
// gather for release granularity no barriered caller can observe. While
// ctx stays live the results equal per-query Select calls; once it is
// done entries may be nil.
func SelectBatchCtx(ctx context.Context, sel Selector, g *kg.Graph, queries [][]kg.NodeID, k int) [][]topk.Item {
	out := make([][]topk.Item, len(queries))
	if bs, ok := sel.(CtxBatchScorer); ok {
		scores := bs.ScoresBatchCtx(ctx, g, queries)
		if ctx.Err() != nil {
			return out
		}
		for i, q := range queries {
			out[i] = TopKFromScores(scores[i], q, k)
		}
		return out
	}
	if bs, ok := sel.(BatchScorer); ok {
		scores := bs.ScoresBatch(g, queries)
		for i, q := range queries {
			out[i] = TopKFromScores(scores[i], q, k)
		}
		return out
	}
	if ss, ok := sel.(StreamScorer); ok {
		ss.ScoresStream(ctx, g, queries, func(i int, scores []float64) {
			out[i] = TopKFromScores(scores, queries[i], k)
		})
		return out
	}
	for i, q := range queries {
		if ctx.Err() != nil {
			return out
		}
		out[i] = Select(ctx, sel, g, q, k)
	}
	return out
}

// SelectStream resolves contexts for many queries as a stream: ready(i,
// items) fires exactly once per query as each context becomes available,
// through sel's own streaming path when it has one (StreamBatchSelector,
// then StreamScorer) or a per-query sequential fallback otherwise. Once
// ctx is done, unreleased queries never get a callback.
func SelectStream(ctx context.Context, sel Selector, g *kg.Graph, queries [][]kg.NodeID, k int, ready func(i int, items []topk.Item)) {
	if ss, ok := sel.(StreamBatchSelector); ok {
		ss.SelectStreamBatch(ctx, g, queries, k, ready)
		return
	}
	if sc, ok := sel.(StreamScorer); ok {
		sc.ScoresStream(ctx, g, queries, func(i int, scores []float64) {
			ready(i, TopKFromScores(scores, queries[i], k))
		})
		return
	}
	for i, q := range queries {
		if ctx.Err() != nil {
			return
		}
		items := Select(ctx, sel, g, q, k)
		if ctx.Err() != nil {
			return
		}
		ready(i, items)
	}
}

// SelectBatch resolves contexts for many queries through sel: the batched
// scoring path when sel provides one, per-query Select otherwise. Either
// way the results equal per-query Select calls.
func SelectBatch(g *kg.Graph, sel Selector, queries [][]kg.NodeID, k int) [][]topk.Item {
	out := make([][]topk.Item, len(queries))
	if bs, ok := sel.(BatchScorer); ok {
		scores := bs.ScoresBatch(g, queries)
		for i, q := range queries {
			out[i] = TopKFromScores(scores[i], q, k)
		}
		return out
	}
	for i, q := range queries {
		out[i] = sel.Select(g, q, k)
	}
	return out
}

// TopKFromScores cuts the k best-scored nodes from a dense score vector,
// excluding the query nodes and zero scores — the shared selection step of
// every score-based selector.
func TopKFromScores(scores []float64, query []kg.NodeID, k int) []topk.Item {
	skip := make(map[uint32]bool, len(query))
	for _, q := range query {
		skip[q] = true
	}
	sel := topk.New(k)
	for id, sc := range scores {
		if sc == 0 || skip[uint32(id)] {
			continue
		}
		sel.Offer(uint32(id), sc)
	}
	return sel.Ranked()
}

// RandomWalk is the paper's baseline selector: summed Personalized
// PageRank from each query node.
type RandomWalk struct {
	Opt ppr.Options
}

// Name implements Selector.
func (RandomWalk) Name() string { return "RandomWalk" }

// Select implements Selector.
func (s RandomWalk) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	return TopKFromScores(s.Scores(g, query), query, k)
}

// SelectCtx implements CtxSelector: the PageRank solve checks ctx between
// sweeps.
func (s RandomWalk) SelectCtx(ctx context.Context, g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	scores := s.ScoresCtx(ctx, g, query)
	if ctx.Err() != nil {
		return nil
	}
	return TopKFromScores(scores, query, k)
}

// Scores implements Scorer: the summed per-seed PageRank vector.
func (s RandomWalk) Scores(g *kg.Graph, query []kg.NodeID) []float64 {
	return ppr.PersonalizedSum(g, query, s.Opt)
}

// ScoresCtx implements CtxScorer.
func (s RandomWalk) ScoresCtx(ctx context.Context, g *kg.Graph, query []kg.NodeID) []float64 {
	return ppr.PersonalizedSumCtx(ctx, g, query, s.Opt)
}

// ScoresBatch implements BatchScorer through the batched multi-source
// solve: unique seeds across the batch are solved once and the dense
// tails share the blocked gather kernel, bitwise identical to per-query
// Scores.
func (s RandomWalk) ScoresBatch(g *kg.Graph, queries [][]kg.NodeID) [][]float64 {
	return ppr.PersonalizedSumMulti(g, queries, s.Opt)
}

// ScoresBatchCtx implements CtxBatchScorer: the same barriered blocked-
// kernel solve as ScoresBatch, checking ctx between sweeps.
func (s RandomWalk) ScoresBatchCtx(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID) [][]float64 {
	return ppr.PersonalizedSumMultiCtx(ctx, g, queries, s.Opt)
}

// ScoresStream implements StreamScorer through the streaming multi-source
// solve: the same deduplicated batch solve as ScoresBatch, but each
// query's summed vector releases the moment its last seed resolves.
func (s RandomWalk) ScoresStream(ctx context.Context, g *kg.Graph, queries [][]kg.NodeID, ready func(i int, scores []float64)) {
	ppr.PersonalizedSumMultiStream(ctx, g, queries, s.Opt, ready)
}

// ContextRW is the paper's context selector (Section 3.1).
type ContextRW struct {
	// Walks is the PathMining sampling budget. The paper runs 1M walks;
	// scale down for smaller graphs. Default 200000.
	Walks int
	// NumPaths is |M|, the number of retained metapaths. The paper finds
	// F1 insensitive to it and suggests 5. Default 5.
	NumPaths int
	// MaxLength bounds metapath length; the paper suggests 5. Default 5.
	MaxLength int
	// Uniform disables informativeness weighting during mining.
	Uniform bool
	// Seed fixes mining randomness.
	Seed int64
	// Parallelism bounds mining workers; 0 uses the miner default.
	Parallelism int
}

// Name implements Selector.
func (ContextRW) Name() string { return "ContextRW" }

func (s ContextRW) withDefaults() ContextRW {
	if s.Walks == 0 {
		s.Walks = 200000
	}
	if s.NumPaths == 0 {
		s.NumPaths = 5
	}
	if s.MaxLength == 0 {
		s.MaxLength = 5
	}
	return s
}

// Select implements Selector.
func (s ContextRW) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	return TopKFromScores(s.Scores(g, query), query, k)
}

// SelectCtx implements CtxSelector: mining workers check ctx between
// walk batches, so a dropped request aborts the dominant stage early.
func (s ContextRW) SelectCtx(ctx context.Context, g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	scores := s.ScoresCtx(ctx, g, query)
	if ctx.Err() != nil {
		return nil
	}
	return TopKFromScores(scores, query, k)
}

// Scores computes σ(n', Q) for every node n'. Exposed separately so
// experiments can reuse one scoring pass across several context sizes.
func (s ContextRW) Scores(g *kg.Graph, query []kg.NodeID) []float64 {
	return s.ScoresCtx(context.Background(), g, query)
}

// ScoresCtx implements CtxScorer: the walk-sampling budget — the bulk of
// a ContextRW selection — honors cancellation via metapath.MineCtx; the
// (comparatively brief) scoring pass runs only while ctx stays live.
func (s ContextRW) ScoresCtx(ctx context.Context, g *kg.Graph, query []kg.NodeID) []float64 {
	s = s.withDefaults()
	mined := metapath.MineCtx(ctx, g, query, metapath.MineOptions{
		Walks:       s.Walks,
		MaxLength:   s.MaxLength,
		Uniform:     s.Uniform,
		Seed:        s.Seed,
		Parallelism: s.Parallelism,
	})
	if ctx.Err() != nil {
		return nil
	}
	return s.ScoresWithPaths(g, query, mined)
}

// ScoresWithPaths scores nodes against an already-mined metapath list
// (sorted by descending count, as Mine returns it). Exposed so experiments
// can sweep |M| (s.NumPaths) without re-mining.
//
// The paper scores by "the probability that some metapath starting from a
// query node ends in this node": mined label sequences are matched from
// the query verbatim, not reversed. Purely inbound sequences (e.g. the
// hasChild⁻¹ funnel from a child leaf) find no match from the query side
// and would contribute nothing to σ, so the top-|M| cut is applied over
// the query-matchable metapaths only; Pr(m) is then the count share within
// that kept set, exactly as in Section 3.1.
func (s ContextRW) ScoresWithPaths(g *kg.Graph, query []kg.NodeID, mined []metapath.Mined) []float64 {
	s = s.withDefaults()
	scores := make([]float64, g.NumNodes())
	if len(mined) == 0 || len(query) == 0 {
		return scores
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}

	// Select up to NumPaths query-matchable metapaths in count order,
	// accumulating each one's per-node match share Σ_q counts_q[n']/denom_q
	// in a pooled buffer with an explicit support list, so the whole loop
	// touches only reached nodes. Path counting goes through one shared
	// metapath.Scratch and all buffers live in one pooled scoring state —
	// a warm call allocates only the result vector.
	st := scoreStatePool.Get().(*scoreState)
	st.counts = st.counts[:0]
	nKept := 0
	for _, mp := range mined {
		if nKept == s.NumPaths {
			break
		}
		var sb *shareBuf
		for _, q := range query {
			counts, touched := metapath.CountPathsInto(g, q, mp.Path, &st.sc)
			denom := 0.0
			for _, v := range touched {
				if !inQuery[v] {
					denom += counts[v]
				}
			}
			if denom == 0 {
				continue
			}
			if sb == nil {
				sb = st.share(nKept, g.NumNodes())
			}
			for _, v := range touched {
				if inQuery[v] {
					continue
				}
				if sb.buf[v] == 0 {
					sb.touched = append(sb.touched, v)
				}
				sb.buf[v] += counts[v] / denom
			}
		}
		if sb != nil {
			st.counts = append(st.counts, mp.Count)
			nKept++
		}
	}

	var total int64
	for _, c := range st.counts {
		total += c
	}
	for i := 0; i < nKept; i++ {
		sb := &st.shares[i]
		if total > 0 {
			prM := float64(st.counts[i]) / float64(total)
			for _, v := range sb.touched {
				scores[v] += prM * sb.buf[v]
			}
		}
		for _, v := range sb.touched {
			sb.buf[v] = 0
		}
	}
	scoreStatePool.Put(st)
	return scores
}

// shareBuf is one metapath's per-node match-share accumulator: a dense
// buffer zero outside its recorded support.
type shareBuf struct {
	buf     []float64
	touched []kg.NodeID
}

// scoreState bundles every reusable buffer of one ScoresWithPaths pass:
// the path-counting scratch, one shareBuf per kept metapath, and the kept
// counts. Pooled so repeated scoring (the engine's hot path) allocates
// only its result vector.
type scoreState struct {
	sc     metapath.Scratch
	shares []shareBuf
	counts []int64
}

var scoreStatePool = sync.Pool{New: func() any { return &scoreState{} }}

// share returns the i-th share buffer, cleared and sized for n nodes.
// Buffers are cleared sparsely when a pass finishes, so only growth
// allocates.
func (st *scoreState) share(i, n int) *shareBuf {
	if i == len(st.shares) {
		st.shares = append(st.shares, shareBuf{})
	}
	sb := &st.shares[i]
	if len(sb.buf) < n {
		sb.buf = make([]float64, n)
	}
	sb.touched = sb.touched[:0]
	return sb
}

// Jaccard is an ablation selector from related work: similarity is the
// Jaccard overlap of full (label-blind) neighborhoods, averaged over the
// query nodes. Candidates are restricted to nodes sharing at least one
// neighbor with a query node.
type Jaccard struct{}

// Name implements Selector.
func (Jaccard) Name() string { return "Jaccard" }

// Select implements Selector.
func (Jaccard) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	qNbrs := make([]map[kg.NodeID]bool, len(query))
	candidates := make(map[kg.NodeID]bool)
	for i, q := range query {
		qNbrs[i] = neighborSet(g, q)
		for nb := range qNbrs[i] {
			for _, e := range g.OutEdges(nb) {
				if !inQuery[e.To] {
					candidates[e.To] = true
				}
			}
		}
	}
	sel := topk.New(k)
	for cand := range candidates {
		cNbrs := neighborSet(g, cand)
		sum := 0.0
		for i := range query {
			sum += jaccard(qNbrs[i], cNbrs)
		}
		score := sum / float64(len(query))
		if score > 0 {
			sel.Offer(cand, score)
		}
	}
	return sel.Ranked()
}

// SimRank is an ablation selector: one-iteration SimRank,
// s(a,b) = C · |N(a) ∩ N(b)| / (|N(a)|·|N(b)|), averaged over query nodes.
// Like the original measure it disregards labels entirely.
type SimRank struct {
	// C is the SimRank decay constant; default 0.8.
	C float64
}

// Name implements Selector.
func (SimRank) Name() string { return "SimRank" }

// Select implements Selector.
func (s SimRank) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	c := s.C
	if c == 0 {
		c = 0.8
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	qNbrs := make([]map[kg.NodeID]bool, len(query))
	candidates := make(map[kg.NodeID]bool)
	for i, q := range query {
		qNbrs[i] = neighborSet(g, q)
		for nb := range qNbrs[i] {
			for _, e := range g.OutEdges(nb) {
				if !inQuery[e.To] {
					candidates[e.To] = true
				}
			}
		}
	}
	sel := topk.New(k)
	for cand := range candidates {
		cNbrs := neighborSet(g, cand)
		if len(cNbrs) == 0 {
			continue
		}
		sum := 0.0
		for i := range query {
			if len(qNbrs[i]) == 0 {
				continue
			}
			common := intersectionSize(qNbrs[i], cNbrs)
			sum += c * float64(common) / (float64(len(qNbrs[i])) * float64(len(cNbrs)))
		}
		score := sum / float64(len(query))
		if score > 0 {
			sel.Offer(cand, score)
		}
	}
	return sel.Ranked()
}

func neighborSet(g *kg.Graph, n kg.NodeID) map[kg.NodeID]bool {
	out := make(map[kg.NodeID]bool)
	for _, e := range g.OutEdges(n) {
		out[e.To] = true
	}
	return out
}

func jaccard(a, b map[kg.NodeID]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	common := intersectionSize(a, b)
	union := len(a) + len(b) - common
	if union == 0 {
		return 0
	}
	return float64(common) / float64(union)
}

func intersectionSize(a, b map[kg.NodeID]bool) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return n
}

// ByName returns the named selector with default parameters, for CLIs.
func ByName(name string, seed int64) (Selector, error) {
	switch name {
	case "contextrw", "ContextRW":
		return ContextRW{Seed: seed}, nil
	case "randomwalk", "RandomWalk":
		return RandomWalk{}, nil
	case "jaccard", "Jaccard":
		return Jaccard{}, nil
	case "simrank", "SimRank":
		return SimRank{}, nil
	default:
		return nil, fmt.Errorf("ctxsel: unknown selector %q", name)
	}
}
