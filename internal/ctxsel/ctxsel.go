// Package ctxsel implements context selection (Definition 2): finding the
// top-k nodes most similar to a query set.
//
// Two selectors from the paper:
//
//   - RandomWalk — the baseline: informativeness-weighted Personalized
//     PageRank from each query node, summed (Section 3.1, Eq. 1–2).
//   - ContextRW — the contribution: mine metapaths that connect the graph
//     to the query (PathMining), keep the |M| most frequent, then score
//     every node by σ(n', Q) = Σ_{m,n} |{n ⇝m n'}| / |{n ⇝m n”}| · Pr(m)
//     and take the top-k.
//
// Two more selectors from related work serve as ablations: SimRank-style
// neighbor similarity and neighborhood Jaccard overlap. Both ignore edge
// labels, which is exactly the deficiency the paper points out; keeping
// them runnable makes the comparison concrete.
package ctxsel

import (
	"fmt"
	"sync"

	"repro/internal/kg"
	"repro/internal/metapath"
	"repro/internal/ppr"
	"repro/internal/topk"
)

// Selector retrieves a ranked context set for a query.
type Selector interface {
	// Name identifies the selector in reports.
	Name() string
	// Select returns up to k context nodes ranked by descending
	// similarity, never including query nodes.
	Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item
}

// Scorer is implemented by selectors whose Select is a pure top-k cut over
// a dense per-node score vector. Callers that cache or reuse scores (the
// engine's query cache, the experiment sweeps) compute Scores once and
// derive contexts of any size with TopKFromScores.
type Scorer interface {
	// Scores returns one similarity score per node; query nodes may carry
	// arbitrary scores (they are excluded at selection time).
	Scores(g *kg.Graph, query []kg.NodeID) []float64
}

// BatchScorer is implemented by scorers with a batched scoring path that
// amortizes graph traversal across queries. ScoresBatch must return
// exactly what per-query Scores calls would — selectors whose batch path
// is bitwise identical (RandomWalk via ppr.PersonalizedSumMulti) make the
// whole batch pipeline's outputs identical to sequential searches.
type BatchScorer interface {
	Scorer
	// ScoresBatch returns one score vector per query, in order.
	ScoresBatch(g *kg.Graph, queries [][]kg.NodeID) [][]float64
}

// BatchSelector is implemented by selectors that resolve whole batches
// themselves — the engine's caching wrapper, which consults its cache per
// query and batches only the misses.
type BatchSelector interface {
	Selector
	// SelectBatch returns one ranked context per query, in order.
	SelectBatch(g *kg.Graph, queries [][]kg.NodeID, k int) [][]topk.Item
}

// SelectBatch resolves contexts for many queries through sel: the batched
// scoring path when sel provides one, per-query Select otherwise. Either
// way the results equal per-query Select calls.
func SelectBatch(g *kg.Graph, sel Selector, queries [][]kg.NodeID, k int) [][]topk.Item {
	out := make([][]topk.Item, len(queries))
	if bs, ok := sel.(BatchScorer); ok {
		scores := bs.ScoresBatch(g, queries)
		for i, q := range queries {
			out[i] = TopKFromScores(scores[i], q, k)
		}
		return out
	}
	for i, q := range queries {
		out[i] = sel.Select(g, q, k)
	}
	return out
}

// TopKFromScores cuts the k best-scored nodes from a dense score vector,
// excluding the query nodes and zero scores — the shared selection step of
// every score-based selector.
func TopKFromScores(scores []float64, query []kg.NodeID, k int) []topk.Item {
	skip := make(map[uint32]bool, len(query))
	for _, q := range query {
		skip[q] = true
	}
	sel := topk.New(k)
	for id, sc := range scores {
		if sc == 0 || skip[uint32(id)] {
			continue
		}
		sel.Offer(uint32(id), sc)
	}
	return sel.Ranked()
}

// RandomWalk is the paper's baseline selector: summed Personalized
// PageRank from each query node.
type RandomWalk struct {
	Opt ppr.Options
}

// Name implements Selector.
func (RandomWalk) Name() string { return "RandomWalk" }

// Select implements Selector.
func (s RandomWalk) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	return TopKFromScores(s.Scores(g, query), query, k)
}

// Scores implements Scorer: the summed per-seed PageRank vector.
func (s RandomWalk) Scores(g *kg.Graph, query []kg.NodeID) []float64 {
	return ppr.PersonalizedSum(g, query, s.Opt)
}

// ScoresBatch implements BatchScorer through the batched multi-source
// solve: unique seeds across the batch are solved once and the dense
// tails share the blocked gather kernel, bitwise identical to per-query
// Scores.
func (s RandomWalk) ScoresBatch(g *kg.Graph, queries [][]kg.NodeID) [][]float64 {
	return ppr.PersonalizedSumMulti(g, queries, s.Opt)
}

// ContextRW is the paper's context selector (Section 3.1).
type ContextRW struct {
	// Walks is the PathMining sampling budget. The paper runs 1M walks;
	// scale down for smaller graphs. Default 200000.
	Walks int
	// NumPaths is |M|, the number of retained metapaths. The paper finds
	// F1 insensitive to it and suggests 5. Default 5.
	NumPaths int
	// MaxLength bounds metapath length; the paper suggests 5. Default 5.
	MaxLength int
	// Uniform disables informativeness weighting during mining.
	Uniform bool
	// Seed fixes mining randomness.
	Seed int64
	// Parallelism bounds mining workers; 0 uses the miner default.
	Parallelism int
}

// Name implements Selector.
func (ContextRW) Name() string { return "ContextRW" }

func (s ContextRW) withDefaults() ContextRW {
	if s.Walks == 0 {
		s.Walks = 200000
	}
	if s.NumPaths == 0 {
		s.NumPaths = 5
	}
	if s.MaxLength == 0 {
		s.MaxLength = 5
	}
	return s
}

// Select implements Selector.
func (s ContextRW) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	return TopKFromScores(s.Scores(g, query), query, k)
}

// Scores computes σ(n', Q) for every node n'. Exposed separately so
// experiments can reuse one scoring pass across several context sizes.
func (s ContextRW) Scores(g *kg.Graph, query []kg.NodeID) []float64 {
	s = s.withDefaults()
	mined := metapath.Mine(g, query, metapath.MineOptions{
		Walks:       s.Walks,
		MaxLength:   s.MaxLength,
		Uniform:     s.Uniform,
		Seed:        s.Seed,
		Parallelism: s.Parallelism,
	})
	return s.ScoresWithPaths(g, query, mined)
}

// ScoresWithPaths scores nodes against an already-mined metapath list
// (sorted by descending count, as Mine returns it). Exposed so experiments
// can sweep |M| (s.NumPaths) without re-mining.
//
// The paper scores by "the probability that some metapath starting from a
// query node ends in this node": mined label sequences are matched from
// the query verbatim, not reversed. Purely inbound sequences (e.g. the
// hasChild⁻¹ funnel from a child leaf) find no match from the query side
// and would contribute nothing to σ, so the top-|M| cut is applied over
// the query-matchable metapaths only; Pr(m) is then the count share within
// that kept set, exactly as in Section 3.1.
func (s ContextRW) ScoresWithPaths(g *kg.Graph, query []kg.NodeID, mined []metapath.Mined) []float64 {
	s = s.withDefaults()
	scores := make([]float64, g.NumNodes())
	if len(mined) == 0 || len(query) == 0 {
		return scores
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}

	// Select up to NumPaths query-matchable metapaths in count order,
	// accumulating each one's per-node match share Σ_q counts_q[n']/denom_q
	// in a pooled buffer with an explicit support list, so the whole loop
	// touches only reached nodes. Path counting goes through one shared
	// metapath.Scratch and all buffers live in one pooled scoring state —
	// a warm call allocates only the result vector.
	st := scoreStatePool.Get().(*scoreState)
	st.counts = st.counts[:0]
	nKept := 0
	for _, mp := range mined {
		if nKept == s.NumPaths {
			break
		}
		var sb *shareBuf
		for _, q := range query {
			counts, touched := metapath.CountPathsInto(g, q, mp.Path, &st.sc)
			denom := 0.0
			for _, v := range touched {
				if !inQuery[v] {
					denom += counts[v]
				}
			}
			if denom == 0 {
				continue
			}
			if sb == nil {
				sb = st.share(nKept, g.NumNodes())
			}
			for _, v := range touched {
				if inQuery[v] {
					continue
				}
				if sb.buf[v] == 0 {
					sb.touched = append(sb.touched, v)
				}
				sb.buf[v] += counts[v] / denom
			}
		}
		if sb != nil {
			st.counts = append(st.counts, mp.Count)
			nKept++
		}
	}

	var total int64
	for _, c := range st.counts {
		total += c
	}
	for i := 0; i < nKept; i++ {
		sb := &st.shares[i]
		if total > 0 {
			prM := float64(st.counts[i]) / float64(total)
			for _, v := range sb.touched {
				scores[v] += prM * sb.buf[v]
			}
		}
		for _, v := range sb.touched {
			sb.buf[v] = 0
		}
	}
	scoreStatePool.Put(st)
	return scores
}

// shareBuf is one metapath's per-node match-share accumulator: a dense
// buffer zero outside its recorded support.
type shareBuf struct {
	buf     []float64
	touched []kg.NodeID
}

// scoreState bundles every reusable buffer of one ScoresWithPaths pass:
// the path-counting scratch, one shareBuf per kept metapath, and the kept
// counts. Pooled so repeated scoring (the engine's hot path) allocates
// only its result vector.
type scoreState struct {
	sc     metapath.Scratch
	shares []shareBuf
	counts []int64
}

var scoreStatePool = sync.Pool{New: func() any { return &scoreState{} }}

// share returns the i-th share buffer, cleared and sized for n nodes.
// Buffers are cleared sparsely when a pass finishes, so only growth
// allocates.
func (st *scoreState) share(i, n int) *shareBuf {
	if i == len(st.shares) {
		st.shares = append(st.shares, shareBuf{})
	}
	sb := &st.shares[i]
	if len(sb.buf) < n {
		sb.buf = make([]float64, n)
	}
	sb.touched = sb.touched[:0]
	return sb
}

// Jaccard is an ablation selector from related work: similarity is the
// Jaccard overlap of full (label-blind) neighborhoods, averaged over the
// query nodes. Candidates are restricted to nodes sharing at least one
// neighbor with a query node.
type Jaccard struct{}

// Name implements Selector.
func (Jaccard) Name() string { return "Jaccard" }

// Select implements Selector.
func (Jaccard) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	qNbrs := make([]map[kg.NodeID]bool, len(query))
	candidates := make(map[kg.NodeID]bool)
	for i, q := range query {
		qNbrs[i] = neighborSet(g, q)
		for nb := range qNbrs[i] {
			for _, e := range g.OutEdges(nb) {
				if !inQuery[e.To] {
					candidates[e.To] = true
				}
			}
		}
	}
	sel := topk.New(k)
	for cand := range candidates {
		cNbrs := neighborSet(g, cand)
		sum := 0.0
		for i := range query {
			sum += jaccard(qNbrs[i], cNbrs)
		}
		score := sum / float64(len(query))
		if score > 0 {
			sel.Offer(cand, score)
		}
	}
	return sel.Ranked()
}

// SimRank is an ablation selector: one-iteration SimRank,
// s(a,b) = C · |N(a) ∩ N(b)| / (|N(a)|·|N(b)|), averaged over query nodes.
// Like the original measure it disregards labels entirely.
type SimRank struct {
	// C is the SimRank decay constant; default 0.8.
	C float64
}

// Name implements Selector.
func (SimRank) Name() string { return "SimRank" }

// Select implements Selector.
func (s SimRank) Select(g *kg.Graph, query []kg.NodeID, k int) []topk.Item {
	c := s.C
	if c == 0 {
		c = 0.8
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	qNbrs := make([]map[kg.NodeID]bool, len(query))
	candidates := make(map[kg.NodeID]bool)
	for i, q := range query {
		qNbrs[i] = neighborSet(g, q)
		for nb := range qNbrs[i] {
			for _, e := range g.OutEdges(nb) {
				if !inQuery[e.To] {
					candidates[e.To] = true
				}
			}
		}
	}
	sel := topk.New(k)
	for cand := range candidates {
		cNbrs := neighborSet(g, cand)
		if len(cNbrs) == 0 {
			continue
		}
		sum := 0.0
		for i := range query {
			if len(qNbrs[i]) == 0 {
				continue
			}
			common := intersectionSize(qNbrs[i], cNbrs)
			sum += c * float64(common) / (float64(len(qNbrs[i])) * float64(len(cNbrs)))
		}
		score := sum / float64(len(query))
		if score > 0 {
			sel.Offer(cand, score)
		}
	}
	return sel.Ranked()
}

func neighborSet(g *kg.Graph, n kg.NodeID) map[kg.NodeID]bool {
	out := make(map[kg.NodeID]bool)
	for _, e := range g.OutEdges(n) {
		out[e.To] = true
	}
	return out
}

func jaccard(a, b map[kg.NodeID]bool) float64 {
	if len(a) == 0 && len(b) == 0 {
		return 0
	}
	common := intersectionSize(a, b)
	union := len(a) + len(b) - common
	if union == 0 {
		return 0
	}
	return float64(common) / float64(union)
}

func intersectionSize(a, b map[kg.NodeID]bool) int {
	if len(a) > len(b) {
		a, b = b, a
	}
	n := 0
	for k := range a {
		if b[k] {
			n++
		}
	}
	return n
}

// ByName returns the named selector with default parameters, for CLIs.
func ByName(name string, seed int64) (Selector, error) {
	switch name {
	case "contextrw", "ContextRW":
		return ContextRW{Seed: seed}, nil
	case "randomwalk", "RandomWalk":
		return RandomWalk{}, nil
	case "jaccard", "Jaccard":
		return Jaccard{}, nil
	case "simrank", "SimRank":
		return SimRank{}, nil
	default:
		return nil, fmt.Errorf("ctxsel: unknown selector %q", name)
	}
}
