package ctxsel

import (
	"fmt"
	"testing"

	"repro/internal/kg"
	"repro/internal/topk"
)

// communityGraph builds two communities of people. Community A members all
// work at "acme" and live in "metropolis"; community B members work at
// "globex" and live in "smallville". Query nodes come from community A, so
// a good selector returns the rest of community A as context.
func communityGraph() (*kg.Graph, []kg.NodeID, map[kg.NodeID]bool) {
	b := kg.NewBuilder(128)
	sizeA, sizeB := 12, 12
	for i := 0; i < sizeA; i++ {
		name := fmt.Sprintf("a%02d", i)
		b.AddEdge(name, "worksAt", "acme")
		b.AddEdge(name, "livesIn", "metropolis")
	}
	for i := 0; i < sizeB; i++ {
		name := fmt.Sprintf("b%02d", i)
		b.AddEdge(name, "worksAt", "globex")
		b.AddEdge(name, "livesIn", "smallville")
	}
	// Noise: a hub city connected to everyone dilutes naive walks.
	for i := 0; i < sizeA; i++ {
		b.AddEdge(fmt.Sprintf("a%02d", i), "visited", "megacity")
	}
	for i := 0; i < sizeB; i++ {
		b.AddEdge(fmt.Sprintf("b%02d", i), "visited", "megacity")
	}
	g := b.Build()
	q0, _ := g.NodeByName("a00")
	q1, _ := g.NodeByName("a01")
	query := []kg.NodeID{q0, q1}
	wantSet := make(map[kg.NodeID]bool)
	for i := 2; i < sizeA; i++ {
		n, _ := g.NodeByName(fmt.Sprintf("a%02d", i))
		wantSet[n] = true
	}
	return g, query, wantSet
}

func precisionAt(items []topk.Item, want map[kg.NodeID]bool, k int) float64 {
	if k > len(items) {
		k = len(items)
	}
	if k == 0 {
		return 0
	}
	hits := 0
	for _, it := range items[:k] {
		if want[kg.NodeID(it.ID)] {
			hits++
		}
	}
	return float64(hits) / float64(k)
}

func TestContextRWFindsCommunity(t *testing.T) {
	g, query, want := communityGraph()
	s := ContextRW{Walks: 30000, Seed: 5}
	got := s.Select(g, query, 10)
	if len(got) == 0 {
		t.Fatal("empty context")
	}
	if p := precisionAt(got, want, 10); p < 0.8 {
		t.Fatalf("ContextRW precision@10 = %v, want >= 0.8 (got %v)", p, names(g, got))
	}
}

func TestContextRWExcludesQuery(t *testing.T) {
	g, query, _ := communityGraph()
	s := ContextRW{Walks: 10000, Seed: 5}
	for _, it := range s.Select(g, query, 50) {
		for _, q := range query {
			if kg.NodeID(it.ID) == q {
				t.Fatal("context contains a query node")
			}
		}
	}
}

func TestContextRWDeterministic(t *testing.T) {
	g, query, _ := communityGraph()
	s := ContextRW{Walks: 10000, Seed: 99, Parallelism: 3}
	a := s.Select(g, query, 10)
	b := s.Select(g, query, 10)
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("results differ at %d: %v vs %v", i, a[i], b[i])
		}
	}
}

func TestRandomWalkReturnsRankedContext(t *testing.T) {
	g, query, _ := communityGraph()
	got := RandomWalk{}.Select(g, query, 10)
	if len(got) == 0 {
		t.Fatal("empty context")
	}
	for i := 1; i < len(got); i++ {
		if got[i].Score > got[i-1].Score {
			t.Fatal("not sorted descending")
		}
	}
	for _, it := range got {
		for _, q := range query {
			if kg.NodeID(it.ID) == q {
				t.Fatal("context contains a query node")
			}
		}
	}
}

func TestContextRWBeatsRandomWalkOnCommunity(t *testing.T) {
	g, query, want := communityGraph()
	crw := ContextRW{Walks: 30000, Seed: 5}.Select(g, query, 10)
	rw := RandomWalk{}.Select(g, query, 10)
	pc := precisionAt(crw, want, 10)
	pr := precisionAt(rw, want, 10)
	if pc < pr {
		t.Fatalf("ContextRW precision %v < RandomWalk %v", pc, pr)
	}
}

func TestJaccardSelector(t *testing.T) {
	g, query, want := communityGraph()
	got := Jaccard{}.Select(g, query, 10)
	if len(got) == 0 {
		t.Fatal("empty context")
	}
	if p := precisionAt(got, want, 10); p < 0.5 {
		t.Fatalf("Jaccard precision@10 = %v too low: %v", p, names(g, got))
	}
}

func TestSimRankSelector(t *testing.T) {
	g, query, _ := communityGraph()
	got := SimRank{}.Select(g, query, 10)
	if len(got) == 0 {
		t.Fatal("empty context")
	}
	for _, it := range got {
		if it.Score <= 0 {
			t.Fatal("non-positive SimRank score retained")
		}
	}
}

func TestSelectorsHandleEmptyQuery(t *testing.T) {
	g, _, _ := communityGraph()
	for _, s := range []Selector{ContextRW{Walks: 100, Seed: 1}, RandomWalk{}, Jaccard{}, SimRank{}} {
		if got := s.Select(g, nil, 5); len(got) != 0 {
			t.Fatalf("%s returned context for empty query", s.Name())
		}
	}
}

func TestScoresWithPathsEmptyMined(t *testing.T) {
	g, query, _ := communityGraph()
	scores := ContextRW{}.ScoresWithPaths(g, query, nil)
	for _, s := range scores {
		if s != 0 {
			t.Fatal("no mined paths should produce zero scores")
		}
	}
}

func TestByName(t *testing.T) {
	for _, name := range []string{"contextrw", "randomwalk", "jaccard", "simrank"} {
		s, err := ByName(name, 1)
		if err != nil {
			t.Fatalf("ByName(%q): %v", name, err)
		}
		if s.Name() == "" {
			t.Fatalf("selector %q has empty name", name)
		}
	}
	if _, err := ByName("nope", 1); err == nil {
		t.Fatal("unknown selector should error")
	}
}

func TestSelectorNames(t *testing.T) {
	if (ContextRW{}).Name() != "ContextRW" {
		t.Fatal("ContextRW name")
	}
	if (RandomWalk{}).Name() != "RandomWalk" {
		t.Fatal("RandomWalk name")
	}
}

func names(g *kg.Graph, items []topk.Item) []string {
	out := make([]string, len(items))
	for i, it := range items {
		out[i] = g.NodeName(kg.NodeID(it.ID))
	}
	return out
}

func BenchmarkContextRWSelect(b *testing.B) {
	g, query, _ := communityGraph()
	s := ContextRW{Walks: 20000, Seed: 3}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(g, query, 20)
	}
}

func BenchmarkRandomWalkSelect(b *testing.B) {
	g, query, _ := communityGraph()
	s := RandomWalk{}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Select(g, query, 20)
	}
}
