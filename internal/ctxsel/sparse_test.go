package ctxsel

import (
	"math"
	"testing"

	"repro/internal/gen"
	"repro/internal/kg"
	"repro/internal/metapath"
)

// scoresWithPathsReference is the seed implementation of ScoresWithPaths:
// two fresh n-vectors per (metapath, query node) pair and dense sweeps.
// Kept as the oracle the sparse rewrite is verified and benchmarked
// against.
func scoresWithPathsReference(s ContextRW, g *kg.Graph, query []kg.NodeID, mined []metapath.Mined) []float64 {
	s = s.withDefaults()
	scores := make([]float64, g.NumNodes())
	if len(mined) == 0 || len(query) == 0 {
		return scores
	}
	inQuery := make(map[kg.NodeID]bool, len(query))
	for _, q := range query {
		inQuery[q] = true
	}
	type kept struct {
		count int64
		share []float64
	}
	var keptPaths []kept
	for _, mp := range mined {
		if len(keptPaths) == s.NumPaths {
			break
		}
		var share []float64
		for _, q := range query {
			counts := metapath.CountPaths(g, q, mp.Path)
			denom := 0.0
			for id, c := range counts {
				if c != 0 && !inQuery[kg.NodeID(id)] {
					denom += c
				}
			}
			if denom == 0 {
				continue
			}
			if share == nil {
				share = make([]float64, len(counts))
			}
			for id, c := range counts {
				if c != 0 && !inQuery[kg.NodeID(id)] {
					share[id] += c / denom
				}
			}
		}
		if share != nil {
			keptPaths = append(keptPaths, kept{count: mp.Count, share: share})
		}
	}
	var total int64
	for _, kp := range keptPaths {
		total += kp.count
	}
	if total == 0 {
		return scores
	}
	for _, kp := range keptPaths {
		prM := float64(kp.count) / float64(total)
		for id, sh := range kp.share {
			if sh != 0 {
				scores[id] += prM * sh
			}
		}
	}
	return scores
}

func minedFor(t testing.TB, g *kg.Graph, query []kg.NodeID, walks int) []metapath.Mined {
	t.Helper()
	mined := metapath.Mine(g, query, metapath.MineOptions{Walks: walks, Seed: 7})
	if len(mined) == 0 {
		t.Fatal("mining found no metapaths")
	}
	return mined
}

// TestScoresWithPathsMatchesReference: the touched-list scoring pass and
// the dense seed implementation agree within 1e-12.
func TestScoresWithPathsMatchesReference(t *testing.T) {
	g, query, _ := communityGraph()
	mined := minedFor(t, g, query, 20000)
	for _, numPaths := range []int{1, 3, 5, 10} {
		s := ContextRW{NumPaths: numPaths}
		got := s.ScoresWithPaths(g, query, mined)
		want := scoresWithPathsReference(s, g, query, mined)
		for i := range want {
			if math.Abs(got[i]-want[i]) > 1e-12 {
				t.Fatalf("|M|=%d node %d: sparse %v reference %v", numPaths, i, got[i], want[i])
			}
		}
	}
}

// TestScoresWithPathsRepeatedCallsIdentical: pooled buffers must come back
// clean — repeated calls give bit-identical results.
func TestScoresWithPathsRepeatedCallsIdentical(t *testing.T) {
	g, query, _ := communityGraph()
	mined := minedFor(t, g, query, 20000)
	s := ContextRW{}
	a := s.ScoresWithPaths(g, query, mined)
	for run := 0; run < 5; run++ {
		b := s.ScoresWithPaths(g, query, mined)
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("run %d differs at node %d: %v vs %v", run, i, a[i], b[i])
			}
		}
	}
}

// TestScoresWithPathsAllocs: the sparse pass allocates strictly less than
// the reference (which allocates two n-vectors per (metapath, query node)
// pair).
func TestScoresWithPathsAllocs(t *testing.T) {
	g, query, _ := communityGraph()
	mined := minedFor(t, g, query, 20000)
	s := ContextRW{}
	s.ScoresWithPaths(g, query, mined) // warm the pools
	sparse := testing.AllocsPerRun(20, func() { s.ScoresWithPaths(g, query, mined) })
	ref := testing.AllocsPerRun(20, func() { scoresWithPathsReference(s, g, query, mined) })
	if sparse >= ref {
		t.Fatalf("sparse allocs/op %v not below reference %v", sparse, ref)
	}
}

// BenchmarkScoresWithPaths compares the touched-list scoring loop against
// the dense seed implementation on the half-scale YAGO-like graph with the
// five-actor query — the acceptance workload.
func BenchmarkScoresWithPaths(b *testing.B) {
	d := gen.YAGOLike(gen.YAGOConfig{Seed: 42, Scale: 0.5})
	g := d.Graph
	query, err := d.Scenario("actors").QueryIDs(g, 5)
	if err != nil {
		b.Fatal(err)
	}
	mined := minedFor(b, g, query, 60000)
	s := ContextRW{}
	b.Run("sparse", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			s.ScoresWithPaths(g, query, mined)
		}
	})
	b.Run("reference", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			scoresWithPathsReference(s, g, query, mined)
		}
	})
}
