package ctxsel

import (
	"math"
	"testing"

	"repro/internal/kg"
	"repro/internal/metapath"
)

// TestUniformVsWeightedMining: the informativeness-weighted walk must not
// be worse than uniform on a graph where the community is connected by a
// rare label and diluted by a frequent one.
func TestUniformVsWeightedMining(t *testing.T) {
	b := kg.NewBuilder(256)
	// Community: members share a rare "collaboratesWith" hub.
	for i := 0; i < 10; i++ {
		b.AddEdge(member(i), "collaboratesWith", "lab")
	}
	// Dilution: everyone (community + crowd) shares a frequent label.
	for i := 0; i < 10; i++ {
		b.AddEdge(member(i), "livesIn", "metropolis")
	}
	for i := 0; i < 60; i++ {
		b.AddEdge(crowd(i), "livesIn", "metropolis")
	}
	g := b.Build()
	q0, _ := g.NodeByName(member(0))
	q1, _ := g.NodeByName(member(1))
	query := []kg.NodeID{q0, q1}

	want := make(map[kg.NodeID]bool)
	for i := 2; i < 10; i++ {
		id, _ := g.NodeByName(member(i))
		want[id] = true
	}
	prec := func(uniform bool) float64 {
		s := ContextRW{Walks: 30000, Seed: 9, Uniform: uniform}
		items := s.Select(g, query, 8)
		hits := 0
		for _, it := range items {
			if want[kg.NodeID(it.ID)] {
				hits++
			}
		}
		if len(items) == 0 {
			return 0
		}
		return float64(hits) / float64(len(items))
	}
	weighted := prec(false)
	uniform := prec(true)
	if weighted+1e-9 < uniform {
		t.Fatalf("weighted precision %v < uniform %v", weighted, uniform)
	}
	if weighted < 0.5 {
		t.Fatalf("weighted precision %v too low", weighted)
	}
}

func member(i int) string { return "member" + string(rune('0'+i)) }
func crowd(i int) string {
	return "crowd" + string(rune('0'+i/10)) + string(rune('0'+i%10))
}

// TestNumPathsSweepStable: increasing |M| must not lose previously found
// context members dramatically (the Table 3 insensitivity claim at module
// level).
func TestNumPathsSweepStable(t *testing.T) {
	g, query, want := communityGraph()
	mined := metapath.Mine(g, query, metapath.MineOptions{Walks: 30000, Seed: 5})
	var prev float64
	for _, m := range []int{2, 5, 10} {
		s := ContextRW{NumPaths: m, Walks: 30000, Seed: 5}
		scores := s.ScoresWithPaths(g, query, mined)
		items := rankingOf(scores, query, 10)
		hits := 0
		for _, it := range items {
			if want[kg.NodeID(it.ID)] {
				hits++
			}
		}
		f := float64(hits)
		if prev > 0 && f < prev/2 {
			t.Fatalf("|M|=%d dropped hits from %v to %v", m, prev, f)
		}
		if f > 0 {
			prev = f
		}
	}
}

func rankingOf(scores []float64, query []kg.NodeID, k int) []struct {
	ID    uint32
	Score float64
} {
	skip := make(map[kg.NodeID]bool)
	for _, q := range query {
		skip[q] = true
	}
	type item = struct {
		ID    uint32
		Score float64
	}
	var out []item
	for id, sc := range scores {
		if sc > 0 && !skip[kg.NodeID(id)] {
			out = append(out, item{uint32(id), sc})
		}
	}
	// Selection sort of the top k is fine at test sizes.
	for i := 0; i < len(out) && i < k; i++ {
		best := i
		for j := i + 1; j < len(out); j++ {
			if out[j].Score > out[best].Score {
				best = j
			}
		}
		out[i], out[best] = out[best], out[i]
	}
	if len(out) > k {
		out = out[:k]
	}
	return out
}

// TestScoresSumBounded: σ is a weighted average of per-metapath shares,
// so the total score mass per query node is at most |Q| (each (m, n) pair
// distributes Pr(m) across nodes).
func TestScoresSumBounded(t *testing.T) {
	g, query, _ := communityGraph()
	s := ContextRW{Walks: 20000, Seed: 5}
	scores := s.Scores(g, query)
	sum := 0.0
	for _, v := range scores {
		if v < 0 {
			t.Fatal("negative score")
		}
		sum += v
	}
	if sum > float64(len(query))+1e-6 {
		t.Fatalf("score mass %v exceeds |Q| = %d", sum, len(query))
	}
	if math.IsNaN(sum) {
		t.Fatal("NaN score mass")
	}
}

// TestSelectRespectsK: never returns more than k items.
func TestSelectRespectsK(t *testing.T) {
	g, query, _ := communityGraph()
	for _, k := range []int{1, 3, 7, 1000} {
		items := ContextRW{Walks: 10000, Seed: 2}.Select(g, query, k)
		if len(items) > k {
			t.Fatalf("k=%d returned %d items", k, len(items))
		}
	}
}
