// Package dist builds the per-label observation distributions of Section
// 3.2: for an edge label l and a node set S, the instance distribution
// (which values the l-edges of S point at, with a None category for nodes
// lacking the label) and the cardinality distribution (how many l-edges
// each node of S carries).
//
// The query's observations are tested against the context's distribution
// by the multinomial test in internal/stats. Two policies govern instance
// values the context never exhibits:
//
//   - UnseenStrict is the paper's formula: a query value with zero context
//     probability is impossible under the context distribution, so the
//     test returns Pr_s = 0 and the label is maximally notable.
//   - UnseenPooled pools idiosyncratic values — values carried by exactly
//     one node across query ∪ context — into a single category. This
//     matters for labels like `created` in the authors test case: every
//     author created only their own works, so under the strict policy any
//     query would look notable even though creating unique works is
//     exactly what the context does too. Pooling compares the *rate* of
//     idiosyncratic behaviour instead of the identities of the values.
package dist

import (
	"sort"

	"repro/internal/kg"
)

// UnseenPolicy selects how instance values absent from the context are
// treated when building test vectors.
type UnseenPolicy int

const (
	// UnseenStrict keeps every value as its own category (the paper's
	// formula): query-only values are impossible under the context.
	UnseenStrict UnseenPolicy = iota
	// UnseenPooled merges idiosyncratic values (exactly one owner across
	// query and context) into one shared category.
	UnseenPooled
)

// NoneIndex is the category index reserved for nodes without the label.
const NoneIndex = 0

// Scratch holds reusable buffers for repeated distribution building — one
// per worker of core's comparison pool. The zero value is ready; buffers
// grow to the largest label seen and are reused across calls. A Scratch
// must not be shared between concurrent builders.
type Scratch struct {
	index map[kg.NodeID]int // value → category, cleared per label
	pi    []float64         // test-vector π buffer
	obs   []int             // pooled-policy observation buffer
}

// Instance is the instance (value) distribution of one label over the
// query and context sets. Categories are indexed 0..NumCategories-1:
// index NoneIndex counts nodes with no l-edge, and index i ≥ 1 counts
// edges pointing at Values[i-1].
type Instance struct {
	// Label is the edge label the distribution describes.
	Label kg.LabelID
	// Values holds the distinct l-edge targets seen across query and
	// context, sorted by node ID; category i ≥ 1 corresponds to
	// Values[i-1].
	Values []kg.NodeID
	// Query and Context hold per-category counts for the two sets.
	Query, Context []int
}

// NumCategories returns the number of categories (None plus values).
func (d Instance) NumCategories() int { return len(d.Query) }

// CategoryName renders category i: "None" for NoneIndex, otherwise the
// value node's name.
func (d Instance) CategoryName(g *kg.Graph, i int) string {
	if i == NoneIndex {
		return "None"
	}
	return g.NodeName(d.Values[i-1])
}

// TestVectors returns the context distribution (as floats, unnormalized)
// and the query observation aligned with it, applying the unseen-value
// policy. Under UnseenPooled the returned vectors cover the kept
// categories (None plus values with at least two owners) followed by one
// pooled category summing the idiosyncratic values; under UnseenStrict
// they alias the distribution's own count slices. Both policies return π
// and the observation with equal lengths — Query and Context share one
// category space by construction, so the vectors cannot diverge (pinned
// by TestTestVectorsAlwaysAligned).
func (d Instance) TestVectors(policy UnseenPolicy) ([]float64, []int) {
	return d.TestVectorsScratch(policy, nil)
}

// TestVectorsScratch is TestVectors building π (and, under UnseenPooled,
// the observation) into s's reusable buffers. The returned slices are
// valid until the next call with the same Scratch; s may be nil, which
// allocates freshly.
func (d Instance) TestVectorsScratch(policy UnseenPolicy, s *Scratch) ([]float64, []int) {
	if s == nil {
		s = &Scratch{}
	}
	if policy != UnseenPooled {
		s.pi = ContextFloatsInto(s.pi[:0], d.Context)
		return s.pi, d.Query
	}
	pi := append(s.pi[:0], float64(d.Context[NoneIndex]))
	obs := append(s.obs[:0], d.Query[NoneIndex])
	pooledCtx, pooledObs, pooled := 0, 0, false
	for i := 1; i < len(d.Query); i++ {
		if d.Query[i]+d.Context[i] <= 1 {
			pooled = true
			pooledCtx += d.Context[i]
			pooledObs += d.Query[i]
			continue
		}
		pi = append(pi, float64(d.Context[i]))
		obs = append(obs, d.Query[i])
	}
	if pooled {
		pi = append(pi, float64(pooledCtx))
		obs = append(obs, pooledObs)
	}
	s.pi, s.obs = pi, obs
	return pi, obs
}

// Instances builds the instance distribution of label l over the query
// and context node sets. Each node contributes one count per distinct
// l-edge value, or one None count if it has no l-edge.
func Instances(g *kg.Graph, l kg.LabelID, query, context []kg.NodeID) Instance {
	return InstancesScratch(g, l, query, context, nil)
}

// InstancesScratch is Instances reusing s's category-index map across
// calls — the dominant allocation when testing many labels over one node
// set. The returned Instance owns fresh count and value slices either
// way; only internal lookup state is recycled. s may be nil.
func InstancesScratch(g *kg.Graph, l kg.LabelID, query, context []kg.NodeID, s *Scratch) Instance {
	var index map[kg.NodeID]int
	if s != nil {
		if s.index == nil {
			s.index = make(map[kg.NodeID]int)
		}
		clear(s.index)
		index = s.index
	} else {
		index = make(map[kg.NodeID]int)
	}
	var values []kg.NodeID
	for _, set := range [][]kg.NodeID{query, context} {
		for _, n := range set {
			for _, e := range g.OutEdgesByLabel(n, l) {
				if _, ok := index[e.To]; !ok {
					index[e.To] = 0
					values = append(values, e.To)
				}
			}
		}
	}
	sort.Slice(values, func(i, j int) bool { return values[i] < values[j] })
	for i, v := range values {
		index[v] = i + 1
	}
	d := Instance{
		Label:   l,
		Values:  values,
		Query:   make([]int, 1+len(values)),
		Context: make([]int, 1+len(values)),
	}
	countInto := func(nodes []kg.NodeID, counts []int) {
		for _, n := range nodes {
			adj := g.OutEdgesByLabel(n, l)
			if len(adj) == 0 {
				counts[NoneIndex]++
				continue
			}
			for _, e := range adj {
				counts[index[e.To]]++
			}
		}
	}
	countInto(query, d.Query)
	countInto(context, d.Context)
	return d
}

// Cardinality is the cardinality (count) distribution of one label:
// Query[i] and Context[i] count the nodes of each set carrying exactly i
// l-edges. Both slices share one length, max cardinality + 1.
type Cardinality struct {
	// Label is the edge label the distribution describes.
	Label kg.LabelID
	// Query and Context are per-cardinality node counts.
	Query, Context []int
}

// Cardinalities builds the cardinality distribution of label l over the
// query and context node sets.
func Cardinalities(g *kg.Graph, l kg.LabelID, query, context []kg.NodeID) Cardinality {
	maxCard := 0
	for _, set := range [][]kg.NodeID{query, context} {
		for _, n := range set {
			if c := len(g.OutEdgesByLabel(n, l)); c > maxCard {
				maxCard = c
			}
		}
	}
	d := Cardinality{
		Label:   l,
		Query:   make([]int, maxCard+1),
		Context: make([]int, maxCard+1),
	}
	for _, n := range query {
		d.Query[len(g.OutEdgesByLabel(n, l))]++
	}
	for _, n := range context {
		d.Context[len(g.OutEdgesByLabel(n, l))]++
	}
	return d
}

// ContextFloats converts a count vector to float64 for the stats package.
func ContextFloats(counts []int) []float64 {
	return ContextFloatsInto(make([]float64, 0, len(counts)), counts)
}

// ContextFloatsInto appends the float64 form of counts to dst and returns
// the extended slice — pass dst[:0] to reuse a scratch buffer.
func ContextFloatsInto(dst []float64, counts []int) []float64 {
	for _, c := range counts {
		dst = append(dst, float64(c))
	}
	return dst
}
