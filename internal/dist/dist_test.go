package dist

import (
	"testing"

	"repro/internal/kg"
	"repro/internal/stats"
)

// smallWorld: q1 studied Physics; q2 and c1..c3 studied Law; c4 has no
// studied edge. q1 additionally created a unique work, as did c1 and c2.
func smallWorld(t *testing.T) (*kg.Graph, []kg.NodeID, []kg.NodeID) {
	t.Helper()
	b := kg.NewBuilder(32)
	b.AddEdge("q1", "studied", "Physics")
	b.AddEdge("q2", "studied", "Law")
	for _, c := range []string{"c1", "c2", "c3"} {
		b.AddEdge(c, "studied", "Law")
	}
	b.Node("c4")
	b.AddEdge("q1", "created", "Work-q1")
	b.AddEdge("c1", "created", "Work-c1")
	b.AddEdge("c2", "created", "Work-c2")
	g := b.Build()
	ids := func(names ...string) []kg.NodeID {
		out := make([]kg.NodeID, len(names))
		for i, n := range names {
			id, ok := g.NodeByName(n)
			if !ok {
				t.Fatalf("missing node %s", n)
			}
			out[i] = id
		}
		return out
	}
	return g, ids("q1", "q2"), ids("c1", "c2", "c3", "c4")
}

func label(t *testing.T, g *kg.Graph, name string) kg.LabelID {
	t.Helper()
	l, ok := g.LabelByName(name)
	if !ok {
		t.Fatalf("missing label %s", name)
	}
	return l
}

func catCount(t *testing.T, g *kg.Graph, d Instance, name string, counts []int) int {
	t.Helper()
	for i := 0; i < d.NumCategories(); i++ {
		if d.CategoryName(g, i) == name {
			return counts[i]
		}
	}
	t.Fatalf("category %s missing", name)
	return 0
}

func TestInstancesCountsAndNone(t *testing.T) {
	g, query, context := smallWorld(t)
	d := Instances(g, label(t, g, "studied"), query, context)
	if d.NumCategories() != 3 { // None, Physics, Law
		t.Fatalf("NumCategories = %d, want 3", d.NumCategories())
	}
	if d.CategoryName(g, NoneIndex) != "None" {
		t.Fatalf("NoneIndex name = %q", d.CategoryName(g, NoneIndex))
	}
	if got := catCount(t, g, d, "Physics", d.Query); got != 1 {
		t.Fatalf("query Physics = %d", got)
	}
	if got := catCount(t, g, d, "Law", d.Query); got != 1 {
		t.Fatalf("query Law = %d", got)
	}
	if got := catCount(t, g, d, "Law", d.Context); got != 3 {
		t.Fatalf("context Law = %d", got)
	}
	// c4 has no studied edge: one None count in the context.
	if d.Context[NoneIndex] != 1 {
		t.Fatalf("context None = %d, want 1", d.Context[NoneIndex])
	}
	if d.Query[NoneIndex] != 0 {
		t.Fatalf("query None = %d, want 0", d.Query[NoneIndex])
	}
}

func TestInstancesDeterministicCategories(t *testing.T) {
	g, query, context := smallWorld(t)
	a := Instances(g, label(t, g, "studied"), query, context)
	b := Instances(g, label(t, g, "studied"), query, context)
	if len(a.Values) != len(b.Values) {
		t.Fatal("value sets differ")
	}
	for i := range a.Values {
		if a.Values[i] != b.Values[i] {
			t.Fatal("value order not deterministic")
		}
		if i > 0 && a.Values[i] <= a.Values[i-1] {
			t.Fatal("values not sorted by ID")
		}
	}
}

func TestTestVectorsStrictUnseenIsImpossible(t *testing.T) {
	g, query, context := smallWorld(t)
	d := Instances(g, label(t, g, "studied"), query, context)
	pi, obs := d.TestVectors(UnseenStrict)
	if len(pi) != len(obs) || len(pi) != d.NumCategories() {
		t.Fatalf("vector lengths: pi=%d obs=%d cats=%d", len(pi), len(obs), d.NumCategories())
	}
	// Physics is observed by the query but impossible under the context:
	// the multinomial test must report maximal notability.
	res := stats.Multinomial{Seed: 1}.Test(stats.Normalize(pi), obs)
	if res.P != 0 {
		t.Fatalf("strict unseen value P = %v, want 0", res.P)
	}
}

func TestTestVectorsPooledMergesIdiosyncratic(t *testing.T) {
	g, query, context := smallWorld(t)
	d := Instances(g, label(t, g, "created"), query, context)
	pi, obs := d.TestVectors(UnseenPooled)
	// Every work has exactly one owner, so pooling leaves None + pooled.
	if len(pi) != 2 || len(obs) != 2 {
		t.Fatalf("pooled vectors: pi=%v obs=%v", pi, obs)
	}
	// Context: 2 creators + 2 nonners; query: 1 creator + 1 nonner. The
	// query's unique work is now a *possible* observation.
	if pi[1] != 2 || obs[1] != 1 {
		t.Fatalf("pooled category: pi=%v obs=%v", pi[1], obs[1])
	}
	res := stats.Multinomial{Seed: 1}.Test(stats.Normalize(pi), obs)
	if res.P == 0 {
		t.Fatal("pooled policy still treats unique values as impossible")
	}
	// Shared values (Law) survive pooling for the studied label.
	dp, _ := Instances(g, label(t, g, "studied"), query, context).TestVectors(UnseenPooled)
	if len(dp) != 3 { // None, Law, pooled(Physics)
		t.Fatalf("studied pooled pi = %v", dp)
	}
}

func TestCardinalities(t *testing.T) {
	g, query, context := smallWorld(t)
	d := Cardinalities(g, label(t, g, "created"), query, context)
	if len(d.Query) != len(d.Context) || len(d.Query) != 2 {
		t.Fatalf("cardinality shape: %v %v", d.Query, d.Context)
	}
	if d.Query[0] != 1 || d.Query[1] != 1 { // q2 none, q1 one
		t.Fatalf("query cards = %v", d.Query)
	}
	if d.Context[0] != 2 || d.Context[1] != 2 { // c3,c4 none; c1,c2 one
		t.Fatalf("context cards = %v", d.Context)
	}
}

func TestContextFloats(t *testing.T) {
	f := ContextFloats([]int{3, 0, 2})
	if len(f) != 3 || f[0] != 3 || f[1] != 0 || f[2] != 2 {
		t.Fatalf("ContextFloats = %v", f)
	}
	if got := ContextFloats(nil); len(got) != 0 {
		t.Fatalf("ContextFloats(nil) = %v", got)
	}
}
