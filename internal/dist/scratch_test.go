package dist

import (
	"testing"
)

// TestInstancesScratchMatchesFresh: recycling one Scratch across labels
// must be invisible in the built distributions, and the returned slices
// must be fresh (not aliases of scratch state) since Characteristic
// records retain them.
func TestInstancesScratchMatchesFresh(t *testing.T) {
	g, query, context := smallWorld(t)
	var s Scratch
	for _, name := range []string{"studied", "created", "studied"} {
		l := label(t, g, name)
		fresh := Instances(g, l, query, context)
		reused := InstancesScratch(g, l, query, context, &s)
		if len(fresh.Values) != len(reused.Values) {
			t.Fatalf("%s: %d values vs %d", name, len(fresh.Values), len(reused.Values))
		}
		for i := range fresh.Values {
			if fresh.Values[i] != reused.Values[i] {
				t.Fatalf("%s: value %d differs", name, i)
			}
		}
		for i := range fresh.Query {
			if fresh.Query[i] != reused.Query[i] || fresh.Context[i] != reused.Context[i] {
				t.Fatalf("%s: counts differ at %d", name, i)
			}
		}
	}
}

// TestTestVectorsAlwaysAligned pins the invariant the multinomial test
// relies on: under both policies π and the observation share one length,
// because Query and Context are built over one category space and the
// pooled rewrite drops or keeps categories in lockstep.
func TestTestVectorsAlwaysAligned(t *testing.T) {
	g, query, context := smallWorld(t)
	for _, name := range []string{"studied", "created"} {
		d := Instances(g, label(t, g, name), query, context)
		if len(d.Query) != len(d.Context) {
			t.Fatalf("%s: distribution slices disagree: %d vs %d",
				name, len(d.Query), len(d.Context))
		}
		for _, policy := range []UnseenPolicy{UnseenStrict, UnseenPooled} {
			pi, obs := d.TestVectors(policy)
			if len(pi) != len(obs) {
				t.Fatalf("%s policy %d: π length %d != observation length %d",
					name, policy, len(pi), len(obs))
			}
			var sscratch Scratch
			pi2, obs2 := d.TestVectorsScratch(policy, &sscratch)
			if len(pi2) != len(pi) {
				t.Fatalf("%s policy %d: scratch π length %d vs %d",
					name, policy, len(pi2), len(pi))
			}
			for i := range pi {
				if pi[i] != pi2[i] || obs[i] != obs2[i] {
					t.Fatalf("%s policy %d: scratch vectors differ at %d", name, policy, i)
				}
			}
		}
	}
}

// TestTestVectorsScratchReuse: consecutive calls on one Scratch reuse the
// π buffer — the previous vector is overwritten, which is exactly the
// contract (valid until the next call with the same Scratch).
func TestTestVectorsScratchReuse(t *testing.T) {
	g, query, context := smallWorld(t)
	var s Scratch
	d := Instances(g, label(t, g, "studied"), query, context)
	pi1, _ := d.TestVectorsScratch(UnseenStrict, &s)
	pi2, _ := d.TestVectorsScratch(UnseenStrict, &s)
	if &pi1[0] != &pi2[0] {
		t.Fatal("scratch π buffer was not reused across calls")
	}
}

func TestContextFloatsInto(t *testing.T) {
	buf := make([]float64, 0, 8)
	out := ContextFloatsInto(buf, []int{3, 0, 2})
	if len(out) != 3 || out[0] != 3 || out[1] != 0 || out[2] != 2 {
		t.Fatalf("ContextFloatsInto = %v", out)
	}
	if &out[0] != &buf[:1][0] {
		t.Fatal("ContextFloatsInto did not reuse the provided buffer")
	}
	reused := ContextFloatsInto(out[:0], []int{7})
	if reused[0] != 7 || &reused[0] != &out[0] {
		t.Fatal("second ContextFloatsInto did not reuse the buffer")
	}
}
