package dict

import (
	"fmt"
	"testing"
	"testing/quick"
)

func TestPutAssignsDenseIDs(t *testing.T) {
	d := New(4)
	ids := []ID{d.Put("a"), d.Put("b"), d.Put("c")}
	for i, id := range ids {
		if id != ID(i) {
			t.Fatalf("id for entry %d = %d, want %d", i, id, i)
		}
	}
	if d.Len() != 3 {
		t.Fatalf("Len = %d, want 3", d.Len())
	}
}

func TestPutIsIdempotent(t *testing.T) {
	d := New(0)
	first := d.Put("x")
	second := d.Put("x")
	if first != second {
		t.Fatalf("Put twice returned %d then %d", first, second)
	}
	if d.Len() != 1 {
		t.Fatalf("Len = %d, want 1", d.Len())
	}
}

func TestLookupMissing(t *testing.T) {
	d := New(0)
	if got := d.Lookup("absent"); got != NoID {
		t.Fatalf("Lookup(absent) = %d, want NoID", got)
	}
	if d.Contains("absent") {
		t.Fatal("Contains(absent) = true, want false")
	}
}

func TestZeroValueUsable(t *testing.T) {
	var d Dict
	if d.Lookup("a") != NoID {
		t.Fatal("zero-value Lookup should return NoID")
	}
	id := d.Put("a")
	if id != 0 {
		t.Fatalf("zero-value Put = %d, want 0", id)
	}
	if d.String(id) != "a" {
		t.Fatalf("String(%d) = %q, want %q", id, d.String(id), "a")
	}
}

func TestStringPanicsOutOfRange(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("String on out-of-range id did not panic")
		}
	}()
	d := New(0)
	d.String(5)
}

func TestStringOrFallback(t *testing.T) {
	d := New(0)
	d.Put("a")
	if got := d.StringOr(0, "?"); got != "a" {
		t.Fatalf("StringOr(0) = %q, want a", got)
	}
	if got := d.StringOr(9, "?"); got != "?" {
		t.Fatalf("StringOr(9) = %q, want ?", got)
	}
}

func TestSortedDoesNotMutate(t *testing.T) {
	d := New(0)
	d.Put("b")
	d.Put("a")
	sorted := d.Sorted()
	if sorted[0] != "a" || sorted[1] != "b" {
		t.Fatalf("Sorted = %v", sorted)
	}
	if d.String(0) != "b" {
		t.Fatal("Sorted mutated underlying ID order")
	}
}

func TestClone(t *testing.T) {
	d := New(0)
	d.Put("a")
	d.Put("b")
	c := d.Clone()
	c.Put("c")
	if d.Len() != 2 {
		t.Fatalf("clone mutated original: Len = %d", d.Len())
	}
	if c.Len() != 3 {
		t.Fatalf("clone Len = %d, want 3", c.Len())
	}
	if c.Lookup("a") != d.Lookup("a") {
		t.Fatal("clone reassigned existing IDs")
	}
}

func TestRoundTripProperty(t *testing.T) {
	// Property: for any batch of strings, Put then String round-trips, and
	// duplicate strings share an ID.
	f := func(ss []string) bool {
		d := New(len(ss))
		seen := make(map[string]ID)
		for _, s := range ss {
			id := d.Put(s)
			if prev, ok := seen[s]; ok && prev != id {
				return false
			}
			seen[s] = id
			if d.String(id) != s {
				return false
			}
		}
		return d.Len() == len(seen)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestInsertionOrderStable(t *testing.T) {
	d := New(0)
	for i := 0; i < 100; i++ {
		d.Put(fmt.Sprintf("node-%03d", i))
	}
	for i := 0; i < 100; i++ {
		want := fmt.Sprintf("node-%03d", i)
		if got := d.String(ID(i)); got != want {
			t.Fatalf("String(%d) = %q, want %q", i, got, want)
		}
	}
	all := d.Strings()
	if len(all) != 100 {
		t.Fatalf("Strings len = %d", len(all))
	}
}

func BenchmarkPutNew(b *testing.B) {
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("entity-%d", i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		d := New(len(keys))
		for _, k := range keys {
			d.Put(k)
		}
	}
}

func BenchmarkLookupHit(b *testing.B) {
	d := New(1 << 16)
	keys := make([]string, 1<<16)
	for i := range keys {
		keys[i] = fmt.Sprintf("entity-%d", i)
		d.Put(keys[i])
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if d.Lookup(keys[i&(len(keys)-1)]) == NoID {
			b.Fatal("miss")
		}
	}
}
