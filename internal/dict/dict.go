// Package dict provides string interning dictionaries that map strings to
// dense uint32 identifiers and back.
//
// Knowledge graphs routinely hold millions of node names, edge labels, and
// type names. Algorithms over them (random walks, PageRank, metapath
// counting) want dense integer identifiers so that adjacency can be stored
// in compact slices. A Dict assigns identifiers in insertion order starting
// at 0, which makes the identifiers directly usable as slice indexes.
package dict

import (
	"fmt"
	"sort"
)

// ID is a dense identifier assigned by a Dict. IDs start at 0 and grow by 1
// per distinct string, so they can index slices sized by Dict.Len.
type ID = uint32

// NoID is returned by Lookup when a string has not been interned.
// It is the maximum uint32 and therefore never a valid ID in practice
// (a Dict refuses to grow that large).
const NoID ID = ^ID(0)

// MaxEntries is the largest number of strings a Dict may hold. The limit
// keeps NoID unambiguous.
const MaxEntries = int(NoID)

// Dict interns strings, assigning each distinct string a dense ID.
// The zero value is ready to use. Dict is not safe for concurrent mutation;
// concurrent readers are fine once building is done.
type Dict struct {
	byStr map[string]ID
	byID  []string
}

// New returns an empty dictionary with capacity hints for n entries.
func New(n int) *Dict {
	if n < 0 {
		n = 0
	}
	return &Dict{
		byStr: make(map[string]ID, n),
		byID:  make([]string, 0, n),
	}
}

// Put interns s and returns its ID, assigning a fresh one if s is new.
func (d *Dict) Put(s string) ID {
	if d.byStr == nil {
		d.byStr = make(map[string]ID)
	}
	if id, ok := d.byStr[s]; ok {
		return id
	}
	if len(d.byID) >= MaxEntries {
		panic(fmt.Sprintf("dict: exceeded %d entries", MaxEntries))
	}
	id := ID(len(d.byID))
	d.byStr[s] = id
	d.byID = append(d.byID, s)
	return id
}

// Lookup returns the ID for s, or NoID if s has not been interned.
func (d *Dict) Lookup(s string) ID {
	if d.byStr == nil {
		return NoID
	}
	if id, ok := d.byStr[s]; ok {
		return id
	}
	return NoID
}

// Contains reports whether s has been interned.
func (d *Dict) Contains(s string) bool { return d.Lookup(s) != NoID }

// String returns the string for id. It panics if id was never assigned.
func (d *Dict) String(id ID) string {
	if int(id) >= len(d.byID) {
		panic(fmt.Sprintf("dict: id %d out of range (len %d)", id, len(d.byID)))
	}
	return d.byID[id]
}

// StringOr returns the string for id, or fallback if id is out of range.
func (d *Dict) StringOr(id ID, fallback string) string {
	if int(id) >= len(d.byID) {
		return fallback
	}
	return d.byID[id]
}

// Len returns the number of interned strings.
func (d *Dict) Len() int { return len(d.byID) }

// Strings returns the interned strings in ID order. The returned slice is
// owned by the Dict and must not be modified.
func (d *Dict) Strings() []string { return d.byID }

// Sorted returns the interned strings in lexicographic order (a copy).
func (d *Dict) Sorted() []string {
	out := make([]string, len(d.byID))
	copy(out, d.byID)
	sort.Strings(out)
	return out
}

// Clone returns a deep copy of the dictionary.
func (d *Dict) Clone() *Dict {
	c := New(d.Len())
	for _, s := range d.byID {
		c.Put(s)
	}
	return c
}
