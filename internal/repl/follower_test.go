package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro"
	"repro/internal/server"
	"repro/internal/wal"
)

// ---- shared fleet fixtures ----------------------------------------

func quietf(string, ...any) {}

// fleetGraph is the bootstrap graph every node (and every oracle)
// starts from.
func fleetGraph() *notable.Graph {
	b := notable.NewBuilder(128)
	leaders := []string{"Angela Merkel", "Barack Obama", "Vladimir Putin",
		"Matteo Renzi", "François Hollande", "David Cameron", "Xi Jinping"}
	for i, l := range leaders {
		b.SetType(l, "politician")
		b.AddEdge(l, "memberOf", "G20")
		for d := 1; d <= 3; d++ {
			b.AddEdge(l, "met", leaders[(i+d)%len(leaders)])
		}
		if l == "Angela Merkel" {
			b.AddEdge(l, "studied", "Physics")
			continue
		}
		b.AddEdge(l, "studied", "Law")
	}
	return b.Build()
}

func fleetOpt() notable.Options {
	return notable.Options{ContextSize: 6, Walks: 1200, Seed: 3}
}

// fleetBatch is the i-th ingest batch; every index yields a distinct,
// effective triple so batch i always publishes epoch i+1.
func fleetBatch(i int) (adds, dels []notable.Triple) {
	return []notable.Triple{{S: "Angela Merkel", P: "visited", O: fmt.Sprintf("Country-%d", i)}}, nil
}

func applyFleetBatches(t *testing.T, eng *notable.Engine, from, n int) {
	t.Helper()
	for i := from; i < from+n; i++ {
		adds, dels := fleetBatch(i)
		if _, err := eng.ApplyTriples(context.Background(), adds, dels); err != nil {
			t.Fatalf("batch %d: %v", i, err)
		}
	}
}

func durablePrimary(t *testing.T) *notable.Engine {
	t.Helper()
	eng, _, err := notable.NewDurableEngine(fleetGraph(), fleetOpt(),
		notable.Durability{WALDir: t.TempDir(), Logf: quietf})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { eng.Close() })
	return eng
}

// snapshotBytes captures the primary's replication snapshot as the wire
// would carry it.
func snapshotBytes(t *testing.T, eng *notable.Engine) (uint64, []byte) {
	t.Helper()
	epoch, rc, err := eng.ReplSnapshot()
	if err != nil {
		t.Fatal(err)
	}
	defer rc.Close()
	data, err := io.ReadAll(rc)
	if err != nil {
		t.Fatal(err)
	}
	return epoch, data
}

func tailBytes(t *testing.T, eng *notable.Engine, from uint64) []byte {
	t.Helper()
	tail, _, err := eng.ReplTail(from)
	if err != nil {
		t.Fatalf("ReplTail(%d): %v", from, err)
	}
	return tail
}

// ---- follower state-machine tests against a scripted primary -------

// stateRecorder collects every OnState callback for later assertions.
type stateRecorder struct {
	mu     sync.Mutex
	states []FollowerState
}

func (sr *stateRecorder) record(st FollowerState) {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	sr.states = append(sr.states, st)
}

func (sr *stateRecorder) sawStatus(status string) bool {
	sr.mu.Lock()
	defer sr.mu.Unlock()
	for _, st := range sr.states {
		if st.Status == status {
			return true
		}
	}
	return false
}

func runFollower(t *testing.T, cfg FollowerConfig) (*Follower, context.CancelFunc) {
	t.Helper()
	if cfg.BackoffMin == 0 {
		cfg.BackoffMin = 5 * time.Millisecond
	}
	if cfg.BackoffMax == 0 {
		cfg.BackoffMax = 50 * time.Millisecond
	}
	if cfg.IdleTimeout == 0 {
		cfg.IdleTimeout = 2 * time.Second
	}
	f, err := NewFollower(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	t.Cleanup(func() {
		cancel()
		<-done
		if eng := f.Engine(); eng != nil {
			eng.Close()
		}
	})
	return f, cancel
}

func waitFollowerAt(t *testing.T, f *Follower, epoch uint64) {
	t.Helper()
	deadline := time.Now().Add(20 * time.Second)
	for {
		st := f.State()
		if st.Ready && st.Epoch >= epoch {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %+v, want ready at epoch ≥ %d", st, epoch)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestFollowerResyncOn410: a stream position truncated behind the
// primary's checkpoints answers 410; the follower must drop to
// not-ready, re-bootstrap from a fresh snapshot, and come back ready at
// the new epoch.
func TestFollowerResyncOn410(t *testing.T) {
	primary := durablePrimary(t)
	applyFleetBatches(t, primary, 0, 2)
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap2Epoch, snap2 := snapshotBytes(t, primary)
	if snap2Epoch != 2 {
		t.Fatalf("first snapshot at epoch %d, want 2", snap2Epoch)
	}
	applyFleetBatches(t, primary, 2, 3) // epochs 3..5
	tail25 := tailBytes(t, primary, 2)
	applyFleetBatches(t, primary, 5, 3) // epochs 6..8
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	snap8Epoch, snap8 := snapshotBytes(t, primary)
	if snap8Epoch != 8 {
		t.Fatalf("second snapshot at epoch %d, want 8", snap8Epoch)
	}

	var snapN, streamN atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if snapN.Add(1) == 1 {
			w.Header().Set("X-Repl-Epoch", "2")
			_, _ = w.Write(snap2)
			return
		}
		w.Header().Set("X-Repl-Epoch", "8")
		_, _ = w.Write(snap8)
	})
	mux.HandleFunc("/v1/repl/stream", func(w http.ResponseWriter, r *http.Request) {
		switch streamN.Add(1) {
		case 1: // from=2: serve the real tail, then hang up.
			w.Header().Set("X-Repl-Epoch", "5")
			_, _ = w.Write(tail25)
		case 2: // from=5: pretend truncation ate that position.
			http.Error(w, "position truncated", http.StatusGone)
		default: // from=8 after resync: caught up, nothing to stream.
			if got := r.URL.Query().Get("from"); got != "8" {
				t.Errorf("post-resync stream from=%s, want 8", got)
			}
			w.Header().Set("X-Repl-Epoch", "8")
		}
	})
	fake := httptest.NewServer(mux)
	defer fake.Close()

	rec := &stateRecorder{}
	f, _ := runFollower(t, FollowerConfig{
		Primary: fake.URL,
		Options: fleetOpt(),
		OnState: rec.record,
		Logf:    quietf,
	})
	waitFollowerAt(t, f, 8)
	if !rec.sawStatus("resyncing") {
		t.Fatal("follower never reported the resyncing state on 410")
	}
	if got := f.Engine().Epoch(); got != 8 {
		t.Fatalf("replica engine at epoch %d after resync, want 8", got)
	}
}

// TestFollowerDivergenceParksThenResyncs: a logged epoch that does not
// match the locally published one is divergence — the follower must
// stop serving (diverged, not ready), then recover through a snapshot
// resync rather than streaming past the mismatch.
func TestFollowerDivergenceParksThenResyncs(t *testing.T) {
	primary := durablePrimary(t)
	applyFleetBatches(t, primary, 0, 2)
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, snap2 := snapshotBytes(t, primary)
	applyFleetBatches(t, primary, 2, 3) // epochs 3..5
	tail25 := tailBytes(t, primary, 2)
	applyFleetBatches(t, primary, 5, 3) // epochs 6..8
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	_, snap8 := snapshotBytes(t, primary)

	// Relabel the first real record as epoch 9: its batch will publish 3
	// locally — a mismatch the follower must refuse to serve past.
	fr := wal.NewFrameReader(bytes.NewReader(tail25))
	rec3, err := fr.Next()
	if err != nil {
		t.Fatal(err)
	}
	badFrame := wal.AppendRecord(nil, wal.Record{Epoch: 9, Adds: rec3.Adds, Dels: rec3.Dels})

	var snapN, streamN atomic.Int32
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/repl/snapshot", func(w http.ResponseWriter, r *http.Request) {
		if snapN.Add(1) == 1 {
			w.Header().Set("X-Repl-Epoch", "2")
			_, _ = w.Write(snap2)
			return
		}
		w.Header().Set("X-Repl-Epoch", "8")
		_, _ = w.Write(snap8)
	})
	mux.HandleFunc("/v1/repl/stream", func(w http.ResponseWriter, r *http.Request) {
		if streamN.Add(1) == 1 {
			w.Header().Set("X-Repl-Epoch", "9")
			_, _ = w.Write(badFrame)
			return
		}
		w.Header().Set("X-Repl-Epoch", "8")
	})
	fake := httptest.NewServer(mux)
	defer fake.Close()

	states := &stateRecorder{}
	f, _ := runFollower(t, FollowerConfig{
		Primary: fake.URL,
		Options: fleetOpt(),
		OnState: states.record,
		Logf:    quietf,
	})
	waitFollowerAt(t, f, 8)
	if !states.sawStatus("diverged") {
		t.Fatal("follower never reported divergence on an epoch mismatch")
	}
	if got := f.Engine().Epoch(); got != 8 {
		t.Fatalf("replica engine at epoch %d after divergence resync, want 8", got)
	}
}

// ---- real primary + follower serving nodes -------------------------

// replNode is one follower process: a Follower feeding a read-only
// serving layer, listening on a real (rebindable) address.
type replNode struct {
	addr   string
	f      *Follower
	srv    *server.Server
	ts     *httptest.Server
	cancel context.CancelFunc
	done   chan struct{}
	once   sync.Once
	// stall (nanoseconds) delays every HTTP response — the slow-loris /
	// partition injection: replication keeps running underneath while the
	// serving socket goes molasses.
	stall atomic.Int64
}

// startReplNode boots a follower node against primaryURL. addr may be
// "127.0.0.1:0" for a fresh port or a previous node's address to model
// a process restart on the same endpoint.
func startReplNode(t *testing.T, primaryURL, addr string) *replNode {
	t.Helper()
	srv := server.NewPending(server.Config{
		ReadOnly:     true,
		MinEpochWait: 200 * time.Millisecond,
		Logf:         quietf,
	})
	srv.SetReadiness(server.Readiness{Ready: false, Status: "booting"})
	f, err := NewFollower(FollowerConfig{
		Primary:  primaryURL,
		Options:  fleetOpt(),
		OnEngine: srv.SetEngine,
		OnState: func(st FollowerState) {
			srv.SetReadiness(server.Readiness{Ready: st.Ready, Status: st.Status, Epoch: st.Epoch, Target: st.Target})
		},
		BackoffMin:  10 * time.Millisecond,
		BackoffMax:  100 * time.Millisecond,
		IdleTimeout: 5 * time.Second,
		Logf:        quietf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() { defer close(done); _ = f.Run(ctx) }()
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		cancel()
		t.Fatalf("listen %s: %v", addr, err)
	}
	n := &replNode{addr: ln.Addr().String(), f: f, srv: srv, cancel: cancel, done: done}
	inner := srv.Handler()
	ts := httptest.NewUnstartedServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if d := time.Duration(n.stall.Load()); d > 0 {
			time.Sleep(d)
		}
		inner.ServeHTTP(w, r)
	}))
	ts.Listener.Close()
	ts.Listener = ln
	ts.Start()
	n.ts = ts
	t.Cleanup(n.kill)
	return n
}

// kill models process death: replication stops, the listener closes,
// the engine is gone. Idempotent.
func (n *replNode) kill() {
	n.once.Do(func() {
		n.cancel()
		<-n.done
		n.ts.Close()
		if eng := n.f.Engine(); eng != nil {
			eng.Close()
		}
	})
}

func httpPostBody(t *testing.T, url, body string, hdr map[string]string) (int, http.Header, []byte) {
	t.Helper()
	req, err := http.NewRequest(http.MethodPost, url, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return resp.StatusCode, resp.Header, data
}

// normalizeSearch parses a search response and strips the per-request
// volatile fields (request id, timing); everything left — scores,
// context, characteristics, epoch — must be bit-identical across
// replicas at the same epoch.
func normalizeSearch(t *testing.T, body []byte) map[string]any {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("parsing search response %q: %v", body, err)
	}
	delete(m, "request_id")
	delete(m, "elapsed_ms")
	return m
}

const fleetQuery = `{"entities":["Angela Merkel"]}`

// oracleSearch computes the from-scratch answer at epoch: a fresh
// engine over the bootstrap graph with batches 0..epoch-1 applied,
// served through the same HTTP layer.
func oracleSearch(t *testing.T, epoch uint64) map[string]any {
	t.Helper()
	eng := notable.NewEngine(fleetGraph(), fleetOpt())
	defer eng.Close()
	applyFleetBatches(t, eng, 0, int(epoch))
	ts := httptest.NewServer(server.New(eng, server.Config{Logf: quietf}).Handler())
	defer ts.Close()
	status, _, body := httpPostBody(t, ts.URL+"/v1/search", fleetQuery, nil)
	if status != http.StatusOK {
		t.Fatalf("oracle search at epoch %d: status %d: %s", epoch, status, body)
	}
	return normalizeSearch(t, body)
}

// TestFollowerCatchesUpLiveAndRejoins is the tentpole's single-node
// correctness path: a follower bootstraps from the primary's snapshot,
// tracks live ingests through the stream, and — after being killed
// while the primary moves on and truncates its log — a restart on the
// same address rejoins via snapshot + stream to the exact head epoch
// with bit-identical answers.
func TestFollowerCatchesUpLiveAndRejoins(t *testing.T) {
	primary := durablePrimary(t)
	applyFleetBatches(t, primary, 0, 3)
	psrv := httptest.NewServer(server.New(primary, server.Config{Logf: quietf}).Handler())
	// Cleanup, not defer: follower nodes register their kills later, so
	// LIFO ordering tears them (and their live stream connections) down
	// before the primary's server waits out its connections.
	t.Cleanup(psrv.Close)

	n1 := startReplNode(t, psrv.URL, "127.0.0.1:0")
	waitFollowerAt(t, n1.f, 3)

	// Liveness vs readiness on the follower's own serving surface.
	hstatus, _, hbody := func() (int, http.Header, []byte) {
		resp, err := http.Get(n1.ts.URL + "/healthz")
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		b, _ := io.ReadAll(resp.Body)
		return resp.StatusCode, resp.Header, b
	}()
	if hstatus != http.StatusOK {
		t.Fatalf("ready follower healthz %d: %s", hstatus, hbody)
	}
	_ = hbody

	// A live ingest on the primary shows up on the follower.
	applyFleetBatches(t, primary, 3, 1)
	waitFollowerAt(t, n1.f, 4)
	_, _, pbody := httpPostBody(t, psrv.URL+"/v1/search", fleetQuery, nil)
	fstatus, _, fbody := httpPostBody(t, n1.ts.URL+"/v1/search", fleetQuery, map[string]string{"X-Min-Epoch": "4"})
	if fstatus != http.StatusOK {
		t.Fatalf("follower search: status %d: %s", fstatus, fbody)
	}
	if got, want := normalizeSearch(t, fbody), normalizeSearch(t, pbody); !reflect.DeepEqual(got, want) {
		t.Fatalf("follower answer differs from primary at epoch 4:\n got %+v\nwant %+v", got, want)
	}

	// Kill the follower; the primary moves on and truncates the log
	// behind its checkpoints, so the rejoin MUST go through a snapshot.
	n1.kill()
	applyFleetBatches(t, primary, 4, 2) // epochs 5,6
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyFleetBatches(t, primary, 6, 1) // epoch 7
	if err := primary.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	applyFleetBatches(t, primary, 7, 1) // epoch 8, streamed past the snapshot

	n2 := startReplNode(t, psrv.URL, n1.addr)
	waitFollowerAt(t, n2.f, 8)
	if got, want := n2.f.State().Epoch, primary.Epoch(); got != want {
		t.Fatalf("rejoined follower at epoch %d, primary at %d", got, want)
	}
	fstatus, _, fbody = httpPostBody(t, n2.ts.URL+"/v1/search", fleetQuery, map[string]string{"X-Min-Epoch": "8"})
	if fstatus != http.StatusOK {
		t.Fatalf("rejoined follower search: status %d: %s", fstatus, fbody)
	}
	got := normalizeSearch(t, fbody)
	if want := oracleSearch(t, 8); !reflect.DeepEqual(got, want) {
		t.Fatalf("rejoined follower differs from from-scratch oracle at epoch 8:\n got %+v\nwant %+v", got, want)
	}
}

// TestFailoverMatrix is the acceptance scenario: a 3-replica fleet
// (durable primary + two followers) behind the router, with ingests and
// min-epoch reads flowing while one follower is killed mid-loop and
// later restarted on the same address. Every 200 must bitwise-match a
// from-scratch engine at its published epoch, every published epoch
// must honor the request's min-epoch floor, and the killed follower
// must rejoin to the exact head epoch.
func TestFailoverMatrix(t *testing.T) {
	primary := durablePrimary(t)
	psrv := httptest.NewServer(server.New(primary, server.Config{Logf: quietf}).Handler())
	t.Cleanup(psrv.Close) // before the nodes: their kills must run first
	f1 := startReplNode(t, psrv.URL, "127.0.0.1:0")
	f2 := startReplNode(t, psrv.URL, "127.0.0.1:0")

	rt, err := NewRouter(RouterConfig{
		Backends: []Backend{
			{Name: "primary", URL: psrv.URL},
			{Name: "f1", URL: "http://" + f1.addr},
			{Name: "f2", URL: "http://" + f2.addr},
		},
		Primary:         "primary",
		ProbeInterval:   25 * time.Millisecond,
		FailWindow:      2,
		TryTimeout:      500 * time.Millisecond,
		HedgeAfter:      75 * time.Millisecond,
		BreakerFails:    3,
		BreakerCooldown: 150 * time.Millisecond,
		Logf:            quietf,
	})
	if err != nil {
		t.Fatal(err)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)
	rts := httptest.NewServer(rt.Handler())
	defer rts.Close()

	var minEpoch uint64
	ingest := func(i int) {
		t.Helper()
		adds, _ := fleetBatch(i)
		body := fmt.Sprintf(`{"adds":[{"s":%q,"p":%q,"o":%q}]}`, adds[0].S, adds[0].P, adds[0].O)
		status, _, resp := httpPostBody(t, rts.URL+"/v1/ingest", body, nil)
		if status != http.StatusOK {
			t.Fatalf("ingest %d through router: status %d: %s", i, status, resp)
		}
		var out struct {
			Epoch uint64 `json:"epoch"`
		}
		if err := json.Unmarshal(resp, &out); err != nil || out.Epoch == 0 {
			t.Fatalf("ingest %d response %q: %v", i, resp, err)
		}
		minEpoch = out.Epoch
	}

	type observed struct {
		epoch uint64
		body  map[string]any
		via   string
	}
	var seen []observed
	search := func(iter int) {
		t.Helper()
		status, hdr, body := httpPostBody(t, rts.URL+"/v1/search", fleetQuery,
			map[string]string{"X-Min-Epoch": fmt.Sprintf("%d", minEpoch)})
		if status != http.StatusOK {
			t.Fatalf("iter %d: search through router failed: status %d: %s", iter, status, body)
		}
		m := normalizeSearch(t, body)
		epoch, ok := m["epoch"].(float64)
		if !ok {
			t.Fatalf("iter %d: search response has no epoch: %v", iter, m)
		}
		if uint64(epoch) < minEpoch {
			t.Fatalf("iter %d: served epoch %d below the min-epoch floor %d (via %s)",
				iter, uint64(epoch), minEpoch, hdr.Get("X-Served-By"))
		}
		seen = append(seen, observed{epoch: uint64(epoch), body: m, via: hdr.Get("X-Served-By")})
	}

	batchIdx := 0
	restarted := (*replNode)(nil)
	for iter := 0; iter < 12; iter++ {
		if iter%3 == 0 {
			ingest(batchIdx)
			batchIdx++
		}
		switch iter {
		case 2:
			// Slow-loris f2: replication keeps running, but its serving
			// socket answers slower than the router's per-try timeout.
			f2.stall.Store(int64(2 * time.Second))
		case 4:
			f1.kill() // mid-loop: connection-refused territory for router and probes
		case 6:
			f2.stall.Store(0) // partition heals
		case 8:
			restarted = startReplNode(t, psrv.URL, f1.addr)
		}
		search(iter)
	}

	// The restarted follower must catch up to the exact head epoch.
	head := primary.Epoch()
	waitFollowerAt(t, restarted.f, head)
	if got := restarted.f.State().Epoch; got != head {
		t.Fatalf("restarted follower at epoch %d, head is %d", got, head)
	}
	waitFollowerAt(t, f2.f, head)

	// Every 200 the router produced must bitwise-match a from-scratch
	// engine at its published epoch.
	oracles := map[uint64]map[string]any{}
	for _, o := range seen {
		if _, ok := oracles[o.epoch]; !ok {
			oracles[o.epoch] = oracleSearch(t, o.epoch)
		}
		if !reflect.DeepEqual(o.body, oracles[o.epoch]) {
			t.Fatalf("response served by %s at epoch %d differs from the from-scratch oracle:\n got %+v\nwant %+v",
				o.via, o.epoch, o.body, oracles[o.epoch])
		}
	}
}
