package repl

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// fakeReplica is a scriptable stand-in for one serving node: per-path
// hit counters, a settable answer status, an answer delay, and a
// flippable /healthz.
type fakeReplica struct {
	name       string
	srv        *httptest.Server
	searchHits atomic.Int64
	ingestHits atomic.Int64
	status     atomic.Int32
	delay      atomic.Int64 // nanoseconds
	healthOK   atomic.Bool
}

func newFakeReplica(t *testing.T, name string) *fakeReplica {
	t.Helper()
	f := &fakeReplica{name: name}
	f.status.Store(http.StatusOK)
	f.healthOK.Store(true)
	f.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		switch r.URL.Path {
		case "/healthz":
			w.Header().Set("Content-Type", "application/json")
			if f.healthOK.Load() {
				w.WriteHeader(http.StatusOK)
				fmt.Fprint(w, `{"status":"ok","epoch":7}`)
			} else {
				w.WriteHeader(http.StatusServiceUnavailable)
				fmt.Fprint(w, `{"status":"catching-up","epoch":2}`)
			}
			return
		case "/v1/ingest":
			f.ingestHits.Add(1)
		default:
			f.searchHits.Add(1)
		}
		if d := time.Duration(f.delay.Load()); d > 0 {
			time.Sleep(d)
		}
		st := int(f.status.Load())
		w.Header().Set("Content-Type", "application/json")
		if st == http.StatusServiceUnavailable {
			w.Header().Set("Retry-After", "2")
		}
		w.WriteHeader(st)
		fmt.Fprintf(w, `{"served_by":%q}`, f.name)
	}))
	t.Cleanup(f.srv.Close)
	return f
}

// testFleet builds named fake replicas and a router over them; names[0]
// is the primary. Hedging is off unless a test opts in.
func testFleet(t *testing.T, names []string, mut func(*RouterConfig)) (map[string]*fakeReplica, *Router) {
	t.Helper()
	reps := make(map[string]*fakeReplica, len(names))
	backends := make([]Backend, 0, len(names))
	for _, n := range names {
		f := newFakeReplica(t, n)
		reps[n] = f
		backends = append(backends, Backend{Name: n, URL: f.srv.URL})
	}
	cfg := RouterConfig{
		Backends:   backends,
		Primary:    names[0],
		HedgeAfter: -1,
		Logf:       t.Logf,
	}
	if mut != nil {
		mut(&cfg)
	}
	rt, err := NewRouter(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return reps, rt
}

func doRouter(rt *Router, method, path, body string, hdr map[string]string) *httptest.ResponseRecorder {
	req := httptest.NewRequest(method, path, strings.NewReader(body))
	for k, v := range hdr {
		req.Header.Set(k, v)
	}
	rec := httptest.NewRecorder()
	rt.Handler().ServeHTTP(rec, req)
	return rec
}

const searchBody = `{"entities":["Angela Merkel","Barack Obama"]}`

// readOrder returns the fleet's ring-walk order for the canonical test
// query — owner first, then the fallback slots.
func readOrder(rt *Router) []string {
	return rt.ring.Order(requestKey("/v1/search", []byte(searchBody)))
}

// TestIngestGoesToPrimaryOnly: a write lands on the primary and nowhere
// else, whatever the ring says about the body's key.
func TestIngestGoesToPrimaryOnly(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
	rec := doRouter(rt, http.MethodPost, "/v1/ingest", `{"adds":[{"s":"a","p":"b","o":"c"}]}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Served-By"); got != "primary" {
		t.Fatalf("ingest served by %q, want primary", got)
	}
	for name, f := range reps {
		want := int64(0)
		if name == "primary" {
			want = 1
		}
		if got := f.ingestHits.Load(); got != want {
			t.Fatalf("backend %s saw %d ingests, want %d", name, got, want)
		}
	}
}

// TestIngestNeverRetried: a failed write — whether the primary answered
// 5xx or the connection died — must reach exactly one backend exactly
// once. The attempt may have been applied and fsync'd; replaying it
// anywhere would double-apply.
func TestIngestNeverRetried(t *testing.T) {
	t.Run("primary answers 500", func(t *testing.T) {
		reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
		reps["primary"].status.Store(http.StatusInternalServerError)
		rec := doRouter(rt, http.MethodPost, "/v1/ingest", `{"adds":[{"s":"a","p":"b","o":"c"}]}`, nil)
		// The 500 passes through untouched: retryable for reads, final for
		// writes.
		if rec.Code != http.StatusInternalServerError {
			t.Fatalf("status %d, want the primary's 500", rec.Code)
		}
		if got := reps["primary"].ingestHits.Load(); got != 1 {
			t.Fatalf("primary saw %d ingest attempts, want exactly 1", got)
		}
		if got := reps["r1"].ingestHits.Load() + reps["r2"].ingestHits.Load(); got != 0 {
			t.Fatalf("replicas saw %d ingest attempts, want 0", got)
		}
	})
	t.Run("primary unreachable", func(t *testing.T) {
		reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
		reps["primary"].srv.Close()
		rec := doRouter(rt, http.MethodPost, "/v1/ingest", `{"adds":[{"s":"a","p":"b","o":"c"}]}`, nil)
		if rec.Code != http.StatusBadGateway {
			t.Fatalf("status %d, want 502", rec.Code)
		}
		if got := reps["r1"].ingestHits.Load() + reps["r2"].ingestHits.Load(); got != 0 {
			t.Fatalf("replicas saw %d ingest attempts after primary death, want 0", got)
		}
	})
}

// TestReadFailsOverAlongRing: a 503 from the owner moves the read to
// the next ring slot; the client sees the fallback's 200.
func TestReadFailsOverAlongRing(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
	order := readOrder(rt)
	reps[order[0]].status.Store(http.StatusServiceUnavailable)

	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Served-By"); got != order[1] {
		t.Fatalf("served by %q, want the next ring slot %q (order %v)", got, order[1], order)
	}
	if got := reps[order[0]].searchHits.Load(); got != 1 {
		t.Fatalf("owner tried %d times, want 1", got)
	}
	if got := reps[order[2]].searchHits.Load(); got != 0 {
		t.Fatalf("third slot saw %d requests, want 0", got)
	}
}

// TestReadFailsOverOnNetworkError: a dead owner (connection refused) is
// skipped the same way.
func TestReadFailsOverOnNetworkError(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
	order := readOrder(rt)
	reps[order[0]].srv.Close()

	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Served-By"); got != order[1] {
		t.Fatalf("served by %q, want %q", got, order[1])
	}
}

// TestClientErrorIsFinal: a 4xx is a property of the request; spending
// a second replica on it would just fail twice.
func TestClientErrorIsFinal(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
	order := readOrder(rt)
	reps[order[0]].status.Store(http.StatusBadRequest)

	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusBadRequest {
		t.Fatalf("status %d, want the owner's 400", rec.Code)
	}
	if got := reps[order[1]].searchHits.Load() + reps[order[2]].searchHits.Load(); got != 0 {
		t.Fatalf("fallback slots saw %d requests for a 4xx, want 0", got)
	}
}

// TestAllFailedReplaysHonestBackpressure: when every slot answers 503,
// the client gets a real replica's 503 with its Retry-After — evidence
// beats a synthesized 502.
func TestAllFailedReplaysHonestBackpressure(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
	for _, f := range reps {
		f.status.Store(http.StatusServiceUnavailable)
	}
	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want a replayed 503", rec.Code)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Fatal("replayed 503 lost its Retry-After")
	}
	for name, f := range reps {
		if got := f.searchHits.Load(); got != 1 {
			t.Fatalf("backend %s tried %d times, want exactly 1", name, got)
		}
	}
}

// TestHedgeFiresAtMostOnce: a slow owner triggers exactly one hedge at
// the next slot; the fast answer wins and the third slot is never
// touched.
func TestHedgeFiresAtMostOnce(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, func(cfg *RouterConfig) {
		cfg.HedgeAfter = 30 * time.Millisecond
	})
	order := readOrder(rt)
	reps[order[0]].delay.Store(int64(400 * time.Millisecond))

	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Served-By"); got != order[1] {
		t.Fatalf("served by %q, want the hedged slot %q", got, order[1])
	}
	// Give the slow owner time to finish so counters are settled.
	time.Sleep(500 * time.Millisecond)
	if got := reps[order[0]].searchHits.Load(); got != 1 {
		t.Fatalf("owner saw %d requests, want 1", got)
	}
	if got := reps[order[1]].searchHits.Load(); got != 1 {
		t.Fatalf("hedged slot saw %d requests, want exactly 1", got)
	}
	if got := reps[order[2]].searchHits.Load(); got != 0 {
		t.Fatalf("third slot saw %d requests, want 0 (one hedge only)", got)
	}
}

// TestHedgeNeverTouchesIngest: hedging is a read-path feature; a slow
// primary write must not fan out.
func TestHedgeNeverTouchesIngest(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, func(cfg *RouterConfig) {
		cfg.HedgeAfter = 10 * time.Millisecond
	})
	reps["primary"].delay.Store(int64(150 * time.Millisecond))
	rec := doRouter(rt, http.MethodPost, "/v1/ingest", `{"adds":[{"s":"a","p":"b","o":"c"}]}`, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("ingest status %d", rec.Code)
	}
	total := int64(0)
	for _, f := range reps {
		total += f.ingestHits.Load()
	}
	if total != 1 {
		t.Fatalf("fleet saw %d ingest attempts for one slow write, want 1", total)
	}
}

// TestBreakerOpensOnConsecutiveFailures: request failures open the
// owner's circuit; further reads skip it entirely until cooldown.
func TestBreakerOpensOnConsecutiveFailures(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1"}, func(cfg *RouterConfig) {
		cfg.BreakerFails = 2
		cfg.BreakerCooldown = time.Minute
	})
	order := readOrder(rt)
	reps[order[0]].status.Store(http.StatusServiceUnavailable)

	// Two failing reads charge the breaker open.
	for i := 0; i < 2; i++ {
		if rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil); rec.Code != http.StatusOK {
			t.Fatalf("read %d: status %d", i, rec.Code)
		}
	}
	if rt.by[order[0]].available() {
		t.Fatal("owner still available after BreakerFails consecutive failures")
	}
	before := reps[order[0]].searchHits.Load()
	if rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("post-breaker read: status %d", rec.Code)
	}
	if got := reps[order[0]].searchHits.Load(); got != before {
		t.Fatalf("breaker-open owner still saw a request (%d → %d)", before, got)
	}

	// statsz reports the open circuit.
	rec := doRouter(rt, http.MethodGet, "/statsz", "", nil)
	var stats struct {
		Backends []routerBackendStats `json:"backends"`
	}
	if err := json.Unmarshal(rec.Body.Bytes(), &stats); err != nil {
		t.Fatalf("statsz: %v", err)
	}
	found := false
	for _, row := range stats.Backends {
		if row.Name == order[0] {
			found = true
			if !row.BreakerOpen {
				t.Fatal("statsz does not report the open breaker")
			}
		}
	}
	if !found {
		t.Fatalf("statsz missing backend %s", order[0])
	}
}

// TestProbeMarksUnreadyBackendDown: a replica answering /healthz with
// 503 (alive but catching up) is routed around, and rejoins once its
// probe goes green — the active half of failure awareness.
func TestProbeMarksUnreadyBackendDown(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1"}, func(cfg *RouterConfig) {
		cfg.ProbeInterval = 10 * time.Millisecond
		cfg.FailWindow = 2
	})
	order := readOrder(rt)
	reps[order[0]].healthOK.Store(false)

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	rt.Start(ctx)

	waitFor := func(cond func() bool, what string) {
		t.Helper()
		deadline := time.Now().Add(5 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s", what)
			}
			time.Sleep(5 * time.Millisecond)
		}
	}
	waitFor(func() bool { return !rt.by[order[0]].healthy.Load() }, "probes to mark the unready backend down")

	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-Served-By"); got != order[1] {
		t.Fatalf("served by %q while %q is down, want %q", got, order[0], order[1])
	}
	if got := reps[order[0]].searchHits.Load(); got != 0 {
		t.Fatalf("down backend saw %d reads, want 0", got)
	}

	// Recovery: probe goes green, the backend rejoins, owner routing
	// resumes.
	reps[order[0]].healthOK.Store(true)
	waitFor(func() bool { return rt.by[order[0]].healthy.Load() }, "probes to mark the backend healthy again")
	rec = doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if got := rec.Header().Get("X-Served-By"); got != order[0] {
		t.Fatalf("served by %q after recovery, want owner %q", got, order[0])
	}
}

// TestLastGaspRouting: with every backend marked down, the router still
// tries the fleet instead of refusing outright — a request against a
// suspect fleet beats a guaranteed error.
func TestLastGaspRouting(t *testing.T) {
	_, rt := testFleet(t, []string{"primary", "r1"}, nil)
	for _, b := range rt.order {
		b.healthy.Store(false)
	}
	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: last-gasp routing should still reach live processes", rec.Code)
	}
	// The router's own healthz is honest about the fleet view meanwhile.
	if rec := doRouter(rt, http.MethodGet, "/healthz", "", nil); rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("router healthz %d with all backends down, want 503", rec.Code)
	}
}

// TestRequestKeyAffinity: single and batch requests for the same
// logical query share a routing key (batch keys on its first query);
// unparseable bodies still get a deterministic key.
func TestRequestKeyAffinity(t *testing.T) {
	single := requestKey("/v1/search", []byte(searchBody))
	reordered := requestKey("/v1/search", []byte(`{"entities":["Barack Obama","Angela Merkel"]}`))
	if single != reordered {
		t.Fatalf("entity order changed the routing key:\n %s\n %s", single, reordered)
	}
	batch := requestKey("/v1/batch", []byte(`{"queries":[{"entities":["Angela Merkel","Barack Obama"]},{"entities":["Xi Jinping"]}]}`))
	if batch != single {
		t.Fatalf("batch key differs from its first query's key:\n %s\n %s", batch, single)
	}
	raw := requestKey("/v1/search", []byte(`not json`))
	if raw != "raw:not json" {
		t.Fatalf("unparseable body key %q", raw)
	}
}

// TestMinEpochHeaderForwarded: the read-your-writes floor survives the
// proxy hop in both directions.
func TestMinEpochHeaderForwarded(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary"}, nil)
	var gotMin atomic.Value
	orig := reps["primary"].srv.Config.Handler
	reps["primary"].srv.Config.Handler = http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		gotMin.Store(r.Header.Get("X-Min-Epoch"))
		w.Header().Set("X-Replica-Epoch", "41")
		orig.ServeHTTP(w, r)
	})
	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, map[string]string{"X-Min-Epoch": "41"})
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d", rec.Code)
	}
	if got, _ := gotMin.Load().(string); got != "41" {
		t.Fatalf("backend saw X-Min-Epoch %q, want 41", got)
	}
	if got := rec.Header().Get("X-Replica-Epoch"); got != "41" {
		t.Fatalf("client saw X-Replica-Epoch %q, want 41", got)
	}
}

// TestBackendHeaderNamesChosenBackend: every read response names the
// backend the router settled on in X-NC-Backend — the server that
// answered on success, and the slot whose response was replayed when
// every slot failed.
func TestBackendHeaderNamesChosenBackend(t *testing.T) {
	reps, rt := testFleet(t, []string{"primary", "r1", "r2"}, nil)
	order := readOrder(rt)

	rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	if got := rec.Header().Get("X-NC-Backend"); got != order[0] {
		t.Fatalf("X-NC-Backend %q, want the owner %q", got, order[0])
	}

	for _, f := range reps {
		f.status.Store(http.StatusServiceUnavailable)
	}
	rec = doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil)
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want a replayed 503", rec.Code)
	}
	if rec.Header().Get("X-NC-Backend") == "" {
		t.Fatal("final 503 does not name the chosen backend")
	}
}

// TestRouterMetricsExposition: the router's own /metrics carries the
// per-backend served counters and try-latency histograms.
func TestRouterMetricsExposition(t *testing.T) {
	_, rt := testFleet(t, []string{"primary", "r1"}, nil)
	if rec := doRouter(rt, http.MethodPost, "/v1/search", searchBody, nil); rec.Code != http.StatusOK {
		t.Fatalf("search status %d", rec.Code)
	}
	rec := doRouter(rt, http.MethodGet, "/metrics", "", nil)
	if rec.Code != http.StatusOK {
		t.Fatalf("/metrics status %d", rec.Code)
	}
	body := rec.Body.String()
	for _, want := range []string{
		"nc_router_served_total", "nc_router_try_seconds", "nc_router_hedges_total", "nc_router_exhausted_total",
	} {
		if !strings.Contains(body, want) {
			t.Fatalf("router scrape missing %s:\n%s", want, body)
		}
	}
}
