// Router: a failure-aware HTTP front for a replica fleet. Reads route
// by consistent hash of the canonicalized query key (cache affinity),
// fall back along the ring walk when the owner is down, and may fire
// one bounded hedge when the owner is merely slow. Writes go to the
// primary, only the primary, and are never replayed against a second
// backend — an ingest that may have been applied must not be applied
// twice. Health is active (periodic /healthz probes with a consecutive-
// failure window, so a catching-up follower is routed around just like
// a dead one) plus passive (a per-backend circuit breaker opened by
// consecutive request failures, so a probe-green-but-request-sick
// backend stops eating retries).
package repl

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"sync/atomic"
	"time"

	"repro/internal/obs"
)

// Routing defaults; all overridable per RouterConfig.
const (
	defaultProbeInterval   = time.Second
	defaultFailWindow      = 3
	defaultTryTimeout      = 5 * time.Second
	defaultHedgeAfter      = 150 * time.Millisecond
	defaultBreakerFails    = 3
	defaultBreakerCooldown = 5 * time.Second
	defaultMaxBodyBytes    = 1 << 20
	// maxProxyRespBytes caps a buffered (retryable) response copy; a
	// bigger response streams through on the first attempt only.
	maxProxyRespBytes = 64 << 20
)

// Backend names one replica in the fleet.
type Backend struct {
	Name string // ring identity; stable across restarts
	URL  string // base URL, e.g. "http://10.0.0.2:8080"
}

// RouterConfig wires a Router to its fleet.
type RouterConfig struct {
	// Backends is the read fleet (usually includes the primary).
	Backends []Backend
	// Primary is the Name of the backend that takes /v1/ingest. Writes
	// are refused with 503 when empty (a read-only fleet).
	Primary string
	// Client issues proxied requests. Per-try timeouts come from
	// TryTimeout; the client itself should not set one.
	Client *http.Client
	// VNodes is the ring's virtual-node count (0 = DefaultVirtualNodes).
	VNodes int
	// ProbeInterval is the active health-check period (default 1s);
	// FailWindow the consecutive probe failures that mark a backend down
	// (default 3 — one slow probe does not evict a replica).
	ProbeInterval time.Duration
	FailWindow    int
	// TryTimeout bounds each proxied read attempt (default 5s).
	TryTimeout time.Duration
	// HedgeAfter is how long the owner gets before a single hedged
	// /v1/search fires at the next ring slot (default 150ms; <0
	// disables hedging).
	HedgeAfter time.Duration
	// BreakerFails consecutive request failures open a backend's
	// circuit for BreakerCooldown (defaults 3 and 5s).
	BreakerFails    int
	BreakerCooldown time.Duration
	// MaxBodyBytes caps buffered request bodies (default 1MiB).
	MaxBodyBytes int64
	// Logf receives routing decisions and failures. Defaults to a no-op.
	Logf func(format string, args ...any)
}

// Router proxies the serving API across the fleet. Create with
// NewRouter, start probes with Start, serve Handler.
type Router struct {
	cfg     RouterConfig
	ring    *Ring
	by      map[string]*backendState
	order   []*backendState // constructor order, for probes and statsz
	primary *backendState   // nil when cfg.Primary == ""

	// met is the router's own registry behind GET /metrics: per-backend
	// try latency (whose _count is the per-backend try total), plus
	// hedge and all-replicas-failed counters. Series are registered at
	// NewRouter; the proxy path only touches held pointers.
	met       *obs.Registry
	hedges    *obs.Counter
	exhausted *obs.Counter
}

// backendState is one replica's health ledger.
type backendState struct {
	name, url    string
	healthy      atomic.Bool
	probeFails   atomic.Int32
	reqFails     atomic.Int32
	breakerUntil atomic.Int64 // unix nanos; 0 = closed
	epoch        atomic.Uint64
	served       *obs.Counter   // final responses sent from this backend
	tries        *obs.Histogram // per-try proxy latency, success or not
}

// available reports whether routing should offer this backend a
// request: probe-healthy and breaker closed (or cooled off — expiry is
// the implicit half-open trial).
func (b *backendState) available() bool {
	return b.healthy.Load() && time.Now().UnixNano() >= b.breakerUntil.Load()
}

// NewRouter validates cfg, applies defaults, and builds the ring.
func NewRouter(cfg RouterConfig) (*Router, error) {
	if len(cfg.Backends) == 0 {
		return nil, errors.New("repl: RouterConfig.Backends is empty")
	}
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.ProbeInterval <= 0 {
		cfg.ProbeInterval = defaultProbeInterval
	}
	if cfg.FailWindow <= 0 {
		cfg.FailWindow = defaultFailWindow
	}
	if cfg.TryTimeout <= 0 {
		cfg.TryTimeout = defaultTryTimeout
	}
	if cfg.HedgeAfter == 0 {
		cfg.HedgeAfter = defaultHedgeAfter
	}
	if cfg.BreakerFails <= 0 {
		cfg.BreakerFails = defaultBreakerFails
	}
	if cfg.BreakerCooldown <= 0 {
		cfg.BreakerCooldown = defaultBreakerCooldown
	}
	if cfg.MaxBodyBytes <= 0 {
		cfg.MaxBodyBytes = defaultMaxBodyBytes
	}
	rt := &Router{cfg: cfg, by: make(map[string]*backendState, len(cfg.Backends)), met: obs.NewRegistry()}
	rt.hedges = rt.met.NewCounter("nc_router_hedges_total", "Hedged read attempts fired.")
	rt.exhausted = rt.met.NewCounter("nc_router_exhausted_total", "Reads for which every candidate backend failed.")
	names := make([]string, 0, len(cfg.Backends))
	for _, b := range cfg.Backends {
		if b.Name == "" || b.URL == "" {
			return nil, fmt.Errorf("repl: backend needs both Name and URL, got %+v", b)
		}
		if _, dup := rt.by[b.Name]; dup {
			return nil, fmt.Errorf("repl: duplicate backend name %q", b.Name)
		}
		bs := &backendState{
			name: b.Name, url: trimSlash(b.URL),
			served: rt.met.NewCounter("nc_router_served_total",
				"Final responses sent to clients, by originating backend.", "backend", b.Name),
			tries: rt.met.NewHistogram("nc_router_try_seconds",
				"Per-try proxy latency in seconds, by backend (the _count is the try total).", "backend", b.Name),
		}
		// Optimistic until the first probe round: a cold router must not
		// refuse the whole fleet for a probe interval.
		bs.healthy.Store(true)
		rt.by[b.Name] = bs
		rt.order = append(rt.order, bs)
		names = append(names, b.Name)
	}
	if cfg.Primary != "" {
		p, ok := rt.by[cfg.Primary]
		if !ok {
			return nil, fmt.Errorf("repl: Primary %q is not among the backends", cfg.Primary)
		}
		rt.primary = p
	}
	rt.ring = NewRing(names, cfg.VNodes)
	return rt, nil
}

// Start launches the probe loop; it stops when ctx is done.
func (rt *Router) Start(ctx context.Context) {
	go func() {
		// Probe immediately, then on the interval: the optimistic initial
		// state should survive at most one round against a dead backend.
		rt.probeAll(ctx)
		t := time.NewTicker(rt.cfg.ProbeInterval)
		defer t.Stop()
		for {
			select {
			case <-ctx.Done():
				return
			case <-t.C:
				rt.probeAll(ctx)
			}
		}
	}()
}

// probeAll checks every backend's /healthz concurrently and applies the
// failure window. A replica reporting not-ready (503 while catching up)
// counts as down for routing even though its process is alive — the
// liveness/readiness split on the serving side is what makes this probe
// honest.
func (rt *Router) probeAll(ctx context.Context) {
	done := make(chan struct{}, len(rt.order))
	for _, b := range rt.order {
		b := b
		go func() {
			defer func() { done <- struct{}{} }()
			pctx, cancel := context.WithTimeout(ctx, rt.cfg.ProbeInterval)
			defer cancel()
			ok, epoch := rt.probeOne(pctx, b)
			if ok {
				b.probeFails.Store(0)
				if epoch > 0 {
					b.epoch.Store(epoch)
				}
				if !b.healthy.Load() {
					rt.cfg.Logf("router: backend %s healthy (epoch %d)", b.name, epoch)
				}
				b.healthy.Store(true)
				return
			}
			if int(b.probeFails.Add(1)) >= rt.cfg.FailWindow && b.healthy.Load() {
				b.healthy.Store(false)
				rt.cfg.Logf("router: backend %s down after %d failed probes", b.name, rt.cfg.FailWindow)
			}
		}()
	}
	for range rt.order {
		<-done
	}
}

func (rt *Router) probeOne(ctx context.Context, b *backendState) (ok bool, epoch uint64) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, b.url+"/healthz", nil)
	if err != nil {
		return false, 0
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return false, 0
	}
	defer resp.Body.Close()
	var body struct {
		Epoch uint64 `json:"epoch"`
	}
	_ = json.NewDecoder(io.LimitReader(resp.Body, 4096)).Decode(&body)
	return resp.StatusCode == http.StatusOK, body.Epoch
}

// Handler returns the router's HTTP surface: the serving read API plus
// ingest forwarding, and the router's own /healthz and /statsz.
func (rt *Router) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/search", func(w http.ResponseWriter, r *http.Request) { rt.handleRead(w, r, true) })
	mux.HandleFunc("/v1/batch", func(w http.ResponseWriter, r *http.Request) { rt.handleRead(w, r, false) })
	mux.HandleFunc("/v1/stream", func(w http.ResponseWriter, r *http.Request) { rt.handleRead(w, r, false) })
	mux.HandleFunc("/v1/ingest", rt.handleIngest)
	mux.HandleFunc("/healthz", rt.handleHealthz)
	mux.HandleFunc("/statsz", rt.handleStatsz)
	mux.HandleFunc("/metrics", rt.handleMetrics)
	return mux
}

// routerError is the router's own error envelope (same shape as the
// serving layer's, so clients parse one format).
type routerError struct {
	Error string `json:"error"`
}

func writeRouterJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// handleIngest forwards a write to the primary — exactly once. A failed
// or timed-out ingest is NEVER retried against another backend (only
// the primary accepts writes) and never replayed against the primary by
// the router (the attempt may have been applied and fsync'd before the
// connection died; replaying would double-apply). The client owns write
// retries because only the client knows whether its batch is
// idempotent.
func (rt *Router) handleIngest(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeRouterJSON(w, http.StatusMethodNotAllowed, routerError{Error: "POST only"})
		return
	}
	if rt.primary == nil {
		writeRouterJSON(w, http.StatusServiceUnavailable, routerError{Error: "no primary configured: read-only fleet"})
		return
	}
	body, err := readBody(w, r, rt.cfg.MaxBodyBytes)
	if err != nil {
		writeRouterJSON(w, http.StatusRequestEntityTooLarge, routerError{Error: err.Error()})
		return
	}
	// No TryTimeout here: ingest latency includes fsync and is bounded
	// by the client's own deadline, which proxies through ctx.
	resp, err := rt.forward(r.Context(), rt.primary, r, body)
	if err != nil {
		rt.recordFailure(rt.primary)
		writeRouterJSON(w, http.StatusBadGateway, routerError{Error: "primary unreachable: " + err.Error()})
		return
	}
	rt.recordOutcome(rt.primary, resp.status)
	resp.writeTo(w)
}

// handleRead proxies a read across the fleet: canonical-key ring order,
// skip unavailable backends, retry replica-level failures (network
// errors, 5xx, 503 backpressure) on the next slot, and — for /v1/search
// when enabled — fire one hedged attempt at the next slot when the
// owner is slow. 4xx and 2xx are final from whichever backend produced
// them.
func (rt *Router) handleRead(w http.ResponseWriter, r *http.Request, hedgeable bool) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeRouterJSON(w, http.StatusMethodNotAllowed, routerError{Error: "POST only"})
		return
	}
	body, err := readBody(w, r, rt.cfg.MaxBodyBytes)
	if err != nil {
		writeRouterJSON(w, http.StatusRequestEntityTooLarge, routerError{Error: err.Error()})
		return
	}
	key := requestKey(r.URL.Path, body)
	candidates := rt.candidates(key)
	if len(candidates) == 0 {
		writeRouterJSON(w, http.StatusServiceUnavailable, routerError{Error: "no backends configured"})
		return
	}
	hedge := hedgeable && rt.cfg.HedgeAfter > 0 && len(candidates) > 1

	type attempt struct {
		b    *backendState
		resp *bufferedResp
		err  error
	}
	results := make(chan attempt, len(candidates))
	launch := func(b *backendState) {
		go func() {
			tctx, cancel := context.WithTimeout(r.Context(), rt.cfg.TryTimeout)
			defer cancel()
			resp, err := rt.forward(tctx, b, r, body)
			results <- attempt{b: b, resp: resp, err: err}
		}()
	}

	next := 0
	launch(candidates[next])
	next++
	outstanding := 1
	hedged := false
	var hedgeTimer <-chan time.Time
	if hedge {
		t := time.NewTimer(rt.cfg.HedgeAfter)
		defer t.Stop()
		hedgeTimer = t.C
	}
	var lastResp *bufferedResp
	var lastErr error
	for outstanding > 0 {
		select {
		case <-hedgeTimer:
			hedgeTimer = nil
			if !hedged && next < len(candidates) {
				hedged = true
				rt.hedges.Inc()
				rt.cfg.Logf("router: hedging %s after %v to %s", r.URL.Path, rt.cfg.HedgeAfter, candidates[next].name)
				launch(candidates[next])
				next++
				outstanding++
			}
		case a := <-results:
			outstanding--
			if a.err == nil && !retryableStatus(a.resp.status) {
				rt.recordOutcome(a.b, a.resp.status)
				a.b.served.Inc()
				a.resp.writeTo(w)
				return
			}
			// Replica-level failure: charge the breaker and move along the
			// ring. Keep the best evidence for the client in case every
			// slot fails.
			if a.err != nil {
				rt.recordFailure(a.b)
				lastErr = a.err
				rt.cfg.Logf("router: %s on %s failed: %v", r.URL.Path, a.b.name, a.err)
			} else {
				rt.recordFailure(a.b)
				lastResp = a.resp
				rt.cfg.Logf("router: %s on %s answered %d, retrying elsewhere", r.URL.Path, a.b.name, a.resp.status)
			}
			if next < len(candidates) {
				launch(candidates[next])
				next++
				outstanding++
			}
		case <-r.Context().Done():
			return
		}
	}
	// Every candidate failed. A buffered replica response (e.g. a 503
	// with its honest Retry-After) beats a synthesized 502.
	rt.exhausted.Inc()
	if lastResp != nil {
		lastResp.writeTo(w)
		return
	}
	// No backend produced bytes; name the last one tried so the client's
	// error report still points somewhere.
	if next > 0 {
		w.Header().Set("X-NC-Backend", candidates[next-1].name)
	}
	msg := "all replicas failed"
	if lastErr != nil {
		msg += ": " + lastErr.Error()
	}
	writeRouterJSON(w, http.StatusBadGateway, routerError{Error: msg})
}

// candidates returns ring order for key, available backends first (in
// ring order), then — only when nothing is available — the unavailable
// ones as a last gasp: a request against a suspect fleet beats a
// guaranteed 503.
func (rt *Router) candidates(key string) []*backendState {
	order := rt.ring.Order(key)
	avail := make([]*backendState, 0, len(order))
	rest := make([]*backendState, 0, len(order))
	for _, name := range order {
		b := rt.by[name]
		if b.available() {
			avail = append(avail, b)
		} else {
			rest = append(rest, b)
		}
	}
	if len(avail) > 0 {
		return avail
	}
	return rest
}

// retryableStatus: statuses worth spending another replica on. 503 is
// the serving layer's backpressure (overload, booting, min-epoch
// timeout) and the whole point of fallback slots; 5xx means the replica
// malfunctioned; everything else — including 4xx — is a property of the
// request and would fail identically anywhere.
func retryableStatus(status int) bool {
	return status == http.StatusServiceUnavailable || status == http.StatusBadGateway ||
		status == http.StatusInternalServerError || status == http.StatusGatewayTimeout
}

// recordFailure charges one request failure; BreakerFails consecutive
// open the breaker for BreakerCooldown.
func (rt *Router) recordFailure(b *backendState) {
	if int(b.reqFails.Add(1)) >= rt.cfg.BreakerFails {
		b.reqFails.Store(0)
		b.breakerUntil.Store(time.Now().Add(rt.cfg.BreakerCooldown).UnixNano())
		rt.cfg.Logf("router: circuit open on %s for %v", b.name, rt.cfg.BreakerCooldown)
	}
}

// recordOutcome resets the failure run on any response the backend
// produced sanely (a 4xx is the backend working fine on a bad request).
func (rt *Router) recordOutcome(b *backendState, status int) {
	if !retryableStatus(status) {
		b.reqFails.Store(0)
		b.breakerUntil.Store(0)
	}
}

// forward proxies one attempt: buffered body in, buffered response out,
// passing through the headers that matter (X-Min-Epoch for
// read-your-writes, X-Request-ID for tracing, Content-Type).
func (rt *Router) forward(ctx context.Context, b *backendState, orig *http.Request, body []byte) (*bufferedResp, error) {
	start := time.Now()
	defer func() { b.tries.Observe(time.Since(start)) }()
	req, err := http.NewRequestWithContext(ctx, orig.Method, b.url+orig.URL.Path, bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	for _, h := range []string{"Content-Type", "X-Min-Epoch", "X-Request-ID", "Accept"} {
		if v := orig.Header.Get(h); v != "" {
			req.Header.Set(h, v)
		}
	}
	resp, err := rt.cfg.Client.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	rb, err := io.ReadAll(io.LimitReader(resp.Body, maxProxyRespBytes))
	if err != nil {
		return nil, fmt.Errorf("reading %s response: %w", b.name, err)
	}
	br := &bufferedResp{status: resp.StatusCode, body: rb, header: make(http.Header, 4)}
	for _, h := range []string{"Content-Type", "Retry-After", "X-Replica-Epoch", "X-Request-ID"} {
		if v := resp.Header.Get(h); v != "" {
			br.header.Set(h, v)
		}
	}
	br.header.Set("X-Served-By", b.name)
	// X-NC-Backend names the backend that produced this response; it
	// rides along whether the response wins the race (success) or is
	// replayed as the best evidence after every candidate failed, so a
	// client always learns which replica answered — or last refused.
	br.header.Set("X-NC-Backend", b.name)
	return br, nil
}

// bufferedResp is a fully-read upstream response, replayable to the
// client after the retry/hedge race settles.
type bufferedResp struct {
	status int
	header http.Header
	body   []byte
}

func (br *bufferedResp) writeTo(w http.ResponseWriter) {
	for k, vs := range br.header {
		for _, v := range vs {
			w.Header().Add(k, v)
		}
	}
	w.WriteHeader(br.status)
	_, _ = w.Write(br.body)
}

// handleHealthz: the router is healthy while at least one backend is
// available to route to.
func (rt *Router) handleHealthz(w http.ResponseWriter, r *http.Request) {
	up := 0
	for _, b := range rt.order {
		if b.available() {
			up++
		}
	}
	status := http.StatusOK
	if up == 0 {
		status = http.StatusServiceUnavailable
	}
	writeRouterJSON(w, status, map[string]any{
		"status":   map[bool]string{true: "ok", false: "no backends available"}[up > 0],
		"backends": len(rt.order),
		"up":       up,
	})
}

// routerBackendStats is one backend's row in /statsz.
type routerBackendStats struct {
	Name        string `json:"name"`
	URL         string `json:"url"`
	Healthy     bool   `json:"healthy"`
	BreakerOpen bool   `json:"breaker_open"`
	ProbeFails  int32  `json:"probe_fails"`
	Epoch       uint64 `json:"epoch"`
	Served      int64  `json:"served"`
}

func (rt *Router) handleStatsz(w http.ResponseWriter, r *http.Request) {
	rows := make([]routerBackendStats, 0, len(rt.order))
	for _, b := range rt.order {
		rows = append(rows, routerBackendStats{
			Name:        b.name,
			URL:         b.url,
			Healthy:     b.healthy.Load(),
			BreakerOpen: time.Now().UnixNano() < b.breakerUntil.Load(),
			ProbeFails:  b.probeFails.Load(),
			Epoch:       b.epoch.Load(),
			Served:      b.served.Value(),
		})
	}
	primary := ""
	if rt.primary != nil {
		primary = rt.primary.name
	}
	writeRouterJSON(w, http.StatusOK, map[string]any{"primary": primary, "backends": rows})
}

// Metrics returns the router's registry (per-backend try latency,
// hedge/exhausted counters) for embedding or tests; GET /metrics
// exposes it in Prometheus text form.
func (rt *Router) Metrics() *obs.Registry { return rt.met }

// handleMetrics is GET /metrics for the router process itself.
func (rt *Router) handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeRouterJSON(w, http.StatusMethodNotAllowed, routerError{Error: "GET only"})
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	w.Header().Set("Cache-Control", "no-store")
	_ = rt.met.WritePrometheus(w)
}

// requestKey derives the routing key for a read: the canonicalized
// query when the body parses (batch/stream requests key on their first
// query — one slot per batch keeps its cache hits together), the raw
// body otherwise (the backend will 400 it; where it lands is moot).
func requestKey(path string, body []byte) string {
	var env struct {
		Entities    []string `json:"entities"`
		Nodes       []uint32 `json:"nodes"`
		Selector    string   `json:"selector"`
		ContextSize int      `json:"context_size"`
		Walks       int      `json:"walks"`
		Damping     float64  `json:"damping"`
		Queries     []struct {
			Entities    []string `json:"entities"`
			Nodes       []uint32 `json:"nodes"`
			Selector    string   `json:"selector"`
			ContextSize int      `json:"context_size"`
			Walks       int      `json:"walks"`
			Damping     float64  `json:"damping"`
		} `json:"queries"`
	}
	if err := json.Unmarshal(body, &env); err != nil {
		return "raw:" + string(body)
	}
	if len(env.Queries) > 0 {
		q := env.Queries[0]
		return CanonicalKey(q.Entities, q.Nodes, q.Selector, q.ContextSize, q.Walks, q.Damping)
	}
	return CanonicalKey(env.Entities, env.Nodes, env.Selector, env.ContextSize, env.Walks, env.Damping)
}

// readBody slurps the (size-capped) request body for replayable
// forwarding.
func readBody(w http.ResponseWriter, r *http.Request, max int64) ([]byte, error) {
	r.Body = http.MaxBytesReader(w, r.Body, max)
	b, err := io.ReadAll(r.Body)
	if err != nil {
		return nil, fmt.Errorf("reading request body: %w", err)
	}
	return b, nil
}

func trimSlash(s string) string {
	for len(s) > 0 && s[len(s)-1] == '/' {
		s = s[:len(s)-1]
	}
	return s
}
