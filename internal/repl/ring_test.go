package repl

import (
	"fmt"
	"reflect"
	"testing"
)

// TestRingDeterministic: the same membership always builds the same
// ring, and Order is stable per key — the property retries, hedges, and
// cache affinity all lean on.
func TestRingDeterministic(t *testing.T) {
	names := []string{"primary", "r1", "r2"}
	a := NewRing(names, 0)
	b := NewRing([]string{"r2", "primary", "r1"}, 0) // order must not matter
	for i := 0; i < 200; i++ {
		key := fmt.Sprintf("key-%d", i)
		oa, ob := a.Order(key), b.Order(key)
		if !reflect.DeepEqual(oa, ob) {
			t.Fatalf("key %q: order depends on constructor order: %v vs %v", key, oa, ob)
		}
		if len(oa) != len(names) {
			t.Fatalf("key %q: order %v does not cover the fleet", key, oa)
		}
		seen := map[string]bool{}
		for _, n := range oa {
			if seen[n] {
				t.Fatalf("key %q: backend %q appears twice in %v", key, n, oa)
			}
			seen[n] = true
		}
		if a.Pick(key) != oa[0] {
			t.Fatalf("key %q: Pick disagrees with Order[0]", key)
		}
	}
}

// TestRingBalance: with virtual nodes, no backend owns a wildly
// disproportionate share of keys.
func TestRingBalance(t *testing.T) {
	r := NewRing([]string{"a", "b", "c", "d"}, 0)
	counts := map[string]int{}
	const keys = 4000
	for i := 0; i < keys; i++ {
		counts[r.Pick(fmt.Sprintf("key-%d", i))]++
	}
	for name, n := range counts {
		// Fair share is 1000; accept a generous 2× band — the test guards
		// against degenerate hashing, not perfect balance.
		if n < keys/8 || n > keys/2 {
			t.Fatalf("backend %s owns %d of %d keys: %v", name, n, keys, counts)
		}
	}
}

// TestRingStabilityUnderMembershipChange: removing (or adding) one of N
// backends moves roughly 1/N of the key space and NOTHING else — keys
// that stay put keep their owner, so replica caches survive fleet
// changes.
func TestRingStabilityUnderMembershipChange(t *testing.T) {
	const keys = 4000
	full := NewRing([]string{"a", "b", "c", "d"}, 0)
	smaller := NewRing([]string{"a", "b", "c"}, 0)

	moved := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := full.Pick(key), smaller.Pick(key)
		if was == "d" {
			// Orphaned keys must land on the survivor that was next in the
			// full ring's walk order — the fallback slot retries already used.
			wantNext := ""
			for _, n := range full.Order(key)[1:] {
				if n != "d" {
					wantNext = n
					break
				}
			}
			if is != wantNext {
				t.Fatalf("key %q: owner d removed, moved to %q, want next-in-walk %q", key, is, wantNext)
			}
			moved++
			continue
		}
		if was != is {
			t.Fatalf("key %q moved %q → %q although its owner survived", key, was, is)
		}
	}
	// d owned ~1/4 of the space; accept a wide band around it.
	if moved < keys/8 || moved > keys/2 {
		t.Fatalf("%d of %d keys moved on one removal, want ≈ %d", moved, keys, keys/4)
	}

	// Adding a backend is the same property in reverse: only keys the
	// newcomer claims may move.
	grown := NewRing([]string{"a", "b", "c", "d", "e"}, 0)
	movedIn := 0
	for i := 0; i < keys; i++ {
		key := fmt.Sprintf("key-%d", i)
		was, is := full.Pick(key), grown.Pick(key)
		if was != is {
			if is != "e" {
				t.Fatalf("key %q moved %q → %q on an add; only moves to the newcomer are allowed", key, was, is)
			}
			movedIn++
		}
	}
	if movedIn < keys/10 || movedIn > keys/3 {
		t.Fatalf("%d of %d keys moved to the newcomer, want ≈ %d", movedIn, keys, keys/5)
	}
}

// TestCanonicalKey: entity/node order does not change the key; every
// cache-forking knob does.
func TestCanonicalKey(t *testing.T) {
	base := CanonicalKey([]string{"Merkel", "Obama"}, []uint32{7, 3}, "contextrw", 10, 0, 0)
	if got := CanonicalKey([]string{"Obama", "Merkel"}, []uint32{3, 7}, "contextrw", 10, 0, 0); got != base {
		t.Fatalf("reordered query changed the key:\n %s\n %s", got, base)
	}
	distinct := []string{
		CanonicalKey([]string{"Merkel"}, []uint32{7, 3}, "contextrw", 10, 0, 0),
		CanonicalKey([]string{"Merkel", "Obama"}, []uint32{3}, "contextrw", 10, 0, 0),
		CanonicalKey([]string{"Merkel", "Obama"}, []uint32{7, 3}, "simrank", 10, 0, 0),
		CanonicalKey([]string{"Merkel", "Obama"}, []uint32{7, 3}, "contextrw", 20, 0, 0),
		CanonicalKey([]string{"Merkel", "Obama"}, []uint32{7, 3}, "contextrw", 10, 500, 0),
		CanonicalKey([]string{"Merkel", "Obama"}, []uint32{7, 3}, "contextrw", 10, 0, 0.9),
	}
	seen := map[string]bool{base: true}
	for i, k := range distinct {
		if seen[k] {
			t.Fatalf("variant %d collided: %s", i, k)
		}
		seen[k] = true
	}
}
