// Package repl is the replication layer over the serving stack: the
// follower that rebuilds a primary's engine from its WAL stream
// (follower.go), and the failure-aware router that fronts a replica
// fleet (router.go). The wire contract is internal/server's
// /v1/repl/* endpoints; the correctness contract is the PR 7/8
// invariant chain — deterministic ApplyTriples replay over durable,
// epoch-contiguous records — which makes every replica's answer at
// epoch N bitwise-identical to the primary's at epoch N.
package repl

import (
	"hash/fnv"
	"sort"
	"strconv"
	"strings"
)

// DefaultVirtualNodes is the ring's per-backend virtual-node count: 64
// keeps assignment imbalance within a few percent for small fleets
// while an add/remove still moves only ~1/N of the key space.
const DefaultVirtualNodes = 64

// Ring is a consistent-hash ring over backend names. Routing a query
// key through the ring gives every replica a stable slice of the query
// space — per-replica selector/seed caches stay hot — and the walk
// order past the owner is the deterministic fallback sequence retries
// and hedges use. Immutable once built; rebuild on membership change.
type Ring struct {
	points   []ringPoint
	backends []string
}

type ringPoint struct {
	hash    uint64
	backend int
}

// NewRing builds a ring over backends with vnodes virtual nodes each
// (0 selects DefaultVirtualNodes). Backend order does not matter; the
// hash space does.
func NewRing(backends []string, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = DefaultVirtualNodes
	}
	r := &Ring{backends: append([]string(nil), backends...)}
	r.points = make([]ringPoint, 0, len(backends)*vnodes)
	for bi, name := range r.backends {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash:    hash64(name + "#" + strconv.Itoa(v)),
				backend: bi,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		// Tie-break on backend index so equal hashes (vanishingly rare)
		// still order deterministically.
		return r.points[i].backend < r.points[j].backend
	})
	return r
}

// Backends returns the member names (constructor order).
func (r *Ring) Backends() []string { return append([]string(nil), r.backends...) }

// Order returns every distinct backend in ring-walk order from key's
// position: the owner first, then the fallback slots a retry or hedge
// walks. Deterministic for a given (ring, key).
func (r *Ring) Order(key string) []string {
	if len(r.points) == 0 {
		return nil
	}
	h := hash64(key)
	start := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	out := make([]string, 0, len(r.backends))
	seen := make([]bool, len(r.backends))
	for i := 0; i < len(r.points) && len(out) < len(r.backends); i++ {
		p := r.points[(start+i)%len(r.points)]
		if !seen[p.backend] {
			seen[p.backend] = true
			out = append(out, r.backends[p.backend])
		}
	}
	return out
}

// Pick returns key's owning backend ("" on an empty ring).
func (r *Ring) Pick(key string) string {
	o := r.Order(key)
	if len(o) == 0 {
		return ""
	}
	return o[0]
}

// hash64 is FNV-1a over s with a splitmix64-style finalizer. Raw
// FNV-1a barely diffuses the last bytes into the high bits, so
// near-identical strings ("key-1", "key-2", vnode labels) cluster in
// narrow arcs of the ring; the finalizer's avalanche spreads them
// across the full 64-bit space. Dependency-free and deterministic —
// adversarial keys can only hurt their own cache affinity.
func hash64(s string) uint64 {
	h := fnv.New64a()
	_, _ = h.Write([]byte(s))
	x := h.Sum64()
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}

// CanonicalKey renders a query's routing key: the parts of a request
// that determine which cache entries serve it — entities and nodes
// (order-insensitive, like the engine's own cache keys), the selector,
// and the override knobs that fork selector cache entries. Two requests
// for the same logical query land on the same replica however the
// client ordered its entities.
func CanonicalKey(entities []string, nodes []uint32, selector string, contextSize, walks int, damping float64) string {
	es := append([]string(nil), entities...)
	sort.Strings(es)
	ns := append([]uint32(nil), nodes...)
	sort.Slice(ns, func(i, j int) bool { return ns[i] < ns[j] })
	var b strings.Builder
	b.WriteString("e:")
	for i, e := range es {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(e)
	}
	b.WriteString("|n:")
	for i, n := range ns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(strconv.FormatUint(uint64(n), 10))
	}
	b.WriteString("|s:")
	b.WriteString(selector)
	b.WriteString("|k:")
	b.WriteString(strconv.Itoa(contextSize))
	b.WriteString("|w:")
	b.WriteString(strconv.Itoa(walks))
	b.WriteString("|d:")
	b.WriteString(strconv.FormatFloat(damping, 'g', -1, 64))
	return b.String()
}
