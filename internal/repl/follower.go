// Follower: the replica side of WAL shipping. Bootstrap from the
// primary's snapshot, then apply its durable record stream through
// ApplyTriples strictly in epoch order — asserting after every batch
// that the locally published epoch equals the epoch the primary logged,
// which under the deterministic-replay invariant means the replica's
// bits equal the primary's at that epoch. Disconnects re-stream from
// the last applied epoch with exponential backoff and jitter; a 410
// (position truncated behind a checkpoint) re-bootstraps from a fresh
// snapshot; a 409 or an epoch mismatch is divergence and parks the
// follower unready at maximum backoff. Readiness is reported through a
// callback and is sticky: a follower that once reached the primary's
// acked epoch keeps serving through brief reconnects, but resync and
// divergence drop it back to not-ready.
package repl

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"repro"
	"repro/internal/obs"
	"repro/internal/wal"
)

// Reconnect/liveness defaults; all overridable per FollowerConfig.
const (
	defaultBackoffMin  = 200 * time.Millisecond
	defaultBackoffMax  = 15 * time.Second
	defaultIdleTimeout = 10 * time.Second // 5× the primary's heartbeat interval
)

// maxBackoffShift caps the exponential doubling (min<<shift) before the
// max clamp takes over; also the shift divergence parks at.
const maxBackoffShift = 10

// errResync: the stream position is gone from the primary's log; only a
// fresh snapshot can rejoin.
var errResync = errors.New("repl: stream position truncated, snapshot resync required")

// errDiverged: the replica's epoch history contradicts the primary's —
// a rebuilt primary, or replay that stopped being deterministic. Never
// self-heals quickly; the follower goes unready and retries slowly.
var errDiverged = errors.New("repl: replica diverged from primary")

// FollowerState is the readiness snapshot pushed to OnState after every
// transition and every applied batch. Epoch is the last applied epoch,
// Target the primary's durable epoch at the last connect — the floor
// Epoch must reach before Ready flips true.
type FollowerState struct {
	Ready  bool
	Status string // "booting", "catching-up", "ready", "resyncing", "diverged"
	Epoch  uint64
	Target uint64
}

// FollowerConfig wires a Follower to its primary.
type FollowerConfig struct {
	// Primary is the primary's base URL (e.g. "http://10.0.0.1:8080").
	Primary string
	// Options configures the replica engine built from the bootstrap
	// snapshot. Should match the primary's selector/walk options — the
	// graph bits replicate regardless, but matching options keep the
	// replica answering queries the way the primary would.
	Options notable.Options
	// Client is the HTTP client for snapshot and stream requests.
	// Defaults to one with no overall timeout (streams are long-lived;
	// the idle watchdog handles dead peers).
	Client *http.Client
	// OnEngine runs once, when the bootstrap snapshot has produced the
	// replica engine — the hook a serving process uses to hand the
	// engine to its HTTP server.
	OnEngine func(*notable.Engine)
	// OnState runs after every state transition and applied batch.
	OnState func(FollowerState)
	// Logf receives progress and error lines. Defaults to a no-op.
	Logf func(format string, args ...any)
	// BackoffMin/BackoffMax bound the reconnect backoff (defaults 200ms
	// and 15s); IdleTimeout cuts a stream that delivers no bytes — not
	// even heartbeats — for this long (default 10s).
	BackoffMin  time.Duration
	BackoffMax  time.Duration
	IdleTimeout time.Duration
}

// Follower replicates one primary into an in-memory engine. Create with
// NewFollower, drive with Run; Engine/State are safe from any
// goroutine.
type Follower struct {
	cfg FollowerConfig

	eng     atomic.Pointer[notable.Engine]
	applied atomic.Uint64
	target  atomic.Uint64
	ready   atomic.Bool
	status  atomic.Pointer[string]

	// resync is only touched by Run's goroutine.
	resync bool
}

// NewFollower validates cfg and applies defaults. Run does the work.
func NewFollower(cfg FollowerConfig) (*Follower, error) {
	if cfg.Primary == "" {
		return nil, errors.New("repl: FollowerConfig.Primary is required")
	}
	cfg.Primary = strings.TrimRight(cfg.Primary, "/")
	if cfg.Client == nil {
		cfg.Client = &http.Client{}
	}
	if cfg.Logf == nil {
		cfg.Logf = func(string, ...any) {}
	}
	if cfg.BackoffMin <= 0 {
		cfg.BackoffMin = defaultBackoffMin
	}
	if cfg.BackoffMax < cfg.BackoffMin {
		cfg.BackoffMax = defaultBackoffMax
	}
	if cfg.IdleTimeout <= 0 {
		cfg.IdleTimeout = defaultIdleTimeout
	}
	f := &Follower{cfg: cfg}
	s0 := "booting"
	f.status.Store(&s0)
	return f, nil
}

// RegisterMetrics registers the follower's replication gauges on reg —
// apply lag in epochs (how far the replica trails the primary's durable
// epoch at last connect), the applied epoch itself, and readiness as
// 0/1. ncserved passes its server registry here so the gauges ride the
// same GET /metrics as the request series. GaugeFuncs read the
// follower's atomics at scrape time; nothing is added to the apply path.
func (f *Follower) RegisterMetrics(reg *obs.Registry) {
	reg.NewGaugeFunc("nc_repl_lag_epochs",
		"Epochs the follower trails the primary's durable epoch (0 when caught up).",
		func() float64 {
			applied, target := f.applied.Load(), f.target.Load()
			if target > applied {
				return float64(target - applied)
			}
			return 0
		})
	reg.NewGaugeFunc("nc_repl_applied_epoch",
		"Last epoch the follower applied.",
		func() float64 { return float64(f.applied.Load()) })
	reg.NewGaugeFunc("nc_repl_ready",
		"Follower readiness (1 = serving, 0 = catching up, resyncing, or diverged).",
		func() float64 {
			if f.ready.Load() {
				return 1
			}
			return 0
		})
}

// Engine returns the replica engine, nil until the first bootstrap
// completes.
func (f *Follower) Engine() *notable.Engine { return f.eng.Load() }

// State returns the current readiness snapshot.
func (f *Follower) State() FollowerState {
	return FollowerState{
		Ready:  f.ready.Load(),
		Status: derefStatus(f.status.Load()),
		Epoch:  f.applied.Load(),
		Target: f.target.Load(),
	}
}

// Run replicates until ctx is done, reconnecting with backoff across
// every failure. It only returns ctx.Err(): a follower has no terminal
// failure, just states it retries out of at different speeds.
func (f *Follower) Run(ctx context.Context) error {
	shift := 0
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		progressed, err := f.session(ctx)
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		switch {
		case errors.Is(err, errDiverged):
			// Divergence does not clear on its own; park at max backoff so
			// the periodic snapshot retry can eventually resync us onto the
			// primary's (possibly rebuilt) history.
			f.setState(false, "diverged")
			f.resync = true
			shift = maxBackoffShift
			f.cfg.Logf("repl: follower diverged from %s: %v", f.cfg.Primary, err)
		case errors.Is(err, errResync):
			f.setState(false, "resyncing")
			f.resync = true
			f.cfg.Logf("repl: stream position truncated on %s, re-bootstrapping from snapshot", f.cfg.Primary)
		case err != nil:
			f.cfg.Logf("repl: session against %s ended: %v", f.cfg.Primary, err)
		}
		if progressed {
			shift = 0
		} else if shift < maxBackoffShift {
			shift++
		}
		d := f.backoff(shift)
		select {
		case <-ctx.Done():
			return ctx.Err()
		case <-time.After(d):
		}
	}
}

// session runs one bootstrap (when needed) plus one stream connection,
// returning whether any forward progress happened (progress resets the
// backoff).
func (f *Follower) session(ctx context.Context) (progressed bool, err error) {
	if f.eng.Load() == nil || f.resync {
		if err := f.bootstrap(ctx); err != nil {
			return false, err
		}
		f.resync = false
		progressed = true
	}
	n, err := f.streamOnce(ctx)
	return progressed || n > 0, err
}

// bootstrap fetches /v1/repl/snapshot and installs it: the replica
// engine on first run, ResetGraph on resync. A resync snapshot older
// than what we already applied is refused by ResetGraph's forward-only
// epoch check — that is divergence territory, so keep current state and
// let backoff retry until the primary's checkpoint catches up.
func (f *Follower) bootstrap(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, f.cfg.Primary+"/v1/repl/snapshot", nil)
	if err != nil {
		return err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return fmt.Errorf("repl: fetching snapshot: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("repl: snapshot request: %s", httpError(resp))
	}
	epoch, err := strconv.ParseUint(resp.Header.Get("X-Repl-Epoch"), 10, 64)
	if err != nil {
		return fmt.Errorf("repl: snapshot response missing X-Repl-Epoch: %v", err)
	}
	g, err := notable.ReadSnapshot(resp.Body)
	if err != nil {
		// Includes short reads: the snapshot footer CRC makes a truncated
		// download indistinguishable from corruption, and both mean retry.
		return fmt.Errorf("repl: decoding snapshot: %w", err)
	}
	if eng := f.eng.Load(); eng != nil {
		if rerr := eng.ResetGraph(g, epoch); rerr != nil {
			return fmt.Errorf("%w: resync snapshot at epoch %d rejected: %v", errDiverged, epoch, rerr)
		}
	} else {
		eng := notable.NewReplicaEngine(g, f.cfg.Options, epoch)
		f.eng.Store(eng)
		if f.cfg.OnEngine != nil {
			f.cfg.OnEngine(eng)
		}
	}
	f.applied.Store(epoch)
	f.setState(false, "catching-up")
	f.cfg.Logf("repl: bootstrapped from %s snapshot at epoch %d", f.cfg.Primary, epoch)
	return nil
}

// streamOnce opens /v1/repl/stream from the last applied epoch and
// applies records until the connection ends. Returns the number of
// applied batches; a nil error means a clean disconnect (reconnect and
// continue from where we are).
func (f *Follower) streamOnce(ctx context.Context) (applied int, err error) {
	sctx, cancel := context.WithCancel(ctx)
	defer cancel()
	from := f.applied.Load()
	req, err := http.NewRequestWithContext(sctx, http.MethodGet,
		f.cfg.Primary+"/v1/repl/stream?from="+strconv.FormatUint(from, 10), nil)
	if err != nil {
		return 0, err
	}
	resp, err := f.cfg.Client.Do(req)
	if err != nil {
		return 0, fmt.Errorf("repl: opening stream: %w", err)
	}
	defer resp.Body.Close()
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusGone:
		drain(resp)
		return 0, errResync
	case http.StatusConflict:
		drain(resp)
		return 0, fmt.Errorf("%w: primary durable epoch behind our %d (%s)", errDiverged, from, httpError(resp))
	default:
		return 0, fmt.Errorf("repl: stream request: %s", httpError(resp))
	}
	target, err := strconv.ParseUint(resp.Header.Get("X-Repl-Epoch"), 10, 64)
	if err != nil {
		return 0, fmt.Errorf("repl: stream response missing X-Repl-Epoch: %v", err)
	}
	f.target.Store(target)
	f.maybeReady()

	// The idle watchdog cuts the connection when not even heartbeats
	// arrive for IdleTimeout: a primary that died without closing the
	// socket, or a partition that ate the FIN.
	watchdog := time.AfterFunc(f.cfg.IdleTimeout, cancel)
	defer watchdog.Stop()
	fr := wal.NewFrameReader(&idleResetReader{r: resp.Body, timer: watchdog, d: f.cfg.IdleTimeout})
	eng := f.eng.Load()
	for {
		rec, rerr := fr.Next()
		if rerr != nil {
			// EOF and a torn trailing frame are how dropped connections
			// look; both mean reconnect from the last applied epoch. ErrTorn
			// cannot mean data loss here: frames only ship after fsync, so
			// the cut bytes re-ship intact on the next connect.
			if errors.Is(rerr, io.EOF) || errors.Is(rerr, io.ErrUnexpectedEOF) || errors.Is(rerr, wal.ErrTorn) {
				return applied, nil
			}
			if sctx.Err() != nil && ctx.Err() == nil {
				return applied, fmt.Errorf("repl: stream idle for %v, reconnecting", f.cfg.IdleTimeout)
			}
			return applied, fmt.Errorf("repl: reading stream: %w", rerr)
		}
		got, aerr := eng.ApplyTriples(ctx, rec.Adds, rec.Dels)
		if aerr != nil {
			return applied, fmt.Errorf("repl: applying epoch %d: %w", rec.Epoch, aerr)
		}
		if got != rec.Epoch {
			// The replay invariant broke: the same batch sequence produced a
			// different epoch here than on the primary. Serving would return
			// wrong-epoch (possibly wrong-bit) answers; stop and go unready.
			return applied, fmt.Errorf("%w: applied batch published epoch %d, primary logged %d", errDiverged, got, rec.Epoch)
		}
		applied++
		f.applied.Store(got)
		f.maybeReady()
	}
}

// maybeReady flips ready (sticky) once applied reaches the connect-time
// target, and refreshes the state callback with the new epoch either
// way.
func (f *Follower) maybeReady() {
	if !f.ready.Load() && f.applied.Load() >= f.target.Load() {
		f.setState(true, "ready")
		return
	}
	status := "catching-up"
	if f.ready.Load() {
		status = "ready"
	}
	f.setState(f.ready.Load(), status)
}

// setState records ready/status and pushes the snapshot to OnState.
func (f *Follower) setState(ready bool, status string) {
	f.ready.Store(ready)
	f.status.Store(&status)
	if f.cfg.OnState != nil {
		f.cfg.OnState(f.State())
	}
}

// backoff returns min<<shift clamped to max, jittered to 50–150% so a
// fleet of followers orphaned by the same crash does not reconnect in
// lockstep.
func (f *Follower) backoff(shift int) time.Duration {
	d := f.cfg.BackoffMin << shift
	if d > f.cfg.BackoffMax || d <= 0 {
		d = f.cfg.BackoffMax
	}
	return d/2 + time.Duration(rand.Int63n(int64(d)))
}

// idleResetReader re-arms the watchdog on every read: bytes (even
// heartbeat frames) prove the primary is alive.
type idleResetReader struct {
	r     io.Reader
	timer *time.Timer
	d     time.Duration
}

func (ir *idleResetReader) Read(p []byte) (int, error) {
	n, err := ir.r.Read(p)
	ir.timer.Reset(ir.d)
	return n, err
}

// httpError renders a non-200 response for error messages: status line
// plus a capped body snippet (the server's JSON error).
func httpError(resp *http.Response) string {
	b, _ := io.ReadAll(io.LimitReader(resp.Body, 256))
	s := strings.TrimSpace(string(b))
	if s == "" {
		return resp.Status
	}
	return resp.Status + ": " + s
}

// drain discards a small error body so the connection can be reused.
func drain(resp *http.Response) {
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 4096))
}

// derefStatus guards the pre-first-store window.
func derefStatus(p *string) string {
	if p == nil {
		return "booting"
	}
	return *p
}
