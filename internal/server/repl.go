// The primary side of replication on the wire: two GET endpoints a
// follower drives its whole lifecycle from.
//
//	GET /v1/repl/snapshot          the newest durable checkpoint (or a
//	                               snapshot of the live view when none
//	                               exists yet), X-Repl-Epoch = its epoch
//	GET /v1/repl/stream?from=N     chunked live tail: every durable WAL
//	                               record with epoch > N, as the same
//	                               CRC32 frames the log holds on disk,
//	                               then heartbeats + new records as they
//	                               become durable. X-Repl-Epoch = the
//	                               durable epoch at connect — the floor a
//	                               bootstrapping follower must reach
//	                               before calling itself ready.
//
// Statuses a follower must handle: 410 Gone (the requested position was
// truncated behind a checkpoint — re-bootstrap from the snapshot), 409
// Conflict (the follower claims epochs the primary never made durable —
// divergence, a rebuilt or rolled-back primary), 503 (booting or not a
// durable engine). Streams terminate silently on drain; the follower
// reconnects with backoff.
package server

import (
	"errors"
	"net/http"
	"strconv"
	"time"

	"repro"
	"repro/internal/wal"
)

// replHeartbeatInterval is how often an idle stream emits a keepalive
// frame so a follower can tell a quiet primary from a dead connection.
const replHeartbeatInterval = 2 * time.Second

// replGuard does the shared precondition checks of both repl endpoints:
// GET only, engine present. Returns nil after writing the response when
// the request cannot be served.
func (s *Server) replGuard(w http.ResponseWriter, r *http.Request) *notable.Engine {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		writeJSON(w, http.StatusMethodNotAllowed, errorResponse{Error: "GET only", RequestID: requestIDFrom(r.Context())})
		return nil
	}
	eng := s.engine()
	if eng == nil {
		w.Header().Set("Retry-After", retryAfterSeconds(s.cfg.RetryAfter))
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error:     "booting: engine not ready",
			RequestID: requestIDFrom(r.Context()),
		})
		return nil
	}
	return eng
}

// handleReplSnapshot serves the bootstrap payload: the graph snapshot a
// follower loads before streaming the tail from X-Repl-Epoch.
func (s *Server) handleReplSnapshot(w http.ResponseWriter, r *http.Request) {
	eng := s.replGuard(w, r)
	if eng == nil {
		return
	}
	epoch, rc, err := eng.ReplSnapshot()
	if err != nil {
		s.writeReplError(w, r, err)
		return
	}
	defer rc.Close()
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Epoch", strconv.FormatUint(epoch, 10))
	w.WriteHeader(http.StatusOK)
	// A copy error mid-body means the follower disconnected or the disk
	// died under us; either way the status is sent and the follower's
	// snapshot CRC check catches a short read.
	buf := make([]byte, 64<<10)
	for {
		n, rerr := rc.Read(buf)
		if n > 0 {
			if _, werr := w.Write(buf[:n]); werr != nil {
				return
			}
		}
		if rerr != nil {
			return
		}
	}
}

// handleReplStream serves the live tail from ?from=EPOCH: everything
// durable past it immediately, then records as they become durable,
// with heartbeats in the gaps. The stream ends when the client goes
// away, the server drains, or the WAL fails; the follower reconnects
// from wherever it got to.
func (s *Server) handleReplStream(w http.ResponseWriter, r *http.Request) {
	eng := s.replGuard(w, r)
	if eng == nil {
		return
	}
	from := uint64(0)
	if q := r.URL.Query().Get("from"); q != "" {
		v, err := strconv.ParseUint(q, 10, 64)
		if err != nil {
			s.writeError(w, r, badRequestf("bad from epoch %q: %v", q, err))
			return
		}
		from = v
	}

	// First read before committing a status: position errors (Gone,
	// divergence) must reach the follower as statuses, not dropped
	// connections.
	tail, durable, err := eng.ReplTail(from)
	if err != nil {
		s.writeReplError(w, r, err)
		return
	}
	if from > durable {
		w.Header().Set("X-Repl-Epoch", strconv.FormatUint(durable, 10))
		writeJSON(w, http.StatusConflict, errorResponse{
			Error:     "follower ahead of primary: durable epoch " + strconv.FormatUint(durable, 10) + " < requested " + strconv.FormatUint(from, 10),
			RequestID: requestIDFrom(r.Context()),
		})
		return
	}
	w.Header().Set("Content-Type", "application/octet-stream")
	w.Header().Set("X-Repl-Epoch", strconv.FormatUint(durable, 10))
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	flush := func() {
		if flusher != nil {
			flusher.Flush()
		}
	}
	if _, werr := w.Write(tail); werr != nil {
		return
	}
	flush()
	next := durable

	heartbeat := time.NewTicker(replHeartbeatInterval)
	defer heartbeat.Stop()
	for {
		// Subscribe BEFORE reading the tail: an advance landing between the
		// read and the select has already closed this channel, so the select
		// wakes immediately instead of sleeping through it.
		changed, cerr := eng.ReplChanged()
		if cerr != nil {
			return
		}
		tail, durable, err = eng.ReplTail(next)
		if err != nil {
			// Mid-stream the status is spent; cut the connection and let the
			// follower's reconnect see the real error as a status.
			return
		}
		if len(tail) > 0 {
			if _, werr := w.Write(tail); werr != nil {
				return
			}
			flush()
			next = durable
		}
		select {
		case <-r.Context().Done():
			return
		case <-s.drainCh:
			// Drain: end the stream now so Shutdown's in-flight wait is not
			// held hostage by live tails. The follower re-streams elsewhere
			// (or here, after restart) from wherever it got to.
			return
		case <-heartbeat.C:
			if _, werr := w.Write(wal.HeartbeatFrame()); werr != nil {
				return
			}
			flush()
		case <-changed:
		}
	}
}

// writeReplError maps replication-seam errors onto statuses the
// follower's state machine keys off.
func (s *Server) writeReplError(w http.ResponseWriter, r *http.Request, err error) {
	resp := errorResponse{Error: err.Error(), RequestID: requestIDFrom(r.Context())}
	switch {
	case errors.Is(err, notable.ErrEpochTruncated):
		writeJSON(w, http.StatusGone, resp)
	case errors.Is(err, notable.ErrNotDurable):
		// Not a replication primary (no WAL): a topology misconfiguration.
		writeJSON(w, http.StatusNotImplemented, resp)
	default:
		writeJSON(w, http.StatusInternalServerError, resp)
	}
}
